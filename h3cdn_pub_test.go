package h3cdn_test

import (
	"bytes"
	"math/rand"
	"testing"

	"h3cdn"
	"h3cdn/internal/vantage"
)

// TestPublicAPISmokeTour exercises the facade the way the README does.
func TestPublicAPISmokeTour(t *testing.T) {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 1, NumPages: 6, MeanResources: 40})
	if len(corpus.Pages) != 6 {
		t.Fatalf("%d pages", len(corpus.Pages))
	}

	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 1, Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	b := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})
	log, err := u.RunVisit(b, &corpus.Pages[0])
	if err != nil {
		t.Fatal(err)
	}
	if log.PLT <= 0 || len(log.Entries) == 0 {
		t.Fatalf("log = %+v", log)
	}

	ds, err := h3cdn.Run(h3cdn.CampaignConfig{
		Seed:             1,
		Corpus:           corpus,
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := h3cdn.RenderTable2(h3cdn.ComputeTable2(ds)); len(out) == 0 {
		t.Fatal("empty Table II render")
	}
	sms := h3cdn.ComputeSiteMetrics(ds)
	if len(sms) != 6 {
		t.Fatalf("%d site metrics", len(sms))
	}

	var buf bytes.Buffer
	if err := ds.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty dataset JSON")
	}
}

func TestPublicAdaptiveSelector(t *testing.T) {
	sel := h3cdn.NewSelector(h3cdn.SelectorConfig{Rng: rand.New(rand.NewSource(1))}) //nolint:gosec
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 2, NumPages: 4, MeanResources: 40})
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 2, Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	b := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeAdaptive, Selector: sel, EnableZeroRTT: true})
	for i := range corpus.Pages {
		if _, err := u.RunVisit(b, &corpus.Pages[i]); err != nil {
			t.Fatal(err)
		}
		b.ClearSessions()
	}
	h2, h3, fb := sel.Stats()
	if h2 == 0 || fb == 0 {
		t.Fatalf("selector unused: h2=%d h3=%d feedback=%d", h2, h3, fb)
	}
	// With H3 widely available on warm visits, the selector must have
	// tried it at least somewhere.
	if h3 == 0 {
		t.Fatal("selector never chose H3")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := h3cdn.Table1()
	if len(rows) != 7 {
		t.Fatalf("%d providers, want 7", len(rows))
	}
	if rows[0].Provider != "Cloudflare" || rows[0].ReleaseYear != 2019 {
		t.Fatalf("first row %+v, want Cloudflare 2019", rows[0])
	}
	if rows[len(rows)-1].Provider != "Akamai" || rows[len(rows)-1].ReleaseYear != 2023 {
		t.Fatalf("last row %+v, want Akamai 2023", rows[len(rows)-1])
	}
}
