// Command h3cdn-measure runs the paper's measurement campaign on the
// simulated Internet and writes the resulting dataset (HAR logs over both
// browsing modes) as JSON.
//
// Usage:
//
//	h3cdn-measure [flags] > dataset.json
//
// The default configuration mirrors the paper: 325 pages, the three
// CloudLab vantage points, H2 and H3 browsing modes, warm-up visit plus
// measured visit. Probe count per vantage defaults to 1 (the paper ran
// 3); raise -probes for smoother statistics at ~3x the runtime per extra
// probe.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"h3cdn/internal/core"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed        = flag.Uint64("seed", 2022, "campaign seed")
		pages       = flag.Int("pages", 325, "number of websites")
		probes      = flag.Int("probes", 1, "probes per vantage point")
		loss        = flag.Float64("loss", 0, "path loss rate (0 = default baseline, negative = lossless)")
		consecutive = flag.Bool("consecutive", false, "consecutive-visit protocol (§VI-D)")
		sequential  = flag.Bool("sequential", false, "disable shard parallelism")
		workers     = flag.Int("workers", 0, "concurrent shard workers (0 = GOMAXPROCS)")
		out         = flag.String("o", "", "output file (default stdout)")
		cpuprofile  = flag.String("cpuprofile", "", "write CPU profile to file")
		memprofile  = flag.String("memprofile", "", "write heap profile to file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// Open the heap-profile file up front so a bad path fails before the
	// campaign runs, not after.
	var memf *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer f.Close()
		memf = f
	}

	cfg := core.CampaignConfig{
		Seed:             *seed,
		CorpusConfig:     webgen.Config{NumPages: *pages},
		Vantages:         vantage.Points(),
		ProbesPerVantage: *probes,
		LossRate:         *loss,
		Consecutive:      *consecutive,
		Sequential:       *sequential,
		Workers:          *workers,
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "h3cdn-measure: %d pages x %d vantages x %d probes, consecutive=%v\n",
		*pages, len(cfg.Vantages), *probes, *consecutive)
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "h3cdn-measure: done in %v\n", elapsed.Round(time.Second))
	fmt.Fprintf(os.Stderr, "h3cdn-measure: %d events executed (%.0f events/sec)\n",
		ds.Stats.Events, float64(ds.Stats.Events)/elapsed.Seconds())

	if memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := ds.SaveJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 1
	}
	return 0
}
