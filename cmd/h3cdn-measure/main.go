// Command h3cdn-measure runs the paper's measurement campaign on the
// simulated Internet and writes the resulting dataset (HAR logs over both
// browsing modes) as JSON.
//
// Usage:
//
//	h3cdn-measure [flags] > dataset.json
//
// The default configuration mirrors the paper: 325 pages, the three
// CloudLab vantage points, H2 and H3 browsing modes, warm-up visit plus
// measured visit. Probe count per vantage defaults to 1 (the paper ran
// 3); raise -probes for smoother statistics at ~3x the runtime per extra
// probe.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"h3cdn/internal/core"
	"h3cdn/internal/har"
	"h3cdn/internal/simnet"
	"h3cdn/internal/simnet/traces"
	"h3cdn/internal/traffic"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed        = flag.Uint64("seed", 2022, "campaign seed")
		pages       = flag.Int("pages", 325, "number of websites")
		probes      = flag.Int("probes", 1, "probes per vantage point")
		loss        = flag.Float64("loss", 0, "path loss rate (0 = default baseline, negative = lossless)")
		consecutive = flag.Bool("consecutive", false, "consecutive-visit protocol (§VI-D)")
		sequential  = flag.Bool("sequential", false, "disable shard parallelism")
		workers     = flag.Int("workers", 0, "concurrent shard workers (0 = GOMAXPROCS)")

		burstLoss    = flag.Float64("burst-loss", 0, "Gilbert–Elliott average loss rate (0 disables bursty loss)")
		burstLen     = flag.Float64("burst-len", 4, "Gilbert–Elliott mean burst length in packets")
		jitter       = flag.Duration("jitter", 0, "uniform extra per-packet delay in [0, jitter)")
		reorder      = flag.Float64("reorder", 0, "probability a delivered packet is held back")
		reorderDelay = flag.Duration("reorder-delay", 2*time.Millisecond, "hold-back duration for reordered packets")
		outages      = flag.String("outage", "", "scheduled path outages, comma-separated start-end pairs (e.g. 2s-4s,10s-11s)")
		retries      = flag.Int("retries", 0, "browser re-fetch budget per resource after transport errors")

		linkTrace  = flag.String("link-trace", "", "drive the download link from a capacity trace: a synthetic profile ("+strings.Join(traces.Names(), ", ")+") or a Mahimahi trace file")
		traceScale = flag.Float64("trace-scale", 1, "multiply the link trace's capacity samples by this factor")

		trafficOn      = flag.Bool("traffic", false, "run an open-loop population traffic campaign (seeded users contending on shared TTL edge caches) instead of the one-visit-per-page census")
		trafficUsers   = flag.Int("traffic-users", 256, "population size per mode and vantage")
		trafficShard   = flag.Int("traffic-users-per-shard", 0, "user-partition granularity: users simulated per shard (0 = default)")
		trafficRate    = flag.Float64("traffic-rate", 4, "population mean session-arrival rate, sessions per second of virtual time")
		trafficDiurnal = flag.Float64("traffic-diurnal", 0, "diurnal arrival-rate modulation amplitude in [0, 1) (0 = flat rate)")
		trafficPeriod  = flag.Duration("traffic-diurnal-period", 0, "diurnal modulation period (0 = 1h)")
		trafficDur     = flag.Duration("traffic-duration", 2*time.Minute, "virtual-time horizon of the traffic campaign")
		trafficEpoch   = flag.Duration("traffic-epoch", 0, "checkpoint epoch interval (0 = one epoch spanning the horizon)")
		trafficVisits  = flag.Float64("traffic-session-visits", 0, "mean visits per session, geometric with minimum 1 (0 = default 3)")
		trafficThink   = flag.Duration("traffic-think", 0, "mean think time between a session's visits (0 = default 5s)")
		trafficZipf    = flag.Float64("traffic-zipf", 0, "page-popularity Zipf exponent, must be > 1 (0 = default 1.2)")
		trafficTTL     = flag.Duration("traffic-ttl", 0, "edge-cache entry lifetime (0 = default 60s)")
		trafficFlight  = flag.Int("traffic-max-inflight", 0, "per-shard bound on concurrently loading visits; arrivals at the bound are shed (0 = default 64)")
		trafficCkpt    = flag.String("traffic-checkpoint", "", "checkpoint directory: each shard saves state per epoch and resumes from it on the next run (created if missing)")
		trafficHalt    = flag.Int("traffic-halt-epochs", 0, "stop each shard after this many epochs this process, checkpoints intact — exercises kill/resume (0 = run to completion)")

		retention  = flag.String("har-retention", "all", "HAR retention policy: all, none, or sample:N (N PageLogs per shard); metrics always cover every page")
		qlogDir    = flag.String("qlog", "", "write per-shard qlog JSONL trace files into this directory (created if missing)")
		out        = flag.String("o", "", "output file (default stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write CPU profile to file")
		memprofile = flag.String("memprofile", "", "write heap profile to file")
		memstats   = flag.Bool("memstats", false, "report peak heap and cumulative allocation after the campaign")
	)
	flag.Parse()

	// Usage errors exit 2 (the flag package's own convention for bad
	// flags), before any file creation or simulation work.
	if err := validateImpairFlags(*burstLoss, *jitter, *reorder, *reorderDelay, *traceScale); err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 2
	}
	ret, err := har.ParseRetention(*retention)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: -har-retention: %v\n", err)
		return 2
	}
	tcfg, err := buildTrafficConfig(trafficFlags{
		enabled:       *trafficOn,
		users:         *trafficUsers,
		usersPerShard: *trafficShard,
		rate:          *trafficRate,
		diurnal:       *trafficDiurnal,
		diurnalPeriod: *trafficPeriod,
		duration:      *trafficDur,
		epoch:         *trafficEpoch,
		sessionVisits: *trafficVisits,
		think:         *trafficThink,
		zipf:          *trafficZipf,
		ttl:           *trafficTTL,
		maxInFlight:   *trafficFlight,
		checkpoint:    *trafficCkpt,
		haltEpochs:    *trafficHalt,
	}, *consecutive, *qlogDir, ret)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// Open the heap-profile file up front so a bad path fails before the
	// campaign runs, not after.
	var memf *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer f.Close()
		memf = f
	}

	// Open the dataset file up front too: a bad -o path must fail
	// before the campaign runs, not after minutes of simulation.
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	impair, err := buildImpairment(*burstLoss, *burstLen, *jitter, *reorder, *reorderDelay, *outages)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 1
	}

	tl, err := buildLinkTrace(*linkTrace, *traceScale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 1
	}

	// The campaign expects the qlog directory to exist; create it before
	// the run so a bad path fails fast. Same for the traffic checkpoint
	// directory.
	if *qlogDir != "" {
		if err := os.MkdirAll(*qlogDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
	}
	if tcfg != nil && tcfg.CheckpointDir != "" {
		if err := os.MkdirAll(tcfg.CheckpointDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
	}

	cfg := core.CampaignConfig{
		Seed:             *seed,
		CorpusConfig:     webgen.Config{NumPages: *pages},
		Vantages:         vantage.Points(),
		ProbesPerVantage: *probes,
		LossRate:         *loss,
		Consecutive:      *consecutive,
		Sequential:       *sequential,
		Workers:          *workers,
		Impairment:       impair,
		LinkTrace:        tl,
		FetchRetries:     *retries,
		QlogDir:          *qlogDir,
		Retention:        ret,
		Traffic:          tcfg,
	}
	if tl != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: link trace %s: %d epochs over %v, mean %.1f Mbit/s\n",
			tl.Name(), tl.Epochs(), tl.Period(), tl.MeanBps()/1e6)
	}

	// Peak-heap sampling for -memstats: the post-campaign MemStats
	// snapshot only shows what is still live, so a sampler tracks the
	// in-use high-water mark while shards run.
	var (
		peakHeap    uint64
		samplerStop chan struct{}
		samplerDone chan struct{}
	)
	sampleHeap := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if inUse := ms.HeapInuse + ms.StackInuse; inUse > peakHeap {
			peakHeap = inUse
		}
	}
	if *memstats {
		samplerStop = make(chan struct{})
		samplerDone = make(chan struct{})
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-tick.C:
					sampleHeap()
				}
			}
		}()
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "h3cdn-measure: %d pages x %d vantages x %d probes, consecutive=%v\n",
		*pages, len(cfg.Vantages), *probes, *consecutive)
	if tcfg != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: traffic: %d users, %.2f sessions/s over %v (epoch %v, TTL %v)\n",
			tcfg.Users, tcfg.ArrivalRate, tcfg.Duration, tcfg.EpochInterval, tcfg.CacheTTL)
	}
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	if *memstats {
		close(samplerStop)
		<-samplerDone
		sampleHeap()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(os.Stderr, "h3cdn-measure: memstats peak-heap=%.1fMB total-alloc=%.1fMB gc-cycles=%d\n",
			float64(peakHeap)/(1<<20), float64(ms.TotalAlloc)/(1<<20), ms.NumGC)
	}
	fmt.Fprintf(os.Stderr, "h3cdn-measure: retention=%s pages folded=%d retained=%d\n",
		ret, ds.Stats.PagesFolded, ds.Stats.PagesRetained)
	if tr := ds.Traffic; tr != nil {
		c := tr.Counters
		hitRate := 0.0
		if total := c.CacheHits + c.CacheMisses; total > 0 {
			hitRate = float64(c.CacheHits) / float64(total)
		}
		fmt.Fprintf(os.Stderr, "h3cdn-measure: traffic sessions=%d visits=%d completed=%d shed=%d\n",
			c.SessionsStarted, c.VisitsGenerated, c.VisitsCompleted, c.VisitsShed)
		fmt.Fprintf(os.Stderr, "h3cdn-measure: traffic edge hit-rate=%.1f%% expired=%d stampedes=%d 0-rtt=%.2f\n",
			100*hitRate, c.CacheExpired, c.Stampedes, tr.ResumptionFraction())
	}
	fmt.Fprintf(os.Stderr, "h3cdn-measure: done in %v\n", elapsed.Round(time.Second))
	fmt.Fprintf(os.Stderr, "h3cdn-measure: %d events executed (%.0f events/sec)\n",
		ds.Stats.Events, float64(ds.Stats.Events)/elapsed.Seconds())
	if *qlogDir != "" {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: qlog traces written to %s\n", *qlogDir)
	}
	if impair != nil {
		r := ds.Stats.Recovery
		fmt.Fprintf(os.Stderr, "h3cdn-measure: drops burst=%d outage=%d reordered=%d\n",
			ds.Stats.BurstDrops, ds.Stats.OutageDrops, ds.Stats.Reordered)
		fmt.Fprintf(os.Stderr, "h3cdn-measure: recovery rto=%d fastrtx=%d rtx=%d pto=%d lost=%d outage-crossings=%d conn-failures=%d fetch-retries=%d\n",
			r.Timeouts, r.FastRetransmits, r.Retransmits, r.ProbeFires,
			r.PacketsDeclaredLost, r.OutageCrossings, r.ConnFailures, r.FetchRetries)
	}

	if memf != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memf); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
			return 1
		}
	}

	if err := ds.SaveJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-measure: %v\n", err)
		return 1
	}
	return 0
}

// validateImpairFlags rejects nonsensical fault/trace knob values —
// negative rates and durations, NaN — before any file or simulation
// work. These are usage errors (exit 2), distinct from runtime failures
// (exit 1): a sweep script with a sign bug should fail its very first
// invocation loudly, not run a campaign under a silently clamped knob.
func validateImpairFlags(burstLoss float64, jitter time.Duration, reorder float64, reorderDelay time.Duration, traceScale float64) error {
	if burstLoss < 0 || math.IsNaN(burstLoss) {
		return fmt.Errorf("-burst-loss %v: must be a non-negative loss rate", burstLoss)
	}
	if jitter < 0 {
		return fmt.Errorf("-jitter %v: must be a non-negative duration", jitter)
	}
	if reorder < 0 || math.IsNaN(reorder) {
		return fmt.Errorf("-reorder %v: must be a non-negative probability", reorder)
	}
	if reorderDelay < 0 {
		return fmt.Errorf("-reorder-delay %v: must be a non-negative duration", reorderDelay)
	}
	if !(traceScale > 0) || math.IsInf(traceScale, 0) {
		return fmt.Errorf("-trace-scale %v: must be a positive finite factor", traceScale)
	}
	return nil
}

// trafficFlags holds the parsed -traffic-* knobs.
type trafficFlags struct {
	enabled       bool
	users         int
	usersPerShard int
	rate          float64
	diurnal       float64
	diurnalPeriod time.Duration
	duration      time.Duration
	epoch         time.Duration
	sessionVisits float64
	think         time.Duration
	zipf          float64
	ttl           time.Duration
	maxInFlight   int
	checkpoint    string
	haltEpochs    int
}

// buildTrafficConfig validates the -traffic-* knobs and assembles the
// campaign's population-traffic config, or returns nil when -traffic is
// off. Like validateImpairFlags these are usage errors (exit 2) caught
// before any simulation work: zero users or a NaN arrival rate in a
// sweep script should fail the first invocation loudly, as should
// combining -traffic with per-page census machinery it cannot honor
// (-consecutive, -qlog, sampled HAR retention).
func buildTrafficConfig(tf trafficFlags, consecutive bool, qlogDir string, ret har.Retention) (*traffic.Config, error) {
	if !tf.enabled {
		return nil, nil
	}
	if consecutive {
		return nil, fmt.Errorf("-traffic: incompatible with -consecutive (sessions already revisit pages)")
	}
	if qlogDir != "" {
		return nil, fmt.Errorf("-traffic: incompatible with -qlog")
	}
	if ret.Kind == har.RetainSample {
		return nil, fmt.Errorf("-traffic: incompatible with -har-retention sample:N (use all or none)")
	}
	if tf.haltEpochs < 0 {
		return nil, fmt.Errorf("-traffic-halt-epochs %d: must be non-negative", tf.haltEpochs)
	}
	tc := &traffic.Config{
		Users:            tf.users,
		UsersPerShard:    tf.usersPerShard,
		ArrivalRate:      tf.rate,
		DiurnalAmplitude: tf.diurnal,
		DiurnalPeriod:    tf.diurnalPeriod,
		Duration:         tf.duration,
		EpochInterval:    tf.epoch,
		SessionVisits:    tf.sessionVisits,
		ThinkTime:        tf.think,
		ZipfS:            tf.zipf,
		CacheTTL:         tf.ttl,
		MaxInFlight:      tf.maxInFlight,
		CheckpointDir:    tf.checkpoint,
		HaltAfterEpochs:  tf.haltEpochs,
	}
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	// Fill defaults here so the pre-run summary prints the effective
	// values (the campaign would default them anyway).
	*tc = tc.WithDefaults()
	return tc, nil
}

// buildLinkTrace resolves the -link-trace spec: a synthetic profile name
// from the bundled traces package, else a Mahimahi trace file path. The
// -trace-scale factor applies either way.
func buildLinkTrace(spec string, scale float64) (*simnet.TraceLink, error) {
	if spec == "" {
		return nil, nil
	}
	var (
		tl  *simnet.TraceLink
		err error
	)
	if traces.Describe(spec) != "" {
		tl, err = traces.Profile(spec)
	} else {
		f, ferr := os.Open(spec)
		if ferr != nil {
			return nil, fmt.Errorf("link-trace %q: not a synthetic profile (%s) and not a readable file: %v",
				spec, strings.Join(traces.Names(), ", "), ferr)
		}
		defer f.Close()
		tl, err = simnet.ParseMahimahiTrace(filepath.Base(spec), f, 0, 0)
	}
	if err != nil {
		return nil, err
	}
	return tl.Scaled(scale)
}

// buildImpairment assembles the fault profile from CLI knobs, or returns
// nil when every knob is off so campaigns keep the unimpaired fast path.
func buildImpairment(burstLoss, burstLen float64, jitter time.Duration, reorder float64, reorderDelay time.Duration, outageSpec string) (*simnet.Impairment, error) {
	outages, err := parseOutages(outageSpec)
	if err != nil {
		return nil, err
	}
	if burstLoss <= 0 && jitter <= 0 && reorder <= 0 && len(outages) == 0 {
		return nil, nil
	}
	im := simnet.GilbertElliott(burstLoss, burstLen)
	im.JitterMax = jitter
	if reorder > 0 {
		im.ReorderRate = reorder
		im.ReorderDelay = reorderDelay
	}
	im.Outages = outages
	return &im, nil
}

// parseOutages parses comma-separated start-end duration pairs, e.g.
// "2s-4s,10s-11s".
func parseOutages(spec string) ([]simnet.Outage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []simnet.Outage
	for _, field := range strings.Split(spec, ",") {
		lo, hi, ok := strings.Cut(strings.TrimSpace(field), "-")
		if !ok {
			return nil, fmt.Errorf("outage %q: want start-end", field)
		}
		start, err := time.ParseDuration(lo)
		if err != nil {
			return nil, fmt.Errorf("outage %q: %v", field, err)
		}
		end, err := time.ParseDuration(hi)
		if err != nil {
			return nil, fmt.Errorf("outage %q: %v", field, err)
		}
		if end <= start {
			return nil, fmt.Errorf("outage %q: end must follow start", field)
		}
		out = append(out, simnet.Outage{Start: start, End: end})
	}
	return out, nil
}
