package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/har"
)

func TestValidateImpairFlags(t *testing.T) {
	type args struct {
		burstLoss    float64
		jitter       time.Duration
		reorder      float64
		reorderDelay time.Duration
		traceScale   float64
	}
	ok := args{traceScale: 1}
	cases := []struct {
		name    string
		mut     func(*args)
		wantErr string // substring of the error, "" = valid
	}{
		{"defaults", func(a *args) {}, ""},
		{"all-knobs-on", func(a *args) {
			a.burstLoss, a.jitter, a.reorder, a.reorderDelay = 0.02, 2*time.Millisecond, 0.1, 5*time.Millisecond
		}, ""},
		{"negative-burst-loss", func(a *args) { a.burstLoss = -0.01 }, "-burst-loss"},
		{"nan-burst-loss", func(a *args) { a.burstLoss = math.NaN() }, "-burst-loss"},
		{"negative-jitter", func(a *args) { a.jitter = -time.Millisecond }, "-jitter"},
		{"negative-reorder", func(a *args) { a.reorder = -0.5 }, "-reorder"},
		{"nan-reorder", func(a *args) { a.reorder = math.NaN() }, "-reorder"},
		{"negative-reorder-delay", func(a *args) { a.reorderDelay = -time.Second }, "-reorder-delay"},
		{"zero-trace-scale", func(a *args) { a.traceScale = 0 }, "-trace-scale"},
		{"negative-trace-scale", func(a *args) { a.traceScale = -2 }, "-trace-scale"},
		{"nan-trace-scale", func(a *args) { a.traceScale = math.NaN() }, "-trace-scale"},
		{"inf-trace-scale", func(a *args) { a.traceScale = math.Inf(1) }, "-trace-scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := ok
			tc.mut(&a)
			err := validateImpairFlags(a.burstLoss, a.jitter, a.reorder, a.reorderDelay, a.traceScale)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error naming %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}

// TestBuildTrafficConfig covers the -traffic-* usage validation: bad
// knob values and incompatible flag combinations are rejected before
// any simulation work (exit 2), same contract as the impair-flag table
// above. Mutate-one-knob cases start from a valid baseline.
func TestBuildTrafficConfig(t *testing.T) {
	type args struct {
		tf          trafficFlags
		consecutive bool
		qlogDir     string
		ret         har.Retention
	}
	ok := args{
		tf: trafficFlags{
			enabled:  true,
			users:    256,
			rate:     4,
			duration: 2 * time.Minute,
		},
		ret: har.Retention{Kind: har.RetainAll},
	}
	cases := []struct {
		name    string
		mut     func(*args)
		wantErr string // substring of the error, "" = valid
	}{
		{"defaults", func(a *args) {}, ""},
		{"all-knobs-on", func(a *args) {
			a.tf.usersPerShard = 32
			a.tf.diurnal, a.tf.diurnalPeriod = 0.5, time.Hour
			a.tf.epoch = 30 * time.Second
			a.tf.sessionVisits, a.tf.think = 4, 2*time.Second
			a.tf.zipf, a.tf.ttl, a.tf.maxInFlight = 1.3, 45*time.Second, 128
			a.tf.checkpoint = "ckpt"
		}, ""},
		{"zero-users", func(a *args) { a.tf.users = 0 }, "users"},
		{"negative-users", func(a *args) { a.tf.users = -5 }, "users"},
		{"negative-users-per-shard", func(a *args) { a.tf.usersPerShard = -1 }, "users per shard"},
		{"zero-rate", func(a *args) { a.tf.rate = 0 }, "arrival rate"},
		{"negative-rate", func(a *args) { a.tf.rate = -1 }, "arrival rate"},
		{"nan-rate", func(a *args) { a.tf.rate = math.NaN() }, "arrival rate"},
		{"inf-rate", func(a *args) { a.tf.rate = math.Inf(1) }, "arrival rate"},
		{"zero-duration", func(a *args) { a.tf.duration = 0 }, "duration"},
		{"diurnal-too-big", func(a *args) { a.tf.diurnal = 1 }, "amplitude"},
		{"nan-diurnal", func(a *args) { a.tf.diurnal = math.NaN() }, "amplitude"},
		{"negative-diurnal-period", func(a *args) { a.tf.diurnalPeriod = -time.Hour }, "period"},
		{"negative-epoch", func(a *args) { a.tf.epoch = -time.Second }, "epoch"},
		{"fractional-session-visits", func(a *args) { a.tf.sessionVisits = 0.5 }, "session visits"},
		{"negative-think", func(a *args) { a.tf.think = -time.Second }, "think"},
		{"zipf-at-one", func(a *args) { a.tf.zipf = 1 }, "zipf"},
		{"nan-zipf", func(a *args) { a.tf.zipf = math.NaN() }, "zipf"},
		{"negative-ttl", func(a *args) { a.tf.ttl = -time.Second }, "TTL"},
		{"negative-max-inflight", func(a *args) { a.tf.maxInFlight = -1 }, "in-flight"},
		{"negative-halt-epochs", func(a *args) { a.tf.haltEpochs = -1 }, "-traffic-halt-epochs"},
		{"with-consecutive", func(a *args) { a.consecutive = true }, "-consecutive"},
		{"with-qlog", func(a *args) { a.qlogDir = "qlogs" }, "-qlog"},
		{"with-sampled-retention", func(a *args) {
			a.ret = har.Retention{Kind: har.RetainSample, Sample: 8}
		}, "sample"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := ok
			tc.mut(&a)
			cfg, err := buildTrafficConfig(a.tf, a.consecutive, a.qlogDir, a.ret)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if cfg == nil {
					t.Fatal("valid -traffic flags: want a config, got nil")
				}
				return
			}
			if err == nil {
				t.Fatalf("want error naming %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending knob %q", err, tc.wantErr)
			}
		})
	}

	// -traffic off: every other knob is ignored, no config, no error.
	off := ok
	off.tf.enabled = false
	off.tf.users = -1
	if cfg, err := buildTrafficConfig(off.tf, off.consecutive, off.qlogDir, off.ret); cfg != nil || err != nil {
		t.Fatalf("disabled traffic: got (%v, %v), want (nil, nil)", cfg, err)
	}
}

func TestBuildLinkTrace(t *testing.T) {
	if tl, err := buildLinkTrace("", 1); tl != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", tl, err)
	}
	tl, err := buildLinkTrace("lte", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Name() != "synthetic:lte" {
		t.Fatalf("name = %q", tl.Name())
	}
	half, err := buildLinkTrace("lte", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := half.MeanBps(), tl.MeanBps()/2; math.Abs(got-want) > 1 {
		t.Fatalf("scaled mean %v, want %v", got, want)
	}

	// Mahimahi file path.
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.trace")
	if err := os.WriteFile(path, []byte("0\n10\n20\n30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ftl, err := buildLinkTrace(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ftl.Name() != "cell.trace" || ftl.MeanBps() <= 0 {
		t.Fatalf("file trace: name %q mean %v", ftl.Name(), ftl.MeanBps())
	}

	if _, err := buildLinkTrace(filepath.Join(dir, "missing.trace"), 1); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not-a-timestamp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildLinkTrace(bad, 1); err == nil {
		t.Fatal("malformed file: want parse error")
	}
}

// TestHARRetentionFlag covers the -har-retention values main validates
// via har.ParseRetention before any simulation work; malformed values
// are usage errors (exit 2), same as the impair-flag table above.
func TestHARRetentionFlag(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // String() round-trip of the parsed policy, "" = error
	}{
		{"all", "all", "all"},
		{"none", "none", "none"},
		{"sample", "sample:64", "sample:64"},
		{"sample-one", "sample:1", "sample:1"},
		{"sample-zero", "sample:0", ""},
		{"sample-negative", "sample:-1", ""},
		{"sample-garbage", "sample:lots", ""},
		{"unknown", "keep", ""},
		{"empty", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ret, err := har.ParseRetention(tc.value)
			if tc.want == "" {
				if err == nil {
					t.Fatalf("-har-retention %q: want usage error, got %v", tc.value, ret)
				}
				return
			}
			if err != nil {
				t.Fatalf("-har-retention %q: %v", tc.value, err)
			}
			if got := ret.String(); got != tc.want {
				t.Fatalf("-har-retention %q parsed to %q, want %q", tc.value, got, tc.want)
			}
		})
	}
}
