package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/har"
)

func TestValidateImpairFlags(t *testing.T) {
	type args struct {
		burstLoss    float64
		jitter       time.Duration
		reorder      float64
		reorderDelay time.Duration
		traceScale   float64
	}
	ok := args{traceScale: 1}
	cases := []struct {
		name    string
		mut     func(*args)
		wantErr string // substring of the error, "" = valid
	}{
		{"defaults", func(a *args) {}, ""},
		{"all-knobs-on", func(a *args) {
			a.burstLoss, a.jitter, a.reorder, a.reorderDelay = 0.02, 2*time.Millisecond, 0.1, 5*time.Millisecond
		}, ""},
		{"negative-burst-loss", func(a *args) { a.burstLoss = -0.01 }, "-burst-loss"},
		{"nan-burst-loss", func(a *args) { a.burstLoss = math.NaN() }, "-burst-loss"},
		{"negative-jitter", func(a *args) { a.jitter = -time.Millisecond }, "-jitter"},
		{"negative-reorder", func(a *args) { a.reorder = -0.5 }, "-reorder"},
		{"nan-reorder", func(a *args) { a.reorder = math.NaN() }, "-reorder"},
		{"negative-reorder-delay", func(a *args) { a.reorderDelay = -time.Second }, "-reorder-delay"},
		{"zero-trace-scale", func(a *args) { a.traceScale = 0 }, "-trace-scale"},
		{"negative-trace-scale", func(a *args) { a.traceScale = -2 }, "-trace-scale"},
		{"nan-trace-scale", func(a *args) { a.traceScale = math.NaN() }, "-trace-scale"},
		{"inf-trace-scale", func(a *args) { a.traceScale = math.Inf(1) }, "-trace-scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := ok
			tc.mut(&a)
			err := validateImpairFlags(a.burstLoss, a.jitter, a.reorder, a.reorderDelay, a.traceScale)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error naming %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}

func TestBuildLinkTrace(t *testing.T) {
	if tl, err := buildLinkTrace("", 1); tl != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", tl, err)
	}
	tl, err := buildLinkTrace("lte", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Name() != "synthetic:lte" {
		t.Fatalf("name = %q", tl.Name())
	}
	half, err := buildLinkTrace("lte", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := half.MeanBps(), tl.MeanBps()/2; math.Abs(got-want) > 1 {
		t.Fatalf("scaled mean %v, want %v", got, want)
	}

	// Mahimahi file path.
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.trace")
	if err := os.WriteFile(path, []byte("0\n10\n20\n30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ftl, err := buildLinkTrace(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ftl.Name() != "cell.trace" || ftl.MeanBps() <= 0 {
		t.Fatalf("file trace: name %q mean %v", ftl.Name(), ftl.MeanBps())
	}

	if _, err := buildLinkTrace(filepath.Join(dir, "missing.trace"), 1); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not-a-timestamp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildLinkTrace(bad, 1); err == nil {
		t.Fatal("malformed file: want parse error")
	}
}

// TestHARRetentionFlag covers the -har-retention values main validates
// via har.ParseRetention before any simulation work; malformed values
// are usage errors (exit 2), same as the impair-flag table above.
func TestHARRetentionFlag(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string // String() round-trip of the parsed policy, "" = error
	}{
		{"all", "all", "all"},
		{"none", "none", "none"},
		{"sample", "sample:64", "sample:64"},
		{"sample-one", "sample:1", "sample:1"},
		{"sample-zero", "sample:0", ""},
		{"sample-negative", "sample:-1", ""},
		{"sample-garbage", "sample:lots", ""},
		{"unknown", "keep", ""},
		{"empty", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ret, err := har.ParseRetention(tc.value)
			if tc.want == "" {
				if err == nil {
					t.Fatalf("-har-retention %q: want usage error, got %v", tc.value, ret)
				}
				return
			}
			if err != nil {
				t.Fatalf("-har-retention %q: %v", tc.value, err)
			}
			if got := ret.String(); got != tc.want {
				t.Fatalf("-har-retention %q parsed to %q, want %q", tc.value, got, tc.want)
			}
		})
	}
}
