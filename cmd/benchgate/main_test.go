package main

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestLoadBaselineRotate(t *testing.T) {
	base, err := loadBaseline(filepath.Join("testdata", "rotate.json"))
	if err != nil {
		t.Fatal(err)
	}
	names, byPkg, missingPrior := selectGated(&base)
	if want := []string{"BenchmarkAlpha", "BenchmarkBeta"}; len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("gated = %v, want %v (free-form entries excluded)", names, want)
	}
	if len(missingPrior) != 0 {
		t.Fatalf("missingPrior = %v on a fully rotated baseline", missingPrior)
	}
	if !byPkg["."]["BenchmarkAlpha"] || !byPkg["./internal/core"]["BenchmarkBeta"] {
		t.Fatalf("byPkg = %v", byPkg)
	}
	e := base.Benchmarks["BenchmarkAlpha"]
	if e.Seed == nil || e.Prior == nil || e.Current == nil {
		t.Fatal("rotation columns not parsed")
	}
	if e.Seed.AllocsOp != 4 || e.Prior.AllocsOp != 2 || e.Current.AllocsOp != 0 {
		t.Fatalf("column values: seed %v prior %v current %v", e.Seed.AllocsOp, e.Prior.AllocsOp, e.Current.AllocsOp)
	}
}

func TestLoadBaselineMissingPrior(t *testing.T) {
	base, err := loadBaseline(filepath.Join("testdata", "missing_prior.json"))
	if err != nil {
		t.Fatal(err)
	}
	names, _, missingPrior := selectGated(&base)
	if len(names) != 2 {
		t.Fatalf("gated = %v, want both entries", names)
	}
	if len(missingPrior) != 1 || missingPrior[0] != "BenchmarkFresh" {
		t.Fatalf("missingPrior = %v, want [BenchmarkFresh]", missingPrior)
	}
}

func TestLoadBaselineStalePrior(t *testing.T) {
	_, err := loadBaseline(filepath.Join("testdata", "stale_prior.json"))
	if err == nil {
		t.Fatal("half-finished rotation (prior without current): want error")
	}
	if !strings.Contains(err.Error(), "BenchmarkHalfRotated") || !strings.Contains(err.Error(), "rotation") {
		t.Fatalf("error %q should name the entry and the rotation discipline", err)
	}
}

func TestLoadBaselineGateOnly(t *testing.T) {
	base, err := loadBaseline(filepath.Join("testdata", "gate_only.json"))
	if err != nil {
		t.Fatal(err)
	}
	names, _, missingPrior := selectGated(&base)
	if len(names) != 2 {
		t.Fatalf("gated = %v, want both informational entries measured", names)
	}
	// Informational entries are exempt from the prior-column discipline.
	if len(missingPrior) != 0 {
		t.Fatalf("missingPrior = %v, want none for informational entries", missingPrior)
	}
	if len(base.Gates) != 1 || base.Gates[0].Type != "min_efficiency" {
		t.Fatalf("gates = %+v", base.Gates)
	}
	if runtime.NumCPU() == 1 {
		t.Skip("efficiency gates skip on single-core machines")
	}
	measured := map[string]metrics{
		"BenchmarkScale/workers=1": {NsOp: 1000, EventsPerSec: 1000},
		"BenchmarkScale/workers=2": {NsOp: 600, EventsPerSec: 1700},
	}
	if !checkGate(base.Gates[0], measured) {
		t.Fatal("gate with floor 0.5 at workers=1 must pass on these measurements")
	}
	// The gate takes the best speedup at any worker count ≥ ideal
	// (here 1.7 at workers=2), so only a floor above that can fail.
	strict := base.Gates[0]
	strict.Min = 2.0
	if checkGate(strict, measured) {
		t.Fatal("gate with floor 2.0 must fail (best speedup 1.7)")
	}
}

func TestCompareEntrySmokeGatesAllocsOnly(t *testing.T) {
	want := metrics{NsOp: 1000, BOp: 500, AllocsOp: 100}
	cases := []struct {
		name    string
		got     metrics
		smoke   bool
		violate string // "" = pass
	}{
		{"identical", want, false, ""},
		{"within-bands", metrics{NsOp: 1300, BOp: 600, AllocsOp: 101}, false, ""},
		{"allocs-regression", metrics{NsOp: 1000, BOp: 500, AllocsOp: 120}, false, "allocs/op"},
		{"ns-regression", metrics{NsOp: 1500, BOp: 500, AllocsOp: 100}, false, "ns/op"},
		{"bop-regression", metrics{NsOp: 1000, BOp: 800, AllocsOp: 100}, false, "B/op"},
		// -smoke: only allocs/op gates; wild ns/op and B/op pass, and
		// the allocs band widens to 15%.
		{"smoke-ignores-ns-bop", metrics{NsOp: 9000, BOp: 9000, AllocsOp: 110}, true, ""},
		{"smoke-allocs-regression", metrics{NsOp: 1000, BOp: 500, AllocsOp: 120}, true, "allocs/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			band := 1.02
			if tc.smoke {
				band = 1.15
			}
			reasons := compareEntry(want, tc.got, tc.smoke, 0.40, band)
			if tc.violate == "" {
				if len(reasons) != 0 {
					t.Fatalf("want pass, got %v", reasons)
				}
				return
			}
			if len(reasons) == 0 {
				t.Fatalf("want %s violation, got pass", tc.violate)
			}
			if !strings.Contains(reasons[0], tc.violate) {
				t.Fatalf("reasons %v do not name %s", reasons, tc.violate)
			}
		})
	}
}

// TestZeroAllocBaselineStaysExact pins the property the scheduler gates
// rely on: a zero allocs/op baseline admits zero and only zero,
// whatever the band (0 × band = 0).
func TestZeroAllocBaselineStaysExact(t *testing.T) {
	want := metrics{NsOp: 50, BOp: 0, AllocsOp: 0}
	if r := compareEntry(want, metrics{NsOp: 50, AllocsOp: 0}, true, 0.40, 1.15); len(r) != 0 {
		t.Fatalf("zero vs zero: %v", r)
	}
	if r := compareEntry(want, metrics{NsOp: 50, AllocsOp: 1}, true, 0.40, 1.15); len(r) == 0 {
		t.Fatal("1 alloc against a zero baseline must fail even in -smoke")
	}
}

func TestRepoBaselinesValidate(t *testing.T) {
	// The repo's own baselines must satisfy the column discipline the
	// fixtures pin down.
	for _, path := range []string{"../../BENCH_baseline.json", "../../BENCH_scaling.json"} {
		base, err := loadBaseline(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if names, _, _ := selectGated(&base); len(names) == 0 {
			t.Fatalf("%s: no gated benchmarks", path)
		}
	}
}

func TestRSSGrowthGate(t *testing.T) {
	g := gateSpec{Type: "max_rss_growth", Benchmark: "BenchmarkCampaignMemory", Max: 2.0}
	measured := map[string]metrics{
		"BenchmarkCampaignMemory/pages=96":  {NsOp: 1e9, PeakRSSMB: 200},
		"BenchmarkCampaignMemory/pages=768": {NsOp: 8e9, PeakRSSMB: 350},
		"BenchmarkOther/pages=5000":         {NsOp: 1e9, PeakRSSMB: 9000}, // ignored
	}
	if !checkGate(g, measured) {
		t.Fatal("1.75x growth under a 2.0x ceiling must pass")
	}
	measured["BenchmarkCampaignMemory/pages=768"] = metrics{NsOp: 8e9, PeakRSSMB: 500}
	if checkGate(g, measured) {
		t.Fatal("2.5x growth over a 2.0x ceiling must fail")
	}
	// Scale-agnostic: the same gate binds whatever pages=N pair ran.
	record := map[string]metrics{
		"BenchmarkCampaignMemory/pages=1000":  {NsOp: 1e9, PeakRSSMB: 300},
		"BenchmarkCampaignMemory/pages=10000": {NsOp: 9e9, PeakRSSMB: 450},
	}
	if !checkGate(g, record) {
		t.Fatal("record-scale pair within ceiling must pass")
	}
	// A single measured scale cannot prove sub-linearity: fail loudly.
	if checkGate(g, map[string]metrics{
		"BenchmarkCampaignMemory/pages=96": {NsOp: 1e9, PeakRSSMB: 200},
	}) {
		t.Fatal("one measurement must fail the growth gate")
	}

	// A custom scale param selects <param>=N sub-benchmarks instead of
	// pages=N (the population-traffic gate scales by visit count).
	pop := gateSpec{Type: "max_rss_growth", Benchmark: "BenchmarkPopulationCampaign", Param: "visits", Max: 2.0}
	byVisits := map[string]metrics{
		"BenchmarkPopulationCampaign/visits=1200": {NsOp: 1e9, PeakRSSMB: 150},
		"BenchmarkPopulationCampaign/visits=9600": {NsOp: 8e9, PeakRSSMB: 220},
	}
	if !checkGate(pop, byVisits) {
		t.Fatal("visits-keyed growth under the ceiling must pass")
	}
	byVisits["BenchmarkPopulationCampaign/visits=9600"] = metrics{NsOp: 8e9, PeakRSSMB: 500}
	if checkGate(pop, byVisits) {
		t.Fatal("visits-keyed growth over the ceiling must fail")
	}
	// The param must not silently fall back to pages=N rows.
	if checkGate(pop, measured) {
		t.Fatal("visits param must ignore pages=N measurements")
	}
}

func TestGateSpecValidation(t *testing.T) {
	bad := baselineFile{Gates: []gateSpec{{Type: "max_rss_growth", Benchmark: "BenchmarkX"}}}
	if bad.validate() == nil {
		t.Fatal("max_rss_growth without a ceiling must not validate")
	}
	good := baselineFile{Gates: []gateSpec{{Type: "max_rss_growth", Benchmark: "BenchmarkX", Max: 2}}}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterOnly(t *testing.T) {
	base, err := loadBaseline(filepath.Join("testdata", "rotate.json"))
	if err != nil {
		t.Fatal(err)
	}
	names, byPkg, missingPrior := selectGated(&base)
	names, byPkg, missingPrior = filterOnly(names, byPkg, missingPrior, "Alpha")
	if len(names) != 1 || names[0] != "BenchmarkAlpha" {
		t.Fatalf("filtered names = %v", names)
	}
	if len(missingPrior) != 0 {
		t.Fatalf("missingPrior = %v", missingPrior)
	}
	if len(byPkg) != 1 || !byPkg["."]["BenchmarkAlpha"] {
		t.Fatalf("byPkg = %v (packages without surviving roots must drop)", byPkg)
	}
	// Sub-benchmark names keep their root in byPkg.
	subNames := []string{"BenchmarkMem/pages=96", "BenchmarkMem/pages=768", "BenchmarkScale/workers=1"}
	subPkg := map[string]map[string]bool{"./internal/core": {"BenchmarkMem": true, "BenchmarkScale": true}}
	gotNames, gotPkg, _ := filterOnly(subNames, subPkg, nil, "Mem")
	if len(gotNames) != 2 {
		t.Fatalf("sub-benchmark filter names = %v", gotNames)
	}
	if len(gotPkg["./internal/core"]) != 1 || !gotPkg["./internal/core"]["BenchmarkMem"] {
		t.Fatalf("sub-benchmark filter byPkg = %v", gotPkg)
	}
}
