// Command benchgate is the repository's benchmark regression gate: it
// runs the recorded hot-path benchmarks and compares them against the
// `current` column of BENCH_baseline.json.
//
// Two kinds of gate apply:
//
//   - allocs/op is near-exact: a 2% band absorbs pool/GC timing jitter
//     on campaign-sized benchmarks, while a zero baseline stays exact
//     (0 x 1.02 = 0). This is what keeps the scheduler dispatch and
//     timer-reset paths pinned at zero allocations.
//   - ns/op (and B/op) carry a tolerance band (-tolerance, default
//     0.40): wall-time on shared CI-class machines is noisy — identical
//     code has measured ±20% run-to-run on the 1-core reference
//     container — so only regressions beyond the band fail.
//
// The gated set includes BenchmarkRunVisitImpairedAllocs (fault layer
// armed: bursty loss + jitter + reordering), budgeting the recovery
// machinery, alongside BenchmarkRunVisitAllocs which pins the
// nil-Impairment visit path to its pre-fault-layer allocation budget.
//
// Baseline entries may name their package with a "pkg" field (a go-test
// path like "./internal/core"); benchmarks are grouped and run with one
// `go test -bench` invocation per package. `-smoke` gates allocs/op
// only (with a widened 15% band — short runs amortize pool warm-up over
// fewer iterations), for the fast `make bench-smoke` pass where ns/op
// and B/op are too noisy to judge.
//
// Usage:
//
//	benchgate [-baseline BENCH_baseline.json] [-tolerance 0.40] [-benchtime 2s] [-smoke]
//
// Exit status 0 when every recorded benchmark is within its gate,
// 1 otherwise. Stdlib-only by design: it must run anywhere `go test`
// does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type baselineEntry struct {
	// Pkg is the package the benchmark lives in, as a go-test path
	// relative to the repo root; empty means the root package.
	Pkg     string   `json:"pkg"`
	Current *metrics `json:"current"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result row, e.g.
// BenchmarkSchedulerEventDispatch-4  84821144  14.12 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline file")
		tolerance = flag.Float64("tolerance", 0.40, "relative ns/op regression band")
		benchtime = flag.String("benchtime", "2s", "go test -benchtime value")
		smoke     = flag.Bool("smoke", false, "gate allocs/op only (short-benchtime smoke pass: ns/op and B/op are too noisy to judge)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baseline, err)
		return 1
	}

	// Gate every baseline entry that is a Go benchmark with a recorded
	// `current` column (other entries, like campaign wall-clock notes,
	// are informational). Benchmarks are grouped by their package — one
	// `go test -bench` invocation per package.
	var names []string
	byPkg := make(map[string][]string)
	for name, e := range base.Benchmarks {
		if strings.HasPrefix(name, "Benchmark") && e.Current != nil {
			names = append(names, name)
			pkg := e.Pkg
			if pkg == "" {
				pkg = "."
			}
			byPkg[pkg] = append(byPkg[pkg], name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no gated benchmarks in %s\n", *baseline)
		return 1
	}

	measured := make(map[string]metrics)
	for pkg, pkgNames := range byPkg {
		pattern := "^(" + strings.Join(pkgNames, "|") + ")$"
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
			"-benchtime", *benchtime, "-count", "1", pkg)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: go test %s: %v\n%s", pkg, err, out)
			return 1
		}
		for _, line := range strings.Split(string(out), "\n") {
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ns, _ := strconv.ParseFloat(m[2], 64)
			b, _ := strconv.ParseFloat(m[3], 64)
			allocs, _ := strconv.ParseFloat(m[4], 64)
			measured[m[1]] = metrics{NsOp: ns, BOp: b, AllocsOp: allocs}
		}
	}

	// Short-benchtime smoke runs amortize pool and free-list warm-up
	// over far fewer iterations, so allocs/op reads ~10% above the 2s
	// baseline on identical code; the smoke band is wide enough to
	// absorb that while still catching real regressions.
	allocsBand := 1.02
	if *smoke {
		allocsBand = 1.15
	}

	failed := false
	for _, name := range names {
		want := *base.Benchmarks[name].Current
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: benchmark did not run\n", name)
			failed = true
			continue
		}
		status := "ok  "
		var reasons []string
		if got.AllocsOp > want.AllocsOp*allocsBand {
			reasons = append(reasons, fmt.Sprintf("allocs/op %.0f > %.0f +%.0f%%", got.AllocsOp, want.AllocsOp, (allocsBand-1)*100))
		}
		if !*smoke && got.BOp > want.BOp*(1+*tolerance) {
			reasons = append(reasons, fmt.Sprintf("B/op %.0f > %.0f +%.0f%%", got.BOp, want.BOp, *tolerance*100))
		}
		if !*smoke && got.NsOp > want.NsOp*(1+*tolerance) {
			reasons = append(reasons, fmt.Sprintf("ns/op %.2f > %.2f +%.0f%%", got.NsOp, want.NsOp, *tolerance*100))
		}
		if len(reasons) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s %-34s %12.2f ns/op (base %.2f)  %8.0f B/op (base %.0f)  %5.0f allocs/op (base %.0f)\n",
			status, name, got.NsOp, want.NsOp, got.BOp, want.BOp, got.AllocsOp, want.AllocsOp)
		for _, r := range reasons {
			fmt.Printf("benchgate:      %s: %s\n", name, r)
		}
		if got.NsOp < want.NsOp*(1-*tolerance) {
			fmt.Printf("benchgate:      %s: ns/op improved beyond the band — consider refreshing %s\n", name, *baseline)
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL")
		return 1
	}
	fmt.Println("benchgate: PASS")
	return 0
}
