// Command benchgate is the repository's benchmark regression gate: it
// runs the recorded hot-path benchmarks and compares them against the
// `current` column of BENCH_baseline.json.
//
// Two kinds of gate apply:
//
//   - allocs/op is near-exact: a 2% band absorbs pool/GC timing jitter
//     on campaign-sized benchmarks, while a zero baseline stays exact
//     (0 x 1.02 = 0). This is what keeps the scheduler dispatch and
//     timer-reset paths pinned at zero allocations.
//   - ns/op (and B/op) carry a tolerance band (-tolerance, default
//     0.40): wall-time on shared CI-class machines is noisy — identical
//     code has measured ±20% run-to-run on the 1-core reference
//     container — so only regressions beyond the band fail.
//
// The gated set includes BenchmarkRunVisitImpairedAllocs (fault layer
// armed: bursty loss + jitter + reordering), budgeting the recovery
// machinery, alongside BenchmarkRunVisitAllocs which pins the
// nil-Impairment visit path to its pre-fault-layer allocation budget.
//
// Usage:
//
//	benchgate [-baseline BENCH_baseline.json] [-tolerance 0.40] [-benchtime 2s]
//
// Exit status 0 when every recorded benchmark is within its gate,
// 1 otherwise. Stdlib-only by design: it must run anywhere `go test`
// does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type baselineEntry struct {
	Current *metrics `json:"current"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result row, e.g.
// BenchmarkSchedulerEventDispatch-4  84821144  14.12 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline file")
		tolerance = flag.Float64("tolerance", 0.40, "relative ns/op regression band")
		benchtime = flag.String("benchtime", "2s", "go test -benchtime value")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baseline, err)
		return 1
	}

	// Gate every baseline entry that is a Go benchmark with a recorded
	// `current` column (other entries, like campaign wall-clock notes,
	// are informational).
	var names []string
	for name, e := range base.Benchmarks {
		if strings.HasPrefix(name, "Benchmark") && e.Current != nil {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no gated benchmarks in %s\n", *baseline)
		return 1
	}

	pattern := "^(" + strings.Join(names, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", *benchtime, "-count", "1", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: go test: %v\n%s", err, out)
		return 1
	}

	measured := make(map[string]metrics)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		b, _ := strconv.ParseFloat(m[3], 64)
		allocs, _ := strconv.ParseFloat(m[4], 64)
		measured[m[1]] = metrics{NsOp: ns, BOp: b, AllocsOp: allocs}
	}

	failed := false
	for _, name := range names {
		want := *base.Benchmarks[name].Current
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: benchmark did not run\n", name)
			failed = true
			continue
		}
		status := "ok  "
		var reasons []string
		if got.AllocsOp > want.AllocsOp*1.02 {
			reasons = append(reasons, fmt.Sprintf("allocs/op %.0f > %.0f +2%%", got.AllocsOp, want.AllocsOp))
		}
		if got.BOp > want.BOp*(1+*tolerance) {
			reasons = append(reasons, fmt.Sprintf("B/op %.0f > %.0f +%.0f%%", got.BOp, want.BOp, *tolerance*100))
		}
		if got.NsOp > want.NsOp*(1+*tolerance) {
			reasons = append(reasons, fmt.Sprintf("ns/op %.2f > %.2f +%.0f%%", got.NsOp, want.NsOp, *tolerance*100))
		}
		if len(reasons) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s %-34s %12.2f ns/op (base %.2f)  %8.0f B/op (base %.0f)  %5.0f allocs/op (base %.0f)\n",
			status, name, got.NsOp, want.NsOp, got.BOp, want.BOp, got.AllocsOp, want.AllocsOp)
		for _, r := range reasons {
			fmt.Printf("benchgate:      %s: %s\n", name, r)
		}
		if got.NsOp < want.NsOp*(1-*tolerance) {
			fmt.Printf("benchgate:      %s: ns/op improved beyond the band — consider refreshing %s\n", name, *baseline)
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL")
		return 1
	}
	fmt.Println("benchgate: PASS")
	return 0
}
