// Command benchgate is the repository's benchmark regression gate: it
// runs the recorded hot-path benchmarks and compares them against the
// `current` column of BENCH_baseline.json.
//
// Two kinds of gate apply:
//
//   - allocs/op is near-exact: a 2% band absorbs pool/GC timing jitter
//     on campaign-sized benchmarks, while a zero baseline stays exact
//     (0 x 1.02 = 0). This is what keeps the scheduler dispatch and
//     timer-reset paths pinned at zero allocations.
//   - ns/op (and B/op) carry a tolerance band (-tolerance, default
//     0.40): wall-time on shared CI-class machines is noisy — identical
//     code has measured ±20% run-to-run on the 1-core reference
//     container — so only regressions beyond the band fail.
//
// The gated set includes BenchmarkRunVisitImpairedAllocs (fault layer
// armed: bursty loss + jitter + reordering), budgeting the recovery
// machinery, alongside BenchmarkRunVisitAllocs which pins the
// nil-Impairment visit path to its pre-fault-layer allocation budget.
//
// Baseline entries may name their package with a "pkg" field (a go-test
// path like "./internal/core"); benchmarks are grouped and run with one
// `go test -bench` invocation per package. `-smoke` gates allocs/op
// only (with a widened 15% band — short runs amortize pool warm-up over
// fewer iterations), for the fast `make bench-smoke` pass where ns/op
// and B/op are too noisy to judge.
//
// A second baseline file, BENCH_scaling.json, records the multi-core
// campaign scaling benchmark (`benchgate -baseline BENCH_scaling.json`,
// via `make bench-scaling`). Its entries are sub-benchmarks carrying
// custom metrics (events/sec, peak-RSS-MB) and are marked
// "informational": benchgate measures and prints them but applies no
// per-metric band — the gate is the file's "gates" array instead, e.g.
//
//	{"type": "min_efficiency", "benchmark": "BenchmarkCampaignScaling",
//	 "workers": 4, "min": 0.80}
//
// which derives parallel efficiency at N workers from the measured
// events/sec — speedup over the workers=1 run, normalized by the ideal
// parallelism min(N, NumCPU) — and fails below the floor. On a
// single-core machine the scaling benchmark skips itself and efficiency
// gates are skipped with it.
//
// Usage:
//
//	benchgate [-baseline BENCH_baseline.json] [-tolerance 0.40] [-benchtime 2s] [-smoke]
//
// Exit status 0 when every recorded benchmark is within its gate,
// 1 otherwise. Stdlib-only by design: it must run anywhere `go test`
// does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type metrics struct {
	NsOp         float64 `json:"ns_op"`
	BOp          float64 `json:"b_op"`
	AllocsOp     float64 `json:"allocs_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	PeakRSSMB    float64 `json:"peak_rss_mb,omitempty"`
}

type baselineEntry struct {
	// Pkg is the package the benchmark lives in, as a go-test path
	// relative to the repo root; empty means the root package.
	Pkg string `json:"pkg"`
	// The three history columns: Seed is the first recording, Prior the
	// previous PR's record, Current what the gate compares against. A
	// baseline rotation moves Current to Prior and records a fresh
	// Current; only Current participates in gating.
	Seed    *metrics `json:"seed"`
	Prior   *metrics `json:"prior"`
	Current *metrics `json:"current"`
	// Informational entries are measured and printed but carry no
	// per-metric band; they exist to be recorded and to feed derived
	// gates (see gateSpec).
	Informational bool `json:"informational"`
}

// gateSpec is a derived gate computed over measured results rather than
// a per-benchmark band. Two types exist:
//
//   - "min_efficiency": parallel efficiency of benchmark/workers=N vs
//     benchmark/workers=1, normalized by min(N, NumCPU), must be at
//     least Min.
//   - "max_rss_growth": the peak-RSS-MB ratio between the largest and
//     smallest measured benchmark/<param>=N sub-benchmarks must be at
//     most Max — the bounded-memory claim, scale-agnostic so smoke and
//     record runs gate the same way. Param names the sub-benchmark
//     scale key ("pages" when omitted; the population-traffic memory
//     gate scales by "visits").
type gateSpec struct {
	Type      string  `json:"type"`
	Benchmark string  `json:"benchmark"`
	Param     string  `json:"param"`
	Workers   int     `json:"workers"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
	Gates      []gateSpec               `json:"gates"`
}

// validate enforces the baseline column discipline up front, so a
// mangled rotation fails the gate run immediately instead of silently
// gating against nothing. A `prior` without a `current` is the
// signature of a half-finished rotation (current was moved aside and
// never re-recorded); an unknown gate type would otherwise only
// surface after minutes of benchmarking.
func (b *baselineFile) validate() error {
	for name, e := range b.Benchmarks {
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		if e.Current == nil && e.Prior != nil {
			return fmt.Errorf("%s: has 'prior' but no 'current' — a rotation moves current to prior and must record a fresh current", name)
		}
	}
	for _, g := range b.Gates {
		switch g.Type {
		case "min_efficiency":
			if g.Benchmark == "" || g.Min <= 0 {
				return fmt.Errorf("gates: %s gate needs a benchmark and a positive floor", g.Type)
			}
		case "max_rss_growth":
			if g.Benchmark == "" || g.Max <= 0 {
				return fmt.Errorf("gates: %s gate needs a benchmark and a positive ceiling", g.Type)
			}
		default:
			return fmt.Errorf("gates: unknown type %q", g.Type)
		}
	}
	return nil
}

// loadBaseline reads, parses, and validates a baseline file.
func loadBaseline(path string) (baselineFile, error) {
	var base baselineFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return base, fmt.Errorf("parsing %s: %v", path, err)
	}
	if err := base.validate(); err != nil {
		return base, fmt.Errorf("%s: %v", path, err)
	}
	return base, nil
}

// selectGated picks every baseline entry that is a Go benchmark with a
// recorded `current` column (other entries, like campaign wall-clock
// notes, are free-form) and groups them by package for one
// `go test -bench` invocation each. Sub-benchmark entries
// ("Benchmark/sub=1") select their root benchmark in the -bench
// pattern; measurements are keyed by the full sub-benchmark name.
// missingPrior lists gated entries with no `prior` column — fine for a
// first recording, worth surfacing so a dropped column is noticed.
func selectGated(base *baselineFile) (names []string, byPkg map[string]map[string]bool, missingPrior []string) {
	byPkg = make(map[string]map[string]bool)
	for name, e := range base.Benchmarks {
		if !strings.HasPrefix(name, "Benchmark") || e.Current == nil {
			continue
		}
		names = append(names, name)
		if e.Prior == nil && !e.Informational {
			missingPrior = append(missingPrior, name)
		}
		pkg := e.Pkg
		if pkg == "" {
			pkg = "."
		}
		root, _, _ := strings.Cut(name, "/")
		if byPkg[pkg] == nil {
			byPkg[pkg] = make(map[string]bool)
		}
		byPkg[pkg][root] = true
	}
	sort.Strings(names)
	sort.Strings(missingPrior)
	return names, byPkg, missingPrior
}

// compareEntry applies the banded gate of one benchmark: allocs/op
// within allocsBand always, B/op and ns/op within the tolerance band
// unless smoke (short runs are too noisy to judge either). It returns
// the violation descriptions, empty when the measurement passes.
func compareEntry(want, got metrics, smoke bool, tolerance, allocsBand float64) []string {
	var reasons []string
	if got.AllocsOp > want.AllocsOp*allocsBand {
		reasons = append(reasons, fmt.Sprintf("allocs/op %.0f > %.0f +%.0f%%", got.AllocsOp, want.AllocsOp, (allocsBand-1)*100))
	}
	if !smoke && got.BOp > want.BOp*(1+tolerance) {
		reasons = append(reasons, fmt.Sprintf("B/op %.0f > %.0f +%.0f%%", got.BOp, want.BOp, tolerance*100))
	}
	if !smoke && got.NsOp > want.NsOp*(1+tolerance) {
		reasons = append(reasons, fmt.Sprintf("ns/op %.2f > %.2f +%.0f%%", got.NsOp, want.NsOp, tolerance*100))
	}
	return reasons
}

// parseBenchLine parses one `go test -bench` result row, e.g.
//
//	BenchmarkSchedulerEventDispatch-4  84821144  14.12 ns/op  0 B/op  0 allocs/op
//	BenchmarkCampaignScaling/workers=4-2  1  3.6e9 ns/op  376342 events/sec  183.5 peak-RSS-MB
//
// into the benchmark name (GOMAXPROCS suffix stripped) and its metric
// value/unit pairs. Reports ok=false for non-result lines.
func parseBenchLine(line string) (name string, m metrics, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metrics{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", metrics{}, false
	}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsOp, sawNs = v, true
		case "B/op":
			m.BOp = v
		case "allocs/op":
			m.AllocsOp = v
		case "events/sec":
			m.EventsPerSec = v
		case "peak-RSS-MB":
			m.PeakRSSMB = v
		}
	}
	return name, m, sawNs
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline file")
		tolerance = flag.Float64("tolerance", 0.40, "relative ns/op regression band")
		benchtime = flag.String("benchtime", "2s", "go test -benchtime value")
		smoke     = flag.Bool("smoke", false, "gate allocs/op only (short-benchtime smoke pass: ns/op and B/op are too noisy to judge)")
		only      = flag.String("only", "", "run only benchmarks whose name contains this substring; gates on other benchmarks are skipped")
	)
	flag.Parse()

	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}

	names, byPkg, missingPrior := selectGated(&base)
	if *only != "" {
		names, byPkg, missingPrior = filterOnly(names, byPkg, missingPrior, *only)
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no gated benchmarks in %s\n", *baseline)
		return 1
	}
	for _, name := range missingPrior {
		fmt.Printf("benchgate: note %s: no 'prior' column (first recording?)\n", name)
	}

	measured := make(map[string]metrics)
	for pkg, rootSet := range byPkg {
		roots := make([]string, 0, len(rootSet))
		for root := range rootSet {
			roots = append(roots, root)
		}
		pattern := "^(" + strings.Join(roots, "|") + ")$"
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
			"-benchtime", *benchtime, "-count", "1", pkg)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: go test %s: %v\n%s", pkg, err, out)
			return 1
		}
		for _, line := range strings.Split(string(out), "\n") {
			if name, m, ok := parseBenchLine(line); ok {
				measured[name] = m
			}
		}
	}

	// Short-benchtime smoke runs amortize pool and free-list warm-up
	// over far fewer iterations, so allocs/op reads ~10% above the 2s
	// baseline on identical code; the smoke band is wide enough to
	// absorb that while still catching real regressions.
	allocsBand := 1.02
	if *smoke {
		allocsBand = 1.15
	}

	failed := false
	for _, name := range names {
		entry := base.Benchmarks[name]
		want := *entry.Current
		got, ok := measured[name]
		if !ok {
			if entry.Informational && runtime.NumCPU() == 1 {
				fmt.Printf("benchgate: skip %s: benchmark skipped on this machine\n", name)
				continue
			}
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: benchmark did not run\n", name)
			failed = true
			continue
		}
		if entry.Informational {
			fmt.Printf("benchgate: info %-34s %12.2f ns/op  %10.0f events/sec (base %.0f)  %7.1f peak-RSS-MB (base %.1f)\n",
				name, got.NsOp, got.EventsPerSec, want.EventsPerSec, got.PeakRSSMB, want.PeakRSSMB)
			continue
		}
		status := "ok  "
		reasons := compareEntry(want, got, *smoke, *tolerance, allocsBand)
		if len(reasons) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s %-34s %12.2f ns/op (base %.2f)  %8.0f B/op (base %.0f)  %5.0f allocs/op (base %.0f)\n",
			status, name, got.NsOp, want.NsOp, got.BOp, want.BOp, got.AllocsOp, want.AllocsOp)
		for _, r := range reasons {
			fmt.Printf("benchgate:      %s: %s\n", name, r)
		}
		if got.NsOp < want.NsOp*(1-*tolerance) {
			fmt.Printf("benchgate:      %s: ns/op improved beyond the band — consider refreshing %s\n", name, *baseline)
		}
	}
	for _, g := range base.Gates {
		if *only != "" && !strings.Contains(g.Benchmark, *only) {
			fmt.Printf("benchgate: skip %s %s gate: filtered by -only %s\n", g.Benchmark, g.Type, *only)
			continue
		}
		if !checkGate(g, measured) {
			failed = true
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL")
		return 1
	}
	fmt.Println("benchgate: PASS")
	return 0
}

// filterOnly restricts a selectGated result to benchmarks whose name
// contains the -only substring, dropping packages left with no roots.
func filterOnly(names []string, byPkg map[string]map[string]bool, missingPrior []string, only string) ([]string, map[string]map[string]bool, []string) {
	keep := func(in []string) []string {
		var out []string
		for _, n := range in {
			if strings.Contains(n, only) {
				out = append(out, n)
			}
		}
		return out
	}
	names = keep(names)
	missingPrior = keep(missingPrior)
	roots := make(map[string]bool)
	for _, n := range names {
		root, _, _ := strings.Cut(n, "/")
		roots[root] = true
	}
	outPkg := make(map[string]map[string]bool)
	for pkg, rootSet := range byPkg {
		for root := range rootSet {
			if !roots[root] {
				continue
			}
			if outPkg[pkg] == nil {
				outPkg[pkg] = make(map[string]bool)
			}
			outPkg[pkg][root] = true
		}
	}
	return names, outPkg, missingPrior
}

// checkGate evaluates one derived gate against the measured results,
// printing its verdict; it reports false on failure.
func checkGate(g gateSpec, measured map[string]metrics) bool {
	switch g.Type {
	case "min_efficiency":
		// handled below
	case "max_rss_growth":
		return checkRSSGrowthGate(g, measured)
	default:
		fmt.Fprintf(os.Stderr, "benchgate: FAIL gate: unknown type %q\n", g.Type)
		return false
	}
	if runtime.NumCPU() == 1 {
		fmt.Printf("benchgate: skip %s efficiency gate: single-core machine\n", g.Benchmark)
		return true
	}
	// On machines with fewer cores than the gated worker count, evaluate
	// at the largest measurable parallelism instead: running 4 workers on
	// 2 cores measures oversubscription and GC pressure, not scaling.
	ideal := g.Workers
	if n := runtime.NumCPU(); n < ideal {
		ideal = n
	}
	base, okBase := measured[g.Benchmark+"/workers=1"]
	if !okBase || base.EventsPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL %s efficiency gate: missing workers=1 events/sec\n", g.Benchmark)
		return false
	}
	// A speedup of at least min x ideal at ANY worker count >= ideal
	// proves the pool extracts the required fraction of ideal-way
	// parallelism — taking the best measured count makes the gate robust
	// to one sub-benchmark landing in a neighbor's CPU burst, without
	// weakening the claim (more workers never make ideal-way speedup
	// easier).
	best, bestW := 0.0, 0
	for name, m := range measured {
		rest, found := strings.CutPrefix(name, g.Benchmark+"/workers=")
		if !found {
			continue
		}
		w, err := strconv.Atoi(rest)
		if err != nil || w < ideal {
			continue
		}
		if sp := m.EventsPerSec / base.EventsPerSec; sp > best {
			best, bestW = sp, w
		}
	}
	if bestW == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL %s efficiency gate: no workers>=%d measurement\n", g.Benchmark, ideal)
		return false
	}
	eff := best / float64(ideal)
	// Enforce only where the gated worker count is actually measurable:
	// below g.Workers cores, the clamped reading mixes in GC and OS
	// contention for the undersized core budget (observed ±2× on the
	// shared 2-core reference container), so it is reported, not gated.
	enforced := runtime.NumCPU() >= g.Workers
	ok := eff >= g.Min || !enforced
	status := "ok  "
	switch {
	case !enforced:
		status = "info"
	case !ok:
		status = "FAIL"
	}
	fmt.Printf("benchgate: %s %s parallel efficiency vs ideal ×%d: %.2f (floor %.2f, speedup %.2f at %d workers, %d CPUs",
		status, g.Benchmark, ideal, eff, g.Min, best, bestW, runtime.NumCPU())
	if !enforced {
		fmt.Printf("; not enforced below %d cores", g.Workers)
	}
	fmt.Println(")")
	return ok
}

// checkRSSGrowthGate enforces a "max_rss_growth" gate: among the
// measured benchmark/<param>=N sub-benchmarks, the peak-RSS-MB of the
// largest N must be within Max times that of the smallest N. The gate is
// deliberately scale-agnostic — it binds whichever scales actually
// ran (smoke defaults or record-scale env overrides), so the sub-linear
// memory claim is checked on every pass, not just record runs.
func checkRSSGrowthGate(g gateSpec, measured map[string]metrics) bool {
	param := g.Param
	if param == "" {
		param = "pages"
	}
	minPages, maxPages := 0, 0
	var minRSS, maxRSS float64
	for name, m := range measured {
		rest, found := strings.CutPrefix(name, g.Benchmark+"/"+param+"=")
		if !found {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err != nil || m.PeakRSSMB <= 0 {
			continue
		}
		if minPages == 0 || n < minPages {
			minPages, minRSS = n, m.PeakRSSMB
		}
		if n > maxPages {
			maxPages, maxRSS = n, m.PeakRSSMB
		}
	}
	if minPages == 0 || maxPages == minPages {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL %s rss-growth gate: need at least two %s=N measurements with peak-RSS-MB\n", g.Benchmark, param)
		return false
	}
	ratio := maxRSS / minRSS
	ok := ratio <= g.Max
	status := "ok  "
	if !ok {
		status = "FAIL"
	}
	fmt.Printf("benchgate: %s %s peak-RSS growth: %.2fx over a %dx %s spread (%.1f MB @ %d → %.1f MB @ %d, ceiling %.2fx)\n",
		status, g.Benchmark, ratio, maxPages/minPages, param, minRSS, minPages, maxRSS, maxPages, g.Max)
	return ok
}
