// Command h3cdn-report regenerates the paper's tables and figures.
//
// Usage:
//
//	h3cdn-report [-exp all|t1|t2|t3|f2|f3|f4|f5|f6a|f6b|f7|f8|f9|phases|lossprofile|celltrace|popcache] [flags]
//
// Most experiments run their own campaigns at the configured scale;
// alternatively point -dataset / -consecutive-dataset at files written by
// h3cdn-measure to reuse existing measurements. Figure 9 always runs its
// loss-sweep campaigns. The lossprofile experiment re-runs the Figure 9
// sweep twice per rate — i.i.d. vs bursty Gilbert–Elliott loss at the
// matched average — and is excluded from -exp all to bound runtime. The
// phases experiment folds live event traces into per-mode phase
// breakdowns; phase attributions are never serialized, so it always runs
// its own traced campaign and is likewise excluded from -exp all. The
// celltrace experiment replays campaigns over synthetic cellular
// capacity traces (simnet.TraceLink) in modes H1/H2/H3, with and
// without bursty loss — two campaigns per trace profile (-traces
// selects which), also excluded from -exp all. The popcache experiment
// sweeps open-loop user populations (-pop-sizes, per-user offered load
// held fixed) through shared TTL edge caches in modes H1/H2/H3 — one
// traffic campaign per (size, mode), likewise excluded from -exp all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"h3cdn/internal/core"
	"h3cdn/internal/har"
	"h3cdn/internal/traffic"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

func main() {
	os.Exit(run())
}

type reporter struct {
	cfg      core.CampaignConfig
	dsPath   string
	consPath string
	burstLen float64
	profiles []string
	popTc    traffic.Config
	popSizes []int

	std    *core.Dataset
	cons   *core.Dataset
	traced *core.Dataset
	fig9   []core.Fig9Series
}

func run() int {
	var (
		exp       = flag.String("exp", "all", "experiment id (t1,t2,t3,f2,f3,f4,f5,f6a,f6b,f7,f8,f9,phases,lossprofile,celltrace,popcache,all)")
		seed      = flag.Uint64("seed", 2022, "campaign seed")
		pages     = flag.Int("pages", 325, "number of websites")
		probes    = flag.Int("probes", 1, "probes per vantage point")
		burstLen  = flag.Float64("burstlen", 4, "lossprofile: Gilbert–Elliott mean burst length in packets")
		profiles  = flag.String("traces", "", "celltrace: comma-separated synthetic profiles (empty = all; see h3cdn-measure -link-trace)")
		popSizes  = flag.String("pop-sizes", "", "popcache: comma-separated population sizes to sweep (empty = ¼×, 1×, 4× of -pop-users)")
		popUsers  = flag.Int("pop-users", 64, "popcache: baseline population size anchoring the per-user offered load")
		popRate   = flag.Float64("pop-rate", 2, "popcache: session-arrival rate at the baseline population, sessions/s of virtual time")
		popDur    = flag.Duration("pop-duration", time.Minute, "popcache: virtual-time horizon per campaign")
		popEpoch  = flag.Duration("pop-epoch", 10*time.Second, "popcache: epoch interval for the hit-rate warming trajectory")
		popTTL    = flag.Duration("pop-ttl", 0, "popcache: edge-cache entry TTL (0 = default 60s)")
		dsPath    = flag.String("dataset", "", "standard-protocol dataset JSON (from h3cdn-measure)")
		consPath  = flag.String("consecutive-dataset", "", "consecutive-protocol dataset JSON")
		plotDir   = flag.String("plot", "", "also export raw figure series as TSV into this directory")
		retention = flag.String("har-retention", "all", "HAR retention policy for campaigns this command runs: all, none, or sample:N; with none/sample, experiments needing per-page data fall back to sketch-derived (approximate) statistics")
	)
	flag.Parse()

	ret, err := har.ParseRetention(*retention)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-report: -har-retention: %v\n", err)
		return 2
	}

	sizes, err := parseSizes(*popSizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h3cdn-report: -pop-sizes: %v\n", err)
		return 2
	}

	r := &reporter{
		burstLen: *burstLen,
		profiles: splitList(*profiles),
		popSizes: sizes,
		popTc: traffic.Config{
			Users:         *popUsers,
			ArrivalRate:   *popRate,
			Duration:      *popDur,
			EpochInterval: *popEpoch,
			CacheTTL:      *popTTL,
		},
		cfg: core.CampaignConfig{
			Seed:             *seed,
			CorpusConfig:     webgen.Config{NumPages: *pages},
			Vantages:         vantage.Points(),
			ProbesPerVantage: *probes,
			Retention:        ret,
		},
		dsPath:   *dsPath,
		consPath: *consPath,
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"t1", "t2", "f2", "f3", "f4", "f5", "f6a", "f6b", "f7", "f8", "t3", "f9"}
	}
	for _, id := range ids {
		if err := r.report(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-report: %s: %v\n", id, err)
			return 1
		}
	}
	if *plotDir != "" {
		if err := core.WritePlotData(*plotDir, r.std, r.cons, r.fig9); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-report: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "h3cdn-report: plot data written to %s\n", *plotDir)
	}
	return 0
}

func (r *reporter) standard() (*core.Dataset, error) {
	if r.std != nil {
		return r.std, nil
	}
	if r.dsPath != "" {
		f, err := os.Open(r.dsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r.std, err = core.LoadDataset(f)
		return r.std, err
	}
	var err error
	r.std, err = r.campaign(false)
	return r.std, err
}

func (r *reporter) consecutive() (*core.Dataset, error) {
	if r.cons != nil {
		return r.cons, nil
	}
	if r.consPath != "" {
		f, err := os.Open(r.consPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r.cons, err = core.LoadDataset(f)
		return r.cons, err
	}
	var err error
	r.cons, err = r.campaign(true)
	return r.cons, err
}

// tracedStandard returns a standard-protocol dataset carrying phase
// attributions. Phases are folded from live event traces and never
// serialized, so a -dataset file cannot supply them: this always runs a
// campaign (with tracing on), even when -dataset is set.
func (r *reporter) tracedStandard() (*core.Dataset, error) {
	if r.traced != nil {
		return r.traced, nil
	}
	cfg := r.cfg
	cfg.TracePhases = true
	fmt.Fprintf(os.Stderr, "h3cdn-report: running traced standard campaign (%d pages, %d probes/vantage)...\n",
		cfg.CorpusConfig.NumPages, cfg.ProbesPerVantage)
	start := time.Now()
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "h3cdn-report: traced campaign done in %v\n", time.Since(start).Round(time.Second))
	r.traced = ds
	return ds, nil
}

func (r *reporter) campaign(consecutive bool) (*core.Dataset, error) {
	cfg := r.cfg
	cfg.Consecutive = consecutive
	kind := "standard"
	if consecutive {
		kind = "consecutive"
	}
	fmt.Fprintf(os.Stderr, "h3cdn-report: running %s campaign (%d pages, %d probes/vantage)...\n",
		kind, cfg.CorpusConfig.NumPages, cfg.ProbesPerVantage)
	start := time.Now()
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "h3cdn-report: %s campaign done in %v\n", kind, time.Since(start).Round(time.Second))
	return ds, nil
}

func (r *reporter) report(id string) error {
	switch id {
	case "t1":
		fmt.Println(core.RenderTable1(core.Table1()))
	case "t2":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderTable2(core.ComputeTable2(ds)))
	case "f2":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure2(core.ComputeFigure2(ds)))
	case "f3":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure3(core.ComputeFigure3(ds)))
	case "f4":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure4(core.ComputeFigure4(ds)))
	case "f5":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure5(core.ComputeFigure5(ds)))
	case "f6a":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure6a(core.ComputeFigure6a(ds)))
	case "f6b":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure6b(core.ComputeFigure6b(ds)))
	case "f7":
		ds, err := r.standard()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure7(core.ComputeFigure7ab(ds), core.ComputeFigure7c(ds)))
	case "f8":
		ds, err := r.consecutive()
		if err != nil {
			return err
		}
		fmt.Println(core.RenderFigure8(core.ComputeFigure8(ds)))
	case "t3":
		ds, err := r.consecutive()
		if err != nil {
			return err
		}
		t3, err := core.ComputeTable3(ds)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderTable3(t3))
	case "f9":
		fmt.Fprintln(os.Stderr, "h3cdn-report: running Figure 9 loss sweep (3 campaigns)...")
		series, err := core.RunFigure9(r.cfg)
		if err != nil {
			return err
		}
		r.fig9 = series
		fmt.Println(core.RenderFigure9(series))
	case "phases":
		ds, err := r.tracedStandard()
		if err != nil {
			return err
		}
		rows, err := core.ComputePhaseReport(ds)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderPhaseReport(rows))
	case "lossprofile":
		fmt.Fprintf(os.Stderr, "h3cdn-report: running loss-profile sweep (i.i.d. vs bursty, mean burst %.0f)...\n", r.burstLen)
		rows, err := core.RunLossProfile(r.cfg, r.burstLen)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderLossProfile(rows))
	case "celltrace":
		fmt.Fprintln(os.Stderr, "h3cdn-report: running cellular-trace replay (2 campaigns per profile, modes H1/H2/H3)...")
		rows, err := core.RunCellTrace(r.cfg, r.profiles)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderCellTrace(rows))
	case "popcache":
		fmt.Fprintln(os.Stderr, "h3cdn-report: running population cache-contention sweep (one traffic campaign per size and mode)...")
		rows, err := core.RunPopCache(r.cfg, r.popTc, r.popSizes)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderPopCache(rows))
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// parseSizes parses the comma-separated -pop-sizes population list.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("population size %q: want a positive integer", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// splitList splits a comma-separated flag value, dropping empty fields.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
