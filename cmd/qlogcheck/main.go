// Command qlogcheck validates qlog JSONL trace files written by
// h3cdn-measure -qlog and prints per-file summaries.
//
// Usage:
//
//	qlogcheck file.qlog...
//	qlogcheck -dir traces/
//
// Every line must parse as standalone JSON (the JSON-SEQ text framing
// qlog tools consume). The checker verifies the header line, pairs
// visit_start/visit_end records, and reports event counts and any
// ring-overflow drops. It exits nonzero on the first malformed file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", "", "check every .qlog file under this directory")
	flag.Parse()

	files := flag.Args()
	if *dir != "" {
		found, err := filepath.Glob(filepath.Join(*dir, "*.qlog"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qlogcheck: %v\n", err)
			return 1
		}
		sort.Strings(found)
		files = append(files, found...)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "qlogcheck: no input files (pass paths or -dir)")
		return 2
	}

	var totalVisits, totalEvents int
	for _, name := range files {
		sum, err := checkFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qlogcheck: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("%s: %d visits, %d events, %d dropped\n",
			filepath.Base(name), sum.visits, sum.events, sum.dropped)
		totalVisits += sum.visits
		totalEvents += sum.events
	}
	fmt.Printf("total: %d files, %d visits, %d events\n", len(files), totalVisits, totalEvents)
	return 0
}

type summary struct {
	visits  int
	events  int
	dropped int
}

// checkFile validates one qlog file line by line.
func checkFile(name string) (summary, error) {
	var sum summary
	f, err := os.Open(name)
	if err != nil {
		return sum, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	line := 0
	openVisit := false
	for sc.Scan() {
		line++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return sum, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		if line == 1 {
			if rec["qlog_format"] != "JSON-SEQ" {
				return sum, fmt.Errorf("line 1: missing qlog JSON-SEQ header")
			}
			continue
		}
		switch rec["name"] {
		case "sim:visit_start":
			if openVisit {
				return sum, fmt.Errorf("line %d: visit_start inside an open visit", line)
			}
			openVisit = true
			sum.visits++
			if data, ok := rec["data"].(map[string]any); ok {
				if d, _ := data["dropped_events"].(float64); d > 0 {
					sum.dropped += int(d)
				}
			}
		case "sim:visit_end":
			if !openVisit {
				return sum, fmt.Errorf("line %d: visit_end without visit_start", line)
			}
			openVisit = false
		case nil:
			return sum, fmt.Errorf("line %d: event record without a name", line)
		default:
			if !openVisit {
				return sum, fmt.Errorf("line %d: event outside a visit", line)
			}
			sum.events++
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	if openVisit {
		return sum, fmt.Errorf("unterminated visit at end of file")
	}
	return sum, nil
}
