// Command h3cdn-corpus generates and inspects the synthetic webpage
// corpus standing in for the paper's 325 Alexa-Top landing pages.
//
// Usage:
//
//	h3cdn-corpus [-pages N] [-seed S] [-dump]
//
// Without -dump, prints summary statistics (the generator-side view of
// Figs. 3-5); with -dump, writes the full corpus as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"h3cdn/internal/webgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed  = flag.Uint64("seed", 2022, "corpus seed")
		pages = flag.Int("pages", 325, "number of websites")
		dump  = flag.Bool("dump", false, "dump full corpus JSON")
	)
	flag.Parse()

	corpus := webgen.Generate(webgen.Config{Seed: *seed, NumPages: *pages})
	if *dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(corpus); err != nil {
			fmt.Fprintf(os.Stderr, "h3cdn-corpus: %v\n", err)
			return 1
		}
		return 0
	}

	st := corpus.Stats()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "pages\t%d\n", st.Pages)
	fmt.Fprintf(w, "resources\t%d (%.1f per page)\n", st.TotalResources,
		float64(st.TotalResources)/float64(st.Pages))
	fmt.Fprintf(w, "CDN fraction\t%.3f (paper: 0.67)\n", st.CDNFraction)
	fmt.Fprintf(w, "pages >50%% CDN\t%.3f (paper: ~0.75)\n", st.PagesOverHalfCDN)
	fmt.Fprintf(w, "pages with >=2 providers\t%.3f (paper: 0.948)\n", st.AtLeastTwoProviders)
	fmt.Fprintf(w, "CDN resources <20KB\t%.3f (paper: ~0.75)\n", st.SmallResources)
	fmt.Fprintf(w, "hostnames with H3\t%.3f\n", st.H3Hostnames)
	_ = w.Flush()

	fmt.Println("\nprovider presence (Fig. 4a):")
	type pp struct {
		name string
		p    float64
	}
	var rows []pp
	for name, p := range st.ProviderPresence {
		rows = append(rows, pp{name, p})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p > rows[j].p })
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\t%.3f\n", r.name, r.p)
	}
	_ = w.Flush()

	fmt.Println("\npages by provider count (Fig. 4b):")
	var ks []int
	for k := range st.PagesWithKProviders {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, k := range ks {
		fmt.Fprintf(w, "  %d\t%d\n", k, st.PagesWithKProviders[k])
	}
	_ = w.Flush()
	return 0
}
