GO ?= go

.PHONY: all build test check vet race bench bench-alloc bench-smoke bench-scaling bench-memory benchgate trace-smoke trace-replay-smoke traffic-smoke fmt

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled run of the full suite; the campaign worker pool and the
# cross-shard sync.Pools are the interesting surfaces. Race
# instrumentation slows the internal/core campaign fixtures ~6x, past
# go test's default 10m per-package timeout — hence the explicit one.
race:
	$(GO) test -race -timeout 40m ./...

# The repo's gate: static checks, a fast allocation smoke pass, the
# tracing smoke pass, the trace-replay determinism smoke pass, the
# race-enabled suite, the benchmark regression gate, and the multi-core
# scaling gate. The smoke passes run before the (slow) race suite so
# allocation and trace-pipeline regressions fail fast.
check: vet bench-smoke trace-smoke trace-replay-smoke traffic-smoke race benchgate bench-scaling bench-memory

# Analysis/figure regeneration benchmarks (shares one campaign per run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Allocation benchmarks for the simulation hot path; compare against
# BENCH_baseline.json.
bench-alloc:
	$(GO) test -run '^$$' -bench 'SchedulerEventDispatch|SchedulerTimerReset|RunVisitAllocs' -benchtime 2s .

# Benchmark regression gate: reruns the recorded benchmarks and fails on
# regression vs the 'current' column of BENCH_baseline.json (allocs/op
# exactly; ns/op and B/op within a tolerance band).
benchgate:
	$(GO) run ./cmd/benchgate

# Fast allocation smoke pass: one short run of the gated benchmarks,
# gating allocs/op only (ns/op and B/op are too noisy at 100ms).
bench-smoke:
	$(GO) run ./cmd/benchgate -benchtime 100ms -smoke

# Multi-core scaling gate: one short run of BenchmarkCampaignScaling
# (smoke-scale corpus), gated on parallel efficiency at 4 workers via
# the gates array of BENCH_scaling.json. The benchmark skips itself on
# single-core machines and benchgate skips the efficiency gate with it.
bench-scaling:
	$(GO) run ./cmd/benchgate -baseline BENCH_scaling.json -benchtime 1x -smoke -only CampaignScaling

# Bounded-memory gate: one short run of BenchmarkCampaignMemory (a
# RetainNone campaign at two corpus scales), gated on peak-RSS growth
# across the page spread via the max_rss_growth gate of
# BENCH_scaling.json. The ratio gate is scale-agnostic, so the smoke
# scales (96/768 pages) enforce the same ceiling the recorded
# 1k/10k-page runs document. The second pass applies the same gate to
# the open-loop population traffic engine across a visit-count spread
# (BenchmarkPopulationCampaign; the recorded 100k-visit run documents
# the claim at scale).
bench-memory:
	$(GO) run ./cmd/benchgate -baseline BENCH_scaling.json -benchtime 1x -smoke -only CampaignMemory
	H3CDN_TRAFFIC_VISITS=1200,9600 $(GO) run ./cmd/benchgate -baseline BENCH_scaling.json -benchtime 1x -smoke -only PopulationCampaign

# Trace-replay smoke pass: run the same variable-link campaign (synthetic
# cellular trace + bursty loss) sequentially and with 2 workers, and
# require byte-identical datasets — the cheap end-to-end check that
# TraceLink replay composed with the fault layer stays deterministic
# under sharding.
trace-replay-smoke:
	rm -rf .trace-replay-smoke && mkdir -p .trace-replay-smoke
	$(GO) run ./cmd/h3cdn-measure -pages 6 -link-trace lte -burst-loss 0.01 -sequential -o .trace-replay-smoke/seq.json
	$(GO) run ./cmd/h3cdn-measure -pages 6 -link-trace lte -burst-loss 0.01 -workers 2 -o .trace-replay-smoke/par.json
	cmp .trace-replay-smoke/seq.json .trace-replay-smoke/par.json
	rm -rf .trace-replay-smoke

# Population-traffic smoke pass: the same open-loop traffic campaign run
# sequentially and with 2 workers must produce byte-identical datasets
# (user partitioning is worker-count independent), and a checkpointed
# run driven epoch by epoch through kill/resume cycles must reproduce
# the uninterrupted dataset byte for byte.
TRAFFIC_SMOKE_FLAGS = -pages 8 -traffic -traffic-users 24 -traffic-users-per-shard 10 \
	-traffic-rate 2 -traffic-duration 30s -traffic-epoch 10s -traffic-ttl 15s \
	-traffic-think 2s
traffic-smoke:
	rm -rf .traffic-smoke && mkdir -p .traffic-smoke/ckpt
	$(GO) run ./cmd/h3cdn-measure $(TRAFFIC_SMOKE_FLAGS) -sequential -o .traffic-smoke/seq.json
	$(GO) run ./cmd/h3cdn-measure $(TRAFFIC_SMOKE_FLAGS) -workers 2 -o .traffic-smoke/par.json
	cmp .traffic-smoke/seq.json .traffic-smoke/par.json
	$(GO) run ./cmd/h3cdn-measure $(TRAFFIC_SMOKE_FLAGS) -traffic-checkpoint .traffic-smoke/ckpt -traffic-halt-epochs 1 -o /dev/null
	$(GO) run ./cmd/h3cdn-measure $(TRAFFIC_SMOKE_FLAGS) -traffic-checkpoint .traffic-smoke/ckpt -traffic-halt-epochs 1 -o /dev/null
	$(GO) run ./cmd/h3cdn-measure $(TRAFFIC_SMOKE_FLAGS) -traffic-checkpoint .traffic-smoke/ckpt -o .traffic-smoke/resumed.json
	cmp .traffic-smoke/seq.json .traffic-smoke/resumed.json
	rm -rf .traffic-smoke

# Tracing smoke pass: run a small traced campaign through h3cdn-measure
# -qlog and validate every emitted qlog line with qlogcheck.
trace-smoke:
	rm -rf .trace-smoke && mkdir -p .trace-smoke
	$(GO) run ./cmd/h3cdn-measure -pages 4 -qlog .trace-smoke -o .trace-smoke/dataset.json
	$(GO) run ./cmd/qlogcheck -dir .trace-smoke
	rm -rf .trace-smoke

fmt:
	gofmt -l -w .
