package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"h3cdn/internal/analysis"
)

// WritePlotData exports each figure's raw series as TSV files under dir,
// one file per panel, ready for gnuplot/matplotlib. Table artifacts are
// text-rendered; figures get their underlying (x, y) series.
func WritePlotData(dir string, std, cons *Dataset, fig9 []Fig9Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: plot data: %w", err)
	}
	write := func(name string, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("core: plot data %s: %w", name, err)
		}
		return nil
	}

	if std != nil {
		if err := write("table2.txt", RenderTable2(ComputeTable2(std))); err != nil {
			return err
		}
		var sb strings.Builder
		sb.WriteString("provider\trequest_share\th3_fraction\tshare_of_h3\n")
		for _, r := range ComputeFigure2(std) {
			fmt.Fprintf(&sb, "%s\t%.4f\t%.4f\t%.4f\n", r.Provider, r.RequestShare, r.H3Fraction, r.ShareOfH3)
		}
		if err := write("fig2.tsv", sb.String()); err != nil {
			return err
		}
		if err := write("fig3_ccdf.tsv", curveTSV("cdn_pct", ComputeFigure3(std).CCDF)); err != nil {
			return err
		}

		f4 := ComputeFigure4(std)
		sb.Reset()
		sb.WriteString("provider\tpresence\n")
		for _, p := range f4.Presence {
			fmt.Fprintf(&sb, "%s\t%.4f\n", p.Provider, p.Probability)
		}
		if err := write("fig4a.tsv", sb.String()); err != nil {
			return err
		}
		sb.Reset()
		sb.WriteString("providers\tpages\n")
		for k := 0; k <= 8; k++ {
			if n, ok := f4.PagesWithK[k]; ok {
				fmt.Fprintf(&sb, "%d\t%d\n", k, n)
			}
		}
		if err := write("fig4b.tsv", sb.String()); err != nil {
			return err
		}

		for _, s := range ComputeFigure5(std) {
			name := "fig5_" + strings.ToLower(s.Provider) + ".tsv"
			if err := write(name, curveTSV("resources", s.CCDF)); err != nil {
				return err
			}
		}

		sb.Reset()
		sb.WriteString("group\tsites\tmean_h3_cdn\tplt_reduction_ms\n")
		for _, g := range ComputeFigure6a(std) {
			fmt.Fprintf(&sb, "%s\t%d\t%.2f\t%.2f\n", g.Name, g.Sites, g.MeanH3CDN, g.PLTReductionMs)
		}
		if err := write("fig6a.tsv", sb.String()); err != nil {
			return err
		}

		f6b := ComputeFigure6b(std)
		if err := write("fig6b_connect.tsv", curveTSV("reduction_ms", f6b.ConnectCDF)); err != nil {
			return err
		}
		if err := write("fig6b_wait.tsv", curveTSV("reduction_ms", f6b.WaitCDF)); err != nil {
			return err
		}
		if err := write("fig6b_receive.tsv", curveTSV("reduction_ms", f6b.ReceiveCDF)); err != nil {
			return err
		}

		sb.Reset()
		sb.WriteString("group\th2_reused\th3_reused\tdifference\n")
		for _, g := range ComputeFigure7ab(std) {
			fmt.Fprintf(&sb, "%s\t%.2f\t%.2f\t%.2f\n", g.Name, g.H2Reused, g.H3Reused, g.Difference)
		}
		if err := write("fig7ab.tsv", sb.String()); err != nil {
			return err
		}
		sb.Reset()
		sb.WriteString("bucket\tsites\tmean_difference\tplt_reduction_ms\n")
		for _, b := range ComputeFigure7c(std) {
			fmt.Fprintf(&sb, "%s\t%d\t%.2f\t%.2f\n", b.Label, b.Sites, b.MeanDifference, b.PLTReductionMs)
		}
		if err := write("fig7c.tsv", sb.String()); err != nil {
			return err
		}
	}

	if cons != nil {
		var sb strings.Builder
		sb.WriteString("providers\tsites\tplt_reduction_ms\tresumed_conns\n")
		for _, p := range ComputeFigure8(cons) {
			fmt.Fprintf(&sb, "%d\t%d\t%.2f\t%.2f\n", p.Providers, p.Sites, p.PLTReductionMs, p.ResumedConns)
		}
		if err := write("fig8.tsv", sb.String()); err != nil {
			return err
		}
		if t3, err := ComputeTable3(cons); err == nil {
			if err := write("table3.txt", RenderTable3(t3)); err != nil {
				return err
			}
		}
	}

	for _, s := range fig9 {
		name := "fig9_loss" + strconv.FormatFloat(100*s.LossRate, 'f', 1, 64) + ".tsv"
		var sb strings.Builder
		fmt.Fprintf(&sb, "# slope=%.4f intercept=%.2f median_reduction_ms=%.2f\n", s.Slope, s.Intercept, s.MedianReductionMs)
		sb.WriteString("cdn_resources\tplt_reduction_ms\n")
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%.0f\t%.2f\n", p.X, p.Y)
		}
		if err := write(name, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

func curveTSV(xName string, curve []analysis.Point) string {
	var sb strings.Builder
	sb.WriteString(xName + "\ty\n")
	for _, p := range curve {
		fmt.Fprintf(&sb, "%.4f\t%.6f\n", p.X, p.Y)
	}
	return sb.String()
}
