package core

import (
	"fmt"
	"strings"
	"time"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/sketch"
	"h3cdn/internal/trace"
)

// PhaseRow aggregates the trace-attributed phase buckets of every
// measured visit under one browsing mode. All values are milliseconds.
// Unlike Figure 6(b), which derives phases from HAR entry timings, these
// rows are folded from the raw event traces (trace.AttributeVisit), so
// they expose stall time — head-of-line blocking — which HAR timings
// cannot see.
type PhaseRow struct {
	Mode   browser.Mode
	Visits int
	// Mean bucket values across visits.
	Resolve, Connect, Handshake, Stall, Transfer, Other float64
	// MedianPLT and MeanPLT summarize the bucket totals, which equal
	// each visit's PLT by construction.
	MeanPLT, MedianPLT float64
	// Approx marks rows answered from the streamed sketches rather than
	// retained per-visit attributions: the means stay exact (integer
	// nanosecond sums), but MedianPLT carries the sketch's relative-
	// error bound.
	Approx bool
}

// ComputePhaseReport folds Dataset.Phases into one row per mode. When
// the retention policy dropped (some of) the per-visit attributions, it
// answers from the campaign's streamed phase sketches instead, which
// always cover every traced visit. It returns an error when the dataset
// carries neither (phase data only exists on campaigns run with
// TracePhases; it is not serialized, so loaded datasets never have it).
func ComputePhaseReport(ds *Dataset) ([]PhaseRow, error) {
	// Count retained attributions across modes: under RetainNone the
	// Phases map has entries but every slice is empty.
	retained := 0
	for _, phases := range ds.Phases {
		retained += len(phases)
	}
	exact := retained > 0
	if exact && ds.Metrics != nil && uint64(retained) < tracedPages(ds.Metrics) {
		// Partial retention (sampled): the sketches cover every visit,
		// the retained subset does not — prefer full coverage.
		exact = false
	}
	if exact {
		var rows []PhaseRow
		for _, mode := range []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3} {
			phases := ds.Phases[mode]
			if len(phases) == 0 {
				continue
			}
			var sum trace.PhaseBreakdown
			totals := make([]float64, len(phases))
			for i := range phases {
				sum.Add(phases[i])
				totals[i] = msOf(phases[i].Total())
			}
			n := float64(len(phases))
			rows = append(rows, PhaseRow{
				Mode:      mode,
				Visits:    len(phases),
				Resolve:   msOf(sum.Resolve) / n,
				Connect:   msOf(sum.Connect) / n,
				Handshake: msOf(sum.Handshake) / n,
				Stall:     msOf(sum.Stall) / n,
				Transfer:  msOf(sum.Transfer) / n,
				Other:     msOf(sum.Other) / n,
				MeanPLT:   analysis.Mean(totals),
				MedianPLT: analysis.Median(totals),
			})
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("dataset has phase attributions for no known mode")
		}
		return rows, nil
	}
	if ds.Metrics == nil || tracedPages(ds.Metrics) == 0 {
		return nil, fmt.Errorf("dataset has no phase attributions: run the campaign with TracePhases enabled (phases are not serialized)")
	}
	var rows []PhaseRow
	for _, mode := range []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3} {
		g := ds.Metrics.ModeGroup(mode.String())
		if g == nil || g.PhasePages == 0 {
			continue
		}
		n := float64(g.PhasePages)
		const nsPerMs = float64(time.Millisecond)
		rows = append(rows, PhaseRow{
			Mode:      mode,
			Visits:    int(g.PhasePages),
			Resolve:   float64(g.PhaseSumNs[0]) / nsPerMs / n,
			Connect:   float64(g.PhaseSumNs[1]) / nsPerMs / n,
			Handshake: float64(g.PhaseSumNs[2]) / nsPerMs / n,
			Stall:     float64(g.PhaseSumNs[3]) / nsPerMs / n,
			Transfer:  float64(g.PhaseSumNs[4]) / nsPerMs / n,
			Other:     float64(g.PhaseSumNs[5]) / nsPerMs / n,
			MeanPLT:   g.MeanPLTMs(),
			MedianPLT: g.MedianPLTMs(),
			Approx:    true,
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset has phase attributions for no known mode")
	}
	return rows, nil
}

// tracedPages sums phase-bearing page counts across every group of an
// accumulator.
func tracedPages(m *sketch.MetricAccumulator) uint64 {
	var n uint64
	for _, k := range m.Keys() {
		n += m.Lookup(k).PhasePages
	}
	return n
}

// RenderPhaseReport prints the per-mode phase breakdown table.
func RenderPhaseReport(rows []PhaseRow) string {
	var sb strings.Builder
	sb.WriteString("Phase attribution (trace-derived, mean ms per visit)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Mode\tvisits\tresolve\tconnect\thandshake\tstall\ttransfer\tother\tmean PLT\tmedian PLT")
	approx := false
	for _, r := range rows {
		mark := ""
		if r.Approx {
			approx, mark = true, "~"
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%s%.2f\n",
			r.Mode, r.Visits, r.Resolve, r.Connect, r.Handshake,
			r.Stall, r.Transfer, r.Other, r.MeanPLT, mark, r.MedianPLT)
	}
	_ = w.Flush()
	sb.WriteString("buckets partition each visit's PLT; stall = receive-side HOL blocking observed in the event trace\n")
	if approx {
		sb.WriteString(fmt.Sprintf("~ sketch-derived median (relative error ≤ %.0f%%); means remain exact\n", 100*sketch.DefaultAlpha))
	}
	return sb.String()
}
