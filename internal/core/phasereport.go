package core

import (
	"fmt"
	"strings"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/trace"
)

// PhaseRow aggregates the trace-attributed phase buckets of every
// measured visit under one browsing mode. All values are milliseconds.
// Unlike Figure 6(b), which derives phases from HAR entry timings, these
// rows are folded from the raw event traces (trace.AttributeVisit), so
// they expose stall time — head-of-line blocking — which HAR timings
// cannot see.
type PhaseRow struct {
	Mode   browser.Mode
	Visits int
	// Mean bucket values across visits.
	Resolve, Connect, Handshake, Stall, Transfer, Other float64
	// MedianPLT and MeanPLT summarize the bucket totals, which equal
	// each visit's PLT by construction.
	MeanPLT, MedianPLT float64
}

// ComputePhaseReport folds Dataset.Phases into one row per mode.
// It returns an error when the dataset carries no phase attributions
// (they only exist on campaigns run with TracePhases; they are not
// serialized, so loaded datasets never have them).
func ComputePhaseReport(ds *Dataset) ([]PhaseRow, error) {
	if len(ds.Phases) == 0 {
		return nil, fmt.Errorf("dataset has no phase attributions: run the campaign with TracePhases enabled (phases are not serialized)")
	}
	var rows []PhaseRow
	for _, mode := range []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3} {
		phases := ds.Phases[mode]
		if len(phases) == 0 {
			continue
		}
		var sum trace.PhaseBreakdown
		totals := make([]float64, len(phases))
		for i := range phases {
			sum.Add(phases[i])
			totals[i] = msOf(phases[i].Total())
		}
		n := float64(len(phases))
		rows = append(rows, PhaseRow{
			Mode:      mode,
			Visits:    len(phases),
			Resolve:   msOf(sum.Resolve) / n,
			Connect:   msOf(sum.Connect) / n,
			Handshake: msOf(sum.Handshake) / n,
			Stall:     msOf(sum.Stall) / n,
			Transfer:  msOf(sum.Transfer) / n,
			Other:     msOf(sum.Other) / n,
			MeanPLT:   analysis.Mean(totals),
			MedianPLT: analysis.Median(totals),
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset has phase attributions for no known mode")
	}
	return rows, nil
}

// RenderPhaseReport prints the per-mode phase breakdown table.
func RenderPhaseReport(rows []PhaseRow) string {
	var sb strings.Builder
	sb.WriteString("Phase attribution (trace-derived, mean ms per visit)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Mode\tvisits\tresolve\tconnect\thandshake\tstall\ttransfer\tother\tmean PLT\tmedian PLT")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Mode, r.Visits, r.Resolve, r.Connect, r.Handshake,
			r.Stall, r.Transfer, r.Other, r.MeanPLT, r.MedianPLT)
	}
	_ = w.Flush()
	sb.WriteString("buckets partition each visit's PLT; stall = receive-side HOL blocking observed in the event trace\n")
	return sb.String()
}
