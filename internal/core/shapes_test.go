package core

import (
	"testing"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/locedge"
)

// These tests assert the qualitative shapes the paper reports, at fixture
// scale (64 sites × 3 probes). They use robust statistics (medians,
// aggregate counts) because per-site reductions under loss are
// heavy-tailed at this sample size.

func TestShapeTable2(t *testing.T) {
	std, _ := fixtures(t)
	t2 := ComputeTable2(std)
	cdnPct := t2.CDN["All"].Pct
	if cdnPct < 55 || cdnPct > 75 {
		t.Fatalf("CDN share = %.1f%%, paper 67%%", cdnPct)
	}
	h3Pct := t2.All["HTTP/3"].Pct
	if h3Pct < 22 || h3Pct > 45 {
		t.Fatalf("H3 share = %.1f%%, paper 32.6%%", h3Pct)
	}
	// CDN requests dominate H3 traffic (paper: 78.8%).
	cdnOfH3 := float64(t2.CDN["HTTP/3"].Count) / float64(t2.All["HTTP/3"].Count)
	if cdnOfH3 < 0.6 {
		t.Fatalf("CDN share of H3 = %.2f, paper 0.79", cdnOfH3)
	}
	// Others are rare and essentially absent from CDN traffic.
	if t2.CDN["Others"].Count > t2.Total/100 {
		t.Fatalf("CDN 'Others' = %d, paper ~0", t2.CDN["Others"].Count)
	}
	if t2.NonCDN["Others"].Count == 0 {
		t.Fatal("non-CDN 'Others' absent, paper 18.7% of non-CDN")
	}
}

func TestShapeFigure2(t *testing.T) {
	std, _ := fixtures(t)
	rows := ComputeFigure2(std)
	byName := make(map[string]Fig2Row, len(rows))
	for _, r := range rows {
		byName[r.Provider] = r
	}
	g, cf := byName["Google"], byName["Cloudflare"]
	if g.ShareOfH3 < 0.35 {
		t.Fatalf("Google share of H3 = %.2f, paper ~0.50", g.ShareOfH3)
	}
	if cf.ShareOfH3 < 0.25 {
		t.Fatalf("Cloudflare share of H3 = %.2f, paper ~0.45", cf.ShareOfH3)
	}
	if g.ShareOfH3+cf.ShareOfH3 < 0.85 {
		t.Fatalf("Google+Cloudflare H3 share = %.2f, paper ~0.95", g.ShareOfH3+cf.ShareOfH3)
	}
	if g.H3Fraction < 0.85 {
		t.Fatalf("Google H3 fraction = %.2f, paper near-total", g.H3Fraction)
	}
	// Amazon/Akamai mostly on H2.
	if byName["Amazon"].H3Fraction > 0.2 || byName["Akamai"].H3Fraction > 0.2 {
		t.Fatalf("Amazon/Akamai H3 fractions too high: %.2f / %.2f",
			byName["Amazon"].H3Fraction, byName["Akamai"].H3Fraction)
	}
}

func TestShapeFigure3(t *testing.T) {
	std, _ := fixtures(t)
	f := ComputeFigure3(std)
	if f.PagesOverHalfCDN < 0.6 || f.PagesOverHalfCDN > 0.9 {
		t.Fatalf("pages over half CDN = %.2f, paper ~0.75", f.PagesOverHalfCDN)
	}
}

func TestShapeFigure4(t *testing.T) {
	std, _ := fixtures(t)
	f := ComputeFigure4(std)
	if f.AtLeastTwo < 0.85 {
		t.Fatalf("pages with >=2 providers = %.2f, paper 0.948", f.AtLeastTwo)
	}
	top := map[string]bool{}
	for i, p := range f.Presence {
		if i < 4 {
			top[p.Provider] = true
			if p.Probability < 0.45 {
				t.Fatalf("top-4 provider %s presence %.2f, paper >0.5", p.Provider, p.Probability)
			}
		}
	}
	if !top["Google"] || !top["Cloudflare"] {
		t.Fatalf("Google/Cloudflare not in top-4 presence: %v", f.Presence)
	}
}

func TestShapeFigure5(t *testing.T) {
	std, _ := fixtures(t)
	for _, s := range ComputeFigure5(std) {
		if len(s.CCDF) == 0 {
			t.Fatalf("%s: empty CCDF", s.Provider)
		}
		if s.Provider == "Cloudflare" && s.FracOver10 < 0.4 {
			t.Fatalf("Cloudflare pages over 10 resources = %.2f, paper ~0.5", s.FracOver10)
		}
	}
}

func TestShapeFigure6a(t *testing.T) {
	std, _ := fixtures(t)
	sms := ComputeSiteMetrics(std)
	red := pltReductions(sms)
	if m := analysis.Median(red); m <= 0 {
		t.Fatalf("median PLT reduction = %.1f ms, paper strictly positive", m)
	}
	groups := ComputeFigure6a(std)
	// The High group must not be the best-performing group (§VI-C).
	best := groups[0].PLTReductionMs
	for _, g := range groups[1:3] {
		if g.PLTReductionMs > best {
			best = g.PLTReductionMs
		}
	}
	if groups[3].PLTReductionMs >= best {
		t.Fatalf("High group reduction %.1f exceeds other groups' max %.1f; paper shows a turning point",
			groups[3].PLTReductionMs, best)
	}
}

func TestShapeFigure6b(t *testing.T) {
	std, _ := fixtures(t)
	f := ComputeFigure6b(std)
	if f.MedianConnectMs <= 0 {
		t.Fatalf("median connection reduction = %.2f ms, paper > 0", f.MedianConnectMs)
	}
	// Wait and receive medians sit near zero (paper: wait slightly
	// below, receive approximately zero).
	if f.MedianWaitMs > 1 || f.MedianWaitMs < -12 {
		t.Fatalf("median wait reduction = %.2f ms, paper slightly negative", f.MedianWaitMs)
	}
	if f.MedianReceiveMs > 5 || f.MedianReceiveMs < -5 {
		t.Fatalf("median receive reduction = %.2f ms, paper ~0", f.MedianReceiveMs)
	}
	if f.MedianConnectMs < f.MedianWaitMs || f.MedianConnectMs < f.MedianReceiveMs {
		t.Fatal("connection reduction does not dominate the other phases")
	}
}

func TestShapeFigure7(t *testing.T) {
	std, _ := fixtures(t)
	ab := ComputeFigure7ab(std)
	for g := 1; g < 4; g++ {
		if ab[g].H2Reused <= ab[g-1].H2Reused {
			t.Fatalf("H2 reuse not increasing across groups: %+v", ab)
		}
	}
	for g := 0; g < 4; g++ {
		if ab[g].Difference <= 0 {
			t.Fatalf("group %s: H2 reuse does not exceed H3 reuse: %+v", ab[g].Name, ab[g])
		}
	}
	if ab[3].Difference <= ab[0].Difference {
		t.Fatalf("reuse difference not largest in High group: %+v", ab)
	}
}

func TestShapeFigure8(t *testing.T) {
	_, cons := fixtures(t)
	points := ComputeFigure8(cons)
	if len(points) < 3 {
		t.Fatalf("only %d provider buckets", len(points))
	}
	// Resumed connections rise with the number of providers used.
	for i := 1; i < len(points); i++ {
		if points[i].ResumedConns < points[i-1].ResumedConns {
			t.Fatalf("resumed connections not increasing: %+v", points)
		}
	}
}

func TestShapeTable3(t *testing.T) {
	_, cons := fixtures(t)
	t3, err := ComputeTable3(cons)
	if err != nil {
		t.Fatal(err)
	}
	if t3.High.AvgProviders <= t3.Low.AvgProviders {
		t.Fatalf("high-sharing cluster has fewer providers: %+v", t3)
	}
	if t3.High.AvgResumed <= t3.Low.AvgResumed {
		t.Fatalf("high-sharing cluster resumes fewer connections: %+v", t3)
	}
	if t3.High.PLTReductionMs <= t3.Low.PLTReductionMs {
		t.Fatalf("high-sharing cluster gains less: high=%.1f low=%.1f (paper: 109.3 vs 54.4)",
			t3.High.PLTReductionMs, t3.Low.PLTReductionMs)
	}
}

func TestShapeConsecutiveStillGains(t *testing.T) {
	// The paper's §VI-D analyses compare sites *within* the
	// consecutive run (Fig. 8, Table III — asserted separately); here
	// we only require that the consecutive protocol preserves a clear
	// overall H3 advantage.
	_, cons := fixtures(t)
	consRed := analysis.Median(pltReductions(ComputeSiteMetrics(cons)))
	if consRed <= 0 {
		t.Fatalf("consecutive median reduction = %.1f ms, want positive", consRed)
	}
}

func TestShapeResumptionOnlyInConsecutive(t *testing.T) {
	std, cons := fixtures(t)
	count := func(ds *Dataset) (n int) {
		for _, p := range ds.Logs[browser.ModeH3].Pages {
			n += p.ResumedConns
		}
		return n
	}
	if s, c := count(std), count(cons); c <= 2*s {
		t.Fatalf("consecutive resumption (%d) not well above standard (%d)", c, s)
	}
}

func TestShapeLocedgeCoversTraffic(t *testing.T) {
	std, _ := fixtures(t)
	classified, total := 0, 0
	for _, e := range entriesOf(std, browser.ModeH2) {
		total++
		if locedge.Classify(e.Header).IsCDN {
			classified++
		}
	}
	if total == 0 || classified == 0 {
		t.Fatal("no traffic classified")
	}
	frac := float64(classified) / float64(total)
	if frac < 0.5 || frac > 0.8 {
		t.Fatalf("CDN classification fraction = %.2f, want ~0.67", frac)
	}
}
