package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/traffic"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// smallTraffic is the test-scale population shape: enough sessions to
// exercise contention, small enough to run in seconds.
func smallTraffic() *traffic.Config {
	return &traffic.Config{
		Users:         40,
		ArrivalRate:   2,
		Duration:      30 * time.Second,
		EpochInterval: 10 * time.Second,
		CacheTTL:      15 * time.Second,
		ThinkTime:     2 * time.Second,
		SessionVisits: 3,
	}
}

// trafficCampaign runs a reduced population campaign.
func trafficCampaign(t *testing.T, mutate func(*CampaignConfig)) *Dataset {
	t.Helper()
	cfg := CampaignConfig{
		Seed:             7,
		CorpusConfig:     webgen.Config{NumPages: 12, MeanResources: 20},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		Traffic:          smallTraffic(),
		Sequential:       true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrafficCampaignEndToEnd(t *testing.T) {
	ds := trafficCampaign(t, nil)
	rep := ds.Traffic
	if rep == nil {
		t.Fatal("no traffic report on an open-loop campaign")
	}
	c := rep.Counters
	if c.SessionsStarted == 0 || c.VisitsCompleted == 0 {
		t.Fatalf("no traffic ran: %+v", c)
	}
	// The open-loop bookkeeping invariant: every generated visit either
	// completed or was shed at the in-flight bound.
	if c.VisitsGenerated != c.VisitsCompleted+c.VisitsShed {
		t.Fatalf("generated %d ≠ completed %d + shed %d", c.VisitsGenerated, c.VisitsCompleted, c.VisitsShed)
	}
	if ds.Stats.Traffic != c {
		t.Fatalf("CampaignStats.Traffic %+v ≠ report counters %+v", ds.Stats.Traffic, c)
	}
	// Shared caches must actually be contended: both hits and misses.
	if c.CacheHits == 0 || c.CacheMisses == 0 {
		t.Fatalf("cache never contended: hits=%d misses=%d", c.CacheHits, c.CacheMisses)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("%d epoch rows, want 3", len(rep.Epochs))
	}
	// Connections are visit-scoped but tickets are session-scoped, so
	// multi-visit sessions must produce actual 0-RTT resumptions — the
	// emergent resumption fraction is strictly inside (0, 1).
	if c.ConnsOpened == 0 {
		t.Fatal("no connections accounted")
	}
	if c.ResumedConns == 0 {
		t.Fatal("no resumed connections: session tickets never reused across visits")
	}
	if f := rep.ResumptionFraction(); f <= 0 || f >= 1 {
		t.Fatalf("resumption fraction %v, want strictly inside (0, 1)", f)
	}
	// Retained logs (RetainAll default) match the completed visit count,
	// across both modes.
	var retained int
	for _, log := range ds.Logs {
		retained += len(log.Pages)
		for i := range log.Pages {
			if log.Pages[i].PLT <= 0 {
				t.Fatalf("visit %d: PLT %v", i, log.Pages[i].PLT)
			}
		}
	}
	if int64(retained) != c.VisitsCompleted {
		t.Fatalf("retained %d logs for %d completed visits", retained, c.VisitsCompleted)
	}
	if ds.Stats.PagesFolded != c.VisitsCompleted {
		t.Fatalf("folded %d, completed %d", ds.Stats.PagesFolded, c.VisitsCompleted)
	}
	// The warmth split covers every folded visit that touched an edge.
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		g := ds.Metrics.ModeGroup(mode.String())
		if g == nil {
			t.Fatalf("%v: no metrics group", mode)
		}
		if g.WarmPages == 0 {
			t.Fatalf("%v: no warm visits despite cache hits", mode)
		}
		if g.CacheHits.Value() == 0 {
			t.Fatalf("%v: per-visit cache hits never folded", mode)
		}
	}
}

func TestTrafficRetainNoneBoundsDataset(t *testing.T) {
	ds := trafficCampaign(t, func(c *CampaignConfig) {
		c.Retention = har.Retention{Kind: har.RetainNone}
	})
	for mode, log := range ds.Logs {
		if len(log.Pages) != 0 {
			t.Fatalf("%v: %d pages retained under RetainNone", mode, len(log.Pages))
		}
	}
	if ds.Stats.PagesRetained != 0 {
		t.Fatalf("PagesRetained = %d", ds.Stats.PagesRetained)
	}
	// Metrics and the traffic report still cover the whole population.
	if ds.Traffic.Counters.VisitsCompleted == 0 || ds.Metrics.Pages() == 0 {
		t.Fatal("RetainNone starved metrics")
	}
}

// TestTrafficShardDecomposition pins the user partition: shards slice
// the population, every shard sees the full corpus.
func TestTrafficShardDecomposition(t *testing.T) {
	cfg := CampaignConfig{
		Seed:             99,
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		Modes:            []browser.Mode{browser.ModeH3},
		Traffic:          &traffic.Config{Users: 10, UsersPerShard: 4, ArrivalRate: 1, Duration: time.Second},
	}
	corpus := webgen.Generate(webgen.Config{NumPages: 12, MeanResources: 5, Seed: 99})
	jobs := shardCampaign(cfg, corpus)
	if len(jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(jobs))
	}
	wantRanges := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	for i, job := range jobs {
		if job.lo != wantRanges[i][0] || job.hi != wantRanges[i][1] || job.shard != i {
			t.Fatalf("job %d: shard %d range [%d,%d), want %v", i, job.shard, job.lo, job.hi, wantRanges[i])
		}
	}
}

func TestTrafficRejectsIncompatibleConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"consecutive", func(c *CampaignConfig) { c.Consecutive = true }},
		{"trace-phases", func(c *CampaignConfig) { c.TracePhases = true }},
		{"qlog", func(c *CampaignConfig) { c.QlogDir = t.TempDir() }},
		{"sampled-retention", func(c *CampaignConfig) {
			c.Retention = har.Retention{Kind: har.RetainSample, Sample: 4}
		}},
		{"bad-traffic", func(c *CampaignConfig) { c.Traffic.Users = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := CampaignConfig{
				Seed:         7,
				CorpusConfig: webgen.Config{NumPages: 4, MeanResources: 4},
				Traffic:      smallTraffic(),
			}
			tc.mut(&cfg)
			if _, err := RunCampaign(cfg); err == nil {
				t.Fatal("incompatible traffic campaign accepted")
			}
		})
	}
}

// goldenTrafficSHA256 pins the exact dataset bytes of the reference
// population campaign (seed 2022, 24 pages, two vantages, 48 users split
// into 20-user shards, three epochs) — the open-loop counterpart of
// goldenDatasetSHA256. Any change to arrival generation, session plans,
// TTL cache semantics, single-flight collapsing, or the epoch hand-off
// perturbs these bytes.
const goldenTrafficSHA256 = "7871aefa6f5bbdd3f24e9464603409f73110d6830be7d51c92c3fd5aa1ad4251"

// TestTrafficGoldenDataset runs the pinned population campaign
// sequentially and at two worker counts, asserting byte-identity.
func TestTrafficGoldenDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard population campaign; skipped with -short")
	}
	variants := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"Sequential", func(c *CampaignConfig) { c.Sequential = true }},
		{"Workers1", func(c *CampaignConfig) { c.Workers = 1 }},
		{"Workers4", func(c *CampaignConfig) { c.Workers = 4 }},
	}
	var ref *Dataset
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := goldenTrafficConfig()
			v.mut(&cfg)
			ds, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(harJSON(t, ds))
			if got := hex.EncodeToString(sum[:]); got != goldenTrafficSHA256 {
				t.Fatalf("dataset hash %s, want golden %s", got, goldenTrafficSHA256)
			}
			if ref == nil {
				ref = ds
			} else {
				// The emergent outputs are part of the deterministic
				// contract too, at every worker count.
				if !reflect.DeepEqual(ds.Traffic, ref.Traffic) {
					t.Fatalf("traffic report differs across worker counts:\n%+v\n%+v", ds.Traffic, ref.Traffic)
				}
				if !accJSONEqual(t, ds, ref) {
					t.Fatal("metric accumulator differs across worker counts")
				}
			}
		})
	}
}

func goldenTrafficConfig() CampaignConfig {
	return CampaignConfig{
		Seed:             2022,
		CorpusConfig:     webgen.Config{NumPages: 24, MeanResources: 12},
		Vantages:         vantage.Points()[:2],
		ProbesPerVantage: 1,
		Traffic: &traffic.Config{
			Users:         48,
			UsersPerShard: 20,
			ArrivalRate:   2,
			Duration:      30 * time.Second,
			EpochInterval: 10 * time.Second,
			CacheTTL:      15 * time.Second,
			ThinkTime:     2 * time.Second,
			SessionVisits: 3,
		},
	}
}

func accJSONEqual(t *testing.T, a, b *Dataset) bool {
	t.Helper()
	ab, err := json.Marshal(a.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}

func TestPopCacheExperiment(t *testing.T) {
	base := CampaignConfig{
		Seed:             7,
		CorpusConfig:     webgen.Config{NumPages: 12, MeanResources: 10},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
	}
	tc := traffic.Config{
		Users: 20, ArrivalRate: 1, Duration: 15 * time.Second,
		EpochInterval: 5 * time.Second, CacheTTL: 10 * time.Second,
		ThinkTime: time.Second, SessionVisits: 2,
	}
	rows, err := RunPopCache(base, tc, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 sizes × 3 protocols
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Visits == 0 {
			t.Fatalf("users=%d mode %s: no visits", r.Users, r.Mode)
		}
		if r.HitRate <= 0 || r.HitRate >= 1 {
			t.Fatalf("users=%d mode %s: hit rate %v", r.Users, r.Mode, r.HitRate)
		}
		if r.ColdPages == 0 {
			t.Fatalf("users=%d mode %s: no cold visits in a TTL'd cache", r.Users, r.Mode)
		}
	}
	out := RenderPopCache(rows)
	for _, want := range []string{"users", "hit rate", "0-RTT", "h3", "http/1.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}

	// The sweep rejects malformed traffic shapes and sizes up front.
	if _, err := RunPopCache(base, traffic.Config{}, nil); err == nil {
		t.Fatal("empty traffic config accepted")
	}
	if _, err := RunPopCache(base, tc, []int{0}); err == nil {
		t.Fatal("zero population size accepted")
	}
}

// TestTrafficCheckpointResume kills a population campaign after every
// epoch (HaltAfterEpochs) and resumes it from its checkpoints until it
// completes, asserting the stitched-together run is byte-identical to an
// uninterrupted one — dataset, traffic report, and metric sketches.
func TestTrafficCheckpointResume(t *testing.T) {
	uninterrupted := trafficCampaign(t, nil)
	want := harJSON(t, uninterrupted)

	dir := t.TempDir()
	withCkpt := func(c *CampaignConfig) {
		c.Traffic.CheckpointDir = dir
		c.Traffic.HaltAfterEpochs = 1
	}
	// Three epochs, one per process "life": runs 1 and 2 halt after
	// writing their checkpoint, run 3 reaches the horizon.
	var final *Dataset
	for run := 0; run < 3; run++ {
		final = trafficCampaign(t, withCkpt)
	}
	if got := harJSON(t, final); string(got) != string(want) {
		t.Fatal("resumed dataset differs from uninterrupted run")
	}
	if !reflect.DeepEqual(final.Traffic, uninterrupted.Traffic) {
		t.Fatalf("resumed traffic report differs:\n%+v\n%+v", final.Traffic, uninterrupted.Traffic)
	}
	if !accJSONEqual(t, final, uninterrupted) {
		t.Fatal("resumed metric accumulator differs")
	}
	if final.Stats.Traffic != uninterrupted.Stats.Traffic {
		t.Fatalf("resumed stats differ: %+v vs %+v", final.Stats.Traffic, uninterrupted.Stats.Traffic)
	}

	// A fourth run finds every shard already at the horizon and returns
	// the checkpointed state verbatim — still byte-identical.
	again := trafficCampaign(t, withCkpt)
	if got := harJSON(t, again); string(got) != string(want) {
		t.Fatal("re-run after completion differs")
	}
}
