package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/traffic"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// BenchmarkPopulationCampaign measures the open-loop traffic engine end
// to end: a RetainNone population campaign whose horizon is scaled so
// roughly N visits complete, reporting scheduler events/sec and the
// peak-RSS proxy. BENCH_baseline.json records the default smoke scale
// (informational — `make benchgate` verifies the benchmark still runs
// and prints throughput drift); the bounded-memory claim is the
// max_rss_growth gate over the visits=N spread in BENCH_scaling.json,
// which `make bench-memory` runs via H3CDN_TRAFFIC_VISITS=1200,9600.
//
// Set H3CDN_TRAFFIC_VISITS=100000 to reproduce the recorded 100k-visit
// run: retention none keeps peak heap flat because every visit folds
// into the sketches and its PageLog is recycled — dataset size is
// O(shards × sketch), not O(visits).
func BenchmarkPopulationCampaign(b *testing.B) {
	scales := []int{1200}
	if s := os.Getenv("H3CDN_TRAFFIC_VISITS"); s != "" {
		scales = scales[:0]
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				b.Fatalf("H3CDN_TRAFFIC_VISITS=%q: want comma-separated positive integers", s)
			}
			scales = append(scales, n)
		}
	}
	corpus := webgen.Generate(webgen.Config{Seed: 2022, NumPages: 64, MeanResources: 12})
	modes := []browser.Mode{browser.ModeH2, browser.ModeH3}
	for _, visits := range scales {
		b.Run(fmt.Sprintf("visits=%d", visits), func(b *testing.B) {
			// Fixed population and offered load; only the horizon grows
			// with the target, so per-visit cost is scale-invariant:
			// visits ≈ modes × rate × mean-session-visits × duration.
			// The rate (1 session/s per 64-user shard) keeps the shard
			// below its link capacity — an overloaded open-loop shard
			// measures queueing collapse, not engine throughput.
			const rate, sessionVisits = 2.0, 3.0
			tc := traffic.Config{
				Users:         128,
				UsersPerShard: 64,
				ArrivalRate:   rate,
				SessionVisits: sessionVisits,
				ThinkTime:     2 * time.Second,
				CacheTTL:      30 * time.Second,
				EpochInterval: 30 * time.Second,
				Duration:      time.Duration(float64(visits) / (float64(len(modes)) * rate * sessionVisits) * float64(time.Second)),
			}
			runtime.GC()
			sampler := startPeakSampler()
			var events, completed int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				ds, err := RunCampaign(CampaignConfig{
					Seed:             2022,
					Corpus:           corpus,
					Modes:            modes,
					Vantages:         vantage.Points()[:1],
					ProbesPerVantage: 1,
					Workers:          2,
					Retention:        har.Retention{Kind: har.RetainNone},
					Traffic:          &tc,
				})
				if err != nil {
					b.Fatal(err)
				}
				if ds.Stats.PagesRetained != 0 {
					b.Fatalf("RetainNone retained %d pages", ds.Stats.PagesRetained)
				}
				events += ds.Stats.Events
				completed += ds.Stats.Traffic.VisitsCompleted
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(events)/elapsed.Seconds(), "events/sec")
			b.ReportMetric(float64(completed)/float64(b.N), "visits")
			b.ReportMetric(sampler.peakMB(), "peak-RSS-MB")
		})
	}
}
