package core

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"h3cdn/internal/simnet"
	"h3cdn/internal/simnet/traces"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// goldenTraceLinkSHA256 pins the campaign dataset with the download
// access link driven by the synthetic "lte" capacity trace plus
// Gilbert–Elliott bursty loss — the trace-replay counterpart of
// goldenImpairedSHA256. TraceLink.Serialize is a pure function of
// (virtual time, size), so the replay position a packet observes depends
// only on the simulation trajectory, never on worker scheduling; this
// test is the proof, across Sequential / Workers 1 / Workers 4.
const goldenTraceLinkSHA256 = "7757c078fc7982676739d631a853ae0a4d891721806f146fd2a511d5bf7ed29d"

// TestTraceLinkCampaignGoldenDataset is the fourth pinned golden:
// variable-link replay composed with the fault-injection layer.
func TestTraceLinkCampaignGoldenDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale trace-replay campaign; skipped with -short")
	}
	tl, err := traces.Profile("lte")
	if err != nil {
		t.Fatal(err)
	}
	ge := simnet.GilbertElliott(0.01, 4)
	variants := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"Sequential", func(c *CampaignConfig) { c.Sequential = true }},
		{"Workers1", func(c *CampaignConfig) { c.Workers = 1 }},
		{"Workers4", func(c *CampaignConfig) { c.Workers = 4 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := CampaignConfig{
				Seed:             2026,
				CorpusConfig:     webgen.Config{NumPages: 12},
				Vantages:         vantage.Points()[:1],
				ProbesPerVantage: 1,
				LinkTrace:        tl,
				Impairment:       &ge,
			}
			v.mut(&cfg)
			ds, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkHARInvariants(t, ds)
			sum := sha256.Sum256(harJSON(t, ds))
			if got := hex.EncodeToString(sum[:]); got != goldenTraceLinkSHA256 {
				t.Fatalf("trace-link dataset hash %s, want golden %s", got, goldenTraceLinkSHA256)
			}
			if ds.Stats.BurstDrops == 0 {
				t.Fatal("BurstDrops = 0: the fault layer never engaged under trace replay")
			}
		})
	}
}
