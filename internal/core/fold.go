package core

import (
	"h3cdn/internal/har"
	"h3cdn/internal/sketch"
	"h3cdn/internal/trace"
)

// visitSample reduces one finished visit to its streaming-aggregation
// fold unit. pb may be nil (untraced campaigns).
func visitSample(log *har.PageLog, pb *trace.PhaseBreakdown) sketch.VisitSample {
	v := sketch.VisitSample{
		PLTNs:   int64(log.PLT),
		Entries: int64(len(log.Entries)),
		Reused:  int64(log.ReusedConns),
		Resumed: int64(log.ResumedConns),
	}
	for i := range log.Entries {
		e := &log.Entries[i]
		v.Retries += int64(e.Retries)
		if e.Failed {
			v.Failed++
			continue
		}
		v.Bytes += int64(e.BodySize)
	}
	if pb != nil {
		v.Phase = phaseSample(pb)
	}
	return v
}

// phaseSample converts a trace phase breakdown to the sketch layer's
// slot array (slot order matches sketch.PhaseNames).
func phaseSample(pb *trace.PhaseBreakdown) *sketch.PhaseSample {
	return &sketch.PhaseSample{
		Ns: [sketch.NumPhases]int64{
			int64(pb.Resolve),
			int64(pb.Connect),
			int64(pb.Handshake),
			int64(pb.Stall),
			int64(pb.Transfer),
			int64(pb.Other),
		},
		Truncated: pb.Truncated,
	}
}
