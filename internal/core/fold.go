package core

import (
	"h3cdn/internal/har"
	"h3cdn/internal/sketch"
	"h3cdn/internal/trace"
)

// visitSample reduces one finished visit to its streaming-aggregation
// fold unit. pb may be nil (untraced campaigns).
func visitSample(log *har.PageLog, pb *trace.PhaseBreakdown) sketch.VisitSample {
	v := sketch.VisitSample{
		PLTNs:   int64(log.PLT),
		Entries: int64(len(log.Entries)),
		Reused:  int64(log.ReusedConns),
		Resumed: int64(log.ResumedConns),
	}
	for i := range log.Entries {
		e := &log.Entries[i]
		v.Retries += int64(e.Retries)
		if e.Failed {
			v.Failed++
			continue
		}
		v.Bytes += int64(e.BodySize)
	}
	if pb != nil {
		v.Phase = phaseSample(pb)
	}
	return v
}

// trafficVisitSample is visitSample plus the edge-cache warmth split
// population campaigns feed the cold/warm PLT sketches with.
func trafficVisitSample(log *har.PageLog) sketch.VisitSample {
	v := visitSample(log, nil)
	v.CacheHits, v.CacheMisses, v.Warm = cacheWarmth(log)
	return v
}

// cacheWarmth reads the visit's edge-cache interaction off its response
// headers: HIT/MISS counts across entries, and whether the visit ran
// fully warm — at least one edge hit and not a single origin fetch, so
// its PLT never paid a MissPenalty. Entries without an x-cache header
// (origin-served resources) count neither way.
func cacheWarmth(log *har.PageLog) (hits, misses int64, warm bool) {
	for i := range log.Entries {
		switch log.Entries[i].Header["x-cache"] {
		case "HIT":
			hits++
		case "MISS":
			misses++
		}
	}
	return hits, misses, hits > 0 && misses == 0
}

// phaseSample converts a trace phase breakdown to the sketch layer's
// slot array (slot order matches sketch.PhaseNames).
func phaseSample(pb *trace.PhaseBreakdown) *sketch.PhaseSample {
	return &sketch.PhaseSample{
		Ns: [sketch.NumPhases]int64{
			int64(pb.Resolve),
			int64(pb.Connect),
			int64(pb.Handshake),
			int64(pb.Stall),
			int64(pb.Transfer),
			int64(pb.Other),
		},
		Truncated: pb.Truncated,
	}
}
