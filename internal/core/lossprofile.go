package core

import (
	"fmt"
	"strings"

	"h3cdn/internal/simnet"
)

// LossProfileRow compares the i.i.d. and bursty loss arms at one added
// loss rate. Both arms add the same long-run average loss on top of the
// ambient baseline; the bursty arm clusters it into Gilbert–Elliott
// bursts of mean length MeanBurst instead of spreading it uniformly.
type LossProfileRow struct {
	AddedLoss float64
	MeanBurst float64
	// IID / Bursty are the Figure-9 fits of each arm (H3's PLT
	// reduction vs CDN resources).
	IID    Fig9Series
	Bursty Fig9Series
	// IIDStats / BurstyStats carry each arm's execution counters —
	// recovery activity is where the two regimes differ mechanically.
	IIDStats    CampaignStats
	BurstyStats CampaignStats
}

// RunLossProfile sweeps the Figure-9 added-loss rates, running each rate
// twice: once as i.i.d. Bernoulli loss (the §VI-E Traffic Control knob)
// and once as bursty Gilbert–Elliott loss at the matched average rate.
// The zero-added row runs a single baseline campaign shared by both
// arms. meanBurst ≤ 0 selects 4 packets.
func RunLossProfile(base CampaignConfig, meanBurst float64) ([]LossProfileRow, error) {
	base = base.withDefaults()
	if meanBurst <= 0 {
		meanBurst = 4
	}
	losses := Figure9Losses()
	rows := make([]LossProfileRow, 0, len(losses))
	for _, added := range losses {
		row := LossProfileRow{AddedLoss: added, MeanBurst: meanBurst}

		iidCfg := base
		iidCfg.LossRate = base.LossRate + added
		ds, err := RunCampaign(iidCfg)
		if err != nil {
			return nil, fmt.Errorf("core: lossprofile iid %.3f: %w", added, err)
		}
		if row.IID, err = ComputeFigure9Series(ds, added); err != nil {
			return nil, err
		}
		row.IIDStats = ds.Stats

		if added > 0 {
			ge := simnet.GilbertElliott(added, meanBurst)
			burstCfg := base
			burstCfg.Impairment = &ge
			bds, err := RunCampaign(burstCfg)
			if err != nil {
				return nil, fmt.Errorf("core: lossprofile bursty %.3f: %w", added, err)
			}
			if row.Bursty, err = ComputeFigure9Series(bds, added); err != nil {
				return nil, err
			}
			row.BurstyStats = bds.Stats
		} else {
			// No added loss: the arms are the same campaign.
			row.Bursty = row.IID
			row.BurstyStats = row.IIDStats
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderLossProfile prints the i.i.d.-vs-bursty comparison with the
// recovery activity behind each arm.
func RenderLossProfile(rows []LossProfileRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Loss profile: i.i.d. vs bursty (mean burst %.0f pkts) at matched average rates\n", rows[0].MeanBurst)
	}
	w := newTable(&sb)
	fmt.Fprintln(w, "added loss\tiid median (ms)\tbursty median (ms)\tiid slope\tbursty slope\tiid RTO+PTO\tbursty RTO+PTO\tbursty retries")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f%%\t%.1f\t%.1f\t%.2f\t%.2f\t%d\t%d\t%d\n",
			100*r.AddedLoss,
			r.IID.MedianReductionMs, r.Bursty.MedianReductionMs,
			r.IID.Slope, r.Bursty.Slope,
			r.IIDStats.Recovery.Timeouts+r.IIDStats.Recovery.ProbeFires,
			r.BurstyStats.Recovery.Timeouts+r.BurstyStats.Recovery.ProbeFires,
			r.BurstyStats.Recovery.FetchRetries)
	}
	_ = w.Flush()
	sb.WriteString("bursty drops cluster into RTO/PTO-scale gaps, stressing recovery where H3's advantage concentrates\n")
	return sb.String()
}
