package core

import (
	"bytes"
	"sort"
	"testing"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/sketch"
	"h3cdn/internal/trace"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// exactMedianBracket returns the two order statistics the sketch's
// rank-rounded median may legally land between, widened by α on each
// side — the bound a DDSketch median must satisfy against linearly
// interpolated exact medians.
func exactMedianBracket(plts []float64, alpha float64) (lo, hi float64) {
	s := append([]float64(nil), plts...)
	sort.Float64s(s)
	mid := (len(s) - 1) / 2
	lo, hi = s[mid], s[(len(s))/2]
	return lo * (1 - alpha), hi * (1 + alpha)
}

func modePLTs(ds *Dataset, mode browser.Mode) []float64 {
	pages := ds.Logs[mode].Pages
	out := make([]float64, len(pages))
	for i := range pages {
		out[i] = msOf(pages[i].PLT)
	}
	return out
}

// TestRetentionNone checks the bounded-memory path end to end: PageLogs
// are dropped, the sketches still cover every page, and sketch-derived
// medians agree with the exact medians of an identical RetainAll run
// within the documented error bound.
func TestRetentionNone(t *testing.T) {
	full := smallCampaign(t, func(c *CampaignConfig) { c.TracePhases = true })
	none := smallCampaign(t, func(c *CampaignConfig) {
		c.TracePhases = true
		c.Retention = har.Retention{Kind: har.RetainNone}
	})

	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		if n := len(none.Logs[mode].Pages); n != 0 {
			t.Fatalf("%v: RetainNone kept %d pages", mode, n)
		}
		if n := len(none.Phases[mode]); n != 0 {
			t.Fatalf("%v: RetainNone kept %d phase entries", mode, n)
		}
	}
	if none.Metrics == nil {
		t.Fatal("RetainNone dataset has no Metrics")
	}
	if got := none.Metrics.Pages(); got != 24 { // 12 pages × 2 modes
		t.Fatalf("folded %d pages, want 24", got)
	}
	if none.Stats.PagesFolded != 24 || none.Stats.PagesRetained != 0 {
		t.Fatalf("stats folded/retained = %d/%d, want 24/0",
			none.Stats.PagesFolded, none.Stats.PagesRetained)
	}
	if full.Stats.PagesRetained != 24 {
		t.Fatalf("RetainAll stats retained = %d, want 24", full.Stats.PagesRetained)
	}

	// Campaign-level accuracy: the sketch median of the RetainNone run
	// must bracket the exact retained-HAR median of the identical
	// RetainAll run.
	alpha := none.Metrics.Alpha()
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		exact := modePLTs(full, mode)
		lo, hi := exactMedianBracket(exact, alpha)
		got, approx, ok := none.PLTMedianMs(mode)
		if !ok || !approx {
			t.Fatalf("%v: PLTMedianMs ok=%v approx=%v, want sketch path", mode, ok, approx)
		}
		if got < lo || got > hi {
			t.Fatalf("%v: sketch median %.3f outside exact bracket [%.3f, %.3f]", mode, got, lo, hi)
		}
		// The RetainAll dataset answers exactly.
		want, approx, ok := full.PLTMedianMs(mode)
		if !ok || approx {
			t.Fatalf("%v: full dataset PLTMedianMs ok=%v approx=%v, want exact path", mode, ok, approx)
		}
		if want != analysis.Median(exact) {
			t.Fatalf("%v: exact path %.3f != Median %.3f", mode, want, analysis.Median(exact))
		}
	}

	// Phase report answers from the sketches, means exact.
	rows, err := ComputePhaseReport(none)
	if err != nil {
		t.Fatal(err)
	}
	fullRows, err := ComputePhaseReport(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(fullRows) {
		t.Fatalf("%d sketch rows vs %d exact rows", len(rows), len(fullRows))
	}
	for i := range rows {
		r, f := rows[i], fullRows[i]
		if !r.Approx || f.Approx {
			t.Fatalf("row %d: approx flags %v/%v", i, r.Approx, f.Approx)
		}
		if r.Mode != f.Mode || r.Visits != f.Visits {
			t.Fatalf("row %d: %v/%d vs %v/%d", i, r.Mode, r.Visits, f.Mode, f.Visits)
		}
		// Means come from integer nanosecond sums: exact in both paths.
		for _, pair := range [][2]float64{
			{r.Resolve, f.Resolve}, {r.Connect, f.Connect}, {r.Handshake, f.Handshake},
			{r.Stall, f.Stall}, {r.Transfer, f.Transfer}, {r.Other, f.Other}, {r.MeanPLT, f.MeanPLT},
		} {
			if diff := pair[0] - pair[1]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("row %d (%v): sketch mean %.6f != exact mean %.6f", i, r.Mode, pair[0], pair[1])
			}
		}
		// The exact median interpolates between two order statistics
		// while the sketch answers at a rounded rank, so compare against
		// the α-widened bracket of those order statistics.
		totals := make([]float64, len(full.Phases[r.Mode]))
		for j, pb := range full.Phases[r.Mode] {
			totals[j] = msOf(pb.Total())
		}
		lo, hi := exactMedianBracket(totals, sketch.DefaultAlpha)
		if r.MedianPLT < lo || r.MedianPLT > hi {
			t.Fatalf("row %d (%v): sketch median %.3f outside exact bracket [%.3f, %.3f]", i, r.Mode, r.MedianPLT, lo, hi)
		}
	}

	// Figure 9 degrades to the sketch estimator instead of erroring.
	s9, err := ComputeFigure9Series(none, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s9.Approx || len(s9.Points) != 0 {
		t.Fatalf("Fig9 approx=%v points=%d, want sketch fallback", s9.Approx, len(s9.Points))
	}
	exact9, err := ComputeFigure9Series(full, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact9.Approx {
		t.Fatal("full dataset Fig9 took the sketch path")
	}
}

// TestRetentionSample checks the deterministic reservoir path: a stable
// subset of PageLogs survives, aligned with its phase entries.
func TestRetentionSample(t *testing.T) {
	full := smallCampaign(t, func(c *CampaignConfig) { c.TracePhases = true })
	mut := func(c *CampaignConfig) {
		c.TracePhases = true
		c.Retention = har.Retention{Kind: har.RetainSample, Sample: 5}
	}
	a := smallCampaign(t, mut)
	b := smallCampaign(t, mut)

	if !bytes.Equal(harJSON(t, a), harJSON(t, b)) {
		t.Fatal("sampled retention is not deterministic across runs")
	}
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		pages := a.Logs[mode].Pages
		if len(pages) != 5 { // one 12-page shard per mode, capacity 5
			t.Fatalf("%v: %d retained pages, want 5", mode, len(pages))
		}
		if len(a.Phases[mode]) != len(pages) {
			t.Fatalf("%v: %d phases for %d pages", mode, len(a.Phases[mode]), len(pages))
		}
		// Every retained page is one of the full run's pages, in corpus
		// order, with its phase attribution still aligned: the phase
		// buckets partition the page's PLT.
		fullSites := make(map[string]int)
		for i, p := range full.Logs[mode].Pages {
			fullSites[p.Site] = i
		}
		prev := -1
		for i, p := range pages {
			idx, known := fullSites[p.Site]
			if !known {
				t.Fatalf("%v: retained page %q not in the full run", mode, p.Site)
			}
			if idx <= prev {
				t.Fatalf("%v: retained pages out of corpus order at %d", mode, i)
			}
			prev = idx
			if full.Logs[mode].Pages[idx].PLT != p.PLT {
				t.Fatalf("%v %s: retained PLT differs from full run", mode, p.Site)
			}
			if got := a.Phases[mode][i].Total(); got != p.PLT {
				t.Fatalf("%v %s: phase total %v != PLT %v (misaligned phases)", mode, p.Site, got, p.PLT)
			}
		}
	}
	if a.Stats.PagesFolded != 24 || a.Stats.PagesRetained != 10 {
		t.Fatalf("stats folded/retained = %d/%d, want 24/10", a.Stats.PagesFolded, a.Stats.PagesRetained)
	}
	// Sketches cover all pages regardless of sampling.
	if a.Metrics.Pages() != 24 {
		t.Fatalf("folded %d pages, want 24", a.Metrics.Pages())
	}
	// Partial retention answers medians from the sketch, not the sample.
	if _, approx, ok := a.PLTMedianMs(browser.ModeH3); !ok || !approx {
		t.Fatalf("sampled dataset PLTMedianMs approx=%v ok=%v, want sketch path", approx, ok)
	}
}

// TestRetentionWorkerDeterminism extends the worker-count byte-identity
// guarantee to the new retention paths.
func TestRetentionWorkerDeterminism(t *testing.T) {
	for _, ret := range []har.Retention{
		{Kind: har.RetainSample, Sample: 3},
		{Kind: har.RetainNone},
	} {
		var ref []byte
		var refMedian float64
		for _, workers := range []int{0, 1, 4} {
			cfg := CampaignConfig{
				Seed:             31,
				CorpusConfig:     webgen.Config{NumPages: 10, MeanResources: 30},
				Vantages:         vantage.Points()[:2],
				ProbesPerVantage: 1,
				PagesPerShard:    4, // 3 shards per probe: exercises multi-shard stitch
				Retention:        ret,
			}
			if workers == 0 {
				cfg.Sequential = true
			} else {
				cfg.Workers = workers
			}
			ds, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := harJSON(t, ds)
			med := ds.Metrics.ModeGroup(browser.ModeH3.String()).MedianPLTMs()
			if ref == nil {
				ref, refMedian = got, med
				continue
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("retention %v: dataset differs at workers=%d", ret, workers)
			}
			if med != refMedian {
				t.Fatalf("retention %v: sketch median differs at workers=%d", ret, workers)
			}
		}
	}
}

// TestStitchRetainedMixedShards covers the stitcher against shards that
// contribute no PageLogs: nil and non-nil shard slices interleave and
// the result concatenates the survivors in job order.
func TestStitchRetainedMixedShards(t *testing.T) {
	jobs := []shardJob{
		{mode: browser.ModeH2}, {mode: browser.ModeH3},
		{mode: browser.ModeH2}, {mode: browser.ModeH3},
	}
	ds := &Dataset{
		Logs: map[browser.Mode]*har.Log{
			browser.ModeH2: {},
			browser.ModeH3: {},
		},
		Phases: map[browser.Mode][]trace.PhaseBreakdown{},
	}
	pages := [][]har.PageLog{
		{{Site: "a1"}, {Site: "a2"}},
		nil, // an empty-retention shard in the middle
		{{Site: "c1"}},
		{{Site: "d1"}},
	}
	phases := [][]trace.PhaseBreakdown{
		{{Truncated: true}, {}},
		nil,
		{{}},
		{{}},
	}
	stitchRetained(ds, jobs, pages, phases)
	h2 := ds.Logs[browser.ModeH2].Pages
	if len(h2) != 3 || h2[0].Site != "a1" || h2[1].Site != "a2" || h2[2].Site != "c1" {
		t.Fatalf("h2 stitch: %+v", h2)
	}
	h3 := ds.Logs[browser.ModeH3].Pages
	if len(h3) != 1 || h3[0].Site != "d1" {
		t.Fatalf("h3 stitch: %+v", h3)
	}
	if len(ds.Phases[browser.ModeH2]) != 3 || !ds.Phases[browser.ModeH2][0].Truncated {
		t.Fatalf("h2 phases: %+v", ds.Phases[browser.ModeH2])
	}
	// Without phase tracking the phases argument is nil: must not panic.
	ds2 := &Dataset{Logs: map[browser.Mode]*har.Log{browser.ModeH2: {}, browser.ModeH3: {}}}
	stitchRetained(ds2, jobs, pages, nil)
	if len(ds2.Logs[browser.ModeH2].Pages) != 3 {
		t.Fatal("nil-phase stitch dropped pages")
	}
}

// TestRetentionInvalidConfig pins the validation error path.
func TestRetentionInvalidConfig(t *testing.T) {
	cfg := CampaignConfig{
		Seed:             1,
		CorpusConfig:     webgen.Config{NumPages: 2, MeanResources: 5},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		Retention:        har.Retention{Kind: har.RetainSample}, // missing size
	}
	if _, err := RunCampaign(cfg); err == nil {
		t.Fatal("invalid retention accepted")
	}
}
