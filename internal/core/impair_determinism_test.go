package core

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"h3cdn/internal/simnet"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// goldenImpairedSHA256 pins the campaign dataset with the fault layer
// enabled: Gilbert–Elliott bursty loss (1% average, mean burst 4) plus
// 2ms jitter. The impairment streams derive from the same seeded
// hierarchy as ambient loss, so worker sharding must stay byte-identical
// even with every fault knob active. Re-pinned once for the HAR 1.2
// Connect/SSL split (serialization-only; see goldenDatasetSHA256), and
// again for the httpsim request watchdog: a client silent for 30s with
// requests outstanding now aborts and retries instead of waiting out the
// peer's PTO backoff, which re-times the handful of deep-blackout visits
// in this campaign. (Verified: with the watchdog disabled the dataset
// still matches the previous pin byte-for-byte, so the accompanying QUIC
// connection-identity hardening is trajectory-neutral.) Re-pinned a
// third time for the jitter FIFO fix: per-packet jitter used to let
// later sends overtake earlier ones on the same path (unintended
// reordering); arrivals are now clamped to the path's delivery frontier,
// so every jittered delivery in this campaign lands at a ≥ time.
// Unimpaired campaigns are arrival-monotone already, so the plain
// golden (goldenDatasetSHA256) is unaffected — verified byte-identical.
const goldenImpairedSHA256 = "a54513c1a47a11d18b1387b664b7bd1596414231ab67ed9b3752d266ab5ed826"

// TestImpairedCampaignGoldenDataset mirrors TestCampaignGoldenDataset
// under bursty loss + jitter, across Sequential / Workers 1 / Workers 4.
func TestImpairedCampaignGoldenDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale impaired campaign; skipped with -short")
	}
	ge := simnet.GilbertElliott(0.01, 4)
	ge.JitterMax = 2 * time.Millisecond
	variants := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"Sequential", func(c *CampaignConfig) { c.Sequential = true }},
		{"Workers1", func(c *CampaignConfig) { c.Workers = 1 }},
		{"Workers4", func(c *CampaignConfig) { c.Workers = 4 }},
	}
	var recovery simnet.RecoveryStats
	for i, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := CampaignConfig{
				Seed:             2022,
				CorpusConfig:     webgen.Config{NumPages: 24},
				Vantages:         vantage.Points(),
				ProbesPerVantage: 1,
				Impairment:       &ge,
			}
			v.mut(&cfg)
			ds, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkHARInvariants(t, ds)
			sum := sha256.Sum256(harJSON(t, ds))
			if got := hex.EncodeToString(sum[:]); got != goldenImpairedSHA256 {
				t.Fatalf("impaired dataset hash %s, want golden %s", got, goldenImpairedSHA256)
			}
			if ds.Stats.BurstDrops == 0 {
				t.Fatal("BurstDrops = 0: the fault layer never engaged")
			}
			// Recovery counters are per-shard sums, so they too must be
			// independent of the sharding layout.
			if i == 0 {
				recovery = ds.Stats.Recovery
			} else if ds.Stats.Recovery != recovery {
				t.Fatalf("Recovery = %+v, want %+v (independent of workers)", ds.Stats.Recovery, recovery)
			}
		})
	}
}
