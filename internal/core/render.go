package core

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"h3cdn/internal/analysis"
)

// Render helpers produce the plain-text tables/series the report tool and
// benchmarks print — one renderer per paper artifact.

func newTable(sb *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(sb, 2, 4, 2, ' ', 0)
}

// RenderTable1 prints Table I.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table I: H3 release year per CDN provider\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Provider\tRelease\tPerformance report")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\n", r.Provider, r.ReleaseYear, r.Report)
	}
	_ = w.Flush()
	return sb.String()
}

// RenderTable2 prints the request census.
func RenderTable2(t Table2) string {
	var sb strings.Builder
	sb.WriteString("Table II: requests by HTTP version (H3-enabled browsing)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Protocol\tCDN #\tCDN %\tNon-CDN #\tNon-CDN %\tAll #\tAll %")
	for _, row := range []string{"HTTP/2", "HTTP/3", "Others", "All"} {
		c, nc, all := t.CDN[row], t.NonCDN[row], t.All[row]
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%.1f\t%d\t%.1f\n",
			row, c.Count, c.Pct, nc.Count, nc.Pct, all.Count, all.Pct)
	}
	_ = w.Flush()
	fmt.Fprintf(&sb, "total requests: %d\n", t.Total)
	return sb.String()
}

// RenderFigure2 prints provider adoption and market share.
func RenderFigure2(rows []Fig2Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: H3 adoption by CDN provider\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Provider\treqs\tshare%\tH3-of-own%\tshare-of-H3%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\n",
			r.Provider, r.Requests, 100*r.RequestShare, 100*r.H3Fraction, 100*r.ShareOfH3)
	}
	_ = w.Flush()
	return sb.String()
}

// RenderFigure3 prints the CDN-share CCDF at decile probes.
func RenderFigure3(f Fig3) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: CCDF of CDN resource percentage per page\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "x (% CDN)\tP(share > x)")
	for _, x := range []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90} {
		fmt.Fprintf(w, "%.0f\t%.3f\n", x, ccdfAt(f.CCDF, x))
	}
	_ = w.Flush()
	fmt.Fprintf(&sb, "pages with >50%% CDN resources: %.1f%% (paper: ~75%%)\n", 100*f.PagesOverHalfCDN)
	return sb.String()
}

// RenderFigure4 prints both panels.
func RenderFigure4(f Fig4) string {
	var sb strings.Builder
	sb.WriteString("Figure 4(a): probability of providers appearing on pages\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Provider\tP(appears)")
	for _, p := range f.Presence {
		fmt.Fprintf(w, "%s\t%.3f\n", p.Provider, p.Probability)
	}
	_ = w.Flush()
	sb.WriteString("Figure 4(b): pages by number of providers used\n")
	w = newTable(&sb)
	fmt.Fprintln(w, "#providers\tpages")
	ks := make([]int, 0, len(f.PagesWithK))
	for k := range f.PagesWithK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Fprintf(w, "%d\t%d\n", k, f.PagesWithK[k])
	}
	_ = w.Flush()
	fmt.Fprintf(&sb, "pages using >=2 providers: %.1f%% (paper: 94.8%%)\n", 100*f.AtLeastTwo)
	return sb.String()
}

// RenderFigure5 prints the per-provider resource-count CCDFs.
func RenderFigure5(series []Fig5Series) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: CCDF of per-page CDN resources by provider\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Provider\tmedian\tP(>10)\tP(>20)\tP(>50)")
	for _, s := range series {
		fmt.Fprintf(w, "%s\t%.0f\t%.2f\t%.2f\t%.2f\n",
			s.Provider, s.MedianCount, ccdfAt(s.CCDF, 10), ccdfAt(s.CCDF, 20), ccdfAt(s.CCDF, 50))
	}
	_ = w.Flush()
	return sb.String()
}

// RenderFigure6a prints PLT reduction per quartile group.
func RenderFigure6a(groups [4]Fig6aGroup) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(a): PLT reduction by H3-enabled CDN resource group\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Group\tsites\tmean H3-CDN\tPLT reduction (ms)")
	for _, g := range groups {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\n", g.Name, g.Sites, g.MeanH3CDN, g.PLTReductionMs)
	}
	_ = w.Flush()
	return sb.String()
}

// RenderFigure6b prints phase reduction medians and CDF probes.
func RenderFigure6b(f Fig6b) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(b): CDF of phase reductions (per-site, ms)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Phase\tmedian\tP(reduction<=0)")
	fmt.Fprintf(w, "connection\t%.2f\t%.2f\n", f.MedianConnectMs, cdfAt(f.ConnectCDF, 0))
	fmt.Fprintf(w, "wait\t%.2f\t%.2f\n", f.MedianWaitMs, cdfAt(f.WaitCDF, 0))
	fmt.Fprintf(w, "receive\t%.2f\t%.2f\n", f.MedianReceiveMs, cdfAt(f.ReceiveCDF, 0))
	_ = w.Flush()
	sb.WriteString("paper: median connection > 0, wait < 0, receive ~ 0\n")
	return sb.String()
}

// RenderFigure7 prints panels a, b and c.
func RenderFigure7(ab [4]Fig7Group, c [4]Fig7cBucket) string {
	var sb strings.Builder
	sb.WriteString("Figure 7(a,b): reused connections per group\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Group\tH2 reused\tH3 reused\tdifference")
	for _, g := range ab {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n", g.Name, g.H2Reused, g.H3Reused, g.Difference)
	}
	_ = w.Flush()
	sb.WriteString("Figure 7(c): PLT reduction vs reuse difference\n")
	w = newTable(&sb)
	fmt.Fprintln(w, "Bucket\tsites\tmean diff\tPLT reduction (ms)")
	for _, b := range c {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\n", b.Label, b.Sites, b.MeanDifference, b.PLTReductionMs)
	}
	_ = w.Flush()
	return sb.String()
}

// RenderFigure8 prints the consecutive-visit provider buckets.
func RenderFigure8(points []Fig8Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: consecutive visits, by providers used per page\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "#providers\tsites\tPLT reduction (ms)\tresumed conns")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\n", p.Providers, p.Sites, p.PLTReductionMs, p.ResumedConns)
	}
	_ = w.Flush()
	return sb.String()
}

// RenderTable3 prints the sharing case study.
func RenderTable3(t Table3) string {
	var sb strings.Builder
	sb.WriteString("Table III: sharing-degree case study (k-means, k=2)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "Metric\tHigh sharing C_H\tLow sharing C_L")
	fmt.Fprintf(w, "sites\t%d\t%d\n", t.High.Sites, t.Low.Sites)
	fmt.Fprintf(w, "avg providers\t%.2f\t%.2f\n", t.High.AvgProviders, t.Low.AvgProviders)
	fmt.Fprintf(w, "avg resumed conns\t%.2f\t%.2f\n", t.High.AvgResumed, t.Low.AvgResumed)
	fmt.Fprintf(w, "PLT reduction (ms)\t%.1f\t%.1f\n", t.High.PLTReductionMs, t.Low.PLTReductionMs)
	_ = w.Flush()
	fmt.Fprintf(&sb, "shared domains (features): %d (paper: 58)\n", t.Domains)
	return sb.String()
}

// RenderFigure9 prints the loss sweep with fitted slopes.
func RenderFigure9(series []Fig9Series) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: PLT reduction vs CDN resources under loss\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "loss\tsites\tmedian reduction (ms)\tslope (ms/resource)\tintercept (ms)")
	for _, s := range series {
		fmt.Fprintf(w, "%.1f%%\t%d\t%.1f\t%.2f\t%.1f\n",
			100*s.LossRate, len(s.Points), s.MedianReductionMs, s.Slope, s.Intercept)
	}
	_ = w.Flush()
	sb.WriteString("paper slopes: 0.80 (0%), 1.42 (0.5%), 2.15 (1%); reduction rises with loss\n")
	return sb.String()
}

func cdfAt(curve []analysis.Point, x float64) float64 {
	return analysis.InterpolateY(curve, x)
}

func ccdfAt(curve []analysis.Point, x float64) float64 {
	return analysis.InterpolateY(curve, x)
}
