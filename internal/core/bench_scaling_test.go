package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// peakHeapSampler tracks the process's heap+stack in-use high-water mark
// while a campaign runs — the portable proxy for peak RSS (the OS VmHWM
// counter is monotonic across a process, so it cannot compare worker
// counts within one benchmark binary).
type peakHeapSampler struct {
	stop chan struct{}
	done chan struct{}
	mu   sync.Mutex
	peak uint64
}

func startPeakSampler() *peakHeapSampler {
	s := &peakHeapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.sample()
	go func() {
		defer close(s.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.sample()
			}
		}
	}()
	return s
}

func (s *peakHeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	inUse := ms.HeapInuse + ms.StackInuse
	s.mu.Lock()
	if inUse > s.peak {
		s.peak = inUse
	}
	s.mu.Unlock()
}

// peakMB stops the sampler and returns the high-water mark in MiB.
func (s *peakHeapSampler) peakMB() float64 {
	close(s.stop)
	<-s.done
	s.sample()
	return float64(s.peak) / (1 << 20)
}

// BenchmarkCampaignScaling measures aggregate campaign throughput at
// several worker counts over an identical shard decomposition, reporting
// scheduler events/sec and the peak-RSS proxy per worker count. The
// recorded numbers live in BENCH_scaling.json; `make bench-scaling` runs
// this through benchgate, which derives parallel efficiency at 4 workers
// (speedup over workers=1, normalized by min(workers, NumCPU)) and gates
// it at the recorded floor.
//
// The corpus defaults to smoke scale; set H3CDN_SCALING_PAGES=1000 to
// reproduce the recorded 1k-page run. Skipped on single-core machines,
// where worker scaling is unmeasurable by construction.
func BenchmarkCampaignScaling(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("GOMAXPROCS=1: worker scaling is not measurable")
	}
	pages := 96
	if s := os.Getenv("H3CDN_SCALING_PAGES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			b.Fatalf("H3CDN_SCALING_PAGES=%q: want a positive integer", s)
		}
		pages = n
	}
	corpus := webgen.Generate(webgen.Config{Seed: 2022, NumPages: pages})
	// Eight shards per (mode, probe): enough supply to keep 8 workers
	// busy while leaving shards large enough to amortize universe setup.
	per := (pages + 7) / 8
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sampler := startPeakSampler()
			var events int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				ds, err := RunCampaign(CampaignConfig{
					Seed:             2022,
					Corpus:           corpus,
					Vantages:         vantage.Points()[:1],
					ProbesPerVantage: 1,
					Workers:          w,
					PagesPerShard:    per,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += ds.Stats.Events
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(events)/elapsed.Seconds(), "events/sec")
			b.ReportMetric(sampler.peakMB(), "peak-RSS-MB")
		})
	}
}
