package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// The campaign-level golden byte-identity guarantee for the shared-
// topology path lives in TestCampaignGoldenDataset and
// TestImpairedCampaignGoldenDataset: RunCampaign now builds one Topology
// and shares it across Sequential / Workers {1, 4}, and both pinned
// hashes predate the refactor. The tests here cover the sharing
// semantics directly: a shared topology must be observationally
// identical to a private one, and concurrent campaigns over one corpus
// must be race-free.

// visitAll loads every corpus page once through u and returns the
// marshaled logs.
func visitAll(t *testing.T, u *Universe, corpus *webgen.Corpus) []byte {
	t.Helper()
	b := u.NewBrowser(browser.Config{
		Mode:          browser.ModeH3,
		EnableZeroRTT: true,
		HandshakeCPU:  300 * time.Microsecond,
	})
	var logs []har.PageLog
	for i := range corpus.Pages {
		log, err := u.RunVisit(b, &corpus.Pages[i])
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, *log)
		b.ClearSessions()
	}
	out, err := json.Marshal(logs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSharedTopologyMatchesPrivate pins the lazy-instantiation
// invariant at the universe level: a universe handed the campaign's
// shared topology must produce byte-identical visit logs to one that
// builds its own, because every server rng stream is label-derived and
// the only ordered draws (origindelay) happen eagerly either way.
func TestSharedTopologyMatchesPrivate(t *testing.T) {
	corpus := webgen.Generate(webgen.Config{NumPages: 6, Seed: 11})
	topo := NewTopology(corpus)

	build := func(shared *Topology) *Universe {
		u, err := NewUniverse(UniverseConfig{
			Seed:     2022,
			Corpus:   corpus,
			Topology: shared,
			Vantage:  vantage.Points()[0],
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}

	uShared := build(topo)
	defer uShared.Close()
	uPrivate := build(nil)
	defer uPrivate.Close()

	got := visitAll(t, uShared, corpus)
	want := visitAll(t, uPrivate, corpus)
	if !bytes.Equal(got, want) {
		t.Fatalf("shared-topology logs differ from private-topology logs (%d vs %d bytes)", len(got), len(want))
	}
}

// TestConcurrentCampaignsSharedCorpus runs two parallel campaigns over
// one corpus. Each campaign builds its own shared Topology and fans it
// out across its worker pool, so under -race this exercises concurrent
// reads of both the corpus maps and the topology tables. Both datasets
// must match a sequential reference byte-for-byte.
func TestConcurrentCampaignsSharedCorpus(t *testing.T) {
	corpus := webgen.Generate(webgen.Config{NumPages: 8, Seed: 7})
	cfg := CampaignConfig{
		Seed:             2022,
		Corpus:           corpus,
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		PagesPerShard:    4, // two shards per probe: topology shared across shards
	}

	seqCfg := cfg
	seqCfg.Sequential = true
	ref, err := RunCampaign(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	refSum := sha256.Sum256(harJSON(t, ref))

	var wg sync.WaitGroup
	sums := make([][32]byte, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Workers = i + 2
			ds, err := RunCampaign(c)
			if err != nil {
				errs[i] = err
				return
			}
			b, err := json.Marshal(ds.Logs)
			if err != nil {
				errs[i] = err
				return
			}
			sums[i] = sha256.Sum256(b)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
		if sums[i] != refSum {
			t.Fatalf("campaign %d dataset differs from sequential reference", i)
		}
	}
}
