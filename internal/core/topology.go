package core

import (
	"sort"

	"h3cdn/internal/browser"
	"h3cdn/internal/cdn"
	"h3cdn/internal/simnet"
	"h3cdn/internal/webgen"
)

// The content catalog is a slice of resource pointers sorted by
// (host, path), binary-searched per request, rather than a map: the
// corpus already stores every host, path, and size, so the catalog
// needs only 8 bytes per resource — a string-keyed map costs an order
// of magnitude more, and at 100k-page scale it was a dominant live
// allocation. The lookup runs once per simulated request; ~20 string
// comparisons against pre-resolved resource fields allocate nothing
// and are noise next to the simulated exchange they answer.

// Topology is the campaign-wide, shard-independent slice of universe
// construction: everything computable from the immutable corpus and the
// CDN registry alone. A campaign builds it once and shares it read-only
// across every worker goroutine; each shard's Universe then only pays
// for its own randomness (origin delays, path streams) and the servers
// it actually contacts.
//
// All fields are written during NewTopology and never mutated again —
// concurrent readers need no synchronization.
type Topology struct {
	corpus *webgen.Corpus

	// content is every corpus resource, sorted by (host, path).
	content []*webgen.Resource

	// providers snapshots the CDN registry by name; edgeAddr and
	// preloaded are the resolver's provider-level lookups.
	providers map[string]cdn.Provider
	edgeAddr  map[string]simnet.Addr
	preloaded map[string]bool
}

// NewTopology builds the shared topology for a corpus. The corpus must
// not be mutated afterwards.
func NewTopology(corpus *webgen.Corpus) *Topology {
	reg := cdn.Registry()
	nRes := 0
	for i := range corpus.Pages {
		nRes += len(corpus.Pages[i].Resources)
	}
	t := &Topology{
		corpus:    corpus,
		content:   make([]*webgen.Resource, 0, nRes),
		providers: make(map[string]cdn.Provider, len(reg)),
		edgeAddr:  make(map[string]simnet.Addr, len(reg)),
		preloaded: make(map[string]bool, len(reg)),
	}
	for i := range corpus.Pages {
		p := &corpus.Pages[i]
		for j := range p.Resources {
			t.content = append(t.content, &p.Resources[j])
		}
	}
	sort.Slice(t.content, func(i, j int) bool {
		a, b := t.content[i], t.content[j]
		if ah, bh := a.Host(), b.Host(); ah != bh {
			return ah < bh
		}
		return a.Path() < b.Path()
	})
	for _, p := range reg {
		t.providers[p.Name] = p
		t.edgeAddr[p.Name] = simnet.Addr("edge." + slug(p.Name))
		t.preloaded[p.Name] = p.H3Preloaded
	}
	return t
}

// Corpus returns the corpus the topology was built from.
func (t *Topology) Corpus() *webgen.Corpus { return t.corpus }

// ContentSize resolves a resource's body size (the cdn.ContentFunc shared
// by every edge and origin server built from this topology).
func (t *Topology) ContentSize(host, path string) (int, bool) {
	i := sort.Search(len(t.content), func(i int) bool {
		r := t.content[i]
		if rh := r.Host(); rh != host {
			return rh >= host
		}
		return r.Path() >= path
	})
	if i < len(t.content) {
		if r := t.content[i]; r.Host() == host && r.Path() == path {
			return r.Size, true
		}
	}
	return 0, false
}

// Endpoint resolves a hostname to its serving endpoint. The answer is
// shard-independent: which simulated server backs the address — and
// whether it exists yet — is the Universe's concern, not the topology's.
func (t *Topology) Endpoint(hostname string) (browser.Endpoint, bool) {
	prov, ok := t.corpus.HostProvider[hostname]
	if !ok {
		return browser.Endpoint{}, false
	}
	if prov == "" {
		return browser.Endpoint{
			Addr:       simnet.Addr("origin." + hostname),
			SupportsH3: t.corpus.H3Support[hostname],
			H1Only:     t.corpus.H1Only[hostname],
		}, true
	}
	return browser.Endpoint{
		Addr:        t.edgeAddr[prov],
		SupportsH3:  t.corpus.H3Support[hostname],
		H3Preloaded: t.preloaded[prov],
	}, true
}
