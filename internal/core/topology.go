package core

import (
	"h3cdn/internal/browser"
	"h3cdn/internal/cdn"
	"h3cdn/internal/simnet"
	"h3cdn/internal/webgen"
)

// contentKey identifies one resource body. Keyed by struct, not by
// host+path concatenation: the lookup runs once per simulated request,
// and a struct key hashes both strings without allocating.
type contentKey struct{ host, path string }

// Topology is the campaign-wide, shard-independent slice of universe
// construction: everything computable from the immutable corpus and the
// CDN registry alone. A campaign builds it once and shares it read-only
// across every worker goroutine; each shard's Universe then only pays
// for its own randomness (origin delays, path streams) and the servers
// it actually contacts.
//
// All fields are written during NewTopology and never mutated again —
// concurrent readers need no synchronization.
type Topology struct {
	corpus *webgen.Corpus

	// content is the (host, path) → size catalog over the full corpus.
	content map[contentKey]int

	// providers snapshots the CDN registry by name; edgeAddr and
	// preloaded are the resolver's provider-level lookups.
	providers map[string]cdn.Provider
	edgeAddr  map[string]simnet.Addr
	preloaded map[string]bool
}

// NewTopology builds the shared topology for a corpus. The corpus must
// not be mutated afterwards.
func NewTopology(corpus *webgen.Corpus) *Topology {
	nRes := 0
	for i := range corpus.Pages {
		nRes += len(corpus.Pages[i].Resources)
	}
	reg := cdn.Registry()
	t := &Topology{
		corpus:    corpus,
		content:   make(map[contentKey]int, nRes),
		providers: make(map[string]cdn.Provider, len(reg)),
		edgeAddr:  make(map[string]simnet.Addr, len(reg)),
		preloaded: make(map[string]bool, len(reg)),
	}
	for i := range corpus.Pages {
		p := &corpus.Pages[i]
		for j := range p.Resources {
			r := &p.Resources[j]
			t.content[contentKey{r.Host, r.Path}] = r.Size
		}
	}
	for _, p := range reg {
		t.providers[p.Name] = p
		t.edgeAddr[p.Name] = simnet.Addr("edge." + slug(p.Name))
		t.preloaded[p.Name] = p.H3Preloaded
	}
	return t
}

// Corpus returns the corpus the topology was built from.
func (t *Topology) Corpus() *webgen.Corpus { return t.corpus }

// ContentSize resolves a resource's body size (the cdn.ContentFunc shared
// by every edge and origin server built from this topology).
func (t *Topology) ContentSize(host, path string) (int, bool) {
	n, ok := t.content[contentKey{host, path}]
	return n, ok
}

// Endpoint resolves a hostname to its serving endpoint. The answer is
// shard-independent: which simulated server backs the address — and
// whether it exists yet — is the Universe's concern, not the topology's.
func (t *Topology) Endpoint(hostname string) (browser.Endpoint, bool) {
	prov, ok := t.corpus.HostProvider[hostname]
	if !ok {
		return browser.Endpoint{}, false
	}
	if prov == "" {
		return browser.Endpoint{
			Addr:       simnet.Addr("origin." + hostname),
			SupportsH3: t.corpus.H3Support[hostname],
			H1Only:     t.corpus.H1Only[hostname],
		}, true
	}
	return browser.Endpoint{
		Addr:        t.edgeAddr[prov],
		SupportsH3:  t.corpus.H3Support[hostname],
		H3Preloaded: t.preloaded[prov],
	}, true
}
