package core

import (
	"time"

	"h3cdn/internal/har"
	"h3cdn/internal/trace"
)

// harPhases derives a phase breakdown from a visit's HAR timings — the
// fallback when the tracer's event ring overflowed and the sweep-based
// attribution (trace.AttributeVisit) saw only a suffix of the visit.
// HAR buckets are per-entry, not a timeline partition: Connect−SSL maps
// to Connect, SSL to Handshake (H3's integrated handshake is all SSL by
// HAR convention), Wait+Receive to Transfer; HOL stalls are invisible to
// HAR and land inside Transfer. Entries overlap in real loads, so when
// the bucket sum exceeds PLT the buckets are scaled proportionally down
// to the window — the result always partitions PLT exactly, like the
// sweep's output, with the remainder in Other. The breakdown keeps
// Truncated=true so consumers can tell fallback attributions from exact
// ones.
func harPhases(log *har.PageLog) trace.PhaseBreakdown {
	pb := trace.PhaseBreakdown{Truncated: true}
	if log.PLT <= 0 {
		return pb
	}
	for i := range log.Entries {
		e := &log.Entries[i]
		transport := e.Connect - e.SSL
		if transport < 0 { // defensive: HAR invariant is SSL ⊆ Connect
			transport = 0
		}
		pb.Connect += transport
		pb.Handshake += e.SSL
		pb.Transfer += e.Wait + e.Receive
	}
	total := pb.Connect + pb.Handshake + pb.Transfer
	if total > log.PLT {
		// Overlapping entries oversubscribe the window; rescale so the
		// buckets sum to PLT (integer division rounds down, the slack
		// lands in Other).
		f := float64(log.PLT) / float64(total)
		pb.Connect = time.Duration(float64(pb.Connect) * f)
		pb.Handshake = time.Duration(float64(pb.Handshake) * f)
		pb.Transfer = time.Duration(float64(pb.Transfer) * f)
		total = pb.Connect + pb.Handshake + pb.Transfer
	}
	pb.Other = log.PLT - total
	return pb
}
