package core

import (
	"testing"

	"h3cdn/internal/browser"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// checkHARInvariants is the HAR 1.2 timing property test, run over every
// golden dataset: for each entry 0 ≤ SSL ≤ Connect (SSL is the TLS
// portion *of* Connect, never additional to it — the invariant the
// paper's reuse/resumption detection leans on), no negative phase, and
// reused connections report zero handshake time. The 0-RTT resumption
// path is the historical offender: a resumed QUIC handshake finishing in
// "zero" round trips must still be pinned inside [0, Connect].
func checkHARInvariants(t *testing.T, ds *Dataset) {
	t.Helper()
	entries := 0
	for mode, log := range ds.Logs {
		for pi := range log.Pages {
			page := &log.Pages[pi]
			for ei := range page.Entries {
				e := &page.Entries[ei]
				entries++
				if e.SSL < 0 || e.Connect < 0 || e.Blocked < 0 || e.Wait < 0 || e.Receive < 0 {
					t.Fatalf("%s %s %s: negative timing %+v", mode, page.Site, e.URL, e)
				}
				if e.SSL > e.Connect {
					t.Fatalf("%s %s %s: SSL %v > Connect %v (HAR 1.2: SSL ⊆ Connect)",
						mode, page.Site, e.URL, e.SSL, e.Connect)
				}
				if e.ReusedConn && (e.Connect != 0 || e.SSL != 0) {
					t.Fatalf("%s %s %s: reused connection with Connect %v / SSL %v",
						mode, page.Site, e.URL, e.Connect, e.SSL)
				}
			}
		}
	}
	if entries == 0 {
		t.Fatal("dataset has no entries to check")
	}
}

// TestHARInvariantsUnderResumption drives the invariant through the
// consecutive-visit protocol, where TLS/QUIC session caches survive
// across pages and 0-RTT resumption produces the degenerate handshakes
// most likely to break SSL ⊆ Connect.
func TestHARInvariantsUnderResumption(t *testing.T) {
	cfg := CampaignConfig{
		Seed:             77,
		CorpusConfig:     webgen.Config{NumPages: 12},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		Modes:            []browser.Mode{browser.ModeH2, browser.ModeH3},
		Consecutive:      true,
		Sequential:       true,
	}
	ds, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkHARInvariants(t, ds)
	resumed := 0
	for _, log := range ds.Logs {
		for pi := range log.Pages {
			resumed += log.Pages[pi].ResumedConns
		}
	}
	if resumed == 0 {
		t.Fatal("consecutive campaign produced no resumed connections — the 0-RTT path never ran")
	}
}
