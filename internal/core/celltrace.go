package core

import (
	"fmt"
	"strings"
	"time"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/simnet"
	"h3cdn/internal/simnet/traces"
)

// CellTraceRow is one cellular-trace profile's protocol comparison: the
// same campaign replayed over the profile's variable downlink in all
// three browsing modes, once with only the trace's capacity variation
// and once with Gilbert–Elliott bursty loss layered on top — the
// paper's lossy-cellular condition, with capacity realism the fixed
// access-link experiments lack.
type CellTraceRow struct {
	Profile  string
	MeanBps  float64 // time-weighted trace capacity
	DeadTime float64 // fraction of the period at zero capacity
	// MedianPLT[arm][mode]: arm 0 = trace only, arm 1 = trace + GE loss.
	MedianPLT [2]map[browser.Mode]time.Duration
	// Fig9[arm] is the reduction-vs-resources fit (H2 − H3) per arm.
	Fig9 [2]Fig9Series
	// Stats[arm] carries each arm's execution counters (H3-mode runs).
	Stats [2]CampaignStats
}

// cellTraceLoss is the bursty arm's added average loss (mean burst 4),
// matching the impaired-golden campaign's regime.
const cellTraceLoss = 0.01

// RunCellTrace replays the base campaign over each named synthetic trace
// profile (traces.Profile) in modes {H1, H2, H3}, in two arms: capacity
// variation alone, then capacity plus Gilbert–Elliott loss. The base
// config supplies corpus, vantages, and probes; Modes, LinkTrace, and
// Impairment are overridden per run.
func RunCellTrace(base CampaignConfig, profiles []string) ([]CellTraceRow, error) {
	base = base.withDefaults()
	if len(profiles) == 0 {
		profiles = traces.Names()
	}
	rows := make([]CellTraceRow, 0, len(profiles))
	for _, name := range profiles {
		tl, err := traces.Profile(name)
		if err != nil {
			return nil, err
		}
		row := CellTraceRow{Profile: name, MeanBps: tl.MeanBps()}
		var dead time.Duration
		for e := int64(0); e < int64(tl.Epochs()); e++ {
			if tl.EpochBps(e) == 0 {
				dead += tl.Period() / time.Duration(tl.Epochs())
			}
		}
		row.DeadTime = float64(dead) / float64(tl.Period())

		for arm := 0; arm < 2; arm++ {
			cfg := base
			cfg.Modes = []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3}
			cfg.LinkTrace = tl
			if arm == 1 {
				ge := simnet.GilbertElliott(cellTraceLoss, 4)
				cfg.Impairment = &ge
			}
			ds, err := RunCampaign(cfg)
			if err != nil {
				return nil, fmt.Errorf("core: celltrace %s arm %d: %w", name, arm, err)
			}
			row.MedianPLT[arm] = medianPLTByMode(ds)
			if row.Fig9[arm], err = ComputeFigure9Series(ds, cellTraceLoss*float64(arm)); err != nil {
				return nil, fmt.Errorf("core: celltrace %s arm %d: %w", name, arm, err)
			}
			row.Stats[arm] = ds.Stats
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// medianPLTByMode folds a dataset into one median PLT per browsing mode.
func medianPLTByMode(ds *Dataset) map[browser.Mode]time.Duration {
	out := make(map[browser.Mode]time.Duration, len(ds.Logs))
	for mode, log := range ds.Logs {
		plts := make([]float64, 0, len(log.Pages))
		for i := range log.Pages {
			plts = append(plts, msOf(log.Pages[i].PLT))
		}
		out[mode] = time.Duration(analysis.Median(plts) * float64(time.Millisecond))
	}
	return out
}

// RenderCellTrace prints the cellular-trace comparison: per profile, the
// median PLT of H1/H2/H3 in both arms plus the H3-advantage fit.
func RenderCellTrace(rows []CellTraceRow) string {
	var sb strings.Builder
	sb.WriteString("Cellular-trace replay: median PLT by protocol over variable downlinks\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "profile\tmean link\tdead\tarm\tH1 (ms)\tH2 (ms)\tH3 (ms)\tH3 gain vs H2 (ms)\tfit slope")
	for _, r := range rows {
		for arm := 0; arm < 2; arm++ {
			label := "trace"
			if arm == 1 {
				label = fmt.Sprintf("trace+%.0f%% GE", 100*cellTraceLoss)
			}
			m := r.MedianPLT[arm]
			h1 := msOf(m[browser.ModeH1])
			h2 := msOf(m[browser.ModeH2])
			h3 := msOf(m[browser.ModeH3])
			fmt.Fprintf(w, "%s\t%.1f Mbit/s\t%.0f%%\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
				r.Profile, r.MeanBps/1e6, 100*r.DeadTime, label,
				h1, h2, h3, h2-h3, r.Fig9[arm].Slope)
		}
	}
	_ = w.Flush()
	sb.WriteString("capacity fades alone compress protocol gaps; adding bursty loss is where H3's recovery advantage re-opens them\n")
	return sb.String()
}
