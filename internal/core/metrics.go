package core

import (
	"sort"
	"time"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/locedge"
	"h3cdn/internal/sketch"
)

// ModeStats aggregates one site's measurements for one browsing mode,
// averaged across probes.
type ModeStats struct {
	// Pages is how many probe visits contributed.
	Pages int
	// PLT is the median page load time across probe visits.
	PLT time.Duration
	// MeanConnect averages the connection phase over connection-opening
	// entries only (reused entries report connect = 0 and are excluded,
	// matching how HAR analyses treat connect = -1).
	MeanConnect time.Duration
	// MeanWait / MeanReceive average over all successful entries.
	MeanWait    time.Duration
	MeanReceive time.Duration
	// ReusedConns / ResumedConns are mean per-visit counts.
	ReusedConns  float64
	ResumedConns float64
}

// SiteMetrics aggregates one site across modes.
type SiteMetrics struct {
	Site string
	// TotalEntries / CDNEntries describe composition (from the H3-mode
	// log, classified by locedge).
	TotalEntries int
	CDNEntries   int
	// H3CDNEntries counts CDN entries actually fetched over HTTP/3 in
	// the H3-mode run — Fig. 6a's grouping key ("number of H3-enabled
	// CDN resources").
	H3CDNEntries int
	// Providers are the distinct CDN providers observed via locedge.
	Providers []string
	// ByMode holds the per-mode aggregates.
	ByMode map[browser.Mode]ModeStats
}

// PLTReduction is PLT_H2 − PLT_H3 (positive = H3 faster), the paper's
// X_reduction with X = PLT.
func (m *SiteMetrics) PLTReduction() time.Duration {
	return m.ByMode[browser.ModeH2].PLT - m.ByMode[browser.ModeH3].PLT
}

// ConnectReduction / WaitReduction / ReceiveReduction mirror Fig. 6(b).
func (m *SiteMetrics) ConnectReduction() time.Duration {
	return m.ByMode[browser.ModeH2].MeanConnect - m.ByMode[browser.ModeH3].MeanConnect
}

func (m *SiteMetrics) WaitReduction() time.Duration {
	return m.ByMode[browser.ModeH2].MeanWait - m.ByMode[browser.ModeH3].MeanWait
}

func (m *SiteMetrics) ReceiveReduction() time.Duration {
	return m.ByMode[browser.ModeH2].MeanReceive - m.ByMode[browser.ModeH3].MeanReceive
}

// ReuseDifference is reused(H2) − reused(H3), Fig. 7(b)'s metric.
func (m *SiteMetrics) ReuseDifference() float64 {
	return m.ByMode[browser.ModeH2].ReusedConns - m.ByMode[browser.ModeH3].ReusedConns
}

// ComputeSiteMetrics aggregates a dataset per site, averaging across
// probes, ordered by site name.
func ComputeSiteMetrics(ds *Dataset) []SiteMetrics {
	bySite := make(map[string]*SiteMetrics)
	order := make([]string, 0, len(ds.Corpus.Pages))

	for mode, log := range ds.Logs {
		type acc struct {
			plts    []float64 // ms, one per probe visit
			connSum time.Duration
			connN   int
			waitSum time.Duration
			recvSum time.Duration
			entryN  int
			reused  int
			resumed int
			pages   int
		}
		accs := make(map[string]*acc)
		for i := range log.Pages {
			p := &log.Pages[i]
			a := accs[p.Site]
			if a == nil {
				a = &acc{}
				accs[p.Site] = a
			}
			a.pages++
			a.plts = append(a.plts, msOf(p.PLT))
			a.reused += p.ReusedConns
			a.resumed += p.ResumedConns
			for j := range p.Entries {
				e := &p.Entries[j]
				if e.Failed {
					continue
				}
				a.entryN++
				a.waitSum += e.Wait
				a.recvSum += e.Receive
				if !e.ReusedConn {
					a.connSum += e.Connect
					a.connN++
				}
			}
		}
		for site, a := range accs {
			sm := bySite[site]
			if sm == nil {
				sm = &SiteMetrics{Site: site, ByMode: make(map[browser.Mode]ModeStats)}
				bySite[site] = sm
				order = append(order, site)
			}
			ms := ModeStats{Pages: a.pages}
			if a.pages > 0 {
				// Median across probes: robust to rare timeout
				// outliers (e.g. a lost SYN costing a full RTO).
				ms.PLT = time.Duration(analysis.Median(a.plts) * float64(time.Millisecond))
				ms.ReusedConns = float64(a.reused) / float64(a.pages)
				ms.ResumedConns = float64(a.resumed) / float64(a.pages)
			}
			if a.connN > 0 {
				ms.MeanConnect = a.connSum / time.Duration(a.connN)
			}
			if a.entryN > 0 {
				ms.MeanWait = a.waitSum / time.Duration(a.entryN)
				ms.MeanReceive = a.recvSum / time.Duration(a.entryN)
			}
			sm.ByMode[mode] = ms
		}
		_ = mode
	}

	// Composition and provider sets come from the H3-mode log when
	// available (it is the log the paper's Table II derives from),
	// falling back to any mode.
	compLog := ds.Logs[browser.ModeH3]
	if compLog == nil {
		for _, l := range ds.Logs {
			compLog = l
			break
		}
	}
	if compLog != nil {
		seenSite := make(map[string]bool)
		for i := range compLog.Pages {
			p := &compLog.Pages[i]
			if seenSite[p.Site] {
				continue // composition from the first probe only
			}
			seenSite[p.Site] = true
			sm := bySite[p.Site]
			if sm == nil {
				continue
			}
			provs := make(map[string]bool)
			for j := range p.Entries {
				e := &p.Entries[j]
				sm.TotalEntries++
				cls := locedge.Classify(e.Header)
				if !cls.IsCDN {
					continue
				}
				sm.CDNEntries++
				provs[cls.Provider] = true
				if e.Protocol == "h3" {
					sm.H3CDNEntries++
				}
			}
			sm.Providers = make([]string, 0, len(provs))
			for prov := range provs {
				sm.Providers = append(sm.Providers, prov)
			}
			sort.Strings(sm.Providers)
		}
	}

	sort.Strings(order)
	out := make([]SiteMetrics, 0, len(order))
	for _, site := range order {
		out = append(out, *bySite[site])
	}
	return out
}

// msOf converts to float milliseconds for analysis routines.
func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PLTMedianMs returns a mode's campaign-wide median page load time in
// milliseconds. It prefers the exact computation over retained PageLogs;
// when the retention policy kept only a subset (or none) of them, it
// answers from the streamed quantile sketch instead — approx is then
// true and the value carries the sketch's relative-error bound
// (Metrics.Alpha). ok is false when the mode has neither retained pages
// nor sketch state.
func (ds *Dataset) PLTMedianMs(mode browser.Mode) (ms float64, approx, ok bool) {
	log := ds.Logs[mode]
	retained := 0
	if log != nil {
		retained = len(log.Pages)
	}
	var g *sketch.GroupMetrics
	if ds.Metrics != nil {
		g = ds.Metrics.ModeGroup(mode.String())
	}
	// Exact path: every folded page is still in the dataset (or no
	// sketch exists to prove otherwise, e.g. a loaded dataset).
	if retained > 0 && (g == nil || uint64(retained) == g.Pages) {
		plts := make([]float64, retained)
		for i := range log.Pages {
			plts[i] = msOf(log.Pages[i].PLT)
		}
		return analysis.Median(plts), false, true
	}
	if g != nil && g.Pages > 0 {
		return g.MedianPLTMs(), true, true
	}
	return 0, false, false
}

// pltReductions extracts per-site PLT reductions in milliseconds.
func pltReductions(sms []SiteMetrics) []float64 {
	out := make([]float64, len(sms))
	for i := range sms {
		out[i] = msOf(sms[i].PLTReduction())
	}
	return out
}

// entriesOf returns all successful entries across a mode's log.
func entriesOf(ds *Dataset, mode browser.Mode) []har.Entry {
	log := ds.Logs[mode]
	if log == nil {
		return nil
	}
	var out []har.Entry
	for i := range log.Pages {
		for j := range log.Pages[i].Entries {
			e := log.Pages[i].Entries[j]
			if !e.Failed {
				out = append(out, e)
			}
		}
	}
	return out
}

// groupKey groups sites into Fig. 6a quartiles by H3-enabled CDN count.
func groupByH3CDN(sms []SiteMetrics) [4][]int {
	keys := make([]float64, len(sms))
	for i := range sms {
		keys[i] = float64(sms[i].H3CDNEntries)
	}
	return analysis.QuartileGroups(keys)
}
