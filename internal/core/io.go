package core

import (
	"encoding/json"
	"fmt"
	"io"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/webgen"
)

// datasetJSON is the serialized form of a Dataset (modes keyed by their
// string names).
type datasetJSON struct {
	Seed        uint64              `json:"seed"`
	Consecutive bool                `json:"consecutive"`
	Corpus      *webgen.Corpus      `json:"corpus"`
	Logs        map[string]*har.Log `json:"logs"`
}

func modeByName(name string) (browser.Mode, bool) {
	for _, m := range []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// SaveJSON serializes the dataset.
func (d *Dataset) SaveJSON(w io.Writer) error {
	out := datasetJSON{
		Seed:        d.Seed,
		Consecutive: d.Consecutive,
		Corpus:      d.Corpus,
		Logs:        make(map[string]*har.Log, len(d.Logs)),
	}
	for mode, log := range d.Logs {
		out.Logs[mode.String()] = log
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("core: save dataset: %w", err)
	}
	return nil
}

// LoadDataset deserializes a dataset written by SaveJSON.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var in datasetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: load dataset: %w", err)
	}
	ds := &Dataset{
		Seed:        in.Seed,
		Consecutive: in.Consecutive,
		Corpus:      in.Corpus,
		Logs:        make(map[browser.Mode]*har.Log, len(in.Logs)),
	}
	for name, log := range in.Logs {
		mode, ok := modeByName(name)
		if !ok {
			return nil, fmt.Errorf("core: load dataset: unknown mode %q", name)
		}
		ds.Logs[mode] = log
	}
	return ds, nil
}
