package core

import (
	"encoding/json"
	"sync"
	"testing"

	"h3cdn/internal/browser"
	"h3cdn/internal/webgen"
)

// TestArenaBalancedAfterVisits is the arena leak check: after every
// clean visit, the universe's buffer arena must have every Get matched
// by a Put (Rewind's outstanding balance is zero). A non-zero balance
// means a transport or HTTP layer dropped a pooled buffer without
// returning it — a leak that would grow the warm-shard footprint one
// visit at a time.
func TestArenaBalancedAfterVisits(t *testing.T) {
	corpus := webgen.Generate(webgen.Config{Seed: 7, NumPages: 4, MeanResources: 10})
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		t.Run(mode.String(), func(t *testing.T) {
			u, err := NewUniverse(UniverseConfig{Seed: 11, Corpus: corpus})
			if err != nil {
				t.Fatal(err)
			}
			defer u.Close()
			b := u.NewBrowser(browser.Config{Mode: mode, EnableZeroRTT: true})
			for i := range corpus.Pages {
				if err := u.RunVisitDiscard(b, &corpus.Pages[i]); err != nil {
					t.Fatal(err)
				}
				b.ClearSessions()
				if bal := u.Pools().Arena.Rewind(); bal != 0 {
					t.Fatalf("visit %d: arena balance %d, want 0 (leak)", i, bal)
				}
			}
			st := u.Pools().Arena.Stats()
			if st.Gets == 0 {
				t.Fatal("arena never used — pool wiring broken")
			}
			if st.Gets != st.Puts {
				t.Fatalf("arena gets %d != puts %d", st.Gets, st.Puts)
			}
			t.Logf("mode %s: gets=puts=%d news=%d high-water=%d", mode, st.Gets, st.News, st.HighWater)
		})
	}
}

// TestConcurrentCampaignsShareTopology runs two campaigns concurrently
// against one shared Topology while their shards' universes rewind
// per-visit arenas — the surface the race detector must clear: the
// topology is read-only after construction, and every mutable pool is
// confined to its own universe's scheduler goroutine.
func TestConcurrentCampaignsShareTopology(t *testing.T) {
	corpus := webgen.Generate(webgen.Config{Seed: 21, NumPages: 8, MeanResources: 6})
	topo := NewTopology(corpus)
	cfg := func(seed uint64) CampaignConfig {
		return CampaignConfig{
			Seed:             seed,
			Corpus:           corpus,
			Topology:         topo,
			ProbesPerVantage: 1,
			PagesPerShard:    3,
			Workers:          2,
		}
	}

	// Sequential references first, then the same campaigns concurrently.
	want := make(map[uint64]string)
	for _, seed := range []uint64{101, 202} {
		ref := cfg(seed)
		ref.Sequential = true
		ds, err := RunCampaign(ref)
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = string(harJSON(t, ds))
	}

	var wg sync.WaitGroup
	got := make(map[uint64]string)
	errs := make(map[uint64]error)
	var mu sync.Mutex
	for _, seed := range []uint64{101, 202} {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			ds, err := RunCampaign(cfg(seed))
			var raw []byte
			if err == nil {
				raw, err = json.Marshal(ds.Logs)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[seed] = err
				return
			}
			got[seed] = string(raw)
		}(seed)
	}
	wg.Wait()
	for seed, err := range errs {
		t.Fatalf("seed %d: %v", seed, err)
	}
	for seed, w := range want {
		if got[seed] != w {
			t.Fatalf("seed %d: concurrent dataset differs from sequential reference", seed)
		}
	}
}
