package core

import (
	"sort"
	"testing"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// TestDiagSlowestEntries is a diagnostic aid (verbose only): it shows,
// per mode, where page time goes on a few pages.
func TestDiagSlowestEntries(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	ds, err := RunCampaign(CampaignConfig{
		Seed:             7,
		CorpusConfig:     webgen.Config{NumPages: 6, MeanResources: 70},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		h2p := ds.Logs[browser.ModeH2].Pages[i]
		h3p := ds.Logs[browser.ModeH3].Pages[i]
		t.Logf("site %s: PLT h2=%v h3=%v diff=%v entries=%d",
			h2p.Site, h2p.PLT.Round(time.Millisecond), h3p.PLT.Round(time.Millisecond),
			(h2p.PLT - h3p.PLT).Round(time.Millisecond), len(h2p.Entries))
		for _, m := range []struct {
			name string
			pg   har.PageLog
		}{{"h2", h2p}, {"h3", h3p}} {
			entries := append([]har.Entry(nil), m.pg.Entries...)
			sort.Slice(entries, func(a, b int) bool {
				return entries[a].Started+entries[a].Total() > entries[b].Started+entries[b].Total()
			})
			for j := 0; j < 4 && j < len(entries); j++ {
				e := entries[j]
				t.Logf("  [%s] end=%v start=%v conn=%v wait=%v recv=%v blocked=%v proto=%s reused=%v host=%s",
					m.name, (e.Started + e.Total()).Round(time.Millisecond), e.Started.Round(time.Millisecond),
					e.Connect.Round(time.Millisecond), e.Wait.Round(time.Millisecond),
					e.Receive.Round(time.Millisecond), e.Blocked.Round(time.Millisecond),
					e.Protocol, e.ReusedConn, e.Host)
			}
		}
	}
}
