package core

import (
	"testing"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// TestDiagLossLevels prints PLT levels and reductions per loss rate.
func TestDiagLossLevels(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	for _, added := range []float64{0, 0.005, 0.01} {
		cfg := CampaignConfig{
			Seed:             1234,
			CorpusConfig:     webgen.Config{NumPages: 48, MeanResources: 70},
			Vantages:         vantage.Points()[:1],
			ProbesPerVantage: 3,
			LossRate:         DefaultBaselineLoss + added,
		}
		ds, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sms := ComputeSiteMetrics(ds)
		var h2, h3, red []float64
		var small, large []float64 // reductions by size half
		sizes := make([]float64, len(sms))
		for i := range sms {
			sizes[i] = float64(sms[i].CDNEntries)
		}
		medSize := analysis.Median(sizes)
		for i := range sms {
			h2 = append(h2, msOf(sms[i].ByMode[browser.ModeH2].PLT))
			h3 = append(h3, msOf(sms[i].ByMode[browser.ModeH3].PLT))
			r := msOf(sms[i].PLTReduction())
			red = append(red, r)
			if sizes[i] <= medSize {
				small = append(small, r)
			} else {
				large = append(large, r)
			}
		}
		t.Logf("added=%.1f%%: medPLT h2=%.0f h3=%.0f | red med=%.0f mean=%.0f | small med=%.0f large med=%.0f",
			100*added, analysis.Median(h2), analysis.Median(h3),
			analysis.Median(red), analysis.Mean(red), analysis.Median(small), analysis.Median(large))
	}
}
