package core

import (
	"fmt"
	"sort"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/cdn"
	"h3cdn/internal/locedge"
)

// --- Table I ---

// Table1Row is one provider's H3 release record.
type Table1Row struct {
	Provider    string
	ReleaseYear int
	Report      string
}

// Table1 reproduces Table I from the registry, ordered by release year.
func Table1() []Table1Row {
	reg := cdn.Registry()
	out := make([]Table1Row, 0, len(reg))
	for _, p := range reg {
		out = append(out, Table1Row{Provider: p.Name, ReleaseYear: p.ReleaseYear, Report: p.PerformanceNote})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ReleaseYear != out[j].ReleaseYear {
			return out[i].ReleaseYear < out[j].ReleaseYear
		}
		return out[i].Provider < out[j].Provider
	})
	return out
}

// --- Table II ---

// Table2Cell is one (version, population) count with its percentage of
// all requests.
type Table2Cell struct {
	Count int
	Pct   float64
}

// Table2 reproduces the request census by HTTP version × CDN/non-CDN.
type Table2 struct {
	// Rows keyed by "HTTP/2", "HTTP/3", "Others", "All"; each with CDN,
	// NonCDN and All cells.
	CDN    map[string]Table2Cell
	NonCDN map[string]Table2Cell
	All    map[string]Table2Cell
	Total  int
}

func versionRow(protocol string) string {
	switch protocol {
	case "h2":
		return "HTTP/2"
	case "h3":
		return "HTTP/3"
	default:
		return "Others"
	}
}

// ComputeTable2 counts the H3-mode log's requests (the paper's census is
// taken with the H3-enabled browser).
func ComputeTable2(ds *Dataset) Table2 {
	t := Table2{
		CDN:    make(map[string]Table2Cell),
		NonCDN: make(map[string]Table2Cell),
		All:    make(map[string]Table2Cell),
	}
	bump := func(m map[string]Table2Cell, key string) {
		c := m[key]
		c.Count++
		m[key] = c
	}
	for _, e := range entriesOf(ds, browser.ModeH3) {
		t.Total++
		row := versionRow(e.Protocol)
		cls := locedge.Classify(e.Header)
		if cls.IsCDN {
			bump(t.CDN, row)
			bump(t.CDN, "All")
		} else {
			bump(t.NonCDN, row)
			bump(t.NonCDN, "All")
		}
		bump(t.All, row)
		bump(t.All, "All")
	}
	for _, m := range []map[string]Table2Cell{t.CDN, t.NonCDN, t.All} {
		for k, c := range m {
			if t.Total > 0 {
				c.Pct = 100 * float64(c.Count) / float64(t.Total)
			}
			m[k] = c
		}
	}
	return t
}

// --- Figure 2 ---

// Fig2Row is one provider's measured adoption split.
type Fig2Row struct {
	Provider string
	// Requests is the provider's request count in the H3-mode log.
	Requests int
	// RequestShare is the provider's share of all CDN requests.
	RequestShare float64
	// H3Fraction is the share of the provider's own requests over H3.
	H3Fraction float64
	// ShareOfH3 is the provider's share of all H3 CDN requests.
	ShareOfH3 float64
}

// ComputeFigure2 measures per-provider H3 adoption and market share.
func ComputeFigure2(ds *Dataset) []Fig2Row {
	type acc struct{ total, h3 int }
	accs := make(map[string]*acc)
	totalCDN, totalH3 := 0, 0
	for _, e := range entriesOf(ds, browser.ModeH3) {
		cls := locedge.Classify(e.Header)
		if !cls.IsCDN {
			continue
		}
		a := accs[cls.Provider]
		if a == nil {
			a = &acc{}
			accs[cls.Provider] = a
		}
		a.total++
		totalCDN++
		if e.Protocol == "h3" {
			a.h3++
			totalH3++
		}
	}
	out := make([]Fig2Row, 0, len(accs))
	for prov, a := range accs {
		row := Fig2Row{Provider: prov, Requests: a.total}
		if totalCDN > 0 {
			row.RequestShare = float64(a.total) / float64(totalCDN)
		}
		if a.total > 0 {
			row.H3Fraction = float64(a.h3) / float64(a.total)
		}
		if totalH3 > 0 {
			row.ShareOfH3 = float64(a.h3) / float64(totalH3)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Requests > out[j].Requests })
	return out
}

// --- Figure 3 ---

// Fig3 is the CCDF of per-page CDN resource percentage.
type Fig3 struct {
	CCDF             []analysis.Point
	PagesOverHalfCDN float64
}

// ComputeFigure3 measures the per-page CDN share from classified entries.
func ComputeFigure3(ds *Dataset) Fig3 {
	sms := ComputeSiteMetrics(ds)
	shares := make([]float64, 0, len(sms))
	over := 0
	for i := range sms {
		if sms[i].TotalEntries == 0 {
			continue
		}
		share := 100 * float64(sms[i].CDNEntries) / float64(sms[i].TotalEntries)
		shares = append(shares, share)
		if share > 50 {
			over++
		}
	}
	f := Fig3{CCDF: analysis.CCDF(shares)}
	if len(shares) > 0 {
		f.PagesOverHalfCDN = float64(over) / float64(len(shares))
	}
	return f
}

// --- Figure 4 ---

// Fig4 covers both panels: provider presence probability (a) and the
// provider-count histogram (b).
type Fig4 struct {
	Presence   []Fig4Presence
	PagesWithK map[int]int
	AtLeastTwo float64
	totalPages int
}

// Fig4Presence is one provider's appearance probability.
type Fig4Presence struct {
	Provider    string
	Probability float64
}

// ComputeFigure4 measures provider presence across pages.
func ComputeFigure4(ds *Dataset) Fig4 {
	sms := ComputeSiteMetrics(ds)
	counts := make(map[string]int)
	withK := make(map[int]int)
	atLeast2 := 0
	for i := range sms {
		for _, prov := range sms[i].Providers {
			counts[prov]++
		}
		k := len(sms[i].Providers)
		withK[k]++
		if k >= 2 {
			atLeast2++
		}
	}
	f := Fig4{PagesWithK: withK, totalPages: len(sms)}
	for prov, n := range counts {
		f.Presence = append(f.Presence, Fig4Presence{Provider: prov, Probability: float64(n) / float64(len(sms))})
	}
	sort.Slice(f.Presence, func(i, j int) bool {
		if f.Presence[i].Probability != f.Presence[j].Probability {
			return f.Presence[i].Probability > f.Presence[j].Probability
		}
		return f.Presence[i].Provider < f.Presence[j].Provider
	})
	if len(sms) > 0 {
		f.AtLeastTwo = float64(atLeast2) / float64(len(sms))
	}
	return f
}

// --- Figure 5 ---

// Fig5Series is one giant provider's per-page resource-count CCDF.
type Fig5Series struct {
	Provider    string
	CCDF        []analysis.Point
	MedianCount float64
	// FracOver10 is the fraction of pages (using the provider) with
	// more than 10 of its resources — the paper's headline for
	// Cloudflare and Google.
	FracOver10 float64
}

// ComputeFigure5 measures per-provider resource counts per page for the
// four giants.
func ComputeFigure5(ds *Dataset) []Fig5Series {
	// Count provider resources per (site, provider) from classified
	// entries of the composition log.
	counts := make(map[string]map[string]int) // provider → site → count
	log := ds.Logs[browser.ModeH3]
	if log == nil {
		for _, l := range ds.Logs {
			log = l
			break
		}
	}
	seen := make(map[string]bool)
	for i := range log.Pages {
		p := &log.Pages[i]
		if seen[p.Site] {
			continue
		}
		seen[p.Site] = true
		for j := range p.Entries {
			cls := locedge.Classify(p.Entries[j].Header)
			if !cls.IsCDN {
				continue
			}
			if counts[cls.Provider] == nil {
				counts[cls.Provider] = make(map[string]int)
			}
			counts[cls.Provider][p.Site]++
		}
	}
	out := make([]Fig5Series, 0, 4)
	for _, prov := range cdn.GiantProviders() {
		xs := make([]float64, 0, len(counts[prov]))
		over10 := 0
		for _, n := range counts[prov] {
			xs = append(xs, float64(n))
			if n > 10 {
				over10++
			}
		}
		sorted := analysis.NewSorted(xs)
		s := Fig5Series{Provider: prov, CCDF: sorted.CCDF(), MedianCount: sorted.Median()}
		if len(xs) > 0 {
			s.FracOver10 = float64(over10) / float64(len(xs))
		}
		out = append(out, s)
	}
	return out
}

// --- Figure 6 ---

// Fig6aGroup is one quartile group's PLT reduction.
type Fig6aGroup struct {
	Name           string
	Sites          int
	MeanH3CDN      float64
	PLTReductionMs float64
}

// ComputeFigure6a groups sites by quartiles of H3-enabled CDN resource
// count and reports mean PLT reduction per group.
func ComputeFigure6a(ds *Dataset) [4]Fig6aGroup {
	sms := ComputeSiteMetrics(ds)
	groups := groupByH3CDN(sms)
	names := analysis.GroupNames()
	var out [4]Fig6aGroup
	for g := 0; g < 4; g++ {
		var red, key []float64
		for _, idx := range groups[g] {
			red = append(red, msOf(sms[idx].PLTReduction()))
			key = append(key, float64(sms[idx].H3CDNEntries))
		}
		out[g] = Fig6aGroup{
			Name:           names[g],
			Sites:          len(groups[g]),
			MeanH3CDN:      analysis.Mean(key),
			PLTReductionMs: analysis.Mean(red),
		}
	}
	return out
}

// Fig6b carries the reduction CDFs of the three request phases.
type Fig6b struct {
	ConnectCDF []analysis.Point
	WaitCDF    []analysis.Point
	ReceiveCDF []analysis.Point

	MedianConnectMs float64
	MedianWaitMs    float64
	MedianReceiveMs float64
}

// ComputeFigure6b builds per-site phase reductions (connection over
// connection-opening entries; wait/receive over all entries).
func ComputeFigure6b(ds *Dataset) Fig6b {
	sms := ComputeSiteMetrics(ds)
	conn := make([]float64, 0, len(sms))
	wait := make([]float64, 0, len(sms))
	recv := make([]float64, 0, len(sms))
	for i := range sms {
		conn = append(conn, msOf(sms[i].ConnectReduction()))
		wait = append(wait, msOf(sms[i].WaitReduction()))
		recv = append(recv, msOf(sms[i].ReceiveReduction()))
	}
	// One sorted view per phase serves both its CDF and its median.
	sConn, sWait, sRecv := analysis.NewSorted(conn), analysis.NewSorted(wait), analysis.NewSorted(recv)
	return Fig6b{
		ConnectCDF:      sConn.CDF(),
		WaitCDF:         sWait.CDF(),
		ReceiveCDF:      sRecv.CDF(),
		MedianConnectMs: sConn.Median(),
		MedianWaitMs:    sWait.Median(),
		MedianReceiveMs: sRecv.Median(),
	}
}

// --- Figure 7 ---

// Fig7Group is one quartile group's reuse statistics (panels a and b).
type Fig7Group struct {
	Name       string
	H2Reused   float64
	H3Reused   float64
	Difference float64
}

// ComputeFigure7ab reports reused connections per group under both modes.
func ComputeFigure7ab(ds *Dataset) [4]Fig7Group {
	sms := ComputeSiteMetrics(ds)
	groups := groupByH3CDN(sms)
	names := analysis.GroupNames()
	var out [4]Fig7Group
	for g := 0; g < 4; g++ {
		var h2, h3 []float64
		for _, idx := range groups[g] {
			h2 = append(h2, sms[idx].ByMode[browser.ModeH2].ReusedConns)
			h3 = append(h3, sms[idx].ByMode[browser.ModeH3].ReusedConns)
		}
		out[g] = Fig7Group{
			Name:       names[g],
			H2Reused:   analysis.Mean(h2),
			H3Reused:   analysis.Mean(h3),
			Difference: analysis.Mean(h2) - analysis.Mean(h3),
		}
	}
	return out
}

// Fig7cBucket is one reuse-difference quartile's mean PLT reduction.
type Fig7cBucket struct {
	Label          string
	Sites          int
	MeanDifference float64
	PLTReductionMs float64
}

// ComputeFigure7c buckets sites by reuse difference and reports mean PLT
// reduction per bucket (paper: decreasing).
func ComputeFigure7c(ds *Dataset) [4]Fig7cBucket {
	sms := ComputeSiteMetrics(ds)
	keys := make([]float64, len(sms))
	for i := range sms {
		keys[i] = sms[i].ReuseDifference()
	}
	groups := analysis.QuartileGroups(keys)
	var out [4]Fig7cBucket
	labels := [4]string{"Q1 (least)", "Q2", "Q3", "Q4 (most)"}
	for g := 0; g < 4; g++ {
		var diff, red []float64
		for _, idx := range groups[g] {
			diff = append(diff, keys[idx])
			red = append(red, msOf(sms[idx].PLTReduction()))
		}
		out[g] = Fig7cBucket{
			Label:          labels[g],
			Sites:          len(groups[g]),
			MeanDifference: analysis.Mean(diff),
			PLTReductionMs: analysis.Mean(red),
		}
	}
	return out
}

// --- Figure 8 (consecutive visits) ---

// Fig8Point is one provider-count bucket of the consecutive-visit run.
type Fig8Point struct {
	Providers      int
	Sites          int
	PLTReductionMs float64
	ResumedConns   float64 // mean per page, H3 mode
}

// ComputeFigure8 groups sites of a consecutive-mode dataset by the number
// of CDN providers they use.
func ComputeFigure8(ds *Dataset) []Fig8Point {
	sms := ComputeSiteMetrics(ds)
	byK := make(map[int][]int)
	for i := range sms {
		byK[len(sms[i].Providers)] = append(byK[len(sms[i].Providers)], i)
	}
	ks := make([]int, 0, len(byK))
	for k := range byK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]Fig8Point, 0, len(ks))
	for _, k := range ks {
		var red, res []float64
		for _, idx := range byK[k] {
			red = append(red, msOf(sms[idx].PLTReduction()))
			res = append(res, sms[idx].ByMode[browser.ModeH3].ResumedConns)
		}
		out = append(out, Fig8Point{
			Providers:      k,
			Sites:          len(byK[k]),
			PLTReductionMs: analysis.Mean(red),
			ResumedConns:   analysis.Mean(res),
		})
	}
	return out
}

// --- Table III (consecutive visits, k-means case study) ---

// Table3Group is one sharing cluster's aggregates.
type Table3Group struct {
	Sites          int
	AvgProviders   float64
	AvgResumed     float64
	PLTReductionMs float64
}

// Table3 is the high/low sharing comparison.
type Table3 struct {
	High Table3Group // C_H
	Low  Table3Group // C_L
	// Domains is the feature-vector dimensionality (paper: 58).
	Domains int
}

// ComputeTable3 follows §VI-D: binary vectors over CDN domains shared by
// at least two pages, k-means with k=2, groups compared by sharing level.
func ComputeTable3(ds *Dataset) (Table3, error) {
	sms := ComputeSiteMetrics(ds)

	// Collect CDN hostnames per site from the H3-mode log.
	log := ds.Logs[browser.ModeH3]
	siteHosts := make(map[string]map[string]bool)
	hostSites := make(map[string]map[string]bool)
	seen := make(map[string]bool)
	for i := range log.Pages {
		p := &log.Pages[i]
		if seen[p.Site] {
			continue
		}
		seen[p.Site] = true
		for j := range p.Entries {
			e := &p.Entries[j]
			if !locedge.Classify(e.Header).IsCDN {
				continue
			}
			if siteHosts[p.Site] == nil {
				siteHosts[p.Site] = make(map[string]bool)
			}
			siteHosts[p.Site][e.Host] = true
			if hostSites[e.Host] == nil {
				hostSites[e.Host] = make(map[string]bool)
			}
			hostSites[e.Host][p.Site] = true
		}
	}

	// Features: domains used by at least two sites.
	var features []string
	for host, sites := range hostSites {
		if len(sites) >= 2 {
			features = append(features, host)
		}
	}
	sort.Strings(features)
	if len(features) == 0 {
		return Table3{}, fmt.Errorf("core: Table3: no shared CDN domains")
	}

	// Vectors for sites that use at least one shared domain.
	var vectors [][]float64
	var vecSites []*SiteMetrics
	for i := range sms {
		hosts := siteHosts[sms[i].Site]
		if len(hosts) == 0 {
			continue
		}
		vec := make([]float64, len(features))
		any := false
		for f, host := range features {
			if hosts[host] {
				vec[f] = 1
				any = true
			}
		}
		if !any {
			continue // outlier page: no shared domains
		}
		vectors = append(vectors, vec)
		vecSites = append(vecSites, &sms[i])
	}
	if len(vectors) < 2 {
		return Table3{}, fmt.Errorf("core: Table3: only %d clusterable sites", len(vectors))
	}

	res, err := analysis.KMeans(vectors, 2, 100)
	if err != nil {
		return Table3{}, fmt.Errorf("core: Table3: %w", err)
	}

	group := func(cluster int) Table3Group {
		var provs, resumed, red []float64
		n := 0
		for i, c := range res.Assignment {
			if c != cluster {
				continue
			}
			n++
			provs = append(provs, float64(len(vecSites[i].Providers)))
			resumed = append(resumed, vecSites[i].ByMode[browser.ModeH3].ResumedConns)
			red = append(red, msOf(vecSites[i].PLTReduction()))
		}
		return Table3Group{
			Sites:        n,
			AvgProviders: analysis.Mean(provs),
			AvgResumed:   analysis.Mean(resumed),
			// Median: robust to the heavy-tailed loss stalls that
			// dominate cluster means at sub-paper sample sizes.
			PLTReductionMs: analysis.Median(red),
		}
	}
	g0, g1 := group(0), group(1)
	t := Table3{Domains: len(features)}
	if g0.AvgProviders >= g1.AvgProviders {
		t.High, t.Low = g0, g1
	} else {
		t.High, t.Low = g1, g0
	}
	return t, nil
}

// --- Figure 9 (loss sweep) ---

// Fig9Series is one loss rate's reduction-vs-resources relationship.
type Fig9Series struct {
	LossRate  float64
	Points    []analysis.Point // x = CDN resources on page, y = PLT reduction (ms)
	Slope     float64          // ms per CDN resource (quartile-binned fit)
	Intercept float64
	// MedianReductionMs is the robust per-site level — the primary
	// loss-dimension readout (grows strongly with loss).
	MedianReductionMs float64
	// Approx marks series computed from the streamed sketches because no
	// PageLogs were retained. MedianReductionMs is then the difference
	// of the per-mode median PLTs (each within the sketch's relative-
	// error bound) rather than the median of per-site differences —
	// pairing sites requires retained HARs — and Points/Slope/Intercept
	// are empty.
	Approx bool
}

// ComputeFigure9Series extracts per-site (CDN resources, PLT reduction)
// points from one dataset and fits a line robustly: sites are binned into
// resource-count quartiles and the fit runs over per-bin medians, so
// heavy-tailed loss stalls do not swamp the trend. A dataset without
// retained PageLogs (RetainNone) falls back to the sketch estimator (see
// Fig9Series.Approx).
func ComputeFigure9Series(ds *Dataset, lossRate float64) (Fig9Series, error) {
	sms := ComputeSiteMetrics(ds)
	s := Fig9Series{LossRate: lossRate}
	if len(sms) == 0 && ds.Metrics != nil {
		h2 := ds.Metrics.ModeGroup(browser.ModeH2.String())
		h3 := ds.Metrics.ModeGroup(browser.ModeH3.String())
		if h2 == nil || h3 == nil || h2.Pages == 0 || h3.Pages == 0 {
			return s, fmt.Errorf("core: Figure9: no retained pages and no sketch coverage for both modes")
		}
		s.Approx = true
		s.MedianReductionMs = h2.MedianPLTMs() - h3.MedianPLTMs()
		return s, nil
	}
	for i := range sms {
		s.Points = append(s.Points, analysis.Point{
			X: float64(sms[i].CDNEntries),
			Y: msOf(sms[i].PLTReduction()),
		})
	}
	ys0 := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys0[i] = p.Y
	}
	s.MedianReductionMs = analysis.Median(ys0)
	xs, ys := binnedMedians(s.Points, 4)
	a, b, err := analysis.LinearFit(xs, ys)
	if err != nil {
		return s, fmt.Errorf("core: Figure9: %w", err)
	}
	s.Intercept, s.Slope = a, b
	return s, nil
}

// binnedMedians groups points into equal-count bins by X and returns each
// bin's median X and median Y.
func binnedMedians(points []analysis.Point, bins int) (xs, ys []float64) {
	if len(points) == 0 {
		return nil, nil
	}
	sorted := append([]analysis.Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	if bins > len(sorted) {
		bins = len(sorted)
	}
	for b := 0; b < bins; b++ {
		lo := b * len(sorted) / bins
		hi := (b + 1) * len(sorted) / bins
		if hi <= lo {
			continue
		}
		bx := make([]float64, 0, hi-lo)
		by := make([]float64, 0, hi-lo)
		for _, p := range sorted[lo:hi] {
			bx = append(bx, p.X)
			by = append(by, p.Y)
		}
		// bx is already ascending (points are sorted by X), so the
		// sorted view costs one copy, not a re-sort.
		xs = append(xs, analysis.NewSorted(bx).Median())
		ys = append(ys, analysis.NewSorted(by).Median())
	}
	return xs, ys
}
