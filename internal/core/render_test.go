package core

import (
	"strings"
	"testing"

	"h3cdn/internal/analysis"
)

func TestRenderTable1ContainsAllProviders(t *testing.T) {
	out := RenderTable1(Table1())
	for _, p := range []string{"Cloudflare", "Google", "Fastly", "QUIC.Cloud", "Amazon", "Meta"} {
		if p == "Meta" {
			continue // Meta runs a self-operated CDN; not in our registry
		}
		if !strings.Contains(out, p) {
			t.Fatalf("Table I render missing %s:\n%s", p, out)
		}
	}
	if !strings.Contains(out, "2019") || !strings.Contains(out, "2023") {
		t.Fatalf("Table I render missing release years:\n%s", out)
	}
}

func TestRenderTable2Layout(t *testing.T) {
	out := RenderTable2(ComputeTable2(handDataset()))
	for _, want := range []string{"HTTP/2", "HTTP/3", "Others", "All", "total requests: 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure6b(t *testing.T) {
	f := Fig6b{
		ConnectCDF:      []analysis.Point{{X: -1, Y: 0.2}, {X: 10, Y: 1}},
		WaitCDF:         []analysis.Point{{X: -2, Y: 0.6}, {X: 3, Y: 1}},
		ReceiveCDF:      []analysis.Point{{X: 0, Y: 0.5}, {X: 1, Y: 1}},
		MedianConnectMs: 8, MedianWaitMs: -1.5, MedianReceiveMs: 0.1,
	}
	out := RenderFigure6b(f)
	if !strings.Contains(out, "8.00") || !strings.Contains(out, "-1.50") {
		t.Fatalf("Fig 6b render missing medians:\n%s", out)
	}
}

func TestRenderFigure9(t *testing.T) {
	out := RenderFigure9([]Fig9Series{
		{LossRate: 0, Slope: 0.8, Intercept: 10, MedianReductionMs: 40},
		{LossRate: 0.01, Slope: 2.1, Intercept: 50, MedianReductionMs: 160},
	})
	for _, want := range []string{"0.0%", "1.0%", "0.80", "2.10", "40.0", "160.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig 9 render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable3(t *testing.T) {
	out := RenderTable3(Table3{
		High:    Table3Group{Sites: 10, AvgProviders: 4.2, AvgResumed: 100, PLTReductionMs: 110},
		Low:     Table3Group{Sites: 8, AvgProviders: 2.5, AvgResumed: 70, PLTReductionMs: 55},
		Domains: 58,
	})
	for _, want := range []string{"C_H", "C_L", "4.20", "2.50", "110.0", "55.0", "58"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III render missing %q:\n%s", want, out)
		}
	}
}

func TestCurveInterpolationHelpers(t *testing.T) {
	curve := []analysis.Point{{X: 1, Y: 0.3}, {X: 5, Y: 0.9}}
	if got := cdfAt(curve, 3); got != 0.3 {
		t.Fatalf("cdfAt = %v", got)
	}
	if got := ccdfAt(curve, 6); got != 0.9 {
		t.Fatalf("ccdfAt = %v", got)
	}
}
