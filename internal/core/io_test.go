package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h3cdn/internal/browser"
)

func TestDatasetJSONRoundTrip(t *testing.T) {
	ds := smallCampaign(t, nil)
	var buf bytes.Buffer
	if err := ds.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != ds.Seed || got.Consecutive != ds.Consecutive {
		t.Fatalf("metadata: %+v", got)
	}
	if len(got.Corpus.Pages) != len(ds.Corpus.Pages) {
		t.Fatalf("corpus pages %d != %d", len(got.Corpus.Pages), len(ds.Corpus.Pages))
	}
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		a, b := ds.Logs[mode], got.Logs[mode]
		if b == nil || len(a.Pages) != len(b.Pages) {
			t.Fatalf("mode %v: pages differ", mode)
		}
		for i := range a.Pages {
			if a.Pages[i].PLT != b.Pages[i].PLT {
				t.Fatalf("mode %v page %d: PLT %v != %v", mode, i, a.Pages[i].PLT, b.Pages[i].PLT)
			}
			if len(a.Pages[i].Entries) != len(b.Pages[i].Entries) {
				t.Fatalf("mode %v page %d: entry counts differ", mode, i)
			}
		}
	}
	// Analyses over the round-tripped dataset must agree.
	t2a, t2b := ComputeTable2(ds), ComputeTable2(got)
	if t2a.Total != t2b.Total || t2a.CDN["HTTP/3"] != t2b.CDN["HTTP/3"] {
		t.Fatalf("Table2 diverged after round trip: %+v vs %+v", t2a, t2b)
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadDataset(strings.NewReader(`{"logs":{"spdy":{}}}`)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestModeByName(t *testing.T) {
	for _, m := range []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3} {
		got, ok := modeByName(m.String())
		if !ok || got != m {
			t.Fatalf("modeByName(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := modeByName("gopher"); ok {
		t.Fatal("bogus mode resolved")
	}
}

func TestWritePlotData(t *testing.T) {
	ds := smallCampaign(t, nil)
	cons := smallCampaign(t, func(c *CampaignConfig) { c.Consecutive = true })
	fig9 := []Fig9Series{{LossRate: 0.005, Slope: 1.2, Intercept: 3}}
	dir := t.TempDir()
	if err := WritePlotData(dir, ds, cons, fig9); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table2.txt", "fig2.tsv", "fig3_ccdf.tsv", "fig4a.tsv", "fig4b.tsv",
		"fig6a.tsv", "fig6b_connect.tsv", "fig7ab.tsv", "fig7c.tsv",
		"fig8.tsv", "fig9_loss0.5.tsv",
	} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
