package core

import (
	"testing"
	"time"

	"h3cdn/internal/analysis"
	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/webgen"
)

func pointXY(x, y float64) analysis.Point { return analysis.Point{X: x, Y: y} }

func fitHelper(xs, ys []float64) (a, b float64, err error) {
	return analysis.LinearFit(xs, ys)
}

// handDataset builds a tiny synthetic dataset with known values.
func handDataset() *Dataset {
	mkEntry := func(host string, proto string, cdnServer string, connect, wait, recv time.Duration, reused bool) har.Entry {
		h := map[string]string{}
		if cdnServer != "" {
			h["server"] = cdnServer
		}
		return har.Entry{
			Host: host, Protocol: proto, Status: 200, Header: h,
			Connect: connect, Wait: wait, Receive: recv, ReusedConn: reused,
		}
	}
	h2Page := har.PageLog{
		Site: "site-a", Protocol: "h2", Probe: "utah/0",
		PLT: 500 * time.Millisecond,
		Entries: []har.Entry{
			mkEntry("site-a", "h2", "", 80*time.Millisecond, 30*time.Millisecond, 10*time.Millisecond, false),
			mkEntry("x.cdn", "h2", "cloudflare", 60*time.Millisecond, 20*time.Millisecond, 8*time.Millisecond, false),
			mkEntry("x.cdn", "h2", "cloudflare", 0, 22*time.Millisecond, 6*time.Millisecond, true),
		},
	}
	h2Page.Recount()
	h3Page := har.PageLog{
		Site: "site-a", Protocol: "h3", Probe: "utah/0",
		PLT: 400 * time.Millisecond,
		Entries: []har.Entry{
			mkEntry("site-a", "h2", "", 80*time.Millisecond, 30*time.Millisecond, 10*time.Millisecond, false),
			mkEntry("x.cdn", "h3", "cloudflare", 30*time.Millisecond, 24*time.Millisecond, 8*time.Millisecond, false),
			mkEntry("x.cdn", "h3", "cloudflare", 0, 26*time.Millisecond, 6*time.Millisecond, true),
		},
	}
	h3Page.Recount()
	corpus := webgen.Generate(webgen.Config{NumPages: 1, Seed: 1})
	return &Dataset{
		Corpus: corpus,
		Logs: map[browser.Mode]*har.Log{
			browser.ModeH2: {Pages: []har.PageLog{h2Page}},
			browser.ModeH3: {Pages: []har.PageLog{h3Page}},
		},
	}
}

func TestComputeSiteMetricsHandValues(t *testing.T) {
	sms := ComputeSiteMetrics(handDataset())
	if len(sms) != 1 {
		t.Fatalf("%d sites", len(sms))
	}
	m := sms[0]
	if m.Site != "site-a" {
		t.Fatalf("site %q", m.Site)
	}
	if got := m.PLTReduction(); got != 100*time.Millisecond {
		t.Fatalf("PLT reduction = %v, want 100ms", got)
	}
	// H2 creators: (80+60)/2 = 70ms; H3 creators: (80+30)/2 = 55ms.
	if got := m.ConnectReduction(); got != 15*time.Millisecond {
		t.Fatalf("connect reduction = %v, want 15ms", got)
	}
	// H2 waits: (30+20+22)/3 = 24ms; H3: (30+24+26)/3 ≈ 26.67ms.
	if got := m.WaitReduction(); got >= 0 {
		t.Fatalf("wait reduction = %v, want negative (H3 overhead)", got)
	}
	if got := m.ReceiveReduction(); got != 0 {
		t.Fatalf("receive reduction = %v, want 0", got)
	}
	if got := m.ReuseDifference(); got != 0 {
		t.Fatalf("reuse difference = %v, want 0 (one reused each)", got)
	}
	// Composition from the H3 log: 3 entries, 2 CDN, both over h3.
	if m.TotalEntries != 3 || m.CDNEntries != 2 || m.H3CDNEntries != 2 {
		t.Fatalf("composition = %d/%d/%d", m.TotalEntries, m.CDNEntries, m.H3CDNEntries)
	}
	if len(m.Providers) != 1 || m.Providers[0] != "Cloudflare" {
		t.Fatalf("providers = %v", m.Providers)
	}
}

func TestMedianPLTAcrossProbes(t *testing.T) {
	ds := handDataset()
	// Add two more probes for H2 with outlier and normal PLTs.
	base := ds.Logs[browser.ModeH2].Pages[0]
	p2 := base
	p2.Probe = "utah/1"
	p2.PLT = 520 * time.Millisecond
	p3 := base
	p3.Probe = "utah/2"
	p3.PLT = 5 * time.Second // SYN-loss style outlier
	ds.Logs[browser.ModeH2].Pages = append(ds.Logs[browser.ModeH2].Pages, p2, p3)

	sms := ComputeSiteMetrics(ds)
	got := sms[0].ByMode[browser.ModeH2].PLT
	if got != 520*time.Millisecond {
		t.Fatalf("median PLT = %v, want 520ms (outlier suppressed)", got)
	}
}

func TestTable2FromHandDataset(t *testing.T) {
	t2 := ComputeTable2(handDataset())
	if t2.Total != 3 {
		t.Fatalf("total %d", t2.Total)
	}
	if t2.CDN["HTTP/3"].Count != 2 || t2.NonCDN["HTTP/2"].Count != 1 {
		t.Fatalf("cells: %+v / %+v", t2.CDN, t2.NonCDN)
	}
	if t2.All["All"].Pct != 100 {
		t.Fatalf("all pct %v", t2.All["All"].Pct)
	}
}

func TestFigure2FromHandDataset(t *testing.T) {
	rows := ComputeFigure2(handDataset())
	if len(rows) != 1 || rows[0].Provider != "Cloudflare" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].H3Fraction != 1.0 || rows[0].ShareOfH3 != 1.0 {
		t.Fatalf("row = %+v", rows[0])
	}
}

func TestGroupByH3CDNUsesQuartiles(t *testing.T) {
	sms := make([]SiteMetrics, 8)
	for i := range sms {
		sms[i].H3CDNEntries = i * 10
	}
	groups := groupByH3CDN(sms)
	if len(groups[0]) != 2 || len(groups[3]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if sms[groups[3][1]].H3CDNEntries != 70 {
		t.Fatalf("High group missing the max: %v", groups[3])
	}
}

func TestFigure9SeriesFit(t *testing.T) {
	// Construct a dataset-free check via binnedMedians + LinearFit on
	// a synthetic linear relationship.
	pts := make([]SiteMetrics, 0)
	_ = pts
	var series Fig9Series
	series.Points = nil
	for i := 0; i < 40; i++ {
		series.Points = append(series.Points, pointXY(float64(10+i), 5+2*float64(10+i)))
	}
	xs, ys := binnedMedians(series.Points, 4)
	if len(xs) != 4 {
		t.Fatalf("%d bins", len(xs))
	}
	a, b, err := fitHelper(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if b < 1.9 || b > 2.1 || a < 4 || a > 6 {
		t.Fatalf("fit = %.2f + %.2fx, want 5 + 2x", a, b)
	}
}
