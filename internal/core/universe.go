// Package core is the paper's primary contribution rebuilt as code: the
// measurement pipeline. It assembles a simulated Internet (Universe) from
// the corpus and CDN registry, runs the paper's visit protocol from each
// probe (Campaign), extracts the PLT / connection / wait / receive
// metrics, and drives one experiment per table and figure.
package core

import (
	"fmt"
	"strings"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/cdn"
	"h3cdn/internal/har"
	"h3cdn/internal/httpsim"
	"h3cdn/internal/quicsim"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// probeAddr is the probe host's address in every universe.
const probeAddr simnet.Addr = "probe"

// UniverseConfig assembles one probe's view of the simulated Internet.
type UniverseConfig struct {
	// Seed drives path randomness (per probe).
	Seed uint64
	// Corpus supplies pages, hostnames, and H3 support.
	Corpus *webgen.Corpus
	// Vantage scales path delays.
	Vantage vantage.Point
	// LossRate applies i.i.d. loss on client↔server paths (the Traffic
	// Control knob of §VI-E).
	LossRate float64
	// Impair, when non-nil, applies the fault-injection layer (bursty
	// loss, jitter, reordering, outages) to both directions of every
	// client↔server path, on top of LossRate. The struct must be
	// read-only: it is shared across paths and, in campaigns, across
	// worker goroutines; per-path mutable state lives inside simnet.
	Impair *simnet.Impairment
	// AccessDownBps / AccessUpBps are the probe's access link rates.
	// Defaults 200 / 50 Mbit/s.
	AccessDownBps float64
	AccessUpBps   float64
	// H3WaitOverhead is the extra per-request server compute under H3.
	// Default 2ms (see cdn.EdgeConfig).
	H3WaitOverhead time.Duration
	// MissPenalty is the edge-cache origin-fetch penalty. Default 80ms.
	MissPenalty time.Duration
	// MaxEvents bounds one scheduler run. Default 200M.
	MaxEvents int
}

func (c UniverseConfig) withDefaults() UniverseConfig {
	if c.AccessDownBps == 0 {
		c.AccessDownBps = 200e6
	}
	if c.AccessUpBps == 0 {
		c.AccessUpBps = 50e6
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 200_000_000
	}
	if c.Vantage.Name == "" {
		c.Vantage = vantage.Points()[0]
	}
	return c
}

// Universe is one probe's simulated Internet: the probe host, one edge
// per CDN provider, one origin per site, and the resolver tying hostnames
// to servers.
type Universe struct {
	Sched  *simnet.Scheduler
	Net    *simnet.Network
	Client *simnet.Host

	cfg      UniverseConfig
	corpus   *webgen.Corpus
	edges    map[string]*cdn.Edge // by provider name
	servers  []*httpsim.Server
	resolver browser.Resolver
	events   int64 // scheduler events executed across RunVisit calls
	recovery simnet.RecoveryStats
}

type nodeClass struct {
	delay time.Duration
	bw    float64
}

// NewUniverse builds the topology and starts every server.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	cfg = cfg.withDefaults()
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("core: NewUniverse: nil corpus")
	}
	src := seqrand.New(cfg.Seed).Sub("universe", cfg.Vantage.Name)

	// Content catalog: (host, path) → size. Keyed by struct, not by
	// host+path concatenation: the lookup runs once per simulated
	// request, and a struct key hashes both strings without allocating.
	type contentKey struct{ host, path string }
	content := make(map[contentKey]int)
	for i := range cfg.Corpus.Pages {
		p := &cfg.Corpus.Pages[i]
		for j := range p.Resources {
			r := &p.Resources[j]
			content[contentKey{r.Host, r.Path}] = r.Size
		}
	}
	contentFn := func(host, path string) (int, bool) {
		n, ok := content[contentKey{host, path}]
		return n, ok
	}

	// Node classes: per server address, its one-way delay and rate.
	nodes := make(map[simnet.Addr]nodeClass)

	// Path function: probe ↔ server with the server's delay; the
	// probe's access link is shared in each direction.
	u := &Universe{
		cfg:    cfg,
		corpus: cfg.Corpus,
		edges:  make(map[string]*cdn.Edge),
	}
	pf := func(srcA, dst simnet.Addr) simnet.PathProps {
		var props simnet.PathProps
		switch {
		case dst == probeAddr: // download direction
			nc := nodes[srcA]
			props = simnet.PathProps{
				Delay:        nc.delay,
				BandwidthBps: minf(nc.bw, cfg.AccessDownBps),
				LossRate:     cfg.LossRate,
				LinkID:       "access-down",
				Impair:       cfg.Impair,
			}
		case srcA == probeAddr: // upload direction
			nc := nodes[dst]
			props = simnet.PathProps{
				Delay:        nc.delay,
				BandwidthBps: cfg.AccessUpBps,
				LossRate:     cfg.LossRate,
				LinkID:       "access-up",
				Impair:       cfg.Impair,
			}
		}
		return props
	}

	sched := &simnet.Scheduler{MaxEvents: cfg.MaxEvents}
	net := simnet.NewNetwork(sched, pf, src.Sub("net"))
	u.Sched = sched
	u.Net = net
	u.Client = net.AddHost(probeAddr)

	// One edge host per provider.
	edgeAddrByProvider := make(map[string]simnet.Addr)
	preloaded := make(map[string]bool)
	for _, p := range cdn.Registry() {
		addr := simnet.Addr("edge." + slug(p.Name))
		host := net.AddHost(addr)
		nodes[addr] = nodeClass{
			delay: time.Duration(float64(p.EdgeDelay) * cfg.Vantage.DelayFactor),
			bw:    p.EdgeBandwidth,
		}
		edge := cdn.NewEdge(cdn.EdgeConfig{
			Provider:       p,
			Sched:          sched,
			Content:        contentFn,
			H3WaitOverhead: cfg.H3WaitOverhead,
			MissPenalty:    cfg.MissPenalty,
			Rng:            src.Stream("edgewait", p.Name),
		})
		srv, err := httpsim.StartServer(host, httpsim.ServerConfig{
			Handler:      edge.Handler(),
			TLSSessions:  tlssim.NewServerSessionState(),
			QUICSessions: quicsim.NewServerSessions(),
			EnableH3:     true,
			HandshakeCPU: 500 * time.Microsecond,
			// Production QUIC stacks ship large initial windows
			// (Google uses IW32), softening the cold-start cost of
			// Alt-Svc-switched connections, and retransmit lost
			// handshake flights from a cached RTT estimate rather
			// than the RFC's conservative 1s initial PTO.
			QUIC: quicsim.Config{InitCwndPkts: 32, PTOInit: 300 * time.Millisecond},
		})
		if err != nil {
			return nil, fmt.Errorf("core: edge %s: %w", p.Name, err)
		}
		u.edges[p.Name] = edge
		u.servers = append(u.servers, srv)
		edgeAddrByProvider[p.Name] = addr
		preloaded[p.Name] = p.H3Preloaded
	}

	// One origin host per site.
	originDelayRng := src.Stream("origindelay")
	for i := range cfg.Corpus.Pages {
		site := cfg.Corpus.Pages[i].Site
		addr := simnet.Addr("origin." + site)
		host := net.AddHost(addr)
		delay := 15*time.Millisecond + time.Duration(originDelayRng.Int63n(int64(30*time.Millisecond)))
		nodes[addr] = nodeClass{
			delay: time.Duration(float64(delay) * cfg.Vantage.DelayFactor),
			bw:    100e6,
		}
		handler := cdn.NewOriginHandler(cdn.OriginConfig{
			Sched:          sched,
			Content:        contentFn,
			H3WaitOverhead: cfg.H3WaitOverhead,
			Rng:            src.Stream("originwait", site),
		})
		srv, err := httpsim.StartServer(host, httpsim.ServerConfig{
			Handler:      handler,
			TLSSessions:  tlssim.NewServerSessionState(),
			QUICSessions: quicsim.NewServerSessions(),
			EnableH3:     cfg.Corpus.H3Support[site],
			HandshakeCPU: 800 * time.Microsecond,
			QUIC:         quicsim.Config{InitCwndPkts: 32, PTOInit: 300 * time.Millisecond},
		})
		if err != nil {
			return nil, fmt.Errorf("core: origin %s: %w", site, err)
		}
		u.servers = append(u.servers, srv)
	}

	// Resolver: hostname → serving endpoint.
	u.resolver = func(hostname string) (browser.Endpoint, bool) {
		prov, ok := cfg.Corpus.HostProvider[hostname]
		if !ok {
			return browser.Endpoint{}, false
		}
		if prov == "" {
			return browser.Endpoint{
				Addr:       simnet.Addr("origin." + hostname),
				SupportsH3: cfg.Corpus.H3Support[hostname],
				H1Only:     cfg.Corpus.H1Only[hostname],
			}, true
		}
		return browser.Endpoint{
			Addr:        edgeAddrByProvider[prov],
			SupportsH3:  cfg.Corpus.H3Support[hostname],
			H3Preloaded: preloaded[prov],
		}, true
	}
	return u, nil
}

// Resolver returns the hostname resolver for browsers in this universe.
func (u *Universe) Resolver() browser.Resolver { return u.resolver }

// Edge returns the edge state for a provider (nil if unknown).
func (u *Universe) Edge(provider string) *cdn.Edge { return u.edges[provider] }

// Events reports the total scheduler events executed by RunVisit calls
// on this universe — the simulator's unit of work, cheap to aggregate
// into a campaign-level events/sec throughput readout.
func (u *Universe) Events() int64 { return u.events }

// Close shuts down all servers.
func (u *Universe) Close() {
	for _, s := range u.servers {
		s.Close()
	}
}

// RecoveryStats returns a snapshot of the loss-recovery counters
// accumulated by browsers created via NewBrowser (and the transports
// underneath them) in this universe.
func (u *Universe) RecoveryStats() simnet.RecoveryStats { return u.recovery }

// NewBrowser creates a page loader on the probe host. Unless the config
// carries its own Recovery sink, the browser and its transports feed the
// universe's recovery counters (see RecoveryStats).
func (u *Universe) NewBrowser(cfg browser.Config) *browser.Browser {
	cfg.Resolver = u.resolver
	if cfg.Recovery == nil {
		cfg.Recovery = &u.recovery
	}
	return browser.New(u.Client, cfg)
}

// RunVisit drives one page load to completion and returns its log.
func (u *Universe) RunVisit(b *browser.Browser, page *webgen.Page) (*har.PageLog, error) {
	var result *har.PageLog
	b.Visit(page, func(l *har.PageLog) {
		result = l
		b.CloseAll()
	})
	n, err := u.Sched.Run()
	u.events += int64(n)
	if err != nil {
		return nil, fmt.Errorf("core: visit %s: %w", page.Site, err)
	}
	if result == nil {
		return nil, fmt.Errorf("core: visit %s never completed", page.Site)
	}
	return result, nil
}

func minf(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a < b {
		return a
	}
	return b
}

func slug(name string) string {
	out := strings.ToLower(name)
	return strings.ReplaceAll(out, ".", "")
}
