// Package core is the paper's primary contribution rebuilt as code: the
// measurement pipeline. It assembles a simulated Internet (Universe) from
// the corpus and CDN registry, runs the paper's visit protocol from each
// probe (Campaign), extracts the PLT / connection / wait / receive
// metrics, and drives one experiment per table and figure.
package core

import (
	"fmt"
	"strings"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/cdn"
	"h3cdn/internal/har"
	"h3cdn/internal/httpsim"
	"h3cdn/internal/quicsim"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/trace"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// probeAddr is the probe host's address in every universe.
const probeAddr simnet.Addr = "probe"

// UniverseConfig assembles one probe's view of the simulated Internet.
type UniverseConfig struct {
	// Seed drives path randomness (per probe).
	Seed uint64
	// Corpus supplies pages, hostnames, and H3 support. In a sharded
	// campaign this is the shard's page-range view.
	Corpus *webgen.Corpus
	// Topology, when non-nil, is the shared campaign-wide topology
	// (content catalog, provider maps, resolver tables) built once from
	// the full corpus. It must have been built from a corpus sharing
	// this config's hostname maps; nil builds a private one from Corpus.
	Topology *Topology
	// Vantage scales path delays.
	Vantage vantage.Point
	// LossRate applies i.i.d. loss on client↔server paths (the Traffic
	// Control knob of §VI-E).
	LossRate float64
	// Impair, when non-nil, applies the fault-injection layer (bursty
	// loss, jitter, reordering, outages) to both directions of every
	// client↔server path, on top of LossRate. The struct must be
	// read-only: it is shared across paths and, in campaigns, across
	// worker goroutines; per-path mutable state lives inside simnet.
	Impair *simnet.Impairment
	// AccessDownBps / AccessUpBps are the probe's access link rates.
	// Defaults 200 / 50 Mbit/s.
	AccessDownBps float64
	AccessUpBps   float64
	// LinkTrace, when non-nil, replaces the download access link's fixed
	// rate with trace-driven variable capacity (simnet.TraceLink replay).
	// The upload direction keeps AccessUpBps: cellular recordings capture
	// the downlink, and the paper's bottleneck is the last-mile download
	// path. Composes with Impair — capacity first, then the fault dice.
	// The TraceLink must be immutable; it is shared across paths and
	// worker goroutines.
	LinkTrace *simnet.TraceLink
	// H3WaitOverhead is the extra per-request server compute under H3.
	// Default 2ms (see cdn.EdgeConfig).
	H3WaitOverhead time.Duration
	// MissPenalty is the edge-cache origin-fetch penalty. Default 80ms.
	MissPenalty time.Duration
	// EdgeTTL, when positive, gives every edge cache entry a lifetime and
	// turns on single-flight origin-fetch collapsing (traffic campaigns);
	// zero keeps the legacy infinite-TTL edge behavior.
	EdgeTTL time.Duration
	// ClockOffset shifts the edges' notion of absolute time: entry expiry
	// stamps read Sched.Now()+ClockOffset. Traffic campaigns run each
	// checkpoint epoch in a fresh universe and set this to the epoch's
	// campaign-absolute start, so cache dumps carry across universes.
	ClockOffset time.Duration
	// MaxEvents bounds one scheduler run. Default 200M.
	MaxEvents int
	// Trace, when non-nil, records per-visit event traces: RunVisit
	// brackets each measured visit with BeginVisit/EndVisit and every
	// layer underneath (network, transports, TLS, HTTP, browser) emits
	// into it. Warm passes (RunVisitDiscard) are not traced. Nil adds
	// zero overhead anywhere.
	Trace *trace.Tracer
}

func (c UniverseConfig) withDefaults() UniverseConfig {
	if c.AccessDownBps == 0 {
		c.AccessDownBps = 200e6
	}
	if c.AccessUpBps == 0 {
		c.AccessUpBps = 50e6
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 200_000_000
	}
	if c.Vantage.Name == "" {
		c.Vantage = vantage.Points()[0]
	}
	return c
}

// Universe is one probe's simulated Internet: the probe host, the
// resolver tying hostnames to servers, and the servers themselves —
// instantiated lazily, on the first resolver hit for an address, so a
// shard only ever builds the edges and origins its pages contact.
//
// Laziness cannot perturb determinism: every random stream a server
// consumes ("edgewait"/provider, "originwait"/site) is derived by label
// from the universe seed, so its state sequence is independent of
// instantiation order; the only construction-time draws — per-page
// origin delays from the "origindelay" stream — happen eagerly in
// corpus-page order, exactly as they did when construction was eager.
type Universe struct {
	Sched  *simnet.Scheduler
	Net    *simnet.Network
	Client *simnet.Host

	cfg      UniverseConfig
	corpus   *webgen.Corpus
	topo     *Topology
	src      *seqrand.Source
	nodes    map[simnet.Addr]nodeClass
	edges    map[string]*cdn.Edge            // by provider name
	servers  map[simnet.Addr]*httpsim.Server // instantiated so far
	resolver browser.Resolver
	startErr error // first lazy StartServer failure, surfaced by RunVisit
	events   int64 // scheduler events executed across RunVisit calls
	recovery simnet.RecoveryStats

	// pools is the universe-wide allocation arena shared by every
	// endpoint (probe and servers): all of them run on this universe's
	// one scheduler goroutine. RunVisit/RunVisitDiscard rewind it at
	// each visit boundary, so a warm universe replays visits out of a
	// steady allocation footprint.
	pools httpsim.Pools

	// warmLog is the reusable scratch log for RunVisitDiscard.
	warmLog har.PageLog
}

type nodeClass struct {
	delay time.Duration
	bw    float64
}

// NewUniverse builds the probe's network and the per-shard randomness;
// servers are instantiated on first contact (see Universe).
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	cfg = cfg.withDefaults()
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("core: NewUniverse: nil corpus")
	}
	topo := cfg.Topology
	if topo == nil {
		topo = NewTopology(cfg.Corpus)
	}
	src := seqrand.New(cfg.Seed).Sub("universe", cfg.Vantage.Name)

	u := &Universe{
		cfg:     cfg,
		corpus:  cfg.Corpus,
		topo:    topo,
		src:     src,
		nodes:   make(map[simnet.Addr]nodeClass, len(cfg.Corpus.Pages)+len(topo.providers)),
		edges:   make(map[string]*cdn.Edge, len(topo.providers)),
		servers: make(map[simnet.Addr]*httpsim.Server, len(cfg.Corpus.Pages)+len(topo.providers)),
	}

	// Node classes for every address the shard can reach. Edge delays
	// are pure registry + vantage arithmetic; origin delays draw from
	// the "origindelay" stream once per page, in corpus-page order —
	// the same order eager construction drew them, which is what keeps
	// fixed-seed datasets byte-identical under lazy instantiation.
	for name, p := range topo.providers {
		u.nodes[topo.edgeAddr[name]] = nodeClass{
			delay: time.Duration(float64(p.EdgeDelay) * cfg.Vantage.DelayFactor),
			bw:    p.EdgeBandwidth,
		}
	}
	originDelayRng := src.Stream("origindelay")
	for i := range cfg.Corpus.Pages {
		site := cfg.Corpus.Pages[i].Site
		delay := 15*time.Millisecond + time.Duration(originDelayRng.Int63n(int64(30*time.Millisecond)))
		u.nodes[simnet.Addr("origin."+site)] = nodeClass{
			delay: time.Duration(float64(delay) * cfg.Vantage.DelayFactor),
			bw:    100e6,
		}
	}

	// Path function: probe ↔ server with the server's delay; the
	// probe's access link is shared in each direction.
	pf := func(srcA, dst simnet.Addr) simnet.PathProps {
		var props simnet.PathProps
		switch {
		case dst == probeAddr: // download direction
			nc := u.nodes[srcA]
			props = simnet.PathProps{
				Delay:        nc.delay,
				BandwidthBps: minf(nc.bw, cfg.AccessDownBps),
				LossRate:     cfg.LossRate,
				LinkID:       "access-down",
				Impair:       cfg.Impair,
				Trace:        cfg.LinkTrace,
			}
		case srcA == probeAddr: // upload direction
			nc := u.nodes[dst]
			props = simnet.PathProps{
				Delay:        nc.delay,
				BandwidthBps: cfg.AccessUpBps,
				LossRate:     cfg.LossRate,
				LinkID:       "access-up",
				Impair:       cfg.Impair,
			}
		}
		return props
	}

	sched := &simnet.Scheduler{MaxEvents: cfg.MaxEvents}
	net := simnet.NewNetwork(sched, pf, src.Sub("net"))
	net.SetTracer(cfg.Trace)
	u.Sched = sched
	u.Net = net
	u.Client = net.AddHost(probeAddr)

	// Resolver: hostname → serving endpoint, instantiating the backing
	// server on first contact.
	u.resolver = func(hostname string) (browser.Endpoint, bool) {
		ep, ok := topo.Endpoint(hostname)
		if !ok {
			return browser.Endpoint{}, false
		}
		if _, up := u.servers[ep.Addr]; !up {
			if err := u.startServer(ep.Addr, hostname); err != nil {
				if u.startErr == nil {
					u.startErr = err
				}
				return browser.Endpoint{}, false
			}
		}
		return ep, true
	}
	return u, nil
}

// startServer instantiates the server behind addr: a provider edge for
// CDN hostnames, the site's origin otherwise. Instantiation draws no
// randomness — the server's jitter streams are label-derived — so the
// moment it happens cannot perturb the simulation.
func (u *Universe) startServer(addr simnet.Addr, hostname string) error {
	if prov := u.topo.corpus.HostProvider[hostname]; prov != "" {
		return u.startEdge(prov, addr)
	}
	return u.startOrigin(hostname, addr)
}

func (u *Universe) startEdge(provider string, addr simnet.Addr) error {
	p := u.topo.providers[provider]
	host := u.Net.AddHost(addr)
	edge := cdn.NewEdge(cdn.EdgeConfig{
		Provider:       p,
		Sched:          u.Sched,
		Content:        u.topo.ContentSize,
		H3WaitOverhead: u.cfg.H3WaitOverhead,
		MissPenalty:    u.cfg.MissPenalty,
		TTL:            u.cfg.EdgeTTL,
		NowOffset:      u.cfg.ClockOffset,
		Rng:            u.src.Stream("edgewait", p.Name),
	})
	srv, err := httpsim.StartServer(host, httpsim.ServerConfig{
		Handler:      edge.Handler(),
		TLSSessions:  tlssim.NewServerSessionState(),
		QUICSessions: quicsim.NewServerSessions(),
		EnableH3:     true,
		HandshakeCPU: 500 * time.Microsecond,
		// Production QUIC stacks ship large initial windows
		// (Google uses IW32), softening the cold-start cost of
		// Alt-Svc-switched connections, and retransmit lost
		// handshake flights from a cached RTT estimate rather
		// than the RFC's conservative 1s initial PTO.
		QUIC:  quicsim.Config{InitCwndPkts: 32, PTOInit: 300 * time.Millisecond},
		Pools: &u.pools,
		Trace: u.cfg.Trace,
	})
	if err != nil {
		return fmt.Errorf("core: edge %s: %w", p.Name, err)
	}
	u.edges[p.Name] = edge
	u.servers[addr] = srv
	return nil
}

func (u *Universe) startOrigin(site string, addr simnet.Addr) error {
	host := u.Net.AddHost(addr)
	if _, ok := u.nodes[addr]; !ok {
		// A site outside the shard's page range (a cross-site origin
		// reference). No "origindelay" draw was budgeted for it, so it
		// gets the stream's mean deterministically rather than a draw
		// that would shift every later site's delay.
		u.nodes[addr] = nodeClass{
			delay: time.Duration(float64(30*time.Millisecond) * u.cfg.Vantage.DelayFactor),
			bw:    100e6,
		}
	}
	handler := cdn.NewOriginHandler(cdn.OriginConfig{
		Sched:          u.Sched,
		Content:        u.topo.ContentSize,
		H3WaitOverhead: u.cfg.H3WaitOverhead,
		Rng:            u.src.Stream("originwait", site),
	})
	srv, err := httpsim.StartServer(host, httpsim.ServerConfig{
		Handler:      handler,
		TLSSessions:  tlssim.NewServerSessionState(),
		QUICSessions: quicsim.NewServerSessions(),
		EnableH3:     u.topo.corpus.H3Support[site],
		HandshakeCPU: 800 * time.Microsecond,
		QUIC:         quicsim.Config{InitCwndPkts: 32, PTOInit: 300 * time.Millisecond},
		Pools:        &u.pools,
		Trace:        u.cfg.Trace,
	})
	if err != nil {
		return fmt.Errorf("core: origin %s: %w", site, err)
	}
	u.servers[addr] = srv
	return nil
}

// Resolver returns the hostname resolver for browsers in this universe.
func (u *Universe) Resolver() browser.Resolver { return u.resolver }

// Edge returns the edge state for a provider (nil if unknown or not yet
// contacted — edges instantiate on first resolver hit).
func (u *Universe) Edge(provider string) *cdn.Edge { return u.edges[provider] }

// WarmEdge returns the provider's edge, instantiating it if no resolver
// hit has yet — the hook traffic epochs use to restore checkpointed
// cache contents into a fresh universe before any visit runs.
// Instantiation draws no randomness (see startServer), so forcing it
// early cannot perturb the simulation.
func (u *Universe) WarmEdge(provider string) (*cdn.Edge, error) {
	if e := u.edges[provider]; e != nil {
		return e, nil
	}
	addr, ok := u.topo.edgeAddr[provider]
	if !ok {
		return nil, fmt.Errorf("core: WarmEdge: unknown provider %q", provider)
	}
	if err := u.startEdge(provider, addr); err != nil {
		return nil, err
	}
	return u.edges[provider], nil
}

// Events reports the total scheduler events executed by RunVisit calls
// on this universe — the simulator's unit of work, cheap to aggregate
// into a campaign-level events/sec throughput readout.
func (u *Universe) Events() int64 { return u.events }

// Close shuts down all servers.
func (u *Universe) Close() {
	for _, s := range u.servers {
		s.Close()
	}
}

// RecoveryStats returns a snapshot of the loss-recovery counters
// accumulated by browsers created via NewBrowser (and the transports
// underneath them) in this universe.
func (u *Universe) RecoveryStats() simnet.RecoveryStats { return u.recovery }

// NewBrowser creates a page loader on the probe host. Unless the config
// carries its own Recovery sink, the browser and its transports feed the
// universe's recovery counters (see RecoveryStats).
func (u *Universe) NewBrowser(cfg browser.Config) *browser.Browser {
	cfg.Resolver = u.resolver
	if cfg.Recovery == nil {
		cfg.Recovery = &u.recovery
	}
	if cfg.Trace == nil {
		cfg.Trace = u.cfg.Trace
	}
	if cfg.Pools == nil {
		cfg.Pools = &u.pools
	}
	return browser.New(u.Client, cfg)
}

// Pools exposes the universe's allocation arena (for stats and leak
// checks); treat it as owned by the universe's scheduler goroutine.
func (u *Universe) Pools() *httpsim.Pools { return &u.pools }

// RunVisit drives one page load to completion and returns its log. When
// the universe carries a tracer, the visit's events are recorded between
// BeginVisit and EndVisit and flushed to the tracer's sink on success.
func (u *Universe) RunVisit(b *browser.Browser, page *webgen.Page) (*har.PageLog, error) {
	u.cfg.Trace.BeginVisit(page.Site, u.Sched.Now())
	var result *har.PageLog
	b.Visit(page, func(l *har.PageLog) {
		result = l
		b.CloseAll()
	})
	n, err := u.Sched.Run()
	u.events += int64(n)
	if err != nil {
		u.cfg.Trace.Abort()
		return nil, fmt.Errorf("core: visit %s: %w", page.Site, err)
	}
	if u.startErr != nil {
		u.cfg.Trace.Abort()
		return nil, fmt.Errorf("core: visit %s: %w", page.Site, u.startErr)
	}
	if result == nil {
		u.cfg.Trace.Abort()
		return nil, fmt.Errorf("core: visit %s never completed", page.Site)
	}
	u.cfg.Trace.EndVisit(result.PLT)
	// Visit boundary: the scheduler has drained and the browser closed
	// every connection, so no wire copy or scheduled callback can reach
	// pooled state — rewind the arenas for the next visit.
	u.pools.Rewind()
	return result, nil
}

// RunVisitDiscard drives one page load whose log is thrown away (a cache
// warming pass). The entries land in a universe-owned scratch log reused
// across calls, so warm visits allocate no per-visit log state.
func (u *Universe) RunVisitDiscard(b *browser.Browser, page *webgen.Page) error {
	completed := false
	b.VisitInto(page, &u.warmLog, func(l *har.PageLog) {
		completed = true
		b.CloseAll()
	})
	n, err := u.Sched.Run()
	u.events += int64(n)
	if err != nil {
		return fmt.Errorf("core: visit %s: %w", page.Site, err)
	}
	if u.startErr != nil {
		return fmt.Errorf("core: visit %s: %w", page.Site, u.startErr)
	}
	if !completed {
		return fmt.Errorf("core: visit %s never completed", page.Site)
	}
	u.pools.Rewind()
	return nil
}

func minf(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a < b {
		return a
	}
	return b
}

func slug(name string) string {
	out := strings.ToLower(name)
	return strings.ReplaceAll(out, ".", "")
}
