package core

import (
	"testing"

	"h3cdn/internal/har"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// BenchmarkShardSetup measures the per-shard universe construction cost
// at bench scale (64-page corpus, full CDN registry) — the fixed overhead
// every (mode, vantage, probe, page-range) job pays before its first
// visit. The campaign engine amortizes the corpus- and registry-derived
// part of this across shards via the shared Topology.
func BenchmarkShardSetup(b *testing.B) {
	corpus := webgen.Generate(webgen.Config{Seed: 2022, NumPages: 64})
	topo := NewTopology(corpus)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := NewUniverse(UniverseConfig{Seed: 1, Corpus: corpus, Topology: topo})
		if err != nil {
			b.Fatal(err)
		}
		u.Close()
	}
}

// BenchmarkCampaignStitch measures assembling a Dataset from per-shard
// page logs: paper-scale shape (2 modes x 3 vantages x 3 probes x 11
// shards of 32 pages), with realistic per-page entry counts so the
// PageLog copies match campaign-sized stitching.
func BenchmarkCampaignStitch(b *testing.B) {
	cfg := CampaignConfig{
		Seed:             2022,
		Vantages:         vantage.Points(),
		ProbesPerVantage: 3,
		PagesPerShard:    32,
	}.withDefaults()
	corpus := webgen.Generate(webgen.Config{Seed: 2022, NumPages: 325})
	jobs := shardCampaign(cfg, corpus)
	results := make([][]har.PageLog, len(jobs))
	for i, job := range jobs {
		logs := make([]har.PageLog, job.hi-job.lo)
		for j := range logs {
			logs[j] = har.PageLog{
				Site:    corpus.Pages[job.lo+j].Site,
				Entries: make([]har.Entry, 0),
			}
		}
		results[i] = logs
	}
	offsets, perMode := stitchOffsets(jobs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := newStitchDataset(cfg, corpus, perMode)
		for j := range jobs {
			copy(ds.Logs[jobs[j].mode].Pages[offsets[j]:], results[j])
		}
		if len(ds.Logs[cfg.Modes[0]].Pages) != 325*9 {
			b.Fatal("bad stitch")
		}
	}
}
