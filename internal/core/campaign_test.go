package core

import (
	"testing"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// smallCampaign runs a reduced campaign for tests: fewer pages, one
// vantage, one probe.
func smallCampaign(t *testing.T, mutate func(*CampaignConfig)) *Dataset {
	t.Helper()
	cfg := CampaignConfig{
		Seed:             7,
		CorpusConfig:     webgen.Config{NumPages: 12, MeanResources: 40},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCampaignEndToEnd(t *testing.T) {
	ds := smallCampaign(t, nil)
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		log := ds.Logs[mode]
		if log == nil || len(log.Pages) != 12 {
			t.Fatalf("%v: %d pages", mode, len(log.Pages))
		}
		for _, p := range log.Pages {
			if p.PLT <= 0 {
				t.Fatalf("%v %s: PLT %v", mode, p.Site, p.PLT)
			}
			if len(p.Entries) == 0 {
				t.Fatalf("%v %s: no entries", mode, p.Site)
			}
			for _, e := range p.Entries {
				if e.Failed {
					t.Fatalf("%v %s: entry %s failed: %s", mode, p.Site, e.URL, e.Error)
				}
				if e.Status != 200 {
					t.Fatalf("%v %s: entry %s status %d", mode, p.Site, e.URL, e.Status)
				}
				if e.Wait <= 0 {
					t.Fatalf("%v %s: entry %s wait %v", mode, p.Site, e.URL, e.Wait)
				}
			}
		}
	}
}

func TestCampaignH3ModeUsesH3(t *testing.T) {
	ds := smallCampaign(t, nil)
	h3Count, total := 0, 0
	for _, p := range ds.Logs[browser.ModeH3].Pages {
		for _, e := range p.Entries {
			total++
			if e.Protocol == "h3" {
				h3Count++
			}
		}
	}
	if h3Count == 0 {
		t.Fatal("H3 mode produced zero H3 requests")
	}
	// Table II ballpark: roughly a third of requests go H3.
	frac := float64(h3Count) / float64(total)
	if frac < 0.15 || frac > 0.60 {
		t.Fatalf("H3 request fraction = %.2f, want roughly 0.33", frac)
	}
	// H2 mode must contain no H3 entries at all.
	for _, p := range ds.Logs[browser.ModeH2].Pages {
		for _, e := range p.Entries {
			if e.Protocol == "h3" {
				t.Fatal("H2 mode produced an H3 request")
			}
		}
	}
}

func TestCampaignH3CompetitiveOnCleanPath(t *testing.T) {
	// Lossless network: H3 and H2 land within a few percent of each
	// other (Cloudflare's own report: H3 1-4% worse PLT than H2 on
	// clean paths). The H3 advantage under realistic loss is asserted
	// at fixture scale in shapes_test.go.
	ds := smallCampaign(t, func(c *CampaignConfig) { c.LossRate = -1 })
	var h2Sum, h3Sum time.Duration
	h2Pages := ds.Logs[browser.ModeH2].Pages
	h3Pages := ds.Logs[browser.ModeH3].Pages
	for i := range h2Pages {
		h2Sum += h2Pages[i].PLT
	}
	for i := range h3Pages {
		h3Sum += h3Pages[i].PLT
	}
	ratio := float64(h3Sum) / float64(h2Sum)
	if ratio > 1.06 {
		t.Fatalf("clean-path H3/H2 PLT ratio = %.3f, want within ~5%%", ratio)
	}
	if ratio < 0.80 {
		t.Fatalf("clean-path H3/H2 PLT ratio = %.3f, implausibly fast", ratio)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := smallCampaign(t, nil)
	b := smallCampaign(t, nil)
	for _, mode := range []browser.Mode{browser.ModeH2, browser.ModeH3} {
		pa, pb := a.Logs[mode].Pages, b.Logs[mode].Pages
		for i := range pa {
			if pa[i].PLT != pb[i].PLT {
				t.Fatalf("%v page %d: PLT %v vs %v", mode, i, pa[i].PLT, pb[i].PLT)
			}
		}
	}
}

func TestCampaignSequentialMatchesParallel(t *testing.T) {
	a := smallCampaign(t, nil)
	b := smallCampaign(t, func(c *CampaignConfig) { c.Sequential = true })
	pa, pb := a.Logs[browser.ModeH3].Pages, b.Logs[browser.ModeH3].Pages
	for i := range pa {
		if pa[i].PLT != pb[i].PLT {
			t.Fatalf("page %d: parallel %v vs sequential %v", i, pa[i].PLT, pb[i].PLT)
		}
	}
}

func TestCampaignConsecutiveResumesConnections(t *testing.T) {
	standard := smallCampaign(t, nil)
	consecutive := smallCampaign(t, func(c *CampaignConfig) { c.Consecutive = true })

	count := func(ds *Dataset) int {
		n := 0
		for _, p := range ds.Logs[browser.ModeH3].Pages {
			n += p.ResumedConns
		}
		return n
	}
	// Standard protocol clears session caches after every page; only
	// rare intra-page resumption (parallel H1 dials after the first
	// handshake) remains. Consecutive visits must resume far more.
	std, cons := count(standard), count(consecutive)
	if cons == 0 {
		t.Fatal("consecutive protocol resumed no connections")
	}
	if cons <= 3*std {
		t.Fatalf("consecutive resumption (%d) not well above standard (%d)", cons, std)
	}
}

func TestCampaignReuseCounts(t *testing.T) {
	ds := smallCampaign(t, nil)
	reused := func(mode browser.Mode) int {
		n := 0
		for _, p := range ds.Logs[mode].Pages {
			n += p.ReusedConns
		}
		return n
	}
	h2, h3 := reused(browser.ModeH2), reused(browser.ModeH3)
	if h2 == 0 || h3 == 0 {
		t.Fatalf("no connection reuse: h2=%d h3=%d", h2, h3)
	}
	// §VI-C: H2 (coalesced) reuses more connections than the H3 run.
	if h2 <= h3 {
		t.Fatalf("H2 reuse (%d) not above H3 reuse (%d)", h2, h3)
	}
}

func TestUniverseRejectsNilCorpus(t *testing.T) {
	if _, err := NewUniverse(UniverseConfig{}); err == nil {
		t.Fatal("nil corpus accepted")
	}
}
