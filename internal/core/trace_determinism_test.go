package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"h3cdn/internal/simnet"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// goldenTraceSHA256 pins the exact bytes of every qlog trace file a
// trace-scale campaign emits (seed 2022, 12 pages, three vantages, one
// probe each). The hash covers file names and contents in sorted order,
// so it fails if any shard's event sequence — emission order, timestamps,
// serialized fields — drifts, or if sharding stops being byte-identical
// across worker counts.
const goldenTraceSHA256 = "8afc6e1a6af552833365dedc939a50ef611479d5ad2888c6947e8523997c5230"

// hashQlogDir hashes every .qlog file under dir (name + contents, sorted
// by name) into one digest.
func hashQlogDir(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.qlog"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no qlog files written")
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(filepath.Base(name)))
		h.Write([]byte{0})
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestCampaignGoldenTraces runs the pinned trace campaign sequentially
// and at two worker counts, and requires every produced qlog file to be
// byte-identical (and equal to the pinned golden) each time. It also
// checks that every line of every file is valid JSON and that no visit
// overflowed the event ring.
func TestCampaignGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-scale campaign; skipped with -short")
	}
	variants := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"Sequential", func(c *CampaignConfig) { c.Sequential = true }},
		{"Workers1", func(c *CampaignConfig) { c.Workers = 1 }},
		{"Workers4", func(c *CampaignConfig) { c.Workers = 4 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := CampaignConfig{
				Seed:             2022,
				CorpusConfig:     webgen.Config{NumPages: 12},
				Vantages:         vantage.Points(),
				ProbesPerVantage: 1,
				QlogDir:          dir,
				TracePhases:      true,
			}
			v.mut(&cfg)
			ds, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := hashQlogDir(t, dir); got != goldenTraceSHA256 {
				t.Fatalf("trace hash %s, want golden %s", got, goldenTraceSHA256)
			}
			checkQlogWellFormed(t, dir)

			// The phase attributions ride the same trace, so they must
			// partition each visit's PLT exactly, for every mode.
			for mode, log := range ds.Logs {
				phases := ds.Phases[mode]
				if len(phases) != len(log.Pages) {
					t.Fatalf("mode %s: %d phase records for %d pages", mode, len(phases), len(log.Pages))
				}
				for i := range phases {
					if total := phases[i].Total(); total != log.Pages[i].PLT {
						t.Fatalf("mode %s page %d: phase total %v != PLT %v",
							mode, i, total, log.Pages[i].PLT)
					}
				}
			}
		})
	}
}

// checkQlogWellFormed parses every line of every qlog file as JSON and
// asserts no visit dropped events to ring overflow.
func checkQlogWellFormed(t *testing.T, dir string) {
	t.Helper()
	names, _ := filepath.Glob(filepath.Join(dir, "*.qlog"))
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(nil, 1<<20)
		line := 0
		for sc.Scan() {
			line++
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("%s:%d: invalid JSON: %v", filepath.Base(name), line, err)
			}
			if rec["name"] == "sim:visit_start" {
				data := rec["data"].(map[string]any)
				if dropped, _ := data["dropped_events"].(float64); dropped != 0 {
					t.Fatalf("%s:%d: visit dropped %v events (ring overflow)",
						filepath.Base(name), line, dropped)
				}
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPhaseBucketsMatchHARTotals is the cross-layer consistency check:
// on an impaired campaign (bursty loss + jitter), each visit's phase
// buckets — attributed purely from observed trace events — must sum to
// the HAR-reported page load time for both H2 and H3, and the aggregate
// must show every major phase actually receiving time.
func TestPhaseBucketsMatchHARTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("impaired trace campaign; skipped with -short")
	}
	ge := simnet.GilbertElliott(0.01, 4)
	ge.JitterMax = 2 * time.Millisecond
	cfg := CampaignConfig{
		Seed:             2022,
		CorpusConfig:     webgen.Config{NumPages: 16},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		Impairment:       &ge,
		TracePhases:      true,
	}
	ds, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for mode, log := range ds.Logs {
		phases := ds.Phases[mode]
		if len(phases) != len(log.Pages) {
			t.Fatalf("mode %s: %d phase records for %d pages", mode, len(phases), len(log.Pages))
		}
		var agg, sum time.Duration
		for i := range phases {
			total := phases[i].Total()
			plt := log.Pages[i].PLT
			if diff := total - plt; diff < -time.Microsecond || diff > time.Microsecond {
				t.Fatalf("mode %s page %d (%s): phase total %v != PLT %v",
					mode, i, log.Pages[i].Site, total, plt)
			}
			agg += total
			sum += phases[i].Connect + phases[i].Handshake + phases[i].Transfer
		}
		if agg == 0 {
			t.Fatalf("mode %s: zero total attributed time", mode)
		}
		if sum == 0 {
			t.Fatalf("mode %s: connect/handshake/transfer buckets all empty", mode)
		}
		for i := range phases {
			if phases[i].Truncated {
				t.Fatalf("mode %s page %d: Truncated with the default ring — overflow at this scale is a regression", mode, i)
			}
		}
	}
}

// TestPhaseFallbackOnRingOverflow pins the degraded path: with a ring
// far too small for a visit's event volume, AttributeVisit sees only a
// suffix of the trace. The campaign must detect the overflow, swap in
// HAR-derived buckets, and mark the breakdown Truncated — the buckets
// still partition PLT exactly, so downstream aggregation keeps working.
func TestPhaseFallbackOnRingOverflow(t *testing.T) {
	cfg := CampaignConfig{
		Seed:             2022,
		CorpusConfig:     webgen.Config{NumPages: 8},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
		TracePhases:      true,
		TraceRing:        32, // a measured visit emits orders of magnitude more
		Sequential:       true,
	}
	ds, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for mode, log := range ds.Logs {
		phases := ds.Phases[mode]
		if len(phases) != len(log.Pages) {
			t.Fatalf("mode %s: %d phase records for %d pages", mode, len(phases), len(log.Pages))
		}
		var buckets time.Duration
		for i := range phases {
			if !phases[i].Truncated {
				t.Fatalf("mode %s page %d: ring of 32 did not overflow — fallback never engaged", mode, i)
			}
			total := phases[i].Total()
			plt := log.Pages[i].PLT
			if diff := total - plt; diff < -time.Microsecond || diff > time.Microsecond {
				t.Fatalf("mode %s page %d (%s): fallback phase total %v != PLT %v",
					mode, i, log.Pages[i].Site, total, plt)
			}
			buckets += phases[i].Connect + phases[i].Handshake + phases[i].Transfer
		}
		if buckets == 0 {
			t.Fatalf("mode %s: HAR fallback produced empty connect/handshake/transfer buckets", mode)
		}
	}
}
