package core

import "fmt"

// Figure9Losses are the added loss rates of §VI-E's Traffic Control
// sweep: 0%, 0.5%, and 1% on top of the ambient baseline.
func Figure9Losses() []float64 {
	return []float64{0, 0.005, 0.01}
}

// RunFigure9 executes one campaign per added loss rate and fits each
// reduction-vs-resources series. The baseline campaign config supplies
// corpus, vantages, and probes; only the loss rate varies.
func RunFigure9(base CampaignConfig) ([]Fig9Series, error) {
	base = base.withDefaults()
	out := make([]Fig9Series, 0, 3)
	for _, added := range Figure9Losses() {
		cfg := base
		cfg.LossRate = base.LossRate + added
		ds, err := RunCampaign(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: Figure9 loss %.3f: %w", added, err)
		}
		s, err := ComputeFigure9Series(ds, added)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
