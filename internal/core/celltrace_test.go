package core

import (
	"strings"
	"testing"

	"h3cdn/internal/browser"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

func TestRunCellTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign celltrace sweep; skipped with -short")
	}
	base := CampaignConfig{
		Seed:             2026,
		CorpusConfig:     webgen.Config{NumPages: 6},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 1,
	}
	rows, err := RunCellTrace(base, []string{"stepdown", "umts"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.MeanBps <= 0 {
			t.Fatalf("%s: mean capacity %v", r.Profile, r.MeanBps)
		}
		for arm := 0; arm < 2; arm++ {
			for _, mode := range []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3} {
				if r.MedianPLT[arm][mode] <= 0 {
					t.Fatalf("%s arm %d: non-positive median PLT for %s", r.Profile, arm, mode)
				}
			}
		}
		if r.Stats[1].BurstDrops == 0 {
			t.Fatalf("%s: bursty arm recorded no GE drops", r.Profile)
		}
		if r.Stats[0].BurstDrops != 0 {
			t.Fatalf("%s: trace-only arm recorded GE drops", r.Profile)
		}
	}
	out := RenderCellTrace(rows)
	for _, want := range []string{"stepdown", "umts", "trace+1% GE", "H3 gain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
