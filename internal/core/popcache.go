package core

import (
	"fmt"
	"strings"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/traffic"
)

// PopCacheRow is one (population size, protocol) cell of the population
// cache-contention sweep: the emergent edge and session behavior when an
// open-loop population of that size browses through shared TTL edges.
type PopCacheRow struct {
	Users int
	Mode  browser.Mode

	// Visits is the completed visit count; ShedFraction the share of
	// generated visits shed at the in-flight bound (open-loop overload).
	Visits       int64
	ShedFraction float64
	// HitRate is the horizon-wide edge hit rate; FirstEpochHitRate and
	// LastEpochHitRate bracket the cache-warming trajectory.
	HitRate           float64
	FirstEpochHitRate float64
	LastEpochHitRate  float64
	// Resumption is the population's session-resumption fraction
	// (resumed connections / opened connections).
	Resumption float64
	// Stampedes counts misses collapsed into an in-progress origin fetch.
	Stampedes int64
	// Cold/warm PLT split: a visit is warm when its document was an edge
	// cache hit. Medians from the campaign's streamed sketches.
	ColdPages uint64
	WarmPages uint64
	ColdPLT   time.Duration
	WarmPLT   time.Duration
}

// popCacheModes are the protocols the sweep compares.
var popCacheModes = []browser.Mode{browser.ModeH1, browser.ModeH2, browser.ModeH3}

// RunPopCache sweeps population sizes through the open-loop traffic
// engine, one campaign per (size, protocol). tc supplies the traffic
// shape; its ArrivalRate/Users ratio is held fixed (per-user offered
// load), so the arrival rate scales with each swept population size —
// bigger populations press harder on the same per-shard edges. The base
// config supplies corpus, vantages, and probes; HAR retention is forced
// to none (the sweep reads only sketches and traffic reports), so memory
// stays bounded at any population size.
func RunPopCache(base CampaignConfig, tc traffic.Config, sizes []int) ([]PopCacheRow, error) {
	base = base.withDefaults()
	if err := tc.Validate(); err != nil {
		return nil, fmt.Errorf("core: popcache: %w", err)
	}
	tc = tc.WithDefaults()
	if len(sizes) == 0 {
		sizes = []int{tc.Users / 4, tc.Users, tc.Users * 4}
	}
	perUser := tc.ArrivalRate / float64(tc.Users)
	rows := make([]PopCacheRow, 0, len(sizes)*len(popCacheModes))
	for _, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("core: popcache: population size %d", n)
		}
		for _, mode := range popCacheModes {
			cfg := base
			cfg.Modes = []browser.Mode{mode}
			cfg.Retention = har.Retention{Kind: har.RetainNone}
			t := tc
			t.Users = n
			t.ArrivalRate = perUser * float64(n)
			cfg.Traffic = &t
			ds, err := RunCampaign(cfg)
			if err != nil {
				return nil, fmt.Errorf("core: popcache users=%d mode %s: %w", n, mode, err)
			}
			rows = append(rows, popCacheRow(n, mode, ds))
		}
	}
	return rows, nil
}

// popCacheRow reduces one campaign's traffic report and sketches to a
// sweep row.
func popCacheRow(users int, mode browser.Mode, ds *Dataset) PopCacheRow {
	row := PopCacheRow{Users: users, Mode: mode}
	rep := ds.Traffic
	row.Visits = rep.Counters.VisitsCompleted
	if rep.Counters.VisitsGenerated > 0 {
		row.ShedFraction = float64(rep.Counters.VisitsShed) / float64(rep.Counters.VisitsGenerated)
	}
	if total := rep.Counters.CacheHits + rep.Counters.CacheMisses; total > 0 {
		row.HitRate = float64(rep.Counters.CacheHits) / float64(total)
	}
	if len(rep.Epochs) > 0 {
		row.FirstEpochHitRate = rep.Epochs[0].HitRate()
		row.LastEpochHitRate = rep.Epochs[len(rep.Epochs)-1].HitRate()
	}
	row.Resumption = rep.ResumptionFraction()
	row.Stampedes = rep.Counters.Stampedes
	if g := ds.Metrics.ModeGroup(mode.String()); g != nil {
		row.ColdPages, row.WarmPages = g.ColdPages, g.WarmPages
		if g.ColdPages > 0 {
			row.ColdPLT = time.Duration(g.PLTCold.Query(0.5) * float64(time.Millisecond))
		}
		if g.WarmPages > 0 {
			row.WarmPLT = time.Duration(g.PLTWarm.Query(0.5) * float64(time.Millisecond))
		}
	}
	return row
}

// RenderPopCache prints the population sweep: per size and protocol, the
// emergent hit-rate trajectory, resumption fraction, stampede and shed
// pressure, and the cold/warm PLT split.
func RenderPopCache(rows []PopCacheRow) string {
	var sb strings.Builder
	sb.WriteString("Population cache contention: open-loop users on shared TTL edge caches\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "users\tmode\tvisits\thit rate\twarming (first→last epoch)\t0-RTT frac\tstampedes\tshed\tcold PLT (ms)\twarm PLT (ms)\twarm share")
	for _, r := range rows {
		warmShare := 0.0
		if tot := r.ColdPages + r.WarmPages; tot > 0 {
			warmShare = float64(r.WarmPages) / float64(tot)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.1f%%\t%.1f%% → %.1f%%\t%.2f\t%d\t%.2f%%\t%.1f\t%.1f\t%.0f%%\n",
			r.Users, r.Mode, r.Visits,
			100*r.HitRate, 100*r.FirstEpochHitRate, 100*r.LastEpochHitRate,
			r.Resumption, r.Stampedes, 100*r.ShedFraction,
			msOf(r.ColdPLT), msOf(r.WarmPLT), 100*warmShare)
	}
	_ = w.Flush()
	sb.WriteString("larger populations keep the Zipf head resident — hit rates climb, cold-document visits get rarer, and the warm/cold PLT gap is what an edge cache is worth\n")
	return sb.String()
}
