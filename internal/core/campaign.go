package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
	"h3cdn/internal/sketch"
	"h3cdn/internal/trace"
	"h3cdn/internal/traffic"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// CampaignConfig describes one measurement campaign (§III-B): every
// target page visited over H2 and H3 from geographically distributed
// probes, with a cache-warming first visit and a measured second visit.
type CampaignConfig struct {
	// Seed drives corpus generation and per-probe randomness.
	Seed uint64
	// Corpus overrides generation (nil: generated from CorpusConfig).
	Corpus *webgen.Corpus
	// Topology, when non-nil, supplies a prebuilt campaign topology. It
	// must have been built from this campaign's corpus. Topologies are
	// read-only after construction, so one may be shared across
	// concurrently running campaigns; nil builds a private one.
	Topology *Topology
	// CorpusConfig tunes generation when Corpus is nil; its Seed is
	// overridden by Seed.
	CorpusConfig webgen.Config
	// Vantages lists probe sites. Default: the three CloudLab sites.
	Vantages []vantage.Point
	// ProbesPerVantage overrides each site's probe count (0 keeps the
	// site default).
	ProbesPerVantage int
	// Modes lists browsing modes. Default {ModeH2, ModeH3}.
	Modes []browser.Mode
	// LossRate injects path loss on top of which §VI-E's Traffic
	// Control sweep adds more. Zero selects the default baseline of
	// 0.3% (real Internet paths are not lossless — the paper's "0%"
	// condition refers to *added* loss); pass a negative value for a
	// genuinely lossless network.
	LossRate float64
	// Impairment, when non-nil, applies the fault-injection layer
	// (bursty loss, jitter, reordering, outages) to every client↔server
	// path in every shard, on top of LossRate. The struct is shared
	// read-only across worker goroutines; each shard's universe derives
	// its own impairment randomness from the shard seed, so datasets
	// stay byte-identical across worker counts.
	Impairment *simnet.Impairment
	// LinkTrace, when non-nil, drives every shard's download access link
	// from a capacity trace (simnet.TraceLink replay) instead of the
	// fixed access rate — the Mahimahi-style variable-link condition.
	// The TraceLink is immutable and shared read-only across worker
	// goroutines; replay position is a pure function of virtual time, so
	// datasets stay byte-identical across worker counts.
	LinkTrace *simnet.TraceLink
	// FetchRetries bounds the browser's transparent re-fetches after a
	// transport error. 0 keeps the browser default (2); negative
	// disables retries.
	FetchRetries int
	// Consecutive keeps session caches across pages within a probe's
	// measured pass (§VI-D); the standard protocol clears them after
	// every visit.
	Consecutive bool
	// Sequential disables shard-level parallelism (for debugging). The
	// shard decomposition is identical either way, so sequential and
	// parallel runs of the same config produce identical datasets.
	Sequential bool
	// Workers bounds the worker pool draining shards. 0 selects
	// GOMAXPROCS.
	Workers int
	// PagesPerShard is the page-range granularity of one shard (0
	// selects 128). Consecutive mode ignores it: session continuity
	// spans the whole corpus, so each probe is a single shard.
	PagesPerShard int
	// H3WaitOverhead / MissPenalty / MaxEvents pass through to the
	// universes.
	H3WaitOverhead time.Duration
	MissPenalty    time.Duration
	MaxEvents      int
	// QlogDir, when non-empty, enables event tracing and writes one
	// qlog JSONL file per shard (<mode>_<vantage>_p<probe>_s<shard>.qlog)
	// covering every measured visit. The directory must exist. Shard
	// files are byte-identical across worker counts and Sequential.
	QlogDir string
	// TracePhases enables event tracing and folds each measured visit's
	// trace into a phase breakdown, collected in Dataset.Phases.
	TracePhases bool
	// TraceRing overrides the tracer's event-ring capacity per shard
	// (0 keeps the trace package default). When a visit overflows the
	// ring, its sweep-based attribution is replaced by HAR-derived
	// buckets and marked Truncated — mainly a test knob, but also a
	// memory bound for very large traced campaigns.
	TraceRing int
	// Retention selects what happens to finished PageLogs after they
	// are folded into Dataset.Metrics: keep them all (the zero value —
	// the historical exact-analysis behavior), keep a deterministic
	// per-shard sample, or free them immediately so campaign memory is
	// O(shards × sketch size) instead of O(pages). Retention never
	// affects Metrics, which always covers every page.
	Retention har.Retention
	// Traffic, when non-nil, replaces the closed-loop visit protocol
	// (warm pass + measured pass over every page) with the open-loop
	// population engine: a seeded user population generates Poisson
	// session arrivals contending on shared TTL edge caches. Shards then
	// partition users instead of pages — each shard is an independent
	// PoP serving its population slice — and the dataset's PageLogs are
	// whatever visits the population made (under Retention), not one
	// visit per corpus page. Incompatible with Consecutive, TracePhases,
	// QlogDir, and sampled retention (the reservoir state is not part of
	// traffic checkpoints).
	Traffic *traffic.Config
}

// DefaultBaselineLoss is the ambient packet-loss rate of the simulated
// paths (see CampaignConfig.LossRate).
const DefaultBaselineLoss = 0.003

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Vantages == nil {
		c.Vantages = vantage.Points()
	}
	if c.LossRate == 0 {
		c.LossRate = DefaultBaselineLoss
	} else if c.LossRate < 0 {
		c.LossRate = 0
	}
	if c.Modes == nil {
		c.Modes = []browser.Mode{browser.ModeH2, browser.ModeH3}
	}
	return c
}

// Dataset is a campaign's output: per-mode HAR logs over the shared
// corpus.
type Dataset struct {
	Seed        uint64
	Consecutive bool
	Corpus      *webgen.Corpus
	Logs        map[browser.Mode]*har.Log
	// Phases holds per-visit phase attributions (one entry per page in
	// the same order as Logs[mode].Pages) when the campaign ran with
	// TracePhases. Like Stats it never serializes.
	Phases map[browser.Mode][]trace.PhaseBreakdown `json:"-"`
	// Stats carries campaign execution counters. It is not part of the
	// serialized dataset (fixed-seed datasets stay byte-identical across
	// engine changes) and is zero on loaded datasets.
	Stats CampaignStats `json:"-"`
	// Metrics holds the campaign's streamed aggregates: mergeable
	// per-(mode, vantage) sketches covering every measured page,
	// regardless of HAR retention. Shard accumulators are merged in
	// shard-index order, so Metrics is byte-identical across worker
	// counts. Like Stats it never serializes and is nil on loaded
	// datasets.
	Metrics *sketch.MetricAccumulator `json:"-"`
	// Traffic holds the population engine's emergent outputs (arrival
	// counters plus the per-epoch edge-contention series), merged across
	// shards in job order. Nil on closed-loop campaigns and on loaded
	// datasets; like Stats it never serializes.
	Traffic *traffic.Report `json:"-"`
}

// CampaignStats aggregates execution counters across a campaign's
// shards. Like Dataset.Stats it never serializes: recovery behavior is
// observable here without perturbing fixed-seed dataset bytes.
type CampaignStats struct {
	// Events is the total scheduler events executed (warm + measured
	// passes) — the simulator's unit of work.
	Events int64
	// Recovery aggregates client-side loss-recovery activity: RTO/PTO
	// fires, retransmissions, fetch retries, blackout crossings.
	Recovery simnet.RecoveryStats
	// Network-level drop counters, summed over all shard networks.
	LossDrops   int64 // ambient i.i.d. loss
	BurstDrops  int64 // Gilbert–Elliott impairment loss
	OutageDrops int64 // scheduled-outage drops
	QueueDrops  int64 // tail drops at path queue limits
	Reordered   int64 // packets held back by the reordering impairment
	// PagesFolded counts measured pages folded into the streaming
	// metric accumulators; PagesRetained counts the subset whose
	// PageLogs the retention policy kept in the dataset.
	PagesFolded   int64
	PagesRetained int64
	// Traffic carries the population engine's arrival accounting
	// (sessions started; visits generated vs completed vs shed) on
	// open-loop campaigns; zero on closed-loop ones.
	Traffic traffic.Counters
}

// add accumulates one shard's counters.
func (s *CampaignStats) add(o CampaignStats) {
	s.Events += o.Events
	s.Recovery.Add(o.Recovery)
	s.LossDrops += o.LossDrops
	s.BurstDrops += o.BurstDrops
	s.OutageDrops += o.OutageDrops
	s.QueueDrops += o.QueueDrops
	s.Reordered += o.Reordered
	s.PagesFolded += o.PagesFolded
	s.PagesRetained += o.PagesRetained
	s.Traffic.Add(o.Traffic)
}

// defaultPagesPerShard is the page-range granularity of one shard when
// CampaignConfig.PagesPerShard is zero. Corpora at or below this size run
// as a single shard per probe, byte-identical to an unsharded campaign —
// the default is chosen above the test-fixture scale (96 pages) so the
// calibrated statistical shape tests keep their exact seed datasets,
// while paper-scale runs (325 pages) shard.
const defaultPagesPerShard = 128

// shardJob identifies one (mode, vantage, probe, page-range) run. Each
// shard gets its own deterministic universe, so the decomposition — which
// depends only on the corpus and config, never on worker count or
// scheduling — fixes the dataset exactly.
type shardJob struct {
	mode   browser.Mode
	point  vantage.Point
	probe  int
	shard  int // index of this page range within the probe
	lo, hi int // page range [lo, hi) in corpus order
}

// shardSeed derives the universe seed for a shard. Shard 0 reproduces the
// historical per-probe formula, so single-shard campaigns (small corpora,
// Consecutive mode) match pre-sharding datasets exactly.
func shardSeed(cfg CampaignConfig, job shardJob) uint64 {
	return cfg.Seed + uint64(job.probe)*1009 + uint64(job.shard)*7919
}

// shardCampaign decomposes the campaign into shard jobs, in (mode,
// vantage, probe, page-range) order — the stitch order of the dataset.
// Traffic campaigns partition the user population instead of the page
// range: each job's [lo, hi) is a user slice, every shard sees the full
// corpus, and the decomposition stays a pure function of the config —
// which is what keeps open-loop datasets byte-identical across worker
// counts, exactly as it does for pages.
func shardCampaign(cfg CampaignConfig, corpus *webgen.Corpus) []shardJob {
	units := len(corpus.Pages)
	per := cfg.PagesPerShard
	if per <= 0 {
		per = defaultPagesPerShard
	}
	if cfg.Consecutive || per > units {
		per = units
	}
	if cfg.Traffic != nil {
		tc := cfg.Traffic.WithDefaults()
		units = tc.Users
		per = tc.UsersPerShard
		if per > units {
			per = units
		}
	}
	probesTotal := 0
	for _, point := range cfg.Vantages {
		if cfg.ProbesPerVantage > 0 {
			probesTotal += cfg.ProbesPerVantage
		} else {
			probesTotal += point.ProbesPerSite
		}
	}
	shardsPerProbe := (units + per - 1) / per
	jobs := make([]shardJob, 0, len(cfg.Modes)*probesTotal*shardsPerProbe)
	for _, mode := range cfg.Modes {
		for _, point := range cfg.Vantages {
			probes := point.ProbesPerSite
			if cfg.ProbesPerVantage > 0 {
				probes = cfg.ProbesPerVantage
			}
			for p := 0; p < probes; p++ {
				for s, lo := 0, 0; lo < units; s, lo = s+1, lo+per {
					hi := lo + per
					if hi > units {
						hi = units
					}
					jobs = append(jobs, shardJob{
						mode: mode, point: point, probe: p,
						shard: s, lo: lo, hi: hi,
					})
				}
			}
		}
	}
	return jobs
}

// RunCampaign executes the full visit protocol and returns the dataset.
// Shards run on a bounded worker pool (see CampaignConfig.Workers); the
// result is independent of worker count and of Sequential.
func RunCampaign(cfg CampaignConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Retention.Validate(); err != nil {
		return nil, fmt.Errorf("core: RunCampaign: %w", err)
	}
	if cfg.Traffic != nil {
		if err := cfg.Traffic.Validate(); err != nil {
			return nil, fmt.Errorf("core: RunCampaign: %w", err)
		}
		switch {
		case cfg.Consecutive:
			return nil, fmt.Errorf("core: RunCampaign: traffic campaigns are open-loop; Consecutive does not apply")
		case cfg.TracePhases:
			return nil, fmt.Errorf("core: RunCampaign: traffic campaigns do not support TracePhases")
		case cfg.QlogDir != "":
			return nil, fmt.Errorf("core: RunCampaign: traffic campaigns do not support QlogDir")
		case cfg.Retention.Kind == har.RetainSample:
			return nil, fmt.Errorf("core: RunCampaign: traffic campaigns do not support sampled retention (reservoir state is not checkpointable)")
		}
	}
	corpus := cfg.Corpus
	if corpus == nil {
		cc := cfg.CorpusConfig
		cc.Seed = cfg.Seed
		corpus = webgen.Generate(cc)
	}
	if len(corpus.Pages) == 0 {
		return nil, fmt.Errorf("core: RunCampaign: empty corpus")
	}

	// The topology — content catalog, provider tables, resolver maps —
	// depends only on the corpus and registry, so build it once and
	// share it read-only across every shard on every worker.
	topo := cfg.Topology
	if topo == nil {
		topo = NewTopology(corpus)
	}
	jobs := shardCampaign(cfg, corpus)
	offsets, perMode := stitchOffsets(jobs)
	ds := newStitchDataset(cfg, corpus, perMode)
	errs := make([]error, len(jobs))
	accs := make([]*sketch.MetricAccumulator, len(jobs))
	var treps []*traffic.Report
	if cfg.Traffic != nil {
		treps = make([]*traffic.Report, len(jobs))
	}
	// Traffic shards retain a variable number of visit logs (the
	// population decides), so even RetainAll campaigns stitch by append
	// rather than fixed offsets.
	retainAll := cfg.Retention.Kind == har.RetainAll && cfg.Traffic == nil
	// Under sampled or disabled retention a shard contributes an unknown
	// (possibly zero) number of retained PageLogs, so the fixed-offset
	// copy cannot apply; buffer per-shard retained slices and stitch
	// them in job order once every shard has finished.
	var retPages [][]har.PageLog
	var retPhases [][]trace.PhaseBreakdown
	if !retainAll {
		retPages = make([][]har.PageLog, len(jobs))
		if cfg.TracePhases {
			retPhases = make([][]trace.PhaseBreakdown, len(jobs))
		}
	}

	// consume stitches one finished shard into its final dataset position
	// and drops the shard's slices, so the campaign retains the dataset
	// plus at most the in-flight results — O(workers × shard size)
	// transient memory — instead of holding every shard's page-log slice
	// until a stitch pass at the end.
	consume := func(r shardResult) {
		errs[r.job] = r.err
		if r.err != nil {
			return
		}
		accs[r.job] = r.acc
		if treps != nil {
			treps[r.job] = r.traffic
		}
		job := jobs[r.job]
		if retainAll {
			copy(ds.Logs[job.mode].Pages[offsets[r.job]:], r.pages)
			if cfg.TracePhases {
				copy(ds.Phases[job.mode][offsets[r.job]:], r.phases)
			}
		} else {
			retPages[r.job] = r.pages
			if cfg.TracePhases {
				retPhases[r.job] = r.phases
			}
		}
		ds.Stats.add(r.stats)
	}
	run := func(i int) shardResult {
		if cfg.Traffic != nil {
			pages, stats, acc, rep, err := runTrafficShard(cfg, topo, jobs[i])
			return shardResult{job: i, pages: pages, stats: stats, acc: acc, traffic: rep, err: err}
		}
		pages, phases, stats, acc, err := runShard(cfg, topo, jobs[i])
		return shardResult{job: i, pages: pages, phases: phases, stats: stats, acc: acc, err: err}
	}
	if cfg.Sequential {
		for i := range jobs {
			consume(run(i))
		}
	} else {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(jobs) {
			workers = len(jobs)
		}
		// Results stream through a channel bounded at the worker count:
		// a finished shard parks at most one result per worker before the
		// stitcher (this goroutine) copies it into place and frees it.
		jobCh := make(chan int)
		resCh := make(chan shardResult, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobCh {
					resCh <- run(i)
				}
			}()
		}
		go func() {
			for i := range jobs {
				jobCh <- i
			}
			close(jobCh)
		}()
		go func() {
			wg.Wait()
			close(resCh)
		}()
		for r := range resCh {
			consume(r)
		}
	}
	// Report the first failure in job order (not completion order), so a
	// multi-failure campaign surfaces the same error at every worker count.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: probe %s/%d mode %s pages [%d,%d): %w",
				jobs[i].point.Name, jobs[i].probe, jobs[i].mode, jobs[i].lo, jobs[i].hi, err)
		}
	}
	if !retainAll {
		stitchRetained(ds, jobs, retPages, retPhases)
	}
	// Merge shard accumulators in job-index order. Sketch merging is
	// associative and commutative, so any order would yield identical
	// state; the fixed order makes that property incidental rather than
	// load-bearing.
	ds.Metrics = sketch.NewAccumulator(sketch.DefaultAlpha)
	for _, acc := range accs {
		ds.Metrics.Merge(acc)
	}
	if treps != nil {
		ds.Traffic = &traffic.Report{}
		for _, rep := range treps {
			ds.Traffic.Merge(rep)
		}
	}
	return ds, nil
}

// stitchRetained appends each shard's retained PageLogs (and phase
// breakdowns) to the dataset in job order. Shards whose retention kept
// nothing contribute nil slices — RetainNone shards always, RetainSample
// shards possibly — and are skipped rather than assumed to hold pages.
func stitchRetained(ds *Dataset, jobs []shardJob, pages [][]har.PageLog, phases [][]trace.PhaseBreakdown) {
	for i, job := range jobs {
		if len(pages[i]) > 0 {
			ds.Logs[job.mode].Pages = append(ds.Logs[job.mode].Pages, pages[i]...)
		}
		if phases != nil && len(phases[i]) > 0 {
			ds.Phases[job.mode] = append(ds.Phases[job.mode], phases[i]...)
		}
	}
}

// shardResult carries one finished shard's output to the stitcher.
type shardResult struct {
	job     int
	pages   []har.PageLog
	phases  []trace.PhaseBreakdown
	stats   CampaignStats
	acc     *sketch.MetricAccumulator
	traffic *traffic.Report // population shards only
	err     error
}

// stitchOffsets computes each job's destination index within its mode's
// stitched Pages slice, plus per-mode totals. Offsets depend only on the
// deterministic shard decomposition — a successful shard yields exactly
// hi−lo page logs (and, under TracePhases, hi−lo phase breakdowns) — so
// results can be copied to their final position the moment a shard
// completes, in any completion order, and the stitched dataset stays
// byte-identical across worker counts.
func stitchOffsets(jobs []shardJob) ([]int, map[browser.Mode]int) {
	offsets := make([]int, len(jobs))
	perMode := make(map[browser.Mode]int, 4)
	for i, job := range jobs {
		offsets[i] = perMode[job.mode]
		perMode[job.mode] += job.hi - job.lo
	}
	return offsets, perMode
}

// newStitchDataset preallocates the dataset shard results stream into:
// full-length per-mode page (and phase) slices, filled in place by offset
// as shards complete — one allocation per mode regardless of shard count.
// Under sampled or disabled retention the retained page count is unknown
// up front (and the full-length preallocation would itself be the
// O(pages) memory the policy exists to avoid), so slices start nil and
// stitchRetained appends to them.
func newStitchDataset(cfg CampaignConfig, corpus *webgen.Corpus, perMode map[browser.Mode]int) *Dataset {
	ds := &Dataset{
		Seed:        cfg.Seed,
		Consecutive: cfg.Consecutive,
		Corpus:      corpus,
		Logs:        make(map[browser.Mode]*har.Log, len(cfg.Modes)),
	}
	if cfg.TracePhases {
		ds.Phases = make(map[browser.Mode][]trace.PhaseBreakdown, len(cfg.Modes))
	}
	prealloc := cfg.Retention.Kind == har.RetainAll && cfg.Traffic == nil
	for _, mode := range cfg.Modes {
		ds.Logs[mode] = &har.Log{Seed: cfg.Seed}
		if prealloc {
			ds.Logs[mode].Pages = make([]har.PageLog, perMode[mode])
		}
		if cfg.TracePhases {
			ds.Phases[mode] = nil
			if prealloc {
				ds.Phases[mode] = make([]trace.PhaseBreakdown, perMode[mode])
			}
		}
	}
	return ds
}

// runShard executes the visit protocol for one shard: a warm pass caches
// the shard's resources at the edges (and, implicitly, teaches the
// browser each host's H3 support, like Alt-Svc), then the measured pass
// records HAR logs. The shard sees a sub-corpus view — only its page
// range, with the full corpus's hostname maps — while the shared
// campaign topology supplies the content catalog and resolver tables, so
// each shard instantiates only the servers its pages contact.
// It also returns the shard's execution counters (events, recovery
// activity, network drops) and its streaming metric accumulator, into
// which every measured visit is folded the moment it finishes —
// regardless of whether the retention policy keeps its PageLog.
func runShard(cfg CampaignConfig, topo *Topology, job shardJob) ([]har.PageLog, []trace.PhaseBreakdown, CampaignStats, *sketch.MetricAccumulator, error) {
	corpus := topo.Corpus()
	view := corpus
	if job.lo != 0 || job.hi != len(corpus.Pages) {
		view = &webgen.Corpus{
			Pages:        corpus.Pages[job.lo:job.hi],
			H3Support:    corpus.H3Support,
			HostProvider: corpus.HostProvider,
			H1Only:       corpus.H1Only,
		}
	}

	// Tracing: each shard owns a private tracer and qlog buffer (shards
	// run on worker goroutines; nothing here is shared), so shard files
	// and phase lists are independent of worker count.
	var (
		tracer  *trace.Tracer
		qw      *trace.QlogWriter
		qbuf    bytes.Buffer
		qpath   string
		sPhases []trace.PhaseBreakdown
	)
	if cfg.QlogDir != "" || cfg.TracePhases {
		if cfg.QlogDir != "" {
			name := fmt.Sprintf("%s_%s_p%d_s%d.qlog",
				modeSlug(job.mode), slug(job.point.Name), job.probe, job.shard)
			qpath = filepath.Join(cfg.QlogDir, name)
			qw = trace.NewQlogWriter(&qbuf, name)
		}
		tracer = trace.New(cfg.TraceRing, func(v *trace.VisitRecord) {
			if qw != nil {
				qw.WriteVisit(v)
			}
			if cfg.TracePhases {
				sPhases = append(sPhases, trace.AttributeVisit(v))
			}
		})
	}

	u, err := NewUniverse(UniverseConfig{
		Seed:           shardSeed(cfg, job),
		Corpus:         view,
		Topology:       topo,
		Vantage:        job.point,
		LossRate:       cfg.LossRate,
		Impair:         cfg.Impairment,
		LinkTrace:      cfg.LinkTrace,
		H3WaitOverhead: cfg.H3WaitOverhead,
		MissPenalty:    cfg.MissPenalty,
		MaxEvents:      cfg.MaxEvents,
		Trace:          tracer,
	})
	if err != nil {
		return nil, nil, CampaignStats{}, nil, err
	}
	defer u.Close()
	shardStats := func() CampaignStats {
		ns := u.Net.Stats()
		return CampaignStats{
			Events:      u.Events(),
			Recovery:    u.RecoveryStats(),
			LossDrops:   ns.LossDrops,
			BurstDrops:  ns.BurstDrops,
			OutageDrops: ns.OutageDrops,
			QueueDrops:  ns.QueueDrops,
			Reordered:   ns.Reordered,
		}
	}

	// Chrome-realistic resumption: QUIC 0-RTT on, TLS 1.3 early data
	// off — a resumed H2 connection still pays the TCP and TLS round
	// trips (the asymmetry behind §VI-D's consecutive-visit gains).
	b := u.NewBrowser(browser.Config{
		Mode:            job.mode,
		EnableEarlyData: false,
		EnableZeroRTT:   true,
		HandshakeCPU:    300 * time.Microsecond,
		MaxFetchRetries: cfg.FetchRetries,
	})
	probeName := job.point.Name + "/" + strconv.Itoa(job.probe)

	// Warm pass (discarded): fills edge caches, as in §III-B.
	for i := range view.Pages {
		if err := u.RunVisitDiscard(b, &view.Pages[i]); err != nil {
			return nil, nil, shardStats(), nil, fmt.Errorf("warm visit: %w", err)
		}
		b.ClearSessions()
	}

	// Streaming aggregation state: every measured visit folds into the
	// shard accumulator; the retention policy then decides whether its
	// PageLog survives. The sample reservoir draws from a private
	// seqrand stream off the shard seed, so which pages are retained is
	// a pure function of the shard — independent of worker count,
	// completion order, and every other consumer of shard randomness.
	acc := sketch.NewAccumulator(sketch.DefaultAlpha)
	group := acc.Group(sketch.Key{Mode: job.mode.String(), Vantage: job.point.Name})
	var reservoir *sketch.Reservoir[retainedVisit]
	if cfg.Retention.Kind == har.RetainSample {
		seed := seqrand.New(shardSeed(cfg, job)).StreamSeed("retain")
		reservoir = sketch.NewReservoir[retainedVisit](cfg.Retention.Sample, seed)
	}

	// Measured pass.
	var logs []har.PageLog
	if cfg.Retention.Kind == har.RetainAll {
		logs = make([]har.PageLog, 0, len(view.Pages))
	}
	for i := range view.Pages {
		log, err := u.RunVisit(b, &view.Pages[i])
		if err != nil {
			return nil, nil, shardStats(), nil, fmt.Errorf("measured visit: %w", err)
		}
		log.Probe = probeName
		// Ring overflow degrades AttributeVisit to a suffix sweep whose
		// spans may be missing their openings. Fall back to the visit's
		// HAR timings — coarser buckets, but complete — and keep the
		// Truncated mark so consumers can tell the two apart.
		var pb *trace.PhaseBreakdown
		if cfg.TracePhases && len(sPhases) > 0 {
			pb = &sPhases[len(sPhases)-1]
			if pb.Truncated {
				*pb = harPhases(log)
			}
		}
		group.Fold(visitSample(log, pb))
		switch cfg.Retention.Kind {
		case har.RetainAll:
			logs = append(logs, *log)
		case har.RetainSample:
			rv := retainedVisit{page: *log}
			if pb != nil {
				rv.phase = *pb
			}
			reservoir.Offer(rv)
		case har.RetainNone:
			// PageLog is dropped here; the fold above already captured it.
		}
		if !cfg.Consecutive {
			b.ClearSessions()
		}
	}
	folded := int64(len(view.Pages))
	switch cfg.Retention.Kind {
	case har.RetainSample:
		items := reservoir.Items()
		logs = make([]har.PageLog, len(items))
		if cfg.TracePhases {
			sPhases = make([]trace.PhaseBreakdown, len(items))
		}
		for i, it := range items {
			logs[i] = it.page
			if cfg.TracePhases {
				sPhases[i] = it.phase
			}
		}
	case har.RetainNone:
		sPhases = nil
	}

	if qw != nil {
		if err := qw.Err(); err != nil {
			return nil, nil, shardStats(), nil, fmt.Errorf("qlog: %w", err)
		}
		if err := os.WriteFile(qpath, qbuf.Bytes(), 0o644); err != nil {
			return nil, nil, shardStats(), nil, fmt.Errorf("qlog: %w", err)
		}
	}
	stats := shardStats()
	stats.PagesFolded = folded
	stats.PagesRetained = int64(len(logs))
	return logs, sPhases, stats, acc, nil
}

// retainedVisit pairs a retained PageLog with its phase breakdown so a
// sampled shard keeps Pages and Phases aligned.
type retainedVisit struct {
	page  har.PageLog
	phase trace.PhaseBreakdown
}

// modeSlug flattens a browsing-mode name into a filename-safe token
// ("http/1.1" → "http11").
func modeSlug(m browser.Mode) string {
	return strings.NewReplacer("/", "", ".", "").Replace(m.String())
}
