package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/har"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// CampaignConfig describes one measurement campaign (§III-B): every
// target page visited over H2 and H3 from geographically distributed
// probes, with a cache-warming first visit and a measured second visit.
type CampaignConfig struct {
	// Seed drives corpus generation and per-probe randomness.
	Seed uint64
	// Corpus overrides generation (nil: generated from CorpusConfig).
	Corpus *webgen.Corpus
	// CorpusConfig tunes generation when Corpus is nil; its Seed is
	// overridden by Seed.
	CorpusConfig webgen.Config
	// Vantages lists probe sites. Default: the three CloudLab sites.
	Vantages []vantage.Point
	// ProbesPerVantage overrides each site's probe count (0 keeps the
	// site default).
	ProbesPerVantage int
	// Modes lists browsing modes. Default {ModeH2, ModeH3}.
	Modes []browser.Mode
	// LossRate injects path loss on top of which §VI-E's Traffic
	// Control sweep adds more. Zero selects the default baseline of
	// 0.3% (real Internet paths are not lossless — the paper's "0%"
	// condition refers to *added* loss); pass a negative value for a
	// genuinely lossless network.
	LossRate float64
	// Consecutive keeps session caches across pages within a probe's
	// measured pass (§VI-D); the standard protocol clears them after
	// every visit.
	Consecutive bool
	// Sequential disables probe-level parallelism (for debugging).
	Sequential bool
	// H3WaitOverhead / MissPenalty / MaxEvents pass through to the
	// universes.
	H3WaitOverhead time.Duration
	MissPenalty    time.Duration
	MaxEvents      int
}

// DefaultBaselineLoss is the ambient packet-loss rate of the simulated
// paths (see CampaignConfig.LossRate).
const DefaultBaselineLoss = 0.003

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Vantages == nil {
		c.Vantages = vantage.Points()
	}
	if c.LossRate == 0 {
		c.LossRate = DefaultBaselineLoss
	} else if c.LossRate < 0 {
		c.LossRate = 0
	}
	if c.Modes == nil {
		c.Modes = []browser.Mode{browser.ModeH2, browser.ModeH3}
	}
	return c
}

// Dataset is a campaign's output: per-mode HAR logs over the shared
// corpus.
type Dataset struct {
	Seed        uint64
	Consecutive bool
	Corpus      *webgen.Corpus
	Logs        map[browser.Mode]*har.Log
}

// probeJob identifies one (mode, vantage, probe) run.
type probeJob struct {
	mode  browser.Mode
	point vantage.Point
	probe int
}

// RunCampaign executes the full visit protocol and returns the dataset.
func RunCampaign(cfg CampaignConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	corpus := cfg.Corpus
	if corpus == nil {
		cc := cfg.CorpusConfig
		cc.Seed = cfg.Seed
		corpus = webgen.Generate(cc)
	}

	var jobs []probeJob
	for _, mode := range cfg.Modes {
		for _, point := range cfg.Vantages {
			probes := point.ProbesPerSite
			if cfg.ProbesPerVantage > 0 {
				probes = cfg.ProbesPerVantage
			}
			for p := 0; p < probes; p++ {
				jobs = append(jobs, probeJob{mode: mode, point: point, probe: p})
			}
		}
	}

	results := make([][]har.PageLog, len(jobs))
	errs := make([]error, len(jobs))
	run := func(i int, job probeJob) {
		results[i], errs[i] = runProbe(cfg, corpus, job)
	}
	if cfg.Sequential {
		for i, job := range jobs {
			run(i, job)
		}
	} else {
		var wg sync.WaitGroup
		for i, job := range jobs {
			wg.Add(1)
			go func(i int, job probeJob) {
				defer wg.Done()
				run(i, job)
			}(i, job)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: probe %s/%d mode %s: %w",
				jobs[i].point.Name, jobs[i].probe, jobs[i].mode, err)
		}
	}

	ds := &Dataset{
		Seed:        cfg.Seed,
		Consecutive: cfg.Consecutive,
		Corpus:      corpus,
		Logs:        make(map[browser.Mode]*har.Log, len(cfg.Modes)),
	}
	for _, mode := range cfg.Modes {
		ds.Logs[mode] = &har.Log{Seed: cfg.Seed}
	}
	for i, job := range jobs {
		ds.Logs[job.mode].Pages = append(ds.Logs[job.mode].Pages, results[i]...)
	}
	return ds, nil
}

// runProbe executes the visit protocol for one probe and mode: a warm
// pass caches every resource at the edges (and, implicitly, teaches the
// browser each host's H3 support, like Alt-Svc), then the measured pass
// records HAR logs.
func runProbe(cfg CampaignConfig, corpus *webgen.Corpus, job probeJob) ([]har.PageLog, error) {
	u, err := NewUniverse(UniverseConfig{
		Seed:           cfg.Seed + uint64(job.probe)*1009,
		Corpus:         corpus,
		Vantage:        job.point,
		LossRate:       cfg.LossRate,
		H3WaitOverhead: cfg.H3WaitOverhead,
		MissPenalty:    cfg.MissPenalty,
		MaxEvents:      cfg.MaxEvents,
	})
	if err != nil {
		return nil, err
	}

	// Chrome-realistic resumption: QUIC 0-RTT on, TLS 1.3 early data
	// off — a resumed H2 connection still pays the TCP and TLS round
	// trips (the asymmetry behind §VI-D's consecutive-visit gains).
	b := u.NewBrowser(browser.Config{
		Mode:            job.mode,
		EnableEarlyData: false,
		EnableZeroRTT:   true,
		HandshakeCPU:    300 * time.Microsecond,
	})
	probeName := job.point.Name + "/" + strconv.Itoa(job.probe)

	// Warm pass (discarded): fills edge caches, as in §III-B.
	for i := range corpus.Pages {
		if _, err := u.RunVisit(b, &corpus.Pages[i]); err != nil {
			return nil, fmt.Errorf("warm visit: %w", err)
		}
		b.ClearSessions()
	}

	// Measured pass.
	logs := make([]har.PageLog, 0, len(corpus.Pages))
	for i := range corpus.Pages {
		log, err := u.RunVisit(b, &corpus.Pages[i])
		if err != nil {
			return nil, fmt.Errorf("measured visit: %w", err)
		}
		log.Probe = probeName
		logs = append(logs, *log)
		if !cfg.Consecutive {
			b.ClearSessions()
		}
	}
	return logs, nil
}
