package core

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// goldenDatasetSHA256 pins the exact bytes of the bench-scale campaign
// dataset (seed 2022, 64 pages, three vantages, one probe each). Any
// engine change that perturbs event ordering — scheduler internals,
// timer semantics, delivery scheduling — changes this hash. It was
// recorded before the 4-ary heap + per-path queue rewrite and must
// never drift: heap layout is an implementation detail, the (at, seq)
// dispatch order is the contract. Re-pinned once for the HAR 1.2
// Connect/SSL split — a serialization-only change (the new "ssl" field);
// every timing and ordering invariant was verified unchanged.
const goldenDatasetSHA256 = "57ccb9f40974fcf92c3a424944097c9ad7c817d82f02d7aa6376bc56fbb834dc"

// TestCampaignGoldenDataset runs the pinned campaign sequentially and at
// two worker counts, asserting every run is byte-identical to the
// recorded golden hash.
func TestCampaignGoldenDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale campaign (~30s); skipped with -short")
	}
	variants := []struct {
		name string
		mut  func(*CampaignConfig)
	}{
		{"Sequential", func(c *CampaignConfig) { c.Sequential = true }},
		{"Workers1", func(c *CampaignConfig) { c.Workers = 1 }},
		{"Workers4", func(c *CampaignConfig) { c.Workers = 4 }},
	}
	var events int64
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := CampaignConfig{
				Seed:             2022,
				CorpusConfig:     webgen.Config{NumPages: 64},
				Vantages:         vantage.Points(),
				ProbesPerVantage: 1,
			}
			v.mut(&cfg)
			ds, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkHARInvariants(t, ds)
			sum := sha256.Sum256(harJSON(t, ds))
			if got := hex.EncodeToString(sum[:]); got != goldenDatasetSHA256 {
				t.Fatalf("dataset hash %s, want golden %s", got, goldenDatasetSHA256)
			}
			// The event count is part of the deterministic trace too.
			if ds.Stats.Events <= 0 {
				t.Fatalf("Stats.Events = %d, want > 0", ds.Stats.Events)
			}
			if events == 0 {
				events = ds.Stats.Events
			} else if ds.Stats.Events != events {
				t.Fatalf("Stats.Events = %d, want %d (independent of workers)", ds.Stats.Events, events)
			}
		})
	}
}
