package core

import (
	"encoding/json"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// harJSON serializes a dataset's logs for byte-level comparison.
func harJSON(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	b, err := json.Marshal(ds.Logs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardDecomposition pins the shard plan: order, ranges, and the
// seed formula (shard 0 must reproduce the historical per-probe seed so
// single-shard campaigns match pre-sharding datasets).
func TestShardDecomposition(t *testing.T) {
	cfg := CampaignConfig{
		Seed:             99,
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 2,
		Modes:            []browser.Mode{browser.ModeH3},
		PagesPerShard:    5,
	}
	corpus := webgen.Generate(webgen.Config{NumPages: 12, MeanResources: 5, Seed: 99})
	jobs := shardCampaign(cfg, corpus)
	if len(jobs) != 6 { // 2 probes × 3 shards (5+5+2 pages)
		t.Fatalf("%d jobs, want 6", len(jobs))
	}
	wantRanges := [][2]int{{0, 5}, {5, 10}, {10, 12}}
	for i, job := range jobs {
		probe, shard := i/3, i%3
		if job.probe != probe || job.shard != shard {
			t.Fatalf("job %d: probe/shard %d/%d, want %d/%d", i, job.probe, job.shard, probe, shard)
		}
		if job.lo != wantRanges[shard][0] || job.hi != wantRanges[shard][1] {
			t.Fatalf("job %d: range [%d,%d), want %v", i, job.lo, job.hi, wantRanges[shard])
		}
		if shard == 0 {
			legacy := cfg.Seed + uint64(probe)*1009
			if got := shardSeed(cfg, job); got != legacy {
				t.Fatalf("shard 0 seed %d, want legacy %d", got, legacy)
			}
		}
	}

	// Consecutive mode collapses each probe to one full-corpus shard
	// with the legacy seed, preserving pre-sharding datasets exactly.
	cfg.Consecutive = true
	jobs = shardCampaign(cfg, corpus)
	if len(jobs) != 2 {
		t.Fatalf("consecutive: %d jobs, want 2", len(jobs))
	}
	for _, job := range jobs {
		if job.lo != 0 || job.hi != len(corpus.Pages) || job.shard != 0 {
			t.Fatalf("consecutive job not full-corpus shard 0: %+v", job)
		}
	}
}

// TestShardedSequentialMatchesParallel forces a multi-shard decomposition
// and asserts that sequential and parallel execution produce
// byte-identical HAR logs, at several worker counts.
func TestShardedSequentialMatchesParallel(t *testing.T) {
	shardedCfg := func(c *CampaignConfig) { c.PagesPerShard = 4 }
	seq := smallCampaign(t, func(c *CampaignConfig) {
		shardedCfg(c)
		c.Sequential = true
	})
	want := harJSON(t, seq)
	for _, workers := range []int{1, 3} {
		par := smallCampaign(t, func(c *CampaignConfig) {
			shardedCfg(c)
			c.Workers = workers
		})
		if got := harJSON(t, par); string(got) != string(want) {
			t.Fatalf("workers=%d: parallel dataset differs from sequential", workers)
		}
	}
}

// TestShardingPreservesSmallCampaigns asserts that a corpus at or below
// the default shard size yields the same dataset whether or not page
// sharding is requested explicitly — the single-shard path IS the legacy
// path.
func TestShardingPreservesSmallCampaigns(t *testing.T) {
	whole := smallCampaign(t, func(c *CampaignConfig) { c.PagesPerShard = 12 })
	deflt := smallCampaign(t, nil) // 12 pages < defaultPagesPerShard
	if string(harJSON(t, whole)) != string(harJSON(t, deflt)) {
		t.Fatal("explicit full-corpus shard differs from default")
	}
}

// TestConsecutiveIgnoresPagesPerShard asserts that Consecutive mode
// produces the same dataset regardless of the PagesPerShard knob: session
// continuity spans the corpus, so each probe must stay one shard.
func TestConsecutiveIgnoresPagesPerShard(t *testing.T) {
	a := smallCampaign(t, func(c *CampaignConfig) { c.Consecutive = true })
	b := smallCampaign(t, func(c *CampaignConfig) {
		c.Consecutive = true
		c.PagesPerShard = 3
		c.Workers = 2
	})
	if string(harJSON(t, a)) != string(harJSON(t, b)) {
		t.Fatal("consecutive dataset depends on PagesPerShard")
	}
}

// TestCampaignGoroutinesBounded verifies the worker pool actually bounds
// concurrency: with many shards and Workers=2, the process must not grow
// by more than the pool size (plus the sampler itself).
func TestCampaignGoroutinesBounded(t *testing.T) {
	base := runtime.NumGoroutine()

	var peak atomic.Int64
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-done:
				return
			default:
			}
			n := int64(runtime.NumGoroutine())
			if n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	smallCampaign(t, func(c *CampaignConfig) {
		c.PagesPerShard = 2 // 6 shards × 2 modes = 12 jobs
		c.Workers = 2
	})
	close(done)
	<-stopped

	// base + 2 workers + 1 sampler, with slack for runtime helpers.
	limit := int64(base) + 5
	if p := peak.Load(); p > limit {
		t.Fatalf("goroutine peak %d exceeds bound %d (base %d, 2 workers)", p, limit, base)
	}
}
