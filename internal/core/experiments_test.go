package core

import (
	"sync"
	"testing"

	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// Shared fixtures: one standard and one consecutive dataset, built once.
var (
	fixtureOnce sync.Once
	fixtureStd  *Dataset
	fixtureCons *Dataset
	fixtureErr  error
)

func fixtures(t *testing.T) (*Dataset, *Dataset) {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign fixtures are expensive; run without -short")
	}
	fixtureOnce.Do(func() {
		cfg := CampaignConfig{
			Seed:             1234,
			CorpusConfig:     webgen.Config{NumPages: 64, MeanResources: 70},
			Vantages:         vantage.Points()[:1],
			ProbesPerVantage: 5,
		}
		fixtureStd, fixtureErr = RunCampaign(cfg)
		if fixtureErr != nil {
			return
		}
		cfg.Consecutive = true
		fixtureCons, fixtureErr = RunCampaign(cfg)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureStd, fixtureCons
}

func TestExperimentOutputs(t *testing.T) {
	std, cons := fixtures(t)

	t.Log("\n" + RenderTable1(Table1()))
	t.Log("\n" + RenderTable2(ComputeTable2(std)))
	t.Log("\n" + RenderFigure2(ComputeFigure2(std)))
	t.Log("\n" + RenderFigure3(ComputeFigure3(std)))
	t.Log("\n" + RenderFigure4(ComputeFigure4(std)))
	t.Log("\n" + RenderFigure5(ComputeFigure5(std)))
	t.Log("\n" + RenderFigure6a(ComputeFigure6a(std)))
	t.Log("\n" + RenderFigure6b(ComputeFigure6b(std)))
	t.Log("\n" + RenderFigure7(ComputeFigure7ab(std), ComputeFigure7c(std)))
	t.Log("\n" + RenderFigure8(ComputeFigure8(cons)))
	t3, err := ComputeTable3(cons)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTable3(t3))
}

func TestFigure9SlopesOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep is expensive")
	}
	series, err := RunFigure9(CampaignConfig{
		Seed:             1234,
		CorpusConfig:     webgen.Config{NumPages: 96, MeanResources: 70},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFigure9(series))
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	// The robust loss-dimension shape: H3's advantage grows strongly
	// with the loss rate (the paper's slopes 0.80/1.42/2.15 encode the
	// same monotone trend; see EXPERIMENTS.md on the per-resource
	// dimension).
	for i := 1; i < len(series); i++ {
		if series[i].MedianReductionMs <= series[i-1].MedianReductionMs {
			t.Fatalf("median reduction not increasing with loss: %.1f then %.1f",
				series[i-1].MedianReductionMs, series[i].MedianReductionMs)
		}
	}
	if series[2].MedianReductionMs < 60 {
		t.Fatalf("1%% loss median reduction = %.1f ms, want a large H3 win", series[2].MedianReductionMs)
	}
	if series[0].Slope <= 0 {
		t.Fatalf("0%%-added slope %.2f not positive", series[0].Slope)
	}
}
