package core

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"h3cdn/internal/browser"
	"h3cdn/internal/cdn"
	"h3cdn/internal/har"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/sketch"
	"h3cdn/internal/traffic"
	"h3cdn/internal/webgen"
)

// This file is the open-loop half of the campaign engine: where runShard
// walks every corpus page twice (warm + measured), runTrafficShard lets a
// seeded user population decide what gets visited and when. Sessions
// arrive by a Poisson process, browse Zipf-popular pages with think
// times, and contend on shared TTL edge caches — hit rates, resumption
// fractions, stampedes, and the cold/warm PLT split all emerge rather
// than being scripted.
//
// The shard runs in checkpoint epochs. Each epoch is simulated in a
// fresh universe whose randomness derives from (shard seed, epoch), so
// nothing implicit survives an epoch boundary: the only carried state is
// the explicit set {edge cache dumps, per-user Alt-Svc memory, the
// campaign clock, counters, metrics, retained logs}. That is exactly
// what a checkpoint records — which makes a killed-and-resumed run
// byte-identical to an uninterrupted one by construction, because the
// uninterrupted run crosses epochs through the very same dump/restore
// path.

// trafficCheckpointPath names one shard's checkpoint file inside the
// campaign's checkpoint directory.
func trafficCheckpointPath(dir string, job shardJob) string {
	name := fmt.Sprintf("traffic_%s_%s_p%d_s%d.ckpt.json",
		modeSlug(job.mode), slug(job.point.Name), job.probe, job.shard)
	return filepath.Join(dir, name)
}

// trafficEngine drives one epoch's sessions on one universe. Everything
// here runs on the universe's scheduler goroutine (browser callbacks and
// timer events), so plain fields need no synchronization.
type trafficEngine struct {
	u      *Universe
	tc     traffic.Config
	cfg    CampaignConfig
	corpus *webgen.Corpus
	mode   browser.Mode
	probe  string

	clock  time.Duration // campaign-absolute time of scheduler zero
	endAbs time.Duration // epoch window end, campaign-absolute

	inFlight int
	group    *sketch.GroupMetrics
	counters *traffic.Counters
	epoch    *traffic.EpochStat
	userMem  map[int][]string // shard-local user → learned Alt-Svc hosts
	logs     *[]har.PageLog
	retain   bool
}

// startSession begins one user's browsing session: a fresh browser (TLS
// tickets and QUIC tokens live for the session, like a browser restart)
// seeded with the user's durable memory — the Alt-Svc hosts they learned
// in previous sessions, which is what lets a returning user open with H3.
func (en *trafficEngine) startSession(user int, sess *traffic.Session) {
	en.counters.SessionsStarted++
	b := en.u.NewBrowser(browser.Config{
		Mode:            en.mode,
		EnableEarlyData: false,
		EnableZeroRTT:   true,
		HandshakeCPU:    300 * time.Microsecond,
		MaxFetchRetries: en.cfg.FetchRetries,
	})
	b.ImportAltSvc(en.userMem[user])
	en.visit(user, b, sess)
}

// visit runs the session's next page load, then schedules the think gap
// before the one after, until the session plan runs out, the epoch
// window closes, or the in-flight bound sheds the visit.
func (en *trafficEngine) visit(user int, b *browser.Browser, sess *traffic.Session) {
	if en.u.Sched.Now()+en.clock >= en.endAbs {
		// The window closed while this session thought or loaded. The
		// remainder is truncated — not shed, and not generated: the next
		// epoch's arrivals carry the offered load from here.
		en.endSession(user, b)
		return
	}
	en.counters.VisitsGenerated++
	if en.inFlight >= en.tc.MaxInFlight {
		// Open-loop overload: the PoP is saturated, so the visit is shed
		// (and the user gives up) instead of queueing invisibly.
		en.counters.VisitsShed++
		en.endSession(user, b)
		return
	}
	en.inFlight++
	page := &en.corpus.Pages[sess.NextPage()]
	b.Visit(page, func(l *har.PageLog) {
		en.inFlight--
		en.counters.VisitsCompleted++
		en.epoch.Visits++
		l.Probe = en.probe
		en.group.Fold(trafficVisitSample(l))
		if en.retain {
			*en.logs = append(*en.logs, *l)
		}
		sess.VisitsLeft--
		if sess.VisitsLeft <= 0 {
			en.endSession(user, b)
			return
		}
		// Connections are visit-scoped (the campaign convention — see
		// Universe.visit): close them through the think gap, but keep the
		// browser's session caches, so the next visit's dials resume with
		// the tickets and tokens this one banked. That redial-with-ticket
		// is the population's emergent 0-RTT fraction.
		b.CloseAll()
		en.u.Sched.After(sess.Think(), func() { en.visit(user, b, sess) })
	})
}

// endSession banks the user's durable memory and the session's
// connection accounting, then closes the browser's connections.
func (en *trafficEngine) endSession(user int, b *browser.Browser) {
	if hosts := b.ExportAltSvc(); len(hosts) > 0 {
		en.userMem[user] = hosts
	}
	st := b.Stats()
	en.counters.ConnsOpened += st.ConnsOpened
	en.counters.ResumedConns += st.ResumedConns
	b.CloseAll()
}

// runTrafficShard executes one population shard: the user slice
// [job.lo, job.hi) browsing the full corpus against this shard's own
// edges (an independent PoP), for the configured horizon, in checkpoint
// epochs. Returns the retained visit logs, the shard's execution
// counters, its metric accumulator, and the traffic report.
func runTrafficShard(cfg CampaignConfig, topo *Topology, job shardJob) ([]har.PageLog, CampaignStats, *sketch.MetricAccumulator, *traffic.Report, error) {
	tc := cfg.Traffic.WithDefaults()
	corpus := topo.Corpus()
	seed := shardSeed(cfg, job)
	shardUsers := job.hi - job.lo
	// The shard offers its population-proportional slice of the load.
	base := tc.ArrivalRate * float64(shardUsers) / float64(tc.Users)
	retain := cfg.Retention.Kind == har.RetainAll

	var (
		startEpoch int
		clock      time.Duration
		userMem    = make(map[int][]string)
		edgeDumps  map[string][]cdn.CacheEntry
		rep        = &traffic.Report{}
		acc        = sketch.NewAccumulator(sketch.DefaultAlpha)
		logs       []har.PageLog
		stats      CampaignStats
		ckptPath   string
	)
	if tc.CheckpointDir != "" {
		ckptPath = trafficCheckpointPath(tc.CheckpointDir, job)
		cp, err := traffic.Load(ckptPath)
		if err != nil {
			return nil, stats, nil, nil, err
		}
		if cp != nil {
			if cp.Seed != seed {
				return nil, stats, nil, nil, fmt.Errorf("core: checkpoint %s was written under seed %d, campaign shard seed is %d", ckptPath, cp.Seed, seed)
			}
			startEpoch = cp.Epoch
			clock = cp.Clock
			for _, um := range cp.Users {
				userMem[um.User-job.lo] = um.AltSvc
			}
			edgeDumps = make(map[string][]cdn.CacheEntry, len(cp.Edges))
			for _, ec := range cp.Edges {
				edgeDumps[ec.Provider] = ec.Entries
			}
			*rep = cp.Report
			if cp.Metrics != nil {
				acc = cp.Metrics
			}
			logs = cp.Logs
			if len(cp.Stats) > 0 {
				if err := json.Unmarshal(cp.Stats, &stats); err != nil {
					return nil, stats, nil, nil, fmt.Errorf("core: checkpoint %s stats: %w", ckptPath, err)
				}
			}
		}
	}

	group := acc.Group(sketch.Key{Mode: job.mode.String(), Vantage: job.point.Name})
	probeName := job.point.Name + "/" + strconv.Itoa(job.probe)
	epochs := tc.Epochs()
	ran := 0
	for e := startEpoch; e < epochs; e++ {
		start := time.Duration(e) * tc.EpochInterval
		end := start + tc.EpochInterval
		if end > tc.Duration {
			end = tc.Duration
		}
		if clock < start {
			clock = start
		}
		// The epoch's universe seed is a pure function of (shard, epoch),
		// so replaying epoch e — after a resume or not — replays its
		// randomness exactly.
		u, err := NewUniverse(UniverseConfig{
			Seed:           seqrand.New(seed).StreamSeed("epoch", strconv.Itoa(e)),
			Corpus:         corpus,
			Topology:       topo,
			Vantage:        job.point,
			LossRate:       cfg.LossRate,
			Impair:         cfg.Impairment,
			LinkTrace:      cfg.LinkTrace,
			H3WaitOverhead: cfg.H3WaitOverhead,
			MissPenalty:    cfg.MissPenalty,
			MaxEvents:      cfg.MaxEvents,
			EdgeTTL:        tc.CacheTTL,
			ClockOffset:    clock,
		})
		if err != nil {
			return nil, stats, nil, nil, err
		}
		// Restore carried cache contents before any visit runs, in sorted
		// provider order so map iteration cannot leak into the replay.
		provs := make([]string, 0, len(edgeDumps))
		for p := range edgeDumps {
			provs = append(provs, p)
		}
		sort.Strings(provs)
		for _, p := range provs {
			edge, err := u.WarmEdge(p)
			if err != nil {
				u.Close()
				return nil, stats, nil, nil, err
			}
			edge.RestoreCache(edgeDumps[p])
		}

		es := &traffic.EpochStat{Epoch: e}
		en := &trafficEngine{
			u: u, tc: tc, cfg: cfg, corpus: corpus,
			mode: job.mode, probe: probeName,
			clock: clock, endAbs: end,
			group: group, counters: &rep.Counters, epoch: es,
			userMem: userMem, logs: &logs, retain: retain,
		}

		// Epoch workload: arrivals and session plans are label-derived
		// from (seed, epoch, arrival index) — independent of everything
		// the simulation does with them.
		src := seqrand.New(seed).Sub("traffic")
		for i, a := range traffic.Arrivals(src, e, base, shardUsers, tc, start, end) {
			user := a.User
			sess := traffic.NewSession(
				src.Stream("session", strconv.Itoa(e), seqrand.Label("a", i)),
				len(corpus.Pages), tc)
			at := a.At - clock
			if at < 0 {
				// A long previous epoch overran this arrival's start; it
				// fires immediately rather than rewinding virtual time.
				at = 0
			}
			u.Sched.After(at, func() { en.startSession(user, sess) })
		}
		n, err := u.Sched.Run()
		stats.Events += int64(n)
		if err == nil && u.startErr != nil {
			err = u.startErr
		}
		if err == nil && en.inFlight != 0 {
			err = fmt.Errorf("%d visits never completed", en.inFlight)
		}
		if err != nil {
			u.Close()
			return nil, stats, nil, nil, fmt.Errorf("traffic epoch %d: %w", e, err)
		}

		// Harvest the epoch's counters. Edge map iteration order is
		// arbitrary but the sums are commutative integers.
		stats.Recovery.Add(u.RecoveryStats())
		ns := u.Net.Stats()
		stats.LossDrops += ns.LossDrops
		stats.BurstDrops += ns.BurstDrops
		stats.OutageDrops += ns.OutageDrops
		stats.QueueDrops += ns.QueueDrops
		stats.Reordered += ns.Reordered
		stats.PagesFolded += es.Visits
		for _, edge := range u.edges {
			es.CacheHits += edge.CacheHits()
			es.CacheMisses += edge.CacheMisses()
			es.CacheExpired += edge.CacheExpired()
			es.Stampedes += edge.Stampedes()
		}
		rep.Counters.CacheHits += es.CacheHits
		rep.Counters.CacheMisses += es.CacheMisses
		rep.Counters.CacheExpired += es.CacheExpired
		rep.Counters.Stampedes += es.Stampedes
		rep.Epochs = append(rep.Epochs, *es)

		// Advance the campaign clock to the window end — never to the
		// drain time. Sessions overrunning the window finish in universe
		// time (their cache writes keep those later absolute stamps), but
		// the next window still opens on schedule: jumping the clock to
		// the drain instant would serialize the whole shard behind its
		// single slowest straggler visit, punching arrival-less holes
		// into the epoch series whenever one page load hits the latency
		// tail.
		clock = end

		// Dump caches for the next epoch (and the checkpoint). Expired
		// entries are carried as-is: the next epoch's edge discovers the
		// lapse on touch, exactly as a live cache would.
		names := make([]string, 0, len(u.edges))
		for nm := range u.edges {
			names = append(names, nm)
		}
		sort.Strings(names)
		edgeDumps = make(map[string][]cdn.CacheEntry, len(names))
		for _, nm := range names {
			if entries := u.edges[nm].DumpCache(); len(entries) > 0 {
				edgeDumps[nm] = entries
			}
		}
		u.Close()

		if ckptPath != "" {
			users := make([]traffic.UserMemory, 0, len(userMem))
			for uidx, hosts := range userMem {
				users = append(users, traffic.UserMemory{User: job.lo + uidx, AltSvc: hosts})
			}
			sort.Slice(users, func(i, j int) bool { return users[i].User < users[j].User })
			edges := make([]traffic.EdgeCache, 0, len(edgeDumps))
			for _, nm := range names {
				if entries, ok := edgeDumps[nm]; ok {
					edges = append(edges, traffic.EdgeCache{Provider: nm, Entries: entries})
				}
			}
			statsBlob, err := json.Marshal(stats)
			if err != nil {
				return nil, stats, nil, nil, fmt.Errorf("traffic checkpoint stats: %w", err)
			}
			cp := &traffic.Checkpoint{
				Seed: seed, Epoch: e + 1, Clock: clock,
				Users: users, Edges: edges,
				Report: *rep, Metrics: acc, Logs: logs, Stats: statsBlob,
			}
			if err := traffic.Save(ckptPath, cp); err != nil {
				return nil, stats, nil, nil, err
			}
		}
		ran++
		if tc.HaltAfterEpochs > 0 && ran >= tc.HaltAfterEpochs && e+1 < epochs {
			// Deliberate mid-campaign halt (resume-testing kill switch):
			// the checkpoint just written is the hand-off point.
			break
		}
	}
	stats.Traffic = rep.Counters
	stats.PagesRetained = int64(len(logs))
	return logs, stats, acc, rep, nil
}
