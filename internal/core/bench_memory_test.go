package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/har"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// BenchmarkCampaignMemory measures the peak-heap proxy of a RetainNone
// campaign at two corpus scales, proving campaign memory is bounded by
// shards × sketch size rather than pages: the streamed aggregates absorb
// every visit and PageLogs are freed immediately, so peak heap should
// stay nearly flat as pages grow (the residual growth is the corpus and
// topology, which are O(pages) but small). `make bench-memory` runs this
// through benchgate's max_rss_growth gate, which caps the large-run /
// small-run peak ratio; BENCH_scaling.json records the numbers.
//
// Scales default to smoke size (96 and 768 pages, an 8× spread); set
// H3CDN_MEMORY_PAGES="1000,10000" to reproduce the recorded runs, and
// H3CDN_MEMORY_RETENTION=all to measure the unbounded before-column of
// the README table (the gate only ever runs the default, none).
func BenchmarkCampaignMemory(b *testing.B) {
	retention := har.Retention{Kind: har.RetainNone}
	if s := os.Getenv("H3CDN_MEMORY_RETENTION"); s != "" {
		var err error
		if retention, err = har.ParseRetention(s); err != nil {
			b.Fatalf("H3CDN_MEMORY_RETENTION: %v", err)
		}
	}
	scales := []int{96, 768}
	if s := os.Getenv("H3CDN_MEMORY_PAGES"); s != "" {
		scales = scales[:0]
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				b.Fatalf("H3CDN_MEMORY_PAGES=%q: want comma-separated positive integers", s)
			}
			scales = append(scales, n)
		}
	}
	for _, pages := range scales {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			corpus := webgen.Generate(webgen.Config{Seed: 2022, NumPages: pages})
			// Settle the previous scale's garbage so the sampler sees
			// this run's high-water mark, not a leftover heap.
			runtime.GC()
			sampler := startPeakSampler()
			var visits int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				ds, err := RunCampaign(CampaignConfig{
					Seed:             2022,
					Corpus:           corpus,
					Vantages:         vantage.Points()[:1],
					ProbesPerVantage: 1,
					Workers:          2,
					Retention:        retention,
				})
				if err != nil {
					b.Fatal(err)
				}
				if retention.Kind == har.RetainNone && ds.Stats.PagesRetained != 0 {
					b.Fatalf("RetainNone retained %d pages", ds.Stats.PagesRetained)
				}
				visits += ds.Stats.PagesFolded
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(visits)/elapsed.Seconds(), "pages/sec")
			b.ReportMetric(sampler.peakMB(), "peak-RSS-MB")
		})
	}
}
