package adaptive

import (
	"math/rand"
	"testing"
	"time"
)

func newTestSelector() *Selector {
	return NewSelector(Config{Rng: rand.New(rand.NewSource(7))}) //nolint:gosec
}

func feed(s *Selector, host string, p Protocol, ms float64, n int) {
	for i := 0; i < n; i++ {
		s.Record(host, p, time.Duration(ms)*time.Millisecond)
	}
}

func TestWarmupAlternates(t *testing.T) {
	s := newTestSelector()
	got := map[Protocol]int{}
	for i := 0; i < 4; i++ {
		p := s.Choose("a", true)
		got[p]++
		s.Record("a", p, 10*time.Millisecond)
	}
	if got[H2] != 2 || got[H3] != 2 {
		t.Fatalf("warm-up split = %v, want 2/2", got)
	}
}

func TestConvergesToFasterArm(t *testing.T) {
	s := newTestSelector()
	feed(s, "a", H2, 40, 5)
	feed(s, "a", H3, 90, 5)
	h2Wins := 0
	const n = 200
	for i := 0; i < n; i++ {
		if s.Choose("a", true) == H2 {
			h2Wins++
		}
	}
	// Exploitation picks H2; only epsilon exploration deviates.
	if h2Wins < n*8/10 {
		t.Fatalf("picked slower arm too often: H2 %d/%d", h2Wins, n)
	}

	// Flip the condition: H3 becomes much faster; EWMA must adapt.
	feed(s, "a", H3, 5, 10)
	feed(s, "a", H2, 80, 10)
	h3Wins := 0
	for i := 0; i < n; i++ {
		if s.Choose("a", true) == H3 {
			h3Wins++
		}
	}
	if h3Wins < n*8/10 {
		t.Fatalf("did not adapt to H3 becoming faster: H3 %d/%d", h3Wins, n)
	}
}

func TestH3UnavailableForcesH2(t *testing.T) {
	s := newTestSelector()
	feed(s, "a", H3, 1, 10) // even with a great H3 history...
	for i := 0; i < 10; i++ {
		if s.Choose("a", false) != H2 {
			t.Fatal("chose H3 despite unavailability")
		}
	}
}

func TestPerHostIndependence(t *testing.T) {
	s := newTestSelector()
	feed(s, "fast-h3", H3, 10, 5)
	feed(s, "fast-h3", H2, 90, 5)
	feed(s, "fast-h2", H3, 90, 5)
	feed(s, "fast-h2", H2, 10, 5)
	p1, _, _, ok1 := s.Preference("fast-h3")
	p2, _, _, ok2 := s.Preference("fast-h2")
	if !ok1 || !ok2 {
		t.Fatal("preferences not established")
	}
	if p1 != H3 || p2 != H2 {
		t.Fatalf("preferences = %v / %v, want h3 / h2", p1, p2)
	}
}

func TestPreferenceRequiresBothArms(t *testing.T) {
	s := newTestSelector()
	feed(s, "a", H2, 10, 3)
	if _, _, _, ok := s.Preference("a"); ok {
		t.Fatal("preference reported with one-armed data")
	}
	if _, _, _, ok := s.Preference("never-seen"); ok {
		t.Fatal("preference reported for unknown host")
	}
}

func TestStatsAndReset(t *testing.T) {
	s := newTestSelector()
	s.Choose("a", true)
	s.Choose("a", false)
	s.Record("a", H2, time.Millisecond)
	h2, h3, fb := s.Stats()
	if h2+h3 != 2 || fb != 1 {
		t.Fatalf("stats = %d/%d/%d", h2, h3, fb)
	}
	s.Reset()
	h2, h3, fb = s.Stats()
	if h2+h3+fb != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestEWMAFirstSampleExact(t *testing.T) {
	var a arm
	a.observe(42, 0.3)
	if a.ewma != 42 {
		t.Fatalf("first sample ewma = %v", a.ewma)
	}
	a.observe(0, 0.5)
	if a.ewma != 21 {
		t.Fatalf("second sample ewma = %v", a.ewma)
	}
}

func TestProtocolStrings(t *testing.T) {
	if H2.String() != "h2" || H3.String() != "h3" || Protocol(9).String() != "?" {
		t.Fatal("protocol strings wrong")
	}
}

func TestNilRngDeterministic(t *testing.T) {
	s := NewSelector(Config{})
	feed(s, "a", H2, 10, 5)
	feed(s, "a", H3, 50, 5)
	for i := 0; i < 50; i++ {
		if s.Choose("a", true) != H2 {
			t.Fatal("nil-rng selector explored unexpectedly")
		}
	}
}
