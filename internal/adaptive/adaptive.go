// Package adaptive implements the protocol-selection tool the paper's
// implications section calls for (§VII, researchers): "an adaptive
// protocol selection tool that adjusts flexibly based on different
// conditions", in the spirit of FlexHTTP [43]. A Selector learns, per
// host, which HTTP version delivers lower first-byte latency and steers
// subsequent requests there, with epsilon-greedy exploration so it keeps
// tracking changing network conditions.
package adaptive

import (
	"math/rand"
	"time"
)

// Protocol is the arm being selected. It mirrors httpsim's protocols
// without importing it (the selector is transport-agnostic).
type Protocol uint8

const (
	// H2 is the TCP-based arm.
	H2 Protocol = iota + 1
	// H3 is the QUIC-based arm.
	H3
)

func (p Protocol) String() string {
	switch p {
	case H2:
		return "h2"
	case H3:
		return "h3"
	default:
		return "?"
	}
}

// Config tunes the selector.
type Config struct {
	// Epsilon is the exploration probability. Default 0.10.
	Epsilon float64
	// Alpha is the EWMA smoothing factor for latency estimates.
	// Default 0.3.
	Alpha float64
	// MinSamples is how many observations each arm needs before
	// exploitation starts; until then arms alternate. Default 2.
	MinSamples int
	// Rng drives exploration; required for deterministic simulations.
	Rng *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.10
	}
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.MinSamples == 0 {
		c.MinSamples = 2
	}
	return c
}

type arm struct {
	samples int
	ewma    float64 // milliseconds
}

func (a *arm) observe(ms float64, alpha float64) {
	if a.samples == 0 {
		a.ewma = ms
	} else {
		a.ewma = alpha*ms + (1-alpha)*a.ewma
	}
	a.samples++
}

type hostState struct {
	h2, h3 arm
	next   Protocol // round-robin pointer during warm-up
}

// Selector learns per-host protocol preferences from latency feedback.
type Selector struct {
	cfg   Config
	hosts map[string]*hostState

	chosen  map[Protocol]int64
	rewards int64
}

// NewSelector creates a selector. Rng may be nil (then exploration uses
// a fixed cycle, still deterministic).
func NewSelector(cfg Config) *Selector {
	return &Selector{
		cfg:    cfg.withDefaults(),
		hosts:  make(map[string]*hostState),
		chosen: make(map[Protocol]int64),
	}
}

func (s *Selector) state(host string) *hostState {
	st, ok := s.hosts[host]
	if !ok {
		st = &hostState{next: H3}
		s.hosts[host] = st
	}
	return st
}

// Choose picks the protocol for the next request to host. h3Available
// reports whether the H3 arm is usable at all (otherwise H2 is returned
// unconditionally).
func (s *Selector) Choose(host string, h3Available bool) Protocol {
	if !h3Available {
		s.chosen[H2]++
		return H2
	}
	st := s.state(host)
	choice := s.decide(st)
	s.chosen[choice]++
	return choice
}

func (s *Selector) decide(st *hostState) Protocol {
	// Warm-up: alternate until both arms have MinSamples.
	if st.h2.samples < s.cfg.MinSamples || st.h3.samples < s.cfg.MinSamples {
		p := st.next
		if st.next == H3 {
			st.next = H2
		} else {
			st.next = H3
		}
		return p
	}
	// Exploration.
	if s.cfg.Rng != nil && s.cfg.Rng.Float64() < s.cfg.Epsilon {
		if s.cfg.Rng.Intn(2) == 0 {
			return H2
		}
		return H3
	}
	// Exploitation: lower smoothed first-byte latency wins.
	if st.h3.ewma <= st.h2.ewma {
		return H3
	}
	return H2
}

// Record feeds back an observed latency for a request served over proto.
func (s *Selector) Record(host string, proto Protocol, latency time.Duration) {
	st := s.state(host)
	ms := float64(latency) / float64(time.Millisecond)
	s.rewards++
	switch proto {
	case H2:
		st.h2.observe(ms, s.cfg.Alpha)
	case H3:
		st.h3.observe(ms, s.cfg.Alpha)
	}
}

// Preference returns the currently preferred protocol for host and the
// smoothed latency estimates (ok=false before both arms have samples).
func (s *Selector) Preference(host string) (p Protocol, h2ms, h3ms float64, ok bool) {
	st, exists := s.hosts[host]
	if !exists || st.h2.samples == 0 || st.h3.samples == 0 {
		return 0, 0, 0, false
	}
	p = H2
	if st.h3.ewma <= st.h2.ewma {
		p = H3
	}
	return p, st.h2.ewma, st.h3.ewma, true
}

// Stats reports how many times each arm was chosen and total feedback.
func (s *Selector) Stats() (h2Chosen, h3Chosen, feedback int64) {
	return s.chosen[H2], s.chosen[H3], s.rewards
}

// Reset forgets all learned state (e.g. on network change).
func (s *Selector) Reset() {
	s.hosts = make(map[string]*hostState)
	s.chosen = make(map[Protocol]int64)
	s.rewards = 0
}
