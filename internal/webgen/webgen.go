// Package webgen generates the synthetic webpage corpus standing in for
// the paper's 325 Alexa-Top landing pages. Only *input* distributions are
// encoded here — resource counts, per-page CDN fraction, provider
// presence and market share, resource sizes, hostname sharing — all
// calibrated to the paper's measured aggregates (Table II, Figs. 3-5).
// Every number the experiments report is then re-measured from simulated
// page loads, not read back from this generator.
package webgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"h3cdn/internal/cdn"
	"h3cdn/internal/seqrand"
)

// ResourceType categorizes a web resource.
type ResourceType uint8

const (
	Document ResourceType = iota + 1
	Script
	Stylesheet
	Image
	Font
	Other
)

func (t ResourceType) String() string {
	switch t {
	case Document:
		return "document"
	case Script:
		return "script"
	case Stylesheet:
		return "stylesheet"
	case Image:
		return "image"
	case Font:
		return "font"
	default:
		return "other"
	}
}

func (t ResourceType) ext() string {
	switch t {
	case Document:
		return "html"
	case Script:
		return "js"
	case Stylesheet:
		return "css"
	case Image:
		return "jpg"
	case Font:
		return "woff2"
	default:
		return "bin"
	}
}

// Resource is one fetchable object on a page.
//
// The host, path, and URL are three views of one backing string
// ("https://" + host + path): at corpus scale the per-resource strings
// are the dominant live allocation of a whole campaign, and storing
// host and path as separate fields would roughly double the bytes
// (extra string data, allocator rounding, and two more 16-byte headers
// per resource). Host/Path are therefore accessor methods slicing the
// url field. JSON round-trips still speak {host, path, ...} via the
// custom marshalers below.
type Resource struct {
	Size     int
	Type     ResourceType
	Provider string // "" = origin (non-CDN)
	// H3Eligible marks resources actually servable over H3: the host
	// must have H3 enabled and the resource's serving path covered by
	// the provider's partial rollout (§VI-C's deployment density).
	H3Eligible bool

	url     string // "https://" + host + path
	hostLen uint16
}

// SetLocation records the resource's host and path (stored packed; see
// the type comment).
func (r *Resource) SetLocation(host, path string) {
	r.url = "https://" + host + path
	r.hostLen = uint16(len(host))
}

// Host returns the resource's hostname.
func (r *Resource) Host() string {
	return r.url[len("https://") : len("https://")+int(r.hostLen)]
}

// Path returns the resource's URL path.
func (r *Resource) Path() string {
	return r.url[len("https://")+int(r.hostLen):]
}

// URL returns the resource's synthetic URL. Precomputed: visits
// re-fetch the same corpus objects repeatedly, and the corpus is
// shared read-only across campaign shards, so nothing may memoize
// lazily.
func (r *Resource) URL() string { return r.url }

// resourceJSON is the wire form of Resource; the packed url/hostLen
// representation stays an implementation detail.
type resourceJSON struct {
	Host       string       `json:"host"`
	Path       string       `json:"path"`
	Size       int          `json:"size"`
	Type       ResourceType `json:"type"`
	Provider   string       `json:"provider,omitempty"`
	H3Eligible bool         `json:"h3Eligible,omitempty"`
}

// MarshalJSON emits the {host, path, ...} wire form.
func (r Resource) MarshalJSON() ([]byte, error) {
	return json.Marshal(resourceJSON{
		Host:       r.Host(),
		Path:       r.Path(),
		Size:       r.Size,
		Type:       r.Type,
		Provider:   r.Provider,
		H3Eligible: r.H3Eligible,
	})
}

// UnmarshalJSON parses the {host, path, ...} wire form.
func (r *Resource) UnmarshalJSON(b []byte) error {
	var w resourceJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	r.Size = w.Size
	r.Type = w.Type
	r.Provider = w.Provider
	r.H3Eligible = w.H3Eligible
	r.SetLocation(w.Host, w.Path)
	return nil
}

// Page is one website's landing page.
type Page struct {
	Site      string     `json:"site"`
	Rank      int        `json:"rank"`
	Resources []Resource `json:"resources"` // Resources[0] is the document
}

// Providers returns the distinct CDN providers used on the page.
func (p *Page) Providers() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range p.Resources {
		prov := p.Resources[i].Provider
		if prov != "" && !seen[prov] {
			seen[prov] = true
			out = append(out, prov)
		}
	}
	return out
}

// CDNResourceCount returns the number of CDN-hosted resources.
func (p *Page) CDNResourceCount() int {
	n := 0
	for i := range p.Resources {
		if p.Resources[i].Provider != "" {
			n++
		}
	}
	return n
}

// Corpus is the generated website population.
type Corpus struct {
	Pages []Page `json:"pages"`
	// H3Support records, per hostname, whether that host had H3
	// enabled at "measurement time" (drawn once per hostname from the
	// provider's adoption rate, so shared hostnames are consistent
	// across pages).
	H3Support map[string]bool `json:"h3Support"`
	// HostProvider maps every hostname to its provider ("" = origin).
	HostProvider map[string]string `json:"hostProvider"`
	// H1Only marks origin hosts stuck on HTTP/1.x (Table II's "Others"
	// row: 18.7% of non-CDN requests).
	H1Only map[string]bool `json:"h1Only"`
}

// Config tunes corpus generation. Zero values select paper-calibrated
// defaults.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// NumPages is the website count. Default 325.
	NumPages int
	// MeanResources is the mean resource count per page. Default 111
	// (36,057 requests / 325 pages).
	MeanResources float64
	// CDNFracMean/Std shape the per-page CDN share (Fig. 3: 75% of
	// pages above 50%). Defaults 0.66 / 0.19.
	CDNFracMean float64
	CDNFracStd  float64
	// OriginH3Adoption is the chance a site's own server enables H3.
	// Default 0.30 (Table II non-CDN split; discovery keeps the first
	// requests on H2, netting out near the paper 20.6% measured share).
	OriginH3Adoption float64
	// OriginH1OnlyFraction is the chance a site's own server speaks
	// only HTTP/1.x. Default 0.19 (Table II: "Others" are 18.7% of
	// non-CDN requests and ~0% of CDN requests).
	OriginH1OnlyFraction float64
	// SharedHostFraction is the probability a CDN resource sits on one
	// of its provider's globally shared hostnames. Default 0.5.
	SharedHostFraction float64
	// OriginH3PathFraction is the per-resource H3 coverage on
	// H3-enabled origins. Default 0.85.
	OriginH3PathFraction float64
	// Providers overrides the registry (tests/ablations).
	Providers []cdn.Provider
}

func (c Config) withDefaults() Config {
	if c.NumPages == 0 {
		c.NumPages = 325
	}
	if c.MeanResources == 0 {
		c.MeanResources = 111
	}
	if c.CDNFracMean == 0 {
		c.CDNFracMean = 0.66
	}
	if c.CDNFracStd == 0 {
		c.CDNFracStd = 0.19
	}
	if c.OriginH3Adoption == 0 {
		c.OriginH3Adoption = 0.30
	}
	if c.OriginH1OnlyFraction == 0 {
		c.OriginH1OnlyFraction = 0.19
	}
	if c.SharedHostFraction == 0 {
		c.SharedHostFraction = 0.5
	}
	if c.OriginH3PathFraction == 0 {
		c.OriginH3PathFraction = 0.85
	}
	if c.Providers == nil {
		c.Providers = cdn.Registry()
	}
	return c
}

// Generate builds the corpus deterministically from cfg.Seed.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	src := seqrand.New(cfg.Seed).Sub("webgen")
	corpus := &Corpus{
		Pages:        make([]Page, 0, cfg.NumPages),
		H3Support:    make(map[string]bool),
		HostProvider: make(map[string]string),
		H1Only:       make(map[string]bool),
	}

	h3Rng := src.Stream("h3support")
	h1Rng := src.Stream("h1only")
	ensureHost := func(host, provider string, adoption float64) bool {
		if _, ok := corpus.HostProvider[host]; ok {
			return corpus.H3Support[host]
		}
		corpus.HostProvider[host] = provider
		if provider == "" && h1Rng.Float64() < cfg.OriginH1OnlyFraction {
			// HTTP/1.x-only origin: H3 impossible too.
			corpus.H1Only[host] = true
			corpus.H3Support[host] = false
			return false
		}
		ok := h3Rng.Float64() < adoption
		corpus.H3Support[host] = ok
		return ok
	}

	var urlBuf []byte
	for i := 0; i < cfg.NumPages; i++ {
		rng := src.Stream(seqrand.Label("page", i))
		page := generatePage(cfg, i, rng, ensureHost)
		// Re-pack the page's URLs into one backing string: one
		// allocation per page instead of one per resource, and no
		// per-string allocator rounding.
		urlBuf = urlBuf[:0]
		for j := range page.Resources {
			urlBuf = append(urlBuf, page.Resources[j].url...)
		}
		urls := string(urlBuf)
		off := 0
		for j := range page.Resources {
			r := &page.Resources[j]
			n := len(r.url)
			r.url = urls[off : off+n]
			off += n
		}
		corpus.Pages = append(corpus.Pages, page)
	}
	return corpus
}

func generatePage(cfg Config, rank int, rng *rand.Rand, ensureHost func(string, string, float64) bool) Page {
	site := fmt.Sprintf("site%03d.sim", rank)
	originH3 := ensureHost(site, "", cfg.OriginH3Adoption)

	total := lognormalInt(rng, cfg.MeanResources*0.85, 0.55, 15, 400)
	cdnFrac := clamp(rng.NormFloat64()*cfg.CDNFracStd+cfg.CDNFracMean, 0.05, 0.98)
	nCDN := int(math.Round(float64(total) * cdnFrac))
	if nCDN > total-1 {
		nCDN = total - 1 // the document itself is always origin-hosted
	}
	nOrigin := total - nCDN // includes the document

	page := Page{Site: site, Rank: rank, Resources: make([]Resource, 0, total)}

	// Document first.
	doc := Resource{
		Size:       30_000 + rng.Intn(60_000),
		Type:       Document,
		H3Eligible: originH3 && rng.Float64() < cfg.OriginH3PathFraction,
	}
	doc.SetLocation(site, "/")
	page.Resources = append(page.Resources, doc)

	// Origin-hosted subresources.
	for j := 1; j < nOrigin; j++ {
		typ := drawType(rng)
		r := Resource{
			Size:       drawSize(rng, typ),
			Type:       typ,
			H3Eligible: originH3 && rng.Float64() < cfg.OriginH3PathFraction,
		}
		r.SetLocation(site, "/static/r"+strconv.Itoa(j)+"."+typ.ext())
		page.Resources = append(page.Resources, r)
	}

	// Which providers appear on this page (Fig. 4a presence rates).
	present := make([]cdn.Provider, 0, len(cfg.Providers))
	for _, p := range cfg.Providers {
		if rng.Float64() < p.PagePresence {
			present = append(present, p)
		}
	}
	if len(present) == 0 {
		present = append(present, cfg.Providers[0])
	}
	shareSum := 0.0
	for _, p := range present {
		shareSum += p.MarketShare
	}

	// CDN resources, assigned to present providers by market share.
	for j := 0; j < nCDN; j++ {
		prov := pickProvider(rng, present, shareSum)
		typ := drawType(rng)
		host := cdnHostname(rng, cfg, prov, site)
		hostH3 := ensureHost(host, prov.Name, prov.H3Adoption)
		r := Resource{
			Size:       drawSize(rng, typ),
			Type:       typ,
			Provider:   prov.Name,
			H3Eligible: hostH3 && rng.Float64() < prov.H3PathFraction,
		}
		r.SetLocation(host, "/assets/"+site+"/r"+strconv.Itoa(j)+"."+typ.ext())
		page.Resources = append(page.Resources, r)
	}
	return page
}

func pickProvider(rng *rand.Rand, present []cdn.Provider, shareSum float64) cdn.Provider {
	x := rng.Float64() * shareSum
	for _, p := range present {
		x -= p.MarketShare
		if x <= 0 {
			return p
		}
	}
	return present[len(present)-1]
}

// cdnHostname picks either a globally shared hostname of the provider
// (fonts/library-CDN analogue, reused across sites — the §VI-D resumption
// vehicle) or a site-specific distribution hostname.
func cdnHostname(rng *rand.Rand, cfg Config, p cdn.Provider, site string) string {
	slug := providerSlug(p.Name)
	if rng.Float64() < cfg.SharedHostFraction && p.SharedHosts > 0 {
		k := rng.Intn(p.SharedHosts)
		return "s" + strconv.Itoa(k) + "." + slug + "-cdn.sim"
	}
	return site + "." + slug + "-edge.sim"
}

func providerSlug(name string) string {
	switch name {
	case "QUIC.Cloud":
		return "quiccloud"
	default:
		out := make([]rune, 0, len(name))
		for _, r := range name {
			if r >= 'A' && r <= 'Z' {
				r += 'a' - 'A'
			}
			out = append(out, r)
		}
		return string(out)
	}
}

func drawType(rng *rand.Rand) ResourceType {
	x := rng.Float64()
	switch {
	case x < 0.45:
		return Image
	case x < 0.75:
		return Script
	case x < 0.85:
		return Stylesheet
	case x < 0.90:
		return Font
	default:
		return Other
	}
}

// drawSize samples a per-type lognormal calibrated so ~75% of CDN
// resources fall under 20KB (§VI-E, citing [39]).
func drawSize(rng *rand.Rand, t ResourceType) int {
	var median float64
	switch t {
	case Document:
		median = 50_000
	case Script:
		median = 9_000
	case Stylesheet:
		median = 3_500
	case Image:
		median = 13_000
	case Font:
		median = 18_000
	default:
		median = 6_000
	}
	return lognormalInt(rng, median, 0.9, 300, 2_000_000)
}

// lognormalInt samples round(exp(N(ln(median), sigma))) clamped to
// [lo, hi].
func lognormalInt(rng *rand.Rand, median, sigma float64, lo, hi int) int {
	v := math.Exp(rng.NormFloat64()*sigma + math.Log(median))
	n := int(math.Round(v))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
