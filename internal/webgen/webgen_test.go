package webgen

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testCorpus(t *testing.T, seed uint64) *Corpus {
	t.Helper()
	return Generate(Config{Seed: seed})
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := testCorpus(t, 42), testCorpus(t, 42)
	if len(a.Pages) != len(b.Pages) {
		t.Fatal("page counts differ")
	}
	for i := range a.Pages {
		if len(a.Pages[i].Resources) != len(b.Pages[i].Resources) {
			t.Fatalf("page %d resource counts differ", i)
		}
		for j := range a.Pages[i].Resources {
			if a.Pages[i].Resources[j] != b.Pages[i].Resources[j] {
				t.Fatalf("page %d resource %d differs", i, j)
			}
		}
	}
	for h, v := range a.H3Support {
		if b.H3Support[h] != v {
			t.Fatalf("H3 support for %s differs", h)
		}
	}
}

func TestCorpusSeedsDiffer(t *testing.T) {
	a, b := testCorpus(t, 1), testCorpus(t, 2)
	same := 0
	for i := range a.Pages {
		if len(a.Pages[i].Resources) == len(b.Pages[i].Resources) {
			same++
		}
	}
	if same == len(a.Pages) {
		t.Fatal("different seeds produced identical resource counts everywhere")
	}
}

func TestCalibrationCDNDominance(t *testing.T) {
	st := testCorpus(t, 7).Stats()
	// Table II: 67% of requests are CDN.
	if st.CDNFraction < 0.55 || st.CDNFraction > 0.75 {
		t.Fatalf("CDN fraction = %.3f, want ~0.67", st.CDNFraction)
	}
	// Fig. 3: ~75% of pages have >50% CDN resources.
	if st.PagesOverHalfCDN < 0.60 || st.PagesOverHalfCDN > 0.90 {
		t.Fatalf("pages over half CDN = %.3f, want ~0.75", st.PagesOverHalfCDN)
	}
}

func TestCalibrationSharedProviders(t *testing.T) {
	st := testCorpus(t, 7).Stats()
	// Paper: 94.8% of pages use at least two providers.
	if st.AtLeastTwoProviders < 0.88 {
		t.Fatalf("pages with >=2 providers = %.3f, want ~0.95", st.AtLeastTwoProviders)
	}
	// Fig. 4a: top-4 provider presence exceeds 50%.
	for _, p := range []string{"Google", "Cloudflare", "Amazon", "Akamai"} {
		if st.ProviderPresence[p] < 0.5 {
			t.Fatalf("%s presence = %.3f, want > 0.5", p, st.ProviderPresence[p])
		}
	}
}

func TestCalibrationResourceCount(t *testing.T) {
	st := testCorpus(t, 7).Stats()
	mean := float64(st.TotalResources) / float64(st.Pages)
	// 36,057/325 ≈ 111 requests per page.
	if mean < 85 || mean > 140 {
		t.Fatalf("mean resources per page = %.1f, want ~111", mean)
	}
}

func TestCalibrationSmallResources(t *testing.T) {
	st := testCorpus(t, 7).Stats()
	// §VI-E: ~75% of CDN resources below 20KB.
	if st.SmallResources < 0.62 || st.SmallResources > 0.88 {
		t.Fatalf("small CDN resources = %.3f, want ~0.75", st.SmallResources)
	}
}

func TestCalibrationProviderCentralization(t *testing.T) {
	c := testCorpus(t, 7)
	// Fig. 5: for Cloudflare and Google, ~half the pages using them
	// carry more than 10 of their resources.
	for _, prov := range []string{"Cloudflare", "Google"} {
		counts := c.ProviderResourceCounts(prov)
		if len(counts) == 0 {
			t.Fatalf("no pages use %s", prov)
		}
		over10 := 0
		for _, n := range counts {
			if n > 10 {
				over10++
			}
		}
		frac := float64(over10) / float64(len(counts))
		if frac < 0.35 {
			t.Fatalf("%s: only %.2f of pages exceed 10 resources, want ~0.5+", prov, frac)
		}
	}
}

func TestDocumentIsFirstAndOriginHosted(t *testing.T) {
	c := testCorpus(t, 3)
	for i := range c.Pages {
		doc := c.Pages[i].Resources[0]
		if doc.Type != Document {
			t.Fatalf("page %d: first resource is %v", i, doc.Type)
		}
		if doc.Provider != "" || doc.Host() != c.Pages[i].Site {
			t.Fatalf("page %d: document hosted at %q (provider %q)", i, doc.Host(), doc.Provider)
		}
	}
}

func TestHostProviderConsistency(t *testing.T) {
	c := testCorpus(t, 3)
	for i := range c.Pages {
		for j := range c.Pages[i].Resources {
			r := &c.Pages[i].Resources[j]
			if got := c.HostProvider[r.Host()]; got != r.Provider {
				t.Fatalf("host %q mapped to %q but resource says %q", r.Host(), got, r.Provider)
			}
			if _, ok := c.H3Support[r.Host()]; !ok {
				t.Fatalf("host %q missing H3 support entry", r.Host())
			}
		}
	}
}

func TestSharedHostnamesRecurAcrossPages(t *testing.T) {
	c := testCorpus(t, 3)
	usage := make(map[string]map[int]bool)
	for i := range c.Pages {
		for j := range c.Pages[i].Resources {
			h := c.Pages[i].Resources[j].Host()
			if !strings.Contains(h, "-cdn.sim") {
				continue // only shared hostnames
			}
			if usage[h] == nil {
				usage[h] = make(map[int]bool)
			}
			usage[h][i] = true
		}
	}
	if len(usage) == 0 {
		t.Fatal("no shared hostnames generated")
	}
	max := 0
	for _, pages := range usage {
		if len(pages) > max {
			max = len(pages)
		}
	}
	if max < len(c.Pages)/3 {
		t.Fatalf("most-shared hostname on %d/%d pages; sharing too weak for §VI-D", max, len(c.Pages))
	}
}

func TestH3AdoptionOrdering(t *testing.T) {
	c := testCorpus(t, 11)
	adoption := func(provider string) float64 {
		n, h3 := 0, 0
		for host, prov := range c.HostProvider {
			if prov != provider {
				continue
			}
			n++
			if c.H3Support[host] {
				h3++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(h3) / float64(n)
	}
	g, cf, am := adoption("Google"), adoption("Cloudflare"), adoption("Amazon")
	if !(g > cf && cf > am) {
		t.Fatalf("adoption ordering broken: Google=%.2f Cloudflare=%.2f Amazon=%.2f", g, cf, am)
	}
	if g < 0.85 {
		t.Fatalf("Google adoption %.2f, want near-total (Fig. 2)", g)
	}
}

func TestLognormalClamped(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed)) //nolint:gosec
		n := lognormalInt(rng, 100, 1.0, 10, 1000)
		return n >= 10 && n <= 1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceTypeStrings(t *testing.T) {
	for _, tc := range []struct {
		t   ResourceType
		s   string
		ext string
	}{
		{Document, "document", "html"},
		{Script, "script", "js"},
		{Stylesheet, "stylesheet", "css"},
		{Image, "image", "jpg"},
		{Font, "font", "woff2"},
		{Other, "other", "bin"},
	} {
		if tc.t.String() != tc.s || tc.t.ext() != tc.ext {
			t.Fatalf("%v: %q/%q", tc.t, tc.t.String(), tc.t.ext())
		}
	}
}

func TestPageHelpers(t *testing.T) {
	p := Page{Resources: []Resource{
		{Provider: ""},
		{Provider: "Google"},
		{Provider: "Google"},
		{Provider: "Fastly"},
	}}
	if got := p.CDNResourceCount(); got != 3 {
		t.Fatalf("CDNResourceCount = %d", got)
	}
	provs := p.Providers()
	if len(provs) != 2 {
		t.Fatalf("Providers = %v", provs)
	}
}

func TestProviderSlug(t *testing.T) {
	if providerSlug("QUIC.Cloud") != "quiccloud" {
		t.Fatal("QUIC.Cloud slug")
	}
	if providerSlug("Google") != "google" {
		t.Fatal("Google slug")
	}
}

func TestResourceJSONRoundTrip(t *testing.T) {
	c := testCorpus(t, 2)
	blob, err := json.Marshal(c.Pages[0].Resources)
	if err != nil {
		t.Fatal(err)
	}
	var back []Resource
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(c.Pages[0].Resources) {
		t.Fatalf("round-trip length %d != %d", len(back), len(c.Pages[0].Resources))
	}
	for i := range back {
		a, b := &c.Pages[0].Resources[i], &back[i]
		if a.Host() != b.Host() || a.Path() != b.Path() || a.URL() != b.URL() ||
			a.Size != b.Size || a.Type != b.Type || a.Provider != b.Provider || a.H3Eligible != b.H3Eligible {
			t.Fatalf("resource %d changed across JSON round-trip:\n  %+v\n  %+v", i, a, b)
		}
	}
}
