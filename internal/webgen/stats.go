package webgen

// CorpusStats summarizes the generated population; used by tests to check
// calibration and by the corpus inspection tool.
type CorpusStats struct {
	Pages          int
	TotalResources int
	CDNResources   int
	// CDNFraction is CDN resources over all resources.
	CDNFraction float64
	// PagesOverHalfCDN is the fraction of pages with >50% CDN
	// resources (Fig. 3's headline point: ~0.75).
	PagesOverHalfCDN float64
	// ProviderPresence is the fraction of pages each provider appears
	// on (Fig. 4a).
	ProviderPresence map[string]float64
	// PagesWithKProviders histograms pages by distinct provider count
	// (Fig. 4b).
	PagesWithKProviders map[int]int
	// AtLeastTwoProviders is the fraction of pages using ≥2 providers
	// (paper: 94.8%).
	AtLeastTwoProviders float64
	// H3Hostnames is the fraction of hostnames with H3 enabled.
	H3Hostnames float64
	// SmallResources is the fraction of CDN resources under 20KB
	// (paper: ~75%).
	SmallResources float64
}

// Stats computes corpus summary statistics.
func (c *Corpus) Stats() CorpusStats {
	st := CorpusStats{
		Pages:               len(c.Pages),
		ProviderPresence:    make(map[string]float64),
		PagesWithKProviders: make(map[int]int),
	}
	smallCDN := 0
	for i := range c.Pages {
		p := &c.Pages[i]
		st.TotalResources += len(p.Resources)
		nCDN := 0
		for j := range p.Resources {
			if p.Resources[j].Provider != "" {
				nCDN++
				if p.Resources[j].Size < 20_000 {
					smallCDN++
				}
			}
		}
		st.CDNResources += nCDN
		if float64(nCDN) > 0.5*float64(len(p.Resources)) {
			st.PagesOverHalfCDN++
		}
		provs := p.Providers()
		st.PagesWithKProviders[len(provs)]++
		if len(provs) >= 2 {
			st.AtLeastTwoProviders++
		}
		for _, prov := range provs {
			st.ProviderPresence[prov]++
		}
	}
	n := float64(len(c.Pages))
	if n > 0 {
		st.PagesOverHalfCDN /= n
		st.AtLeastTwoProviders /= n
		for k := range st.ProviderPresence {
			st.ProviderPresence[k] /= n
		}
	}
	if st.TotalResources > 0 {
		st.CDNFraction = float64(st.CDNResources) / float64(st.TotalResources)
	}
	if st.CDNResources > 0 {
		st.SmallResources = float64(smallCDN) / float64(st.CDNResources)
	}
	h3 := 0
	for _, ok := range c.H3Support {
		if ok {
			h3++
		}
	}
	if len(c.H3Support) > 0 {
		st.H3Hostnames = float64(h3) / float64(len(c.H3Support))
	}
	return st
}

// ProviderResourceCounts returns, for each page using the provider, how
// many of its resources that provider hosts (Fig. 5's per-provider CCDF
// input).
func (c *Corpus) ProviderResourceCounts(provider string) []int {
	var out []int
	for i := range c.Pages {
		n := 0
		for j := range c.Pages[i].Resources {
			if c.Pages[i].Resources[j].Provider == provider {
				n++
			}
		}
		if n > 0 {
			out = append(out, n)
		}
	}
	return out
}
