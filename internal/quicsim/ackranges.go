package quicsim

// pnRange is an inclusive packet-number range.
type pnRange struct {
	lo, hi uint64
}

// rangeSet tracks received packet numbers as merged inclusive ranges,
// sorted ascending. It backs ACK frame generation.
type rangeSet struct {
	ranges []pnRange
}

// add inserts pn, merging adjacent ranges. Returns false on duplicates.
func (s *rangeSet) add(pn uint64) bool {
	// Find insertion point (ranges sorted ascending by lo).
	i := 0
	for i < len(s.ranges) && s.ranges[i].hi+1 < pn {
		i++
	}
	if i < len(s.ranges) && s.ranges[i].lo <= pn && pn <= s.ranges[i].hi {
		return false // duplicate
	}
	// Extend an adjacent range if possible.
	extendLeft := i < len(s.ranges) && s.ranges[i].hi+1 == pn
	extendRight := i < len(s.ranges) && pn+1 == s.ranges[i].lo
	switch {
	case extendLeft:
		s.ranges[i].hi = pn
		// Merge with the next range if now adjacent.
		if i+1 < len(s.ranges) && s.ranges[i].hi+1 == s.ranges[i+1].lo {
			s.ranges[i].hi = s.ranges[i+1].hi
			s.ranges = append(s.ranges[:i+1], s.ranges[i+2:]...)
		}
		return true
	case extendRight:
		s.ranges[i].lo = pn
		if i > 0 && s.ranges[i-1].hi+1 == s.ranges[i].lo {
			s.ranges[i-1].hi = s.ranges[i].hi
			s.ranges = append(s.ranges[:i], s.ranges[i+1:]...)
		}
		return true
	default:
		s.ranges = append(s.ranges, pnRange{})
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = pnRange{lo: pn, hi: pn}
		return true
	}
}

// contains reports whether pn has been recorded.
func (s *rangeSet) contains(pn uint64) bool {
	for _, r := range s.ranges {
		if r.lo <= pn && pn <= r.hi {
			return true
		}
	}
	return false
}

// snapshot returns up to max ranges, most recent (highest) first, for an
// ACK frame.
func (s *rangeSet) snapshot(max int) []pnRange {
	n := len(s.ranges)
	if n == 0 {
		return nil
	}
	if max > n {
		max = n
	}
	out := make([]pnRange, 0, max)
	for i := n - 1; i >= n-max; i-- {
		out = append(out, s.ranges[i])
	}
	return out
}

// snapshotInto appends up to max ranges, most recent first, to out —
// letting ACK frames reuse a range slice across transmissions.
func (s *rangeSet) snapshotInto(out []pnRange, max int) []pnRange {
	n := len(s.ranges)
	if max > n {
		max = n
	}
	for i := n - 1; i >= n-max; i-- {
		out = append(out, s.ranges[i])
	}
	return out
}

// largest returns the highest recorded packet number (ok=false if empty).
func (s *rangeSet) largest() (uint64, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[len(s.ranges)-1].hi, true
}
