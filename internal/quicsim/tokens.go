package quicsim

import "time"

// Token is a client-held session token enabling QUIC resumption and
// 0-RTT (the QUIC analogue of a TLS 1.3 session ticket).
type Token struct {
	ID         uint64
	ServerName string
	IssuedAt   time.Duration
}

// TokenStore caches session tokens by server name — the browser-side
// QUIC session cache that survives across page visits.
type TokenStore struct {
	byName map[string]Token
}

// NewTokenStore returns an empty session cache.
func NewTokenStore() *TokenStore {
	return &TokenStore{byName: make(map[string]Token)}
}

// Get returns the token for serverName, if any.
func (s *TokenStore) Get(serverName string) (Token, bool) {
	t, ok := s.byName[serverName]
	return t, ok
}

// Put stores a token, replacing any previous one for the same name.
func (s *TokenStore) Put(t Token) { s.byName[t.ServerName] = t }

// Clear drops all tokens.
func (s *TokenStore) Clear() { s.byName = make(map[string]Token) }

// Len reports the number of cached tokens.
func (s *TokenStore) Len() int { return len(s.byName) }

// ServerSessions is the server-side token registry shared by all
// connections of one server. Alongside validity it caches the path's
// congestion window at connection close, enabling cwnd (bandwidth)
// resumption on the next connection from the same client — the RFC 9002
// Appendix B / Chromium "bandwidth resumption" optimization that lets
// returning visitors skip slow start.
type ServerSessions struct {
	issued map[uint64]float64 // token → cached cwnd (0 = none yet)
	nextID uint64
}

// NewServerSessions returns an empty registry.
func NewServerSessions() *ServerSessions {
	return &ServerSessions{issued: make(map[uint64]float64), nextID: 1}
}

func (s *ServerSessions) issue() uint64 {
	id := s.nextID
	s.nextID++
	s.issued[id] = 0
	return id
}

func (s *ServerSessions) valid(id uint64) bool {
	if id == 0 {
		return false
	}
	_, ok := s.issued[id]
	return ok
}

// storeCwnd caches the closing connection's congestion window under the
// token it issued.
func (s *ServerSessions) storeCwnd(id uint64, cwnd float64) {
	if _, ok := s.issued[id]; ok {
		s.issued[id] = cwnd
	}
}

// cachedCwnd returns the cwnd remembered for a presented token.
func (s *ServerSessions) cachedCwnd(id uint64) float64 { return s.issued[id] }
