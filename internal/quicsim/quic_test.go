package quicsim

import (
	"bytes"
	"testing"
	"time"

	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
)

type world struct {
	sched    *simnet.Scheduler
	net      *simnet.Network
	client   *simnet.Host
	server   *simnet.Host
	sessions *ServerSessions
}

func newWorld(t *testing.T, delay time.Duration, bps, loss float64, seed uint64) *world {
	t.Helper()
	sched := &simnet.Scheduler{MaxEvents: 5_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: delay, BandwidthBps: bps, LossRate: loss}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(seed))
	return &world{
		sched:    sched,
		net:      n,
		client:   n.AddHost("client"),
		server:   n.AddHost("server"),
		sessions: NewServerSessions(),
	}
}

func (w *world) run(t *testing.T) {
	t.Helper()
	if _, err := w.sched.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

// echoListen starts a server that echoes every stream back.
func echoListen(t *testing.T, w *world) *Endpoint {
	t.Helper()
	e, err := Listen(w.server, 443, ServerConfig{Sessions: w.sessions}, func(c *Conn) {
		c.SetStreamFunc(func(s *Stream) {
			s.SetDataFunc(func(p []byte) { s.Write(p) })
			s.SetFinFunc(func() { s.CloseWrite() })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHandshakeIsOneRTT(t *testing.T) {
	w := newWorld(t, 25*time.Millisecond, 0, 0, 1)
	echoListen(t, w)
	var at time.Duration
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		at = w.sched.Now()
		if c.Resumed() {
			t.Fatal("fresh dial reported resumed")
		}
	})
	w.run(t)
	if at != 50*time.Millisecond {
		t.Fatalf("established at %v, want 50ms (one RTT)", at)
	}
}

func TestZeroRTTIsImmediate(t *testing.T) {
	w := newWorld(t, 25*time.Millisecond, 0, 0, 1)
	echoListen(t, w)
	tokens := NewTokenStore()

	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens}, nil)
	w.run(t)
	if tokens.Len() != 1 {
		t.Fatalf("token store has %d tokens after handshake, want 1", tokens.Len())
	}

	base := w.sched.Now()
	var at time.Duration
	var conn *Conn
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens, EnableZeroRTT: true}, func(c *Conn) {
		at = w.sched.Now()
		conn = c
	})
	w.run(t)
	if at != base {
		t.Fatalf("0-RTT established at %v, want %v (immediate)", at, base)
	}
	if !conn.Resumed() || !conn.UsedZeroRTT() {
		t.Fatalf("resumed=%v zeroRTT=%v, want both", conn.Resumed(), conn.UsedZeroRTT())
	}
	if conn.HandshakeDuration() != 0 {
		t.Fatalf("0-RTT handshake duration = %v, want 0", conn.HandshakeDuration())
	}
}

func TestZeroRTTDataReachesServerInHalfRTT(t *testing.T) {
	w := newWorld(t, 25*time.Millisecond, 0, 0, 1)
	var firstByte time.Duration
	if _, err := Listen(w.server, 443, ServerConfig{Sessions: w.sessions}, func(c *Conn) {
		c.SetStreamFunc(func(s *Stream) {
			s.SetDataFunc(func(p []byte) {
				if firstByte == 0 {
					firstByte = w.sched.Now()
				}
			})
		})
	}); err != nil {
		t.Fatal(err)
	}
	tokens := NewTokenStore()
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens}, nil)
	w.run(t)

	base := w.sched.Now()
	firstByte = 0
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens, EnableZeroRTT: true}, func(c *Conn) {
		s := c.OpenStream()
		s.Write([]byte("GET / HTTP/3 0rtt"))
	})
	w.run(t)
	// Request bytes ride the first flight: one-way delay only.
	if got := firstByte - base; got != 25*time.Millisecond {
		t.Fatalf("0-RTT request reached server after %v, want 25ms", got)
	}
}

func TestBogusTokenRejected(t *testing.T) {
	w := newWorld(t, 25*time.Millisecond, 0, 0, 1)
	echoListen(t, w)
	tokens := NewTokenStore()
	tokens.Put(Token{ID: 424242, ServerName: "server"})
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens}, func(c *Conn) {
		if c.Resumed() {
			t.Fatal("server accepted a token it never issued")
		}
	})
	w.run(t)
}

func patterned(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 13)
	}
	return p
}

func TestStreamEcho(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 100e6, 0, 1)
	echoListen(t, w)
	payload := patterned(200 * 1024)
	var got bytes.Buffer
	eof := false
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		s := c.OpenStream()
		s.SetDataFunc(func(p []byte) { got.Write(p) })
		s.SetFinFunc(func() { eof = true })
		s.Write(payload)
		s.CloseWrite()
	})
	w.run(t)
	if !eof {
		t.Fatal("no FIN delivered")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("echo mismatch: %d/%d bytes", got.Len(), len(payload))
	}
}

func TestStreamEchoUnderLoss(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.10} {
		w := newWorld(t, 10*time.Millisecond, 50e6, loss, 77)
		echoListen(t, w)
		payload := patterned(100 * 1024)
		var got bytes.Buffer
		eof := false
		Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
			s := c.OpenStream()
			s.SetDataFunc(func(p []byte) { got.Write(p) })
			s.SetFinFunc(func() { eof = true })
			s.Write(payload)
			s.CloseWrite()
		})
		w.run(t)
		if !eof || !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("loss=%v: eof=%v, %d/%d bytes", loss, eof, got.Len(), len(payload))
		}
	}
}

func TestManyStreamsMultiplexed(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 50e6, 0.02, 5)
	echoListen(t, w)
	const streams = 16
	sizes := make([]int, streams)
	got := make([]bytes.Buffer, streams)
	fins := 0
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		for i := 0; i < streams; i++ {
			i := i
			sizes[i] = 4*1024 + i*512
			s := c.OpenStream()
			s.SetDataFunc(func(p []byte) { got[i].Write(p) })
			s.SetFinFunc(func() { fins++ })
			s.Write(patterned(sizes[i]))
			s.CloseWrite()
		}
	})
	w.run(t)
	if fins != streams {
		t.Fatalf("%d/%d streams finished", fins, streams)
	}
	for i := 0; i < streams; i++ {
		if !bytes.Equal(got[i].Bytes(), patterned(sizes[i])) {
			t.Fatalf("stream %d corrupted: %d/%d bytes", i, got[i].Len(), sizes[i])
		}
	}
}

func TestPerStreamOrderingUnderLoss(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 20e6, 0.08, 3)
	echoListen(t, w)
	payload := patterned(64 * 1024)
	off := 0
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		s := c.OpenStream()
		s.SetDataFunc(func(p []byte) {
			for _, b := range p {
				if b != byte(off*13) {
					t.Fatalf("out-of-order byte at offset %d", off)
				}
				off++
			}
		})
		s.Write(payload)
		s.CloseWrite()
	})
	w.run(t)
	if off != len(payload) {
		t.Fatalf("delivered %d/%d bytes", off, len(payload))
	}
}

// TestNoCrossStreamHoLBlocking is the package's key property: dropping a
// packet that carries only stream A's data must not delay stream B.
func TestNoCrossStreamHoLBlocking(t *testing.T) {
	finishTimes := func(dropA bool) (aDone, bDone time.Duration) {
		w := newWorld(t, 20*time.Millisecond, 0, 0, 9)
		// Server sends a large response on stream A and a small one on
		// stream B when poked.
		if _, err := Listen(w.server, 443, ServerConfig{Sessions: w.sessions}, func(c *Conn) {
			c.SetStreamFunc(func(s *Stream) {
				s.SetFinFunc(func() {
					s.Write(patterned(8 * 1024))
					s.CloseWrite()
				})
			})
		}); err != nil {
			t.Fatal(err)
		}

		dropped := false
		if dropA {
			w.net.SetFilter(func(pkt simnet.Packet) bool {
				p, ok := pkt.Payload.(*packet)
				if !ok || dropped || pkt.Src != "server" {
					return true
				}
				for _, f := range p.frames {
					if sf, ok := f.(*streamFrame); ok && sf.id == 0 && sf.off == 0 {
						dropped = true
						return false // drop stream A's first data packet
					}
				}
				return true
			})
		}

		Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
			a := c.OpenStream() // id 0
			a.SetFinFunc(func() { aDone = w.sched.Now() })
			a.CloseWrite()
			b := c.OpenStream() // id 4
			b.SetFinFunc(func() { bDone = w.sched.Now() })
			b.CloseWrite()
		})
		w.run(t)
		if aDone == 0 || bDone == 0 {
			t.Fatalf("streams did not finish: a=%v b=%v", aDone, bDone)
		}
		return aDone, bDone
	}

	aClean, bClean := finishTimes(false)
	aDrop, bDrop := finishTimes(true)
	if aDrop <= aClean {
		t.Fatalf("dropping stream A's packet did not delay A: clean=%v drop=%v", aClean, aDrop)
	}
	if bDrop != bClean {
		t.Fatalf("stream B was delayed by stream A's loss: clean=%v drop=%v (HoL blocking!)", bClean, bDrop)
	}
}

func TestLossStatsCounted(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 50e6, 0.05, 21)
	echoListen(t, w)
	var conn *Conn
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		conn = c
		s := c.OpenStream()
		s.Write(patterned(512 * 1024))
		s.CloseWrite()
	})
	w.run(t)
	if conn.Stats().PacketsDeclaredLost == 0 && conn.Stats().PTOs == 0 {
		t.Fatalf("no loss detected under 5%% loss: %+v", conn.Stats())
	}
}

func TestCleanCloseNotifiesPeer(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0, 1)
	var serverClosed error
	gotClose := false
	if _, err := Listen(w.server, 443, ServerConfig{Sessions: w.sessions}, func(c *Conn) {
		c.SetCloseFunc(func(err error) { gotClose = true; serverClosed = err })
	}); err != nil {
		t.Fatal(err)
	}
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		w.sched.After(10*time.Millisecond, c.Close)
	})
	w.run(t)
	if !gotClose || serverClosed != nil {
		t.Fatalf("server close: got=%v err=%v, want clean close", gotClose, serverClosed)
	}
}

func TestEndpointCleansUpOnClose(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0, 1)
	e := echoListen(t, w)
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		w.sched.After(10*time.Millisecond, c.Close)
	})
	w.run(t)
	if e.ConnCount() != 0 {
		t.Fatalf("endpoint tracks %d conns after close", e.ConnCount())
	}
	if w.sched.Pending() != 0 {
		t.Fatalf("%d stray events (timer leak)", w.sched.Pending())
	}
}

func TestStatelessCloseForUnknownConn(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0, 1)
	e := echoListen(t, w)
	var clientErr error
	var conn *Conn
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		conn = c
		c.SetCloseFunc(func(err error) { clientErr = err })
		// Simulate server state loss, then more client traffic.
		w.sched.After(10*time.Millisecond, func() {
			e.remove("client", conn.localPort)
			s := c.OpenStream()
			s.Write([]byte("hello?"))
		})
	})
	w.run(t)
	if clientErr == nil {
		t.Fatal("client not notified after server state loss")
	}
}

func TestDialNoServerTimesOut(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0, 1)
	var errGot error
	c := Dial(w.client, "server", 443, ClientConfig{
		Config:     Config{PTOInit: 50 * time.Millisecond, MaxPTOs: 3},
		ServerName: "server",
	}, func(*Conn) { t.Fatal("established with no server") })
	c.SetCloseFunc(func(err error) { errGot = err })
	w.run(t)
	if errGot == nil {
		t.Fatal("no timeout error")
	}
}

func TestHandshakeSurvivesHeavyLoss(t *testing.T) {
	w := newWorld(t, 5*time.Millisecond, 0, 0.5, 123)
	echoListen(t, w)
	done := false
	Dial(w.client, "server", 443, ClientConfig{
		Config:     Config{PTOInit: 50 * time.Millisecond, MaxPTOs: 20},
		ServerName: "server",
	}, func(c *Conn) { done = true })
	w.run(t)
	if !done {
		t.Fatal("handshake never completed under 50% loss with generous probes")
	}
}

func TestDeterministicRuns(t *testing.T) {
	once := func() time.Duration {
		w := newWorld(t, 10*time.Millisecond, 20e6, 0.03, 55)
		echoListen(t, w)
		var done time.Duration
		Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
			s := c.OpenStream()
			s.SetFinFunc(func() { done = w.sched.Now() })
			s.Write(patterned(64 * 1024))
			s.CloseWrite()
		})
		w.run(t)
		return done
	}
	if a, b := once(), once(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestRangeSet(t *testing.T) {
	var rs rangeSet
	for _, pn := range []uint64{5, 3, 4, 10, 1, 2, 11} {
		if !rs.add(pn) {
			t.Fatalf("add(%d) reported duplicate", pn)
		}
	}
	if rs.add(4) {
		t.Fatal("duplicate 4 accepted")
	}
	// Expect ranges [1-5] [10-11].
	if len(rs.ranges) != 2 || rs.ranges[0] != (pnRange{1, 5}) || rs.ranges[1] != (pnRange{10, 11}) {
		t.Fatalf("ranges = %v", rs.ranges)
	}
	if lg, ok := rs.largest(); !ok || lg != 11 {
		t.Fatalf("largest = %d, %v", lg, ok)
	}
	snap := rs.snapshot(1)
	if len(snap) != 1 || snap[0] != (pnRange{10, 11}) {
		t.Fatalf("snapshot = %v", snap)
	}
	if !rs.contains(3) || rs.contains(7) {
		t.Fatal("contains wrong")
	}
}

func TestRangeSetMergesAcrossGap(t *testing.T) {
	var rs rangeSet
	rs.add(1)
	rs.add(3)
	rs.add(2) // bridges [1] and [3]
	if len(rs.ranges) != 1 || rs.ranges[0] != (pnRange{1, 3}) {
		t.Fatalf("ranges = %v, want [{1 3}]", rs.ranges)
	}
}

func TestBandwidthResumption(t *testing.T) {
	w := newWorld(t, 25*time.Millisecond, 100e6, 0, 1)
	echoListen(t, w)
	tokens := NewTokenStore()

	// First connection: grow the cwnd with a bulk transfer.
	var firstCwnd float64
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens}, func(c *Conn) {
		s := c.OpenStream()
		s.SetFinFunc(func() {
			firstCwnd = c.Cwnd()
			c.Close()
		})
		s.Write(patterned(512 * 1024))
		s.CloseWrite()
	})
	w.run(t)
	if firstCwnd <= float64(10*maxPacketPayload) {
		t.Fatalf("first connection cwnd did not grow: %v", firstCwnd)
	}

	// The echo server's own connection cached its cwnd at close; a
	// resumed connection must start above the initial window.
	var resumedCwnd float64
	var established bool
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Tokens: tokens}, func(c *Conn) {
		established = true
		if !c.Resumed() {
			t.Fatal("second connection not resumed")
		}
		_ = c
	})
	// Inspect the server side: its conn for the new client should have
	// an elevated initial cwnd. We verify indirectly via the sessions
	// cache being non-zero for the first issued token.
	w.run(t)
	if !established {
		t.Fatal("second connection failed")
	}
	if got := w.sessions.cachedCwnd(1); got <= float64(10*maxPacketPayload) {
		t.Fatalf("cached cwnd for token 1 = %v, want grown window", got)
	}
	_ = resumedCwnd
}

func TestBandwidthResumptionCapped(t *testing.T) {
	s := NewServerSessions()
	id := s.issue()
	s.storeCwnd(id, 1e12)
	if got := s.cachedCwnd(id); got != 1e12 {
		t.Fatalf("cachedCwnd = %v", got)
	}
	// The cap itself is applied at connection setup; covered by the
	// conn test above plus this registry round trip.
	if s.cachedCwnd(999) != 0 {
		t.Fatal("unknown token returned cwnd")
	}
}

func TestConnectionMigration(t *testing.T) {
	w := newWorld(t, 15*time.Millisecond, 50e6, 0, 4)
	e := echoListen(t, w)
	payload := patterned(256 * 1024)
	var got bytes.Buffer
	done := false
	var conn *Conn
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		conn = c
		s := c.OpenStream()
		s.SetDataFunc(func(p []byte) { got.Write(p) })
		s.SetFinFunc(func() { done = true })
		s.Write(payload)
		s.CloseWrite()
		// Mid-transfer address change (Wi-Fi -> cellular analogue).
		w.sched.After(40*time.Millisecond, c.Migrate)
	})
	w.run(t)
	if !done {
		t.Fatal("transfer did not complete across migration")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("payload corrupted across migration: %d/%d bytes", got.Len(), len(payload))
	}
	if conn.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", conn.Migrations())
	}
	if e.ConnCount() != 1 {
		t.Fatalf("endpoint tracks %d conns after migration, want 1", e.ConnCount())
	}
}

func TestMigrationThenClose(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0, 4)
	e := echoListen(t, w)
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		w.sched.After(10*time.Millisecond, c.Migrate)
		w.sched.After(60*time.Millisecond, c.Close)
	})
	w.run(t)
	if e.ConnCount() != 0 {
		t.Fatalf("endpoint tracks %d conns after close via migrated path", e.ConnCount())
	}
	if w.sched.Pending() != 0 {
		t.Fatalf("%d stray events after migrated close", w.sched.Pending())
	}
}

func TestMigrationSurvivesLoss(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 20e6, 0.03, 8)
	echoListen(t, w)
	payload := patterned(96 * 1024)
	var got bytes.Buffer
	done := false
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		s := c.OpenStream()
		s.SetDataFunc(func(p []byte) { got.Write(p) })
		s.SetFinFunc(func() { done = true })
		s.Write(payload)
		s.CloseWrite()
		w.sched.After(30*time.Millisecond, c.Migrate)
		w.sched.After(90*time.Millisecond, c.Migrate) // migrate twice
	})
	w.run(t)
	if !done || !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("double migration under loss: done=%v %d/%d bytes", done, got.Len(), len(payload))
	}
}
