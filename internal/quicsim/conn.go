package quicsim

import (
	"time"

	"h3cdn/internal/simnet"
)

// TraceID returns the connection's trace id (0 when untraced).
func (c *Conn) TraceID() uint32 { return c.traceID }

type connState uint8

const (
	stateHandshaking connState = iota + 1
	stateEstablished
	stateClosed
)

type sentPacket struct {
	pn           uint64
	frames       []frame
	size         int
	sentAt       time.Duration
	ackEliciting bool
}

// ClientConfig configures a client connection.
type ClientConfig struct {
	Config
	// ServerName keys the token cache (SNI equivalent).
	ServerName string
	// Tokens, when non-nil, enables session resumption.
	Tokens *TokenStore
	// EnableZeroRTT sends 0-RTT application data when a token exists.
	EnableZeroRTT bool
	// HandshakeCPU models client crypto compute time.
	HandshakeCPU time.Duration
}

// ServerConfig configures a server endpoint.
type ServerConfig struct {
	Config
	// Sessions is the token registry; nil disables resumption.
	Sessions *ServerSessions
	// HandshakeCPU models server crypto compute time for a full
	// handshake (halved on resumption).
	HandshakeCPU time.Duration
}

// Conn is one endpoint of a simulated QUIC connection.
type Conn struct {
	host  *simnet.Host
	sched *simnet.Scheduler
	cfg   Config

	isClient   bool
	remote     simnet.Addr
	localPort  uint16
	remotePort uint16
	endpoint   *Endpoint // server side, for conn-table cleanup
	state      connState
	chNonce    uint64 // server side: incarnation nonce from the ClientHello

	ccfg        ClientConfig
	scfg        ServerConfig
	resumed     bool
	zeroRTT     bool
	chSeen      bool
	shSeen      bool
	issuedToken uint64 // server side: token granted in our ServerHello
	cid         uint64 // connection ID (assigned by the server)
	migrations  int    // client: address changes performed
	hsStart     time.Duration
	hsDone      time.Duration
	serverName  string

	streams      map[uint64]*Stream
	streamOrder  []uint64
	rrIndex      int
	nextStreamID uint64
	streamFn     func(*Stream)

	nextPN uint64
	// sent holds in-flight ack-eliciting packets ordered by pn (packet
	// numbers are assigned monotonically and appended in send order).
	// The order makes ACK processing and packet-threshold loss
	// detection single ordered passes — no map iteration, no sort — and
	// keeps float arithmetic reproducible by construction.
	sent          []*sentPacket
	bytesInFlight int
	cwnd          float64
	ssthresh      float64
	recoveryStart uint64
	sendQ         []frame // control + retransmitted frames, FIFO

	srtt       time.Duration
	rttvar     time.Duration
	hasRTT     bool
	ptoTimer   *simnet.Timer
	ptoCount   int
	probeStart time.Duration // first PTO fire of the current episode

	recvd     rangeSet
	ackQueued bool

	// pools recycles the send path's per-packet records. Reuse is scoped
	// to one scheduler goroutine (the owning universe's, or this
	// connection's private fallback arena when Config.Pools is nil), and
	// recycling happens only when a record is provably dead: a sentPacket
	// retires on ack or loss-declaration with no other holder, while
	// frames arrays and ackFrames recycle on ack only — an acked packet
	// was delivered and fully processed, whereas a loss-declared one may
	// be a reordering false positive still in flight, its wire copy
	// aliasing the array.
	pools *Pools

	traceID uint32 // 0 when untraced

	onEstablished func(*Conn)
	closeFn       func(error)
	stats         ConnStats
}

// Dial opens a client connection. onEstablished fires as soon as stream
// data may be sent: one RTT for a full handshake, immediately (zero
// virtual time) for 0-RTT resumption. Transport failures surface through
// SetCloseFunc.
func Dial(host *simnet.Host, dst simnet.Addr, dstPort uint16, cfg ClientConfig, onEstablished func(*Conn)) *Conn {
	c := newConn(host, cfg.Config)
	c.isClient = true
	c.ccfg = cfg
	c.remote = dst
	c.remotePort = dstPort
	c.serverName = cfg.ServerName
	c.onEstablished = onEstablished
	c.nextStreamID = 0 // client-initiated bidirectional: 0, 4, 8, ...
	c.localPort = host.BindEphemeral(func(pkt simnet.Packet) {
		p, ok := pkt.Payload.(*packet)
		if !ok {
			return
		}
		c.handlePacket(p)
	})

	c.hsStart = c.sched.Now()
	ch := &clientHelloFrame{serverName: cfg.ServerName, nonce: uint64(c.hsStart)}
	if cfg.Tokens != nil {
		if t, ok := cfg.Tokens.Get(cfg.ServerName); ok {
			ch.token = t.ID
			c.resumed = true
			if cfg.EnableZeroRTT {
				ch.zeroRTT = true
				c.zeroRTT = true
			}
		}
	}
	c.cfg.Trace.QUICHandshakeStart(c.hsStart, c.traceID, c.resumed, c.zeroRTT)
	c.sendQ = append(c.sendQ, ch)
	c.trySend()
	c.armPTO()

	if c.zeroRTT {
		// 0-RTT: the application may open streams immediately; defer
		// one tick so the callback never runs before Dial returns.
		c.sched.After(0, func() {
			if c.state != stateClosed {
				c.becomeEstablished()
			}
		})
	}
	return c
}

func newConn(host *simnet.Host, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		host:    host,
		sched:   host.Scheduler(),
		cfg:     cfg,
		state:   stateHandshaking,
		streams: make(map[uint64]*Stream),
		cwnd:    float64(cfg.InitCwndPkts * maxPacketPayload),
		pools:   cfg.Pools,
	}
	if c.pools == nil {
		// Private arena: recycling stays per-connection, matching the
		// pre-arena behavior for standalone endpoints.
		c.pools = &Pools{}
	}
	c.ssthresh = float64(cfg.MaxCwndPkts * maxPacketPayload)
	c.ptoTimer = c.sched.NewTimer(c.onPTO)
	c.traceID = cfg.Trace.ConnID()
	return c
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() simnet.Addr { return c.remote }

// ServerName returns the SNI (known to servers after the ClientHello).
func (c *Conn) ServerName() string { return c.serverName }

// Established reports whether stream data may flow.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Resumed reports whether the connection resumed from a session token.
func (c *Conn) Resumed() bool { return c.resumed }

// UsedZeroRTT reports whether 0-RTT application data was enabled.
func (c *Conn) UsedZeroRTT() bool { return c.zeroRTT }

// HandshakeDuration returns the time from Dial until stream data could
// first be sent (0 for 0-RTT connections).
func (c *Conn) HandshakeDuration() time.Duration { return c.hsDone - c.hsStart }

// SmoothedRTT returns the current SRTT estimate (zero before any sample).
func (c *Conn) SmoothedRTT() time.Duration { return c.srtt }

// Cwnd returns the congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// Stats returns a snapshot of connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// SetStreamFunc registers the callback for peer-initiated streams.
func (c *Conn) SetStreamFunc(fn func(*Stream)) { c.streamFn = fn }

// SetCloseFunc registers the connection termination callback. err is nil
// for a clean peer close.
func (c *Conn) SetCloseFunc(fn func(error)) { c.closeFn = fn }

// OpenStream creates a new outgoing stream.
func (c *Conn) OpenStream() *Stream {
	s := c.pools.newStream(c, c.nextStreamID)
	c.nextStreamID += 4
	c.streams[s.id] = s
	c.streamOrder = append(c.streamOrder, s.id)
	c.stats.StreamsOpened++
	return s
}

// Migrate moves a client connection to a fresh local port — the
// simulator's stand-in for an address change (Wi-Fi to cellular). The
// server keeps routing by connection ID (RFC 9000 §9) and updates its
// view of the peer path; packets in flight to the old port are lost and
// recover through normal loss detection.
func (c *Conn) Migrate() {
	if !c.isClient || c.state == stateClosed {
		return
	}
	c.host.Unbind(c.localPort)
	c.localPort = c.host.BindEphemeral(func(pkt simnet.Packet) {
		p, ok := pkt.Payload.(*packet)
		if !ok {
			return
		}
		c.handlePacket(p)
	})
	c.migrations++
	// Elicit a server response from the new path promptly.
	c.ackQueued = true
	c.trySend()
}

// Migrations reports how many address changes the client performed.
func (c *Conn) Migrations() int { return c.migrations }

// Close sends CONNECTION_CLOSE (clean) and releases all state.
func (c *Conn) Close() { c.shutdown(nil) }

// Abort sends CONNECTION_CLOSE (error) and releases all state without
// invoking local callbacks.
func (c *Conn) Abort() { c.shutdown(ErrAborted) }

func (c *Conn) shutdown(err error) {
	if c.state == stateClosed {
		return
	}
	// Best-effort close notification, bypassing congestion control.
	p := newPacket(c.pools)
	p.pn = c.nextPN
	p.frames = []frame{&closeFrame{err: err}}
	c.transmit(p)
	c.nextPN++
	c.teardown()
}

// closeProbeLimit bounds CONNECTION_CLOSE re-sends after a PTO abort.
const closeProbeLimit = 12

// startCloseProbes re-sends CONNECTION_CLOSE with exponential spacing
// after an established connection aborts on probe-timeout exhaustion.
// The peer may be mid-receive with nothing in flight, so a single close
// lost to the same burst or outage that killed the connection would
// strand it forever. Real QUIC bounds this with the transport idle
// timeout; the simulator arms no timers on healthy paths, so the abort
// itself carries the persistence.
func (c *Conn) startCloseProbes() {
	gap := c.cfg.PTOInit
	n := 0
	var fire func()
	fire = func() {
		p := newPacket(c.pools)
		p.pn = c.nextPN
		p.frames = []frame{&closeFrame{err: ErrTimeout}}
		c.nextPN++
		c.transmit(p)
		n++
		if n >= closeProbeLimit {
			return
		}
		c.sched.After(gap, fire)
		gap *= 2
		if gap > c.cfg.PTOMax {
			gap = c.cfg.PTOMax
		}
	}
	fire()
}

func (c *Conn) teardown() {
	c.state = stateClosed
	c.ptoTimer.Release()
	c.ptoTimer = nil
	if c.issuedToken != 0 && c.scfg.Sessions != nil {
		// Cache the path's cwnd for bandwidth resumption.
		c.scfg.Sessions.storeCwnd(c.issuedToken, c.cwnd)
	}
	if c.isClient {
		c.host.Unbind(c.localPort)
	}
	if c.endpoint != nil {
		c.endpoint.remove(c.remote, c.remotePort)
	}
	// Quarantine the connection's streams for reuse after the next
	// visit-boundary Rewind. Holds still counted by c.sent / c.sendQ are
	// dropped with the records below: those streamFrames leak to the
	// collector rather than the pool, which is the safe direction.
	for _, s := range c.streams {
		c.pools.retire(s)
	}
	c.sent = nil
	c.sendQ = nil
}

func (c *Conn) fail(err error) {
	if c.state == stateClosed {
		return
	}
	c.teardown()
	if c.closeFn != nil {
		c.closeFn(err)
	}
}

func (c *Conn) becomeEstablished() {
	if c.state != stateHandshaking {
		return
	}
	c.state = stateEstablished
	c.hsDone = c.sched.Now()
	if c.zeroRTT {
		c.hsDone = c.hsStart
	}
	c.cfg.Trace.QUICHandshakeDone(c.hsDone, c.traceID, c.isClient, c.resumed, c.zeroRTT)
	if c.onEstablished != nil {
		c.onEstablished(c)
	}
	c.trySend()
}

// --- sending ---

func (c *Conn) transmit(p *packet) {
	// Both directions stamp the connection ID (0 until the handshake
	// assigns one): the server routes on it after migration, and both
	// peers use it to reject stale traffic from a previous incarnation
	// of a recycled ephemeral port.
	p.dcid = c.cid
	c.stats.PacketsSent++
	size := p.wireSize()
	c.stats.BytesSent += int64(size)
	c.cfg.Trace.QUICPacketSent(c.sched.Now(), c.traceID, int64(p.pn), size)
	c.host.Send(c.localPort, c.remote, c.remotePort, size, p)
}

// canSendStreamData reports whether stream frames may be emitted now:
// after establishment, or during 0-RTT.
func (c *Conn) canSendStreamData() bool {
	return c.state == stateEstablished || (c.isClient && c.zeroRTT && c.state == stateHandshaking)
}

// trySend drains control frames and stream data into packets, respecting
// the congestion window. ACK-only packets bypass the window.
func (c *Conn) trySend() {
	if c.state == stateClosed {
		return
	}
	for {
		if float64(c.bytesInFlight) >= c.cwnd {
			break
		}
		p := c.buildPacket()
		if p == nil {
			break
		}
		c.sendPacket(p)
	}
	// Flush a pending ACK even when nothing else fit.
	if c.ackQueued {
		c.ackQueued = false
		p := newAckPacket(c.pools, &c.recvd)
		p.pn = c.nextPN
		c.transmit(p)
		c.nextPN++
	}
}

func (c *Conn) buildAck() *ackFrame {
	if n := len(c.pools.acks); n > 0 {
		af := c.pools.acks[n-1]
		c.pools.acks = c.pools.acks[:n-1]
		af.ranges = c.recvd.snapshotInto(af.ranges[:0], 32)
		return af
	}
	return &ackFrame{ranges: c.recvd.snapshot(32)}
}

// buildPacket assembles the next packet: a pending ACK rides along, then
// queued control/retransmit frames, then fresh stream data round-robin.
// Returns nil when there is nothing ack-eliciting to send.
func (c *Conn) buildPacket() *packet {
	var frames []frame
	if n := len(c.pools.frames); n > 0 {
		frames = c.pools.frames[n-1][:0]
		c.pools.frames = c.pools.frames[:n-1]
	}
	budget := maxPacketPayload
	eliciting := false

	var ack *ackFrame
	if c.ackQueued {
		ack = c.buildAck()
		frames = append(frames, ack)
		budget -= ack.wireSize()
	}

	for len(c.sendQ) > 0 {
		f := c.sendQ[0]
		if f.wireSize() > budget && eliciting {
			break
		}
		c.sendQ = c.sendQ[1:]
		frames = append(frames, f)
		budget -= f.wireSize()
		eliciting = true
		if budget <= 0 {
			break
		}
	}

	if budget > streamFrameHeader && c.canSendStreamData() {
		for budget > streamFrameHeader {
			sf := c.pullStreamFrame(budget - streamFrameHeader)
			if sf == nil {
				break
			}
			frames = append(frames, sf)
			budget -= sf.wireSize()
			eliciting = true
		}
	}

	if !eliciting {
		// Nothing to send: recycle the speculative ACK (the trySend
		// flush path emits a pooled ack-only packet instead) and the
		// frames array.
		if ack != nil {
			c.pools.acks = append(c.pools.acks, ack)
		}
		if cap(frames) > 0 {
			c.pools.frames = append(c.pools.frames, frames[:0])
		}
		return nil
	}
	if c.ackQueued {
		c.ackQueued = false
	}
	p := newPacket(c.pools)
	p.pn = c.nextPN
	p.frames = frames
	c.nextPN++
	return p
}

// pullStreamFrame extracts up to maxData bytes from the next stream in
// round-robin order with pending data (or a bare FIN).
func (c *Conn) pullStreamFrame(maxData int) *streamFrame {
	n := len(c.streamOrder)
	for i := 0; i < n; i++ {
		idx := (c.rrIndex + i) % n
		s := c.streams[c.streamOrder[idx]]
		if s == nil {
			continue
		}
		avail := len(s.pend) - s.pendOff
		if avail == 0 && !(s.finQueued && !s.finSent) {
			continue
		}
		c.rrIndex = (idx + 1) % n
		take := avail
		if take > maxData {
			take = maxData
		}
		// Zero-copy: alias the pending buffer with a capped capacity.
		// Later appends to s.pend only ever write past the current
		// length, so the frame's window is never rewritten even though
		// it may share the backing array.
		data := s.pend[s.pendOff : s.pendOff+take : s.pendOff+take]
		s.pendOff += take
		sf := c.pools.newStreamFrame(s.id, s.sendOff, data)
		s.sendOff += uint64(take)
		if s.finQueued && s.pendOff == len(s.pend) {
			sf.fin = true
			s.finSent = true
		}
		return sf
	}
	return nil
}

func (c *Conn) sendPacket(p *packet) {
	if p.isAckEliciting() {
		sp := c.newSentPacket()
		sp.pn = p.pn
		sp.frames = p.frames
		sp.size = p.wireSize()
		sp.sentAt = c.sched.Now()
		sp.ackEliciting = true
		c.sent = append(c.sent, sp)
		c.bytesInFlight += sp.size
		c.armPTO()
	}
	c.transmit(p)
}

// newSentPacket takes a retired record from the free list, or allocates.
func (c *Conn) newSentPacket() *sentPacket {
	if n := len(c.pools.sents); n > 0 {
		sp := c.pools.sents[n-1]
		c.pools.sents = c.pools.sents[:n-1]
		return sp
	}
	return &sentPacket{}
}

// retireAcked recycles an acked sentPacket: the packet was delivered and
// processed, so its frames array and any embedded ackFrame have no other
// holder. Stream frame structs drop this record's hold and recycle once
// the count drains — a PTO probe may have copied their pointers into
// another in-flight record, which keeps its own hold. Control frames
// (hello/finished/close) are never pooled.
func (c *Conn) retireAcked(sp *sentPacket) {
	for i, f := range sp.frames {
		switch f := f.(type) {
		case *ackFrame:
			c.pools.acks = append(c.pools.acks, f)
		case *streamFrame:
			c.pools.releaseHold(f)
		}
		sp.frames[i] = nil
	}
	c.pools.frames = append(c.pools.frames, sp.frames[:0])
	sp.frames = nil
	c.pools.sents = append(c.pools.sents, sp)
}

// --- loss detection & congestion ---

func (c *Conn) ptoDuration() time.Duration {
	var base time.Duration
	if c.hasRTT {
		base = c.srtt + 4*c.rttvar
		if base < c.cfg.PTOMin {
			base = c.cfg.PTOMin
		}
	} else {
		base = c.cfg.PTOInit
	}
	for i := 0; i < c.ptoCount; i++ {
		base *= 2
		if base >= c.cfg.PTOMax {
			return c.cfg.PTOMax
		}
	}
	return base
}

func (c *Conn) armPTO() {
	if c.ptoTimer == nil {
		// Teardown released the timer (see teardown). A stray re-arm —
		// e.g. from an establishment callback that closed the connection
		// — must be a no-op, not a nil dereference.
		return
	}
	if len(c.sent) == 0 {
		c.ptoTimer.Stop()
		return
	}
	c.ptoTimer.Reset(c.ptoDuration())
}

func (c *Conn) onPTO() {
	if c.state == stateClosed {
		return
	}
	if c.ptoCount == 0 {
		c.probeStart = c.sched.Now()
	}
	c.ptoCount++
	// Exhausting MaxPTOs alone is not fatal: the backoff base can be as
	// small as PTOMin, so the count must be paired with a real-time
	// floor (ProbeTimeout) before the connection gives up — this is what
	// lets a connection survive a multi-second blackout.
	if c.ptoCount > c.cfg.MaxPTOs && c.sched.Now()-c.probeStart >= c.cfg.ProbeTimeout {
		if c.cfg.Recovery != nil {
			c.cfg.Recovery.ConnFailures++
		}
		c.cfg.Trace.QUICConnFail(c.sched.Now(), c.traceID, ErrTimeout.Error())
		wasEstablished := c.state == stateEstablished
		c.fail(ErrTimeout)
		if wasEstablished {
			c.startCloseProbes()
		}
		return
	}
	c.stats.PTOs++
	if c.cfg.Recovery != nil {
		c.cfg.Recovery.ProbeFires++
	}
	c.cfg.Trace.QUICPTOFire(c.sched.Now(), c.traceID, c.ptoCount)
	// Probe: retransmit the oldest unacked ack-eliciting packet's
	// frames in a fresh packet, bypassing the congestion window.
	if len(c.sent) > 0 {
		var frames []frame
		if n := len(c.pools.frames); n > 0 {
			frames = c.pools.frames[n-1][:0]
			c.pools.frames = c.pools.frames[:n-1]
		}
		frames = appendRetransmittable(frames, c.sent[0].frames)
		// The probe record takes an additional hold on each copied
		// stream frame: the original record keeps its own, and either
		// may retire first.
		for _, f := range frames {
			if sf, ok := f.(*streamFrame); ok {
				sf.holds++
			}
		}
		if len(frames) > 0 {
			p := newPacket(c.pools)
			p.pn = c.nextPN
			p.frames = frames
			c.nextPN++
			sp := c.newSentPacket()
			sp.pn = p.pn
			sp.frames = p.frames
			sp.size = p.wireSize()
			sp.sentAt = c.sched.Now()
			sp.ackEliciting = true
			c.sent = append(c.sent, sp)
			c.bytesInFlight += sp.size
			c.transmit(p)
		} else if cap(frames) > 0 {
			c.pools.frames = append(c.pools.frames, frames[:0])
		}
	}
	if c.ptoCount >= 2 {
		// Persistent-congestion-lite: collapse to the minimum window.
		c.cwnd = 2 * maxPacketPayload
	}
	c.armPTO()
}

// appendRetransmittable appends frames to dst, filtering out ACK and
// CLOSE frames, which are never retransmitted as-is.
func appendRetransmittable(dst, frames []frame) []frame {
	for _, f := range frames {
		switch f.(type) {
		case *ackFrame, *closeFrame:
		default:
			dst = append(dst, f)
		}
	}
	return dst
}

func (c *Conn) handleAck(f *ackFrame) {
	covered := func(pn uint64) bool {
		for _, r := range f.ranges {
			if r.lo <= pn && pn <= r.hi {
				return true
			}
		}
		return false
	}

	// c.sent is ordered by pn, so a single in-place partition pass
	// processes newly acked packets in pn order — the order the old
	// map+sort implementation produced — without collecting, sorting,
	// or iterating a map.
	var largest *sentPacket
	keep := c.sent[:0]
	for _, sp := range c.sent {
		if !covered(sp.pn) {
			keep = append(keep, sp)
			continue
		}
		largest = sp // pn increases along the slice: last covered = max
		c.bytesInFlight -= sp.size
		// Congestion window growth per acked bytes.
		if c.cwnd < c.ssthresh {
			c.cwnd += float64(sp.size) // slow start
		} else {
			c.cwnd += maxPacketPayload * float64(sp.size) / c.cwnd
		}
		// Recycle now; pn and sentAt stay readable through largest until
		// the first post-loop send reuses the record.
		c.retireAcked(sp)
	}
	if largest == nil {
		return
	}
	for i := len(keep); i < len(c.sent); i++ {
		c.sent[i] = nil
	}
	c.sent = keep
	if max := float64(c.cfg.MaxCwndPkts * maxPacketPayload); c.cwnd > max {
		c.cwnd = max
	}
	c.rttSample(c.sched.Now() - largest.sentAt)
	if c.ptoCount >= 2 && c.cfg.Recovery != nil {
		// Progress after ≥2 consecutive probe fires: the connection rode
		// out a blackout rather than an isolated drop.
		c.cfg.Recovery.OutageCrossings++
	}
	c.ptoCount = 0

	// Packet-threshold loss detection: pn+threshold is increasing along
	// the ordered slice, so lost packets form a prefix.
	largestAcked := largest.pn
	lost := 0
	for lost < len(c.sent) && c.sent[lost].pn+c.cfg.ReorderThreshold <= largestAcked {
		lost++
	}
	c.cfg.Trace.QUICAck(c.sched.Now(), c.traceID, int64(largestAcked), len(f.ranges), lost)
	for _, sp := range c.sent[:lost] {
		c.bytesInFlight -= sp.size
		c.stats.PacketsDeclaredLost++
		if c.cfg.Recovery != nil {
			c.cfg.Recovery.PacketsDeclaredLost++
		}
		c.cfg.Trace.QUICPacketLost(c.sched.Now(), c.traceID, int64(sp.pn))
		c.sendQ = appendRetransmittable(c.sendQ, sp.frames)
		if sp.pn >= c.recoveryStart {
			// One cwnd reduction per recovery epoch.
			c.ssthresh = c.cwnd / 2
			if min := float64(2 * maxPacketPayload); c.ssthresh < min {
				c.ssthresh = min
			}
			c.cwnd = c.ssthresh
			c.recoveryStart = c.nextPN
		}
		// The record retires, but its frames array may still be aliased
		// by a reorder-delayed wire copy: recycle the struct only. The
		// stream-frame holds it owned transferred to sendQ above, so
		// counts are unchanged.
		sp.frames = nil
		c.pools.sents = append(c.pools.sents, sp)
	}
	if lost > 0 {
		n := copy(c.sent, c.sent[lost:])
		for i := n; i < len(c.sent); i++ {
			c.sent[i] = nil
		}
		c.sent = c.sent[:n]
	}

	c.armPTO()
	c.trySend()
}

func (c *Conn) rttSample(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if !c.hasRTT {
		c.hasRTT = true
		c.srtt = sample
		c.rttvar = sample / 2
		return
	}
	d := c.srtt - sample
	if d < 0 {
		d = -d
	}
	c.rttvar = (3*c.rttvar + d) / 4
	c.srtt = (7*c.srtt + sample) / 8
}

// --- receiving ---

func (c *Conn) handlePacket(p *packet) {
	if c.state == stateClosed {
		return
	}
	if p.dcid != 0 && c.cid != 0 && p.dcid != c.cid {
		// A previous user of this 4-tuple (the ephemeral port was
		// recycled): the packet — often a late CONNECTION_CLOSE probe
		// from the dead connection — must not touch this one.
		return
	}
	c.stats.PacketsReceived++
	if !c.recvd.add(p.pn) {
		// Duplicate packet number. Retransmissions always use fresh
		// packet numbers, so a genuine duplicate only ever arrives
		// carrying this connection's ID; a dcid-less "duplicate" is a
		// stale incarnation's packet number colliding with history —
		// re-ACKing it would falsely acknowledge data the peer never
		// delivered here.
		if p.dcid != 0 && p.dcid == c.cid {
			c.cfg.Trace.QUICPacketRecv(c.sched.Now(), c.traceID, int64(p.pn), true)
			c.ackQueued = true
			c.trySend()
		}
		return
	}
	c.cfg.Trace.QUICPacketRecv(c.sched.Now(), c.traceID, int64(p.pn), false)
	for _, f := range p.frames {
		switch f := f.(type) {
		case *clientHelloFrame:
			c.handleClientHello(f)
		case *serverHelloFrame:
			c.handleServerHello(f)
		case finishedFrame:
			// Confirms the client reached 1-RTT; nothing further.
		case *streamFrame:
			c.handleStreamFrame(f)
		case *ackFrame:
			c.handleAck(f)
		case *closeFrame:
			c.teardown()
			if c.closeFn != nil {
				c.closeFn(f.err)
			}
			return
		}
		if c.state == stateClosed {
			return
		}
	}
	if p.isAckEliciting() {
		c.ackQueued = true
	}
	c.trySend()
}

func (c *Conn) handleClientHello(f *clientHelloFrame) {
	if c.isClient {
		return
	}
	if c.chSeen {
		return // duplicate via client probe; our SH PTO covers it
	}
	c.chSeen = true
	c.chNonce = f.nonce
	c.serverName = f.serverName
	resumed := c.scfg.Sessions != nil && c.scfg.Sessions.valid(f.token)
	c.resumed = resumed
	c.zeroRTT = resumed && f.zeroRTT
	if f.zeroRTT {
		// The server's 0-RTT decision: early data rides on a valid
		// resumption token or is rejected with the handshake falling
		// back to 1-RTT.
		c.cfg.Trace.QUICZeroRTT(c.sched.Now(), c.traceID, c.zeroRTT)
	}
	if resumed {
		// Bandwidth resumption: restart from the cached cwnd
		// (capped), skipping slow start on the validated path.
		if cached := c.scfg.Sessions.cachedCwnd(f.token); cached > c.cwnd {
			if max := float64(c.cfg.MaxCwndPkts*maxPacketPayload) / 2; cached > max {
				cached = max
			}
			c.cwnd = cached
			c.ssthresh = cached
		}
	}
	if c.endpoint != nil && c.endpoint.accept != nil {
		c.endpoint.accept(c)
	}
	cpu := c.scfg.HandshakeCPU
	if resumed {
		cpu /= 2
	}
	respond := func() {
		if c.state == stateClosed {
			return
		}
		sh := &serverHelloFrame{resumed: resumed, cid: c.cid}
		if c.scfg.Sessions != nil {
			sh.newToken = c.scfg.Sessions.issue()
			c.issuedToken = sh.newToken
		}
		c.sendQ = append(c.sendQ, sh)
		c.becomeEstablished()
	}
	if cpu > 0 {
		c.sched.After(cpu, respond)
	} else {
		respond()
	}
}

func (c *Conn) handleServerHello(f *serverHelloFrame) {
	if !c.isClient || c.shSeen {
		return
	}
	c.shSeen = true
	c.resumed = f.resumed
	c.cid = f.cid
	if f.newToken != 0 && c.ccfg.Tokens != nil {
		c.ccfg.Tokens.Put(Token{ID: f.newToken, ServerName: c.ccfg.ServerName, IssuedAt: c.sched.Now()})
	}
	c.sendQ = append(c.sendQ, finishedFrame{})
	cpu := c.ccfg.HandshakeCPU
	if c.resumed {
		cpu /= 2
	}
	finish := func() {
		if c.state == stateClosed {
			return
		}
		c.becomeEstablished()
		c.trySend()
	}
	if cpu > 0 {
		c.sched.After(cpu, finish)
	} else {
		finish()
	}
}

func (c *Conn) handleStreamFrame(f *streamFrame) {
	s, ok := c.streams[f.id]
	if !ok {
		s = c.pools.newStream(c, f.id)
		c.streams[f.id] = s
		c.streamOrder = append(c.streamOrder, f.id)
		c.stats.StreamsAccepted++
		if c.streamFn != nil {
			c.streamFn(s)
		}
	}
	s.receive(f)
}
