package quicsim

import "time"

// Stream is an ordered byte stream multiplexed on a Conn. Data on one
// stream is delivered in order; loss on one stream never blocks another —
// the transport-level property behind HTTP/3's HoL-blocking immunity.
type Stream struct {
	conn *Conn
	id   uint64

	// Send side. pend accumulates every byte written on the stream and
	// pendOff marks the pulled prefix — an explicit offset rather than
	// re-slicing, so a pooled stream rewinds to the full backing array
	// (in-flight frames alias windows of it until the visit drains).
	pend      []byte
	pendOff   int
	sendOff   uint64
	finQueued bool
	finSent   bool

	// Receive side.
	rcvOff  uint64
	chunks  map[uint64][]byte
	finOff  uint64
	hasFin  bool
	gotEOF  bool
	dataFn  func([]byte)
	finFn   func()
	nRecved int64

	// Stall bookkeeping, maintained only when tracing is enabled: a
	// stall is an interval during which out-of-order data is buffered
	// waiting for an earlier gap to fill. Purely observational.
	holActive bool
	holStart  time.Duration
}

// ID returns the stream identifier.
func (s *Stream) ID() uint64 { return s.id }

// Conn returns the owning connection.
func (s *Stream) Conn() *Conn { return s.conn }

// SetDataFunc registers the in-order delivery callback for this stream.
func (s *Stream) SetDataFunc(fn func([]byte)) { s.dataFn = fn }

// SetFinFunc registers the end-of-stream callback (peer FIN received and
// all data delivered).
func (s *Stream) SetFinFunc(fn func()) { s.finFn = fn }

// Write queues p for transmission on this stream.
func (s *Stream) Write(p []byte) {
	if s.conn.state == stateClosed || s.finQueued {
		return
	}
	if need := len(s.pend) + len(p); need > cap(s.pend) {
		s.pend = s.conn.pools.growPend(s.pend, need)
	}
	s.pend = append(s.pend, p...)
	s.conn.trySend()
}

// CloseWrite queues a FIN after any pending data.
func (s *Stream) CloseWrite() {
	if s.conn.state == stateClosed || s.finQueued {
		return
	}
	s.finQueued = true
	s.conn.trySend()
}

// BytesReceived reports in-order bytes delivered so far.
func (s *Stream) BytesReceived() int64 { return s.nRecved }

// receive ingests a (possibly out-of-order, possibly duplicate) frame.
func (s *Stream) receive(f *streamFrame) {
	if f.fin {
		s.hasFin = true
		s.finOff = f.off + uint64(len(f.data))
	}
	end := f.off + uint64(len(f.data))
	if end > s.rcvOff && len(f.data) > 0 {
		data := f.data
		off := f.off
		if off < s.rcvOff {
			data = data[s.rcvOff-off:]
			off = s.rcvOff
		}
		if prev, ok := s.chunks[off]; !ok || len(data) > len(prev) {
			s.chunks[off] = data
		}
	}
	s.advance()
}

func (s *Stream) advance() {
	for {
		// Pick the LOWEST eligible chunk, not any map-order one: with
		// loss and reordering, trimming can leave several overlapping
		// chunks at or below rcvOff, and the choice decides delivery
		// granularity — map iteration would make the trace
		// nondeterministic.
		var best uint64
		found := false
		for off := range s.chunks {
			if off > s.rcvOff {
				continue
			}
			if !found || off < best {
				best = off
				found = true
			}
		}
		if !found {
			break
		}
		off := best
		data := s.chunks[off]
		end := off + uint64(len(data))
		delete(s.chunks, off)
		if end <= s.rcvOff {
			continue // stale duplicate
		}
		chunk := data[s.rcvOff-off:]
		s.rcvOff = end
		s.nRecved += int64(len(chunk))
		s.conn.stats.BytesDelivered += int64(len(chunk))
		if s.dataFn != nil {
			s.dataFn(chunk)
		}
	}
	if s.hasFin && !s.gotEOF && s.rcvOff >= s.finOff {
		s.gotEOF = true
		if s.finFn != nil {
			s.finFn()
		}
	}
	if s.conn.cfg.Trace != nil {
		switch {
		case !s.holActive && len(s.chunks) > 0:
			s.holActive = true
			s.holStart = s.conn.sched.Now()
			buffered := 0
			for _, data := range s.chunks {
				buffered += len(data)
			}
			s.conn.cfg.Trace.QUICStallStart(s.holStart, s.conn.traceID, s.id, buffered)
		case s.holActive && len(s.chunks) == 0:
			s.holActive = false
			now := s.conn.sched.Now()
			s.conn.cfg.Trace.QUICStallEnd(now, s.conn.traceID, s.id, now-s.holStart)
		}
	}
}
