package quicsim

// Pools is a per-universe arena for the transport's per-packet and
// per-stream records: packets, frames arrays, sentPacket and ackFrame
// records, streamFrame structs, and Stream objects. One simulation
// universe shares a single Pools across all of its endpoints; every
// endpoint runs on the universe's one scheduler goroutine, so reuse
// needs no locking. Free lists persist across visits — a warm shard
// replays each visit out of the same allocation footprint.
//
// A nil *Pools is valid everywhere it is accepted and falls back to the
// process-global sync.Pools (packets) or plain allocation (records),
// preserving standalone-endpoint behavior in tests.
//
// Recycling discipline (see DESIGN.md §4.17): packets recycle via
// simnet's Release after delivery or drop; frames arrays, ackFrames and
// sentPacket records recycle on definitive ACK retirement only;
// streamFrame structs are reference-counted (one hold per in-flight
// record) because a PTO probe may copy a frame pointer into a second
// record; Streams retire at connection teardown but are quarantined on
// a retired list until the visit-boundary Rewind, because scheduled
// application callbacks may still touch them until the scheduler drains.
// maxPooledPend caps the send-buffer capacity a pooled Stream retains
// across visits.
const maxPooledPend = 4 << 20

// Pend-buffer size classes: powers of two from 4KB to 8MB. Growth always
// routes through growPend, so every pooled pend array has an exact class
// capacity.
const (
	minPendBits = 12 // 4KB
	maxPendBits = 23 // 8MB
	pendClasses = maxPendBits - minPendBits + 1
)

type Pools struct {
	packets []*packet
	ackPkts []*packet
	frames  [][]frame
	sents   []*sentPacket
	acks    []*ackFrame
	sframes []*streamFrame
	streams []*Stream
	retired []*Stream

	pendBufs     [pendClasses][][]byte
	retiredPends [][]byte
}

// pendClass maps a capacity to its class index, or -1 when it is not an
// exact class size.
func pendClass(c int) int {
	if c < 1<<minPendBits || c > 1<<maxPendBits || c&(c-1) != 0 {
		return -1
	}
	idx := 0
	for s := 1 << minPendBits; s < c; s <<= 1 {
		idx++
	}
	return idx
}

// growPend returns a buffer with the contents of buf and capacity at
// least need, amortizing growth by at least doubling. The outgrown array
// is quarantined until Rewind, not freed: in-flight stream frames alias
// zero-copy windows of it and keep reading until the scheduler drains.
// With a nil Pools it degrades to plain doubling allocation.
func (pl *Pools) growPend(buf []byte, need int) []byte {
	newCap := 1 << minPendBits
	if c := cap(buf); c*2 > newCap {
		newCap = c * 2
	}
	for newCap < need {
		newCap *= 2
	}
	var nb []byte
	if cls := pendClass(newCap); pl != nil && cls >= 0 {
		if lst := pl.pendBufs[cls]; len(lst) > 0 {
			nb = lst[len(lst)-1][:0]
			lst[len(lst)-1] = nil
			pl.pendBufs[cls] = lst[:len(lst)-1]
		}
	}
	if nb == nil {
		nb = make([]byte, 0, newCap)
	}
	nb = nb[:len(buf)]
	copy(nb, buf)
	if pl != nil && cap(buf) > 0 {
		pl.retiredPends = append(pl.retiredPends, buf[:0])
	}
	return nb
}

func (pl *Pools) newStreamFrame(id, off uint64, data []byte) *streamFrame {
	if pl == nil {
		return &streamFrame{id: id, off: off, data: data, holds: 1}
	}
	if n := len(pl.sframes); n > 0 {
		sf := pl.sframes[n-1]
		pl.sframes = pl.sframes[:n-1]
		sf.id, sf.off, sf.data, sf.fin, sf.holds = id, off, data, false, 1
		return sf
	}
	return &streamFrame{id: id, off: off, data: data, holds: 1}
}

// releaseHold drops one record's hold on sf and recycles the struct once
// no in-flight record references it. The data alias is dropped at
// recycle time; the bytes themselves belong to the sending stream.
func (pl *Pools) releaseHold(sf *streamFrame) {
	sf.holds--
	if sf.holds > 0 || pl == nil {
		return
	}
	sf.data = nil
	pl.sframes = append(pl.sframes, sf)
}

// newStream returns a reset Stream bound to c. The chunks map and the
// pend buffer are retained across reuses.
func (pl *Pools) newStream(c *Conn, id uint64) *Stream {
	if pl != nil {
		if n := len(pl.streams); n > 0 {
			s := pl.streams[n-1]
			pl.streams[n-1] = nil
			pl.streams = pl.streams[:n-1]
			s.conn = c
			s.id = id
			return s
		}
	}
	return &Stream{conn: c, id: id, chunks: make(map[uint64][]byte)}
}

// retire quarantines a dead connection's stream until Rewind. Pending
// application callbacks (e.g. a server response scheduled before the
// close) may still call Write/CloseWrite on it; those become no-ops on
// the closed conn, which requires the struct to stay intact until the
// scheduler has provably drained.
func (pl *Pools) retire(s *Stream) {
	if pl == nil {
		return
	}
	pl.retired = append(pl.retired, s)
}

// Rewind promotes retired streams to the free list. Callers must only
// invoke it at a visit boundary: the scheduler has drained, so no wire
// copy aliases any pend buffer and no callback can reach a retired
// stream again.
func (pl *Pools) Rewind() {
	if pl == nil {
		return
	}
	for _, s := range pl.retired {
		pend := s.pend[:0]
		if cap(pend) > maxPooledPend {
			// Heavy-tailed bodies: keep the pool's per-stream footprint
			// bounded rather than retaining the largest body ever sent.
			pend = nil
		}
		chunks := s.chunks
		clear(chunks)
		*s = Stream{pend: pend, chunks: chunks}
	}
	pl.streams = append(pl.streams, pl.retired...)
	clearStreams(pl.retired)
	pl.retired = pl.retired[:0]
	for i, buf := range pl.retiredPends {
		if cls := pendClass(cap(buf)); cls >= 0 {
			pl.pendBufs[cls] = append(pl.pendBufs[cls], buf)
		}
		pl.retiredPends[i] = nil
	}
	pl.retiredPends = pl.retiredPends[:0]
}

func clearStreams(s []*Stream) {
	for i := range s {
		s[i] = nil
	}
}
