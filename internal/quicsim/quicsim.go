// Package quicsim implements a miniature QUIC transport (RFC 9000/9002
// flavored) over internal/simnet: unique packet numbers with ACK ranges,
// packet-threshold and PTO-based loss detection, NewReno congestion
// control, a 1-RTT integrated handshake, session-token resumption with
// 0-RTT data, and — the property this reproduction leans on — multiple
// independent streams whose data is delivered per-stream in order but
// across streams without head-of-line blocking.
//
// Simplifications (documented in DESIGN.md): a single packet-number space
// (no separate Initial/Handshake/1-RTT spaces), no flow control windows,
// no connection migration, handshake messages as typed frames with
// realistic sizes rather than CRYPTO byte streams.
package quicsim

import (
	"errors"
	"sync"
	"time"

	"h3cdn/internal/simnet"
	"h3cdn/internal/trace"
)

// Wire overheads in bytes.
const (
	// packetOverhead charges IPv4 + UDP + QUIC short header + AEAD tag.
	packetOverhead = 54
	// maxPacketPayload is the frame budget per packet (QUIC's ~1200B
	// datagram minus headers).
	maxPacketPayload = 1200
	// streamFrameHeader approximates the STREAM frame header size.
	streamFrameHeader = 12

	sizeClientHello = 300
	sizeServerHello = 2900
	sizeFinished    = 36
	sizeAckFrame    = 25
	sizeCloseFrame  = 16
)

// Config tunes a QUIC endpoint. The zero value selects defaults.
type Config struct {
	// InitCwndPkts is the initial congestion window in packets.
	// Default 10.
	InitCwndPkts int
	// MaxCwndPkts caps the congestion window. Default 512.
	MaxCwndPkts int
	// PTOInit is the probe timeout before an RTT sample exists.
	// Default 1s.
	PTOInit time.Duration
	// PTOMin / PTOMax clamp the computed PTO. RFC 9002 uses timer
	// granularity (~1ms), not TCP's conservative RTO floor — fast tail
	// recovery is a genuine QUIC advantage. Defaults 2ms / 60s.
	PTOMin time.Duration
	PTOMax time.Duration
	// MaxPTOs bounds consecutive probe timeouts before the connection
	// errors out. Default 8.
	MaxPTOs int
	// ProbeTimeout is the minimum wall (virtual) time a connection keeps
	// probing before MaxPTOs consecutive expirations may fail it.
	// Failure requires both conditions: with a tiny SRTT the PTO base is
	// PTOMin (2ms), so MaxPTOs backoffs alone can exhaust in well under
	// a second — without this floor a multi-second blackout would kill
	// every active connection instead of being ridden out. Default 15s.
	ProbeTimeout time.Duration
	// ReorderThreshold is the packet-number distance that declares a
	// packet lost (RFC 9002 kPacketThreshold). Default 3.
	ReorderThreshold uint64
	// Pools, when non-nil, supplies the per-universe record arena shared
	// by every endpoint of one scheduler goroutine. Nil endpoints fall
	// back to process-global pools and plain allocation.
	Pools *Pools
	// Recovery, when non-nil, accumulates loss-recovery counters for
	// this endpoint (probe fires, declared losses, blackout crossings).
	// Increments happen in scheduler context; the pointer is typically
	// shared by every client connection of one simulated probe.
	Recovery *simnet.RecoveryStats
	// Trace, when non-nil, receives connection-level events (handshake,
	// packet tx/rx, ACK processing, PTO episodes, stream stalls).
	// Nil-safe: every emit is a no-op on a nil tracer.
	Trace *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.InitCwndPkts == 0 {
		c.InitCwndPkts = 10
	}
	if c.MaxCwndPkts == 0 {
		c.MaxCwndPkts = 512
	}
	if c.PTOInit == 0 {
		c.PTOInit = time.Second
	}
	if c.PTOMin == 0 {
		c.PTOMin = 2 * time.Millisecond
	}
	if c.PTOMax == 0 {
		c.PTOMax = 60 * time.Second
	}
	if c.MaxPTOs == 0 {
		c.MaxPTOs = 8
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 15 * time.Second
	}
	if c.ReorderThreshold == 0 {
		c.ReorderThreshold = 3
	}
	return c
}

// Errors reported through callbacks.
var (
	ErrTimeout   = errors.New("quicsim: connection timed out")
	ErrAborted   = errors.New("quicsim: connection aborted")
	ErrClosed    = errors.New("quicsim: connection closed by peer")
	ErrHandshake = errors.New("quicsim: handshake failed")
)

// --- frames ---

type frame interface {
	wireSize() int
	ackEliciting() bool
}

type clientHelloFrame struct {
	serverName string
	token      uint64 // 0 = none
	zeroRTT    bool
	// nonce distinguishes connection incarnations on a recycled
	// ephemeral port (the stand-in for the random client-chosen
	// connection ID in a real ClientHello). Dial stamps it with the
	// handshake start time: a port can host only one connection at a
	// time, so two incarnations on the same 4-tuple always differ.
	nonce uint64
}

func (f *clientHelloFrame) wireSize() int    { return sizeClientHello }
func (*clientHelloFrame) ackEliciting() bool { return true }

type serverHelloFrame struct {
	resumed  bool
	newToken uint64
	// cid is the connection ID the server assigns; the client echoes
	// it in every subsequent packet so the server can route packets
	// from a migrated address (RFC 9000 §9).
	cid uint64
}

func (f *serverHelloFrame) wireSize() int    { return sizeServerHello }
func (*serverHelloFrame) ackEliciting() bool { return true }

type finishedFrame struct{}

func (finishedFrame) wireSize() int      { return sizeFinished }
func (finishedFrame) ackEliciting() bool { return true }

type streamFrame struct {
	id   uint64
	off  uint64
	data []byte
	fin  bool
	// holds counts in-flight records (sentPacket or sendQ) referencing
	// this frame. A PTO probe copies frame pointers into a second record,
	// so the struct may only recycle when the count drains to zero — and
	// only through ACK retirement, never loss declaration (a declared
	// loss can be a reordering false positive whose wire copy is still in
	// flight; the hold it transferred to sendQ keeps the struct alive).
	holds int32
}

func (f *streamFrame) wireSize() int    { return streamFrameHeader + len(f.data) }
func (*streamFrame) ackEliciting() bool { return true }

type ackFrame struct {
	ranges []pnRange // descending, most recent first
}

func (f *ackFrame) wireSize() int    { return sizeAckFrame + 4*len(f.ranges) }
func (*ackFrame) ackEliciting() bool { return false }

type closeFrame struct {
	err error
}

func (f *closeFrame) wireSize() int    { return sizeCloseFrame }
func (*closeFrame) ackEliciting() bool { return false }

// packet is the on-wire QUIC datagram payload.
//
// Packet structs are pooled: each is sent exactly once, receivers retain
// stream-frame data slices but never the packet itself, and the network
// recycles the struct via Release after the handler returns. The frames
// slice is shared with the sender's sentPacket record for retransmission
// and is therefore never recycled — except for ACK-only packets, which
// bypass loss recovery entirely and keep a private reusable ackFrame
// attached across pool round-trips.
type packet struct {
	pn      uint64
	frames  []frame
	zeroRTT bool // sent as 0-RTT (before handshake confirmation)
	// dcid routes short-header packets to the server connection even
	// after the client's address changes (connection migration).
	dcid uint64
	// ackOnly marks frames as a private one-element slice holding a
	// private ackFrame, recycled together with the packet.
	ackOnly bool
	// pools, when non-nil, routes Release back to the originating
	// universe's arena instead of the process-global sync.Pools. Release
	// runs on the universe's scheduler goroutine, so the thread-confined
	// arena is safe.
	pools *Pools
}

var (
	pktPool = sync.Pool{New: func() any { return new(packet) }}
	ackPool = sync.Pool{New: func() any {
		return &packet{ackOnly: true, frames: []frame{&ackFrame{}}}
	}}
)

func newPacket(pl *Pools) *packet {
	if pl != nil {
		if n := len(pl.packets); n > 0 {
			p := pl.packets[n-1]
			pl.packets[n-1] = nil
			pl.packets = pl.packets[:n-1]
			return p
		}
		return &packet{pools: pl}
	}
	return pktPool.Get().(*packet)
}

// newAckPacket returns a pooled packet carrying a single ACK frame with
// ranges snapshotted from rs; the attached ackFrame and its range slice
// are reused across pool round-trips.
func newAckPacket(pl *Pools, rs *rangeSet) *packet {
	var p *packet
	if pl != nil {
		if n := len(pl.ackPkts); n > 0 {
			p = pl.ackPkts[n-1]
			pl.ackPkts[n-1] = nil
			pl.ackPkts = pl.ackPkts[:n-1]
		} else {
			p = &packet{ackOnly: true, frames: []frame{&ackFrame{}}, pools: pl}
		}
	} else {
		p = ackPool.Get().(*packet)
	}
	af := p.frames[0].(*ackFrame)
	af.ranges = rs.snapshotInto(af.ranges[:0], 32)
	return p
}

// Release implements simnet.Releasable.
func (p *packet) Release() {
	p.pn = 0
	p.zeroRTT = false
	p.dcid = 0
	if pl := p.pools; pl != nil {
		if p.ackOnly {
			pl.ackPkts = append(pl.ackPkts, p)
		} else {
			p.frames = nil
			pl.packets = append(pl.packets, p)
		}
		return
	}
	if p.ackOnly {
		ackPool.Put(p)
		return
	}
	// The frames slice is shared with a sentPacket (or belongs to a
	// one-shot control packet); drop the reference, never reuse it.
	p.frames = nil
	pktPool.Put(p)
}

func (p *packet) wireSize() int {
	n := packetOverhead
	for _, f := range p.frames {
		n += f.wireSize()
	}
	return n
}

func (p *packet) isAckEliciting() bool {
	for _, f := range p.frames {
		if f.ackEliciting() {
			return true
		}
	}
	return false
}

// ConnStats counts per-connection activity.
type ConnStats struct {
	PacketsSent         int64
	PacketsReceived     int64
	BytesSent           int64
	BytesDelivered      int64
	PacketsDeclaredLost int64
	PTOs                int64
	StreamsOpened       int64
	StreamsAccepted     int64
}
