package quicsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRangeSetMatchesReference: rangeSet must behave exactly like a set of
// integers under arbitrary insertion orders.
func TestRangeSetMatchesReference(t *testing.T) {
	f := func(raw []uint8) bool {
		var rs rangeSet
		ref := make(map[uint64]bool)
		for _, v := range raw {
			pn := uint64(v % 64) // force collisions and adjacency
			added := rs.add(pn)
			if added == ref[pn] {
				return false // add must report prior membership
			}
			ref[pn] = true
		}
		for pn := uint64(0); pn < 70; pn++ {
			if rs.contains(pn) != ref[pn] {
				return false
			}
		}
		// Ranges must be sorted, non-overlapping, non-adjacent.
		for i := 1; i < len(rs.ranges); i++ {
			if rs.ranges[i-1].hi+1 >= rs.ranges[i].lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamReassemblyAnyOrder: delivering stream frames in any order,
// with duplicates and overlaps, must reconstruct the exact byte stream.
func TestStreamReassemblyAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99)) //nolint:gosec
	for trial := 0; trial < 200; trial++ {
		payload := patterned(1 + rng.Intn(5000))

		// Chop into random frames.
		var frames []*streamFrame
		for off := 0; off < len(payload); {
			n := 1 + rng.Intn(700)
			if off+n > len(payload) {
				n = len(payload) - off
			}
			frames = append(frames, &streamFrame{
				id: 0, off: uint64(off), data: payload[off : off+n],
				fin: off+n == len(payload),
			})
			off += n
		}
		// Duplicate some frames (retransmissions).
		for i := 0; i < len(frames)/3; i++ {
			frames = append(frames, frames[rng.Intn(len(frames))])
		}
		rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })

		s := &Stream{conn: &Conn{stats: ConnStats{}}, chunks: make(map[uint64][]byte)}
		var got []byte
		finSeen := false
		s.SetDataFunc(func(p []byte) { got = append(got, p...) })
		s.SetFinFunc(func() { finSeen = true })
		for _, f := range frames {
			s.receive(f)
		}
		if !finSeen {
			t.Fatalf("trial %d: FIN not delivered", trial)
		}
		if len(got) != len(payload) {
			t.Fatalf("trial %d: got %d bytes, want %d", trial, len(got), len(payload))
		}
		for i := range got {
			if got[i] != payload[i] {
				t.Fatalf("trial %d: byte %d differs", trial, i)
			}
		}
	}
}
