package quicsim

import (
	"fmt"

	"h3cdn/internal/simnet"
)

type peerKey struct {
	addr simnet.Addr
	port uint16
}

// Endpoint is a server-side QUIC listener: it owns a UDP port and
// demultiplexes datagrams to per-peer connections.
type Endpoint struct {
	host    *simnet.Host
	port    uint16
	cfg     ServerConfig
	accept  func(*Conn)
	conns   map[peerKey]*Conn
	byCID   map[uint64]*Conn
	nextCID uint64
	closed  bool
}

// Listen binds a QUIC server endpoint on host:port. accept fires when a
// new connection's ClientHello is processed (its ServerName is known and
// 0-RTT stream data has not yet been delivered).
func Listen(host *simnet.Host, port uint16, cfg ServerConfig, accept func(*Conn)) (*Endpoint, error) {
	e := &Endpoint{
		host:    host,
		port:    port,
		cfg:     cfg,
		accept:  accept,
		conns:   make(map[peerKey]*Conn),
		byCID:   make(map[uint64]*Conn),
		nextCID: 1,
	}
	e.cfg.Config = cfg.Config.withDefaults()
	if err := host.Bind(port, e.handlePacket); err != nil {
		return nil, fmt.Errorf("quicsim: listen: %w", err)
	}
	return e, nil
}

// Close unbinds the port and aborts all live connections.
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.host.Unbind(e.port)
	for _, c := range e.conns {
		c.endpoint = nil
		c.Abort()
	}
	e.conns = make(map[peerKey]*Conn)
}

// ConnCount reports the number of tracked connections.
func (e *Endpoint) ConnCount() int { return len(e.conns) }

func (e *Endpoint) handlePacket(pkt simnet.Packet) {
	p, ok := pkt.Payload.(*packet)
	if !ok {
		return
	}
	key := peerKey{pkt.Src, pkt.SrcPort}
	c, ok := e.conns[key]
	if ok && p.dcid != 0 && p.dcid != c.cid {
		// The sender is a previous incarnation of this 4-tuple — the
		// client's ephemeral port was recycled and late packets from
		// the dead connection (close probes, delayed ACKs) are still
		// arriving. They must not reach the current connection.
		c, ok = nil, false
	}
	if ok && c.chSeen {
		if ch := clientHelloIn(p); ch != nil && ch.nonce != c.chNonce {
			// A fresh handshake on a 4-tuple whose previous owner never
			// closed cleanly (its CONNECTION_CLOSE was lost): retire the
			// stale connection silently and accept the new one below.
			c.teardown()
			c, ok = nil, false
		}
	}
	if !ok && p.dcid != 0 {
		// Connection migration: route by connection ID and adopt the
		// new peer path (RFC 9000 §9).
		if mc, found := e.byCID[p.dcid]; found && mc.state != stateClosed {
			delete(e.conns, peerKey{mc.remote, mc.remotePort})
			mc.remote = pkt.Src
			mc.remotePort = pkt.SrcPort
			e.conns[key] = mc
			c, ok = mc, true
		}
	}
	if !ok {
		if !hasClientHello(p) {
			// Unknown connection: stateless close so the peer
			// releases its state — unless the packet is itself a
			// close (avoid close loops).
			if !isCloseOnly(p) {
				reply := newPacket(e.cfg.Pools)
				reply.frames = []frame{&closeFrame{err: ErrAborted}}
				// Echo the sender's connection ID so only that (dead)
				// connection matches; a new conn on a recycled port
				// ignores the mismatched close.
				reply.dcid = p.dcid
				e.host.Send(e.port, pkt.Src, pkt.SrcPort, reply.wireSize(), reply)
			}
			return
		}
		c = newConn(e.host, e.cfg.Config)
		c.scfg = e.cfg
		c.remote = pkt.Src
		c.remotePort = pkt.SrcPort
		c.localPort = e.port
		c.endpoint = e
		c.hsStart = c.sched.Now()
		c.cid = e.nextCID
		e.nextCID++
		e.conns[key] = c
		e.byCID[c.cid] = c
	}
	c.handlePacket(p)
}

func (e *Endpoint) remove(addr simnet.Addr, port uint16) {
	if c, ok := e.conns[peerKey{addr, port}]; ok {
		delete(e.byCID, c.cid)
	}
	delete(e.conns, peerKey{addr, port})
}

func hasClientHello(p *packet) bool { return clientHelloIn(p) != nil }

// clientHelloIn returns the packet's ClientHello frame, if any.
func clientHelloIn(p *packet) *clientHelloFrame {
	for _, f := range p.frames {
		if ch, ok := f.(*clientHelloFrame); ok {
			return ch
		}
	}
	return nil
}

func isCloseOnly(p *packet) bool {
	for _, f := range p.frames {
		if _, ok := f.(*closeFrame); !ok {
			return false
		}
	}
	return len(p.frames) > 0
}
