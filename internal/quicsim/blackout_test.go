package quicsim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"h3cdn/internal/simnet"
)

// TestArmPTOAfterCloseIsNoOp is the satellite-2 nil-guard regression:
// teardown releases the PTO timer, so a stray re-arm or a PTO callback
// racing connection close must be a no-op, not a nil dereference.
func TestArmPTOAfterCloseIsNoOp(t *testing.T) {
	w := newWorld(t, time.Millisecond, 0, 0, 7)
	echoListen(t, w)
	var conn *Conn
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server"}, func(c *Conn) {
		conn = c
		c.Close()
	})
	w.run(t)
	if conn == nil {
		t.Fatal("connection never established")
	}
	// Both entry points after teardown: must not panic.
	conn.armPTO()
	conn.onPTO()
}

// TestBlackoutSurvivesBeyondMaxPTOs covers the PTO bugfix: with a tiny
// SRTT the backoff base clamps to PTOMin (2ms), so MaxPTOs consecutive
// expirations exhaust in ~1s of virtual time. A 3s blackout must not
// kill the connection — failure requires the ProbeTimeout real-time
// floor (default 15s) as well as the count.
func TestBlackoutSurvivesBeyondMaxPTOs(t *testing.T) {
	w := newWorld(t, 200*time.Microsecond, 0, 0, 7)
	echoListen(t, w)
	var rec simnet.RecoveryStats

	var conn *Conn
	var got bytes.Buffer
	eof := false
	payload := make([]byte, 800)
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Config: Config{Recovery: &rec}}, func(c *Conn) {
		conn = c
		c.SetCloseFunc(func(err error) {
			if err != nil {
				t.Errorf("connection failed during blackout: %v", err)
			}
		})
		s := c.OpenStream()
		s.SetDataFunc(func(p []byte) { got.Write(p) })
		s.SetFinFunc(func() { eof = true })
		w.sched.At(5*time.Millisecond, func() {
			w.net.SetFilter(func(simnet.Packet) bool { return false })
		})
		w.sched.At(6*time.Millisecond, func() {
			s.Write(payload)
			s.CloseWrite()
		})
		w.sched.At(3*time.Second, func() { w.net.SetFilter(nil) })
	})
	w.run(t)

	if conn == nil {
		t.Fatal("connection never established")
	}
	if !eof || got.Len() != len(payload) {
		t.Fatalf("echo incomplete after blackout: %d bytes, eof=%v", got.Len(), eof)
	}
	if !conn.Established() {
		t.Fatal("connection did not survive the blackout")
	}
	if rec.ProbeFires <= int64(defaultMaxPTOs()) {
		t.Fatalf("ProbeFires = %d, want > MaxPTOs (%d): the blackout must outlast the old failure point", rec.ProbeFires, defaultMaxPTOs())
	}
	if rec.OutageCrossings < 1 {
		t.Fatalf("OutageCrossings = %d, want ≥ 1", rec.OutageCrossings)
	}
	if rec.ConnFailures != 0 {
		t.Fatalf("ConnFailures = %d, want 0", rec.ConnFailures)
	}
}

func defaultMaxPTOs() int {
	var c Config
	return c.withDefaults().MaxPTOs
}

// TestProbeTimeoutFailsUnderPermanentBlackout checks the give-up path is
// still reachable: once both MaxPTOs and ProbeTimeout are exceeded with
// no connectivity, the connection errors out with ErrTimeout and counts
// a ConnFailure.
func TestProbeTimeoutFailsUnderPermanentBlackout(t *testing.T) {
	w := newWorld(t, 200*time.Microsecond, 0, 0, 7)
	echoListen(t, w)
	var rec simnet.RecoveryStats

	var closeErr error
	closed := false
	cfg := Config{ProbeTimeout: 500 * time.Millisecond, Recovery: &rec}
	Dial(w.client, "server", 443, ClientConfig{ServerName: "server", Config: cfg}, func(c *Conn) {
		c.SetCloseFunc(func(err error) { closeErr = err; closed = true })
		s := c.OpenStream()
		w.sched.At(5*time.Millisecond, func() {
			w.net.SetFilter(func(simnet.Packet) bool { return false })
		})
		w.sched.At(6*time.Millisecond, func() {
			s.Write(make([]byte, 800))
			s.CloseWrite()
		})
	})
	w.run(t)

	if !closed {
		t.Fatal("connection never gave up under a permanent blackout")
	}
	if !errors.Is(closeErr, ErrTimeout) {
		t.Fatalf("close error = %v, want ErrTimeout", closeErr)
	}
	if rec.ConnFailures != 1 {
		t.Fatalf("ConnFailures = %d, want 1", rec.ConnFailures)
	}
}
