package traces

import (
	"testing"
)

func TestProfilesBuildAndPin(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("Names() = %v, want ≥4 profiles", names)
	}
	for _, name := range names {
		if Describe(name) == "" {
			t.Errorf("%s: empty description", name)
		}
		a, err := Profile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		// Same name must pin the exact same trace — epoch by epoch.
		if a.Epochs() != b.Epochs() || a.Period() != b.Period() {
			t.Fatalf("%s: rebuild changed shape", name)
		}
		for e := int64(0); e < int64(a.Epochs()); e++ {
			if a.EpochBps(e) != b.EpochBps(e) {
				t.Fatalf("%s: epoch %d differs across builds", name, e)
			}
		}
		if a.MeanBps() <= 0 {
			t.Fatalf("%s: non-positive mean capacity", name)
		}
	}
	if _, err := Profile("nope"); err == nil {
		t.Fatal("unknown profile: want error")
	}
}

func TestDeadzoneHasZeroCapacityEpochs(t *testing.T) {
	tl, err := Profile("deadzone")
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for e := int64(0); e < int64(tl.Epochs()); e++ {
		if tl.EpochBps(e) == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("deadzone profile has no zero-capacity epochs")
	}
}
