// Package traces bundles synthetic cellular-link capacity traces for the
// simnet.TraceLink replay layer. Real Mahimahi recordings (Verizon LTE,
// TMobile UMTS, ...) cannot ship with the repository, so each profile
// here generates a deterministic time-series with the statistical shape
// the Domain-Sharding paper's lossy-cellular scenario needs: a moving
// capacity baseline, multiplicative fast fading, and (for some profiles)
// hard zero-capacity dead zones. Generation uses a fixed-seed xorshift
// stream — no global randomness — so a profile name alone pins the exact
// trace bytes, which is what lets trace-driven campaigns participate in
// the pinned-golden determinism discipline.
package traces

import (
	"fmt"
	"math"
	"sort"
	"time"

	"h3cdn/internal/simnet"
)

// profile describes one synthetic cellular link.
type profile struct {
	describe string
	gen      func() []simnet.TraceSample
}

// epoch width shared by all profiles: 100ms tracks cellular fading at
// the granularity Mahimahi recordings are usually summarized at.
const epochDur = 100 * time.Millisecond

var profiles = map[string]profile{
	"lte": {
		describe: "LTE-like downlink: 24 Mbit/s ceiling, deep periodic fades to ~2 Mbit/s",
		gen: func() []simnet.TraceSample {
			return fading("lte", 120, 24e6, 2e6, 4*time.Second, 0)
		},
	},
	"umts": {
		describe: "UMTS-like downlink: 4 Mbit/s ceiling, slow swings down to ~0.5 Mbit/s",
		gen: func() []simnet.TraceSample {
			return fading("umts", 120, 4e6, 0.5e6, 8*time.Second, 0)
		},
	},
	"deadzone": {
		describe: "LTE-like downlink with hard 600ms zero-capacity dead zones every ~5s",
		gen: func() []simnet.TraceSample {
			return fading("deadzone", 120, 20e6, 1.5e6, 5*time.Second, 6)
		},
	},
	"stepdown": {
		describe: "square wave: 2s at 20 Mbit/s alternating with 2s at 2 Mbit/s",
		gen: func() []simnet.TraceSample {
			samples := make([]simnet.TraceSample, 0, 4)
			for i := 0; i < 2; i++ {
				samples = append(samples,
					simnet.TraceSample{Duration: 2 * time.Second, Bps: 20e6},
					simnet.TraceSample{Duration: 2 * time.Second, Bps: 2e6})
			}
			return samples
		},
	},
}

// Names lists the available profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns a one-line description of a profile ("" if unknown).
func Describe(name string) string { return profiles[name].describe }

// Profile builds the named synthetic trace.
func Profile(name string) (*simnet.TraceLink, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("traces: unknown profile %q (have %v)", name, Names())
	}
	return simnet.NewTraceLink("synthetic:"+name, p.gen())
}

// fading generates n epochs of capacity: a sinusoid between floor and
// ceiling with period swing, multiplied by xorshift fast fading (±25%),
// and — when deadEvery > 0 — a run of deadEvery zero-capacity epochs at
// the bottom of each swing (the dead zone of a coverage hole).
func fading(seed string, n int, ceiling, floor float64, swing time.Duration, deadEvery int) []simnet.TraceSample {
	rng := newXorshift(seed)
	samples := make([]simnet.TraceSample, n)
	perSwing := int(swing / epochDur)
	if perSwing < 2 {
		perSwing = 2
	}
	mid := (ceiling + floor) / 2
	amp := (ceiling - floor) / 2
	for i := range samples {
		phase := 2 * math.Pi * float64(i%perSwing) / float64(perSwing)
		base := mid + amp*math.Cos(phase)
		// Fast fading: multiplicative jitter in [0.75, 1.25).
		fade := 0.75 + 0.5*rng.float()
		bps := base * fade
		if bps < floor {
			bps = floor
		}
		if deadEvery > 0 {
			// The dead zone sits at the swing's trough (phase ≈ π).
			trough := perSwing / 2
			if d := i%perSwing - trough; d >= 0 && d < deadEvery {
				bps = 0
			}
		}
		samples[i] = simnet.TraceSample{Duration: epochDur, Bps: bps}
	}
	return samples
}

// xorshift is a tiny deterministic generator seeded from a string — the
// package must not touch math/rand's global state, and the profile name
// alone has to reproduce the trace.
type xorshift struct{ s uint64 }

func newXorshift(seed string) *xorshift {
	// FNV-1a over the seed string.
	h := uint64(14695981039346656037)
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15
	}
	return &xorshift{s: h}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// float returns a uniform value in [0, 1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}
