package simnet

import (
	"testing"
	"time"

	"h3cdn/internal/seqrand"
)

func symPath(delay time.Duration, bps float64, loss float64) PathFunc {
	return func(src, dst Addr) PathProps {
		return PathProps{Delay: delay, BandwidthBps: bps, LossRate: loss}
	}
}

func TestDeliveryLatency(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(10*time.Millisecond, 0, 0), seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")

	var arrived time.Duration
	var got Packet
	if err := b.Bind(80, func(p Packet) { arrived = s.Now(); got = p }); err != nil {
		t.Fatal(err)
	}
	a.Send(1234, "b", 80, 100, "hello")
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != 10*time.Millisecond {
		t.Fatalf("arrival = %v, want 10ms", arrived)
	}
	if got.Payload != "hello" || got.Src != "a" || got.SrcPort != 1234 {
		t.Fatalf("packet = %+v", got)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	var s Scheduler
	// 8000 bits/sec: a 100-byte (800-bit) packet takes 100ms to serialize.
	n := NewNetwork(&s, symPath(0, 8000, 0), seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")

	var arrivals []time.Duration
	if err := b.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	a.Send(1, "b", 80, 100, nil)
	a.Send(1, "b", 80, 100, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(arrivals))
	}
	if arrivals[0] != 100*time.Millisecond || arrivals[1] != 200*time.Millisecond {
		t.Fatalf("arrivals = %v, want [100ms 200ms]", arrivals)
	}
}

func TestLossRate(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(time.Millisecond, 0, 0.3), seqrand.New(7))
	a := n.AddHost("a")
	b := n.AddHost("b")
	delivered := 0
	if err := b.Bind(80, func(Packet) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	const total = 5000
	for i := 0; i < total; i++ {
		a.Send(1, "b", 80, 100, nil)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rate := 1 - float64(delivered)/total
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss %f, want ~0.30", rate)
	}
	st := n.Stats()
	if int(st.LossDrops)+delivered != total {
		t.Fatalf("drops(%d)+delivered(%d) != %d", st.LossDrops, delivered, total)
	}
}

func TestLossDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		var s Scheduler
		n := NewNetwork(&s, symPath(time.Millisecond, 0, 0.5), seqrand.New(99))
		a := n.AddHost("a")
		b := n.AddHost("b")
		var got []int
		if err := b.Bind(80, func(p Packet) { got = append(got, p.Payload.(int)) }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			a.Send(1, "b", 80, 50, i)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestQueueLimitDrops(t *testing.T) {
	var s Scheduler
	pf := func(src, dst Addr) PathProps {
		return PathProps{BandwidthBps: 8000, QueueLimit: 2}
	}
	n := NewNetwork(&s, pf, seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	delivered := 0
	if err := b.Bind(80, func(Packet) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Send(1, "b", 80, 100, nil)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (queue limit)", delivered)
	}
	if n.Stats().QueueDrops != 3 {
		t.Fatalf("queue drops = %d, want 3", n.Stats().QueueDrops)
	}
}

func TestNoRouteCounted(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(time.Millisecond, 0, 0), seqrand.New(1))
	a := n.AddHost("a")
	n.AddHost("b") // no port bound
	a.Send(1, "b", 80, 10, nil)
	a.Send(1, "nowhere", 80, 10, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().NoRoute != 2 {
		t.Fatalf("NoRoute = %d, want 2", n.Stats().NoRoute)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(0, 0, 0), seqrand.New(1))
	h := n.AddHost("h")
	seen := make(map[uint16]bool)
	for i := 0; i < 1000; i++ {
		p := h.BindEphemeral(func(Packet) {})
		if seen[p] {
			t.Fatalf("duplicate ephemeral port %d", p)
		}
		seen[p] = true
	}
}

func TestBindConflict(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(0, 0, 0), seqrand.New(1))
	h := n.AddHost("h")
	if err := h.Bind(443, func(Packet) {}); err != nil {
		t.Fatal(err)
	}
	if err := h.Bind(443, func(Packet) {}); err == nil {
		t.Fatal("double Bind succeeded")
	}
	h.Unbind(443)
	if err := h.Bind(443, func(Packet) {}); err != nil {
		t.Fatalf("rebind after Unbind: %v", err)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddHost did not panic")
		}
	}()
	var s Scheduler
	n := NewNetwork(&s, symPath(0, 0, 0), seqrand.New(1))
	n.AddHost("x")
	n.AddHost("x")
}

func TestRTT(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(15*time.Millisecond, 0, 0), seqrand.New(1))
	if got := n.RTT("a", "b"); got != 30*time.Millisecond {
		t.Fatalf("RTT = %v, want 30ms", got)
	}
}

func TestSharedLinkSerialization(t *testing.T) {
	var s Scheduler
	// Two senders to one receiver share a 8000 bps access link: their
	// packets serialize through one queue.
	pf := func(src, dst Addr) PathProps {
		return PathProps{BandwidthBps: 8000, LinkID: "access:" + string(dst)}
	}
	n := NewNetwork(&s, pf, seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	c := n.AddHost("c")
	var arrivals []time.Duration
	if err := c.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	a.Send(1, "c", 80, 100, nil) // 100ms serialization each
	b.Send(1, "c", 80, 100, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	// Shared link: second packet waits for the first (100ms, 200ms),
	// unlike independent pairs which would both arrive at 100ms.
	if arrivals[0] != 100*time.Millisecond || arrivals[1] != 200*time.Millisecond {
		t.Fatalf("arrivals = %v, want [100ms 200ms]", arrivals)
	}
}
