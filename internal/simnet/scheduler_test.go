package simnet

import (
	"errors"
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	var s Scheduler
	var fired []time.Duration
	s.After(time.Millisecond, func() {
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 2*time.Millisecond {
		t.Fatalf("nested event fired at %v, want [2ms]", fired)
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	var s Scheduler
	s.After(5*time.Millisecond, func() {
		s.At(time.Millisecond, func() {
			if s.Now() != 5*time.Millisecond {
				t.Fatalf("past event ran at %v, want clamped to 5ms", s.Now())
			}
		})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerStop(t *testing.T) {
	var s Scheduler
	ran := 0
	s.After(1, func() { ran++; s.Stop() })
	s.After(2, func() { ran++ })
	n, err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
}

func TestSchedulerEventBudget(t *testing.T) {
	var s Scheduler
	s.MaxEvents = 10
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(0, tick)
	n, err := s.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if n != 10 {
		t.Fatalf("ran %d events, want 10", n)
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	ran := 0
	s.After(1*time.Millisecond, func() { ran++ })
	s.After(2*time.Millisecond, func() { ran++ })
	s.After(5*time.Millisecond, func() { ran++ })
	n := s.RunUntil(3 * time.Millisecond)
	if n != 2 || ran != 2 {
		t.Fatalf("RunUntil ran %d events, want 2", ran)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestTimerResetStop(t *testing.T) {
	var s Scheduler
	fired := 0
	tm := s.NewTimer(func() { fired++ })
	tm.Reset(2 * time.Millisecond)
	tm.Reset(4 * time.Millisecond) // supersedes
	s.After(1*time.Millisecond, func() {})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("timer fired %d times after double Reset, want 1", fired)
	}
	if s.Now() != 4*time.Millisecond {
		t.Fatalf("fired at %v, want 4ms", s.Now())
	}

	tm.Reset(time.Millisecond)
	tm.Stop()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerArmedDeadline(t *testing.T) {
	var s Scheduler
	tm := s.NewTimer(func() {})
	if tm.Armed() {
		t.Fatal("new timer is armed")
	}
	tm.Reset(7 * time.Millisecond)
	if !tm.Armed() || tm.Deadline() != 7*time.Millisecond {
		t.Fatalf("Armed=%v Deadline=%v, want armed at 7ms", tm.Armed(), tm.Deadline())
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerResetAt(t *testing.T) {
	var s Scheduler
	var at time.Duration
	tm := s.NewTimer(func() { at = s.Now() })
	tm.ResetAt(9 * time.Millisecond)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 9*time.Millisecond {
		t.Fatalf("fired at %v, want 9ms", at)
	}
}
