package simnet

import "fmt"

// PacketHandler consumes a delivered packet.
type PacketHandler func(pkt Packet)

// Host is a network endpoint with a port space shared by all transports.
type Host struct {
	net           *Network
	addr          Addr
	ports         map[uint16]PacketHandler
	nextEphemeral uint16
}

// Addr returns the host address.
func (h *Host) Addr() Addr { return h.addr }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// Scheduler returns the scheduler driving the owning network.
func (h *Host) Scheduler() *Scheduler { return h.net.sched }

// Bind registers fn on a well-known port.
func (h *Host) Bind(port uint16, fn PacketHandler) error {
	if _, ok := h.ports[port]; ok {
		return fmt.Errorf("simnet: %s port %d already bound", h.addr, port)
	}
	h.ports[port] = fn
	return nil
}

// BindEphemeral registers fn on a fresh ephemeral port and returns it.
func (h *Host) BindEphemeral(fn PacketHandler) uint16 {
	for {
		p := h.nextEphemeral
		h.nextEphemeral++
		if h.nextEphemeral == 0 {
			h.nextEphemeral = 49152
		}
		if _, ok := h.ports[p]; !ok {
			h.ports[p] = fn
			return p
		}
	}
}

// Unbind releases a port. Unbinding a free port is a no-op.
func (h *Host) Unbind(port uint16) { delete(h.ports, port) }

// Send transmits a packet from srcPort to dst:dstPort.
func (h *Host) Send(srcPort uint16, dst Addr, dstPort uint16, size int, payload any) {
	h.net.send(Packet{
		Src:     h.addr,
		SrcPort: srcPort,
		Dst:     dst,
		DstPort: dstPort,
		Size:    size,
		Payload: payload,
	})
}
