package simnet

import "time"

// Impairment is the fault-injection profile of a directed path: bursty
// loss (a Gilbert–Elliott two-state chain), bounded delay jitter, bounded
// packet reordering, and scheduled outages. The struct is read-only after
// construction — all mutable state (the chain position, the impairment
// RNG) lives in the network's per-path state, seeded by path label from
// the network's seqrand source, so identical seeds yield identical fault
// sequences regardless of unrelated traffic and of worker sharding. A
// nil *Impairment in PathProps keeps the unimpaired fast path byte- and
// allocation-identical to a network without the fault layer.
type Impairment struct {
	// Gilbert–Elliott loss. The chain starts in Good; each transmission
	// attempt draws a drop with the current state's rate, then performs
	// the state transition. LossGood/LossBad are per-packet drop
	// probabilities in each state; PGoodBad/PBadGood are the per-packet
	// transition probabilities. All zero disables the chain (draws no
	// randomness), so jitter-only profiles stay independent of loss.
	LossGood float64
	LossBad  float64
	PGoodBad float64
	PBadGood float64

	// JitterMax adds a uniform [0, JitterMax) extra propagation delay
	// per delivered packet. Zero disables (no draw).
	JitterMax time.Duration

	// ReorderRate holds a delivered packet back by ReorderDelay with
	// this probability, letting later-sent packets overtake it. The
	// scheduler's (time, seq) order keeps even equal-time arrivals
	// deterministic.
	ReorderRate  float64
	ReorderDelay time.Duration

	// Outages are down windows: any packet whose serialization starts in
	// [Start, End) is dropped after consuming its link time, exactly
	// like a loss drop. Windows should be disjoint and sorted.
	Outages []Outage
}

// Outage is one scheduled down window of a path, in virtual time.
type Outage struct {
	Start time.Duration
	End   time.Duration
}

// hasGE reports whether the Gilbert–Elliott chain is configured.
func (im *Impairment) hasGE() bool {
	return im.LossGood > 0 || im.LossBad > 0 || im.PGoodBad > 0 || im.PBadGood > 0
}

// down reports whether t falls inside an outage window.
func (im *Impairment) down(t time.Duration) bool {
	for _, o := range im.Outages {
		if t >= o.Start && t < o.End {
			return true
		}
	}
	return false
}

// GilbertElliott builds a bursty-loss profile whose stationary average
// loss matches avgLoss with mean burst length meanBurst (consecutive
// drops). It uses the classic degenerate parameterization — Good never
// drops, Bad always drops — so the Bad-state sojourn is the burst:
// PBadGood = 1/meanBurst, and the stationary Bad probability equals
// avgLoss, giving PGoodBad = avgLoss·PBadGood/(1−avgLoss). This is the
// matched-average counterpart of an i.i.d. Bernoulli LossRate=avgLoss
// path: same long-run drop rate, different clustering.
func GilbertElliott(avgLoss, meanBurst float64) Impairment {
	if avgLoss <= 0 {
		return Impairment{}
	}
	if avgLoss > 0.5 {
		avgLoss = 0.5
	}
	if meanBurst < 1 {
		meanBurst = 1
	}
	r := 1 / meanBurst
	return Impairment{
		LossBad:  1,
		PBadGood: r,
		PGoodBad: avgLoss * r / (1 - avgLoss),
	}
}

// RecoveryStats aggregates loss-recovery and retry activity across the
// client-side connections wired to it (see tcpsim.Config.Recovery,
// quicsim.Config.Recovery, browser.Config.Recovery). Field names are
// transport-neutral; each transport maps its own machinery onto them.
// All increments happen in scheduler context, so a per-universe instance
// needs no locking.
type RecoveryStats struct {
	// Timeouts counts TCP RTO expirations.
	Timeouts int64
	// FastRetransmits counts TCP dupack-triggered retransmissions.
	FastRetransmits int64
	// Retransmits counts TCP retransmitted segments (all causes).
	Retransmits int64
	// ProbeFires counts QUIC PTO expirations.
	ProbeFires int64
	// PacketsDeclaredLost counts QUIC packet-threshold loss detections.
	PacketsDeclaredLost int64
	// OutageCrossings counts recovery episodes where a connection
	// received a valid ACK after ≥2 consecutive timeouts/probes — the
	// signature of surviving a blackout rather than isolated loss.
	OutageCrossings int64
	// ConnFailures counts connections torn down by their transport
	// (timeout / refused), i.e. retryable errors surfaced upward.
	ConnFailures int64
	// FetchRetries counts browser resource re-fetches after a transport
	// error.
	FetchRetries int64
}

// Add accumulates o into r (shard aggregation).
func (r *RecoveryStats) Add(o RecoveryStats) {
	r.Timeouts += o.Timeouts
	r.FastRetransmits += o.FastRetransmits
	r.Retransmits += o.Retransmits
	r.ProbeFires += o.ProbeFires
	r.PacketsDeclaredLost += o.PacketsDeclaredLost
	r.OutageCrossings += o.OutageCrossings
	r.ConnFailures += o.ConnFailures
	r.FetchRetries += o.FetchRetries
}
