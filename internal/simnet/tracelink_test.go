package simnet

import (
	"math"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/seqrand"
)

func mustTrace(t *testing.T, name string, samples []TraceSample) *TraceLink {
	t.Helper()
	tl, err := NewTraceLink(name, samples)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestNewTraceLinkValidation(t *testing.T) {
	cases := []struct {
		name    string
		samples []TraceSample
		wantErr bool
	}{
		{"empty", nil, true},
		{"zero-duration", []TraceSample{{0, 1e6}}, true},
		{"negative-rate", []TraceSample{{time.Second, -1}}, true},
		{"nan-rate", []TraceSample{{time.Second, math.NaN()}}, true},
		{"all-zero", []TraceSample{{time.Second, 0}, {time.Second, 0}}, true},
		{"ok", []TraceSample{{time.Second, 0}, {time.Second, 1e6}}, false},
	}
	for _, tc := range cases {
		_, err := NewTraceLink(tc.name, tc.samples)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestTraceLinkEpochs(t *testing.T) {
	tl := mustTrace(t, "t", []TraceSample{
		{100 * time.Millisecond, 1e6},
		{200 * time.Millisecond, 2e6},
		{100 * time.Millisecond, 0},
	})
	if got := tl.Period(); got != 400*time.Millisecond {
		t.Fatalf("Period = %v", got)
	}
	if got := tl.Epochs(); got != 3 {
		t.Fatalf("Epochs = %d", got)
	}
	cases := []struct {
		at   time.Duration
		want int64
	}{
		{0, 0},
		{99 * time.Millisecond, 0},
		{100 * time.Millisecond, 1},
		{299 * time.Millisecond, 1},
		{300 * time.Millisecond, 2},
		{399 * time.Millisecond, 2},
		{400 * time.Millisecond, 3}, // wrapped: sample 0 of wrap 1
		{850 * time.Millisecond, 5}, // wrap 2, sample 2... check: 850 = 400*2+50 → wrap 2, sample 0 → 6
	}
	cases[len(cases)-1].want = 6
	for _, tc := range cases {
		if got := tl.Epoch(tc.at); got != tc.want {
			t.Errorf("Epoch(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
	if got := tl.EpochBps(4); got != 2e6 {
		t.Fatalf("EpochBps(4) = %v, want 2e6 (wrapped sample 1)", got)
	}
	// Time-weighted mean: (1e6·0.1 + 2e6·0.2 + 0)/0.4 = 1.25e6.
	if got := tl.MeanBps(); math.Abs(got-1.25e6) > 1 {
		t.Fatalf("MeanBps = %v, want 1.25e6", got)
	}
}

func TestTraceLinkSerialize(t *testing.T) {
	tl := mustTrace(t, "t", []TraceSample{
		{100 * time.Millisecond, 8e6}, // 1 KB/ms
		{100 * time.Millisecond, 0},   // dead zone
		{100 * time.Millisecond, 8e6},
	})
	// 8000 bits at 8e6 bps = 1ms, entirely inside epoch 0.
	if got := tl.Serialize(0, 8000); got != time.Millisecond {
		t.Fatalf("Serialize(0, 8000) = %v, want 1ms", got)
	}
	// Starting 0.5ms before the dead zone, half the bits drain before
	// 100ms, the rest wait out the zero-capacity epoch: finish at 200.5ms.
	start := 99*time.Millisecond + 500*time.Microsecond
	if got := tl.Serialize(start, 8000); got != 200*time.Millisecond+500*time.Microsecond {
		t.Fatalf("Serialize(dead-zone straddle) = %v", got)
	}
	// Starting inside the dead zone stalls until it ends.
	if got := tl.Serialize(150*time.Millisecond, 8000); got != 201*time.Millisecond {
		t.Fatalf("Serialize(in dead zone) = %v, want 201ms", got)
	}
	// Replay wraps: epoch 3 (= sample 0 of wrap 1) serves at 8e6 again.
	if got := tl.Serialize(300*time.Millisecond, 8000+800*1000); got <= 300*time.Millisecond {
		t.Fatalf("Serialize across wrap = %v", got)
	}
	// Constant-rate trace must agree with the closed form bits/bps.
	flat := mustTrace(t, "flat", []TraceSample{{time.Second, 1e6}})
	for _, bits := range []int64{1, 999, 1_000_000, 7_654_321} {
		want := time.Duration(float64(bits) / 1e6 * float64(time.Second))
		got := flat.Serialize(123*time.Millisecond, bits) - 123*time.Millisecond
		if d := got - want; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("flat Serialize(%d bits) = %v, want ≈%v", bits, got, want)
		}
	}
}

func TestTraceLinkSerializeMonotone(t *testing.T) {
	tl := mustTrace(t, "t", []TraceSample{
		{50 * time.Millisecond, 2e6},
		{30 * time.Millisecond, 0},
		{70 * time.Millisecond, 12e6},
	})
	// Finish time must be nondecreasing in start time (later starts never
	// finish earlier) — this underpins the per-path FIFO invariant.
	prev := time.Duration(-1)
	for ms := 0; ms < 500; ms += 3 {
		got := tl.Serialize(time.Duration(ms)*time.Millisecond, 40_000)
		if got < prev {
			t.Fatalf("Serialize not monotone at %dms: %v < %v", ms, got, prev)
		}
		prev = got
	}
}

func TestTraceLinkScaled(t *testing.T) {
	tl := mustTrace(t, "t", []TraceSample{{time.Second, 4e6}, {time.Second, 0}})
	s2, err := tl.Scaled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.EpochBps(0); got != 2e6 {
		t.Fatalf("scaled rate = %v, want 2e6", got)
	}
	if same, err := tl.Scaled(1); err != nil || same != tl {
		t.Fatalf("Scaled(1) = %v, %v — want identity", same, err)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := tl.Scaled(bad); err == nil {
			t.Errorf("Scaled(%v): want error", bad)
		}
	}
}

func TestParseMahimahiTrace(t *testing.T) {
	// 3 opportunities in [0,100)ms, 1 in [100,200)ms, none afterwards
	// until one at 250ms.
	src := "# comment\n0\n10\n\n99\n150\n250\n"
	tl, err := ParseMahimahiTrace("m", strings.NewReader(src), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Epochs(); got != 3 {
		t.Fatalf("Epochs = %d, want 3", got)
	}
	// Bucket 0: 3 opportunities × 1500 B × 8 / 0.1s = 360 kbit/s.
	if got := tl.EpochBps(0); math.Abs(got-360e3) > 1 {
		t.Fatalf("bucket 0 rate = %v, want 360e3", got)
	}
	if got := tl.EpochBps(1); math.Abs(got-120e3) > 1 {
		t.Fatalf("bucket 1 rate = %v, want 120e3", got)
	}

	for name, bad := range map[string]string{
		"garbage":    "12\nxyz\n",
		"negative":   "-5\n",
		"decreasing": "100\n50\n",
		"empty":      "# nothing\n",
	} {
		if _, err := ParseMahimahiTrace(name, strings.NewReader(bad), 0, 0); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

// tracePath wires the same TraceLink onto every directed path.
func tracePath(tl *TraceLink, delay time.Duration) PathFunc {
	return func(src, dst Addr) PathProps {
		return PathProps{Delay: delay, Trace: tl}
	}
}

func TestNetworkTraceDrivenDelivery(t *testing.T) {
	// 8e6 bps epoch, then a 100ms dead zone, cycling.
	tl := mustTrace(t, "t", []TraceSample{
		{100 * time.Millisecond, 8e6},
		{100 * time.Millisecond, 0},
	})
	var s Scheduler
	n := NewNetwork(&s, tracePath(tl, 5*time.Millisecond), seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var arrivals []time.Duration
	if err := b.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	// Each 1000-byte packet is 8000 bits = 1ms at 8e6 bps.
	for i := 0; i < 3; i++ {
		a.Send(1, "b", 80, 1000, nil)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{6 * time.Millisecond, 7 * time.Millisecond, 8 * time.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrivals))
	}
	for i, at := range arrivals {
		if at != want[i] {
			t.Fatalf("arrival[%d] = %v, want %v", i, at, want[i])
		}
	}
}

func TestNetworkTraceDeadZoneStalls(t *testing.T) {
	tl := mustTrace(t, "t", []TraceSample{
		{10 * time.Millisecond, 8e6},
		{100 * time.Millisecond, 0},
	})
	var s Scheduler
	n := NewNetwork(&s, tracePath(tl, 0), seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var arrivals []time.Duration
	if err := b.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	// 15 packets of 1ms each: 10 drain in the first epoch, the rest
	// stall across the 100ms dead zone — nothing may be dropped.
	for i := 0; i < 15; i++ {
		a.Send(1, "b", 80, 1000, nil)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 15 {
		t.Fatalf("delivered %d, want 15 (dead zones stall, never drop)", len(arrivals))
	}
	if arrivals[9] != 10*time.Millisecond {
		t.Fatalf("arrival[9] = %v, want 10ms", arrivals[9])
	}
	if arrivals[10] != 111*time.Millisecond {
		t.Fatalf("arrival[10] = %v, want 111ms (post-dead-zone)", arrivals[10])
	}
	if st := n.Stats(); st.LossDrops+st.QueueDrops+st.BurstDrops+st.OutageDrops != 0 {
		t.Fatalf("drops = %+v", st)
	}
}

func TestNetworkTraceDeterministicReplay(t *testing.T) {
	tl := mustTrace(t, "t", []TraceSample{
		{30 * time.Millisecond, 3e6},
		{20 * time.Millisecond, 0},
		{50 * time.Millisecond, 9e6},
	})
	run := func() []time.Duration {
		var s Scheduler
		n := NewNetwork(&s, tracePath(tl, 2*time.Millisecond), seqrand.New(7))
		a := n.AddHost("a")
		b := n.AddHost("b")
		var arrivals []time.Duration
		if err := b.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			a.Send(1, "b", 80, 1200, nil)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return arrivals
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("replay length mismatch: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
}
