package simnet

import (
	"testing"
	"time"
)

func TestAtArgPassesArgument(t *testing.T) {
	var s Scheduler
	type payload struct{ n int }
	p := &payload{n: 41}
	var got *payload
	s.AtArg(3*time.Millisecond, func(x any) { got = x.(*payload) }, p)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("arg %v, want %v", got, p)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("fired at %v, want 3ms", s.Now())
	}
}

func TestAtArgOrderingWithAt(t *testing.T) {
	var s Scheduler
	var order []int
	s.AfterArg(time.Millisecond, func(any) { order = append(order, 1) }, nil)
	s.After(time.Millisecond, func() { order = append(order, 2) })
	s.AtArg(time.Millisecond, func(any) { order = append(order, 3) }, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v, want FIFO [1 2 3]", order)
	}
}

// TestEventFreeList asserts that steady-state dispatch reuses event
// structs rather than allocating.
func TestEventFreeList(t *testing.T) {
	var s Scheduler
	fn := func(any) {}
	// Prime the free list and the heap's backing array.
	s.AfterArg(0, fn, nil)
	s.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterArg(time.Microsecond, fn, nil)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per schedule+dispatch, want 0", allocs)
	}
}

// TestCanceledEventsRecycled asserts canceled events return to the free
// list (via Step and via RunUntil) instead of leaking.
func TestCanceledEventsRecycled(t *testing.T) {
	var s Scheduler
	ev := s.After(time.Millisecond, func() {})
	s.cancelEvent(ev)
	s.After(2*time.Millisecond, func() {})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.free == nil {
		t.Fatal("free list empty after run")
	}

	ev = s.After(time.Millisecond, func() {})
	s.cancelEvent(ev)
	s.RunUntil(5 * time.Millisecond)
	if len(s.heap) != 0 {
		t.Fatalf("%d events still queued after RunUntil", len(s.heap))
	}
}

// TestTimerRecycled asserts Release returns timers to the scheduler pool.
func TestTimerRecycled(t *testing.T) {
	var s Scheduler
	a := s.NewTimer(func() {})
	a.Reset(time.Millisecond)
	a.Release()
	if a.Armed() {
		t.Fatal("released timer still armed")
	}
	b := s.NewTimer(func() {})
	if a != b {
		t.Fatal("NewTimer did not reuse the released timer")
	}
	// The recycled timer must be fully functional.
	fired := false
	c := s.NewTimer(func() { fired = true })
	c.Reset(time.Millisecond)
	b.Reset(2 * time.Millisecond)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer created after recycling never fired")
	}
}

// TestTimerArmAllocationFree asserts Reset/fire cycles allocate nothing
// once the free lists are primed.
func TestTimerArmAllocationFree(t *testing.T) {
	var s Scheduler
	tm := s.NewTimer(func() {})
	tm.Reset(0)
	s.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(time.Microsecond)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per Reset+fire, want 0", allocs)
	}
}
