package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"h3cdn/internal/seqrand"
	"h3cdn/internal/trace"
)

// Addr identifies a host on the simulated network.
type Addr string

// Packet is a datagram in flight. Payload is an opaque protocol message
// (e.g. a TCP segment or QUIC packet); Size is its on-wire size in bytes
// and is what bandwidth serialization charges.
type Packet struct {
	Src     Addr
	SrcPort uint16
	Dst     Addr
	DstPort uint16
	Size    int
	Payload any
}

// Releasable is optionally implemented by packet payloads that can be
// recycled. Ownership of the payload transfers to the network at send
// time: once the packet has been delivered (the handler returned) or
// dropped, the network calls Release exactly once. Handlers must not
// retain the payload object beyond the callback (retaining byte slices
// the payload points to is fine — Release must not recycle those).
type Releasable interface{ Release() }

func releasePayload(p any) {
	if r, ok := p.(Releasable); ok {
		r.Release()
	}
}

// PathProps describes a directed src→dst path.
type PathProps struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// BandwidthBps is the serialization rate in bits per second.
	// Zero means infinite (no serialization delay).
	BandwidthBps float64
	// LossRate is the i.i.d. Bernoulli drop probability in [0,1).
	LossRate float64
	// QueueLimit bounds packets concurrently serialized/queued on the
	// path; beyond it packets are tail-dropped. Zero means unbounded.
	QueueLimit int
	// LinkID, when non-empty, names a shared link: all paths carrying
	// the same LinkID serialize through one transmission queue (e.g. a
	// client's access link shared by all its downloads). Empty keeps
	// per-(src,dst)-pair serialization.
	LinkID string
	// Impair, when non-nil, applies the fault-injection layer (bursty
	// loss, jitter, reordering, outages) on top of LossRate. The struct
	// must be read-only; per-path mutable state lives in the network.
	Impair *Impairment
	// Trace, when non-nil, replaces BandwidthBps with trace-driven
	// time-varying capacity (see TraceLink). Serialization integrates
	// the capacity profile; zero-capacity epochs stall the queue rather
	// than dropping. Composes with Impair: capacity first, then the
	// fault dice. The TraceLink must be read-only (shareable across
	// paths and workers).
	Trace *TraceLink
}

// PathFunc resolves the directed path properties between two hosts.
type PathFunc func(src, dst Addr) PathProps

// Stats counts network-level activity for a Network.
type Stats struct {
	Sent        int64
	Delivered   int64
	LossDrops   int64
	QueueDrops  int64
	BurstDrops  int64 // Gilbert–Elliott (impairment) drops
	OutageDrops int64 // scheduled-outage drops
	Reordered   int64 // deliveries held back by the reordering impairment
	NoRoute     int64 // destination host or port not bound
	BytesSent   int64
}

// Network connects hosts over paths resolved by a PathFunc.
type Network struct {
	sched  *Scheduler
	path   PathFunc
	hosts  map[Addr]*Host
	pairs  map[pairKey]*pathState
	queues map[queueKey]*pathQueues
	rng    *seqrand.Source
	stats  Stats
	filter func(Packet) bool
	trace  *trace.Tracer

	freeDeliveries *delivery // recycled delivery records
}

// delivery is the scheduled arrival (or loss completion) of one packet.
// Records are pooled per network so the per-packet hot path schedules no
// closures and allocates nothing in steady state.
type delivery struct {
	n    *Network
	ps   *pathState
	pkt  Packet
	drop bool // loss: only the serialization slot is released
	next *delivery
}

// runDelivery is the package-level event callback for packet arrivals
// (see Scheduler.AtArg).
func runDelivery(x any) {
	d := x.(*delivery)
	d.ps.inFlight--
	if d.drop {
		releasePayload(d.pkt.Payload)
	} else {
		d.n.deliver(d.pkt)
	}
	d.n.releaseDelivery(d)
}

func (n *Network) allocDelivery() *delivery {
	d := n.freeDeliveries
	if d == nil {
		return &delivery{n: n}
	}
	n.freeDeliveries = d.next
	d.next = nil
	return d
}

func (n *Network) releaseDelivery(d *delivery) {
	d.ps = nil
	d.pkt = Packet{}
	d.drop = false
	d.next = n.freeDeliveries
	n.freeDeliveries = d
}

// SetFilter installs a packet filter invoked before every transmission;
// returning false drops the packet (counted as a loss drop). Intended for
// tests and fault injection. Pass nil to remove.
func (n *Network) SetFilter(f func(Packet) bool) { n.filter = f }

// SetTracer installs the event tracer packet-level events are emitted
// to. All emit paths are nil-safe, so an untraced network pays only a
// nil compare per packet.
func (n *Network) SetTracer(t *trace.Tracer) { n.trace = t }

type pairKey struct {
	src, dst Addr
	link     string
}

type pathState struct {
	busyUntil time.Duration
	inFlight  int
	lossRng   *rand.Rand
	label     string // stream label, for lazily derived impairment RNG

	// Fault-injection state (see Impairment). impairRng is derived on
	// the first impaired send; unimpaired paths never create it, keeping
	// the fast path identical to a network without the fault layer.
	impairRng *rand.Rand
	geBad     bool // Gilbert–Elliott chain position

	// epoch is the last trace-link epoch a send on this path observed
	// (see TraceLink.Epoch); transitions emit a trace event. -1 until
	// the first trace-driven send.
	epoch int64
}

// queueKey identifies one directed (src, dst) pair's delivery queues.
// Unlike pairKey it never collapses onto a shared link: coalescing
// relies on per-queue nondecreasing times, and on a shared link packets
// from different sources carry different propagation delays.
type queueKey struct {
	src, dst Addr
}

// pathQueues coalesces one pair's scheduled completions into at most
// two heap entries (see EventQueue). Arrivals (serialization end +
// propagation delay) and loss completions (serialization end only)
// follow different time laws, so each needs its own monotone queue.
type pathQueues struct {
	arrive EventQueue
	drop   EventQueue
	// frontier is the latest scheduled arrival among FIFO deliveries on
	// this (src,dst) pair: the link preserves order, so a jittered
	// packet is delayed, never overtaken past — every delivery clamps
	// to at least the frontier, and only packets explicitly held back
	// by the reordering impairment leave it unadvanced (they alone may
	// be overtaken by later sends). On unimpaired paths arrivals are
	// already monotone and the clamp is a no-op.
	frontier time.Duration
}

func (n *Network) pathQueues(src, dst Addr) *pathQueues {
	q, ok := n.queues[queueKey{src, dst}]
	if !ok {
		q = &pathQueues{}
		n.queues[queueKey{src, dst}] = q
	}
	return q
}

// NewNetwork creates a network driven by sched with paths from path and
// loss randomness derived from rng.
func NewNetwork(sched *Scheduler, path PathFunc, rng *seqrand.Source) *Network {
	if path == nil {
		path = func(Addr, Addr) PathProps { return PathProps{} }
	}
	return &Network{
		sched:  sched,
		path:   path,
		hosts:  make(map[Addr]*Host),
		pairs:  make(map[pairKey]*pathState),
		queues: make(map[queueKey]*pathQueues),
		rng:    rng,
	}
}

// Scheduler returns the driving scheduler.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats { return n.stats }

// AddHost registers a host at addr. It panics on duplicate addresses:
// topology construction bugs should fail loudly at setup time.
func (n *Network) AddHost(addr Addr) *Host {
	if _, ok := n.hosts[addr]; ok {
		panic(fmt.Sprintf("simnet: duplicate host %q", addr))
	}
	h := &Host{
		net:   n,
		addr:  addr,
		ports: make(map[uint16]PacketHandler),
		// Ephemeral range start; deterministic across runs.
		nextEphemeral: 49152,
	}
	n.hosts[addr] = h
	return h
}

// Host returns the host at addr, or nil.
func (n *Network) Host(addr Addr) *Host { return n.hosts[addr] }

func (n *Network) pairState(src, dst Addr, link string) *pathState {
	k := pairKey{link: link}
	if link == "" {
		k.src, k.dst = src, dst
	}
	ps, ok := n.pairs[k]
	if !ok {
		label := link
		if label == "" {
			label = string(src) + "|" + string(dst)
		}
		ps = &pathState{lossRng: n.rng.Stream("loss", label), label: label, epoch: -1}
		n.pairs[k] = ps
	}
	return ps
}

// send transmits pkt, applying serialization, queue, loss, and propagation.
func (n *Network) send(pkt Packet) {
	n.stats.Sent++
	n.stats.BytesSent += int64(pkt.Size)
	n.trace.PacketSent(n.sched.Now(), string(pkt.Src), string(pkt.Dst), pkt.SrcPort, pkt.DstPort, pkt.Size)

	if n.filter != nil && !n.filter(pkt) {
		n.stats.LossDrops++
		n.trace.PacketDropped(n.sched.Now(), string(pkt.Src), string(pkt.Dst), pkt.SrcPort, pkt.DstPort, pkt.Size, trace.DropFilter)
		releasePayload(pkt.Payload)
		return
	}

	props := n.path(pkt.Src, pkt.Dst)
	ps := n.pairState(pkt.Src, pkt.Dst, props.LinkID)

	if props.QueueLimit > 0 && ps.inFlight >= props.QueueLimit {
		n.stats.QueueDrops++
		n.trace.PacketDropped(n.sched.Now(), string(pkt.Src), string(pkt.Dst), pkt.SrcPort, pkt.DstPort, pkt.Size, trace.DropQueue)
		releasePayload(pkt.Payload)
		return
	}

	now := n.sched.Now()
	start := now
	if ps.busyUntil > start {
		start = ps.busyUntil
	}
	var tx time.Duration
	if props.Trace != nil {
		// Trace-driven capacity: serialization integrates the replayed
		// profile from start; zero-capacity epochs stall (tx stretches)
		// instead of dropping. Epoch transitions are observable in the
		// trace — with the queue depth at the transition — so phase
		// attribution can tell capacity stalls from loss stalls.
		if e := props.Trace.Epoch(start); e != ps.epoch {
			ps.epoch = e
			n.trace.LinkEpoch(now, string(pkt.Src), string(pkt.Dst), e, props.Trace.EpochBps(e), ps.inFlight)
		}
		tx = props.Trace.Serialize(start, int64(pkt.Size)*8) - start
	} else if props.BandwidthBps > 0 {
		tx = time.Duration(float64(pkt.Size*8) / props.BandwidthBps * float64(time.Second))
	}
	ps.busyUntil = start + tx
	ps.inFlight++

	d := n.allocDelivery()
	d.ps = ps
	d.pkt = pkt

	// Completions coalesce onto per-(src,dst) FIFO queues: successive
	// sends on one pair serialize in order (busyUntil is monotone) and
	// share one propagation delay, so each queue's times are
	// nondecreasing and the whole pair occupies one heap slot instead of
	// one per packet in flight.
	q := n.pathQueues(pkt.Src, pkt.Dst)

	// The impairment layer runs first (the path's condition evolves per
	// transmission attempt, independent of ambient loss); its randomness
	// comes from a separate stream, so unimpaired paths — and the whole
	// network when no Impairment is configured — draw the exact loss
	// sequence they always did.
	var (
		extra time.Duration
		held  bool
	)
	if props.Impair != nil {
		cause, delta, h := n.impair(ps, props.Impair, start)
		if cause != 0 {
			n.trace.PacketDropped(now, string(pkt.Src), string(pkt.Dst), pkt.SrcPort, pkt.DstPort, pkt.Size, cause)
			d.drop = true
			n.sched.QueueAtArg(&q.drop, start+tx, runDelivery, d)
			return
		}
		extra, held = delta, h
		if extra > 0 {
			n.trace.PacketDelayed(now, string(pkt.Src), string(pkt.Dst), extra)
		}
	}

	// Loss is evaluated per transmission attempt. Dropped packets still
	// consumed link time (they were serialized onto the wire).
	if props.LossRate > 0 && ps.lossRng.Float64() < props.LossRate {
		n.stats.LossDrops++
		n.trace.PacketDropped(now, string(pkt.Src), string(pkt.Dst), pkt.SrcPort, pkt.DstPort, pkt.Size, trace.DropLoss)
		d.drop = true
		n.sched.QueueAtArg(&q.drop, start+tx, runDelivery, d)
		return
	}

	// FIFO discipline: a link delays jittered packets, it does not let
	// them overtake earlier deliveries on the same (src,dst) pair — so
	// every arrival clamps to at least the pair's frontier. Only a
	// packet the reordering impairment explicitly held back leaves the
	// frontier unadvanced: later sends may overtake it, which is the
	// one sanctioned source of out-of-order delivery.
	at := start + tx + props.Delay + extra
	if at < q.frontier {
		at = q.frontier
	}
	if !held {
		q.frontier = at
	}
	n.sched.QueueAtArg(&q.arrive, at, runDelivery, d)
}

// impair applies the fault-injection layer to one transmission attempt
// starting serialization at start. A non-zero cause (trace.Drop*) means
// the packet is dropped (outage or Gilbert–Elliott loss); otherwise the
// returned duration is the extra delivery delay from jitter and
// reordering, and held reports whether the reordering impairment held
// the packet back (the caller then leaves the FIFO frontier unadvanced
// so later sends may overtake it). Dropped packets are scheduled by the
// caller on the same drop queue as ambient loss, so they consume their
// serialization slot and release pooled payloads exactly once via
// runDelivery.
func (n *Network) impair(ps *pathState, im *Impairment, start time.Duration) (cause int64, extra time.Duration, held bool) {
	if len(im.Outages) > 0 && im.down(start) {
		n.stats.OutageDrops++
		return trace.DropOutage, 0, false
	}
	if ps.impairRng == nil {
		ps.impairRng = n.rng.Stream("impair", ps.label)
	}
	if im.hasGE() {
		rate := im.LossGood
		if ps.geBad {
			rate = im.LossBad
		}
		drop := rate > 0 && (rate >= 1 || ps.impairRng.Float64() < rate)
		// State transition after the attempt's drop draw.
		if ps.geBad {
			if im.PBadGood > 0 && ps.impairRng.Float64() < im.PBadGood {
				ps.geBad = false
			}
		} else if im.PGoodBad > 0 && ps.impairRng.Float64() < im.PGoodBad {
			ps.geBad = true
		}
		if drop {
			n.stats.BurstDrops++
			return trace.DropBurst, 0, false
		}
	}
	if im.JitterMax > 0 {
		extra = time.Duration(ps.impairRng.Int63n(int64(im.JitterMax)))
	}
	if im.ReorderRate > 0 && ps.impairRng.Float64() < im.ReorderRate {
		n.stats.Reordered++
		extra += im.ReorderDelay
		held = true
	}
	return 0, extra, held
}

func (n *Network) deliver(pkt Packet) {
	h, ok := n.hosts[pkt.Dst]
	if !ok {
		n.stats.NoRoute++
		releasePayload(pkt.Payload)
		return
	}
	fn, ok := h.ports[pkt.DstPort]
	if !ok {
		n.stats.NoRoute++
		releasePayload(pkt.Payload)
		return
	}
	n.stats.Delivered++
	n.trace.PacketArrived(n.sched.Now(), string(pkt.Src), string(pkt.Dst), pkt.SrcPort, pkt.DstPort, pkt.Size)
	fn(pkt)
	releasePayload(pkt.Payload)
}

// RTT returns the round-trip propagation delay between two hosts
// (sum of the two directed path delays, no serialization).
func (n *Network) RTT(a, b Addr) time.Duration {
	return n.path(a, b).Delay + n.path(b, a).Delay
}
