package simnet

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// --- reference model: container/heap over (at, seq), the seed
// implementation this package's monomorphic 4-ary heap replaced. The
// cross-check below drives the scheduler and the model with the same
// operation sequence and asserts identical dispatch order, including
// same-time FIFO ties and cancel/reschedule interleavings.

type refItem struct {
	at       time.Duration
	seq      uint64
	id       int
	canceled bool
}

type refHeap []*refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)          { *h = append(*h, x.(*refItem)) }
func (h *refHeap) Pop() any            { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *refHeap) popMin() *refItem    { return heap.Pop(h).(*refItem) }
func (h *refHeap) pushItem(i *refItem) { heap.Push(h, i) }

// refModel mirrors the scheduler's semantics: seq assigned at
// push/reschedule time, times clamped to now, canceled items skipped at
// dispatch.
type refModel struct {
	h   refHeap
	now time.Duration
	seq uint64
}

func (m *refModel) push(t time.Duration, id int) *refItem {
	if t < m.now {
		t = m.now
	}
	it := &refItem{at: t, seq: m.seq, id: id}
	m.seq++
	m.h.pushItem(it)
	return it
}

func (m *refModel) reschedule(it *refItem, t time.Duration) {
	if t < m.now {
		t = m.now
	}
	it.at = t
	it.seq = m.seq
	m.seq++
	heap.Init(&m.h) // lazy but correct: rebuild order
}

// step dispatches the next live item, returning its id (-1 when empty).
func (m *refModel) step() int {
	for m.h.Len() > 0 {
		it := m.h.popMin()
		if it.canceled {
			continue
		}
		m.now = it.at
		return it.id
	}
	return -1
}

// TestHeapCrossCheck drives the scheduler and the reference model with
// an identical randomized sequence of push / queue-enqueue / cancel /
// reschedule / dispatch operations and asserts the dispatch orders are
// identical. Times are drawn on a coarse grid so same-time FIFO
// tie-breaks are exercised constantly.
func TestHeapCrossCheck(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s Scheduler
		var m refModel

		const queues = 3
		qs := make([]*EventQueue, queues)
		qLast := make([]time.Duration, queues)
		for i := range qs {
			qs[i] = &EventQueue{}
		}

		type handle struct {
			ev *event
			it *refItem
			// queued events must not be rescheduled (contract of
			// Scheduler.reschedule); track eligibility.
			standalone bool
		}
		live := map[int]*handle{}
		nextID := 0
		var got, want []int
		fire := func(id int) func() {
			return func() {
				got = append(got, id)
				delete(live, id)
			}
		}

		grid := func() time.Duration {
			// Coarse grid around now: heavy tie traffic plus occasional
			// past times (exercising the clamp).
			return s.Now() + time.Duration(rng.Intn(8)-1)*time.Millisecond
		}

		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 3: // standalone push
				id := nextID
				nextID++
				at := grid()
				ev := s.At(at, fire(id))
				it := m.push(at, id)
				live[id] = &handle{ev: ev, it: it, standalone: true}
			case r < 6: // queue enqueue, mostly monotone, sometimes not
				qi := rng.Intn(queues)
				at := qLast[qi] + time.Duration(rng.Intn(3))*time.Millisecond
				if rng.Intn(10) == 0 {
					at = grid() // may violate monotonicity: fallback path
				}
				if at > qLast[qi] {
					qLast[qi] = at
				}
				id := nextID
				nextID++
				cb := fire(id)
				ev := s.QueueAtArg(qs[qi], at, func(any) { cb() }, nil)
				it := m.push(at, id)
				live[id] = &handle{ev: ev, it: it}
			case r < 7: // cancel a random live event
				for id, h := range live {
					s.cancelEvent(h.ev)
					h.it.canceled = true
					delete(live, id)
					break
				}
			case r < 8: // reschedule a random standalone live event
				for _, h := range live {
					if !h.standalone {
						continue
					}
					at := grid()
					s.reschedule(h.ev, at)
					m.reschedule(h.it, at)
					break
				}
			default: // dispatch one event
				ran := s.Step()
				id := m.step()
				if ran != (id >= 0) {
					t.Fatalf("seed %d op %d: Step=%v but model id=%d", seed, op, ran, id)
				}
				if id >= 0 {
					want = append(want, id)
				}
			}
			if s.Pending() != len(live) {
				t.Fatalf("seed %d op %d: Pending=%d, want %d live", seed, op, s.Pending(), len(live))
			}
		}
		// Drain both.
		for s.Step() {
		}
		for id := m.step(); id >= 0; id = m.step() {
			want = append(want, id)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: dispatched %d events, model %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch order diverges at %d: got %d, want %d", seed, i, got[i], want[i])
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("seed %d: Pending=%d after drain", seed, s.Pending())
		}
		if s.Now() != m.now {
			t.Fatalf("seed %d: clock %v, model %v", seed, s.Now(), m.now)
		}
	}
}

// TestEventQueueCoalescing asserts the structural claim behind the
// per-path delivery queues: N monotone enqueues on one queue occupy a
// single heap slot, yet dispatch in exact (at, seq) order against
// standalone events.
func TestEventQueueCoalescing(t *testing.T) {
	var s Scheduler
	q := &EventQueue{}
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.QueueAtArg(q, time.Duration(i)*time.Millisecond, func(any) { got = append(got, i) }, nil)
	}
	if len(s.heap) != 1 {
		t.Fatalf("heap holds %d entries for 100 queued events, want 1", len(s.heap))
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending=%d, want 100", s.Pending())
	}
	// A standalone event between queue entries must interleave exactly.
	s.At(50*time.Millisecond+time.Microsecond, func() { got = append(got, -1) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 101 {
		t.Fatalf("ran %d events, want 101", len(got))
	}
	for i := 0; i <= 50; i++ {
		if got[i] != i {
			t.Fatalf("got[%d]=%d, want %d", i, got[i], i)
		}
	}
	if got[51] != -1 {
		t.Fatalf("standalone event ran at position %v, want 51", got[51])
	}
	for i := 52; i < 101; i++ {
		if got[i] != i-1 {
			t.Fatalf("got[%d]=%d, want %d", i, got[i], i-1)
		}
	}
}

// TestEventQueueSameTimeFIFO asserts FIFO ordering among same-time
// events across a queue and standalone scheduling: sequence numbers are
// assigned at enqueue, so arrival order is preserved.
func TestEventQueueSameTimeFIFO(t *testing.T) {
	var s Scheduler
	q := &EventQueue{}
	var got []int
	add := func(i int) func(any) { return func(any) { got = append(got, i) } }
	s.QueueAtArg(q, time.Millisecond, add(0), nil)
	s.AtArg(time.Millisecond, add(1), nil)
	s.QueueAtArg(q, time.Millisecond, add(2), nil)
	s.AtArg(time.Millisecond, add(3), nil)
	s.QueueAtArg(q, time.Millisecond, add(4), nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time dispatch order %v, want FIFO [0 1 2 3 4]", got)
		}
	}
}

// TestEventQueueAllocationFree asserts queue enqueue+dispatch recycles
// events like the standalone path.
func TestEventQueueAllocationFree(t *testing.T) {
	var s Scheduler
	q := &EventQueue{}
	fn := func(any) {}
	s.QueueAtArg(q, 0, fn, nil)
	s.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		s.QueueAtArg(q, s.Now()+time.Microsecond, fn, nil)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per queue enqueue+dispatch, want 0", allocs)
	}
}

// TestTimerRescheduleInPlace asserts Reset on an armed timer updates the
// heap entry instead of churning a cancel tombstone: the heap must not
// grow with repeated resets.
func TestTimerRescheduleInPlace(t *testing.T) {
	var s Scheduler
	tm := s.NewTimer(func() {})
	tm.Reset(time.Millisecond)
	for i := 0; i < 100; i++ {
		tm.Reset(time.Duration(i+2) * time.Millisecond)
	}
	if len(s.heap) != 1 {
		t.Fatalf("heap holds %d entries after 101 resets of one timer, want 1", len(s.heap))
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending=%d, want 1", s.Pending())
	}
	tm.Stop()
	if s.Pending() != 0 {
		t.Fatalf("Pending=%d after Stop, want 0", s.Pending())
	}
}
