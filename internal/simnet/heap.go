package simnet

import "time"

// The scheduler's pending set is a hand-rolled 4-ary min-heap over
// *event ordered by (at, seq). A monomorphic heap beats container/heap
// on this hot path twice over: no `any` boxing and no interface calls
// for Less/Swap, and the 4-ary layout halves tree depth, trading a few
// extra comparisons per level (cheap, cache-resident) for fewer
// cache-missing levels. Events carry their heap index so membership
// tests, in-place reschedule, and removal are O(1)/O(log n) without
// search.
//
// Index geometry: children of i are 4i+1..4i+4, parent is (i-1)/4.

// less orders events by time, then FIFO by sequence number. Sequence
// numbers are unique, so this is a total order and any correct heap
// dispatches the same sequence.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushHeap inserts ev, which must already carry its (at, seq) key.
func (s *Scheduler) pushHeap(ev *event) {
	i := len(s.heap)
	s.heap = append(s.heap, ev)
	ev.index = i
	s.siftUp(i)
}

// popMin removes and returns the minimum event. The heap must be
// non-empty. The popped event's index is set to -1.
func (s *Scheduler) popMin() *event {
	h := s.heap
	ev := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.heap = h[:n]
	ev.index = -1
	if n > 0 {
		s.heap[0] = last
		last.index = 0
		s.siftDown(0)
	}
	return ev
}

// siftUp restores heap order after the event at i may have become
// smaller than its ancestors.
func (s *Scheduler) siftUp(i int) {
	h := s.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

// siftDown restores heap order after the event at i may have become
// larger than its descendants.
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	ev := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = ev
	ev.index = i
}

// reschedule moves a pending heap event to time t (clamped to now) with
// a fresh sequence number — exactly the (at, seq) key that canceling it
// and scheduling a replacement would produce, but without the cancel
// tombstone or the second heap entry. The caller must not pass queued
// or already-popped events.
func (s *Scheduler) reschedule(ev *event, t time.Duration) {
	if t < s.now {
		t = s.now
	}
	ev.at = t
	ev.seq = s.seq
	s.seq++
	i := ev.index
	s.siftUp(i)
	if ev.index == i {
		s.siftDown(i)
	}
}

// An EventQueue coalesces a stream of events whose scheduled times are
// (per queue) nondecreasing — e.g. packet deliveries on one network
// path, which serialize in send order — into a single heap entry: only
// the queue's head lives in the heap; the rest wait on an intrusive
// FIFO linked through event.next. Each event's (at, seq) key is still
// assigned at enqueue time, so ordering against events outside the
// queue (and FIFO ties) is byte-identical to pushing every event
// individually: the queue head is always the queue's minimum, hence the
// heap minimum is always the global minimum.
//
// The zero value is an empty queue. A queue is bound to the scheduler
// it is first used with.
type EventQueue struct {
	head, tail *event
}

// QueueAtArg schedules fn(arg) at absolute virtual time t on q. If t is
// not in (nondecreasing) order with q's tail — possible when a caller's
// monotonicity assumption fails — the event falls back to a standalone
// heap entry, preserving exact dispatch order at the cost of the
// coalescing win.
func (s *Scheduler) QueueAtArg(q *EventQueue, t time.Duration, fn func(any), arg any) *event {
	if t < s.now {
		t = s.now
	}
	ev := s.allocEvent()
	ev.at = t
	ev.seq = s.seq
	s.seq++
	ev.argFn = fn
	ev.arg = arg
	s.live++
	switch {
	case q.tail == nil:
		ev.q = q
		q.head, q.tail = ev, ev
		s.pushHeap(ev)
	case t >= q.tail.at:
		ev.q = q
		q.tail.next = ev
		q.tail = ev
		ev.index = -1 // pending in FIFO, not in the heap
	default:
		s.pushHeap(ev) // out of order: standalone entry
	}
	return ev
}

// advanceQueue promotes the next pending event after ev (just popped
// from the heap) to its queue's head slot. Must run before ev is
// dispatched or released: the callback may enqueue onto the same queue,
// and releaseEvent reuses the next link.
func (s *Scheduler) advanceQueue(ev *event) {
	q := ev.q
	if q == nil {
		return
	}
	ev.q = nil
	q.head = ev.next
	ev.next = nil
	if q.head != nil {
		s.pushHeap(q.head)
	} else {
		q.tail = nil
	}
}
