// Package simnet implements a deterministic discrete-event network
// simulator: a virtual clock with an event heap, hosts addressable by
// string addresses and integer ports, and directed paths with propagation
// delay, bandwidth serialization, bounded queues, and Bernoulli loss.
//
// All protocol endpoints in this repository (internal/tcpsim,
// internal/quicsim, ...) are callback state machines driven by a single
// Scheduler; a simulation run uses no goroutines, so identical seeds yield
// identical traces.
package simnet

import (
	"errors"
	"time"
)

// ErrStopped is reported by Run when the scheduler was stopped explicitly.
var ErrStopped = errors.New("simnet: scheduler stopped")

// Scheduler owns the virtual clock and the pending event set.
// The zero value is ready to use.
//
// The pending set is a monomorphic 4-ary min-heap (see heap.go) plus
// per-queue FIFOs of coalesced events (EventQueue); executed and
// canceled events are recycled through an intrusive free list, so
// steady-state event dispatch performs no heap allocation.
type Scheduler struct {
	now     time.Duration
	heap    []*event // 4-ary min-heap over (at, seq)
	seq     uint64
	live    int // scheduled, non-canceled, not-yet-executed events
	stopped bool

	free       *event // recycled events, linked through event.next
	freeTimers *Timer // recycled timers, linked through Timer.next

	// MaxEvents, when non-zero, bounds a single Run call as a runaway
	// guard; Run returns ErrEventBudget once exceeded.
	MaxEvents int
}

// ErrEventBudget is reported by Run when MaxEvents was exhausted.
var ErrEventBudget = errors.New("simnet: event budget exhausted")

// An event carries either a plain closure (fn) or an argument-passing
// callback (argFn + arg). The latter lets hot paths schedule work without
// allocating a closure per call: a package-level func(any) plus a pointer
// argument stay allocation-free.
type event struct {
	at       time.Duration
	seq      uint64 // tie-break: FIFO among same-time events
	fn       func()
	argFn    func(any)
	arg      any
	canceled bool
	index    int         // heap index; -1 when popped or FIFO-pending
	q        *EventQueue // owning queue, nil for standalone events
	next     *event      // FIFO link while queued; free-list link after
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

func (s *Scheduler) allocEvent() *event {
	ev := s.free
	if ev == nil {
		return &event{}
	}
	s.free = ev.next
	ev.next = nil
	return ev
}

// releaseEvent returns a popped event to the free list. Callers must
// guarantee no live reference to ev remains (Timer clears its reference
// before its callback runs; nothing else retains events).
func (s *Scheduler) releaseEvent(ev *event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.canceled = false
	ev.next = s.free
	s.free = ev
}

func (s *Scheduler) schedule(t time.Duration, fn func(), argFn func(any), arg any) *event {
	if t < s.now {
		t = s.now
	}
	ev := s.allocEvent()
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	s.seq++
	s.live++
	s.pushHeap(ev)
	return ev
}

// At schedules fn at absolute virtual time t. Times in the past run "now".
func (s *Scheduler) At(t time.Duration, fn func()) *event {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn delay after the current virtual time.
func (s *Scheduler) After(delay time.Duration, fn func()) *event {
	return s.schedule(s.now+delay, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute virtual time t. Passing a
// package-level function and a pointer argument avoids the per-call
// closure allocation of At.
func (s *Scheduler) AtArg(t time.Duration, fn func(any), arg any) *event {
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) delay after the current virtual time.
func (s *Scheduler) AfterArg(delay time.Duration, fn func(any), arg any) *event {
	return s.schedule(s.now+delay, nil, fn, arg)
}

// cancelEvent marks a pending event canceled. The event stays where it
// is (heap or queue FIFO) and is recycled lazily when it surfaces.
func (s *Scheduler) cancelEvent(ev *event) {
	if !ev.canceled {
		ev.canceled = true
		s.live--
	}
}

// Stop makes Run return after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live (non-canceled) scheduled events,
// including events coalesced on queues. O(1).
func (s *Scheduler) Pending() int { return s.live }

// Step executes the next event, if any, advancing the clock.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		ev := s.popMin()
		s.advanceQueue(ev)
		if ev.canceled {
			s.releaseEvent(ev)
			continue
		}
		s.live--
		s.now = ev.at
		if ev.argFn != nil {
			fn, arg := ev.argFn, ev.arg
			s.releaseEvent(ev)
			fn(arg)
		} else {
			fn := ev.fn
			s.releaseEvent(ev)
			fn()
		}
		return true
	}
	return false
}

// Run executes events until none remain, Stop is called, or the event
// budget (if set) is exhausted. It returns the number of events executed.
func (s *Scheduler) Run() (int, error) {
	s.stopped = false
	n := 0
	for s.Step() {
		n++
		if s.stopped {
			return n, ErrStopped
		}
		if s.MaxEvents > 0 && n >= s.MaxEvents {
			return n, ErrEventBudget
		}
	}
	return n, nil
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// It returns the number of events executed.
func (s *Scheduler) RunUntil(t time.Duration) int {
	n := 0
	for len(s.heap) > 0 {
		next := s.heap[0]
		if next.canceled {
			ev := s.popMin()
			s.advanceQueue(ev)
			s.releaseEvent(ev)
			continue
		}
		if next.at > t {
			break
		}
		if s.Step() {
			n++
		}
	}
	if s.now < t {
		s.now = t
	}
	return n
}
