// Package simnet implements a deterministic discrete-event network
// simulator: a virtual clock with an event heap, hosts addressable by
// string addresses and integer ports, and directed paths with propagation
// delay, bandwidth serialization, bounded queues, and Bernoulli loss.
//
// All protocol endpoints in this repository (internal/tcpsim,
// internal/quicsim, ...) are callback state machines driven by a single
// Scheduler; a simulation run uses no goroutines, so identical seeds yield
// identical traces.
package simnet

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is reported by Run when the scheduler was stopped explicitly.
var ErrStopped = errors.New("simnet: scheduler stopped")

// Scheduler owns the virtual clock and the pending event set.
// The zero value is ready to use.
type Scheduler struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stopped bool

	// MaxEvents, when non-zero, bounds a single Run call as a runaway
	// guard; Run returns ErrEventBudget once exceeded.
	MaxEvents int
}

// ErrEventBudget is reported by Run when MaxEvents was exhausted.
var ErrEventBudget = errors.New("simnet: event budget exhausted")

type event struct {
	at       time.Duration
	seq      uint64 // tie-break: FIFO among same-time events
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Times in the past run "now".
func (s *Scheduler) At(t time.Duration, fn func()) *event {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn delay after the current virtual time.
func (s *Scheduler) After(delay time.Duration, fn func()) *event {
	return s.At(s.now+delay, fn)
}

// Stop makes Run return after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live (non-canceled) scheduled events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Step executes the next event, if any, advancing the clock.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain, Stop is called, or the event
// budget (if set) is exhausted. It returns the number of events executed.
func (s *Scheduler) Run() (int, error) {
	s.stopped = false
	n := 0
	for s.Step() {
		n++
		if s.stopped {
			return n, ErrStopped
		}
		if s.MaxEvents > 0 && n >= s.MaxEvents {
			return n, ErrEventBudget
		}
	}
	return n, nil
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// It returns the number of events executed.
func (s *Scheduler) RunUntil(t time.Duration) int {
	n := 0
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.canceled {
			heap.Pop(&s.events)
			continue
		}
		if next.at > t {
			break
		}
		if s.Step() {
			n++
		}
	}
	if s.now < t {
		s.now = t
	}
	return n
}
