package simnet

import (
	"testing"
	"time"

	"h3cdn/internal/seqrand"
)

// TestJitterPreservesFIFO is the regression test for the jitter/reorder
// interaction bug: per-packet uniform jitter could schedule a later send
// to arrive before an earlier one on the same path, i.e. the jitter knob
// silently reordered. The FIFO frontier clamp guarantees jitter only
// delays; reordering (ReorderRate/ReorderDelay) is the sole mechanism
// that may let packets overtake.
func TestJitterPreservesFIFO(t *testing.T) {
	im := &Impairment{JitterMax: 5 * time.Millisecond}
	var s Scheduler
	n := NewNetwork(&s, impairPath(im), seqrand.New(42))
	a := n.AddHost("a")
	b := n.AddHost("b")

	var order []int
	var arrivals []time.Duration
	if err := b.Bind(80, func(p Packet) {
		order = append(order, p.Payload.(int))
		arrivals = append(arrivals, s.Now())
	}); err != nil {
		t.Fatal(err)
	}
	const total = 5000
	for i := 0; i < total; i++ {
		a.Send(1, "b", 80, 100, i)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != total {
		t.Fatalf("delivered %d, want %d", len(order), total)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("jitter reordered: delivery %d carried payload %d", i, id)
		}
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("arrival times not monotone at %d: %v < %v", i, arrivals[i], arrivals[i-1])
		}
	}
}

// TestJitterFIFOWithBandwidth exercises the same invariant with link
// serialization in play: back-to-back packets on a bandwidth-limited
// path leave almost no slack, so pre-fix jitter overtakes were near
// certain here.
func TestJitterFIFOWithBandwidth(t *testing.T) {
	im := &Impairment{JitterMax: 20 * time.Millisecond}
	pf := func(src, dst Addr) PathProps {
		return PathProps{Delay: time.Millisecond, BandwidthBps: 8e6, Impair: im}
	}
	var s Scheduler
	n := NewNetwork(&s, pf, seqrand.New(7))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var order []int
	if err := b.Bind(80, func(p Packet) { order = append(order, p.Payload.(int)) }); err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(1, "b", 80, 1000, i)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("jitter reordered under serialization: delivery %d carried payload %d", i, id)
		}
	}
}

// TestReorderStillOvertakes pins the counterpart: with ReorderRate set,
// held-back packets must still be overtaken — the clamp may not
// accidentally serialize reordering away.
func TestReorderStillOvertakes(t *testing.T) {
	im := &Impairment{ReorderRate: 0.2, ReorderDelay: 10 * time.Millisecond}
	var s Scheduler
	n := NewNetwork(&s, impairPath(im), seqrand.New(3))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var order []int
	if err := b.Bind(80, func(p Packet) { order = append(order, p.Payload.(int)) }); err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(1, "b", 80, 100, i)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != total {
		t.Fatalf("delivered %d, want %d", len(order), total)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("ReorderRate=0.2 produced zero overtakes — reordering is broken")
	}
	if got := n.Stats().Reordered; got == 0 {
		t.Fatal("Stats.Reordered = 0 with active reordering")
	}
}

// TestJitterWithReorderComposition drives both knobs at once and checks
// the refined invariant: removing the reorder-held packets from the
// delivery sequence must leave a monotone (FIFO) remainder. Jitter may
// never create inversions on its own; every inversion must involve a
// held packet.
func TestJitterWithReorderComposition(t *testing.T) {
	im := &Impairment{
		JitterMax:    4 * time.Millisecond,
		ReorderRate:  0.1,
		ReorderDelay: 15 * time.Millisecond,
	}
	var s Scheduler
	n := NewNetwork(&s, impairPath(im), seqrand.New(99))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var order []int
	if err := b.Bind(80, func(p Packet) { order = append(order, p.Payload.(int)) }); err != nil {
		t.Fatal(err)
	}
	const total = 3000
	for i := 0; i < total; i++ {
		a.Send(1, "b", 80, 100, i)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != total {
		t.Fatalf("delivered %d, want %d", len(order), total)
	}
	// A packet counts as "held" if anything sent after it arrived before
	// it. With the clamp, only reorder-held packets can be overtaken, so
	// the held fraction must track ReorderRate — and dropping the held
	// packets must restore a strictly increasing sequence.
	maxSeen := -1
	held := map[int]bool{}
	for _, id := range order {
		if id < maxSeen {
			held[id] = true
		} else {
			maxSeen = id
		}
	}
	frac := float64(len(held)) / total
	if frac > 0.15 {
		t.Fatalf("%.1f%% of packets overtaken — jitter is leaking reordering (want ≈10%% from ReorderRate)", frac*100)
	}
	prev := -1
	for _, id := range order {
		if held[id] {
			continue
		}
		if id <= prev {
			t.Fatalf("non-held packets out of order: %d after %d", id, prev)
		}
		prev = id
	}
}
