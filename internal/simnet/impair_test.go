package simnet

import (
	"testing"
	"time"

	"h3cdn/internal/seqrand"
)

func impairPath(im *Impairment) PathFunc {
	return func(src, dst Addr) PathProps {
		return PathProps{Delay: time.Millisecond, Impair: im}
	}
}

// TestGilbertElliottMatchedAverage checks that the matched-average
// construction actually delivers the requested long-run loss rate and
// mean burst length.
func TestGilbertElliottMatchedAverage(t *testing.T) {
	const avg, burst = 0.02, 4.0
	im := GilbertElliott(avg, burst)
	var s Scheduler
	n := NewNetwork(&s, impairPath(&im), seqrand.New(11))
	a := n.AddHost("a")
	b := n.AddHost("b")
	delivered := 0
	if err := b.Bind(80, func(Packet) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	const total = 200_000
	for i := 0; i < total; i++ {
		a.Send(1, "b", 80, 100, nil)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.BurstDrops != int64(total-delivered) {
		t.Fatalf("BurstDrops = %d, delivered = %d, total = %d", st.BurstDrops, delivered, total)
	}
	rate := float64(st.BurstDrops) / total
	if rate < avg*0.85 || rate > avg*1.15 {
		t.Fatalf("observed loss %.4f, want ≈ %.4f", rate, avg)
	}
	// Mean burst length: with LossBad=1 and PBadGood=1/burst, consecutive
	// drops average `burst`. Reconstruct burst count from the chain
	// parameters: bursts ≈ drops / meanLen.
	if st.LossDrops != 0 || st.OutageDrops != 0 {
		t.Fatalf("unexpected non-GE drops: %+v", st)
	}
}

// TestGilbertElliottBurstLength drives the chain directly (single path,
// sequential sends) and measures consecutive-drop run lengths.
func TestGilbertElliottBurstLength(t *testing.T) {
	const avg, burst = 0.05, 5.0
	im := GilbertElliott(avg, burst)
	var s Scheduler
	n := NewNetwork(&s, impairPath(&im), seqrand.New(3))
	a := n.AddHost("a")
	b := n.AddHost("b")

	// Track pattern of delivery per send by running one packet at a time.
	var runs []int
	cur := 0
	got := false
	if err := b.Bind(80, func(Packet) { got = true }); err != nil {
		t.Fatal(err)
	}
	const total = 100_000
	for i := 0; i < total; i++ {
		got = false
		a.Send(1, "b", 80, 100, nil)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if got {
			if cur > 0 {
				runs = append(runs, cur)
				cur = 0
			}
		} else {
			cur++
		}
	}
	if len(runs) == 0 {
		t.Fatal("no loss bursts observed")
	}
	sum := 0
	for _, r := range runs {
		sum += r
	}
	mean := float64(sum) / float64(len(runs))
	if mean < burst*0.8 || mean > burst*1.2 {
		t.Fatalf("mean burst length %.2f over %d bursts, want ≈ %.1f", mean, len(runs), burst)
	}
}

// TestImpairmentDeterminism runs the same impaired traffic twice and
// expects identical delivery timestamps: all fault randomness derives
// from the seeded stream hierarchy, never from host entropy or map
// iteration.
func TestImpairmentDeterminism(t *testing.T) {
	run := func() []time.Duration {
		im := GilbertElliott(0.05, 3)
		im.JitterMax = 2 * time.Millisecond
		im.ReorderRate = 0.1
		im.ReorderDelay = 500 * time.Microsecond
		var s Scheduler
		n := NewNetwork(&s, impairPath(&im), seqrand.New(42))
		a := n.AddHost("a")
		b := n.AddHost("b")
		var arrivals []time.Duration
		if err := b.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			a.Send(1, "b", 80, 100, nil)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return arrivals
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("delivery counts differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}

// TestJitterBounds checks every delivery lands within [Delay, Delay+JitterMax).
func TestJitterBounds(t *testing.T) {
	im := &Impairment{JitterMax: 3 * time.Millisecond}
	var s Scheduler
	n := NewNetwork(&s, impairPath(im), seqrand.New(9))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var arrivals []time.Duration
	if err := b.Bind(80, func(Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	const total = 500
	var sendTimes []time.Duration
	for i := 0; i < total; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		sendTimes = append(sendTimes, at)
		s.At(at, func() { a.Send(1, "b", 80, 100, nil) })
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != total {
		t.Fatalf("delivered %d, want %d (jitter must not drop)", len(arrivals), total)
	}
	varied := false
	for i, at := range arrivals {
		lat := at - sendTimes[i]
		if lat < time.Millisecond || lat >= 4*time.Millisecond {
			t.Fatalf("latency %v outside [1ms, 4ms)", lat)
		}
		if lat != time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved an arrival")
	}
}

// TestReordering checks that held-back packets let later sends overtake
// them, and that reordering never loses a packet.
func TestReordering(t *testing.T) {
	im := &Impairment{ReorderRate: 0.3, ReorderDelay: 5 * time.Millisecond}
	var s Scheduler
	n := NewNetwork(&s, impairPath(im), seqrand.New(5))
	a := n.AddHost("a")
	b := n.AddHost("b")
	var order []int
	if err := b.Bind(80, func(p Packet) { order = append(order, p.Payload.(int)) }); err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		i := i
		s.At(time.Duration(i)*time.Millisecond, func() { a.Send(1, "b", 80, 100, i) })
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != total {
		t.Fatalf("delivered %d, want %d", len(order), total)
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed")
	}
	if n.Stats().Reordered == 0 {
		t.Fatal("Reordered counter stayed zero")
	}
}

// countedPayload asserts exactly-once release of pooled payloads.
type countedPayload struct {
	released *int
	t        *testing.T
	freed    bool
}

func (c *countedPayload) Release() {
	if c.freed {
		c.t.Fatal("payload released twice")
	}
	c.freed = true
	*c.released++
}

// TestOutageDropReleasesOnce covers the satellite-3 audit: packets sent
// into an outage window consume their serialization slot (busyUntil and
// inFlight accounting identical to ambient loss drops) and release
// pooled payloads exactly once via the shared drop path.
func TestOutageDropReleasesOnce(t *testing.T) {
	im := &Impairment{Outages: []Outage{{Start: 10 * time.Millisecond, End: 30 * time.Millisecond}}}
	pf := func(src, dst Addr) PathProps {
		return PathProps{Delay: time.Millisecond, BandwidthBps: 8_000_000, QueueLimit: 64, Impair: im}
	}
	var s Scheduler
	n := NewNetwork(&s, pf, seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	delivered := 0
	if err := b.Bind(80, func(Packet) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	released := 0
	const total = 40
	for i := 0; i < total; i++ {
		at := time.Duration(i) * time.Millisecond // spans the window
		s.At(at, func() {
			a.Send(1, "b", 80, 100, &countedPayload{released: &released, t: t})
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.OutageDrops == 0 {
		t.Fatal("no outage drops in a send burst spanning the window")
	}
	if delivered+int(st.OutageDrops) != total {
		t.Fatalf("delivered %d + outage %d != %d", delivered, st.OutageDrops, total)
	}
	if released != total {
		t.Fatalf("released %d payloads, want %d (exactly once each)", released, total)
	}
	// Queue occupancy must fully drain: every drop decremented inFlight.
	ps := n.pairState("a", "b", "")
	if ps.inFlight != 0 {
		t.Fatalf("inFlight = %d after drain, want 0", ps.inFlight)
	}
}

// TestOutageWindowBoundaries pins the [Start, End) semantics.
func TestOutageWindowBoundaries(t *testing.T) {
	im := &Impairment{Outages: []Outage{{Start: 10 * time.Millisecond, End: 20 * time.Millisecond}}}
	var s Scheduler
	n := NewNetwork(&s, impairPath(im), seqrand.New(1))
	a := n.AddHost("a")
	b := n.AddHost("b")
	delivered := map[time.Duration]bool{}
	if err := b.Bind(80, func(p Packet) { delivered[p.Payload.(time.Duration)] = true }); err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{9 * time.Millisecond, 10 * time.Millisecond, 19 * time.Millisecond, 20 * time.Millisecond} {
		at := at
		s.At(at, func() { a.Send(1, "b", 80, 100, at) })
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[time.Duration]bool{9 * time.Millisecond: true, 20 * time.Millisecond: true}
	for _, at := range []time.Duration{9 * time.Millisecond, 10 * time.Millisecond, 19 * time.Millisecond, 20 * time.Millisecond} {
		if delivered[at] != want[at] {
			t.Fatalf("packet sent at %v: delivered=%v, want %v", at, delivered[at], want[at])
		}
	}
}

// TestUnimpairedPathDrawsNothing guards the zero-impairment fast path:
// a path with a nil Impairment never derives an impairment stream, so
// the ambient loss sequence is bit-identical to a build without the
// fault layer.
func TestUnimpairedPathDrawsNothing(t *testing.T) {
	var s Scheduler
	n := NewNetwork(&s, symPath(time.Millisecond, 0, 0.1), seqrand.New(4))
	a := n.AddHost("a")
	b := n.AddHost("b")
	if err := b.Bind(80, func(Packet) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a.Send(1, "b", 80, 100, nil)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ps := n.pairState("a", "b", ""); ps.impairRng != nil {
		t.Fatal("impairment RNG created on an unimpaired path")
	}
}
