package simnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// TraceSample is one capacity epoch of a trace-driven link: for Duration
// of virtual time the link serializes at Bps bits per second. Bps may be
// zero — a capacity outage: packets queue (their serialization stalls)
// until a later epoch supplies capacity, which is how cellular dead
// zones differ from loss (nothing is dropped, everything is late).
type TraceSample struct {
	Duration time.Duration
	Bps      float64
}

// TraceLink replays a time-series of capacity samples on a path —
// the Mahimahi-style variable-link model. The trace loops: virtual time
// t maps to epoch (t mod period). A TraceLink is immutable after
// construction and safe to share across paths, universes, and worker
// goroutines; serialization is a pure function of (start, size), so
// replay is deterministic regardless of sharding.
//
// TraceLink composes with the Impairment layer: the trace governs when
// bytes drain onto the wire (capacity), Impairment governs what happens
// to them afterwards (loss, jitter, reordering, outages). A packet first
// waits for link capacity under the trace, then rolls the impairment
// dice — exactly the order a real last-mile queue ahead of a lossy air
// interface imposes.
type TraceLink struct {
	name    string
	samples []TraceSample
	// offsets[i] is the start of samples[i] within one period;
	// offsets[len] == period.
	offsets []time.Duration
	period  time.Duration
}

// NewTraceLink validates samples and builds the replay structure. Every
// sample needs a positive duration and non-negative rate, and at least
// one sample must carry positive capacity (an all-zero trace could never
// finish serializing a packet).
func NewTraceLink(name string, samples []TraceSample) (*TraceLink, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("simnet: trace %q: no samples", name)
	}
	tl := &TraceLink{
		name:    name,
		samples: append([]TraceSample(nil), samples...),
		offsets: make([]time.Duration, len(samples)+1),
	}
	hasCapacity := false
	for i, s := range tl.samples {
		if s.Duration <= 0 {
			return nil, fmt.Errorf("simnet: trace %q: sample %d: non-positive duration %v", name, i, s.Duration)
		}
		if s.Bps < 0 || s.Bps != s.Bps {
			return nil, fmt.Errorf("simnet: trace %q: sample %d: invalid rate %v", name, i, s.Bps)
		}
		if s.Bps > 0 {
			hasCapacity = true
		}
		tl.offsets[i] = tl.period
		tl.period += s.Duration
	}
	tl.offsets[len(tl.samples)] = tl.period
	if !hasCapacity {
		return nil, fmt.Errorf("simnet: trace %q: every sample has zero capacity", name)
	}
	return tl, nil
}

// Name returns the trace's label (profile or file name).
func (tl *TraceLink) Name() string { return tl.name }

// Period returns the trace length; replay wraps modulo this.
func (tl *TraceLink) Period() time.Duration { return tl.period }

// Epochs returns the number of capacity samples in one period.
func (tl *TraceLink) Epochs() int { return len(tl.samples) }

// MeanBps returns the time-weighted average capacity over one period.
func (tl *TraceLink) MeanBps() float64 {
	var bits float64
	for _, s := range tl.samples {
		bits += s.Bps * s.Duration.Seconds()
	}
	return bits / tl.period.Seconds()
}

// Scaled returns a copy with every sample's rate multiplied by factor
// (the -trace-scale knob). factor must be positive and finite.
func (tl *TraceLink) Scaled(factor float64) (*TraceLink, error) {
	if !(factor > 0) || factor > 1e12 {
		return nil, fmt.Errorf("simnet: trace %q: invalid scale %v", tl.name, factor)
	}
	if factor == 1 {
		return tl, nil
	}
	scaled := make([]TraceSample, len(tl.samples))
	for i, s := range tl.samples {
		scaled[i] = TraceSample{Duration: s.Duration, Bps: s.Bps * factor}
	}
	return NewTraceLink(tl.name, scaled)
}

// epochIndex maps virtual time t to its sample index within one period
// by binary search over the offset table.
func (tl *TraceLink) epochIndex(phase time.Duration) int {
	lo, hi := 0, len(tl.samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if tl.offsets[mid+1] <= phase {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Epoch returns the absolute epoch number at virtual time t: period
// wraps keep counting (wrap w, sample i → w*Epochs()+i), so every
// capacity transition — including re-entering sample 0 — is a new epoch.
func (tl *TraceLink) Epoch(t time.Duration) int64 {
	if t < 0 {
		t = 0
	}
	wrap := int64(t / tl.period)
	phase := t % tl.period
	return wrap*int64(len(tl.samples)) + int64(tl.epochIndex(phase))
}

// EpochBps returns the capacity of absolute epoch e.
func (tl *TraceLink) EpochBps(e int64) float64 {
	i := e % int64(len(tl.samples))
	if i < 0 {
		i = 0
	}
	return tl.samples[i].Bps
}

// Serialize computes when a packet of size bits, starting serialization
// at start, finishes draining onto the wire: capacity integrates across
// epochs (zero-capacity epochs contribute nothing and simply delay the
// finish). It returns the finish time. The walk is a pure function of
// (start, bits), which is what keeps trace-driven campaigns
// byte-identical across worker counts.
func (tl *TraceLink) Serialize(start time.Duration, bits int64) time.Duration {
	if bits <= 0 {
		return start
	}
	remaining := float64(bits)
	t := start
	e := tl.Epoch(start)
	for {
		bps := tl.EpochBps(e)
		end := tl.epochEnd(e)
		if bps > 0 {
			span := (end - t).Seconds()
			capacity := bps * span
			if capacity >= remaining {
				return t + time.Duration(remaining/bps*float64(time.Second))
			}
			remaining -= capacity
		}
		t = end
		e++
	}
}

// epochEnd returns the virtual time absolute epoch e ends.
func (tl *TraceLink) epochEnd(e int64) time.Duration {
	n := int64(len(tl.samples))
	wrap := e / n
	i := e % n
	return time.Duration(wrap)*tl.period + tl.offsets[i+1]
}

// defaultMahimahiMTU is the delivery-opportunity size of the Mahimahi
// trace format: each timestamp line grants one 1500-byte transmission.
const defaultMahimahiMTU = 1500

// DefaultTraceWindow is the epoch width Mahimahi traces are bucketed
// into: delivery opportunities within one window average into a single
// capacity sample. Narrower windows track fades more closely at more
// epoch transitions per packet walk.
const DefaultTraceWindow = 100 * time.Millisecond

// ParseMahimahiTrace reads a Mahimahi packet-delivery-opportunity trace:
// one integer millisecond timestamp per line, each granting one MTU-sized
// (1500 B if mtu <= 0) delivery opportunity; timestamps must be
// non-decreasing. Opportunities are bucketed into window-wide epochs
// (DefaultTraceWindow if window <= 0) whose capacity is the bucket's
// delivered bits over the window; the trace length rounds up to a whole
// number of windows so replay wraps cleanly.
func ParseMahimahiTrace(name string, r io.Reader, mtu int, window time.Duration) (*TraceLink, error) {
	if mtu <= 0 {
		mtu = defaultMahimahiMTU
	}
	if window <= 0 {
		window = DefaultTraceWindow
	}
	var stamps []time.Duration
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		ms, err := strconv.ParseInt(text, 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("simnet: trace %q line %d: want a non-negative ms timestamp, got %q", name, line, text)
		}
		at := time.Duration(ms) * time.Millisecond
		if n := len(stamps); n > 0 && at < stamps[n-1] {
			return nil, fmt.Errorf("simnet: trace %q line %d: timestamps must be non-decreasing", name, line)
		}
		stamps = append(stamps, at)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("simnet: trace %q: %w", name, err)
	}
	if len(stamps) == 0 {
		return nil, fmt.Errorf("simnet: trace %q: no delivery opportunities", name)
	}
	// Round the span up to whole windows; the final timestamp lands in
	// the last bucket even when it sits exactly on a window boundary.
	span := stamps[len(stamps)-1] + time.Millisecond
	buckets := int((span + window - 1) / window)
	counts := make([]int64, buckets)
	for _, at := range stamps {
		counts[int(at/window)]++
	}
	bitsPerOpp := float64(mtu) * 8
	winSec := window.Seconds()
	samples := make([]TraceSample, buckets)
	for i, c := range counts {
		samples[i] = TraceSample{Duration: window, Bps: float64(c) * bitsPerOpp / winSec}
	}
	return NewTraceLink(name, samples)
}
