package simnet

import "time"

// Timer is a cancellable, resettable one-shot timer bound to a Scheduler.
// It mirrors the subset of time.Timer semantics protocol state machines
// need (RTO, PTO, idle timeouts) under virtual time.
type Timer struct {
	s  *Scheduler
	fn func()
	ev *event
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func (s *Scheduler) NewTimer(fn func()) *Timer {
	return &Timer{s: s, fn: fn}
}

// Reset (re)arms the timer to fire delay from now, canceling any pending
// expiry.
func (t *Timer) Reset(delay time.Duration) {
	t.Stop()
	t.ev = t.s.After(delay, t.fire)
}

// ResetAt (re)arms the timer to fire at absolute virtual time at.
func (t *Timer) ResetAt(at time.Duration) {
	t.Stop()
	t.ev = t.s.At(at, t.fire)
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop cancels a pending expiry. Stopping a stopped timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.canceled = true
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending expiry time; valid only when Armed.
func (t *Timer) Deadline() time.Duration {
	if t.ev == nil {
		return 0
	}
	return t.ev.at
}
