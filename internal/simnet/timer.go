package simnet

import "time"

// Timer is a cancellable, resettable one-shot timer bound to a Scheduler.
// It mirrors the subset of time.Timer semantics protocol state machines
// need (RTO, PTO, idle timeouts) under virtual time.
//
// Arming a timer allocates nothing: the scheduler event carries the timer
// pointer itself rather than a per-Reset closure.
type Timer struct {
	s    *Scheduler
	fn   func()
	ev   *event
	next *Timer // free-list link
}

// timerFire adapts the arg-carrying event callback to Timer.fire without
// a per-arm closure.
func timerFire(x any) { x.(*Timer).fire() }

// NewTimer returns a stopped timer that will invoke fn when it fires.
// Timers released via Release are recycled.
func (s *Scheduler) NewTimer(fn func()) *Timer {
	t := s.freeTimers
	if t == nil {
		t = &Timer{s: s}
	} else {
		s.freeTimers = t.next
		t.next = nil
	}
	t.fn = fn
	return t
}

// Release stops the timer and returns it to the scheduler's pool for
// reuse. The caller must drop every reference; using a released timer is
// a bug.
func (t *Timer) Release() {
	t.Stop()
	t.fn = nil
	t.next = t.s.freeTimers
	t.s.freeTimers = t
}

// Reset (re)arms the timer to fire delay from now, superseding any
// pending expiry.
func (t *Timer) Reset(delay time.Duration) { t.ResetAt(t.s.now + delay) }

// ResetAt (re)arms the timer to fire at absolute virtual time at. An
// armed timer's event is rescheduled in place — a heap key update with a
// fresh sequence number, ordering-identical to cancel+push but without
// churning a cancel tombstone through the heap on every RTO/PTO re-arm.
func (t *Timer) ResetAt(at time.Duration) {
	if t.ev != nil {
		t.s.reschedule(t.ev, at)
		return
	}
	t.ev = t.s.AtArg(at, timerFire, t)
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop cancels a pending expiry. Stopping a stopped timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.s.cancelEvent(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending expiry time; valid only when Armed.
func (t *Timer) Deadline() time.Duration {
	if t.ev == nil {
		return 0
	}
	return t.ev.at
}
