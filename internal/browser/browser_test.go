package browser

import (
	"testing"
	"time"

	"h3cdn/internal/cdn"
	"h3cdn/internal/har"
	"h3cdn/internal/httpsim"
	"h3cdn/internal/quicsim"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/webgen"
)

// testWorld wires a probe, one CDN edge ("edge.test") and one origin
// ("origin.site.sim") with a handler serving fixed-size bodies.
type testWorld struct {
	sched  *simnet.Scheduler
	net    *simnet.Network
	probe  *simnet.Host
	corpus map[string]webgen.Resource
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	sched := &simnet.Scheduler{MaxEvents: 10_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: 20 * time.Millisecond}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(3))
	w := &testWorld{sched: sched, net: n, probe: n.AddHost("probe")}

	handler := func(ctx *httpsim.ServerContext, respond func(httpsim.Response)) {
		sched.After(2*time.Millisecond, func() {
			respond(httpsim.Response{
				Status:   200,
				Header:   map[string]string{"server": "cloudflare"},
				BodySize: 2000,
			})
		})
	}
	for _, addr := range []simnet.Addr{"edge.test", "origin.site.sim"} {
		host := n.AddHost(addr)
		if _, err := httpsim.StartServer(host, httpsim.ServerConfig{
			Handler:      handler,
			TLSSessions:  tlssim.NewServerSessionState(),
			QUICSessions: quicsim.NewServerSessions(),
			EnableH3:     true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// resolver maps any *.cdn host to the edge, site.sim to the origin.
func (w *testWorld) resolver(h3 map[string]bool, h1Only map[string]bool) Resolver {
	return func(host string) (Endpoint, bool) {
		ep := Endpoint{Addr: "edge.test", SupportsH3: h3[host], H1Only: h1Only[host]}
		if host == "site.sim" {
			ep.Addr = "origin.site.sim"
		}
		if host == "unknown.sim" {
			return Endpoint{}, false
		}
		return ep, true
	}
}

func testResource(host, path string, r webgen.Resource) webgen.Resource {
	r.SetLocation(host, path)
	return r
}

func testPage(hosts []string, eligible bool) *webgen.Page {
	p := &webgen.Page{Site: "site.sim"}
	p.Resources = append(p.Resources, testResource("site.sim", "/", webgen.Resource{
		Size: 2000, Type: webgen.Document, H3Eligible: eligible,
	}))
	for i, h := range hosts {
		typ := webgen.Script
		if i%2 == 1 {
			typ = webgen.Image
		}
		p.Resources = append(p.Resources, testResource(h, "/r", webgen.Resource{
			Size: 2000, Type: typ, H3Eligible: eligible,
		}))
	}
	return p
}

func (w *testWorld) visit(t *testing.T, b *Browser, page *webgen.Page) *har.PageLog {
	t.Helper()
	var log *har.PageLog
	b.Visit(page, func(l *har.PageLog) {
		log = l
		b.CloseAll()
	})
	if _, err := w.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if log == nil {
		t.Fatal("visit never completed")
	}
	return log
}

func TestVisitH2AllEntries(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH2, Resolver: w.resolver(nil, nil)})
	log := w.visit(t, b, testPage([]string{"a.cdn", "b.cdn", "a.cdn"}, false))
	if len(log.Entries) != 4 {
		t.Fatalf("%d entries", len(log.Entries))
	}
	for _, e := range log.Entries {
		if e.Failed || e.Status != 200 || e.Protocol != "h2" {
			t.Fatalf("entry %+v", e)
		}
	}
	if log.PLT <= 0 {
		t.Fatal("PLT not positive")
	}
}

func TestH2PoolsPerHostname(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH2, Resolver: w.resolver(nil, nil)})
	// a.cdn twice: second request reuses; b.cdn gets its own conn even
	// though it resolves to the same edge (no coalescing by default).
	log := w.visit(t, b, testPage([]string{"a.cdn", "b.cdn", "a.cdn"}, false))
	if got := b.Stats().H2Conns; got != 3 { // origin + a.cdn + b.cdn
		t.Fatalf("opened %d H2 conns, want 3", got)
	}
	if log.ReusedConns != 1 {
		t.Fatalf("reused = %d, want 1", log.ReusedConns)
	}
}

func TestH2CoalescingOptIn(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH2, Resolver: w.resolver(nil, nil), CoalesceH2: true})
	log := w.visit(t, b, testPage([]string{"a.cdn", "b.cdn", "a.cdn"}, false))
	if got := b.Stats().H2Conns; got != 2 { // origin + one edge conn
		t.Fatalf("opened %d H2 conns with coalescing, want 2", got)
	}
	if log.ReusedConns != 2 {
		t.Fatalf("reused = %d, want 2", log.ReusedConns)
	}
}

func TestH3RequiresDiscovery(t *testing.T) {
	w := newTestWorld(t)
	h3 := map[string]bool{"a.cdn": true}
	b := New(w.probe, Config{Mode: ModeH3, Resolver: w.resolver(h3, nil)})

	// Cold: first visit's a.cdn requests go H2 (Alt-Svc unknown).
	log := w.visit(t, b, testPage([]string{"a.cdn"}, true))
	if log.Entries[1].Protocol != "h2" {
		t.Fatalf("cold visit used %s, want h2 until discovery", log.Entries[1].Protocol)
	}

	// Warm: Alt-Svc learned (persists across ClearSessions).
	b.ClearSessions()
	log = w.visit(t, b, testPage([]string{"a.cdn"}, true))
	if log.Entries[1].Protocol != "h3" {
		t.Fatalf("warm visit used %s, want h3", log.Entries[1].Protocol)
	}

	// Full reset forgets it again.
	b.ClearAltSvc()
	log = w.visit(t, b, testPage([]string{"a.cdn"}, true))
	if log.Entries[1].Protocol != "h2" {
		t.Fatalf("after ClearAltSvc used %s, want h2", log.Entries[1].Protocol)
	}
}

func TestAltSvcExportImport(t *testing.T) {
	w := newTestWorld(t)
	h3 := map[string]bool{"a.cdn": true}
	b := New(w.probe, Config{Mode: ModeH3, Resolver: w.resolver(h3, nil)})

	if got := b.ExportAltSvc(); got != nil {
		t.Fatalf("fresh browser exported %v, want nil", got)
	}
	w.visit(t, b, testPage([]string{"a.cdn"}, true)) // learns a.cdn via Alt-Svc
	dump := b.ExportAltSvc()
	if len(dump) != 1 || dump[0] != "a.cdn" {
		t.Fatalf("export = %v, want [a.cdn]", dump)
	}

	// A rebuilt browser seeded with the dump speaks H3 on its very first
	// visit — no rediscovery round trip (the checkpoint-resume path).
	b2 := New(w.probe, Config{Mode: ModeH3, Resolver: w.resolver(h3, nil)})
	b2.ImportAltSvc(dump)
	log := w.visit(t, b2, testPage([]string{"a.cdn"}, true))
	if log.Entries[1].Protocol != "h3" {
		t.Fatalf("imported Alt-Svc: first visit used %s, want h3", log.Entries[1].Protocol)
	}
}

func TestH3PreloadSkipsDiscovery(t *testing.T) {
	w := newTestWorld(t)
	h3 := map[string]bool{"g.cdn": true}
	res := func(host string) (Endpoint, bool) {
		ep, ok := w.resolver(h3, nil)(host)
		ep.H3Preloaded = host == "g.cdn"
		return ep, ok
	}
	b := New(w.probe, Config{Mode: ModeH3, Resolver: res})
	log := w.visit(t, b, testPage([]string{"g.cdn"}, true))
	if log.Entries[1].Protocol != "h3" {
		t.Fatalf("preloaded host used %s on first visit, want h3", log.Entries[1].Protocol)
	}
}

func TestPerResourceEligibilitySplitsConnections(t *testing.T) {
	w := newTestWorld(t)
	h3 := map[string]bool{"a.cdn": true}
	b := New(w.probe, Config{Mode: ModeH3, Resolver: w.resolver(h3, nil)})

	page := &webgen.Page{Site: "site.sim"}
	page.Resources = append(page.Resources,
		testResource("site.sim", "/", webgen.Resource{Size: 1000, Type: webgen.Document}),
		testResource("a.cdn", "/h3", webgen.Resource{Size: 1000, Type: webgen.Script, H3Eligible: true}),
		testResource("a.cdn", "/h2", webgen.Resource{Size: 1000, Type: webgen.Script, H3Eligible: false}),
	)
	w.visit(t, b, page) // warm-up: discovery
	b.ClearSessions()
	log := w.visit(t, b, page)
	protos := map[string]string{}
	for _, e := range log.Entries[1:] {
		protos[e.Path] = e.Protocol
	}
	if protos["/h3"] != "h3" || protos["/h2"] != "h2" {
		t.Fatalf("split wrong: %v", protos)
	}
}

func TestH1OnlyHostUsesH1(t *testing.T) {
	w := newTestWorld(t)
	h1 := map[string]bool{"legacy.cdn": true}
	b := New(w.probe, Config{Mode: ModeH3, Resolver: w.resolver(nil, h1)})
	log := w.visit(t, b, testPage([]string{"legacy.cdn"}, false))
	if log.Entries[1].Protocol != "http/1.1" {
		t.Fatalf("H1-only host got %s", log.Entries[1].Protocol)
	}
}

func TestH1ModeParallelConns(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH1, Resolver: w.resolver(nil, nil), MaxH1ConnsPerHost: 2})
	hosts := []string{"a.cdn", "a.cdn", "a.cdn", "a.cdn", "a.cdn"}
	log := w.visit(t, b, testPage(hosts, false))
	for _, e := range log.Entries {
		if e.Protocol != "http/1.1" || e.Failed {
			t.Fatalf("entry %+v", e)
		}
	}
	if got := b.Stats().H1Conns; got != 3 { // 1 origin + 2 a.cdn (cap)
		t.Fatalf("opened %d H1 conns, want 3", got)
	}
}

func TestUnknownHostFailsEntry(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH2, Resolver: w.resolver(nil, nil)})
	log := w.visit(t, b, testPage([]string{"unknown.sim", "a.cdn"}, false))
	var failed, ok int
	for _, e := range log.Entries {
		if e.Failed {
			failed++
		} else {
			ok++
		}
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d", failed, ok)
	}
}

func TestTimingPhasesConsistent(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH2, Resolver: w.resolver(nil, nil)})
	log := w.visit(t, b, testPage([]string{"a.cdn", "a.cdn"}, false))
	for _, e := range log.Entries {
		if e.Wait <= 0 {
			t.Fatalf("entry %s: wait %v", e.Host, e.Wait)
		}
		if e.ReusedConn && e.Connect != 0 {
			t.Fatalf("reused entry has connect %v", e.Connect)
		}
		if !e.ReusedConn && e.Connect <= 0 {
			t.Fatalf("fresh entry has connect %v", e.Connect)
		}
		if e.Blocked < 0 || e.Receive < 0 {
			t.Fatalf("negative phases: %+v", e)
		}
	}
}

func TestConsecutiveVisitsResume(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{
		Mode:          ModeH3,
		Resolver:      w.resolver(map[string]bool{"a.cdn": true}, nil),
		EnableZeroRTT: true,
	})
	page := testPage([]string{"a.cdn", "a.cdn"}, true)
	w.visit(t, b, page) // teaches Alt-Svc + tokens
	// Sessions intentionally NOT cleared: consecutive browsing.
	log := w.visit(t, b, page)
	if log.ResumedConns == 0 {
		t.Fatal("no resumed connections on consecutive visit")
	}
	// And with the standard cleanup, no resumption:
	b.ClearSessions()
	log = w.visit(t, b, page)
	if log.ResumedConns != 0 {
		t.Fatalf("resumed %d after ClearSessions", log.ResumedConns)
	}
}

func TestDiscoveryWaves(t *testing.T) {
	page := testPage([]string{"a.cdn", "b.cdn", "c.cdn", "d.cdn"}, false)
	// Types alternate Script, Image, Script, Image.
	waves := discoveryWaves(page)
	if len(waves[0]) != 1 || waves[0][0] != 0 {
		t.Fatalf("wave 0 = %v", waves[0])
	}
	if len(waves[1]) != 2 || len(waves[2]) != 2 {
		t.Fatalf("waves = %v", waves)
	}
}

func TestWavesOrderStartTimes(t *testing.T) {
	w := newTestWorld(t)
	b := New(w.probe, Config{Mode: ModeH2, Resolver: w.resolver(nil, nil)})
	page := testPage([]string{"a.cdn", "b.cdn"}, false) // script + image
	log := w.visit(t, b, page)
	doc, script, image := log.Entries[0], log.Entries[1], log.Entries[2]
	if !(doc.Started < script.Started && script.Started < image.Started) {
		t.Fatalf("wave starts not ordered: %v %v %v", doc.Started, script.Started, image.Started)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeH2.String() != "h2" || ModeH3.String() != "h3" || ModeH1.String() != "http/1.1" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() != "?" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestBrowserUsesRegistryHeaders(t *testing.T) {
	// Sanity: the test edge serves a Cloudflare signature the real
	// registry also produces, keeping this suite aligned with locedge.
	if _, ok := cdn.ProviderByName("Cloudflare"); !ok {
		t.Fatal("registry lost Cloudflare")
	}
}
