// Package browser implements the simulated page loader: it resolves each
// resource's hostname to a server, pools connections per protocol the way
// Chrome does (six HTTP/1.1 connections per host; one HTTP/2 and one
// HTTP/3 connection per hostname, with optional H2 coalescing by edge),
// learns H3 support via Alt-Svc (preconnecting QUIC in the background),
// loads resources in staged discovery waves, carries TLS-ticket and
// QUIC-token session caches across page visits, and emits HAR-like logs
// with the blocked/connect/wait/receive phases the paper analyzes.
package browser

import (
	"sort"
	"time"

	"h3cdn/internal/adaptive"
	"h3cdn/internal/har"
	"h3cdn/internal/httpsim"
	"h3cdn/internal/quicsim"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/trace"
	"h3cdn/internal/webgen"
)

// Mode selects the browsing protocol policy, mirroring the paper's two
// Chrome instances (§III-B) plus an HTTP/1.1-only ablation.
type Mode uint8

const (
	// ModeH2 disables QUIC: every request uses HTTP/2 (or H1 where
	// configured).
	ModeH2 Mode = iota + 1
	// ModeH3 prefers HTTP/3 for hosts that support it (Alt-Svc known
	// from the warm-up visit), falling back to HTTP/2.
	ModeH3
	// ModeH1 forces HTTP/1.1 everywhere (baseline ablation).
	ModeH1
	// ModeAdaptive selects H2 or H3 per host from observed first-byte
	// latencies via an adaptive.Selector (the §VII extension).
	ModeAdaptive
)

func (m Mode) String() string {
	switch m {
	case ModeH2:
		return "h2"
	case ModeH3:
		return "h3"
	case ModeH1:
		return "http/1.1"
	case ModeAdaptive:
		return "adaptive"
	default:
		return "?"
	}
}

// Endpoint is the resolver's answer for one hostname.
type Endpoint struct {
	// Addr is the serving host on the simulated network (a CDN edge or
	// an origin server).
	Addr simnet.Addr
	// SupportsH3 reports H3 availability at that hostname.
	SupportsH3 bool
	// H3Preloaded marks hosts whose H3 support the browser knows ahead
	// of any response (Chrome's built-in QUIC hints for Google
	// properties); others require per-visit Alt-Svc discovery.
	H3Preloaded bool
	// H1Only marks servers stuck on HTTP/1.x (no H2, no H3).
	H1Only bool
}

// Resolver maps hostnames to endpoints (warm DNS: zero lookup cost,
// matching the paper's repeat-visit protocol).
type Resolver func(host string) (Endpoint, bool)

// Config tunes the browser.
type Config struct {
	// Mode is the protocol policy.
	Mode Mode
	// Resolver is required.
	Resolver Resolver
	// MaxH1ConnsPerHost caps parallel H1 connections. Default 6.
	MaxH1ConnsPerHost int
	// CoalesceH2 pools H2 connections by edge address instead of
	// hostname (connection coalescing under a provider-wide
	// certificate). Chrome rarely achieves this in practice, so the
	// default pools per hostname.
	CoalesceH2 bool
	// TLSTickets / QUICTokens are the session caches. When nil the
	// browser creates private ones (cleared with ClearSessions).
	TLSTickets *tlssim.TicketStore
	QUICTokens *quicsim.TokenStore
	// EnableEarlyData / EnableZeroRTT allow 0-RTT on resumed
	// connections.
	EnableEarlyData bool
	EnableZeroRTT   bool
	// HandshakeCPU models client crypto compute time.
	HandshakeCPU time.Duration
	// Selector drives ModeAdaptive; required in that mode.
	Selector *adaptive.Selector
	// TLS12 forces the legacy 2-round-trip TLS handshake for H1/H2
	// connections — the paper's 3-RTT "H2 + TLS/1.2" baseline suite
	// (ablation knob; default is TLS 1.3).
	TLS12 bool
	// MaxFetchRetries bounds transparent re-fetches of a resource after
	// a transport error (the dead connection is evicted from the pool
	// and the retry dials fresh). Default 2; negative disables retries.
	// Healthy paths never hit this, so the default changes nothing on
	// baseline runs.
	MaxFetchRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt. Default 200ms.
	RetryBackoff time.Duration
	// Recovery, when non-nil, receives transport loss-recovery counters
	// from every connection this browser opens, plus its own fetch-retry
	// count.
	Recovery *simnet.RecoveryStats
	// Pools, when non-nil, supplies the universe's shared allocation
	// arenas, threaded into every connection this browser opens. The
	// universe rewinds them at visit boundaries.
	Pools *httpsim.Pools
	// Trace, when non-nil, receives browser-level fetch lifecycle events
	// and is threaded into every connection this browser opens. Nil-safe:
	// every emit is a no-op when nil.
	Trace *trace.Tracer
}

// Browser loads pages from one probe host.
type Browser struct {
	host  *simnet.Host
	sched *simnet.Scheduler
	cfg   Config

	tickets *tlssim.TicketStore
	tokens  *quicsim.TokenStore
	altSvc  map[string]bool // hosts whose H3 support has been discovered

	conns map[string]*pooledConn   // h2/h3 pools
	h1    map[string][]*pooledConn // h1 pools per address

	// keyBuf assembles pool-key lookups without allocating; freeConns
	// recycles pooledConn records reclaimed by CloseAll (safe: fetch
	// states drop their pc references before the next visit's dials).
	keyBuf    []byte
	freeConns []*pooledConn
	closeKeys []string

	// Per-fetch state arena. Finished states are reclaimed at the next
	// visit start — by then the scheduler has run dry, so no transport
	// callback can still reference them; unfinished states (a visit cut
	// short by a scheduler error) are never reused.
	freeStates []*fetchState
	liveStates []*fetchState

	// fetchSeq numbers fetches for trace correlation (monotonic across
	// visits; incremented only when tracing is active).
	fetchSeq int64

	stats Stats
}

// sharedReqHeader is the constant header set every browser request
// carries. httpsim treats Request.Header as read-only, so one immutable
// map serves all requests.
var sharedReqHeader = map[string]string{"accept": "*/*", "user-agent": "simbrowser/1.0"}

// fetchState carries one resource fetch across its transport callbacks
// and retries. States are pooled per browser: the four RequestEvents
// closures are bound once, when the state object is first created, and
// every later fetch through the same object reuses them — the hot path
// allocates neither closures nor request structs.
type fetchState struct {
	b       *Browser
	res     *webgen.Resource
	ep      Endpoint
	entry   *har.Entry
	attempt int
	done    func() // wave barrier callback
	pc      *pooledConn

	finished       bool
	creator        bool
	h3Discoverable bool
	seq            int64
	sentAt         time.Duration
	firstByte      time.Duration

	req    httpsim.Request
	events httpsim.RequestEvents
}

func (b *Browser) newFetchState() *fetchState {
	if n := len(b.freeStates); n > 0 {
		st := b.freeStates[n-1]
		b.freeStates = b.freeStates[:n-1]
		return st
	}
	st := &fetchState{b: b}
	st.req.Header = sharedReqHeader
	st.events = httpsim.RequestEvents{
		OnSent:     st.onSent,
		OnHeaders:  st.onHeaders,
		OnComplete: st.onComplete,
		OnError:    st.onError,
	}
	return st
}

// reclaimStates returns finished fetch states to the free list.
func (b *Browser) reclaimStates() {
	live := b.liveStates[:0]
	for _, st := range b.liveStates {
		if st.finished {
			st.res, st.entry, st.done, st.pc = nil, nil, nil, nil
			b.freeStates = append(b.freeStates, st)
		} else {
			live = append(live, st)
		}
	}
	b.liveStates = live
}

// Stats counts browser-level activity across visits.
type Stats struct {
	ConnsOpened    int64
	H3Conns        int64
	H2Conns        int64
	H1Conns        int64
	ResumedConns   int64
	Requests       int64
	RetriedEntries int64
	FailedEntries  int64
}

type pooledConn struct {
	conn   httpsim.ClientConn
	used   int           // requests assigned so far
	dialAt time.Duration // when the dial was initiated
	key    string        // h2/h3 pool key, for eviction on error
	h1Host string        // h1 pool key, for eviction on error
}

// New creates a browser on the probe host.
func New(host *simnet.Host, cfg Config) *Browser {
	if cfg.MaxH1ConnsPerHost == 0 {
		cfg.MaxH1ConnsPerHost = 6
	}
	if cfg.MaxFetchRetries == 0 {
		cfg.MaxFetchRetries = 2
	} else if cfg.MaxFetchRetries < 0 {
		cfg.MaxFetchRetries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 200 * time.Millisecond
	}
	b := &Browser{
		host:    host,
		sched:   host.Scheduler(),
		cfg:     cfg,
		tickets: cfg.TLSTickets,
		tokens:  cfg.QUICTokens,
		conns:   make(map[string]*pooledConn),
		h1:      make(map[string][]*pooledConn),
		altSvc:  make(map[string]bool),
	}
	if b.tickets == nil {
		b.tickets = tlssim.NewTicketStore()
	}
	if b.tokens == nil {
		b.tokens = quicsim.NewTokenStore()
	}
	return b
}

// Stats returns a snapshot of browser counters.
func (b *Browser) Stats() Stats { return b.stats }

// ClearSessions drops TLS tickets and QUIC tokens (the paper's standard
// between-page cleanup; consecutive-visit mode skips this). The Alt-Svc
// cache survives: Chrome stores learned H3 support in its network
// properties, which per-visit cache clearing does not touch — so the
// warm-up visit teaches the measured visit which hosts speak H3.
func (b *Browser) ClearSessions() {
	b.tickets.Clear()
	b.tokens.Clear()
}

// ClearAltSvc additionally forgets learned H3 support (full cold start).
func (b *Browser) ClearAltSvc() {
	b.altSvc = make(map[string]bool)
}

// ExportAltSvc returns the hosts whose H3 support this browser has
// learned, sorted — the serializable per-user session memory a traffic
// engine carries between sessions (and across checkpoints) while the
// browser object itself is rebuilt.
func (b *Browser) ExportAltSvc() []string {
	if len(b.altSvc) == 0 {
		return nil
	}
	hosts := make([]string, 0, len(b.altSvc))
	for h, known := range b.altSvc {
		if known {
			hosts = append(hosts, h)
		}
	}
	sort.Strings(hosts)
	return hosts
}

// ImportAltSvc seeds learned H3 support from a prior ExportAltSvc dump.
// It only records knowledge — no preconnects fire until a fetch touches
// the host, matching a browser restart with a persisted properties file.
func (b *Browser) ImportAltSvc(hosts []string) {
	for _, h := range hosts {
		b.altSvc[h] = true
	}
}

// CloseAll terminates all pooled connections (end of a page visit) in
// deterministic key order so packet emission is reproducible. The maps,
// key scratch, and pooledConn records are all reused across visits.
func (b *Browser) CloseAll() {
	keys := b.closeKeys[:0]
	for k := range b.conns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pc := b.conns[k]
		pc.conn.Close()
		b.recycleConn(pc)
	}
	clear(b.conns)

	hosts := keys[:0]
	for k := range b.h1 {
		hosts = append(hosts, k)
	}
	sort.Strings(hosts)
	for _, k := range hosts {
		for _, pc := range b.h1[k] {
			pc.conn.Close()
			b.recycleConn(pc)
		}
	}
	clear(b.h1)
	b.closeKeys = hosts[:0]
}

// recycleConn returns a pooledConn record to the free list. Only called
// once the visit has completed: the record is reused no sooner than the
// next visit, after reclaimStates has dropped every st.pc reference.
func (b *Browser) recycleConn(pc *pooledConn) {
	*pc = pooledConn{}
	b.freeConns = append(b.freeConns, pc)
}

// newPooledConn pops a recycled record or allocates one.
func (b *Browser) newPooledConn() *pooledConn {
	if n := len(b.freeConns); n > 0 {
		pc := b.freeConns[n-1]
		b.freeConns[n-1] = nil
		b.freeConns = b.freeConns[:n-1]
		return pc
	}
	return &pooledConn{}
}

// connKey assembles "prefix+host" in the reused scratch buffer; the
// result is only valid until the next connKey call. Map lookups via
// string(connKey(...)) do not allocate.
func (b *Browser) connKey(prefix, host string) []byte {
	b.keyBuf = append(append(b.keyBuf[:0], prefix...), host...)
	return b.keyBuf
}

// Visit loads a page with progressive discovery, approximating a browser
// render pipeline: the document first, then head resources (scripts and
// stylesheets), then body media (images and fonts), then everything else.
// Each wave starts when the previous one completes. onDone receives the
// completed HAR page log; PLT is the time from visit start until the last
// entry finishes — the onLoad analogue.
func (b *Browser) Visit(page *webgen.Page, onDone func(*har.PageLog)) {
	b.visit(page, &har.PageLog{Entries: make([]har.Entry, len(page.Resources))}, onDone)
}

// VisitInto is Visit with a caller-owned scratch log: the struct is reset
// and its Entries backing array reused when capacity allows. Intended for
// discarded warm passes — the log and its entries are only valid until
// the next VisitInto call with the same scratch.
func (b *Browser) VisitInto(page *webgen.Page, log *har.PageLog, onDone func(*har.PageLog)) {
	n := len(page.Resources)
	entries := log.Entries
	if cap(entries) < n {
		entries = make([]har.Entry, n)
	} else {
		entries = entries[:n]
		clear(entries)
	}
	*log = har.PageLog{Entries: entries}
	b.visit(page, log, onDone)
}

func (b *Browser) visit(page *webgen.Page, log *har.PageLog, onDone func(*har.PageLog)) {
	b.reclaimStates()
	start := b.sched.Now()
	log.Site = page.Site
	log.Protocol = b.cfg.Mode.String()
	if len(page.Resources) == 0 {
		onDone(log)
		return
	}

	waves := discoveryWaves(page)
	totalLeft := len(page.Resources)
	var lastDone time.Duration
	entryDone := func() {
		totalLeft--
		if t := b.sched.Now(); t > lastDone {
			lastDone = t
		}
		if totalLeft == 0 {
			log.PLT = lastDone - start
			log.Recount()
			onDone(log)
		}
	}

	// A wave unlocks the next once most of it (80%) has completed:
	// browsers overlap discovery stages, so one straggling resource
	// does not gate everything behind it. PLT still waits for all.
	var startWave func(w int)
	startWave = func(w int) {
		if w >= len(waves) {
			return
		}
		idxs := waves[w]
		if len(idxs) == 0 {
			startWave(w + 1)
			return
		}
		unlockAt := (len(idxs)*4 + 4) / 5 // ceil(0.8n)
		completed := 0
		unlocked := false
		done := func() {
			completed++
			if !unlocked && completed >= unlockAt {
				unlocked = true
				startWave(w + 1)
			}
			entryDone()
		}
		for _, i := range idxs {
			b.fetch(&page.Resources[i], &log.Entries[i], done)
		}
	}
	startWave(0)
}

// discoveryWaves orders resource indices into discovery stages: document;
// scripts+stylesheets; images+fonts; other.
func discoveryWaves(page *webgen.Page) [4][]int {
	var waves [4][]int
	waves[0] = []int{0}
	for i := 1; i < len(page.Resources); i++ {
		switch page.Resources[i].Type {
		case webgen.Script, webgen.Stylesheet:
			waves[1] = append(waves[1], i)
		case webgen.Image, webgen.Font:
			waves[2] = append(waves[2], i)
		default:
			waves[3] = append(waves[3], i)
		}
	}
	return waves
}

// fetch issues one resource request and fills the HAR entry.
func (b *Browser) fetch(res *webgen.Resource, entry *har.Entry, done func()) {
	entry.URL = res.URL()
	entry.Host = res.Host()
	entry.Path = res.Path()
	entry.Started = b.sched.Now()
	b.stats.Requests++
	b.fetchSeq++
	b.cfg.Trace.FetchStart(entry.Started, b.fetchSeq, res.Host(), res.Path())

	ep, ok := b.cfg.Resolver(res.Host())
	if !ok {
		entry.Failed = true
		entry.Error = "no route to host"
		b.cfg.Trace.FetchFail(b.sched.Now(), b.fetchSeq, entry.Error)
		b.stats.FailedEntries++
		done()
		return
	}

	st := b.newFetchState()
	st.res, st.ep, st.entry, st.done = res, ep, entry, done
	st.attempt = 0
	st.finished = false
	st.seq = b.fetchSeq
	st.sentAt, st.firstByte = 0, 0
	b.liveStates = append(b.liveStates, st)
	st.run()
}

// finish reports the fetch to the page barrier exactly once; it is
// idempotent across attempts, so a completion can never double-count.
func (st *fetchState) finish() {
	if st.finished {
		return
	}
	st.finished = true
	st.done()
}

// run starts one try of the fetch. A transport error evicts the dead
// connection from the pool and, within Config.MaxFetchRetries, re-issues
// the request on a fresh connection after exponential backoff; the entry
// is marked failed only once the budget is exhausted.
func (st *fetchState) run() {
	b := st.b
	pc, creator := b.connFor(st.res.Host(), st.ep, st.res.H3Eligible)
	creator = creator || pc.used == 0 // first user of a preconnected conn
	pc.used++
	st.pc = pc
	st.creator = creator
	st.entry.Protocol = pc.conn.Protocol().String()
	st.entry.ReusedConn = !creator
	st.h3Discoverable = b.wantsH3() && st.ep.SupportsH3 && !st.ep.H1Only

	st.req.Host = st.res.Host()
	st.req.Path = st.res.Path()
	pc.conn.Do(&st.req, st.events)
}

func (st *fetchState) onSent() {
	st.sentAt = st.b.sched.Now()
	st.b.cfg.Trace.FetchSent(st.sentAt, st.pc.conn.TraceID(), st.seq)
}

func (st *fetchState) onHeaders(m httpsim.ResponseMeta) {
	b, entry := st.b, st.entry
	st.firstByte = b.sched.Now()
	entry.Status = m.Status
	entry.BodySize = m.BodySize
	entry.Header = m.Header
	if b.cfg.Mode == ModeAdaptive && b.cfg.Selector != nil && !entry.Failed {
		proto := adaptive.H2
		if entry.Protocol == "h3" {
			proto = adaptive.H3
		}
		if entry.Protocol != "http/1.1" {
			b.cfg.Selector.Record(st.res.Host(), proto, st.firstByte-entry.Started)
		}
	}
	if st.h3Discoverable && !b.altSvc[st.res.Host()] {
		// Alt-Svc: the response advertises H3. Chrome establishes the
		// QUIC connection in the background so later requests use it
		// without paying the handshake inline.
		b.altSvc[st.res.Host()] = true
		b.cfg.Trace.AltSvcLearned(b.sched.Now(), st.res.Host())
		b.preconnectH3(st.res.Host(), st.ep)
	}
}

func (st *fetchState) onComplete() {
	b, entry, pc := st.b, st.entry, st.pc
	now := b.sched.Now()
	if st.creator {
		// Connect charges only the handshake portion this request
		// actually waited for; a background preconnect that finished
		// earlier costs zero.
		hsEnd := pc.dialAt + pc.conn.HandshakeDuration()
		if hsEnd > entry.Started {
			entry.Connect = hsEnd - entry.Started
		}
		// HAR 1.2: ssl is the TLS portion of connect (included in it,
		// never exceeding it). A preconnect that finished early charges
		// zero connect and therefore zero ssl.
		if ssl := pc.conn.SSLDuration(); ssl > entry.Connect {
			entry.SSL = entry.Connect
		} else {
			entry.SSL = ssl
		}
		entry.ResumedConn = pc.conn.Resumed()
		if entry.ResumedConn {
			b.stats.ResumedConns++
		}
	}
	entry.Blocked = st.sentAt - entry.Started - entry.Connect
	if entry.Blocked < 0 {
		entry.Blocked = 0
	}
	entry.Wait = st.firstByte - st.sentAt
	entry.Receive = now - st.firstByte
	b.cfg.Trace.FetchDone(now, pc.conn.TraceID(), st.seq, entry.Status, entry.BodySize)
	st.finish()
}

func (st *fetchState) onError(err error) {
	b := st.b
	b.evict(st.pc)
	if st.attempt < b.cfg.MaxFetchRetries {
		st.entry.Retries++
		b.stats.RetriedEntries++
		if b.cfg.Recovery != nil {
			b.cfg.Recovery.FetchRetries++
		}
		backoff := b.cfg.RetryBackoff << st.attempt
		st.attempt++
		b.cfg.Trace.FetchRetry(b.sched.Now(), st.seq, st.attempt, err.Error())
		b.sched.After(backoff, st.run)
		return
	}
	st.entry.Failed = true
	st.entry.Error = err.Error()
	b.cfg.Trace.FetchFail(b.sched.Now(), st.seq, st.entry.Error)
	b.stats.FailedEntries++
	st.finish()
}

// evict drops a connection that reported a transport error from the
// pools, so subsequent fetches dial fresh instead of queueing onto a
// dead connection (which would fail every request routed to it). The
// identity check tolerates a pool slot already replaced by a retry.
func (b *Browser) evict(pc *pooledConn) {
	if pc.key != "" {
		if cur, ok := b.conns[pc.key]; ok && cur == pc {
			delete(b.conns, pc.key)
		}
		return
	}
	if pc.h1Host != "" {
		list := b.h1[pc.h1Host]
		for i, o := range list {
			if o == pc {
				b.h1[pc.h1Host] = append(list[:i], list[i+1:]...)
				return
			}
		}
	}
}

// wantsH3 reports whether this browsing mode ever uses HTTP/3.
func (b *Browser) wantsH3() bool {
	return b.cfg.Mode == ModeH3 || b.cfg.Mode == ModeAdaptive
}

// preconnectH3 opens the host's H3 connection in the background (upon
// Alt-Svc discovery) so subsequent requests find it pooled.
func (b *Browser) preconnectH3(host string, ep Endpoint) {
	if !b.wantsH3() {
		return
	}
	if _, ok := b.conns[string(b.connKey("h3|", host))]; ok {
		return
	}
	b.cfg.Trace.Preconnect(b.sched.Now(), host)
	pc := b.dialH3(host, ep)
	pc.key = "h3|" + host
	b.conns[pc.key] = pc
}

func (b *Browser) dialH3(host string, ep Endpoint) *pooledConn {
	pc := b.newPooledConn()
	pc.dialAt = b.sched.Now()
	pc.conn = httpsim.DialH3(b.host, ep.Addr, httpsim.QUICPort, host, httpsim.H3DialConfig{
		Tokens:        b.tokens,
		EnableZeroRTT: b.cfg.EnableZeroRTT,
		HandshakeCPU:  b.cfg.HandshakeCPU,
		// Userspace QUIC retransmits lost handshakes from a
		// cached RTT estimate (Chromium kInitialRtt), far
		// sooner than kernel TCP's fixed 1s SYN timer.
		QUIC:  quicsim.Config{PTOInit: 150 * time.Millisecond, Recovery: b.cfg.Recovery},
		Pools: b.cfg.Pools,
		Trace: b.cfg.Trace,
	})
	b.stats.ConnsOpened++
	b.stats.H3Conns++
	return pc
}

// connFor returns the pooled connection serving host, creating one if
// needed; creator reports whether this request triggered the dial.
// h3Eligible is the per-resource rollout flag: an H3-capable host's
// uncovered resources still travel over HTTP/2, splitting the host's
// traffic across two connections (§VI-C's deployment density).
func (b *Browser) connFor(host string, ep Endpoint, h3Eligible bool) (*pooledConn, bool) {
	// H3 additionally requires the browser to know about it: preloaded
	// hints or Alt-Svc learned from a prior response (the warm-up visit
	// in the paper's protocol).
	h3Known := ep.H3Preloaded || b.altSvc[host]
	h3Possible := ep.SupportsH3 && !ep.H1Only && h3Known && h3Eligible
	useH3 := b.cfg.Mode == ModeH3 && h3Possible
	if b.cfg.Mode == ModeAdaptive && b.cfg.Selector != nil {
		useH3 = b.cfg.Selector.Choose(host, h3Possible) == adaptive.H3
	}
	switch {
	case ep.H1Only:
		return b.h1ConnFor(host, ep)
	case useH3:
		if pc, ok := b.conns[string(b.connKey("h3|", host))]; ok {
			return pc, false
		}
		if ep.H3Preloaded && !b.altSvc[host] {
			b.cfg.Trace.PreloadHit(b.sched.Now(), host)
		}
		pc := b.dialH3(host, ep)
		pc.key = "h3|" + host
		b.conns[pc.key] = pc
		return pc, true

	case b.cfg.Mode == ModeH1:
		return b.h1ConnFor(host, ep)

	default:
		keyHost := host
		if b.cfg.CoalesceH2 {
			keyHost = string(ep.Addr)
		}
		if pc, ok := b.conns[string(b.connKey("h2|", keyHost))]; ok {
			return pc, false
		}
		pc := b.newPooledConn()
		pc.dialAt = b.sched.Now()
		pc.conn = httpsim.DialH2(b.host, ep.Addr, httpsim.TCPPort, host, b.dialCfg())
		pc.key = "h2|" + keyHost
		b.conns[pc.key] = pc
		b.stats.ConnsOpened++
		b.stats.H2Conns++
		return pc, true
	}
}

func (b *Browser) dialCfg() httpsim.DialConfig {
	cfg := httpsim.DialConfig{
		TLSTickets:      b.tickets,
		EnableEarlyData: b.cfg.EnableEarlyData,
		HandshakeCPU:    b.cfg.HandshakeCPU,
		TCP:             httpsim.TCPOptions{Recovery: b.cfg.Recovery},
		Pools:           b.cfg.Pools,
		Trace:           b.cfg.Trace,
	}
	if b.cfg.TLS12 {
		cfg.TLSVersion = tlssim.TLS12
	}
	return cfg
}

// h1ConnFor picks an idle H1 connection for the host, opening new ones up
// to the per-host cap, then queueing on the least-loaded.
func (b *Browser) h1ConnFor(host string, ep Endpoint) (*pooledConn, bool) {
	key := host
	list := b.h1[key]
	for _, pc := range list {
		if pc.conn.InFlight() == 0 {
			return pc, false
		}
	}
	if len(list) < b.cfg.MaxH1ConnsPerHost {
		pc := b.newPooledConn()
		pc.dialAt = b.sched.Now()
		pc.conn = httpsim.DialH1(b.host, ep.Addr, httpsim.TCPPort, host, b.dialCfg())
		pc.h1Host = key
		b.h1[key] = append(b.h1[key], pc)
		b.stats.ConnsOpened++
		b.stats.H1Conns++
		return pc, true
	}
	best := list[0]
	for _, pc := range list[1:] {
		if pc.conn.InFlight() < best.conn.InFlight() {
			best = pc
		}
	}
	return best, false
}
