// Package har defines the HAR-like log structures the simulated browser
// produces — the same per-entry timing phases (blocked, connect, send,
// wait, receive) that the paper extracts from Chrome-HAR files, plus the
// connection bookkeeping (reused / resumed) its analyses depend on.
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Entry records one resource load.
type Entry struct {
	URL      string `json:"url"`
	Host     string `json:"host"`
	Path     string `json:"path"`
	Protocol string `json:"protocol"` // "http/1.1", "h2", "h3"
	Status   int    `json:"status"`
	BodySize int    `json:"bodySize"`

	// Header carries the response headers (input to locedge).
	Header map[string]string `json:"header,omitempty"`

	// Started is the virtual time the browser issued the request.
	Started time.Duration `json:"started"`

	// Timing phases. Connect covers transport + TLS handshakes and is
	// zero for requests on a reused connection — the paper's reuse
	// detector (§VI-C). SSL is the TLS portion of Connect per HAR 1.2
	// semantics: it is included in Connect, never additional to it, so
	// the pre-split combined value remains reconcilable as Connect
	// itself and the transport-only part as Connect-SSL. For H3 the
	// integrated QUIC handshake is attributed entirely to SSL.
	Blocked time.Duration `json:"blocked"`
	Connect time.Duration `json:"connect"`
	SSL     time.Duration `json:"ssl,omitempty"`
	Wait    time.Duration `json:"wait"`
	Receive time.Duration `json:"receive"`

	// ReusedConn marks requests multiplexed onto an existing
	// connection. ResumedConn marks requests whose connection was
	// established via TLS/QUIC session resumption (§VI-D).
	ReusedConn  bool `json:"reusedConn"`
	ResumedConn bool `json:"resumedConn"`

	// Failed records transport errors (excluded from timing analyses,
	// matching the paper's treatment of incomplete entries). Retries
	// counts transparent re-fetches after transport errors; an entry is
	// Failed only once the retry budget is exhausted. Both are zero —
	// and absent from the serialized form — on healthy paths, keeping
	// fixed-seed baseline datasets byte-identical.
	Failed  bool   `json:"failed,omitempty"`
	Error   string `json:"error,omitempty"`
	Retries int    `json:"retries,omitempty"`
}

// Total returns the entry's end-to-end duration.
func (e *Entry) Total() time.Duration {
	return e.Blocked + e.Connect + e.Wait + e.Receive
}

// PageLog aggregates one page visit.
type PageLog struct {
	Site     string  `json:"site"`
	Protocol string  `json:"protocol"` // browsing mode: "h2" or "h3"
	Probe    string  `json:"probe"`
	Entries  []Entry `json:"entries"`

	// PLT is the page load time: visit start to last entry completion
	// (the onLoad analogue for the simulated loader).
	PLT time.Duration `json:"plt"`

	// ReusedConns / ResumedConns count entries with the respective
	// connection state, as the paper counts them.
	ReusedConns  int `json:"reusedConns"`
	ResumedConns int `json:"resumedConns"`
}

// Recount recomputes the aggregate counters from the entries.
func (p *PageLog) Recount() {
	p.ReusedConns, p.ResumedConns = 0, 0
	for i := range p.Entries {
		if p.Entries[i].ReusedConn {
			p.ReusedConns++
		}
		if p.Entries[i].ResumedConn {
			p.ResumedConns++
		}
	}
}

// Log is a collection of page visits (one measurement campaign).
type Log struct {
	Seed  uint64    `json:"seed"`
	Pages []PageLog `json:"pages"`
}

// WriteJSON serializes the log.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("har: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a log.
func ReadJSON(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("har: decode: %w", err)
	}
	return &l, nil
}
