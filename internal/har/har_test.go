package har

import (
	"bytes"
	"testing"
	"time"
)

func TestEntryTotal(t *testing.T) {
	e := Entry{Blocked: 1 * time.Millisecond, Connect: 2 * time.Millisecond, Wait: 3 * time.Millisecond, Receive: 4 * time.Millisecond}
	if e.Total() != 10*time.Millisecond {
		t.Fatalf("Total = %v", e.Total())
	}
}

func TestRecount(t *testing.T) {
	p := PageLog{Entries: []Entry{
		{ReusedConn: true},
		{ReusedConn: true, ResumedConn: true},
		{},
	}}
	p.Recount()
	if p.ReusedConns != 2 || p.ResumedConns != 1 {
		t.Fatalf("reused=%d resumed=%d", p.ReusedConns, p.ResumedConns)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := &Log{
		Seed: 42,
		Pages: []PageLog{{
			Site:     "site001.sim",
			Protocol: "h3",
			Probe:    "utah/0",
			PLT:      1234 * time.Millisecond,
			Entries: []Entry{{
				URL:      "https://s0.google-cdn.sim/a.js",
				Host:     "s0.google-cdn.sim",
				Protocol: "h3",
				Status:   200,
				BodySize: 4096,
				Header:   map[string]string{"server": "gws"},
				Connect:  5 * time.Millisecond,
				Wait:     20 * time.Millisecond,
				Receive:  3 * time.Millisecond,
			}},
		}},
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || len(got.Pages) != 1 {
		t.Fatalf("log = %+v", got)
	}
	p := got.Pages[0]
	if p.Site != "site001.sim" || p.PLT != 1234*time.Millisecond {
		t.Fatalf("page = %+v", p)
	}
	e := p.Entries[0]
	if e.Host != "s0.google-cdn.sim" || e.Header["server"] != "gws" || e.Wait != 20*time.Millisecond {
		t.Fatalf("entry = %+v", e)
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
