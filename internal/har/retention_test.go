package har

import "testing"

func TestParseRetention(t *testing.T) {
	cases := []struct {
		in      string
		want    Retention
		wantErr bool
	}{
		{in: "all", want: Retention{Kind: RetainAll}},
		{in: "none", want: Retention{Kind: RetainNone}},
		{in: "sample:16", want: Retention{Kind: RetainSample, Sample: 16}},
		{in: "sample:1", want: Retention{Kind: RetainSample, Sample: 1}},
		{in: "sample:0", wantErr: true},
		{in: "sample:-3", wantErr: true},
		{in: "sample:", wantErr: true},
		{in: "sample:x", wantErr: true},
		{in: "some", wantErr: true},
		{in: "", wantErr: true},
		{in: "ALL", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseRetention(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseRetention(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRetention(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRetention(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.Validate() != nil {
			t.Errorf("ParseRetention(%q).Validate() failed", c.in)
		}
		back, err := ParseRetention(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip of %q via String() = %q failed", c.in, got.String())
		}
	}
}

func TestRetentionValidate(t *testing.T) {
	if (Retention{}).Validate() != nil {
		t.Error("zero-value retention (RetainAll) must validate")
	}
	if (Retention{Kind: RetainSample}).Validate() == nil {
		t.Error("RetainSample without a size must not validate")
	}
	if (Retention{Kind: RetentionKind(42)}).Validate() == nil {
		t.Error("unknown kind must not validate")
	}
}
