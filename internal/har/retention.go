package har

import (
	"fmt"
	"strconv"
	"strings"
)

// RetentionKind selects how a campaign handles finished PageLogs after
// they have been folded into the streaming metric accumulators.
type RetentionKind int

const (
	// RetainAll keeps every PageLog in the dataset — the zero value, so
	// existing configurations keep their exact-analysis behavior.
	RetainAll RetentionKind = iota
	// RetainSample keeps a deterministic uniform sample of at most
	// Retention.Sample PageLogs per shard.
	RetainSample
	// RetainNone frees every PageLog as soon as it is folded; analyses
	// run entirely from the sketches.
	RetainNone
)

// Retention is a campaign's HAR retention policy. The zero value is
// RetainAll.
type Retention struct {
	Kind RetentionKind
	// Sample is the per-shard reservoir capacity (RetainSample only).
	Sample int
}

// ParseRetention parses the command-line forms "all", "none", and
// "sample:N" (N ≥ 1).
func ParseRetention(s string) (Retention, error) {
	switch {
	case s == "all":
		return Retention{Kind: RetainAll}, nil
	case s == "none":
		return Retention{Kind: RetainNone}, nil
	case strings.HasPrefix(s, "sample:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "sample:"))
		if err != nil || n < 1 {
			return Retention{}, fmt.Errorf("har: invalid retention sample size %q (want sample:N with N ≥ 1)", s)
		}
		return Retention{Kind: RetainSample, Sample: n}, nil
	default:
		return Retention{}, fmt.Errorf("har: invalid retention policy %q (want all, none, or sample:N)", s)
	}
}

// String renders the policy in its ParseRetention form.
func (r Retention) String() string {
	switch r.Kind {
	case RetainSample:
		return "sample:" + strconv.Itoa(r.Sample)
	case RetainNone:
		return "none"
	default:
		return "all"
	}
}

// Validate reports whether the policy is well-formed.
func (r Retention) Validate() error {
	switch r.Kind {
	case RetainAll, RetainNone:
		return nil
	case RetainSample:
		if r.Sample < 1 {
			return fmt.Errorf("har: retention sample size must be ≥ 1, got %d", r.Sample)
		}
		return nil
	default:
		return fmt.Errorf("har: unknown retention kind %d", r.Kind)
	}
}
