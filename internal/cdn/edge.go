package cdn

import (
	"math/rand"
	"strings"
	"time"

	"h3cdn/internal/httpsim"
	"h3cdn/internal/simnet"
)

// ContentFunc resolves a resource's body size. ok=false yields a 404.
type ContentFunc func(host, path string) (size int, ok bool)

// EdgeConfig configures one CDN edge server's request handling.
type EdgeConfig struct {
	// Provider supplies the response-header signature.
	Provider Provider
	// Sched drives simulated processing delays.
	Sched *simnet.Scheduler
	// Content resolves resource sizes.
	Content ContentFunc
	// CacheCapacity bounds the edge LRU cache (entries). Default 8192.
	CacheCapacity int
	// HitWait is the processing time for a cache hit. Default 2ms.
	HitWait time.Duration
	// MissPenalty is the extra delay for fetching from the origin on a
	// cache miss. Default 80ms.
	MissPenalty time.Duration
	// H3WaitOverhead is the extra per-request compute for H3 (QPACK,
	// UDP path): the paper observes median wait reduction below zero.
	// Default 8ms.
	H3WaitOverhead time.Duration
	// WaitJitter adds U[0,WaitJitter) to every wait. Default 1ms.
	WaitJitter time.Duration
	// Rng drives jitter; required when WaitJitter > 0.
	Rng *rand.Rand
	// TTL, when positive, turns on expiring-cache semantics: every
	// cached entry is stamped with an absolute expiry (fill time + TTL)
	// and a request arriving past it is a miss again. TTL mode also
	// collapses concurrent misses for the same resource into one origin
	// fetch (single-flight): the first miss is the leader and pays the
	// full MissPenalty; overlapping requests join as waiters, answered
	// the moment the leader's fetch lands, and are counted as stampede
	// joins. Zero keeps the legacy never-expiring cache (the §III-B
	// closed-loop protocol, where per-visit scheduler drains make
	// concurrent misses impossible anyway).
	TTL time.Duration
	// NowOffset is added to the scheduler clock when stamping and
	// checking expiries — the campaign-absolute virtual time of this
	// edge's epoch start, for engines that rebuild universes (and their
	// schedulers, which restart at zero) across checkpoint epochs.
	NowOffset time.Duration
}

func (c EdgeConfig) withDefaults() EdgeConfig {
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 8192
	}
	if c.HitWait == 0 {
		c.HitWait = 2 * time.Millisecond
	}
	if c.MissPenalty == 0 {
		c.MissPenalty = 80 * time.Millisecond
	}
	if c.H3WaitOverhead == 0 {
		c.H3WaitOverhead = 8 * time.Millisecond
	}
	if c.WaitJitter == 0 {
		c.WaitJitter = time.Millisecond
	}
	return c
}

// resourceKey identifies a cached resource without concatenating the
// host and path strings on every request.
type resourceKey struct {
	host, path string
}

// originFlight is one in-progress origin fetch under single-flight
// collapsing: the leader's completion callback answers every waiter.
type originFlight struct {
	waiters []func()
}

// Edge is a CDN edge server's request-handling state (cache plus
// counters). One Edge backs one simnet host via httpsim.StartServer.
type Edge struct {
	cfg   EdgeConfig
	cache *LRUCache[resourceKey]

	// inflight tracks origin fetches in progress (TTL mode only), keyed
	// by resource: concurrent misses join the flight instead of fetching.
	inflight map[resourceKey]*originFlight

	// hitHeaders/missHeaders are the two canonical response-header maps,
	// built once: httpsim treats Response.Header as read-only, so every
	// response shares them instead of allocating a map per request.
	hitHeaders  map[string]string
	missHeaders map[string]string

	requests  int64
	h3Reqs    int64
	stampedes int64
}

// NewEdge creates the edge state and returns it with its handler.
func NewEdge(cfg EdgeConfig) *Edge {
	cfg = cfg.withDefaults()
	e := &Edge{cfg: cfg, cache: NewLRUCache[resourceKey](cfg.CacheCapacity)}
	if cfg.TTL > 0 {
		e.inflight = make(map[resourceKey]*originFlight)
	}
	e.hitHeaders = e.buildHeaders(true)
	e.missHeaders = e.buildHeaders(false)
	return e
}

// Requests reports the number of requests served.
func (e *Edge) Requests() int64 { return e.requests }

// H3Requests reports how many requests arrived over HTTP/3.
func (e *Edge) H3Requests() int64 { return e.h3Reqs }

// CacheHitRate exposes the underlying cache hit rate.
func (e *Edge) CacheHitRate() float64 { return e.cache.HitRate() }

// CacheHits / CacheMisses / CacheExpired expose the cache counters for
// per-epoch traffic accounting. Expired evictions are a subset of
// misses (a TTL lapse is discovered as a miss).
func (e *Edge) CacheHits() int64    { return e.cache.Hits() }
func (e *Edge) CacheMisses() int64  { return e.cache.Misses() }
func (e *Edge) CacheExpired() int64 { return e.cache.Expired() }

// Stampedes reports how many requests joined an in-progress origin
// fetch instead of launching their own (TTL mode's single-flight
// collapsing). Each join is one origin fetch the edge did not make.
func (e *Edge) Stampedes() int64 { return e.stampedes }

// now is the campaign-absolute virtual time (scheduler clock plus the
// epoch offset), the timebase expiries are stamped in.
func (e *Edge) now() time.Duration { return e.cfg.Sched.Now() + e.cfg.NowOffset }

// CacheEntry is one cached resource in a checkpoint dump.
type CacheEntry struct {
	Host      string        `json:"host"`
	Path      string        `json:"path"`
	ExpiresAt time.Duration `json:"expiresAt,omitempty"`
}

// DumpCache snapshots the cache contents, least recently used first,
// with absolute expiries — the serializable half of a traffic
// checkpoint. Counters are per-epoch and intentionally not dumped.
func (e *Edge) DumpCache() []CacheEntry {
	entries := e.cache.Entries()
	out := make([]CacheEntry, len(entries))
	for i, en := range entries {
		out[i] = CacheEntry{Host: en.Key.host, Path: en.Key.path, ExpiresAt: en.ExpiresAt}
	}
	return out
}

// RestoreCache replays a DumpCache snapshot (least recent first) into
// this edge, reconstructing contents, expiries, and recency order.
func (e *Edge) RestoreCache(entries []CacheEntry) {
	for _, en := range entries {
		e.cache.AddAt(resourceKey{en.Host, en.Path}, en.ExpiresAt)
	}
}

// Handler returns the httpsim handler serving this edge.
func (e *Edge) Handler() httpsim.Handler {
	return func(ctx *httpsim.ServerContext, respond func(httpsim.Response)) {
		e.requests++
		if ctx.Protocol == httpsim.H3 {
			e.h3Reqs++
		}
		size, ok := e.cfg.Content(ctx.Req.Host, ctx.Req.Path)
		if !ok {
			e.respondAfter(e.cfg.HitWait, respond, httpsim.Response{
				Status: 404,
				Header: e.headers(false),
			})
			return
		}
		key := resourceKey{ctx.Req.Host, ctx.Req.Path}
		wait := e.cfg.HitWait
		if ctx.Protocol == httpsim.H3 {
			wait += e.cfg.H3WaitOverhead
		}
		if e.cfg.TTL > 0 {
			e.handleTTL(ctx, respond, key, size, wait)
			return
		}
		hit := e.cache.Contains(key)
		if !hit {
			wait += e.cfg.MissPenalty
			e.cache.Add(key)
		}
		if e.cfg.WaitJitter > 0 && e.cfg.Rng != nil {
			wait += time.Duration(e.cfg.Rng.Int63n(int64(e.cfg.WaitJitter)))
		}
		e.respondAfter(wait, respond, httpsim.Response{
			Status:   200,
			Header:   e.headers(hit),
			BodySize: size,
		})
	}
}

// handleTTL serves one request under expiring-cache semantics with
// single-flight miss collapsing. baseWait is the hit-processing cost
// (HitWait plus any H3 overhead) every answer pays.
//
// Hits answer after baseWait (+jitter). The first miss for a resource
// becomes the flight leader: it pays baseWait + MissPenalty (+jitter),
// then fills the cache — stamping expiry fill-time + TTL — and answers
// itself and every waiter. Requests that miss while the leader's fetch
// is in progress join as waiters: they draw no jitter (their timing is
// the leader's) and answer baseWait after the fill, with miss headers —
// a collapsed request still waited on the origin, it just didn't ask it
// again. Waiter responses carry the leader's completion order, so the
// whole dance is deterministic in virtual time.
func (e *Edge) handleTTL(ctx *httpsim.ServerContext, respond func(httpsim.Response), key resourceKey, size int, baseWait time.Duration) {
	miss := httpsim.Response{Status: 200, Header: e.headers(false), BodySize: size}
	if e.cache.ContainsAt(key, e.now()) {
		wait := baseWait
		if e.cfg.WaitJitter > 0 && e.cfg.Rng != nil {
			wait += time.Duration(e.cfg.Rng.Int63n(int64(e.cfg.WaitJitter)))
		}
		e.respondAfter(wait, respond, httpsim.Response{
			Status:   200,
			Header:   e.headers(true),
			BodySize: size,
		})
		return
	}
	if fl := e.inflight[key]; fl != nil {
		e.stampedes++
		fl.waiters = append(fl.waiters, func() {
			e.respondAfter(baseWait, respond, miss)
		})
		return
	}
	fl := &originFlight{}
	e.inflight[key] = fl
	wait := baseWait + e.cfg.MissPenalty
	if e.cfg.WaitJitter > 0 && e.cfg.Rng != nil {
		wait += time.Duration(e.cfg.Rng.Int63n(int64(e.cfg.WaitJitter)))
	}
	e.cfg.Sched.After(wait, func() {
		e.cache.AddAt(key, e.now()+e.cfg.TTL)
		delete(e.inflight, key)
		respond(miss)
		for _, w := range fl.waiters {
			w()
		}
	})
}

func (e *Edge) respondAfter(wait time.Duration, respond func(httpsim.Response), resp httpsim.Response) {
	if wait <= 0 {
		respond(resp)
		return
	}
	e.cfg.Sched.After(wait, func() { respond(resp) })
}

// headers returns the canonical response signature for hit/miss, which
// internal/locedge classifies. Shared and read-only.
func (e *Edge) headers(hit bool) map[string]string {
	if hit {
		return e.hitHeaders
	}
	return e.missHeaders
}

// buildHeaders synthesizes the provider's response signature.
func (e *Edge) buildHeaders(hit bool) map[string]string {
	h := map[string]string{
		"server": e.cfg.Provider.ServerHeader,
	}
	if e.cfg.Provider.ViaHeader != "" {
		h["via"] = e.cfg.Provider.ViaHeader
	}
	if e.cfg.Provider.ExtraHeader != "" {
		if k, v, ok := strings.Cut(e.cfg.Provider.ExtraHeader, "="); ok {
			h[k] = v
		}
	}
	if hit {
		h["x-cache"] = "HIT"
	} else {
		h["x-cache"] = "MISS"
	}
	return h
}

// OriginConfig configures a non-CDN origin web server.
type OriginConfig struct {
	Sched *simnet.Scheduler
	// Content resolves resource sizes.
	Content ContentFunc
	// Wait is the per-request processing time. Default 15ms.
	Wait time.Duration
	// H3WaitOverhead mirrors the edge's H3 compute cost. Default 8ms.
	H3WaitOverhead time.Duration
	// WaitJitter adds U[0,WaitJitter). Default 4ms.
	WaitJitter time.Duration
	Rng        *rand.Rand
}

func (c OriginConfig) withDefaults() OriginConfig {
	if c.Wait == 0 {
		c.Wait = 15 * time.Millisecond
	}
	if c.H3WaitOverhead == 0 {
		c.H3WaitOverhead = 8 * time.Millisecond
	}
	if c.WaitJitter == 0 {
		c.WaitJitter = 4 * time.Millisecond
	}
	return c
}

// NewOriginHandler returns a handler for a site's own (non-CDN) server.
// Its headers carry no CDN signature, so locedge classifies its entries
// as non-CDN.
func NewOriginHandler(cfg OriginConfig) httpsim.Handler {
	cfg = cfg.withDefaults()
	// One canonical header map for every response; read-only downstream.
	originHeaders := map[string]string{"server": "nginx/1.22"}
	return func(ctx *httpsim.ServerContext, respond func(httpsim.Response)) {
		size, ok := cfg.Content(ctx.Req.Host, ctx.Req.Path)
		resp := httpsim.Response{Status: 200, Header: originHeaders}
		if !ok {
			resp.Status = 404
		} else {
			resp.BodySize = size
		}
		wait := cfg.Wait
		if ctx.Protocol == httpsim.H3 {
			wait += cfg.H3WaitOverhead
		}
		if cfg.WaitJitter > 0 && cfg.Rng != nil {
			wait += time.Duration(cfg.Rng.Int63n(int64(cfg.WaitJitter)))
		}
		cfg.Sched.After(wait, func() { respond(resp) })
	}
}
