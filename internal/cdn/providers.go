// Package cdn models content delivery networks: a registry of providers
// calibrated to the paper's Table I and Figure 2 (market share and H3
// adoption as of the October 2022 measurement), per-vantage edge servers
// with LRU caches and origin-fetch penalties, and synthesized response
// headers that the locedge classifier recognizes.
package cdn

import "time"

// Provider describes one CDN provider.
type Provider struct {
	// Name identifies the provider ("Google", "Cloudflare", ...).
	Name string
	// ReleaseYear is when the provider announced H3 support (Table I).
	ReleaseYear int
	// PerformanceNote is the provider's own H3 report (Table I).
	PerformanceNote string
	// MarketShare is the fraction of all CDN resources this provider
	// hosts (calibrated so measured adoption reproduces Fig. 2 and
	// Table II).
	MarketShare float64
	// H3Adoption is the probability that one of this provider's
	// hostnames had H3 enabled at measurement time.
	H3Adoption float64
	// PagePresence is the probability the provider appears on a page
	// at all (Fig. 4a: top providers exceed 50%).
	PagePresence float64
	// EdgeDelay is the one-way propagation delay from a vantage point
	// to this provider's edge (giants deploy closer).
	EdgeDelay time.Duration
	// EdgeBandwidth is the edge link rate in bits/second.
	EdgeBandwidth float64
	// SharedHosts is how many globally shared hostnames the provider
	// operates (fonts/library CDNs reused across sites); these drive
	// cross-page connection resumption (§VI-D).
	SharedHosts int
	// H3Preloaded marks providers whose H3 support browsers know
	// without Alt-Svc discovery (Chrome shipped QUIC hints for Google
	// properties, matching Google's near-total measured H3 share).
	H3Preloaded bool
	// H3PathFraction is, for an H3-enabled hostname, the fraction of
	// its resources actually served over H3: providers roll H3 out
	// edge by edge, so a hostname's requests split across H2 and H3
	// connections ("deployment density", §VI-C).
	H3PathFraction float64
	// ServerHeader and extra headers mimic the provider's real
	// response signature, consumed by internal/locedge.
	ServerHeader string
	ViaHeader    string
	ExtraHeader  string // "key=value" provider-specific marker
}

// Registry returns the built-in provider table. Shares sum to 1.0 over
// CDN traffic; H3 adoption rates are set so that the measured Fig. 2 /
// Table II splits re-emerge from the pipeline:
//
//	H3 share of CDN requests ≈ Σ share·adoption ≈ 0.385 (25.8/67.0)
//	Google ≈ 50% of H3 CDN requests, Cloudflare ≈ 45%.
func Registry() []Provider {
	return []Provider{
		{
			Name:            "Google",
			ReleaseYear:     2021,
			PerformanceNote: "Reduced search latency 2%, video rebuffers 9%, +7% mobile throughput",
			MarketShare:     0.13,
			H3Adoption:      0.95,
			H3PathFraction:  0.97,
			PagePresence:    0.90,
			EdgeDelay:       14 * time.Millisecond,
			EdgeBandwidth:   400e6,
			SharedHosts:     8,
			H3Preloaded:     true,
			ServerHeader:    "gws",
			ViaHeader:       "1.1 google",
			ExtraHeader:     "x-goog-generation=1",
		},
		{
			Name:            "Cloudflare",
			ReleaseYear:     2019,
			PerformanceNote: "H3 12.4% better TTFB, 1-4% worse PLT than H2",
			MarketShare:     0.34,
			H3Adoption:      0.58,
			H3PathFraction:  0.80,
			PagePresence:    0.80,
			EdgeDelay:       16 * time.Millisecond,
			EdgeBandwidth:   400e6,
			SharedHosts:     10,
			ServerHeader:    "cloudflare",
			ViaHeader:       "",
			ExtraHeader:     "cf-ray=74f2b1",
		},
		{
			Name:            "Amazon",
			ReleaseYear:     2022,
			PerformanceNote: "N/A",
			MarketShare:     0.28,
			H3Adoption:      0.08,
			H3PathFraction:  0.75,
			PagePresence:    0.65,
			EdgeDelay:       22 * time.Millisecond,
			EdgeBandwidth:   300e6,
			SharedHosts:     6,
			ServerHeader:    "AmazonS3",
			ViaHeader:       "1.1 cloudfront",
			ExtraHeader:     "x-amz-cf-pop=IAD89",
		},
		{
			Name:            "Akamai",
			ReleaseYear:     2023,
			PerformanceNote: "+6.5% users with TAT under 25ms; +12.7% requests above 1 Mbps",
			MarketShare:     0.08,
			H3Adoption:      0.04,
			H3PathFraction:  0.75,
			PagePresence:    0.55,
			EdgeDelay:       20 * time.Millisecond,
			EdgeBandwidth:   300e6,
			SharedHosts:     5,
			ServerHeader:    "AkamaiGHost",
			ViaHeader:       "",
			ExtraHeader:     "x-akamai-transformed=9",
		},
		{
			Name:            "Fastly",
			ReleaseYear:     2021,
			PerformanceNote: "QUIC can represent an 8% increase in throughput",
			MarketShare:     0.11,
			H3Adoption:      0.08,
			H3PathFraction:  0.75,
			PagePresence:    0.35,
			EdgeDelay:       20 * time.Millisecond,
			EdgeBandwidth:   300e6,
			SharedHosts:     5,
			ServerHeader:    "Fastly",
			ViaHeader:       "1.1 varnish",
			ExtraHeader:     "x-served-by=cache-bwi5120",
		},
		{
			Name:            "Microsoft",
			ReleaseYear:     2022,
			PerformanceNote: "N/A",
			MarketShare:     0.04,
			H3Adoption:      0.05,
			H3PathFraction:  0.75,
			PagePresence:    0.30,
			EdgeDelay:       24 * time.Millisecond,
			EdgeBandwidth:   200e6,
			SharedHosts:     2,
			ServerHeader:    "ECAcc",
			ViaHeader:       "",
			ExtraHeader:     "x-msedge-ref=Ref-A",
		},
		{
			Name:            "QUIC.Cloud",
			ReleaseYear:     2021,
			PerformanceNote: "H3 turns TTFB from 231ms to 24ms",
			MarketShare:     0.02,
			H3Adoption:      0.90,
			H3PathFraction:  0.90,
			PagePresence:    0.06,
			EdgeDelay:       30 * time.Millisecond,
			EdgeBandwidth:   150e6,
			SharedHosts:     2,
			ServerHeader:    "LiteSpeed",
			ViaHeader:       "",
			ExtraHeader:     "x-qc-pop=NA-US",
		},
	}
}

// ProviderByName returns the registry entry with the given name (ok
// reports whether it exists).
func ProviderByName(name string) (Provider, bool) {
	for _, p := range Registry() {
		if p.Name == name {
			return p, true
		}
	}
	return Provider{}, false
}

// GiantProviders are the four providers Fig. 5 breaks out.
func GiantProviders() []string {
	return []string{"Amazon", "Cloudflare", "Google", "Fastly"}
}

// SharedProviderSet is the provider universe used in §VI-D (Fig. 8).
func SharedProviderSet() []string {
	return []string{"Amazon", "Akamai", "Cloudflare", "Fastly", "Google", "Microsoft"}
}

// ExpectedH3CDNShare returns Σ share·adoption — the fraction of CDN
// requests expected over H3 given the registry calibration.
func ExpectedH3CDNShare() float64 {
	total := 0.0
	for _, p := range Registry() {
		total += p.MarketShare * p.H3Adoption
	}
	return total
}
