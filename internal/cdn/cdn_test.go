package cdn

import (
	"math"
	"strconv"
	"testing"
	"time"

	"h3cdn/internal/httpsim"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
)

func TestRegistryCalibration(t *testing.T) {
	reg := Registry()
	shareSum := 0.0
	for _, p := range reg {
		if p.MarketShare <= 0 || p.MarketShare > 1 {
			t.Fatalf("%s: share %v out of range", p.Name, p.MarketShare)
		}
		if p.H3Adoption < 0 || p.H3Adoption > 1 {
			t.Fatalf("%s: adoption %v out of range", p.Name, p.H3Adoption)
		}
		if p.ReleaseYear < 2019 || p.ReleaseYear > 2023 {
			t.Fatalf("%s: release year %d", p.Name, p.ReleaseYear)
		}
		shareSum += p.MarketShare
	}
	if math.Abs(shareSum-1.0) > 1e-9 {
		t.Fatalf("market shares sum to %v, want 1.0", shareSum)
	}
	// Raw Σ share·adoption sits below the Table II target (0.385)
	// because measured shares are renormalized per page by provider
	// presence, which boosts the high-presence (high-adoption)
	// providers; the measured-level check lives in internal/core.
	if got := ExpectedH3CDNShare(); got < 0.26 || got > 0.42 {
		t.Fatalf("expected H3 CDN share = %.3f, want 0.26..0.42", got)
	}
}

func TestRegistryFig2Shape(t *testing.T) {
	// Google and Cloudflare must dominate H3-enabled CDN requests
	// (each roughly half; exact splits are asserted at the measured
	// level in internal/core).
	total := ExpectedH3CDNShare()
	g, _ := ProviderByName("Google")
	cf, _ := ProviderByName("Cloudflare")
	gShare := g.MarketShare * g.H3Adoption / total
	cfShare := cf.MarketShare * cf.H3Adoption / total
	if gShare < 0.30 || gShare > 0.60 {
		t.Fatalf("Google share of H3 requests = %.3f, want dominant (~0.5)", gShare)
	}
	if cfShare < 0.30 || cfShare > 0.60 {
		t.Fatalf("Cloudflare share of H3 requests = %.3f, want dominant (~0.45)", cfShare)
	}
	rest := 1 - gShare - cfShare
	if rest > 0.25 {
		t.Fatalf("other providers hold %.3f of H3 requests, want a small tail", rest)
	}
}

func TestProviderByName(t *testing.T) {
	if _, ok := ProviderByName("Google"); !ok {
		t.Fatal("Google missing")
	}
	if _, ok := ProviderByName("NotACDN"); ok {
		t.Fatal("bogus provider found")
	}
	if len(GiantProviders()) != 4 || len(SharedProviderSet()) != 6 {
		t.Fatal("provider sets wrong size")
	}
}

func TestLRUCache(t *testing.T) {
	c := NewLRUCache[string](2)
	if c.Contains("a") {
		t.Fatal("empty cache hit")
	}
	c.Add("a")
	c.Add("b")
	if !c.Contains("a") || !c.Contains("b") {
		t.Fatal("miss on fresh entries")
	}
	c.Add("c") // evicts LRU: "a" was touched before "b"... order: a,b touched; a older
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Peek("a") {
		t.Fatal("LRU entry not evicted")
	}
	if !c.Peek("c") {
		t.Fatal("new entry missing")
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestLRUCacheRecencyUpdate(t *testing.T) {
	c := NewLRUCache[string](2)
	c.Add("a")
	c.Add("b")
	c.Contains("a") // refresh a
	c.Add("c")      // should evict b
	if !c.Peek("a") || c.Peek("b") {
		t.Fatal("recency not respected")
	}
}

// TestLRUCacheCountersUnderChurn drives the cache with a deterministic
// mixed workload at 4x its capacity and checks the hit/miss counters
// against an independent reference model of LRU recency. Eviction churn
// is constant (every miss-then-Add evicts), which is exactly where
// counter bookkeeping could drift from list surgery.
func TestLRUCacheCountersUnderChurn(t *testing.T) {
	const capacity, universe, rounds = 8, 32, 2048
	c := NewLRUCache[int](capacity)

	// Reference model: slice ordered most→least recent.
	var ref []int
	refContains := func(k int) bool {
		for i, v := range ref {
			if v == k {
				ref = append(ref[:i], ref[i+1:]...)
				ref = append([]int{k}, ref...)
				return true
			}
		}
		return false
	}
	refAdd := func(k int) {
		if refContains(k) {
			return
		}
		if len(ref) >= capacity {
			ref = ref[:capacity-1]
		}
		ref = append([]int{k}, ref...)
	}

	var wantHits, wantMisses int64
	// An LCG keeps the access pattern deterministic but aperiodic, so
	// the run mixes re-references (hits) with cold keys (miss + evict).
	state := uint64(42)
	for i := 0; i < rounds; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		key := int(state>>33) % universe
		if refContains(key) {
			wantHits++
			if !c.Contains(key) {
				t.Fatalf("round %d: key %d should hit", i, key)
			}
		} else {
			wantMisses++
			if c.Contains(key) {
				t.Fatalf("round %d: key %d should miss", i, key)
			}
			refAdd(key)
			c.Add(key)
		}
		if c.Len() > capacity {
			t.Fatalf("round %d: len %d exceeds capacity %d", i, c.Len(), capacity)
		}
	}

	if wantHits == 0 || wantMisses <= int64(capacity) {
		t.Fatalf("workload degenerate: %d hits, %d misses", wantHits, wantMisses)
	}
	if c.Hits() != wantHits || c.Misses() != wantMisses {
		t.Fatalf("counters (%d hits, %d misses), reference model (%d, %d)",
			c.Hits(), c.Misses(), wantHits, wantMisses)
	}
	if got, want := c.HitRate(), float64(wantHits)/float64(wantHits+wantMisses); got != want {
		t.Fatalf("hit rate %v, want %v", got, want)
	}
}

// TestLRUCacheSequentialScanChurn is the classic LRU worst case: cycling
// over capacity+1 keys evicts each next key just before it is needed, so
// after warm-up every probe must miss and the counters must say so.
func TestLRUCacheSequentialScanChurn(t *testing.T) {
	const capacity = 4
	c := NewLRUCache[int](capacity)
	for k := 0; k <= capacity; k++ { // warm-up: all misses, last Add evicts key 0
		c.Contains(k)
		c.Add(k)
	}
	base := c.Misses()
	for pass := 0; pass < 3; pass++ {
		for k := 0; k <= capacity; k++ {
			if c.Contains(k) {
				t.Fatalf("pass %d key %d: hit; sequential scan over capacity+1 keys must always miss", pass, k)
			}
			c.Add(k)
		}
	}
	if c.Hits() != 0 {
		t.Fatalf("hits = %d, want 0", c.Hits())
	}
	if got := c.Misses() - base; got != 3*(capacity+1) {
		t.Fatalf("scan misses = %d, want %d", got, 3*(capacity+1))
	}
}

func TestLRUCacheTTL(t *testing.T) {
	c := NewLRUCache[string](4)
	c.AddAt("a", 100)
	if !c.ContainsAt("a", 50) {
		t.Fatal("entry expired before its time")
	}
	if c.PeekAt("a", 150) {
		t.Fatal("PeekAt reported a stale entry live")
	}
	if c.Len() != 1 {
		t.Fatal("PeekAt evicted")
	}
	if c.ContainsAt("a", 150) {
		t.Fatal("entry outlived its expiry")
	}
	if c.Len() != 0 || c.Expired() != 1 {
		t.Fatalf("len=%d expired=%d, want 0/1", c.Len(), c.Expired())
	}
	// Re-adding a resident key re-stamps its expiry.
	c.AddAt("b", 100)
	c.AddAt("b", 200)
	if !c.ContainsAt("b", 150) {
		t.Fatal("re-stamped expiry not honored")
	}
	// Zero expiry never lapses.
	c.Add("z")
	if !c.ContainsAt("z", time.Hour) {
		t.Fatal("zero-expiry entry lapsed")
	}
}

func TestLRUCachePeekNoPerturb(t *testing.T) {
	c := NewLRUCache[string](2)
	c.Add("a")
	c.Add("b")
	c.Peek("a") // must NOT refresh recency
	c.Peek("x") // must NOT count a miss
	c.Add("c")  // evicts a: Peek left it least recent
	if c.Peek("a") || !c.Peek("b") || !c.Peek("c") {
		t.Fatal("Peek perturbed recency")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("Peek mutated counters: %d hits, %d misses", c.Hits(), c.Misses())
	}
}

func TestLRUCacheEntriesRestore(t *testing.T) {
	c := NewLRUCache[string](4)
	c.AddAt("a", 100)
	c.AddAt("b", 0)
	c.AddAt("c", 300)
	c.Contains("a") // recency now (least→most): b, c, a
	dump := c.Entries()
	want := []Entry[string]{{"b", 0}, {"c", 300}, {"a", 100}}
	if len(dump) != len(want) {
		t.Fatalf("dump len %d, want %d", len(dump), len(want))
	}
	for i := range want {
		if dump[i] != want[i] {
			t.Fatalf("dump[%d] = %+v, want %+v", i, dump[i], want[i])
		}
	}
	r := NewLRUCache[string](4)
	r.Restore(dump)
	// Contents, expiries, and recency order must all round-trip: the
	// restored cache evicts the same LRU victim.
	r.Add("d")
	r.Add("e") // capacity 4: evicts b (least recent after restore)
	if r.Peek("b") || !r.Peek("c") || !r.Peek("a") {
		t.Fatal("restored recency order wrong")
	}
	if r.PeekAt("c", 400) || !r.PeekAt("a", 50) {
		t.Fatal("restored expiries wrong")
	}
}

func TestLRUCapacityFloor(t *testing.T) {
	c := NewLRUCache[string](0)
	c.Add("x")
	if c.Len() != 1 {
		t.Fatal("capacity floor broken")
	}
}

// edgeWorld wires a client and one edge for handler tests.
func edgeWorld(t *testing.T, provider string, h3Overhead time.Duration) (*simnet.Scheduler, *simnet.Network, *Edge) {
	t.Helper()
	sched := &simnet.Scheduler{MaxEvents: 5_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: 10 * time.Millisecond}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(1))
	n.AddHost("client")
	server := n.AddHost("edge")
	prov, ok := ProviderByName(provider)
	if !ok {
		t.Fatalf("unknown provider %s", provider)
	}
	edge := NewEdge(EdgeConfig{
		Provider: prov,
		Sched:    sched,
		Content: func(host, path string) (int, bool) {
			n, err := strconv.Atoi(path[1:])
			if err != nil {
				return 0, false
			}
			return n, true
		},
		HitWait:        2 * time.Millisecond,
		MissPenalty:    50 * time.Millisecond,
		H3WaitOverhead: h3Overhead,
		WaitJitter:     -1, // disabled (withDefaults only fills zero)
	})
	if _, err := httpsim.StartServer(server, httpsim.ServerConfig{
		Handler:  edge.Handler(),
		EnableH3: true,
	}); err != nil {
		t.Fatal(err)
	}
	return sched, n, edge
}

func TestEdgeCacheMissThenHit(t *testing.T) {
	sched, n, edge := edgeWorld(t, "Cloudflare", 2*time.Millisecond)
	client := n.Host("client")

	var firstWaitDone, secondWaitDone time.Duration
	var firstHeaders, secondHeaders map[string]string
	conn := httpsim.DialH2(client, "edge", httpsim.TCPPort, "cdn.site.sim", httpsim.DialConfig{})
	conn.Do(&httpsim.Request{Host: "cdn.site.sim", Path: "/5000"}, httpsim.RequestEvents{
		OnHeaders: func(m httpsim.ResponseMeta) {
			firstWaitDone = sched.Now()
			firstHeaders = m.Header
		},
		OnComplete: func() {
			// Second request: should be a cache hit, much faster.
			conn.Do(&httpsim.Request{Host: "cdn.site.sim", Path: "/5000"}, httpsim.RequestEvents{
				OnHeaders: func(m httpsim.ResponseMeta) {
					secondWaitDone = sched.Now()
					secondHeaders = m.Header
				},
			})
		},
	})
	start := sched.Now()
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if firstHeaders["x-cache"] != "MISS" || secondHeaders["x-cache"] != "HIT" {
		t.Fatalf("x-cache: first=%q second=%q", firstHeaders["x-cache"], secondHeaders["x-cache"])
	}
	if firstHeaders["server"] != "cloudflare" {
		t.Fatalf("server header %q", firstHeaders["server"])
	}
	first := firstWaitDone - start
	second := secondWaitDone - firstWaitDone
	if second >= first {
		t.Fatalf("cache hit (%v) not faster than miss (%v)", second, first)
	}
	if edge.Requests() != 2 {
		t.Fatalf("edge served %d requests", edge.Requests())
	}
	if edge.CacheHitRate() != 0.5 {
		t.Fatalf("hit rate = %v", edge.CacheHitRate())
	}
}

func TestEdgeH3WaitOverhead(t *testing.T) {
	waitFor := func(proto httpsim.Protocol) time.Duration {
		sched, n, _ := edgeWorld(t, "Google", 5*time.Millisecond)
		client := n.Host("client")
		var conn httpsim.ClientConn
		if proto == httpsim.H3 {
			conn = httpsim.DialH3(client, "edge", httpsim.QUICPort, "g.sim", httpsim.H3DialConfig{})
		} else {
			conn = httpsim.DialH2(client, "edge", httpsim.TCPPort, "g.sim", httpsim.DialConfig{})
		}
		var sent, fb time.Duration
		conn.Do(&httpsim.Request{Host: "g.sim", Path: "/100"}, httpsim.RequestEvents{
			OnSent:    func() { sent = sched.Now() },
			OnHeaders: func(httpsim.ResponseMeta) { fb = sched.Now() },
		})
		if _, err := sched.Run(); err != nil {
			t.Fatal(err)
		}
		return fb - sent
	}
	h2Wait := waitFor(httpsim.H2)
	h3Wait := waitFor(httpsim.H3)
	// Same path RTT; H3 carries the extra server compute (paper §VI-B:
	// median wait reduction below zero).
	if h3Wait != h2Wait+5*time.Millisecond {
		t.Fatalf("H3 wait %v vs H2 wait %v, want +5ms", h3Wait, h2Wait)
	}
}

// TestEdgeTTLSingleFlight drives two concurrent misses for the same
// resource through a TTL-mode edge: the second must join the first's
// origin fetch (one stampede, both MISS), a later request must hit, and
// a request past the TTL must miss again with the expiry counted.
func TestEdgeTTLSingleFlight(t *testing.T) {
	sched := &simnet.Scheduler{MaxEvents: 5_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: 10 * time.Millisecond}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(1))
	n.AddHost("client")
	server := n.AddHost("edge")
	prov, _ := ProviderByName("Cloudflare")
	edge := NewEdge(EdgeConfig{
		Provider: prov,
		Sched:    sched,
		Content: func(host, path string) (int, bool) {
			return 4000, true
		},
		HitWait:     2 * time.Millisecond,
		MissPenalty: 50 * time.Millisecond,
		WaitJitter:  -1, // disabled
		TTL:         2 * time.Second,
	})
	if _, err := httpsim.StartServer(server, httpsim.ServerConfig{Handler: edge.Handler()}); err != nil {
		t.Fatal(err)
	}
	client := n.Host("client")
	req := &httpsim.Request{Host: "cdn.site.sim", Path: "/x"}
	headersOf := make(map[string]string, 4)
	timeOf := make(map[string]time.Duration, 4)
	do := func(label string) {
		conn := httpsim.DialH2(client, "edge", httpsim.TCPPort, "cdn.site.sim", httpsim.DialConfig{})
		conn.Do(req, httpsim.RequestEvents{
			OnHeaders: func(m httpsim.ResponseMeta) {
				headersOf[label] = m.Header["x-cache"]
				timeOf[label] = sched.Now()
			},
		})
	}
	do("leader")                                        // both dial at t=0: identical handshakes, so their
	do("waiter")                                        // requests reach the edge at the same virtual instant
	sched.After(1*time.Second, func() { do("warm") })   // inside TTL
	sched.After(10*time.Second, func() { do("stale") }) // past TTL
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if headersOf["leader"] != "MISS" || headersOf["waiter"] != "MISS" {
		t.Fatalf("concurrent misses: leader=%q waiter=%q, want MISS/MISS",
			headersOf["leader"], headersOf["waiter"])
	}
	if headersOf["warm"] != "HIT" {
		t.Fatalf("in-TTL request = %q, want HIT", headersOf["warm"])
	}
	if headersOf["stale"] != "MISS" {
		t.Fatalf("post-TTL request = %q, want MISS", headersOf["stale"])
	}
	// The waiter answers HitWait after the leader's fill lands, not a
	// full MissPenalty later: it joined the flight instead of fetching.
	if got := timeOf["waiter"] - timeOf["leader"]; got != 2*time.Millisecond {
		t.Fatalf("waiter trailed leader by %v, want HitWait (2ms)", got)
	}
	if edge.Stampedes() != 1 {
		t.Fatalf("stampedes = %d, want 1", edge.Stampedes())
	}
	if edge.CacheHits() != 1 || edge.CacheMisses() != 3 || edge.CacheExpired() != 1 {
		t.Fatalf("cache counters hits=%d misses=%d expired=%d, want 1/3/1",
			edge.CacheHits(), edge.CacheMisses(), edge.CacheExpired())
	}
}

func TestEdge404(t *testing.T) {
	sched, n, _ := edgeWorld(t, "Fastly", 0)
	client := n.Host("client")
	conn := httpsim.DialH2(client, "edge", httpsim.TCPPort, "f.sim", httpsim.DialConfig{})
	var status int
	conn.Do(&httpsim.Request{Host: "f.sim", Path: "/nope"}, httpsim.RequestEvents{
		OnHeaders: func(m httpsim.ResponseMeta) { status = m.Status },
	})
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if status != 404 {
		t.Fatalf("status = %d, want 404", status)
	}
}

func TestOriginHandlerHeaders(t *testing.T) {
	sched := &simnet.Scheduler{MaxEvents: 1_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: 10 * time.Millisecond}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(1))
	client := n.AddHost("client")
	server := n.AddHost("origin")
	h := NewOriginHandler(OriginConfig{
		Sched:   sched,
		Content: func(host, path string) (int, bool) { return 1234, true },
	})
	if _, err := httpsim.StartServer(server, httpsim.ServerConfig{Handler: h}); err != nil {
		t.Fatal(err)
	}
	conn := httpsim.DialH2(client, "origin", httpsim.TCPPort, "site.sim", httpsim.DialConfig{})
	var meta httpsim.ResponseMeta
	conn.Do(&httpsim.Request{Host: "site.sim", Path: "/"}, httpsim.RequestEvents{
		OnHeaders: func(m httpsim.ResponseMeta) { meta = m },
	})
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if meta.Status != 200 || meta.BodySize != 1234 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Header["x-cache"] != "" || meta.Header["server"] != "nginx/1.22" {
		t.Fatalf("origin headers look like a CDN: %v", meta.Header)
	}
}
