package cdn

// LRUCache is a bounded least-recently-used cache over any comparable
// key. It models a CDN edge's content cache: hits answer locally, misses
// trigger an origin fetch. Entries form an intrusive doubly-linked
// recency list (front = most recent), so membership tests and recency
// refreshes allocate nothing; keying by a struct lets callers avoid
// building concatenated string keys on the per-request path.
type LRUCache[K comparable] struct {
	capacity    int
	items       map[K]*lruNode[K]
	front, back *lruNode[K]

	hits, misses int64
}

type lruNode[K comparable] struct {
	key        K
	prev, next *lruNode[K]
}

// NewLRUCache returns a cache bounded to capacity entries (min 1).
func NewLRUCache[K comparable](capacity int) *LRUCache[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRUCache[K]{
		capacity: capacity,
		items:    make(map[K]*lruNode[K], capacity),
	}
}

func (c *LRUCache[K]) moveToFront(n *lruNode[K]) {
	if c.front == n {
		return
	}
	// Unlink (n is in the list and is not front, so n.prev != nil).
	n.prev.next = n.next
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.back = n.prev
	}
	// Relink at front.
	n.prev = nil
	n.next = c.front
	c.front.prev = n
	c.front = n
}

// Contains checks membership and refreshes recency on hit.
func (c *LRUCache[K]) Contains(key K) bool {
	n, ok := c.items[key]
	if !ok {
		c.misses++
		return false
	}
	c.moveToFront(n)
	c.hits++
	return true
}

// Add inserts key, evicting the least recently used entry if full.
func (c *LRUCache[K]) Add(key K) {
	if n, ok := c.items[key]; ok {
		c.moveToFront(n)
		return
	}
	n := &lruNode[K]{key: key}
	if len(c.items) >= c.capacity && c.back != nil {
		evict := c.back
		c.back = evict.prev
		if c.back != nil {
			c.back.next = nil
		} else {
			c.front = nil
		}
		delete(c.items, evict.key)
	}
	n.next = c.front
	if c.front != nil {
		c.front.prev = n
	}
	c.front = n
	if c.back == nil {
		c.back = n
	}
	c.items[key] = n
}

// Len reports the number of cached entries.
func (c *LRUCache[K]) Len() int { return len(c.items) }

// Hits reports how many Contains calls found their key.
func (c *LRUCache[K]) Hits() int64 { return c.hits }

// Misses reports how many Contains calls missed.
func (c *LRUCache[K]) Misses() int64 { return c.misses }

// HitRate reports hits/(hits+misses) since creation (0 when unused).
func (c *LRUCache[K]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
