package cdn

import "container/list"

// LRUCache is a bounded least-recently-used cache keyed by string. It
// models a CDN edge's content cache: hits answer locally, misses trigger
// an origin fetch.
type LRUCache struct {
	capacity int
	order    *list.List // front = most recent
	items    map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key string
}

// NewLRUCache returns a cache bounded to capacity entries (min 1).
func NewLRUCache(capacity int) *LRUCache {
	if capacity < 1 {
		capacity = 1
	}
	return &LRUCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Contains checks membership and refreshes recency on hit.
func (c *LRUCache) Contains(key string) bool {
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return false
	}
	c.order.MoveToFront(el)
	c.hits++
	return true
}

// Add inserts key, evicting the least recently used entry if full.
func (c *LRUCache) Add(key string) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		if back != nil {
			c.order.Remove(back)
			delete(c.items, back.Value.(*lruEntry).key)
		}
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key})
}

// Len reports the number of cached entries.
func (c *LRUCache) Len() int { return c.order.Len() }

// HitRate reports hits/(hits+misses) since creation (0 when unused).
func (c *LRUCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
