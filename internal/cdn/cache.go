package cdn

import "time"

// LRUCache is a bounded least-recently-used cache over any comparable
// key. It models a CDN edge's content cache: hits answer locally, misses
// trigger an origin fetch. Entries form an intrusive doubly-linked
// recency list (front = most recent), so membership tests and recency
// refreshes allocate nothing; keying by a struct lets callers avoid
// building concatenated string keys on the per-request path.
//
// Entries may carry a TTL: AddAt stamps an absolute expiry and
// ContainsAt treats an entry past its expiry as a miss (evicting it in
// place). The zero expiry means "never expires", so the legacy
// Contains/Add pair — which always passes zero — is the TTL-free
// special case of the same cache.
type LRUCache[K comparable] struct {
	capacity    int
	items       map[K]*lruNode[K]
	front, back *lruNode[K]

	hits, misses, expired int64
}

type lruNode[K comparable] struct {
	key        K
	expiresAt  time.Duration // 0 = never expires
	prev, next *lruNode[K]
}

// NewLRUCache returns a cache bounded to capacity entries (min 1).
func NewLRUCache[K comparable](capacity int) *LRUCache[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRUCache[K]{
		capacity: capacity,
		items:    make(map[K]*lruNode[K], capacity),
	}
}

func (c *LRUCache[K]) moveToFront(n *lruNode[K]) {
	if c.front == n {
		return
	}
	// Unlink (n is in the list and is not front, so n.prev != nil).
	n.prev.next = n.next
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.back = n.prev
	}
	// Relink at front.
	n.prev = nil
	n.next = c.front
	c.front.prev = n
	c.front = n
}

// Contains checks membership and refreshes recency on hit. TTL-stamped
// entries never expire through this path (it observes no clock); use
// ContainsAt on caches populated via AddAt.
func (c *LRUCache[K]) Contains(key K) bool {
	return c.ContainsAt(key, 0)
}

// ContainsAt checks membership at virtual time now, refreshing recency
// on hit. An entry whose expiry has passed (0 < expiresAt ≤ now) is
// evicted in place and counts as a miss — the TTL lapse a real edge
// discovers on the request that revalidates the object.
func (c *LRUCache[K]) ContainsAt(key K, now time.Duration) bool {
	n, ok := c.items[key]
	if !ok {
		c.misses++
		return false
	}
	if n.expiresAt > 0 && n.expiresAt <= now {
		c.unlink(n)
		delete(c.items, key)
		c.expired++
		c.misses++
		return false
	}
	c.moveToFront(n)
	c.hits++
	return true
}

// Peek reports membership without refreshing recency, mutating hit/miss
// counters, or evicting an expired entry — the read-only probe for
// callers that only query (an expired-but-resident entry still reports
// false). Contains is for request handling; Peek is for inspection.
func (c *LRUCache[K]) Peek(key K) bool {
	return c.PeekAt(key, 0)
}

// PeekAt is Peek against virtual time now: resident entries past their
// expiry report false, but nothing is evicted or counted.
func (c *LRUCache[K]) PeekAt(key K, now time.Duration) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	return n.expiresAt == 0 || n.expiresAt > now
}

// Add inserts key with no expiry, evicting the least recently used
// entry if full.
func (c *LRUCache[K]) Add(key K) {
	c.AddAt(key, 0)
}

// AddAt inserts key with an absolute expiry time (0 = never expires),
// evicting the least recently used entry if full. Re-adding a resident
// key refreshes recency and re-stamps its expiry (a cache refill after
// revalidation).
func (c *LRUCache[K]) AddAt(key K, expiresAt time.Duration) {
	if n, ok := c.items[key]; ok {
		n.expiresAt = expiresAt
		c.moveToFront(n)
		return
	}
	n := &lruNode[K]{key: key, expiresAt: expiresAt}
	if len(c.items) >= c.capacity && c.back != nil {
		evict := c.back
		c.unlink(evict)
		delete(c.items, evict.key)
	}
	n.next = c.front
	if c.front != nil {
		c.front.prev = n
	}
	c.front = n
	if c.back == nil {
		c.back = n
	}
	c.items[key] = n
}

// unlink removes n from the recency list (it must be resident).
func (c *LRUCache[K]) unlink(n *lruNode[K]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.back = n.prev
	}
	n.prev, n.next = nil, nil
}

// Entry is one cached key with its absolute expiry (0 = never), as
// dumped by Entries and replayed by Restore.
type Entry[K comparable] struct {
	Key       K
	ExpiresAt time.Duration
}

// Entries returns the cache contents from least to most recently used —
// the order in which re-adding them reproduces the recency list exactly.
// Counters are not part of the dump.
func (c *LRUCache[K]) Entries() []Entry[K] {
	out := make([]Entry[K], 0, len(c.items))
	for n := c.back; n != nil; n = n.prev {
		out = append(out, Entry[K]{Key: n.key, ExpiresAt: n.expiresAt})
	}
	return out
}

// Restore replays a dump from Entries into an empty-or-not cache via
// AddAt, least recent first, reconstructing contents, expiries, and
// recency order (checkpoint resume).
func (c *LRUCache[K]) Restore(entries []Entry[K]) {
	for _, e := range entries {
		c.AddAt(e.Key, e.ExpiresAt)
	}
}

// Len reports the number of cached entries.
func (c *LRUCache[K]) Len() int { return len(c.items) }

// Expired reports how many ContainsAt calls evicted an entry past its
// TTL (each also counts as a miss).
func (c *LRUCache[K]) Expired() int64 { return c.expired }

// Hits reports how many Contains calls found their key.
func (c *LRUCache[K]) Hits() int64 { return c.hits }

// Misses reports how many Contains calls missed.
func (c *LRUCache[K]) Misses() int64 { return c.misses }

// HitRate reports hits/(hits+misses) since creation (0 when unused).
func (c *LRUCache[K]) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
