// Package trace is the simulator's qlog-style observability layer: a
// per-visit, per-connection event tracer with typed records (no
// interface{} boxing), a fixed-size ring buffer, and a nil/disabled
// fast path that costs one pointer compare and zero allocations.
//
// Every layer of the stack emits into one Tracer: simnet (packet
// send/arrive/drop and the impairment layer's burst/outage/reorder
// decisions), tcpsim (SYN/establishment, cwnd changes, fast
// retransmits, RTO episodes, receive-side HOL stalls), tlssim
// (handshake flights, ticket issue/resume), quicsim (packet tx/rx, ACK
// ranges, PTO episodes, 0-RTT accept/reject, per-stream stalls),
// httpsim (stream open/headers/close), and the browser (fetch
// start/retry/done, preload hits, Alt-Svc learning).
//
// A Tracer is single-goroutine like the scheduler that drives it: one
// tracer per shard, shared by every host in that shard's universe.
// Emits outside a BeginVisit/EndVisit window (e.g. the warm pass) are
// discarded by the same cheap active check, so recorded traces cover
// exactly the measured visits.
//
// All emit methods are safe on a nil *Tracer — instrumented code calls
// them unconditionally with scalar or pre-existing string arguments, so
// a disabled tracer adds zero allocations to the visit hot path
// (enforced by BenchmarkRunVisitTraceDisabled in benchgate).
package trace

import "time"

// Kind identifies an event type. Values are stable within a build but
// not across versions; serialized qlog output uses names, not codes.
type Kind uint8

// Event kinds, grouped by emitting layer. The A/B/C scalar fields and
// S1/S2 string fields are interpreted per kind as documented here and
// serialized under those names by the qlog writer.
const (
	KindInvalid Kind = iota

	// simnet. S1=src, S2=dst, A=size, B=srcPort<<16|dstPort.
	KindPacketSent
	KindPacketArrived
	KindPacketDropped // C = drop cause (Drop* constants)
	KindPacketDelayed // C = extra delay ns (jitter and/or reordering)
	KindLinkEpoch     // A=epoch, B=capacity bps, C=queued packets (trace-driven link transition)

	// tcpsim. Conn is the connection's trace id.
	KindTCPSynSent
	KindTCPEstablished    // A=1 client side, 0 server side
	KindTCPCwndChange     // A=cwnd, B=ssthresh, C=cause (Cwnd* constants)
	KindTCPFastRetransmit // A=seq of the retransmitted segment
	KindTCPRTOFire        // A=consecutive timeouts, B=rto ns
	KindTCPConnFail       // S1=error
	KindTCPHolStart       // A=buffered out-of-order bytes
	KindTCPHolEnd         // B=stall duration ns

	// tlssim. Conn is shared with the carrying TCP connection.
	KindTLSClientHello   // A=version (12|13), B=1 resuming, C=1 early data
	KindTLSServerFlight  // A=version, B=1 resumption accepted
	KindTLSTicketIssued  // A=ticket id
	KindTLSHandshakeDone // A=1 client side, B=1 resumed, C=1 early data

	// quicsim.
	KindQUICHandshakeStart // A=1 resuming, B=1 attempting 0-RTT
	KindQUICPacketSent     // A=packet number, B=size
	KindQUICPacketRecv     // A=packet number, B=1 duplicate
	KindQUICAck            // A=largest acked, B=ack ranges, C=newly lost
	KindQUICPacketLost     // A=packet number
	KindQUICPTOFire        // A=consecutive PTOs
	KindQUICZeroRTT        // A=1 accepted, 0 rejected (server decision)
	KindQUICHandshakeDone  // A=1 client side, B=1 resumed, C=1 0-RTT
	KindQUICConnFail       // S1=error
	KindQUICStallStart     // A=stream id, B=buffered out-of-order bytes
	KindQUICStallEnd       // A=stream id, B=stall duration ns

	// httpsim (client side).
	KindHTTPStreamOpen  // A=stream id, S1=host, S2=path
	KindHTTPHeaders     // A=stream id, B=status, C=body size
	KindHTTPStreamClose // A=stream id
	KindHTTPStreamFail  // A=stream id, S1=error

	// browser. A=fetch sequence number within the visit.
	KindFetchStart // S1=host, S2=path
	KindFetchSent  // Conn=carrying connection
	KindFetchDone  // B=status, C=body size
	KindFetchRetry // B=attempt number, S1=error
	KindFetchFail  // S1=error
	KindPreloadHit // S1=host (H3 chosen from the preload list)
	KindAltSvc     // S1=host (h3 alternative learned)
	KindPreconnect // S1=host (speculative H3 dial after Alt-Svc)

	kindCount // sentinel
)

// Packet-drop causes (KindPacketDropped C field).
const (
	DropFilter int64 = iota + 1
	DropQueue
	DropLoss   // ambient i.i.d. loss
	DropBurst  // Gilbert–Elliott bad-state loss
	DropOutage // scheduled outage window
)

// Cwnd-change causes (KindTCPCwndChange C field).
const (
	CwndFastRecovery int64 = iota + 1
	CwndRecoveryExit
	CwndRTOCollapse
)

// Event is one trace record. Scalar fields are interpreted per Kind
// (see the Kind constants); unused fields are zero. S1/S2 reference
// caller-owned strings (hostnames, paths, static error text) — string
// assignment does not allocate.
type Event struct {
	At   time.Duration // virtual time of the event
	Kind Kind
	Conn uint32 // connection trace id, 0 when not connection-scoped
	A    int64
	B    int64
	C    int64
	S1   string
	S2   string
}

// VisitRecord is what the sink receives at EndVisit: the visit window
// and the chronological events captured inside it. Events aliases
// tracer-owned storage and is only valid during the sink call.
type VisitRecord struct {
	Site    string
	Start   time.Duration // virtual time of BeginVisit
	PLT     time.Duration // page load time; visit window is [Start, Start+PLT]
	Events  []Event
	Dropped int64 // events lost to ring overflow within this visit
}

// Sink consumes one visit's trace when the visit ends.
type Sink func(*VisitRecord)

// Tracer captures events into a fixed-capacity ring. When the ring is
// full the oldest events are overwritten (classic ring semantics) and
// Dropped counts the overwritten records, so a too-small ring degrades
// to a suffix trace instead of growing without bound.
type Tracer struct {
	buf     []Event
	head    int // index of oldest event
	n       int // events currently buffered
	dropped int64
	active  bool

	site  string
	start time.Duration

	sink    Sink
	scratch []Event // unwrap buffer for wrapped rings

	nextConn uint32
}

// DefaultRingCapacity comfortably holds every event of a heavyweight
// impaired visit (~tens of resources, full packet-level tracing) at
// ~80 B/event ≈ 5 MB per shard worker.
const DefaultRingCapacity = 1 << 16

// New returns a Tracer with the given ring capacity (DefaultRingCapacity
// if cap <= 0) delivering finished visits to sink.
func New(capacity int, sink Sink) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Tracer{buf: make([]Event, capacity), sink: sink}
}

// ConnID allocates the next connection trace id. Ids are assigned in
// dial/accept order under the deterministic scheduler, so they are
// stable across runs and worker counts. A nil tracer returns 0 (the
// "untraced" id).
func (t *Tracer) ConnID() uint32 {
	if t == nil {
		return 0
	}
	t.nextConn++
	return t.nextConn
}

// BeginVisit opens a visit window at virtual time now: the ring is
// reset and subsequent emits are recorded until EndVisit.
func (t *Tracer) BeginVisit(site string, now time.Duration) {
	if t == nil {
		return
	}
	t.head, t.n, t.dropped = 0, 0, 0
	t.site, t.start = site, now
	t.active = true
}

// EndVisit closes the visit window and hands the captured events to the
// sink. Events are delivered in chronological (emission) order.
func (t *Tracer) EndVisit(plt time.Duration) {
	if t == nil || !t.active {
		return
	}
	t.active = false
	if t.sink == nil {
		return
	}
	events := t.buf[:t.n]
	if t.head != 0 {
		// Ring wrapped: unwrap into the scratch buffer.
		if cap(t.scratch) < t.n {
			t.scratch = make([]Event, t.n)
		}
		s := t.scratch[:t.n]
		k := copy(s, t.buf[t.head:])
		copy(s[k:], t.buf[:t.head])
		events = s
	}
	t.sink(&VisitRecord{
		Site:    t.site,
		Start:   t.start,
		PLT:     plt,
		Events:  events,
		Dropped: t.dropped,
	})
}

// Abort closes the visit window without delivering anything (failed
// visits are excluded from datasets, so their traces are too).
func (t *Tracer) Abort() {
	if t == nil {
		return
	}
	t.active = false
}

// emit appends one event, overwriting the oldest when full.
func (t *Tracer) emit(at time.Duration, k Kind, conn uint32, a, b, c int64, s1, s2 string) {
	if t == nil || !t.active {
		return
	}
	i := t.head + t.n
	if i >= len(t.buf) {
		i -= len(t.buf)
	}
	t.buf[i] = Event{At: at, Kind: k, Conn: conn, A: a, B: b, C: c, S1: s1, S2: s2}
	if t.n < len(t.buf) {
		t.n++
	} else {
		// Overwrote the oldest event.
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.dropped++
	}
}

// --- simnet ---

func ports(srcPort, dstPort uint16) int64 { return int64(srcPort)<<16 | int64(dstPort) }

// PacketSent records a transmission attempt entering the network.
func (t *Tracer) PacketSent(at time.Duration, src, dst string, srcPort, dstPort uint16, size int) {
	t.emit(at, KindPacketSent, 0, int64(size), ports(srcPort, dstPort), 0, src, dst)
}

// PacketArrived records a delivery reaching its destination handler.
func (t *Tracer) PacketArrived(at time.Duration, src, dst string, srcPort, dstPort uint16, size int) {
	t.emit(at, KindPacketArrived, 0, int64(size), ports(srcPort, dstPort), 0, src, dst)
}

// PacketDropped records a drop with its cause (Drop* constants).
func (t *Tracer) PacketDropped(at time.Duration, src, dst string, srcPort, dstPort uint16, size int, cause int64) {
	t.emit(at, KindPacketDropped, 0, int64(size), ports(srcPort, dstPort), cause, src, dst)
}

// PacketDelayed records jitter/reordering hold-back applied to a
// delivered packet.
func (t *Tracer) PacketDelayed(at time.Duration, src, dst string, extra time.Duration) {
	t.emit(at, KindPacketDelayed, 0, 0, 0, int64(extra), src, dst)
}

// LinkEpoch records a trace-driven link crossing into capacity epoch
// with the given rate, observed at a send with queued packets already
// in flight on the path. A zero-bps epoch is a capacity outage: the
// queue stalls without dropping, which is how phase attribution can
// separate capacity stalls from loss stalls.
func (t *Tracer) LinkEpoch(at time.Duration, src, dst string, epoch int64, bps float64, queued int) {
	t.emit(at, KindLinkEpoch, 0, epoch, int64(bps), int64(queued), src, dst)
}

// --- tcpsim ---

// TCPSynSent records a client SYN transmission (connection dial).
func (t *Tracer) TCPSynSent(at time.Duration, conn uint32) {
	t.emit(at, KindTCPSynSent, conn, 0, 0, 0, "", "")
}

// TCPEstablished records the three-way handshake completing.
func (t *Tracer) TCPEstablished(at time.Duration, conn uint32, client bool) {
	t.emit(at, KindTCPEstablished, conn, b2i(client), 0, 0, "", "")
}

// TCPCwndChange records a congestion-window adjustment.
func (t *Tracer) TCPCwndChange(at time.Duration, conn uint32, cwnd, ssthresh int, cause int64) {
	t.emit(at, KindTCPCwndChange, conn, int64(cwnd), int64(ssthresh), cause, "", "")
}

// TCPFastRetransmit records a triple-dupack fast retransmit.
func (t *Tracer) TCPFastRetransmit(at time.Duration, conn uint32, seq int64) {
	t.emit(at, KindTCPFastRetransmit, conn, seq, 0, 0, "", "")
}

// TCPRTOFire records a retransmission-timeout episode.
func (t *Tracer) TCPRTOFire(at time.Duration, conn uint32, retries int, rto time.Duration) {
	t.emit(at, KindTCPRTOFire, conn, int64(retries), int64(rto), 0, "", "")
}

// TCPConnFail records the connection aborting with err.
func (t *Tracer) TCPConnFail(at time.Duration, conn uint32, errText string) {
	t.emit(at, KindTCPConnFail, conn, 0, 0, 0, errText, "")
}

// TCPHolStart records receive-side head-of-line blocking beginning: data
// is buffered beyond a sequence gap.
func (t *Tracer) TCPHolStart(at time.Duration, conn uint32, buffered int) {
	t.emit(at, KindTCPHolStart, conn, int64(buffered), 0, 0, "", "")
}

// TCPHolEnd records the gap filling after d of blocking.
func (t *Tracer) TCPHolEnd(at time.Duration, conn uint32, d time.Duration) {
	t.emit(at, KindTCPHolEnd, conn, 0, int64(d), 0, "", "")
}

// --- tlssim ---

// TLSClientHello records the client's first flight.
func (t *Tracer) TLSClientHello(at time.Duration, conn uint32, version int, resuming, earlyData bool) {
	t.emit(at, KindTLSClientHello, conn, int64(version), b2i(resuming), b2i(earlyData), "", "")
}

// TLSServerFlight records the server's handshake flight.
func (t *Tracer) TLSServerFlight(at time.Duration, conn uint32, version int, resumed bool) {
	t.emit(at, KindTLSServerFlight, conn, int64(version), b2i(resumed), 0, "", "")
}

// TLSTicketIssued records a session ticket grant.
func (t *Tracer) TLSTicketIssued(at time.Duration, conn uint32, ticket uint64) {
	t.emit(at, KindTLSTicketIssued, conn, int64(ticket), 0, 0, "", "")
}

// TLSHandshakeDone records the handshake completing on one side.
func (t *Tracer) TLSHandshakeDone(at time.Duration, conn uint32, client, resumed, earlyData bool) {
	t.emit(at, KindTLSHandshakeDone, conn, b2i(client), b2i(resumed), b2i(earlyData), "", "")
}

// --- quicsim ---

// QUICHandshakeStart records a client dial (integrated transport+crypto
// handshake beginning).
func (t *Tracer) QUICHandshakeStart(at time.Duration, conn uint32, resuming, zeroRTT bool) {
	t.emit(at, KindQUICHandshakeStart, conn, b2i(resuming), b2i(zeroRTT), 0, "", "")
}

// QUICPacketSent records one short/long-header packet transmission.
func (t *Tracer) QUICPacketSent(at time.Duration, conn uint32, pn int64, size int) {
	t.emit(at, KindQUICPacketSent, conn, pn, int64(size), 0, "", "")
}

// QUICPacketRecv records one packet arriving (dup marks duplicates).
func (t *Tracer) QUICPacketRecv(at time.Duration, conn uint32, pn int64, dup bool) {
	t.emit(at, KindQUICPacketRecv, conn, pn, b2i(dup), 0, "", "")
}

// QUICAck records an ACK frame being processed.
func (t *Tracer) QUICAck(at time.Duration, conn uint32, largest int64, ranges, lost int) {
	t.emit(at, KindQUICAck, conn, largest, int64(ranges), int64(lost), "", "")
}

// QUICPacketLost records a packet declared lost.
func (t *Tracer) QUICPacketLost(at time.Duration, conn uint32, pn int64) {
	t.emit(at, KindQUICPacketLost, conn, pn, 0, 0, "", "")
}

// QUICPTOFire records a probe-timeout episode.
func (t *Tracer) QUICPTOFire(at time.Duration, conn uint32, ptoCount int) {
	t.emit(at, KindQUICPTOFire, conn, int64(ptoCount), 0, 0, "", "")
}

// QUICZeroRTT records the server's accept/reject decision for a
// resumption token carrying early data.
func (t *Tracer) QUICZeroRTT(at time.Duration, conn uint32, accepted bool) {
	t.emit(at, KindQUICZeroRTT, conn, b2i(accepted), 0, 0, "", "")
}

// QUICHandshakeDone records the handshake completing on one side.
func (t *Tracer) QUICHandshakeDone(at time.Duration, conn uint32, client, resumed, zeroRTT bool) {
	t.emit(at, KindQUICHandshakeDone, conn, b2i(client), b2i(resumed), b2i(zeroRTT), "", "")
}

// QUICConnFail records the connection aborting with err.
func (t *Tracer) QUICConnFail(at time.Duration, conn uint32, errText string) {
	t.emit(at, KindQUICConnFail, conn, 0, 0, 0, errText, "")
}

// QUICStallStart records per-stream head-of-line blocking beginning.
func (t *Tracer) QUICStallStart(at time.Duration, conn uint32, stream uint64, buffered int) {
	t.emit(at, KindQUICStallStart, conn, int64(stream), int64(buffered), 0, "", "")
}

// QUICStallEnd records the stream's gap filling after d of blocking.
func (t *Tracer) QUICStallEnd(at time.Duration, conn uint32, stream uint64, d time.Duration) {
	t.emit(at, KindQUICStallEnd, conn, int64(stream), int64(d), 0, "", "")
}

// --- httpsim (client side) ---

// HTTPStreamOpen records a request leaving the HTTP client.
func (t *Tracer) HTTPStreamOpen(at time.Duration, conn uint32, stream int64, host, path string) {
	t.emit(at, KindHTTPStreamOpen, conn, stream, 0, 0, host, path)
}

// HTTPHeaders records response headers arriving.
func (t *Tracer) HTTPHeaders(at time.Duration, conn uint32, stream int64, status, bodySize int) {
	t.emit(at, KindHTTPHeaders, conn, stream, int64(status), int64(bodySize), "", "")
}

// HTTPStreamClose records the response body completing.
func (t *Tracer) HTTPStreamClose(at time.Duration, conn uint32, stream int64) {
	t.emit(at, KindHTTPStreamClose, conn, stream, 0, 0, "", "")
}

// HTTPStreamFail records a request failing with err.
func (t *Tracer) HTTPStreamFail(at time.Duration, conn uint32, stream int64, errText string) {
	t.emit(at, KindHTTPStreamFail, conn, stream, 0, 0, errText, "")
}

// --- browser ---

// FetchStart records the browser issuing fetch seq for host/path.
func (t *Tracer) FetchStart(at time.Duration, seq int64, host, path string) {
	t.emit(at, KindFetchStart, 0, seq, 0, 0, host, path)
}

// FetchSent records the request entering a connection's send path.
func (t *Tracer) FetchSent(at time.Duration, conn uint32, seq int64) {
	t.emit(at, KindFetchSent, conn, seq, 0, 0, "", "")
}

// FetchDone records the fetch completing.
func (t *Tracer) FetchDone(at time.Duration, conn uint32, seq int64, status, bodySize int) {
	t.emit(at, KindFetchDone, conn, seq, int64(status), int64(bodySize), "", "")
}

// FetchRetry records a transparent re-fetch after a transport error.
func (t *Tracer) FetchRetry(at time.Duration, seq int64, attempt int, errText string) {
	t.emit(at, KindFetchRetry, 0, seq, int64(attempt), 0, errText, "")
}

// FetchFail records the fetch failing with its retry budget exhausted.
func (t *Tracer) FetchFail(at time.Duration, seq int64, errText string) {
	t.emit(at, KindFetchFail, 0, seq, 0, 0, errText, "")
}

// PreloadHit records H3 being selected for host from the preload list
// (no prior Alt-Svc observation needed).
func (t *Tracer) PreloadHit(at time.Duration, host string) {
	t.emit(at, KindPreloadHit, 0, 0, 0, 0, host, "")
}

// AltSvcLearned records an Alt-Svc h3 advertisement being recorded.
func (t *Tracer) AltSvcLearned(at time.Duration, host string) {
	t.emit(at, KindAltSvc, 0, 0, 0, 0, host, "")
}

// Preconnect records a speculative H3 dial following an Alt-Svc
// observation.
func (t *Tracer) Preconnect(at time.Duration, host string) {
	t.emit(at, KindPreconnect, 0, 0, 0, 0, host, "")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
