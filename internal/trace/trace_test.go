package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if got := tr.ConnID(); got != 0 {
		t.Fatalf("nil ConnID = %d, want 0", got)
	}
	// Every entry point must be a no-op on nil.
	tr.BeginVisit("example.org", 0)
	tr.PacketSent(1, "a", "b", 1, 2, 100)
	tr.TCPSynSent(1, 1)
	tr.QUICAck(1, 1, 5, 1, 0)
	tr.FetchStart(1, 0, "h", "/")
	tr.EndVisit(time.Second)
	tr.Abort()
}

func TestEmitsOutsideVisitDiscarded(t *testing.T) {
	var got *VisitRecord
	tr := New(16, func(v *VisitRecord) { got = v })
	tr.TCPSynSent(1, 1) // before BeginVisit: warm pass
	tr.BeginVisit("example.org", 10)
	tr.TCPSynSent(11, 2)
	tr.EndVisit(100)
	if got == nil || len(got.Events) != 1 {
		t.Fatalf("got %+v, want exactly the in-visit event", got)
	}
	if got.Events[0].Conn != 2 {
		t.Fatalf("event conn = %d, want 2", got.Events[0].Conn)
	}
	got = nil
	tr.TCPSynSent(200, 3) // after EndVisit
	tr.EndVisit(100)      // no visit open: no sink call
	if got != nil {
		t.Fatalf("EndVisit outside a visit invoked the sink")
	}
}

func TestRingOverflowKeepsSuffix(t *testing.T) {
	var got *VisitRecord
	tr := New(4, func(v *VisitRecord) {
		// Snapshot: Events aliases tracer storage.
		cp := *v
		cp.Events = append([]Event(nil), v.Events...)
		got = &cp
	})
	tr.BeginVisit("example.org", 0)
	for i := 1; i <= 7; i++ {
		tr.TCPSynSent(time.Duration(i), uint32(i))
	}
	tr.EndVisit(10)
	if got.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", got.Dropped)
	}
	if len(got.Events) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(got.Events))
	}
	for i, e := range got.Events {
		if want := uint32(i + 4); e.Conn != want {
			t.Fatalf("event %d conn = %d, want %d (oldest overwritten, order kept)", i, e.Conn, want)
		}
	}
}

func TestAbortDropsVisit(t *testing.T) {
	calls := 0
	tr := New(8, func(*VisitRecord) { calls++ })
	tr.BeginVisit("example.org", 0)
	tr.TCPSynSent(1, 1)
	tr.Abort()
	tr.EndVisit(10)
	if calls != 0 {
		t.Fatalf("sink called %d times after Abort, want 0", calls)
	}
}

func TestAppendMS(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.000000"},
		{time.Nanosecond, "0.000001"},
		{time.Millisecond, "1.000000"},
		{1234567 * time.Nanosecond, "1.234567"},
		{3 * time.Second, "3000.000000"},
		{-1500 * time.Microsecond, "-1.500000"},
	}
	for _, c := range cases {
		if got := string(appendMS(nil, c.d)); got != c.want {
			t.Errorf("appendMS(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestQlogWriterParsesAndIsDeterministic(t *testing.T) {
	record := func() *VisitRecord {
		return &VisitRecord{
			Site:  "site-0.example",
			Start: 5 * time.Millisecond,
			PLT:   80 * time.Millisecond,
			Events: []Event{
				{At: 5 * time.Millisecond, Kind: KindFetchStart, A: 1, S1: "site-0.example", S2: "/"},
				{At: 6 * time.Millisecond, Kind: KindTCPSynSent, Conn: 1},
				{At: 9 * time.Millisecond, Kind: KindTCPEstablished, Conn: 1, A: 1},
				{At: 9 * time.Millisecond, Kind: KindTLSClientHello, Conn: 1, A: 13, B: 1},
				{At: 14 * time.Millisecond, Kind: KindPacketDropped, A: 1200, B: int64(443)<<16 | 49152, C: DropBurst, S1: "a", S2: "b"},
				{At: 20 * time.Millisecond, Kind: KindFetchDone, Conn: 1, A: 1, B: 200, C: 4096},
			},
		}
	}
	serialize := func() []byte {
		var buf bytes.Buffer
		w := NewQlogWriter(&buf, "test trace")
		if err := w.WriteVisit(record()); err != nil {
			t.Fatalf("WriteVisit: %v", err)
		}
		return buf.Bytes()
	}
	a, b := serialize(), serialize()
	if !bytes.Equal(a, b) {
		t.Fatalf("qlog serialization is not byte-deterministic")
	}

	sc := bufio.NewScanner(bytes.NewReader(a))
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if lines == 1 {
			if obj["qlog_version"] != "0.3" {
				t.Fatalf("header missing qlog_version: %s", sc.Text())
			}
			continue
		}
		if _, ok := obj["name"].(string); !ok {
			t.Fatalf("line %d missing event name: %s", lines, sc.Text())
		}
	}
	// Header + visit_start + 6 events + visit_end.
	if lines != 9 {
		t.Fatalf("got %d JSONL lines, want 9", lines)
	}
	if !strings.Contains(string(a), `"cause":"burst"`) {
		t.Fatalf("drop cause not serialized:\n%s", a)
	}
}

func TestAttributeVisitPartitionsWindow(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	v := &VisitRecord{
		Site:  "s",
		Start: ms(100),
		PLT:   ms(100), // window [100, 200]
		Events: []Event{
			// Client TCP conn 1: connect 100..110, TLS 110..130.
			{At: ms(100), Kind: KindTCPSynSent, Conn: 1},
			{At: ms(110), Kind: KindTCPEstablished, Conn: 1, A: 1},
			{At: ms(110), Kind: KindTLSClientHello, Conn: 1, A: 13},
			{At: ms(130), Kind: KindTLSHandshakeDone, Conn: 1, A: 1},
			// Server-side conn 2 (no dial event): must not contribute.
			{At: ms(105), Kind: KindTCPEstablished, Conn: 2},
			{At: ms(120), Kind: KindTCPHolStart, Conn: 2, A: 999},
			{At: ms(125), Kind: KindTCPHolEnd, Conn: 2},
			// Fetch 1: sent 130, done 180; overlapping HOL stall 140..160
			// outranks transfer.
			{At: ms(130), Kind: KindFetchSent, Conn: 1, A: 1},
			{At: ms(140), Kind: KindTCPHolStart, Conn: 1, A: 4096},
			{At: ms(160), Kind: KindTCPHolEnd, Conn: 1},
			{At: ms(180), Kind: KindFetchDone, Conn: 1, A: 1, B: 200},
		},
	}
	p := AttributeVisit(v)
	if p.Total() != v.PLT {
		t.Fatalf("Total = %v, want PLT %v (buckets must partition the window)", p.Total(), v.PLT)
	}
	want := PhaseBreakdown{
		Connect:   ms(10),
		Handshake: ms(20),
		Stall:     ms(20),
		Transfer:  ms(30), // 130..180 minus the 20ms stall
		Other:     ms(20), // 180..200 tail
	}
	if p != want {
		t.Fatalf("AttributeVisit = %+v, want %+v", p, want)
	}
}

func TestAttributeVisitClampsOpenSpans(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	v := &VisitRecord{
		Start: 0,
		PLT:   ms(50),
		Events: []Event{
			// Dial that never completes: connect clamps to window end.
			{At: ms(10), Kind: KindTCPSynSent, Conn: 1},
			// QUIC handshake completing after the window: clamped too.
			{At: ms(0), Kind: KindQUICHandshakeStart, Conn: 2},
			{At: ms(70), Kind: KindQUICHandshakeDone, Conn: 2, A: 1},
		},
	}
	p := AttributeVisit(v)
	if p.Total() != v.PLT {
		t.Fatalf("Total = %v, want %v", p.Total(), v.PLT)
	}
	// QUIC handshake covers 0..50 (priority below connect only where
	// both are active: connect active 10..50).
	want := PhaseBreakdown{Connect: ms(40), Handshake: ms(10)}
	if p != want {
		t.Fatalf("AttributeVisit = %+v, want %+v", p, want)
	}
}

func TestAttributeVisitEmpty(t *testing.T) {
	p := AttributeVisit(&VisitRecord{PLT: time.Second})
	if p.Other != time.Second || p.Total() != time.Second {
		t.Fatalf("empty trace: %+v, want all time in Other", p)
	}
	if z := AttributeVisit(&VisitRecord{}); z.Total() != 0 {
		t.Fatalf("zero-PLT visit: %+v, want zero", z)
	}
}
