package trace

import (
	"sort"
	"time"
)

// PhaseBreakdown folds one visit's events into the paper's F6b-style
// phase buckets. The buckets partition the visit window [Start,
// Start+PLT]: each instant is attributed to exactly one phase by
// priority (connect > handshake > stall > transfer), and time covered
// by no activity span lands in Other — so the buckets sum to PLT by
// construction, which is what the HAR cross-check test relies on.
type PhaseBreakdown struct {
	// Resolve is DNS time. The simulated resolver is an in-process
	// table (the paper's vantages run a warm local resolver), so this
	// is always zero; the bucket exists to keep the taxonomy aligned
	// with the paper's phase list.
	Resolve time.Duration `json:"resolve"`
	// Connect is TCP three-way-handshake time (SYN sent to
	// established) on client connections. Zero for pure-H3 visits:
	// QUIC's integrated handshake is all Handshake.
	Connect time.Duration `json:"connect"`
	// Handshake is TLS handshake time over TCP, or the whole QUIC
	// handshake (transport + crypto are one exchange).
	Handshake time.Duration `json:"handshake"`
	// Stall is receive-side head-of-line blocking: time data sat
	// buffered behind a sequence gap on client connections (TCP) or
	// client streams (QUIC).
	Stall time.Duration `json:"stall"`
	// Transfer is request/response time outside the phases above:
	// fetch sent to fetch completion.
	Transfer time.Duration `json:"transfer"`
	// Other is visit time covered by none of the spans (script-free
	// think time, inter-fetch gaps, post-failure tails).
	Other time.Duration `json:"other"`
	// Truncated reports that the tracer's ring overflowed during this
	// visit (VisitRecord.Dropped > 0): the sweep saw only a suffix of
	// the events, so span openings may be missing and the attribution
	// is a lower bound, not exact. Consumers should fall back to
	// HAR-derived buckets (see core's campaign stitching) or widen the
	// ring.
	Truncated bool `json:"truncated,omitempty"`
}

// Total returns the bucket sum — exactly the visit's PLT.
func (p PhaseBreakdown) Total() time.Duration {
	return p.Resolve + p.Connect + p.Handshake + p.Stall + p.Transfer + p.Other
}

// Add accumulates q into p. Truncation is sticky: an aggregate built
// from any truncated visit is itself marked truncated.
func (p *PhaseBreakdown) Add(q PhaseBreakdown) {
	p.Resolve += q.Resolve
	p.Connect += q.Connect
	p.Handshake += q.Handshake
	p.Stall += q.Stall
	p.Transfer += q.Transfer
	p.Other += q.Other
	p.Truncated = p.Truncated || q.Truncated
}

// Scale divides every bucket by n (for computing means).
func (p *PhaseBreakdown) Scale(n int) {
	if n <= 0 {
		return
	}
	d := time.Duration(n)
	p.Resolve /= d
	p.Connect /= d
	p.Handshake /= d
	p.Stall /= d
	p.Transfer /= d
	p.Other /= d
}

// Attribution classes in priority order: when spans overlap, the
// highest-priority (lowest-valued) active class claims the time.
const (
	classConnect = iota
	classHandshake
	classStall
	classTransfer
	numClasses
)

type sweepPoint struct {
	at    time.Duration
	class int8
	delta int8 // +1 span opens, -1 span closes
}

// AttributeVisit computes the phase breakdown of one visit from its
// event trace. Only client-side connections contribute connect,
// handshake, and stall spans; server connections are identified by
// having no dial event (TCPSynSent / QUICHandshakeStart) and excluded.
// Spans still open at the visit's end (failed handshakes, unfilled
// gaps) are clamped to the window.
func AttributeVisit(v *VisitRecord) PhaseBreakdown {
	var out PhaseBreakdown
	out.Truncated = v.Dropped > 0
	if v.PLT <= 0 {
		return out
	}
	start, end := v.Start, v.Start+v.PLT

	// Client connections: ids that dialed inside this visit.
	client := make(map[uint32]bool)
	for i := range v.Events {
		e := &v.Events[i]
		if e.Kind == KindTCPSynSent || e.Kind == KindQUICHandshakeStart {
			client[e.Conn] = true
		}
	}

	var points []sweepPoint
	addSpan := func(from, to time.Duration, class int8) {
		if from < start {
			from = start
		}
		if to > end {
			to = end
		}
		if to <= from {
			return
		}
		points = append(points, sweepPoint{from, class, +1}, sweepPoint{to, class, -1})
	}

	type streamKey struct {
		conn   uint32
		stream int64
	}
	connOpen := make(map[uint32]time.Duration)     // TCP dial in progress
	tlsOpen := make(map[uint32]time.Duration)      // TLS handshake in progress
	quicOpen := make(map[uint32]time.Duration)     // QUIC handshake in progress
	tcpStall := make(map[uint32]time.Duration)     // TCP HOL stall in progress
	quicStall := make(map[streamKey]time.Duration) // QUIC stream stall in progress
	fetchOpen := make(map[int64]time.Duration)     // fetch in flight, by sequence number

	for i := range v.Events {
		e := &v.Events[i]
		switch e.Kind {
		case KindTCPSynSent:
			connOpen[e.Conn] = e.At
		case KindTCPEstablished:
			if from, ok := connOpen[e.Conn]; ok && e.A != 0 {
				addSpan(from, e.At, classConnect)
				delete(connOpen, e.Conn)
			}
		case KindTLSClientHello:
			if client[e.Conn] {
				tlsOpen[e.Conn] = e.At
			}
		case KindTLSHandshakeDone:
			if from, ok := tlsOpen[e.Conn]; ok && e.A != 0 {
				addSpan(from, e.At, classHandshake)
				delete(tlsOpen, e.Conn)
			}
		case KindQUICHandshakeStart:
			quicOpen[e.Conn] = e.At
		case KindQUICHandshakeDone:
			if from, ok := quicOpen[e.Conn]; ok && e.A != 0 {
				addSpan(from, e.At, classHandshake)
				delete(quicOpen, e.Conn)
			}
		case KindTCPHolStart:
			if client[e.Conn] {
				tcpStall[e.Conn] = e.At
			}
		case KindTCPHolEnd:
			if from, ok := tcpStall[e.Conn]; ok {
				addSpan(from, e.At, classStall)
				delete(tcpStall, e.Conn)
			}
		case KindQUICStallStart:
			if client[e.Conn] {
				quicStall[streamKey{e.Conn, e.A}] = e.At
			}
		case KindQUICStallEnd:
			if from, ok := quicStall[streamKey{e.Conn, e.A}]; ok {
				addSpan(from, e.At, classStall)
				delete(quicStall, streamKey{e.Conn, e.A})
			}
		case KindFetchSent:
			fetchOpen[e.A] = e.At
		case KindFetchDone, KindFetchFail:
			if from, ok := fetchOpen[e.A]; ok {
				addSpan(from, e.At, classTransfer)
				delete(fetchOpen, e.A)
			}
		}
	}
	// Clamp still-open spans (aborted dials, unfilled gaps, failed
	// fetches whose terminal event fell outside the ring) to the window.
	for _, from := range connOpen {
		addSpan(from, end, classConnect)
	}
	for _, from := range tlsOpen {
		addSpan(from, end, classHandshake)
	}
	for _, from := range quicOpen {
		addSpan(from, end, classHandshake)
	}
	for _, from := range tcpStall {
		addSpan(from, end, classStall)
	}
	for _, from := range quicStall {
		addSpan(from, end, classStall)
	}
	for _, from := range fetchOpen {
		addSpan(from, end, classTransfer)
	}

	// Priority sweep over the span boundaries. Between consecutive
	// boundaries the active-class set is constant; the segment goes to
	// the highest-priority active class, or Other when none is active.
	sort.Slice(points, func(i, j int) bool { return points[i].at < points[j].at })
	buckets := [numClasses + 1]time.Duration{} // +1: Other
	var counts [numClasses]int
	prev := start
	attribute := func(upto time.Duration) {
		if upto <= prev {
			return
		}
		seg := upto - prev
		cl := numClasses // Other
		for c := 0; c < numClasses; c++ {
			if counts[c] > 0 {
				cl = c
				break
			}
		}
		buckets[cl] += seg
		prev = upto
	}
	for _, p := range points {
		attribute(p.at)
		counts[p.class] += int(p.delta)
	}
	attribute(end)

	out.Connect = buckets[classConnect]
	out.Handshake = buckets[classHandshake]
	out.Stall = buckets[classStall]
	out.Transfer = buckets[classTransfer]
	out.Other = buckets[numClasses]
	return out
}
