package trace

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// kindNames maps each Kind to its qlog event name ("category:event").
// QUIC packet/loss events reuse the canonical qlog names; simulator-
// specific events use the sim/tcp/tls/http/browser categories.
var kindNames = [kindCount]string{
	KindPacketSent:    "sim:packet_sent",
	KindPacketArrived: "sim:packet_arrived",
	KindPacketDropped: "sim:packet_dropped",
	KindPacketDelayed: "sim:packet_delayed",
	KindLinkEpoch:     "sim:link_epoch",

	KindTCPSynSent:        "tcp:syn_sent",
	KindTCPEstablished:    "tcp:connection_established",
	KindTCPCwndChange:     "tcp:cwnd_change",
	KindTCPFastRetransmit: "tcp:fast_retransmit",
	KindTCPRTOFire:        "tcp:rto_fired",
	KindTCPConnFail:       "tcp:connection_failed",
	KindTCPHolStart:       "tcp:hol_start",
	KindTCPHolEnd:         "tcp:hol_end",

	KindTLSClientHello:   "tls:client_hello",
	KindTLSServerFlight:  "tls:server_flight",
	KindTLSTicketIssued:  "tls:ticket_issued",
	KindTLSHandshakeDone: "tls:handshake_done",

	KindQUICHandshakeStart: "transport:connection_started",
	KindQUICPacketSent:     "transport:packet_sent",
	KindQUICPacketRecv:     "transport:packet_received",
	KindQUICAck:            "recovery:ack_received",
	KindQUICPacketLost:     "recovery:packet_lost",
	KindQUICPTOFire:        "recovery:pto_fired",
	KindQUICZeroRTT:        "security:zero_rtt_decision",
	KindQUICHandshakeDone:  "transport:handshake_done",
	KindQUICConnFail:       "transport:connection_failed",
	KindQUICStallStart:     "http:stream_stall_start",
	KindQUICStallEnd:       "http:stream_stall_end",

	KindHTTPStreamOpen:  "http:request_sent",
	KindHTTPHeaders:     "http:response_headers",
	KindHTTPStreamClose: "http:stream_closed",
	KindHTTPStreamFail:  "http:stream_failed",

	KindFetchStart: "browser:fetch_start",
	KindFetchSent:  "browser:fetch_sent",
	KindFetchDone:  "browser:fetch_done",
	KindFetchRetry: "browser:fetch_retry",
	KindFetchFail:  "browser:fetch_fail",
	KindPreloadHit: "browser:preload_hit",
	KindAltSvc:     "browser:alt_svc_learned",
	KindPreconnect: "browser:preconnect",
}

// Name returns the qlog event name for k, or "unknown".
func (k Kind) Name() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// QlogWriter serializes VisitRecords as qlog-compatible JSONL: one
// header record, then one JSON object per event with relative
// millisecond timestamps. Every byte is hand-serialized in fixed field
// order (no map iteration, no float formatting), so identical event
// sequences produce identical bytes — the property the pinned golden
// trace hash relies on.
type QlogWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewQlogWriter writes the qlog header record to w and returns a writer
// for subsequent visits. Errors are sticky; check Err after the last
// visit.
func NewQlogWriter(w io.Writer, title string) *QlogWriter {
	q := &QlogWriter{w: w, buf: make([]byte, 0, 4096)}
	q.buf = append(q.buf, `{"qlog_format":"JSON-SEQ","qlog_version":"0.3","title":`...)
	q.buf = appendJSONString(q.buf, title)
	q.buf = append(q.buf, `,"trace":{"vantage_point":{"type":"client"},"common_fields":{"time_format":"relative"}}}`...)
	q.buf = append(q.buf, '\n')
	q.flush()
	return q
}

// Err returns the first write error, if any.
func (q *QlogWriter) Err() error { return q.err }

func (q *QlogWriter) flush() {
	if q.err == nil && len(q.buf) > 0 {
		if _, err := q.w.Write(q.buf); err != nil {
			q.err = fmt.Errorf("trace: qlog write: %w", err)
		}
	}
	q.buf = q.buf[:0]
}

// WriteVisit serializes one visit: a visit_start record (site, PLT,
// ring-overflow count), the events with times relative to visit start,
// and a visit_end record.
func (q *QlogWriter) WriteVisit(v *VisitRecord) error {
	q.buf = append(q.buf, `{"time":0.000000,"name":"sim:visit_start","data":{"site":`...)
	q.buf = appendJSONString(q.buf, v.Site)
	q.buf = append(q.buf, `,"plt_ms":`...)
	q.buf = appendMS(q.buf, v.PLT)
	q.buf = append(q.buf, `,"dropped_events":`...)
	q.buf = strconv.AppendInt(q.buf, v.Dropped, 10)
	q.buf = append(q.buf, "}}\n"...)
	for i := range v.Events {
		q.appendEvent(&v.Events[i], v.Start)
		// Flush in chunks so a whole packet-level visit never holds a
		// multi-megabyte serialization buffer.
		if len(q.buf) >= 1<<16 {
			q.flush()
		}
	}
	q.buf = append(q.buf, `{"time":`...)
	q.buf = appendMS(q.buf, v.PLT)
	q.buf = append(q.buf, `,"name":"sim:visit_end","data":{}}`...)
	q.buf = append(q.buf, '\n')
	q.flush()
	return q.err
}

func (q *QlogWriter) appendEvent(e *Event, start time.Duration) {
	b := q.buf
	b = append(b, `{"time":`...)
	b = appendMS(b, e.At-start)
	b = append(b, `,"name":"`...)
	b = append(b, e.Kind.Name()...)
	b = append(b, `","data":{`...)
	n := len(b)
	if e.Conn != 0 {
		b = appendKVInt(b, "conn", int64(e.Conn))
	}
	switch e.Kind {
	case KindPacketSent, KindPacketArrived:
		b = appendKVStr(b, "src", e.S1)
		b = appendKVStr(b, "dst", e.S2)
		b = appendKVInt(b, "size", e.A)
		b = appendKVInt(b, "src_port", e.B>>16)
		b = appendKVInt(b, "dst_port", e.B&0xffff)
	case KindPacketDropped:
		b = appendKVStr(b, "src", e.S1)
		b = appendKVStr(b, "dst", e.S2)
		b = appendKVInt(b, "size", e.A)
		b = appendKVStr(b, "cause", dropCause(e.C))
	case KindPacketDelayed:
		b = appendKVStr(b, "src", e.S1)
		b = appendKVStr(b, "dst", e.S2)
		b = appendKVDurMS(b, "extra_ms", time.Duration(e.C))
	case KindLinkEpoch:
		b = appendKVStr(b, "src", e.S1)
		b = appendKVStr(b, "dst", e.S2)
		b = appendKVInt(b, "epoch", e.A)
		b = appendKVInt(b, "bps", e.B)
		b = appendKVInt(b, "queued", e.C)
	case KindTCPSynSent:
		// conn only
	case KindTCPEstablished:
		b = appendKVBool(b, "client", e.A != 0)
	case KindTCPCwndChange:
		b = appendKVInt(b, "cwnd", e.A)
		b = appendKVInt(b, "ssthresh", e.B)
		b = appendKVStr(b, "cause", cwndCause(e.C))
	case KindTCPFastRetransmit:
		b = appendKVInt(b, "seq", e.A)
	case KindTCPRTOFire:
		b = appendKVInt(b, "timeouts", e.A)
		b = appendKVDurMS(b, "rto_ms", time.Duration(e.B))
	case KindTCPConnFail, KindQUICConnFail:
		b = appendKVStr(b, "error", e.S1)
	case KindTCPHolStart:
		b = appendKVInt(b, "buffered", e.A)
	case KindTCPHolEnd:
		b = appendKVDurMS(b, "stall_ms", time.Duration(e.B))
	case KindTLSClientHello:
		b = appendKVInt(b, "version", e.A)
		b = appendKVBool(b, "resuming", e.B != 0)
		b = appendKVBool(b, "early_data", e.C != 0)
	case KindTLSServerFlight:
		b = appendKVInt(b, "version", e.A)
		b = appendKVBool(b, "resumed", e.B != 0)
	case KindTLSTicketIssued:
		b = appendKVInt(b, "ticket", e.A)
	case KindTLSHandshakeDone:
		b = appendKVBool(b, "client", e.A != 0)
		b = appendKVBool(b, "resumed", e.B != 0)
		b = appendKVBool(b, "early_data", e.C != 0)
	case KindQUICHandshakeStart:
		b = appendKVBool(b, "resuming", e.A != 0)
		b = appendKVBool(b, "zero_rtt", e.B != 0)
	case KindQUICPacketSent:
		b = appendKVInt(b, "packet_number", e.A)
		b = appendKVInt(b, "size", e.B)
	case KindQUICPacketRecv:
		b = appendKVInt(b, "packet_number", e.A)
		b = appendKVBool(b, "duplicate", e.B != 0)
	case KindQUICAck:
		b = appendKVInt(b, "largest_acked", e.A)
		b = appendKVInt(b, "ranges", e.B)
		b = appendKVInt(b, "lost", e.C)
	case KindQUICPacketLost:
		b = appendKVInt(b, "packet_number", e.A)
	case KindQUICPTOFire:
		b = appendKVInt(b, "pto_count", e.A)
	case KindQUICZeroRTT:
		b = appendKVBool(b, "accepted", e.A != 0)
	case KindQUICHandshakeDone:
		b = appendKVBool(b, "client", e.A != 0)
		b = appendKVBool(b, "resumed", e.B != 0)
		b = appendKVBool(b, "zero_rtt", e.C != 0)
	case KindQUICStallStart:
		b = appendKVInt(b, "stream_id", e.A)
		b = appendKVInt(b, "buffered", e.B)
	case KindQUICStallEnd:
		b = appendKVInt(b, "stream_id", e.A)
		b = appendKVDurMS(b, "stall_ms", time.Duration(e.B))
	case KindHTTPStreamOpen:
		b = appendKVInt(b, "stream_id", e.A)
		b = appendKVStr(b, "host", e.S1)
		b = appendKVStr(b, "path", e.S2)
	case KindHTTPHeaders:
		b = appendKVInt(b, "stream_id", e.A)
		b = appendKVInt(b, "status", e.B)
		b = appendKVInt(b, "body_size", e.C)
	case KindHTTPStreamClose:
		b = appendKVInt(b, "stream_id", e.A)
	case KindHTTPStreamFail:
		b = appendKVInt(b, "stream_id", e.A)
		b = appendKVStr(b, "error", e.S1)
	case KindFetchStart:
		b = appendKVInt(b, "fetch", e.A)
		b = appendKVStr(b, "host", e.S1)
		b = appendKVStr(b, "path", e.S2)
	case KindFetchSent:
		b = appendKVInt(b, "fetch", e.A)
	case KindFetchDone:
		b = appendKVInt(b, "fetch", e.A)
		b = appendKVInt(b, "status", e.B)
		b = appendKVInt(b, "body_size", e.C)
	case KindFetchRetry:
		b = appendKVInt(b, "fetch", e.A)
		b = appendKVInt(b, "attempt", e.B)
		b = appendKVStr(b, "error", e.S1)
	case KindFetchFail:
		b = appendKVInt(b, "fetch", e.A)
		b = appendKVStr(b, "error", e.S1)
	case KindPreloadHit, KindAltSvc, KindPreconnect:
		b = appendKVStr(b, "host", e.S1)
	}
	// Strip the trailing comma appendKV helpers leave behind.
	if len(b) > n && b[len(b)-1] == ',' {
		b = b[:len(b)-1]
	}
	b = append(b, "}}\n"...)
	q.buf = b
}

func dropCause(c int64) string {
	switch c {
	case DropFilter:
		return "filter"
	case DropQueue:
		return "queue"
	case DropLoss:
		return "loss"
	case DropBurst:
		return "burst"
	case DropOutage:
		return "outage"
	}
	return "unknown"
}

func cwndCause(c int64) string {
	switch c {
	case CwndFastRecovery:
		return "fast_recovery"
	case CwndRecoveryExit:
		return "recovery_exit"
	case CwndRTOCollapse:
		return "rto_collapse"
	}
	return "unknown"
}

// appendMS appends a nanosecond duration as fractional milliseconds
// with exactly six decimal places — nanosecond-exact, float-free, and
// byte-deterministic.
func appendMS(b []byte, d time.Duration) []byte {
	ns := int64(d)
	if ns < 0 {
		b = append(b, '-')
		ns = -ns
	}
	b = strconv.AppendInt(b, ns/1e6, 10)
	b = append(b, '.')
	frac := ns % 1e6
	for div := int64(1e5); div > 0; div /= 10 {
		b = append(b, byte('0'+frac/div%10))
	}
	return b
}

// appendKV* append `"key":value,` — the caller strips the final comma.

func appendKVInt(b []byte, k string, v int64) []byte {
	b = append(b, '"')
	b = append(b, k...)
	b = append(b, `":`...)
	b = strconv.AppendInt(b, v, 10)
	return append(b, ',')
}

func appendKVStr(b []byte, k, v string) []byte {
	b = append(b, '"')
	b = append(b, k...)
	b = append(b, `":`...)
	b = appendJSONString(b, v)
	return append(b, ',')
}

func appendKVBool(b []byte, k string, v bool) []byte {
	b = append(b, '"')
	b = append(b, k...)
	b = append(b, `":`...)
	b = strconv.AppendBool(b, v)
	return append(b, ',')
}

func appendKVDurMS(b []byte, k string, d time.Duration) []byte {
	b = append(b, '"')
	b = append(b, k...)
	b = append(b, `":`...)
	b = appendMS(b, d)
	return append(b, ',')
}

// appendJSONString appends v as a JSON string literal. Hostnames,
// paths, and static error text are plain ASCII, but control characters
// and quotes are escaped for safety.
func appendJSONString(b []byte, v string) []byte {
	b = append(b, '"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
