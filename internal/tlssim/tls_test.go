package tlssim

import (
	"bytes"
	"testing"
	"time"

	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tcpsim"
)

// testWorld wires client and server hosts with a symmetric 25ms one-way
// delay (50ms RTT) and a TLS echo server.
type testWorld struct {
	sched    *simnet.Scheduler
	net      *simnet.Network
	client   *simnet.Host
	server   *simnet.Host
	sessions *ServerSessionState
}

func newTestWorld(t *testing.T, loss float64) *testWorld {
	t.Helper()
	sched := &simnet.Scheduler{MaxEvents: 2_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		props := simnet.PathProps{Delay: 25 * time.Millisecond, LossRate: loss}
		if loss > 0 {
			props.BandwidthBps = 100e6
		}
		return props
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(11))
	w := &testWorld{
		sched:    sched,
		net:      n,
		client:   n.AddHost("client"),
		server:   n.AddHost("server"),
		sessions: NewServerSessionState(),
	}
	// TLS echo server.
	if _, err := tcpsim.Listen(w.server, 443, tcpsim.Config{}, func(tc *tcpsim.Conn) {
		var tlsConn *Conn
		tlsConn = Server(tc, ServerConfig{Sessions: w.sessions, Sched: sched}, nil)
		tlsConn.SetDataFunc(func(p []byte) { tlsConn.Write(p) })
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

// dial opens TCP+TLS and invokes ready when app data may flow.
func (w *testWorld) dial(t *testing.T, cfg ClientConfig, ready func(*Conn)) {
	t.Helper()
	cfg.Sched = w.sched
	if cfg.ServerName == "" {
		cfg.ServerName = "server"
	}
	tcpsim.Dial(w.client, "server", 443, tcpsim.Config{}, func(tc *tcpsim.Conn) {
		var tlsConn *Conn
		tlsConn = Client(tc, cfg, func(err error) {
			if err != nil {
				t.Fatalf("handshake: %v", err)
			}
			ready(tlsConn)
		})
	})
}

func (w *testWorld) run(t *testing.T) {
	t.Helper()
	if _, err := w.sched.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

func TestTLS13HandshakeIsTwoRTTsTotal(t *testing.T) {
	w := newTestWorld(t, 0)
	var readyAt time.Duration
	w.dial(t, ClientConfig{Version: TLS13}, func(c *Conn) {
		readyAt = w.sched.Now()
		if c.Resumed() {
			t.Fatal("fresh handshake reported resumed")
		}
	})
	w.run(t)
	// 1 RTT TCP + 1 RTT TLS 1.3 = 100ms.
	if readyAt != 100*time.Millisecond {
		t.Fatalf("TLS 1.3 ready at %v, want 100ms", readyAt)
	}
}

func TestTLS12HandshakeIsThreeRTTsTotal(t *testing.T) {
	w := newTestWorld(t, 0)
	var readyAt time.Duration
	w.dial(t, ClientConfig{Version: TLS12}, func(c *Conn) {
		readyAt = w.sched.Now()
		if c.Version() != TLS12 {
			t.Fatalf("version = %v", c.Version())
		}
	})
	w.run(t)
	// 1 RTT TCP + 2 RTT TLS 1.2 = 150ms: the paper's "three round-trip
	// times" for the H2 + TLS/1.2 suite.
	if readyAt != 150*time.Millisecond {
		t.Fatalf("TLS 1.2 ready at %v, want 150ms", readyAt)
	}
}

func TestTLS13ResumptionEarlyDataIsOneRTTTotal(t *testing.T) {
	w := newTestWorld(t, 0)
	tickets := NewTicketStore()

	var first, second time.Duration
	w.dial(t, ClientConfig{Version: TLS13, Tickets: tickets}, func(c *Conn) {
		first = w.sched.Now()
	})
	w.run(t)
	if tickets.Len() != 1 {
		t.Fatalf("ticket store has %d tickets after first handshake, want 1", tickets.Len())
	}

	base := w.sched.Now()
	w.dial(t, ClientConfig{Version: TLS13, Tickets: tickets, EnableEarlyData: true}, func(c *Conn) {
		second = w.sched.Now()
		if !c.Resumed() || !c.UsedEarlyData() {
			t.Fatalf("resumed=%v earlyData=%v, want both", c.Resumed(), c.UsedEarlyData())
		}
	})
	w.run(t)

	if first != 100*time.Millisecond {
		t.Fatalf("first handshake at %v, want 100ms", first)
	}
	// Second: only the TCP handshake (50ms); TLS adds zero RTT.
	if second-base != 50*time.Millisecond {
		t.Fatalf("resumed handshake took %v, want 50ms", second-base)
	}
}

func TestTLS13ResumptionWithoutEarlyData(t *testing.T) {
	w := newTestWorld(t, 0)
	tickets := NewTicketStore()
	w.dial(t, ClientConfig{Version: TLS13, Tickets: tickets}, func(*Conn) {})
	w.run(t)

	base := w.sched.Now()
	var at time.Duration
	w.dial(t, ClientConfig{Version: TLS13, Tickets: tickets}, func(c *Conn) {
		at = w.sched.Now() - base
		if !c.Resumed() {
			t.Fatal("second handshake not resumed")
		}
		if c.UsedEarlyData() {
			t.Fatal("early data used without being enabled")
		}
	})
	w.run(t)
	// PSK without early data still costs 1 TLS RTT: 100ms total.
	if at != 100*time.Millisecond {
		t.Fatalf("resumed (no 0-RTT) handshake took %v, want 100ms", at)
	}
}

func TestUnknownTicketFallsBackToFullHandshake(t *testing.T) {
	w := newTestWorld(t, 0)
	tickets := NewTicketStore()
	tickets.Put(Ticket{ID: 999999, ServerName: "server"}) // never issued
	w.dial(t, ClientConfig{Version: TLS13, Tickets: tickets}, func(c *Conn) {
		if c.Resumed() {
			t.Fatal("bogus ticket accepted")
		}
	})
	w.run(t)
}

func TestEchoThroughTLS(t *testing.T) {
	w := newTestWorld(t, 0)
	msg := bytes.Repeat([]byte("tls echo payload "), 4096) // ~68KB, multiple records
	var got bytes.Buffer
	w.dial(t, ClientConfig{Version: TLS13}, func(c *Conn) {
		c.SetDataFunc(func(p []byte) { got.Write(p) })
		c.Write(msg)
	})
	w.run(t)
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("echo mismatch: %d/%d bytes", got.Len(), len(msg))
	}
}

func TestEchoThroughTLSUnderLoss(t *testing.T) {
	w := newTestWorld(t, 0.05)
	msg := bytes.Repeat([]byte("lossy tls "), 8000) // ~80KB
	var got bytes.Buffer
	w.dial(t, ClientConfig{Version: TLS13}, func(c *Conn) {
		c.SetDataFunc(func(p []byte) { got.Write(p) })
		c.Write(msg)
	})
	w.run(t)
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("echo mismatch under loss: %d/%d bytes", got.Len(), len(msg))
	}
}

func TestEarlyDataArrivesWithFirstFlight(t *testing.T) {
	// The whole point of 0-RTT: request bytes reach the server app at
	// ~1.5 RTT total (TCP handshake + one-way), not 2.5.
	sched := &simnet.Scheduler{MaxEvents: 2_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: 25 * time.Millisecond}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(5))
	client := n.AddHost("client")
	server := n.AddHost("server")
	sessions := NewServerSessionState()

	var firstByteAt time.Duration
	if _, err := tcpsim.Listen(server, 443, tcpsim.Config{}, func(tc *tcpsim.Conn) {
		var sc *Conn
		sc = Server(tc, ServerConfig{Sessions: sessions, Sched: sched}, nil)
		sc.SetDataFunc(func(p []byte) {
			if firstByteAt == 0 {
				firstByteAt = sched.Now()
			}
		})
	}); err != nil {
		t.Fatal(err)
	}

	tickets := NewTicketStore()
	start := func(early bool, onReady func(*Conn)) {
		tcpsim.Dial(client, "server", 443, tcpsim.Config{}, func(tc *tcpsim.Conn) {
			var cc *Conn
			cc = Client(tc, ClientConfig{
				Version: TLS13, ServerName: "server", Tickets: tickets,
				EnableEarlyData: early, Sched: sched,
			}, func(err error) {
				if err != nil {
					t.Fatalf("handshake: %v", err)
				}
				onReady(cc)
			})
		})
	}
	start(false, func(c *Conn) {}) // warm the ticket store
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}

	base := sched.Now()
	firstByteAt = 0
	start(true, func(c *Conn) { c.Write([]byte("GET / early")) })
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := firstByteAt - base
	// TCP handshake 50ms + one-way 25ms = 75ms.
	if elapsed != 75*time.Millisecond {
		t.Fatalf("early data reached server after %v, want 75ms", elapsed)
	}
}

func TestHandshakeCPUDelaysCompletion(t *testing.T) {
	sched := &simnet.Scheduler{MaxEvents: 2_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: 25 * time.Millisecond}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(5))
	client := n.AddHost("client")
	server := n.AddHost("server")
	if _, err := tcpsim.Listen(server, 443, tcpsim.Config{}, func(tc *tcpsim.Conn) {
		Server(tc, ServerConfig{Sched: sched, HandshakeCPU: 3 * time.Millisecond}, nil)
	}); err != nil {
		t.Fatal(err)
	}
	var readyAt time.Duration
	tcpsim.Dial(client, "server", 443, tcpsim.Config{}, func(tc *tcpsim.Conn) {
		Client(tc, ClientConfig{
			Version: TLS13, ServerName: "server", Sched: sched, HandshakeCPU: 2 * time.Millisecond,
		}, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			readyAt = sched.Now()
		})
	})
	if _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// 100ms network + 3ms server CPU + 2ms client CPU.
	if readyAt != 105*time.Millisecond {
		t.Fatalf("ready at %v, want 105ms", readyAt)
	}
}

func TestTicketStoreBasics(t *testing.T) {
	s := NewTicketStore()
	if _, ok := s.Get("x"); ok {
		t.Fatal("empty store returned a ticket")
	}
	s.Put(Ticket{ID: 1, ServerName: "x"})
	s.Put(Ticket{ID: 2, ServerName: "x"}) // replace
	tk, ok := s.Get("x")
	if !ok || tk.ID != 2 {
		t.Fatalf("Get = %+v, %v; want ID 2", tk, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear did not empty the store")
	}
}

func TestVersionString(t *testing.T) {
	if TLS12.String() != "TLS 1.2" || TLS13.String() != "TLS 1.3" {
		t.Fatal("version strings wrong")
	}
	if Version(9).String() != "TLS ?" {
		t.Fatal("unknown version string wrong")
	}
}
