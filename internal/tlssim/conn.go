package tlssim

import (
	"time"

	"h3cdn/internal/bufpool"
	"h3cdn/internal/bytestream"
	"h3cdn/internal/simnet"
	"h3cdn/internal/trace"
)

// ClientConfig configures a client-side TLS connection.
type ClientConfig struct {
	// Version selects TLS12 or TLS13. Default TLS13.
	Version Version
	// ServerName is the SNI; it keys the ticket cache.
	ServerName string
	// Tickets, when non-nil, enables TLS 1.3 session resumption.
	Tickets *TicketStore
	// EnableEarlyData sends 0-RTT application data when a ticket is
	// available (TLS 1.3 only).
	EnableEarlyData bool
	// Sched enables CPU cost modeling; nil runs crypto at zero cost.
	Sched *simnet.Scheduler
	// HandshakeCPU is the client-side crypto compute time for a full
	// handshake (halved for resumption).
	HandshakeCPU time.Duration
	// ALPN is the application protocol to negotiate (e.g. "h2", "http/1.1").
	ALPN string
	// Trace, when non-nil, receives handshake events. TraceConn is the
	// carrying transport connection's trace id, so TLS events share the
	// TCP connection's identity in the trace.
	Trace     *trace.Tracer
	TraceConn uint32
	// Arena, when non-nil, supplies the per-universe buffer arena for
	// record construction. Nil falls back to the global bufpool.
	Arena *bufpool.Arena
}

// ServerConfig configures a server-side TLS connection.
type ServerConfig struct {
	// Sessions is the server ticket registry; nil disables resumption.
	Sessions *ServerSessionState
	// Sched enables CPU cost modeling; nil runs crypto at zero cost.
	Sched *simnet.Scheduler
	// HandshakeCPU is the server-side crypto compute time for a full
	// handshake (halved for resumption).
	HandshakeCPU time.Duration
	// Trace / TraceConn mirror ClientConfig's tracing fields for the
	// server side of the handshake.
	Trace     *trace.Tracer
	TraceConn uint32
	// Arena, when non-nil, supplies the per-universe buffer arena for
	// record construction. Nil falls back to the global bufpool.
	Arena *bufpool.Arena
}

// Conn is a TLS session over an underlying byte stream. It implements
// bytestream.Stream itself, delivering plaintext application data.
type Conn struct {
	transport bytestream.Stream
	isClient  bool
	ccfg      ClientConfig
	scfg      ServerConfig

	established bool
	closed      bool // local close/abort issued
	peerClosed  bool // transport reported end-of-stream
	resumed     bool
	earlyData   bool
	version     Version
	alpn        string
	serverName  string
	hsStart     time.Duration
	hsDone      time.Duration

	arena *bufpool.Arena

	recvAcc   []byte
	recvOff   int      // consumed prefix of recvAcc; compacted before each append
	pending   [][]byte // arena-owned app writes queued until the handshake allows them
	pendingIn [][]byte // plaintext received before a data callback exists

	dataFn      func([]byte)
	closeFn     func(error)
	onHandshake func(error)
}

var _ bytestream.Stream = (*Conn)(nil)

// Client starts a TLS handshake as the initiator over transport.
// onHandshake fires as soon as application data may be sent: after one
// round trip for TLS 1.3, two for TLS 1.2, and immediately for 0-RTT
// resumption.
func Client(transport bytestream.Stream, cfg ClientConfig, onHandshake func(error)) *Conn {
	if cfg.Version == 0 {
		cfg.Version = TLS13
	}
	c := &Conn{
		transport:   transport,
		isClient:    true,
		ccfg:        cfg,
		version:     cfg.Version,
		onHandshake: onHandshake,
		arena:       cfg.Arena,
	}
	if cfg.Sched != nil {
		c.hsStart = cfg.Sched.Now()
	}
	transport.SetDataFunc(c.onTransportData)
	transport.SetCloseFunc(c.onTransportClose)

	c.alpn = cfg.ALPN
	c.serverName = cfg.ServerName
	ch := clientHello{version: cfg.Version, serverName: cfg.ServerName, alpn: cfg.ALPN}
	if cfg.Version == TLS13 && cfg.Tickets != nil {
		if t, ok := cfg.Tickets.Get(cfg.ServerName); ok {
			ch.ticketID = t.ID
			c.resumed = true
			if cfg.EnableEarlyData {
				ch.earlyData = true
				c.earlyData = true
			}
		}
	}
	cfg.Trace.TLSClientHello(c.hsStart, cfg.TraceConn, int(cfg.Version), c.resumed, c.earlyData)
	transport.Write(encodeRecord(recClientHello, encodeClientHello(ch)))
	if c.earlyData {
		// 0-RTT: the application may transmit immediately. Completion
		// is deferred one scheduler tick (zero virtual time) so the
		// callback never fires before Client returns.
		if cfg.Sched != nil {
			cfg.Sched.After(0, func() { c.completeHandshake(nil) })
		} else {
			c.completeHandshake(nil)
		}
	}
	return c
}

// Server starts a TLS handshake as the responder over transport.
// onHandshake fires once the server may send application data (after its
// first flight); it may be nil.
func Server(transport bytestream.Stream, cfg ServerConfig, onHandshake func(error)) *Conn {
	c := &Conn{
		transport:   transport,
		scfg:        cfg,
		onHandshake: onHandshake,
		arena:       cfg.Arena,
	}
	if cfg.Sched != nil {
		c.hsStart = cfg.Sched.Now()
	}
	transport.SetDataFunc(c.onTransportData)
	transport.SetCloseFunc(c.onTransportClose)
	return c
}

// Established reports whether application data may flow.
func (c *Conn) Established() bool { return c.established }

// Resumed reports whether the session was resumed from a ticket.
func (c *Conn) Resumed() bool { return c.resumed }

// UsedEarlyData reports whether 0-RTT application data was sent.
func (c *Conn) UsedEarlyData() bool { return c.earlyData }

// Version returns the negotiated TLS version.
func (c *Conn) Version() Version { return c.version }

// ALPN returns the negotiated application protocol. On the server side it
// is available once the handshake callback fires.
func (c *Conn) ALPN() string { return c.alpn }

// ServerName returns the SNI. On the server side it is available once the
// handshake callback fires.
func (c *Conn) ServerName() string { return c.serverName }

// HandshakeDuration returns the time from connection start until
// application data could first be sent (zero without a scheduler).
func (c *Conn) HandshakeDuration() time.Duration { return c.hsDone - c.hsStart }

// tracer returns this side's tracer and connection trace id.
func (c *Conn) tracer() (*trace.Tracer, uint32) {
	if c.isClient {
		return c.ccfg.Trace, c.ccfg.TraceConn
	}
	return c.scfg.Trace, c.scfg.TraceConn
}

// TraceID returns the carrying connection's trace id (0 when untraced).
func (c *Conn) TraceID() uint32 {
	_, id := c.tracer()
	return id
}

func (c *Conn) now() time.Duration {
	if c.ccfg.Sched != nil {
		return c.ccfg.Sched.Now()
	}
	if c.scfg.Sched != nil {
		return c.scfg.Sched.Now()
	}
	return 0
}

// SetDataFunc registers the plaintext delivery callback. Plaintext that
// arrived earlier (e.g. 0-RTT early data processed before the application
// layer attached) is flushed immediately.
func (c *Conn) SetDataFunc(fn func([]byte)) {
	c.dataFn = fn
	if fn == nil {
		return
	}
	for len(c.pendingIn) > 0 {
		p := c.pendingIn[0]
		c.pendingIn = c.pendingIn[1:]
		fn(p)
	}
	c.pendingIn = nil
}

// SetCloseFunc registers the end-of-stream callback.
func (c *Conn) SetCloseFunc(fn func(error)) { c.closeFn = fn }

// UnsentBytes implements bytestream.Throttled by delegating to the
// transport (0 when the transport exposes no backpressure).
func (c *Conn) UnsentBytes() int {
	if t, ok := c.transport.(bytestream.Throttled); ok {
		return t.UnsentBytes()
	}
	return 0
}

// SetDrainFunc implements bytestream.Throttled by delegating to the
// transport; it is a no-op when the transport exposes no backpressure.
func (c *Conn) SetDrainFunc(threshold int, fn func()) {
	if t, ok := c.transport.(bytestream.Throttled); ok {
		t.SetDrainFunc(threshold, fn)
	}
}

// Write queues plaintext. Before the handshake permits transmission the
// data is buffered (or sent as 0-RTT early data when enabled).
func (c *Conn) Write(p []byte) {
	if c.closed {
		return
	}
	if !c.established {
		buf := c.arena.Get(len(p))
		copy(buf, p)
		c.pending = append(c.pending, buf)
		return
	}
	c.writeRecords(p)
}

func (c *Conn) writeRecords(p []byte) {
	for len(p) > 0 {
		n := len(p)
		if n > maxRecord {
			n = maxRecord
		}
		// Build the record in a pooled buffer: the transport copies on
		// Write, so the buffer can be recycled immediately. The trailing
		// tag bytes carry arbitrary contents — they stand in for an
		// AEAD tag and are stripped unread by the receiver.
		plen := n + recordTag
		rec := c.arena.Get(recordHeader + plen)
		rec[0] = byte(recAppData)
		rec[1] = byte(plen >> 16)
		rec[2] = byte(plen >> 8)
		rec[3] = byte(plen)
		rec[4] = 0
		copy(rec[recordHeader:], p[:n])
		c.transport.Write(rec)
		c.arena.Put(rec)
		p = p[n:]
	}
}

// Close flushes and closes the underlying transport cleanly.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.releasePending()
	c.transport.Close()
}

// Abort tears down the underlying transport immediately.
func (c *Conn) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.releasePending()
	c.transport.Abort()
}

func (c *Conn) completeHandshake(err error) {
	if c.established || c.closed {
		return
	}
	if err != nil {
		c.closed = true
		c.releasePending()
		if c.onHandshake != nil {
			c.onHandshake(err)
		}
		return
	}
	c.established = true
	if c.ccfg.Sched != nil {
		c.hsDone = c.ccfg.Sched.Now()
	} else if c.scfg.Sched != nil {
		c.hsDone = c.scfg.Sched.Now()
	}
	if tr, id := c.tracer(); tr != nil {
		tr.TLSHandshakeDone(c.hsDone, id, c.isClient, c.resumed, c.earlyData)
	}
	if c.onHandshake != nil {
		c.onHandshake(nil)
	}
	for _, p := range c.pending {
		c.writeRecords(p)
	}
	c.releasePending()
}

// releasePending returns queued pre-establishment writes to the arena.
// Idempotent: every path that abandons the queue (completion, close,
// abort, record failure) funnels through here so the arena's Get/Put
// balance holds even for failed handshakes.
func (c *Conn) releasePending() {
	for i, p := range c.pending {
		c.arena.Put(p)
		c.pending[i] = nil
	}
	c.pending = c.pending[:0]
}

func (c *Conn) onTransportClose(err error) {
	if c.peerClosed || c.closed {
		c.peerClosed = true
		return
	}
	c.peerClosed = true
	if !c.established {
		c.releasePending()
		if c.onHandshake != nil {
			hsErr := err
			if hsErr == nil {
				hsErr = ErrHandshakeAborted
			}
			c.onHandshake(hsErr)
		}
		return
	}
	if c.closeFn != nil {
		c.closeFn(err)
	}
}

func (c *Conn) onTransportData(p []byte) {
	// Compact the consumed prefix before appending so the accumulator
	// reuses one backing array instead of migrating forward with every
	// re-slice. Record payloads handed to handleRecord are only valid
	// for the duration of that call, so moving bytes here — between
	// transport deliveries — cannot invalidate a live payload.
	if c.recvOff > 0 {
		n := copy(c.recvAcc, c.recvAcc[c.recvOff:])
		c.recvAcc = c.recvAcc[:n]
		c.recvOff = 0
	}
	c.recvAcc = append(c.recvAcc, p...)
	for {
		acc := c.recvAcc[c.recvOff:]
		if len(acc) < recordHeader {
			return
		}
		plen := int(acc[1])<<16 | int(acc[2])<<8 | int(acc[3])
		if len(acc) < recordHeader+plen {
			return
		}
		rt := recordType(acc[0])
		payload := acc[recordHeader : recordHeader+plen]
		c.recvOff += recordHeader + plen
		c.handleRecord(rt, payload)
		if c.closed {
			return
		}
	}
}

func (c *Conn) handleRecord(rt recordType, payload []byte) {
	switch rt {
	case recAppData:
		if len(payload) < recordTag {
			c.failRecord()
			return
		}
		plain := payload[:len(payload)-recordTag]
		if len(plain) > 0 {
			if c.dataFn != nil {
				// plain aliases recvAcc, which is only appended to
				// between records — valid for the duration of the
				// callback, which copies what it keeps.
				c.dataFn(plain)
			} else {
				buf := make([]byte, len(plain))
				copy(buf, plain)
				c.pendingIn = append(c.pendingIn, buf)
			}
		}
	case recClientHello:
		if c.isClient {
			return
		}
		c.serverHandleClientHello(payload)
	case recServerHello13:
		if !c.isClient {
			return
		}
		sh, err := decodeServerHello13(payload)
		if err != nil {
			c.failRecord()
			return
		}
		if !sh.resumed {
			c.resumed = false
		}
		if sh.newTicketID != 0 && c.ccfg.Tickets != nil {
			var issued time.Duration
			if c.ccfg.Sched != nil {
				issued = c.ccfg.Sched.Now()
			}
			c.ccfg.Tickets.Put(Ticket{ID: sh.newTicketID, ServerName: c.ccfg.ServerName, IssuedAt: issued})
		}
		c.clientFinish13()
	case recServerHello12:
		if !c.isClient {
			return
		}
		// Second client flight: key exchange + Finished.
		cpuDelay(c.ccfg.Sched, c.ccfg.HandshakeCPU, func() {
			c.transport.Write(encodeRecord(recClientKeyExchange, make([]byte, sizeClientKeyExch)))
		})
	case recClientKeyExchange:
		if c.isClient {
			return
		}
		cpuDelay(c.scfg.Sched, c.scfg.HandshakeCPU, func() {
			c.transport.Write(encodeRecord(recServerFinished12, make([]byte, sizeServerFinished)))
			c.completeHandshake(nil)
		})
	case recServerFinished12:
		if !c.isClient {
			return
		}
		c.completeHandshake(nil)
	default:
		c.failRecord()
	}
}

func (c *Conn) clientFinish13() {
	cpu := c.ccfg.HandshakeCPU
	if c.resumed {
		cpu /= 2
	}
	cpuDelay(c.ccfg.Sched, cpu, func() {
		c.completeHandshake(nil)
	})
}

func (c *Conn) serverHandleClientHello(payload []byte) {
	ch, err := decodeClientHello(payload)
	if err != nil {
		c.failRecord()
		return
	}
	c.version = ch.version
	c.alpn = ch.alpn
	c.serverName = ch.serverName
	switch ch.version {
	case TLS13:
		resumed := c.scfg.Sessions != nil && c.scfg.Sessions.valid(ch.ticketID)
		c.resumed = resumed
		c.earlyData = resumed && ch.earlyData
		cpu := c.scfg.HandshakeCPU
		if resumed {
			cpu /= 2
		}
		cpuDelay(c.scfg.Sched, cpu, func() {
			sh := serverHello13{resumed: resumed}
			if c.scfg.Sessions != nil {
				sh.newTicketID = c.scfg.Sessions.issue()
			}
			c.scfg.Trace.TLSServerFlight(c.now(), c.scfg.TraceConn, int(TLS13), resumed)
			if sh.newTicketID != 0 {
				c.scfg.Trace.TLSTicketIssued(c.now(), c.scfg.TraceConn, sh.newTicketID)
			}
			c.transport.Write(encodeRecord(recServerHello13, encodeServerHello13(sh)))
			c.completeHandshake(nil)
		})
	case TLS12:
		cpuDelay(c.scfg.Sched, c.scfg.HandshakeCPU, func() {
			c.scfg.Trace.TLSServerFlight(c.now(), c.scfg.TraceConn, int(TLS12), false)
			c.transport.Write(encodeRecord(recServerHello12, make([]byte, sizeServerHello12)))
		})
	default:
		c.failRecord()
	}
}

func (c *Conn) failRecord() {
	c.closed = true
	c.releasePending()
	c.transport.Abort()
	if !c.established {
		if c.onHandshake != nil {
			c.onHandshake(ErrBadRecord)
		}
		return
	}
	if c.closeFn != nil {
		c.closeFn(ErrBadRecord)
	}
}
