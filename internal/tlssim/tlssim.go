// Package tlssim simulates the TLS handshake and record layer over a
// bytestream.Stream: TLS 1.2 (two round trips), TLS 1.3 (one round trip),
// TLS 1.3 session-ticket resumption, and 0-RTT early data. Handshake
// messages are real bytes on the simulated wire, so handshake latency is
// an emergent property of the underlying transport path.
//
// Simplifications (documented in DESIGN.md): no actual cryptography —
// message sizes approximate real flights; TLS 1.2 session resumption is
// omitted (the reproduction uses TLS 1.3 under HTTP/2); early data is
// always accepted when the client holds any ticket for the server.
package tlssim

import (
	"encoding/binary"
	"errors"
	"time"

	"h3cdn/internal/simnet"
)

// Version selects the simulated TLS protocol version.
type Version uint8

const (
	// TLS12 performs the classic two-round-trip handshake.
	TLS12 Version = iota + 1
	// TLS13 performs the one-round-trip handshake with tickets.
	TLS13
)

func (v Version) String() string {
	switch v {
	case TLS12:
		return "TLS 1.2"
	case TLS13:
		return "TLS 1.3"
	default:
		return "TLS ?"
	}
}

// Record types on the wire.
type recordType uint8

const (
	recClientHello recordType = iota + 1
	recServerHello12
	recServerHello13
	recClientKeyExchange
	recServerFinished12
	recAppData
)

// Approximate flight sizes in bytes (payload, before the 5-byte record
// header), matching typical real-world handshakes with a certificate
// chain of ~3 KB.
const (
	sizeClientHello    = 512
	sizeServerHello13  = 2900
	sizeServerHello12  = 3100
	sizeClientKeyExch  = 130
	sizeServerFinished = 64

	recordHeader = 5
	recordTag    = 24 // AEAD tag + padding overhead per app-data record
	maxRecord    = 16 * 1024
)

// Errors reported through handshake and close callbacks.
var (
	ErrHandshakeAborted = errors.New("tlssim: handshake aborted")
	ErrBadRecord        = errors.New("tlssim: malformed record")
)

// Ticket is a client-held session ticket enabling TLS 1.3 resumption.
type Ticket struct {
	ID         uint64
	ServerName string
	IssuedAt   time.Duration
}

// TicketStore caches tickets by server name. It is the client-side
// session cache a browser keeps across page visits. The zero value is
// not usable; use NewTicketStore.
type TicketStore struct {
	byName map[string]Ticket
}

// NewTicketStore returns an empty session cache.
func NewTicketStore() *TicketStore {
	return &TicketStore{byName: make(map[string]Ticket)}
}

// Get returns the ticket for serverName, if any.
func (s *TicketStore) Get(serverName string) (Ticket, bool) {
	t, ok := s.byName[serverName]
	return t, ok
}

// Put stores a ticket, replacing any previous one for the same name.
func (s *TicketStore) Put(t Ticket) { s.byName[t.ServerName] = t }

// Clear drops all tickets.
func (s *TicketStore) Clear() { s.byName = make(map[string]Ticket) }

// Len reports the number of cached tickets.
func (s *TicketStore) Len() int { return len(s.byName) }

// ServerSessionState is the server-side ticket registry, shared by all
// connections of one server (one CDN edge in this reproduction).
type ServerSessionState struct {
	issued map[uint64]bool
	nextID uint64
}

// NewServerSessionState returns an empty registry.
func NewServerSessionState() *ServerSessionState {
	return &ServerSessionState{issued: make(map[uint64]bool), nextID: 1}
}

func (s *ServerSessionState) issue() uint64 {
	id := s.nextID
	s.nextID++
	s.issued[id] = true
	return id
}

func (s *ServerSessionState) valid(id uint64) bool { return id != 0 && s.issued[id] }

// --- wire encoding ---

// clientHello fields carried at the head of the ClientHello payload.
type clientHello struct {
	version    Version
	ticketID   uint64 // 0 = none
	earlyData  bool
	serverName string
	alpn       string
}

func encodeClientHello(ch clientHello) []byte {
	name := []byte(ch.serverName)
	alpn := []byte(ch.alpn)
	n := 1 + 8 + 1 + 2 + len(name) + 1 + len(alpn)
	size := sizeClientHello
	if n > size {
		size = n
	}
	buf := make([]byte, size)
	buf[0] = byte(ch.version)
	binary.BigEndian.PutUint64(buf[1:9], ch.ticketID)
	if ch.earlyData {
		buf[9] = 1
	}
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(name)))
	copy(buf[12:], name)
	off := 12 + len(name)
	buf[off] = byte(len(alpn))
	copy(buf[off+1:], alpn)
	return buf
}

func decodeClientHello(p []byte) (clientHello, error) {
	if len(p) < 12 {
		return clientHello{}, ErrBadRecord
	}
	nameLen := int(binary.BigEndian.Uint16(p[10:12]))
	if len(p) < 12+nameLen+1 {
		return clientHello{}, ErrBadRecord
	}
	alpnOff := 12 + nameLen
	alpnLen := int(p[alpnOff])
	if len(p) < alpnOff+1+alpnLen {
		return clientHello{}, ErrBadRecord
	}
	return clientHello{
		version:    Version(p[0]),
		ticketID:   binary.BigEndian.Uint64(p[1:9]),
		earlyData:  p[9] == 1,
		serverName: string(p[12 : 12+nameLen]),
		alpn:       string(p[alpnOff+1 : alpnOff+1+alpnLen]),
	}, nil
}

// serverHello13 fields: resumption verdict and a fresh ticket.
type serverHello13 struct {
	resumed     bool
	newTicketID uint64
}

func encodeServerHello13(sh serverHello13) []byte {
	buf := make([]byte, sizeServerHello13)
	if sh.resumed {
		buf[0] = 1
	}
	binary.BigEndian.PutUint64(buf[1:9], sh.newTicketID)
	return buf
}

func decodeServerHello13(p []byte) (serverHello13, error) {
	if len(p) < 9 {
		return serverHello13{}, ErrBadRecord
	}
	return serverHello13{resumed: p[0] == 1, newTicketID: binary.BigEndian.Uint64(p[1:9])}, nil
}

func encodeRecord(t recordType, payload []byte) []byte {
	buf := make([]byte, recordHeader+len(payload))
	buf[0] = byte(t)
	buf[1] = byte(len(payload) >> 16)
	buf[2] = byte(len(payload) >> 8)
	buf[3] = byte(len(payload))
	// buf[4] reserved (legacy version byte)
	copy(buf[recordHeader:], payload)
	return buf
}

// cpuDelay schedules fn after d on sched, or runs it synchronously when
// no scheduler or no delay is configured.
func cpuDelay(sched *simnet.Scheduler, d time.Duration, fn func()) {
	if sched == nil || d == 0 {
		fn()
		return
	}
	sched.After(d, fn)
}
