package vantage

import "testing"

func TestPoints(t *testing.T) {
	pts := Points()
	if len(pts) != 3 {
		t.Fatalf("%d vantage points, want 3 (CloudLab sites)", len(pts))
	}
	names := map[string]bool{}
	for _, p := range pts {
		if p.DelayFactor <= 0 {
			t.Fatalf("%s: delay factor %v", p.Name, p.DelayFactor)
		}
		if p.ProbesPerSite != 3 {
			t.Fatalf("%s: %d probes, paper ran 3 per site", p.Name, p.ProbesPerSite)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"utah", "wisconsin", "clemson"} {
		if !names[want] {
			t.Fatalf("missing site %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("utah")
	if !ok || p.Name != "utah" {
		t.Fatalf("ByName(utah) = %+v, %v", p, ok)
	}
	if _, ok := ByName("mars"); ok {
		t.Fatal("unknown site resolved")
	}
}
