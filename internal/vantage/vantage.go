// Package vantage describes the measurement probes: three CloudLab sites
// (University of Utah, University of Wisconsin-Madison, Clemson
// University), each running three probes (§III-B). A vantage point scales
// path delays — sites sit at different network distances from CDN edges
// and origin servers.
package vantage

// Point is one geographic vantage.
type Point struct {
	// Name identifies the site.
	Name string
	// DelayFactor scales all one-way path delays seen from this site.
	DelayFactor float64
	// ProbesPerSite is how many probe machines run here (paper: 3).
	ProbesPerSite int
}

// Points returns the paper's three CloudLab sites.
func Points() []Point {
	return []Point{
		{Name: "utah", DelayFactor: 1.00, ProbesPerSite: 3},
		{Name: "wisconsin", DelayFactor: 1.15, ProbesPerSite: 3},
		{Name: "clemson", DelayFactor: 1.30, ProbesPerSite: 3},
	}
}

// ByName returns the vantage with the given name (ok=false if unknown).
func ByName(name string) (Point, bool) {
	for _, p := range Points() {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}
