// Package analysis provides the statistical tools the paper's evaluation
// uses: empirical CDF/CCDF curves, quantile-based grouping (Fig. 6a's
// Low/Medium-Low/Medium-High/High quartiles), k-means clustering for the
// §VI-D case study, and least-squares line fitting for Fig. 9's slopes.
package analysis

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by routines that need at least one observation.
var ErrNoData = errors.New("analysis: no data")

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the 50th percentile (0 for empty input).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile (linear interpolation), q in [0,1].
// Each call copies and sorts xs; callers querying several quantiles of
// the same sample should build a Sorted view instead.
func Quantile(xs []float64, q float64) float64 {
	return NewSorted(xs).Quantile(q)
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Point is one (x, y) sample of a distribution curve.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// CDF returns the empirical cumulative distribution as sorted points
// (x = value, y = P(X ≤ x)).
func CDF(xs []float64) []Point { return NewSorted(xs).CDF() }

// CCDF returns the complementary CDF (y = P(X > x)).
func CCDF(xs []float64) []Point { return NewSorted(xs).CCDF() }

// InterpolateY evaluates a CDF/CCDF curve at x (step interpolation,
// returning the y of the greatest point with X ≤ x; defaults to the
// first point's y when x precedes the curve).
func InterpolateY(curve []Point, x float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	y := curve[0].Y
	if x < curve[0].X {
		// Before the first sample: CDF is 0, CCDF is 1.
		if curve[0].Y <= 0.5 {
			return 0
		}
		return 1
	}
	for _, p := range curve {
		if p.X > x {
			break
		}
		y = p.Y
	}
	return y
}

// QuartileGroups splits indices into four equal-size groups by ascending
// key: Low, Medium-Low, Medium-High, High (Fig. 6a's construction).
// Ties are broken by original index for determinism.
func QuartileGroups(keys []float64) [4][]int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	var groups [4][]int
	n := len(idx)
	for g := 0; g < 4; g++ {
		lo := g * n / 4
		hi := (g + 1) * n / 4
		groups[g] = append([]int(nil), idx[lo:hi]...)
	}
	return groups
}

// GroupNames labels QuartileGroups' output.
func GroupNames() [4]string {
	return [4]string{"Low", "Medium-Low", "Medium-High", "High"}
}

// LinearFit computes the least-squares line y = a + b·x, returning
// (intercept, slope). It requires at least two distinct x values.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, ErrNoData
	}
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, 0, ErrNoData
	}
	b = num / den
	a = my - b*mx
	return a, b, nil
}

// Pearson returns the correlation coefficient of two equal-length series.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
