package analysis

import "math"

// KMeansResult describes a clustering of n vectors into k groups.
type KMeansResult struct {
	// Assignment[i] is the cluster index of vector i.
	Assignment []int
	// Centroids[c] is cluster c's mean vector.
	Centroids [][]float64
	// Sizes[c] is the number of members in cluster c.
	Sizes []int
	// Iterations actually performed.
	Iterations int
}

// KMeans clusters binary/real vectors with Lloyd's algorithm. It is
// deterministic: initial centroids are the two most distant vectors for
// k=2, or evenly spaced picks otherwise. The paper uses k-means (k=2) on
// 58-dimensional binary domain vectors to split websites into high- and
// low-sharing groups (§VI-D, Table III).
func KMeans(vectors [][]float64, k, maxIter int) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 || k < 1 || k > n {
		return nil, ErrNoData
	}
	dim := len(vectors[0])
	for _, v := range vectors {
		if len(v) != dim {
			return nil, ErrNoData
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centroids := initialCentroids(vectors, k)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(v, centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for d := range v {
				sums[c][d] += v[d]
			}
		}
		for c := range sums {
			if counts[c] == 0 {
				continue // keep previous centroid for empty cluster
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}

	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	return &KMeansResult{Assignment: assign, Centroids: centroids, Sizes: sizes, Iterations: iter}, nil
}

// initialCentroids picks deterministic seeds: for k=2 the pair of most
// distant vectors (O(n²), fine at corpus scale); otherwise evenly spaced
// vectors.
func initialCentroids(vectors [][]float64, k int) [][]float64 {
	n := len(vectors)
	out := make([][]float64, 0, k)
	if k == 2 && n >= 2 {
		bi, bj, bestD := 0, 1, -1.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := sqDist(vectors[i], vectors[j]); d > bestD {
					bi, bj, bestD = i, j, d
				}
			}
		}
		out = append(out, clone(vectors[bi]), clone(vectors[bj]))
		return out
	}
	for c := 0; c < k; c++ {
		out = append(out, clone(vectors[c*(n-1)/max(1, k-1)]))
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
