package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMedian(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if !almostEq(Mean(xs), 2.5) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almostEq(Median(xs), 2.5) {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if !almostEq(Quantile(xs, 0), 10) || !almostEq(Quantile(xs, 1), 50) {
		t.Fatal("extremes wrong")
	}
	if !almostEq(Quantile(xs, 0.25), 20) {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
	if !almostEq(Quantile(xs, 0.5), 30) {
		t.Fatalf("q50 = %v", Quantile(xs, 0.5))
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestStddev(t *testing.T) {
	if !almostEq(Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatalf("Stddev = %v", Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestCDFAndCCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	cdf := CDF(xs)
	want := []Point{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf = %v", cdf)
	}
	for i := range want {
		if !almostEq(cdf[i].X, want[i].X) || !almostEq(cdf[i].Y, want[i].Y) {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	ccdf := CCDF(xs)
	if !almostEq(ccdf[0].Y, 0.75) || !almostEq(ccdf[2].Y, 0) {
		t.Fatalf("ccdf = %v", ccdf)
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		cdf := CDF(raw)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X <= cdf[i-1].X || cdf[i].Y < cdf[i-1].Y {
				return false
			}
		}
		return almostEq(cdf[len(cdf)-1].Y, 1.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolateY(t *testing.T) {
	curve := []Point{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if got := InterpolateY(curve, 2.5); !almostEq(got, 0.75) {
		t.Fatalf("InterpolateY(2.5) = %v", got)
	}
	if got := InterpolateY(curve, 0.5); got != 0 {
		t.Fatalf("before curve = %v", got)
	}
	if got := InterpolateY(curve, 99); !almostEq(got, 1) {
		t.Fatalf("after curve = %v", got)
	}
}

func TestQuartileGroups(t *testing.T) {
	keys := []float64{8, 1, 6, 3, 7, 2, 5, 4}
	groups := QuartileGroups(keys)
	for g, want := range [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}} {
		if len(groups[g]) != 2 {
			t.Fatalf("group %d size %d", g, len(groups[g]))
		}
		got := []float64{keys[groups[g][0]], keys[groups[g][1]]}
		sort.Float64s(got)
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("group %d = %v, want %v", g, got, want)
		}
	}
	if GroupNames()[0] != "Low" || GroupNames()[3] != "High" {
		t.Fatal("group names wrong")
	}
}

func TestQuartileGroupsCoverAll(t *testing.T) {
	f := func(raw []float64) bool {
		groups := QuartileGroups(raw)
		seen := make(map[int]bool)
		total := 0
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		return total == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 1) || !almostEq(b, 2) {
		t.Fatalf("fit = %v + %v x", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1) {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
}

func TestKMeansTwoBlobs(t *testing.T) {
	var vectors [][]float64
	// Blob A near (0,0), blob B near (10,10).
	for i := 0; i < 10; i++ {
		vectors = append(vectors, []float64{float64(i%3) * 0.1, float64(i%2) * 0.1})
	}
	for i := 0; i < 10; i++ {
		vectors = append(vectors, []float64{10 + float64(i%3)*0.1, 10 + float64(i%2)*0.1})
	}
	res, err := KMeans(vectors, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Assignment[0]
	for i := 1; i < 10; i++ {
		if res.Assignment[i] != first {
			t.Fatalf("blob A split: %v", res.Assignment)
		}
	}
	for i := 10; i < 20; i++ {
		if res.Assignment[i] == first {
			t.Fatalf("blobs merged: %v", res.Assignment)
		}
	}
	if res.Sizes[0] != 10 || res.Sizes[1] != 10 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vectors := [][]float64{{0, 1}, {1, 0}, {5, 5}, {6, 5}, {0, 0}, {5, 6}}
	a, err := KMeans(vectors, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(vectors, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("nondeterministic clustering")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 10); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 2, 10); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10); err == nil {
		t.Fatal("ragged vectors accepted")
	}
}
