package analysis

import (
	"math"
	"sort"
)

// Sorted is a sort-once view of a sample: construction copies and sorts
// the data a single time, after which every quantile, median, or curve
// query is O(1) or O(n) with no re-sort. Report code that previously
// called Quantile/Median repeatedly on the same slice (each call copying
// and sorting, O(n log n) per call) should build one Sorted view and
// query it.
type Sorted struct {
	xs []float64
}

// NewSorted copies and sorts xs into a queryable view.
func NewSorted(xs []float64) Sorted {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Sorted{xs: s}
}

// Len returns the sample size.
func (s Sorted) Len() int { return len(s.xs) }

// Min returns the smallest observation (0 for empty input).
func (s Sorted) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[0]
}

// Max returns the largest observation (0 for empty input).
func (s Sorted) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[len(s.xs)-1]
}

// Quantile returns the q-th quantile (linear interpolation, matching the
// package-level Quantile), q in [0,1]. Empty input returns 0.
func (s Sorted) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile (0 for empty input).
func (s Sorted) Median() float64 { return s.Quantile(0.5) }

// CDF returns the empirical cumulative distribution as sorted points
// (x = value, y = P(X ≤ x)), identical to the package-level CDF.
func (s Sorted) CDF() []Point {
	if len(s.xs) == 0 {
		return nil
	}
	out := make([]Point, 0, len(s.xs))
	n := float64(len(s.xs))
	for i, x := range s.xs {
		// Collapse duplicates to the last occurrence.
		if i+1 < len(s.xs) && s.xs[i+1] == x {
			continue
		}
		out = append(out, Point{X: x, Y: float64(i+1) / n})
	}
	return out
}

// CCDF returns the complementary CDF (y = P(X > x)).
func (s Sorted) CCDF() []Point {
	cdf := s.CDF()
	out := make([]Point, len(cdf))
	for i, p := range cdf {
		out[i] = Point{X: p.X, Y: 1 - p.Y}
	}
	return out
}
