package analysis

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSortedMatchesPackageFunctions pins the Sorted view to the
// package-level routines it replaces: identical results, sort once.
func TestSortedMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := [][]float64{
		nil,
		{42},
		{3, 1, 2},
		{5, 5, 5, 5},
		func() []float64 {
			xs := make([]float64, 501)
			for i := range xs {
				xs[i] = rng.NormFloat64() * 100
			}
			return xs
		}(),
	}
	for _, xs := range samples {
		s := NewSorted(xs)
		if s.Len() != len(xs) {
			t.Fatalf("Len %d, want %d", s.Len(), len(xs))
		}
		for _, q := range []float64{-1, 0, 0.25, 0.5, 0.731, 0.95, 1, 2} {
			if got, want := s.Quantile(q), Quantile(xs, q); got != want {
				t.Fatalf("Quantile(%v): Sorted %v vs package %v (n=%d)", q, got, want, len(xs))
			}
		}
		if got, want := s.Median(), Median(xs); got != want {
			t.Fatalf("Median: Sorted %v vs package %v", got, want)
		}
		if !reflect.DeepEqual(s.CDF(), CDF(xs)) {
			t.Fatalf("CDF mismatch (n=%d)", len(xs))
		}
		if !reflect.DeepEqual(s.CCDF(), CCDF(xs)) {
			t.Fatalf("CCDF mismatch (n=%d)", len(xs))
		}
	}
}

func TestSortedDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := NewSorted(xs)
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatal("NewSorted mutated its input")
	}
	xs[0] = 99
	if s.Max() == 99 {
		t.Fatal("Sorted aliases the caller's slice")
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
}
