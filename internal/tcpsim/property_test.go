package tcpsim

import (
	"math/rand"
	"testing"
	"time"

	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
)

// TestReceiverReassemblyAnyOrder drives the receive path directly with
// randomly segmented, duplicated, and reordered segments and asserts the
// application sees the exact in-order byte stream.
func TestReceiverReassemblyAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7)) //nolint:gosec
	for trial := 0; trial < 200; trial++ {
		payload := patterned(1 + rng.Intn(6000))

		var segs []*segment
		for off := 0; off < len(payload); {
			n := 1 + rng.Intn(900)
			if off+n > len(payload) {
				n = len(payload) - off
			}
			seg := &segment{seq: uint64(off), payload: payload[off : off+n]}
			if off+n == len(payload) {
				seg.flags |= flagFIN
			}
			segs = append(segs, seg)
			off += n
		}
		// Retransmission duplicates, including partially overlapping
		// re-segmentations starting at random offsets.
		for i := 0; i < len(segs)/3; i++ {
			segs = append(segs, segs[rng.Intn(len(segs))])
		}
		for i := 0; i < 3 && len(payload) > 2; i++ {
			start := rng.Intn(len(payload) - 1)
			end := start + 1 + rng.Intn(len(payload)-start-1)
			segs = append(segs, &segment{seq: uint64(start), payload: payload[start:end]})
		}
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })

		// A disconnected conn: handleSegment's sends go to a dead
		// network (no listener), which is fine for receive-side logic.
		sched := &simnet.Scheduler{MaxEvents: 1_000_000}
		net := simnet.NewNetwork(sched, nil, seqrand.New(1))
		host := net.AddHost("recv")
		c := newConn(host, Config{}.withDefaults())
		c.isClient = true
		c.localPort = host.BindEphemeral(func(simnet.Packet) {})
		c.state = stateEstablished

		var got []byte
		eof := false
		c.SetDataFunc(func(p []byte) { got = append(got, p...) })
		c.SetCloseFunc(func(err error) {
			if err == nil {
				eof = true
			}
		})
		for _, seg := range segs {
			c.handleSegment(seg)
		}
		if !eof {
			t.Fatalf("trial %d: EOF not delivered", trial)
		}
		if len(got) != len(payload) {
			t.Fatalf("trial %d: got %d bytes, want %d", trial, len(got), len(payload))
		}
		for i := range got {
			if got[i] != payload[i] {
				t.Fatalf("trial %d: byte %d differs", trial, i)
			}
		}
	}
}

// TestRTTEstimatorMonotonicity: the RTO stays within configured clamps
// for arbitrary sample sequences.
func TestRTTEstimatorClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3)) //nolint:gosec
	sched := &simnet.Scheduler{}
	net := simnet.NewNetwork(sched, nil, seqrand.New(1))
	host := net.AddHost("h")
	c := newConn(host, Config{}.withDefaults())
	for i := 0; i < 10_000; i++ {
		c.rttSample(randDuration(rng))
		if c.rto < c.cfg.RTOMin || c.rto > c.cfg.RTOMax {
			t.Fatalf("RTO %v escaped [%v, %v]", c.rto, c.cfg.RTOMin, c.cfg.RTOMax)
		}
		if c.srtt <= 0 {
			t.Fatalf("SRTT %v not positive", c.srtt)
		}
	}
}

func randDuration(rng *rand.Rand) time.Duration {
	// Mix of tiny, normal, and absurd samples, including zero.
	switch rng.Intn(3) {
	case 0:
		return time.Duration(rng.Intn(1000))
	case 1:
		return time.Duration(rng.Intn(200_000_000))
	default:
		return time.Duration(rng.Int63n(120_000_000_000))
	}
}
