package tcpsim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"h3cdn/internal/simnet"
)

// TestBlackoutRTONotPermanentlyInflated is the satellite-1 regression: a
// transient blackout backs the RTO off exponentially, and the first
// valid post-recovery RTT sample must re-seed it from srtt + 4·rttvar —
// the doubled value may linger across the Karn-suppressed retransmission
// ACK, but never past fresh data.
func TestBlackoutRTONotPermanentlyInflated(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	var rec simnet.RecoveryStats
	cfg := Config{Recovery: &rec}
	echoServer(t, w.b, 80, Config{})

	var conn *Conn
	var buf bytes.Buffer
	Dial(w.a, "server", 80, cfg, func(c *Conn) {
		conn = c
		c.SetDataFunc(func(p []byte) { buf.Write(p) })
		c.SetCloseFunc(func(err error) {
			if err != nil {
				t.Errorf("connection failed: %v", err)
			}
		})
		c.Write(make([]byte, 500))
	})

	blackout := func(p simnet.Packet) bool { return false }
	w.sched.At(200*time.Millisecond, func() { w.net.SetFilter(blackout) })
	w.sched.At(210*time.Millisecond, func() { conn.Write(make([]byte, 500)) })
	var inflated time.Duration
	w.sched.At(3900*time.Millisecond, func() { inflated = conn.rto })
	w.sched.At(4*time.Second, func() { w.net.SetFilter(nil) })
	// Fresh data after recovery: its ACK carries the valid sample that
	// re-seeds the RTO.
	w.sched.At(20*time.Second, func() { conn.Write(make([]byte, 500)) })

	run(t, w.sched)

	if buf.Len() != 1500 {
		t.Fatalf("echoed %d bytes, want 1500 (transfer must survive the blackout)", buf.Len())
	}
	if inflated <= time.Second {
		t.Fatalf("rto during blackout = %v, want > 1s (exponential backoff)", inflated)
	}
	if conn.rto != 200*time.Millisecond {
		t.Fatalf("rto after recovery = %v, want re-seed to RTOMin (200ms) from srtt+4·rttvar", conn.rto)
	}
	if rec.Timeouts < 2 {
		t.Fatalf("Recovery.Timeouts = %d, want ≥ 2", rec.Timeouts)
	}
	if rec.OutageCrossings < 1 {
		t.Fatalf("Recovery.OutageCrossings = %d, want ≥ 1", rec.OutageCrossings)
	}
	if rec.ConnFailures != 0 {
		t.Fatalf("Recovery.ConnFailures = %d, want 0", rec.ConnFailures)
	}
}

// TestBlackoutAbortIsRetryableError checks the max-retry abort surfaces
// through the close callback as ErrTimeout — a retryable transport error
// the application layer can act on — and is counted as a ConnFailure.
func TestBlackoutAbortIsRetryableError(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	var rec simnet.RecoveryStats
	cfg := Config{MaxRetries: 3, Recovery: &rec}
	echoServer(t, w.b, 80, Config{})

	var closeErr error
	closed := false
	Dial(w.a, "server", 80, cfg, func(c *Conn) {
		c.SetCloseFunc(func(err error) { closeErr = err; closed = true })
		c.Write(make([]byte, 500))
		// Permanent blackout right after the write is flushed.
		w.sched.After(time.Millisecond, func() {
			w.net.SetFilter(func(simnet.Packet) bool { return false })
		})
	})
	run(t, w.sched)

	if !closed {
		t.Fatal("connection never reported failure under a permanent blackout")
	}
	if !errors.Is(closeErr, ErrTimeout) {
		t.Fatalf("close error = %v, want ErrTimeout", closeErr)
	}
	if rec.ConnFailures != 1 {
		t.Fatalf("Recovery.ConnFailures = %d, want 1", rec.ConnFailures)
	}
}
