// Package tcpsim implements a miniature TCP over internal/simnet: 3-way
// handshake, MSS segmentation, cumulative ACKs, NewReno congestion control
// (slow start, congestion avoidance, fast retransmit/recovery with partial
// ACK handling), RTO per RFC 6298 with Karn's algorithm, and — crucially
// for this reproduction — strict in-order delivery to the application, so
// head-of-line blocking under loss is emergent rather than modeled.
package tcpsim

import (
	"errors"
	"sync"
	"time"

	"h3cdn/internal/bufpool"
	"h3cdn/internal/simnet"
	"h3cdn/internal/trace"
)

// Wire overhead charged per segment (IPv4 20 + TCP 20), in bytes.
const headerSize = 40

// Config tunes a TCP endpoint. The zero value selects the defaults noted
// on each field via (*Config).withDefaults.
type Config struct {
	// MSS is the maximum segment payload size. Default 1460.
	MSS int
	// InitCwndSegs is the initial congestion window in segments
	// (RFC 6928). Default 10.
	InitCwndSegs int
	// RTOInit is the retransmission timeout before an RTT sample
	// exists. Default 1s.
	RTOInit time.Duration
	// RTOMin / RTOMax clamp the computed RTO. Defaults 200ms / 60s.
	RTOMin time.Duration
	RTOMax time.Duration
	// MaxRetries bounds consecutive retransmissions of the same
	// segment before the connection errors out. Default 8.
	MaxRetries int
	// MaxCwndSegs caps the congestion window, standing in for the
	// receive window. Default 512.
	MaxCwndSegs int
	// Pools, when non-nil, supplies the per-universe segment arena shared
	// by every endpoint of one scheduler goroutine. Nil endpoints fall
	// back to the process-global pool.
	Pools *Pools
	// Arena, when non-nil, supplies the per-universe buffer arena used
	// for receive-side reassembly copies. Nil falls back to the global
	// bufpool.
	Arena *bufpool.Arena
	// Recovery, when non-nil, accumulates loss-recovery counters for
	// this endpoint (timeouts, retransmissions, blackout crossings).
	// Increments happen in scheduler context; the pointer is typically
	// shared by every client connection of one simulated probe.
	Recovery *simnet.RecoveryStats
	// Trace, when non-nil, receives connection-level events (SYN,
	// establishment, cwnd changes, RTO episodes, HOL stalls). Nil-safe:
	// every emit is a no-op on a nil tracer.
	Trace *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitCwndSegs == 0 {
		c.InitCwndSegs = 10
	}
	if c.RTOInit == 0 {
		c.RTOInit = time.Second
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * time.Millisecond
	}
	if c.RTOMax == 0 {
		c.RTOMax = 60 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.MaxCwndSegs == 0 {
		c.MaxCwndSegs = 512
	}
	return c
}

// Errors reported through the close callback.
var (
	ErrTimeout = errors.New("tcpsim: connection timed out")
	ErrAborted = errors.New("tcpsim: connection aborted")
	ErrRefused = errors.New("tcpsim: connection refused")
)

type segFlags uint8

const (
	flagSYN segFlags = 1 << iota
	flagACK
	flagFIN
	flagRST
)

// segment is the on-wire TCP message. Seq/Ack are 64-bit logical stream
// offsets (no wraparound modeling). A FIN consumes one offset.
//
// Segments are pooled: each is sent exactly once (retransmissions build
// fresh segments), receivers copy the payload during delivery, and the
// network recycles the segment via Release after the handler returns.
type segment struct {
	flags   segFlags
	seq     uint64
	ack     uint64
	payload []byte
	// pools, when non-nil, routes Release back to the originating
	// universe's arena instead of the process-global sync.Pool. Release
	// runs on the universe's scheduler goroutine, so the thread-confined
	// arena is safe.
	pools *Pools
}

var segPool = sync.Pool{New: func() any { return new(segment) }}

func newSegment(pl *Pools) *segment {
	if pl != nil {
		if n := len(pl.segs); n > 0 {
			s := pl.segs[n-1]
			pl.segs[n-1] = nil
			pl.segs = pl.segs[:n-1]
			return s
		}
		return &segment{pools: pl}
	}
	return segPool.Get().(*segment)
}

// Release implements simnet.Releasable. The payload slice aliases the
// sender's buffer and is only dereferenced, never recycled, here.
func (s *segment) Release() {
	if pl := s.pools; pl != nil {
		*s = segment{pools: pl}
		pl.segs = append(pl.segs, s)
		return
	}
	*s = segment{}
	segPool.Put(s)
}

func (s *segment) wireSize() int { return headerSize + len(s.payload) }

func (s *segment) end() uint64 {
	e := s.seq + uint64(len(s.payload))
	if s.flags&flagFIN != 0 {
		e++
	}
	return e
}

// ConnStats counts per-connection activity.
type ConnStats struct {
	SegsSent        int64
	SegsReceived    int64
	BytesSent       int64
	BytesDelivered  int64
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	DupAcksSeen     int64
}
