package tcpsim

import (
	"fmt"

	"h3cdn/internal/simnet"
)

type connKey struct {
	addr simnet.Addr
	port uint16
}

// Listener accepts TCP connections on a well-known port and demultiplexes
// segments to the per-peer server connections.
type Listener struct {
	host   *simnet.Host
	port   uint16
	cfg    Config
	accept func(*Conn)
	conns  map[connKey]*Conn
	closed bool
}

// Listen binds port on host. accept fires when a connection completes the
// handshake, before any of its data is delivered.
func Listen(host *simnet.Host, port uint16, cfg Config, accept func(*Conn)) (*Listener, error) {
	l := &Listener{
		host:   host,
		port:   port,
		cfg:    cfg.withDefaults(),
		accept: accept,
		conns:  make(map[connKey]*Conn),
	}
	if err := host.Bind(port, l.handlePacket); err != nil {
		return nil, fmt.Errorf("tcpsim: listen: %w", err)
	}
	return l, nil
}

// Close unbinds the port and aborts all live connections.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.host.Unbind(l.port)
	for _, c := range l.conns {
		c.listener = nil // avoid map mutation during range
		c.Abort()
	}
	l.conns = make(map[connKey]*Conn)
}

// ConnCount reports the number of tracked connections.
func (l *Listener) ConnCount() int { return len(l.conns) }

func (l *Listener) handlePacket(pkt simnet.Packet) {
	seg, ok := pkt.Payload.(*segment)
	if !ok {
		return
	}
	key := connKey{pkt.Src, pkt.SrcPort}
	c, ok := l.conns[key]
	if !ok {
		if seg.flags&flagSYN == 0 || seg.flags&flagACK != 0 {
			// Stray non-SYN for an unknown connection: reset the
			// peer so it releases state promptly.
			if seg.flags&flagRST == 0 {
				rst := newSegment(l.cfg.Pools)
				rst.flags = flagRST
				l.host.Send(l.port, pkt.Src, pkt.SrcPort, rst.wireSize(), rst)
			}
			return
		}
		c = newConn(l.host, l.cfg)
		c.remote = pkt.Src
		c.remotePort = pkt.SrcPort
		c.localPort = l.port
		c.listener = l
		c.state = stateSynRcvd
		c.onEstablished = func() {
			if l.accept != nil {
				l.accept(c)
			}
		}
		l.conns[key] = c
		c.synSentAt = c.sched.Now()
		c.sendFlags(flagSYN | flagACK)
		c.armRTO()
		return
	}
	c.handleSegment(seg)
}

func (l *Listener) remove(addr simnet.Addr, port uint16) {
	delete(l.conns, connKey{addr, port})
}
