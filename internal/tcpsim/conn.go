package tcpsim

import (
	"time"

	"h3cdn/internal/bytestream"
	"h3cdn/internal/simnet"
	"h3cdn/internal/trace"
)

type connState uint8

const (
	stateSynSent connState = iota + 1
	stateSynRcvd
	stateEstablished
	stateClosed
)

type recvChunk struct {
	data []byte
	fin  bool
}

// Conn is one endpoint of a simulated TCP connection. It implements
// bytestream.Stream. All methods must be called from scheduler context.
type Conn struct {
	host  *simnet.Host
	sched *simnet.Scheduler
	cfg   Config

	remote     simnet.Addr
	localPort  uint16
	remotePort uint16
	state      connState
	isClient   bool
	listener   *Listener // server side only; for conn-table cleanup

	// Sender state. sendBuf[sendOff:] holds bytes [sndUna, sndUna+pending).
	// Acked bytes advance sendOff instead of re-slicing the buffer, so a
	// long-lived connection keeps appending into one backing array; the
	// buffer resets to its start only once fully drained. In-flight
	// segment payloads alias sendBuf, so acked prefix bytes are never
	// compacted away while data is outstanding.
	sndUna  uint64
	sndNxt  uint64
	sendBuf []byte
	sendOff int
	sentFin bool
	finSeq  uint64
	closing bool // Close() called: FIN queued after pending data

	// Congestion control (NewReno), in bytes.
	cwnd       float64
	ssthresh   float64
	inRecovery bool
	recover    uint64
	dupAcks    int

	// RTO (RFC 6298) with Karn's algorithm.
	rto         time.Duration
	srtt        time.Duration
	rttvar      time.Duration
	hasRTT      bool
	rtoTimer    *simnet.Timer
	retries     int
	timedSeq    uint64
	timedSentAt time.Duration
	timedValid  bool
	synSentAt   time.Duration
	synRetrans  bool

	// Receiver state: strict in-order delivery.
	rcvNxt    uint64
	recvBuf   map[uint64]recvChunk
	peerEOF   bool
	finRcvd   bool // FIN delivered to app
	finAcked  bool // our FIN acknowledged
	closeSent bool // close callback delivered

	// Tracing. traceID is 0 when untraced; HOL-stall bookkeeping only
	// runs when a tracer is installed (purely observational — it can
	// never perturb scheduling).
	traceID   uint32
	holActive bool
	holStart  time.Duration

	onEstablished func()
	dataFn        func([]byte)
	closeFn       func(error)

	// pktFn/onRTOFn are bound once when the struct is first allocated and
	// survive pooling: they read receiver fields at call time, so a
	// recycled conn reuses them instead of closing over itself again.
	pktFn   func(simnet.Packet)
	onRTOFn func()

	drainFn        func()
	drainThreshold int
	notifying      bool

	stats ConnStats
}

var _ bytestream.Stream = (*Conn)(nil)

// Dial opens a client connection from host to dst:dstPort. onEstablished
// fires when the 3-way handshake completes; writes issued earlier are
// queued and flushed at that point.
func Dial(host *simnet.Host, dst simnet.Addr, dstPort uint16, cfg Config, onEstablished func(*Conn)) *Conn {
	cfg = cfg.withDefaults()
	c := newConn(host, cfg)
	c.isClient = true
	c.remote = dst
	c.remotePort = dstPort
	c.localPort = host.BindEphemeral(c.pktFn)
	c.state = stateSynSent
	if onEstablished != nil {
		c.onEstablished = func() { onEstablished(c) }
	}
	c.synSentAt = c.sched.Now()
	cfg.Trace.TCPSynSent(c.synSentAt, c.traceID)
	c.sendFlags(flagSYN)
	c.armRTO()
	return c
}

func newConn(host *simnet.Host, cfg Config) *Conn {
	c := cfg.Pools.getConn()
	if c == nil {
		c = &Conn{recvBuf: make(map[uint64]recvChunk)}
		cc := c
		c.pktFn = func(pkt simnet.Packet) {
			if seg, ok := pkt.Payload.(*segment); ok {
				cc.handleSegment(seg)
			}
		}
		c.onRTOFn = cc.onRTO
	}
	c.host = host
	c.sched = host.Scheduler()
	c.cfg = cfg
	c.cwnd = float64(cfg.InitCwndSegs * cfg.MSS)
	c.rto = cfg.RTOInit
	c.ssthresh = float64(cfg.MaxCwndSegs * cfg.MSS)
	c.rtoTimer = c.sched.NewTimer(c.onRTOFn)
	c.traceID = cfg.Trace.ConnID()
	return c
}

// reset clears a retired conn for reuse, keeping only the allocations
// that survive pooling: the receive map (emptied at teardown) and the
// bound-once packet/RTO closures. Called from Pools.Rewind only — never
// before the scheduler drains.
func (c *Conn) reset() {
	recvBuf, pktFn, onRTOFn := c.recvBuf, c.pktFn, c.onRTOFn
	*c = Conn{recvBuf: recvBuf, pktFn: pktFn, onRTOFn: onRTOFn}
}

// TraceID returns the connection's trace id (0 when untraced).
func (c *Conn) TraceID() uint32 { return c.traceID }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() simnet.Addr { return c.remote }

// LocalPort returns the local port number.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Stats returns a snapshot of connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// SmoothedRTT returns the current SRTT estimate (zero before any sample).
func (c *Conn) SmoothedRTT() time.Duration { return c.srtt }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// SetDataFunc registers the in-order delivery callback.
func (c *Conn) SetDataFunc(fn func([]byte)) { c.dataFn = fn }

// UnsentBytes reports bytes accepted by Write but not yet transmitted.
func (c *Conn) UnsentBytes() int {
	sent := c.sndNxt - c.sndUna
	if bl := uint64(c.pending()); sent > bl {
		sent = bl
	}
	return c.pending() - int(sent)
}

// pending reports un-acked bytes still held in sendBuf.
func (c *Conn) pending() int { return len(c.sendBuf) - c.sendOff }

// SetDrainFunc registers fn, invoked whenever the unsent backlog falls to
// or below threshold after transmission progress (bytestream.Throttled).
func (c *Conn) SetDrainFunc(threshold int, fn func()) {
	c.drainThreshold = threshold
	c.drainFn = fn
}

func (c *Conn) maybeNotifyDrain() {
	if c.drainFn == nil || c.notifying || c.state != stateEstablished {
		return
	}
	if c.UnsentBytes() > c.drainThreshold {
		return
	}
	c.notifying = true
	c.drainFn()
	c.notifying = false
}

// SetCloseFunc registers the end-of-stream callback.
func (c *Conn) SetCloseFunc(fn func(error)) { c.closeFn = fn }

// Write queues p for transmission.
func (c *Conn) Write(p []byte) {
	if c.state == stateClosed || c.closing {
		return
	}
	if need := len(c.sendBuf) + len(p); need > cap(c.sendBuf) {
		c.sendBuf = c.cfg.Pools.growSendBuf(c.sendBuf, need)
	}
	c.sendBuf = append(c.sendBuf, p...)
	if c.state == stateEstablished {
		c.trySend()
	}
}

// Close flushes pending data, then sends FIN.
func (c *Conn) Close() {
	if c.state == stateClosed || c.closing {
		return
	}
	c.closing = true
	if c.state == stateEstablished {
		c.trySend()
	}
}

// Abort tears the connection down, sending a single RST so the peer
// releases its state too. No callbacks fire locally after Abort.
func (c *Conn) Abort() {
	if c.state == stateClosed {
		return
	}
	c.sendFlags(flagRST)
	c.teardown()
}

// resetProbeLimit bounds the RST re-sends after a timeout abort.
const resetProbeLimit = 12

func (c *Conn) sendReset() {
	seg := newSegment(c.cfg.Pools)
	seg.flags = flagRST | flagACK
	seg.seq = c.sndNxt
	seg.ack = c.rcvNxt
	c.stats.SegsSent++
	c.host.Send(c.localPort, c.remote, c.remotePort, seg.wireSize(), seg)
}

// startResetProbes re-sends RST with exponential spacing after an
// established connection aborts on max retries. The peer may be
// mid-receive with nothing of its own in flight, so a single RST lost to
// the same loss burst or outage that killed the connection would strand
// it — and the page load above it — forever. Real stacks escape via
// application read timeouts; the simulator deliberately arms no timers
// on healthy paths, so the abort itself carries the persistence.
func (c *Conn) startResetProbes() {
	gap := c.cfg.RTOInit
	n := 0
	var fire func()
	fire = func() {
		c.sendReset()
		n++
		if n >= resetProbeLimit {
			return
		}
		c.sched.After(gap, fire)
		gap *= 2
		if gap > c.cfg.RTOMax {
			gap = c.cfg.RTOMax
		}
	}
	fire()
}

func (c *Conn) teardown() {
	c.state = stateClosed
	c.rtoTimer.Release()
	c.rtoTimer = nil
	if c.isClient {
		// Server connections share the listener's port.
		c.host.Unbind(c.localPort)
	}
	if c.listener != nil {
		c.listener.remove(c.remote, c.remotePort)
	}
	c.cfg.Pools.retireSendBuf(c.sendBuf)
	c.sendBuf = nil
	c.sendOff = 0
	for _, chunk := range c.recvBuf {
		c.cfg.Arena.Put(chunk.data)
	}
	clear(c.recvBuf)
	c.cfg.Pools.retireConn(c)
}

func (c *Conn) fail(err error) {
	if c.state == stateClosed {
		return
	}
	c.teardown()
	c.deliverClose(err)
}

func (c *Conn) deliverClose(err error) {
	if c.closeSent {
		return
	}
	c.closeSent = true
	if c.closeFn != nil {
		c.closeFn(err)
	}
}

// --- segment I/O ---

func (c *Conn) sendSeg(seg *segment) {
	seg.flags |= flagACK
	seg.ack = c.rcvNxt
	c.stats.SegsSent++
	c.stats.BytesSent += int64(len(seg.payload))
	c.host.Send(c.localPort, c.remote, c.remotePort, seg.wireSize(), seg)
}

func (c *Conn) sendFlags(f segFlags) {
	seg := newSegment(c.cfg.Pools)
	seg.flags = f
	if f&flagSYN != 0 && f&flagACK == 0 {
		// Initial SYN carries no ACK.
		c.stats.SegsSent++
		c.host.Send(c.localPort, c.remote, c.remotePort, seg.wireSize(), seg)
		return
	}
	c.sendSeg(seg)
}

func (c *Conn) handleSegment(seg *segment) {
	if c.state == stateClosed {
		return
	}
	c.stats.SegsReceived++

	if seg.flags&flagRST != 0 {
		c.fail(ErrAborted)
		return
	}

	switch c.state {
	case stateSynSent:
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK {
			c.state = stateEstablished
			c.cfg.Trace.TCPEstablished(c.sched.Now(), c.traceID, true)
			if !c.synRetrans {
				c.rttSample(c.sched.Now() - c.synSentAt)
			}
			c.noteRecovered()
			c.rtoTimer.Stop()
			c.sendFlags(flagACK)
			if c.onEstablished != nil {
				c.onEstablished()
			}
			c.trySend()
		}
		return
	case stateSynRcvd:
		if seg.flags&flagACK != 0 && seg.flags&flagSYN == 0 {
			c.state = stateEstablished
			c.cfg.Trace.TCPEstablished(c.sched.Now(), c.traceID, false)
			c.noteRecovered()
			c.rtoTimer.Stop()
			if !c.synRetrans {
				c.rttSample(c.sched.Now() - c.synSentAt)
			}
			if c.onEstablished != nil {
				c.onEstablished()
			}
			// Fall through: this segment may carry data.
		} else {
			if seg.flags&flagSYN != 0 && !c.isClient {
				// Retransmitted SYN: repeat SYN-ACK.
				c.synRetrans = true
				c.sendFlags(flagSYN | flagACK)
			}
			return
		}
	case stateEstablished:
		if seg.flags&flagSYN != 0 {
			return // stray handshake duplicate
		}
	}

	c.processAck(seg)
	if len(seg.payload) > 0 || seg.flags&flagFIN != 0 {
		c.processData(seg)
	}
	c.trySend()
	c.maybeNotifyDrain()
	c.maybeFinish()
}

// --- sender ---

func (c *Conn) flight() uint64 { return c.sndNxt - c.sndUna }

func (c *Conn) streamEnd() uint64 { return c.sndUna + uint64(c.pending()) }

func (c *Conn) trySend() {
	if c.state != stateEstablished {
		return
	}
	mss := uint64(c.cfg.MSS)
	maxCwnd := float64(c.cfg.MaxCwndSegs * c.cfg.MSS)
	if c.cwnd > maxCwnd {
		c.cwnd = maxCwnd
	}
	for {
		if float64(c.flight()) >= c.cwnd {
			return
		}
		off := c.sndNxt - c.sndUna
		if off < uint64(c.pending()) {
			end := off + mss
			if end > uint64(c.pending()) {
				end = uint64(c.pending())
			}
			seg := newSegment(c.cfg.Pools)
			seg.seq = c.sndNxt
			seg.payload = c.sendBuf[c.sendOff+int(off) : c.sendOff+int(end)]
			c.markTimed(seg)
			c.sndNxt = c.sndUna + end
			c.sendSeg(seg)
			c.armRTOIfIdle()
			continue
		}
		// All buffered data sent; maybe FIN.
		if c.closing && !c.sentFin {
			c.sentFin = true
			c.finSeq = c.streamEnd()
			seg := newSegment(c.cfg.Pools)
			seg.flags = flagFIN
			seg.seq = c.finSeq
			c.sndNxt = c.finSeq + 1
			c.sendSeg(seg)
			c.armRTOIfIdle()
		}
		return
	}
}

func (c *Conn) markTimed(seg *segment) {
	if !c.timedValid {
		c.timedValid = true
		c.timedSeq = seg.end()
		c.timedSentAt = c.sched.Now()
	}
}

func (c *Conn) armRTO() { c.rtoTimer.Reset(c.rto) }

func (c *Conn) armRTOIfIdle() {
	if !c.rtoTimer.Armed() {
		c.armRTO()
	}
}

func (c *Conn) processAck(seg *segment) {
	if seg.flags&flagACK == 0 {
		return
	}
	mss := float64(c.cfg.MSS)
	switch {
	case seg.ack > c.sndUna:
		acked := seg.ack - c.sndUna
		// Trim acked bytes (the FIN offset is not in sendBuf). The
		// prefix is released by advancing sendOff; the backing array
		// rewinds only when fully drained, because in-flight segments
		// alias it and duplicate segments covering acked bytes are
		// dropped by the receiver without reading their payload.
		trim := acked
		if bl := uint64(c.pending()); trim > bl {
			trim = bl
		}
		c.sendOff += int(trim)
		if c.sendOff == len(c.sendBuf) {
			c.sendBuf = c.sendBuf[:0]
			c.sendOff = 0
		}
		c.sndUna = seg.ack
		if c.sndNxt < c.sndUna {
			c.sndNxt = c.sndUna
		}
		if c.sentFin && seg.ack >= c.finSeq+1 {
			c.finAcked = true
		}
		if c.timedValid && seg.ack >= c.timedSeq {
			c.rttSample(c.sched.Now() - c.timedSentAt)
			c.timedValid = false
		}
		c.noteRecovered()
		if c.flight() == 0 {
			c.rtoTimer.Stop()
		} else {
			c.armRTO()
		}
		if c.inRecovery {
			if seg.ack > c.recover {
				// Full acknowledgment: leave fast recovery.
				c.inRecovery = false
				c.cwnd = c.ssthresh
				c.dupAcks = 0
				c.cfg.Trace.TCPCwndChange(c.sched.Now(), c.traceID, int(c.cwnd), int(c.ssthresh), trace.CwndRecoveryExit)
			} else {
				// Partial ACK (NewReno): retransmit next hole,
				// deflate by amount acked, inflate by one MSS.
				c.retransmitFirst()
				c.cwnd -= float64(acked)
				if c.cwnd < mss {
					c.cwnd = mss
				}
				c.cwnd += mss
			}
		} else {
			c.dupAcks = 0
			if c.cwnd < c.ssthresh {
				c.cwnd += mss // slow start
			} else {
				c.cwnd += mss * mss / c.cwnd // congestion avoidance
			}
		}
	case seg.ack == c.sndUna && c.flight() > 0 && len(seg.payload) == 0 && seg.flags&(flagSYN|flagFIN) == 0:
		c.stats.DupAcksSeen++
		c.dupAcks++
		switch {
		case c.inRecovery:
			c.cwnd += mss // window inflation
		case c.dupAcks == 3:
			c.stats.FastRetransmits++
			if c.cfg.Recovery != nil {
				c.cfg.Recovery.FastRetransmits++
			}
			c.cfg.Trace.TCPFastRetransmit(c.sched.Now(), c.traceID, int64(c.sndUna))
			c.enterRecovery()
		}
	}
}

func (c *Conn) enterRecovery() {
	mss := float64(c.cfg.MSS)
	half := float64(c.flight()) / 2
	if half < 2*mss {
		half = 2 * mss
	}
	c.ssthresh = half
	c.recover = c.sndNxt
	c.inRecovery = true
	c.retransmitFirst()
	c.cwnd = c.ssthresh + 3*mss
	c.cfg.Trace.TCPCwndChange(c.sched.Now(), c.traceID, int(c.cwnd), int(c.ssthresh), trace.CwndFastRecovery)
}

// noteRecovered records forward progress (a valid ACK or handshake
// completion) after consecutive RTO fires. Two or more fires before the
// peer answered mark the episode as an outage crossing: the connection
// survived a blackout instead of isolated loss. The backed-off RTO is
// intentionally kept (Karn) — the next valid RTT sample fully re-seeds
// it from srtt + 4·rttvar in rttSample.
func (c *Conn) noteRecovered() {
	if c.retries >= 2 && c.cfg.Recovery != nil {
		c.cfg.Recovery.OutageCrossings++
	}
	c.retries = 0
}

func (c *Conn) retransmitFirst() {
	c.stats.Retransmits++
	if c.cfg.Recovery != nil {
		c.cfg.Recovery.Retransmits++
	}
	c.timedValid = false // Karn: no sampling across retransmission
	if c.sentFin && c.sndUna == c.finSeq {
		seg := newSegment(c.cfg.Pools)
		seg.flags = flagFIN
		seg.seq = c.finSeq
		c.sendSeg(seg)
		c.armRTO()
		return
	}
	avail := c.sndNxt - c.sndUna
	if bl := uint64(c.pending()); avail > bl {
		avail = bl
	}
	if avail == 0 {
		return
	}
	if m := uint64(c.cfg.MSS); avail > m {
		avail = m
	}
	seg := newSegment(c.cfg.Pools)
	seg.seq = c.sndUna
	seg.payload = c.sendBuf[c.sendOff : c.sendOff+int(avail)]
	c.sendSeg(seg)
	c.armRTO()
}

func (c *Conn) onRTO() {
	if c.state == stateClosed {
		return
	}
	c.retries++
	if c.retries > c.cfg.MaxRetries {
		// Max-retry abort: a retryable transport error (the application
		// may redial), not a silent drop.
		err := ErrTimeout
		if c.state == stateSynSent {
			err = ErrRefused
		}
		// Probe only mid-conversation aborts: a conn aborting after Close
		// (lost final FIN/ACK against a peer that already tore down) has
		// nothing the peer still waits for, and baseline traces contain
		// such zombies — probing them would perturb healthy-path event
		// ordering.
		notify := c.state == stateEstablished && !c.closing
		if c.cfg.Recovery != nil {
			c.cfg.Recovery.ConnFailures++
		}
		c.cfg.Trace.TCPConnFail(c.sched.Now(), c.traceID, err.Error())
		c.fail(err)
		if notify {
			c.startResetProbes()
		}
		return
	}
	c.stats.Timeouts++
	if c.cfg.Recovery != nil {
		c.cfg.Recovery.Timeouts++
	}
	c.cfg.Trace.TCPRTOFire(c.sched.Now(), c.traceID, c.retries, c.rto)
	c.rto *= 2
	if c.rto > c.cfg.RTOMax {
		c.rto = c.cfg.RTOMax
	}

	switch c.state {
	case stateSynSent:
		c.synRetrans = true
		c.sendFlags(flagSYN)
		c.armRTO()
	case stateSynRcvd:
		c.synRetrans = true
		c.sendFlags(flagSYN | flagACK)
		c.armRTO()
	default:
		mss := float64(c.cfg.MSS)
		half := float64(c.flight()) / 2
		if half < 2*mss {
			half = 2 * mss
		}
		c.ssthresh = half
		c.cwnd = mss
		c.inRecovery = false
		c.dupAcks = 0
		c.cfg.Trace.TCPCwndChange(c.sched.Now(), c.traceID, int(c.cwnd), int(c.ssthresh), trace.CwndRTOCollapse)
		c.retransmitFirst()
	}
}

func (c *Conn) rttSample(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if !c.hasRTT {
		c.hasRTT = true
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.cfg.RTOMin {
		rto = c.cfg.RTOMin
	}
	if rto > c.cfg.RTOMax {
		rto = c.cfg.RTOMax
	}
	c.rto = rto
}

// --- receiver ---

func (c *Conn) processData(seg *segment) {
	if seg.end() <= c.rcvNxt {
		// Fully duplicate; re-ACK so the sender advances.
		c.sendFlags(flagACK)
		return
	}
	payload := seg.payload
	start := seg.seq
	if start < c.rcvNxt {
		payload = payload[c.rcvNxt-start:]
		start = c.rcvNxt
	}
	if prev, ok := c.recvBuf[start]; !ok || len(payload) > len(prev.data) || seg.flags&flagFIN != 0 {
		buf := c.cfg.Arena.Get(len(payload))
		copy(buf, payload)
		c.recvBuf[start] = recvChunk{data: buf, fin: seg.flags&flagFIN != 0}
		if ok {
			c.cfg.Arena.Put(prev.data)
		}
	}
	c.advanceReceive()
	// HOL-stall bookkeeping: data buffered beyond a sequence gap means
	// the application is head-of-line blocked. Tracer-gated — the state
	// is only read here, so an untraced connection skips it entirely.
	if c.cfg.Trace != nil {
		switch {
		case !c.holActive && len(c.recvBuf) > 0:
			c.holActive = true
			c.holStart = c.sched.Now()
			buffered := 0
			for _, chunk := range c.recvBuf {
				buffered += len(chunk.data)
			}
			c.cfg.Trace.TCPHolStart(c.holStart, c.traceID, buffered)
		case c.holActive && len(c.recvBuf) == 0:
			c.holActive = false
			now := c.sched.Now()
			c.cfg.Trace.TCPHolEnd(now, c.traceID, now-c.holStart)
		}
	}
	c.sendFlags(flagACK)
}

func (c *Conn) advanceReceive() {
	for {
		// Pick the LOWEST eligible chunk, not any map-order one: with
		// reordering in the path, retransmission trimming can leave
		// several overlapping chunks at or below rcvNxt, and the choice
		// decides delivery granularity — map iteration would make the
		// byte stream's event trace nondeterministic.
		var best uint64
		found := false
		for start := range c.recvBuf {
			if start > c.rcvNxt {
				continue
			}
			if !found || start < best {
				best = start
				found = true
			}
		}
		if !found {
			return
		}
		start := best
		chunk := c.recvBuf[start]
		end := start + uint64(len(chunk.data))
		if end > c.rcvNxt || (chunk.fin && !c.peerEOF && end == c.rcvNxt) {
			data := chunk.data[c.rcvNxt-start:]
			delete(c.recvBuf, start)
			if len(data) > 0 {
				c.rcvNxt = end
				c.stats.BytesDelivered += int64(len(data))
				if c.dataFn != nil {
					c.dataFn(data)
				}
			}
			c.cfg.Arena.Put(chunk.data)
			if chunk.fin {
				c.rcvNxt++ // consume the FIN offset
				c.peerEOF = true
			}
			continue
		}
		delete(c.recvBuf, start) // stale duplicate
		c.cfg.Arena.Put(chunk.data)
	}
}

// maybeFinish completes teardown once both directions are done.
func (c *Conn) maybeFinish() {
	if c.state != stateEstablished {
		return
	}
	if c.peerEOF && !c.finRcvd {
		c.finRcvd = true
		// Passive close: reply with our own FIN once the app closes;
		// deliver EOF now.
		c.deliverClose(nil)
	}
	if c.finAcked && c.peerEOF {
		c.teardown()
	}
}
