package tcpsim

// Send-buffer size classes: powers of two from 4KB to 8MB. Buffers are
// always sized through growSendBuf, so every pooled buffer has an exact
// class capacity. The 8MB ceiling caps retention: a conn whose busy
// period exceeds it falls back to plain allocation and its buffer is
// dropped for the collector at teardown.
const (
	minSendBufBits = 12 // 4KB
	maxSendBufBits = 23 // 8MB
	sendBufClasses = maxSendBufBits - minSendBufBits + 1
)

// Pools is a per-universe free list for TCP allocations. All endpoints
// of one simulation universe share one Pools on one scheduler goroutine,
// so reuse needs no locking and — unlike the process-global sync.Pool
// fallback — survives garbage-collection cycles: a warm shard replays
// each visit out of the same segment, buffer, and conn footprint.
//
// A nil *Pools is valid and falls back to the global pool (segments) or
// plain allocation (buffers, conns).
//
// Segments recycle at delivery (the network calls Release after the
// handler returns). Send buffers and conn structs instead quarantine
// until the owning universe's visit-boundary Rewind: in-flight segments
// alias a connection's sendBuf — including arrays it outgrew mid-visit —
// and late-firing closures (reset probes, stray duplicate deliveries)
// may still read a torn-down conn's fields until the scheduler drains.
type Pools struct {
	segs []*segment

	sendBufs    [sendBufClasses][][]byte
	retiredBufs [][]byte

	conns        []*Conn
	retiredConns []*Conn
}

// sendBufClass maps a capacity to its class index, or -1 when the
// capacity is not an exact class size (or out of range).
func sendBufClass(c int) int {
	if c < 1<<minSendBufBits || c > 1<<maxSendBufBits || c&(c-1) != 0 {
		return -1
	}
	idx := 0
	for s := 1 << minSendBufBits; s < c; s <<= 1 {
		idx++
	}
	return idx
}

// growSendBuf returns a buffer with the contents of buf and capacity at
// least need, amortizing growth by at least doubling. The outgrown array
// is quarantined, not freed: in-flight segments alias windows of it and
// keep reading until the scheduler drains. With a nil Pools it degrades
// to plain doubling allocation, matching append's behavior.
func (pl *Pools) growSendBuf(buf []byte, need int) []byte {
	newCap := 1 << minSendBufBits
	if c := cap(buf); c*2 > newCap {
		newCap = c * 2
	}
	for newCap < need {
		newCap *= 2
	}
	var nb []byte
	if cls := sendBufClass(newCap); pl != nil && cls >= 0 {
		if lst := pl.sendBufs[cls]; len(lst) > 0 {
			nb = lst[len(lst)-1][:0]
			lst[len(lst)-1] = nil
			pl.sendBufs[cls] = lst[:len(lst)-1]
		}
	}
	if nb == nil {
		nb = make([]byte, 0, newCap)
	}
	nb = nb[:len(buf)]
	copy(nb, buf)
	pl.retireSendBuf(buf)
	return nb
}

// retireSendBuf quarantines a send buffer until Rewind. In-flight
// segments alias the backing array, so it must not be handed out again
// before the scheduler drains.
func (pl *Pools) retireSendBuf(buf []byte) {
	if pl == nil || cap(buf) == 0 {
		return
	}
	pl.retiredBufs = append(pl.retiredBufs, buf[:0])
}

// getConn pops a recycled conn (fields zeroed at Rewind), or nil.
func (pl *Pools) getConn() *Conn {
	if pl == nil {
		return nil
	}
	if n := len(pl.conns); n > 0 {
		c := pl.conns[n-1]
		pl.conns[n-1] = nil
		pl.conns = pl.conns[:n-1]
		return c
	}
	return nil
}

// retireConn quarantines a torn-down conn until Rewind. The struct is
// NOT zeroed here: error delivery and late probe closures still read its
// fields after teardown, so reset happens at promotion time instead.
func (pl *Pools) retireConn(c *Conn) {
	if pl == nil {
		return
	}
	pl.retiredConns = append(pl.retiredConns, c)
}

// Rewind promotes quarantined buffers and conns to the free lists. Must
// only run at a visit boundary: the scheduler has drained, so no wire
// copy, timer, or scheduled closure still references retired state.
// Buffers without an exact class capacity (over-ceiling growth) are
// dropped for the collector.
func (pl *Pools) Rewind() {
	if pl == nil {
		return
	}
	for i, buf := range pl.retiredBufs {
		if cls := sendBufClass(cap(buf)); cls >= 0 {
			pl.sendBufs[cls] = append(pl.sendBufs[cls], buf)
		}
		pl.retiredBufs[i] = nil
	}
	pl.retiredBufs = pl.retiredBufs[:0]
	for _, c := range pl.retiredConns {
		c.reset()
		pl.conns = append(pl.conns, c)
	}
	for i := range pl.retiredConns {
		pl.retiredConns[i] = nil
	}
	pl.retiredConns = pl.retiredConns[:0]
}
