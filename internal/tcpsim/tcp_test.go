package tcpsim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
)

type world struct {
	sched *simnet.Scheduler
	net   *simnet.Network
	a, b  *simnet.Host
}

func newWorld(t *testing.T, delay time.Duration, bps, loss float64) *world {
	t.Helper()
	sched := &simnet.Scheduler{MaxEvents: 5_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: delay, BandwidthBps: bps, LossRate: loss}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(uint64(delay)+uint64(bps)+uint64(loss*1000)+17))
	return &world{sched: sched, net: n, a: n.AddHost("client"), b: n.AddHost("server")}
}

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T, host *simnet.Host, port uint16, cfg Config) *Listener {
	t.Helper()
	l, err := Listen(host, port, cfg, func(c *Conn) {
		c.SetDataFunc(func(p []byte) { c.Write(p) })
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func run(t *testing.T, s *simnet.Scheduler) {
	t.Helper()
	if _, err := s.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

func TestHandshakeLatency(t *testing.T) {
	w := newWorld(t, 25*time.Millisecond, 0, 0)
	if _, err := Listen(w.b, 80, Config{}, nil); err != nil {
		t.Fatal(err)
	}
	var established time.Duration
	Dial(w.a, "server", 80, Config{}, func(c *Conn) { established = w.sched.Now() })
	run(t, w.sched)
	if established != 50*time.Millisecond {
		t.Fatalf("client established at %v, want exactly one RTT (50ms)", established)
	}
}

func TestHandshakeRTTSample(t *testing.T) {
	w := newWorld(t, 30*time.Millisecond, 0, 0)
	if _, err := Listen(w.b, 80, Config{}, nil); err != nil {
		t.Fatal(err)
	}
	var srtt time.Duration
	Dial(w.a, "server", 80, Config{}, func(c *Conn) { srtt = c.SmoothedRTT() })
	run(t, w.sched)
	if srtt != 60*time.Millisecond {
		t.Fatalf("handshake SRTT = %v, want 60ms", srtt)
	}
}

func transfer(t *testing.T, w *world, payload []byte, cfg Config) (received []byte, done time.Duration) {
	t.Helper()
	echoServer(t, w.b, 80, cfg)
	var buf bytes.Buffer
	Dial(w.a, "server", 80, cfg, func(c *Conn) {
		c.SetDataFunc(func(p []byte) {
			buf.Write(p)
			if buf.Len() == len(payload) {
				done = w.sched.Now()
			}
		})
		c.Write(payload)
	})
	run(t, w.sched)
	return buf.Bytes(), done
}

func patterned(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}

func TestEchoSmall(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	payload := []byte("hello over simulated tcp")
	got, _ := transfer(t, w, payload, Config{})
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestEchoLargeCleanPath(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 100e6, 0)
	payload := patterned(512 * 1024)
	got, done := transfer(t, w, payload, Config{})
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", len(got), len(payload))
	}
	if done == 0 || done > 2*time.Second {
		t.Fatalf("512KB echo finished at %v", done)
	}
}

func TestEchoLossyPath(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.10} {
		w := newWorld(t, 10*time.Millisecond, 50e6, loss)
		payload := patterned(128 * 1024)
		got, _ := transfer(t, w, payload, Config{})
		if !bytes.Equal(got, payload) {
			t.Fatalf("loss=%v: corrupted or incomplete echo (%d/%d bytes)", loss, len(got), len(payload))
		}
	}
}

func TestLossSlowsTransfer(t *testing.T) {
	elapsed := func(loss float64) time.Duration {
		w := newWorld(t, 10*time.Millisecond, 50e6, loss)
		payload := patterned(256 * 1024)
		got, done := transfer(t, w, payload, Config{})
		if len(got) != len(payload) {
			t.Fatalf("loss=%v: incomplete", loss)
		}
		return done
	}
	clean, lossy := elapsed(0), elapsed(0.05)
	if lossy <= clean {
		t.Fatalf("5%% loss (%v) not slower than clean path (%v)", lossy, clean)
	}
}

func TestRetransmitCountedUnderLoss(t *testing.T) {
	w := newWorld(t, 5*time.Millisecond, 50e6, 0.05)
	if _, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func([]byte) {})
	}); err != nil {
		t.Fatal(err)
	}
	var client *Conn
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		client = c
		c.Write(patterned(256 * 1024))
	})
	run(t, w.sched)
	st := client.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions under 5% loss")
	}
}

func TestNoRetransmitOnCleanPath(t *testing.T) {
	w := newWorld(t, 5*time.Millisecond, 100e6, 0)
	payload := patterned(64 * 1024)
	echoServer(t, w.b, 80, Config{})
	var client *Conn
	n := 0
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		client = c
		c.SetDataFunc(func(p []byte) { n += len(p) })
		c.Write(payload)
	})
	run(t, w.sched)
	if n != len(payload) {
		t.Fatalf("delivered %d, want %d", n, len(payload))
	}
	if st := client.Stats(); st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("clean path produced retransmits: %+v", st)
	}
}

func TestInOrderDelivery(t *testing.T) {
	// Under heavy loss, delivery must still be strictly in order: every
	// delivered chunk continues the pattern exactly.
	w := newWorld(t, 10*time.Millisecond, 20e6, 0.1)
	payload := patterned(100 * 1024)
	echoServer(t, w.b, 80, Config{})
	off := 0
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func(p []byte) {
			for _, b := range p {
				if b != byte(off*7) {
					t.Fatalf("out-of-order byte at offset %d", off)
				}
				off++
			}
		})
		c.Write(payload)
	})
	run(t, w.sched)
	if off != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", off, len(payload))
	}
}

func TestGracefulClose(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	var serverEOF, clientEOF bool
	l, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func([]byte) {})
		c.SetCloseFunc(func(err error) {
			if err != nil {
				t.Fatalf("server close err: %v", err)
			}
			serverEOF = true
			c.Close() // passive close: respond with our FIN
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		c.SetCloseFunc(func(err error) {
			if err != nil {
				t.Fatalf("client close err: %v", err)
			}
			clientEOF = true
		})
		c.Write([]byte("bye"))
		c.Close()
	})
	run(t, w.sched)
	if !serverEOF || !clientEOF {
		t.Fatalf("serverEOF=%v clientEOF=%v, want both", serverEOF, clientEOF)
	}
	if l.ConnCount() != 0 {
		t.Fatalf("listener still tracks %d conns after close", l.ConnCount())
	}
}

func TestCloseFlushesPendingData(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 10e6, 0)
	payload := patterned(200 * 1024) // many cwnd rounds
	var got bytes.Buffer
	eof := false
	if _, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func(p []byte) { got.Write(p) })
		c.SetCloseFunc(func(err error) { eof = true })
	}); err != nil {
		t.Fatal(err)
	}
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		c.Write(payload)
		c.Close() // immediately: FIN must trail all data
	})
	run(t, w.sched)
	if !eof {
		t.Fatal("no EOF delivered")
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("close lost data: %d/%d bytes", got.Len(), len(payload))
	}
}

func TestAbortResetsPeer(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	var serverErr error
	l, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetCloseFunc(func(err error) { serverErr = err })
	})
	if err != nil {
		t.Fatal(err)
	}
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		c.Write([]byte("x"))
		w.sched.After(100*time.Millisecond, c.Abort)
	})
	run(t, w.sched)
	if !errors.Is(serverErr, ErrAborted) {
		t.Fatalf("server close err = %v, want ErrAborted", serverErr)
	}
	if l.ConnCount() != 0 {
		t.Fatalf("listener still tracks %d conns after RST", l.ConnCount())
	}
	if w.sched.Pending() != 0 {
		t.Fatalf("%d stray events after abort (timer leak)", w.sched.Pending())
	}
}

func TestDialNoListenerTimesOut(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	// No RST from raw hosts in this sim: the SYN retries, then fails.
	var dialErr error
	established := false
	c := Dial(w.a, "server", 80, Config{RTOInit: 50 * time.Millisecond, MaxRetries: 3}, func(*Conn) {
		established = true
	})
	c.SetCloseFunc(func(err error) { dialErr = err })
	run(t, w.sched)
	if established {
		t.Fatal("established with no listener")
	}
	if !errors.Is(dialErr, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", dialErr)
	}
}

func TestStraysegmentGetsRST(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 0, 0)
	l := echoServer(t, w.b, 80, Config{})
	var failed error
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		c.SetCloseFunc(func(err error) { failed = err })
		// Simulate server state loss: the listener forgets the conn,
		// then the client sends more data and must get RST back.
		w.sched.After(50*time.Millisecond, func() {
			l.remove("client", c.LocalPort())
			c.Write([]byte("more"))
		})
	})
	run(t, w.sched)
	if !errors.Is(failed, ErrAborted) {
		t.Fatalf("client err = %v, want ErrAborted from RST", failed)
	}
}

func TestSlowStartThenCongestionAvoidance(t *testing.T) {
	w := newWorld(t, 20*time.Millisecond, 0, 0)
	if _, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func([]byte) {})
	}); err != nil {
		t.Fatal(err)
	}
	var c *Conn
	initial := 0.0
	Dial(w.a, "server", 80, Config{}, func(conn *Conn) {
		c = conn
		initial = c.Cwnd()
		c.Write(patterned(400 * 1024))
	})
	run(t, w.sched)
	if initial != 10*1460 {
		t.Fatalf("initial cwnd = %v, want 10 segments", initial)
	}
	if c.Cwnd() <= initial {
		t.Fatalf("cwnd did not grow: %v", c.Cwnd())
	}
}

func TestFastRetransmitPreferredOverTimeout(t *testing.T) {
	// With moderate loss and plenty of data, most recoveries should be
	// fast retransmits (dupACK-triggered), not RTO timeouts.
	w := newWorld(t, 10*time.Millisecond, 50e6, 0.02)
	if _, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func([]byte) {})
	}); err != nil {
		t.Fatal(err)
	}
	var c *Conn
	Dial(w.a, "server", 80, Config{}, func(conn *Conn) {
		c = conn
		c.Write(patterned(1024 * 1024))
	})
	run(t, w.sched)
	st := c.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("no fast retransmits: %+v", st)
	}
	if st.Timeouts > st.FastRetransmits {
		t.Fatalf("timeouts (%d) dominate fast retransmits (%d)", st.Timeouts, st.FastRetransmits)
	}
}

func TestSynLossRecovered(t *testing.T) {
	// 60% loss: handshake packets will often drop, but retries must
	// eventually establish (within the retry budget, seed-dependent).
	w := newWorld(t, 5*time.Millisecond, 0, 0.6)
	if _, err := Listen(w.b, 80, Config{RTOInit: 100 * time.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	established := false
	Dial(w.a, "server", 80, Config{RTOInit: 100 * time.Millisecond, MaxRetries: 20}, func(*Conn) {
		established = true
	})
	run(t, w.sched)
	if !established {
		t.Fatal("handshake never completed under loss with generous retries")
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 20e6, 0.01)
	up := patterned(64 * 1024)
	down := patterned(96 * 1024)
	var gotUp, gotDown bytes.Buffer
	if _, err := Listen(w.b, 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func(p []byte) { gotUp.Write(p) })
		c.Write(down)
	}); err != nil {
		t.Fatal(err)
	}
	Dial(w.a, "server", 80, Config{}, func(c *Conn) {
		c.SetDataFunc(func(p []byte) { gotDown.Write(p) })
		c.Write(up)
	})
	run(t, w.sched)
	if !bytes.Equal(gotUp.Bytes(), up) {
		t.Fatalf("upstream mismatch: %d/%d", gotUp.Len(), len(up))
	}
	if !bytes.Equal(gotDown.Bytes(), down) {
		t.Fatalf("downstream mismatch: %d/%d", gotDown.Len(), len(down))
	}
}

func TestManyParallelConnections(t *testing.T) {
	w := newWorld(t, 10*time.Millisecond, 100e6, 0.01)
	echoServer(t, w.b, 80, Config{})
	const conns = 20
	counts := make([]int, conns)
	for i := 0; i < conns; i++ {
		i := i
		payload := patterned(8 * 1024)
		Dial(w.a, "server", 80, Config{}, func(c *Conn) {
			c.SetDataFunc(func(p []byte) { counts[i] += len(p) })
			c.Write(payload)
		})
	}
	run(t, w.sched)
	for i, n := range counts {
		if n != 8*1024 {
			t.Fatalf("conn %d delivered %d bytes, want %d", i, n, 8*1024)
		}
	}
}

func TestSegmentWireSize(t *testing.T) {
	seg := &segment{payload: make([]byte, 100)}
	if seg.wireSize() != 140 {
		t.Fatalf("wireSize = %d, want 140", seg.wireSize())
	}
	fin := &segment{flags: flagFIN, seq: 10}
	if fin.end() != 11 {
		t.Fatalf("FIN end = %d, want 11 (consumes one offset)", fin.end())
	}
}

func TestDeterministicTransfer(t *testing.T) {
	runOnce := func() time.Duration {
		w := newWorld(t, 10*time.Millisecond, 20e6, 0.03)
		_, done := transfer(t, w, patterned(64*1024), Config{})
		return done
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("same seed produced different completion times: %v vs %v", a, b)
	}
}
