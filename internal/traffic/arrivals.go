package traffic

import (
	"math"
	"strconv"
	"time"

	"h3cdn/internal/seqrand"
)

// Arrival is one session start: a campaign-absolute time and the
// shard-local index of the user who begins browsing.
type Arrival struct {
	At   time.Duration
	User int
}

// Rate evaluates the diurnally modulated arrival rate (sessions/sec)
// at campaign-absolute time t, for a shard whose base rate is base.
func (c Config) Rate(base float64, t time.Duration) float64 {
	if c.DiurnalAmplitude == 0 {
		return base
	}
	phase := 2 * math.Pi * float64(t) / float64(c.DiurnalPeriod)
	return base * (1 + c.DiurnalAmplitude*math.Sin(phase))
}

// Arrivals generates epoch e's session arrivals for one shard: a
// non-homogeneous Poisson process over [start, end) at the shard's base
// rate with diurnal modulation, realized by Lewis–Shedler thinning
// (candidates at the peak rate λmax = base·(1+A), kept with probability
// λ(t)/λmax). Every draw comes from the stream ("arrivals", e) under
// src, so the epoch's workload is a pure function of (seed, epoch) —
// the property checkpoint resume rides on. Users are drawn uniformly
// from the shard's population; heavy-browsing skew comes from session
// length, not user choice.
func Arrivals(src *seqrand.Source, e int, base float64, users int, c Config, start, end time.Duration) []Arrival {
	rng := src.Stream("arrivals", strconv.Itoa(e))
	lambdaMax := base * (1 + c.DiurnalAmplitude) // per second
	var out []Arrival
	t := start
	for {
		// Exponential gap at the peak rate, in virtual nanoseconds.
		gap := time.Duration(rng.ExpFloat64() / lambdaMax * float64(time.Second))
		t += gap
		if t >= end {
			return out
		}
		keep := rng.Float64()*lambdaMax <= c.Rate(base, t)
		user := rng.Intn(users) // drawn even when thinned: fixed draw shape
		if keep {
			out = append(out, Arrival{At: t, User: user})
		}
	}
}
