// Package traffic models an open-loop population workload for the
// campaign engine: a seeded population of users generates page visits
// from a Poisson arrival process with diurnal rate modulation, each
// arrival starting a multi-visit browsing session with think times and
// Zipf-popular page choices, all sessions contending on shared
// TTL-bearing edge caches. The package holds the pure model — arrival
// generation, session plans, configuration, counters, and checkpoint
// serialization; the epoch loop that wires sessions into simulated
// universes lives in internal/core.
//
// Everything is deterministic by construction: arrivals and session
// draws come from label-derived seqrand streams keyed by (epoch,
// arrival index), so the workload is a pure function of the shard seed
// — independent of worker count, scheduler interleaving, and
// checkpoint/resume boundaries. Users are lazily materialized: an idle
// user is just an index; only users who have learned something (an
// Alt-Svc entry) occupy memory.
package traffic

import (
	"fmt"
	"math"
	"time"
)

// DefaultUsersPerShard is the user-partition granularity when
// Config.UsersPerShard is zero: populations at or below this size run
// as a single shard per (mode, vantage).
const DefaultUsersPerShard = 4096

// Config tunes one population-traffic campaign. The zero value is not
// runnable: Users, ArrivalRate, and Duration are required.
type Config struct {
	// Users is the population size (across all shards of one mode ×
	// vantage). Required.
	Users int
	// UsersPerShard partitions the population into shards (0 selects
	// DefaultUsersPerShard). Each shard simulates its own slice of the
	// population against its own edges — an independent PoP — which is
	// what keeps datasets byte-identical across worker counts.
	UsersPerShard int
	// ArrivalRate is the mean session-arrival rate of the whole
	// population, in sessions per second of virtual time. Each shard
	// generates its population-proportional slice. Required.
	ArrivalRate float64
	// DiurnalAmplitude modulates the arrival rate sinusoidally:
	// rate(t) = ArrivalRate · (1 + A·sin(2πt/DiurnalPeriod)), A in
	// [0, 1). Zero disables modulation.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period (default 1h).
	DiurnalPeriod time.Duration
	// Duration is the campaign's virtual-time horizon: arrivals are
	// generated in [0, Duration). Required.
	Duration time.Duration
	// EpochInterval is the checkpoint granularity: the campaign runs in
	// epochs of this length, each in a fresh universe, with caches and
	// user memory carried across (0 selects Duration — one epoch).
	EpochInterval time.Duration
	// SessionVisits is the mean session length in visits (geometric,
	// minimum 1). Default 3.
	SessionVisits float64
	// ThinkTime is the mean think time between a session's visits
	// (exponential). Default 5s.
	ThinkTime time.Duration
	// ZipfS is the page-popularity Zipf exponent (> 1). Default 1.2.
	ZipfS float64
	// CacheTTL is the edge-cache entry lifetime. Default 60s.
	CacheTTL time.Duration
	// MaxInFlight bounds concurrently loading visits per shard; a visit
	// arriving at the bound is shed (and its session abandoned), making
	// open-loop overload visible instead of queueing silently.
	// Default 64.
	MaxInFlight int
	// CheckpointDir, when non-empty, enables periodic checkpointing:
	// each shard writes its state there after every epoch and resumes
	// from it on the next run. The directory must exist.
	CheckpointDir string
	// HaltAfterEpochs, when positive, stops each shard after running
	// that many epochs this process (checkpoints written as usual) — a
	// kill switch for exercising resume in tests.
	HaltAfterEpochs int
}

// WithDefaults returns the config with zero optional fields filled.
func (c Config) WithDefaults() Config {
	if c.UsersPerShard <= 0 {
		c.UsersPerShard = DefaultUsersPerShard
	}
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = time.Hour
	}
	if c.EpochInterval <= 0 || c.EpochInterval > c.Duration {
		c.EpochInterval = c.Duration
	}
	if c.SessionVisits == 0 {
		c.SessionVisits = 3
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 5 * time.Second
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 60 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	return c
}

// Validate reports the first configuration error, checking the raw
// values before defaulting (so explicit nonsense is rejected rather
// than silently defaulted).
func (c Config) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("traffic: users must be positive (got %d)", c.Users)
	}
	if c.ArrivalRate <= 0 || math.IsNaN(c.ArrivalRate) || math.IsInf(c.ArrivalRate, 0) {
		return fmt.Errorf("traffic: arrival rate must be a positive finite number (got %v)", c.ArrivalRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("traffic: duration must be positive (got %v)", c.Duration)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 || math.IsNaN(c.DiurnalAmplitude) {
		return fmt.Errorf("traffic: diurnal amplitude must be in [0, 1) (got %v)", c.DiurnalAmplitude)
	}
	if c.DiurnalPeriod < 0 {
		return fmt.Errorf("traffic: diurnal period must be positive (got %v)", c.DiurnalPeriod)
	}
	if c.EpochInterval < 0 {
		return fmt.Errorf("traffic: epoch interval must be positive (got %v)", c.EpochInterval)
	}
	if c.SessionVisits < 0 || math.IsNaN(c.SessionVisits) || (c.SessionVisits > 0 && c.SessionVisits < 1) {
		return fmt.Errorf("traffic: mean session visits must be ≥ 1 (got %v)", c.SessionVisits)
	}
	if c.ThinkTime < 0 {
		return fmt.Errorf("traffic: think time must be non-negative (got %v)", c.ThinkTime)
	}
	if c.ZipfS != 0 && (c.ZipfS <= 1 || math.IsNaN(c.ZipfS) || math.IsInf(c.ZipfS, 0)) {
		return fmt.Errorf("traffic: zipf exponent must be > 1 (got %v)", c.ZipfS)
	}
	if c.CacheTTL < 0 {
		return fmt.Errorf("traffic: cache TTL must be positive (got %v)", c.CacheTTL)
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("traffic: max in-flight visits must be positive (got %d)", c.MaxInFlight)
	}
	if c.UsersPerShard < 0 {
		return fmt.Errorf("traffic: users per shard must be positive (got %d)", c.UsersPerShard)
	}
	return nil
}

// Epochs returns the number of checkpoint epochs the horizon divides
// into (config must be defaulted).
func (c Config) Epochs() int {
	return int((c.Duration + c.EpochInterval - 1) / c.EpochInterval)
}

// Counters are the arrival-process execution counters of one shard (or,
// merged, one campaign). VisitsGenerated = VisitsCompleted + VisitsShed
// always holds: a visit is generated the moment the session model
// attempts it, and every attempt either completes or is shed at the
// in-flight bound.
type Counters struct {
	SessionsStarted int64 `json:"sessionsStarted"`
	VisitsGenerated int64 `json:"visitsGenerated"`
	VisitsCompleted int64 `json:"visitsCompleted"`
	VisitsShed      int64 `json:"visitsShed,omitempty"`

	// Edge-cache contention totals, summed over every edge and epoch.
	CacheHits    int64 `json:"cacheHits,omitempty"`
	CacheMisses  int64 `json:"cacheMisses,omitempty"`
	CacheExpired int64 `json:"cacheExpired,omitempty"`
	Stampedes    int64 `json:"stampedes,omitempty"`

	// Connection totals across sessions: ResumedConns/ConnsOpened is
	// the population's session-resumption (0-RTT eligibility) fraction.
	ConnsOpened  int64 `json:"connsOpened,omitempty"`
	ResumedConns int64 `json:"resumedConns,omitempty"`
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.SessionsStarted += o.SessionsStarted
	c.VisitsGenerated += o.VisitsGenerated
	c.VisitsCompleted += o.VisitsCompleted
	c.VisitsShed += o.VisitsShed
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
	c.CacheExpired += o.CacheExpired
	c.Stampedes += o.Stampedes
	c.ConnsOpened += o.ConnsOpened
	c.ResumedConns += o.ResumedConns
}

// EpochStat is one epoch's edge-contention readout — the "hit rate over
// time" series as caches warm from cold.
type EpochStat struct {
	Epoch        int   `json:"epoch"`
	Visits       int64 `json:"visits"`
	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	CacheExpired int64 `json:"cacheExpired,omitempty"`
	Stampedes    int64 `json:"stampedes,omitempty"`
}

// HitRate returns the epoch's edge hit rate (0 when idle).
func (e EpochStat) HitRate() float64 {
	total := e.CacheHits + e.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(e.CacheHits) / float64(total)
}

// Report aggregates a traffic campaign's emergent outputs across
// shards: merged counters plus the per-epoch contention series (epoch
// rows summed elementwise across shards).
type Report struct {
	Counters Counters    `json:"counters"`
	Epochs   []EpochStat `json:"epochs"`
}

// Merge folds o into r (associative and commutative).
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	r.Counters.Add(o.Counters)
	for _, es := range o.Epochs {
		for len(r.Epochs) <= es.Epoch {
			r.Epochs = append(r.Epochs, EpochStat{Epoch: len(r.Epochs)})
		}
		dst := &r.Epochs[es.Epoch]
		dst.Visits += es.Visits
		dst.CacheHits += es.CacheHits
		dst.CacheMisses += es.CacheMisses
		dst.CacheExpired += es.CacheExpired
		dst.Stampedes += es.Stampedes
	}
}

// ResumptionFraction returns ResumedConns/ConnsOpened (0 when no
// connections were opened).
func (r *Report) ResumptionFraction() float64 {
	if r.Counters.ConnsOpened == 0 {
		return 0
	}
	return float64(r.Counters.ResumedConns) / float64(r.Counters.ConnsOpened)
}
