package traffic

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"h3cdn/internal/cdn"
	"h3cdn/internal/har"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/sketch"
)

func validConfig() Config {
	return Config{Users: 100, ArrivalRate: 2, Duration: 10 * time.Second}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"negative users", func(c *Config) { c.Users = -5 }},
		{"zero rate", func(c *Config) { c.ArrivalRate = 0 }},
		{"negative rate", func(c *Config) { c.ArrivalRate = -1 }},
		{"NaN rate", func(c *Config) { c.ArrivalRate = math.NaN() }},
		{"Inf rate", func(c *Config) { c.ArrivalRate = math.Inf(1) }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"amplitude ≥ 1", func(c *Config) { c.DiurnalAmplitude = 1 }},
		{"negative amplitude", func(c *Config) { c.DiurnalAmplitude = -0.1 }},
		{"NaN amplitude", func(c *Config) { c.DiurnalAmplitude = math.NaN() }},
		{"negative period", func(c *Config) { c.DiurnalPeriod = -time.Hour }},
		{"negative epoch", func(c *Config) { c.EpochInterval = -time.Second }},
		{"sub-1 session visits", func(c *Config) { c.SessionVisits = 0.5 }},
		{"negative think", func(c *Config) { c.ThinkTime = -time.Second }},
		{"zipf ≤ 1", func(c *Config) { c.ZipfS = 1.0 }},
		{"NaN zipf", func(c *Config) { c.ZipfS = math.NaN() }},
		{"negative TTL", func(c *Config) { c.CacheTTL = -time.Second }},
		{"negative in-flight", func(c *Config) { c.MaxInFlight = -1 }},
		{"negative users/shard", func(c *Config) { c.UsersPerShard = -1 }},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestConfigDefaultsAndEpochs(t *testing.T) {
	c := validConfig().WithDefaults()
	if c.EpochInterval != c.Duration || c.Epochs() != 1 {
		t.Fatalf("default epoching: interval=%v epochs=%d", c.EpochInterval, c.Epochs())
	}
	c.EpochInterval = 3 * time.Second
	if got := c.Epochs(); got != 4 { // ceil(10/3)
		t.Fatalf("epochs = %d, want 4", got)
	}
	if c.ZipfS != 1.2 || c.CacheTTL != 60*time.Second || c.MaxInFlight != 64 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestArrivalsDeterministicAndBounded(t *testing.T) {
	c := validConfig().WithDefaults()
	src := seqrand.New(42)
	a1 := Arrivals(src, 0, 5, 100, c, 0, 10*time.Second)
	a2 := Arrivals(seqrand.New(42), 0, 5, 100, c, 0, 10*time.Second)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed+epoch produced different arrivals")
	}
	if len(a1) == 0 {
		t.Fatal("no arrivals over 10s at 5/s")
	}
	// Mean count ≈ rate·horizon = 50; allow a generous Poisson band.
	if len(a1) < 20 || len(a1) > 100 {
		t.Fatalf("arrival count %d implausible for mean 50", len(a1))
	}
	var prev time.Duration
	for _, a := range a1 {
		if a.At < prev || a.At >= 10*time.Second {
			t.Fatalf("arrival %v out of order or range", a.At)
		}
		if a.User < 0 || a.User >= 100 {
			t.Fatalf("user %d out of range", a.User)
		}
		prev = a.At
	}
	// A different epoch draws a different realization.
	b := Arrivals(src, 1, 5, 100, c, 0, 10*time.Second)
	if reflect.DeepEqual(a1, b) {
		t.Fatal("epochs 0 and 1 produced identical arrivals")
	}
}

func TestArrivalsDiurnalModulation(t *testing.T) {
	c := validConfig()
	c.DiurnalAmplitude = 0.9
	c.DiurnalPeriod = 20 * time.Second
	c = c.WithDefaults()
	src := seqrand.New(7)
	// First half of the period sits above base rate, second half below.
	var up, down int
	for e := 0; e < 20; e++ {
		for _, a := range Arrivals(src, e, 10, 50, c, 0, 20*time.Second) {
			if a.At < 10*time.Second {
				up++
			} else {
				down++
			}
		}
	}
	if up <= down {
		t.Fatalf("diurnal peak half has %d arrivals vs trough half %d", up, down)
	}
	// The trough half still sees traffic (A < 1 keeps the rate positive).
	if down == 0 {
		t.Fatal("trough half starved entirely")
	}
}

func TestSessionModel(t *testing.T) {
	c := validConfig()
	c.SessionVisits = 4
	c.ThinkTime = 2 * time.Second
	c = c.WithDefaults()
	src := seqrand.New(11)
	var visits, sessions int
	var think time.Duration
	var thinks int
	pageSeen := make(map[int]int)
	for i := 0; i < 2000; i++ {
		s := NewSession(src.Stream("s", seqrand.Label("i", i)), 500, c)
		sessions++
		visits += s.VisitsLeft
		if s.VisitsLeft < 1 || s.VisitsLeft > maxSessionVisits {
			t.Fatalf("session length %d out of bounds", s.VisitsLeft)
		}
		pageSeen[s.NextPage()]++
		th := s.Think()
		if th < 0 {
			t.Fatalf("negative think %v", th)
		}
		think += th
		thinks++
	}
	if mean := float64(visits) / float64(sessions); mean < 3.2 || mean > 4.8 {
		t.Fatalf("mean session length %v, want ≈ 4", mean)
	}
	if mean := think / time.Duration(thinks); mean < time.Second || mean > 3*time.Second {
		t.Fatalf("mean think %v, want ≈ 2s", mean)
	}
	// Zipf head: page 0 must dominate any deep-tail page.
	if pageSeen[0] < 100 {
		t.Fatalf("head page drawn %d times of 2000, want Zipf head", pageSeen[0])
	}
	var tail int
	for p, n := range pageSeen {
		if p >= 250 {
			tail += n
		}
	}
	if tail >= pageSeen[0] {
		t.Fatalf("deep tail (%d) outdraws head page (%d)", tail, pageSeen[0])
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard0.ckpt.json")

	if cp, err := Load(path); err != nil || cp != nil {
		t.Fatalf("missing checkpoint: cp=%v err=%v, want nil/nil", cp, err)
	}

	acc := sketch.NewAccumulator(sketch.DefaultAlpha)
	acc.Group(sketch.Key{Mode: "h3", Vantage: "utah"}).Fold(sketch.VisitSample{
		PLTNs: 7e8, Entries: 12, CacheHits: 9, CacheMisses: 3, Warm: true,
	})
	cp := &Checkpoint{
		Seed:  99,
		Epoch: 3,
		Clock: 90 * time.Second,
		Users: []UserMemory{{User: 4, AltSvc: []string{"a.cdn", "b.cdn"}}},
		Edges: []EdgeCache{{Provider: "Cloudflare", Entries: []cdn.CacheEntry{
			{Host: "a.cdn", Path: "/x", ExpiresAt: 95 * time.Second},
		}}},
		Report: Report{
			Counters: Counters{SessionsStarted: 5, VisitsGenerated: 12, VisitsCompleted: 11, VisitsShed: 1},
			Epochs:   []EpochStat{{Epoch: 0, Visits: 11, CacheHits: 20, CacheMisses: 8}},
		},
		Metrics: acc,
		Logs:    []har.PageLog{{Site: "s.sim", Protocol: "h3", PLT: 700 * time.Millisecond}},
	}
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 3 || back.Clock != 90*time.Second || back.Seed != 99 {
		t.Fatalf("clock state lost: %+v", back)
	}
	if !reflect.DeepEqual(back.Users, cp.Users) || !reflect.DeepEqual(back.Edges, cp.Edges) {
		t.Fatal("user/edge state lost")
	}
	if !reflect.DeepEqual(back.Report, cp.Report) {
		t.Fatalf("report lost: %+v", back.Report)
	}
	if len(back.Logs) != 1 || back.Logs[0].Site != "s.sim" {
		t.Fatalf("logs lost: %+v", back.Logs)
	}
	g := back.Metrics.Lookup(sketch.Key{Mode: "h3", Vantage: "utah"})
	if g == nil || g.Pages != 1 || g.WarmPages != 1 || g.CacheHits.Value() != 9 {
		t.Fatalf("metrics lost: %+v", g)
	}

	// Version mismatch refuses to resume.
	cp.Version = 0
	blob, _ := os.ReadFile(path)
	bad := []byte(string(blob[:len(blob)-1]) + "}") // keep valid JSON below
	_ = bad
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestReportMerge(t *testing.T) {
	a := &Report{
		Counters: Counters{VisitsGenerated: 10, VisitsCompleted: 9, VisitsShed: 1, ConnsOpened: 4, ResumedConns: 1},
		Epochs:   []EpochStat{{Epoch: 0, Visits: 5, CacheHits: 3, CacheMisses: 2}},
	}
	b := &Report{
		Counters: Counters{VisitsGenerated: 6, VisitsCompleted: 6, ConnsOpened: 4, ResumedConns: 3},
		Epochs: []EpochStat{
			{Epoch: 0, Visits: 2, CacheHits: 1, CacheMisses: 1},
			{Epoch: 1, Visits: 4, CacheHits: 4},
		},
	}
	a.Merge(b)
	if a.Counters.VisitsGenerated != 16 || a.Counters.VisitsCompleted != 15 || a.Counters.VisitsShed != 1 {
		t.Fatalf("counters merged wrong: %+v", a.Counters)
	}
	if len(a.Epochs) != 2 || a.Epochs[0].Visits != 7 || a.Epochs[1].CacheHits != 4 {
		t.Fatalf("epochs merged wrong: %+v", a.Epochs)
	}
	if got := a.Epochs[0].HitRate(); math.Abs(got-4.0/7.0) > 1e-12 {
		t.Fatalf("hit rate %v", got)
	}
	if got := a.ResumptionFraction(); got != 0.5 {
		t.Fatalf("resumption fraction %v, want 0.5", got)
	}
	// Invariant: generated = completed + shed.
	if a.Counters.VisitsGenerated != a.Counters.VisitsCompleted+a.Counters.VisitsShed {
		t.Fatal("generated ≠ completed + shed")
	}
}
