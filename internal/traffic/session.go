package traffic

import (
	"math/rand"
	"time"
)

// maxSessionVisits caps a single session's geometric length draw — the
// tail bound that keeps one lucky draw from pinning a shard.
const maxSessionVisits = 64

// Session is one user's browsing session plan: a geometric number of
// visits, Zipf-popular page choices, and exponential think times, all
// drawn lazily from the session's private rng stream. The engine asks
// for the next page before each visit and the think gap after it.
type Session struct {
	rng  *rand.Rand
	zipf *rand.Zipf

	thinkMean time.Duration
	// VisitsLeft is the number of visits still planned (including the
	// one about to run).
	VisitsLeft int
}

// NewSession draws a session plan from rng for a corpus of pages pages.
// The config must be defaulted.
func NewSession(rng *rand.Rand, pages int, c Config) *Session {
	s := &Session{
		rng:        rng,
		zipf:       rand.NewZipf(rng, c.ZipfS, 1, uint64(pages-1)),
		thinkMean:  c.ThinkTime,
		VisitsLeft: 1,
	}
	// Geometric session length with mean c.SessionVisits, support ≥ 1:
	// each extra visit happens with probability 1 − 1/mean.
	pStop := 1 / c.SessionVisits
	for s.VisitsLeft < maxSessionVisits && s.rng.Float64() >= pStop {
		s.VisitsLeft++
	}
	return s
}

// NextPage draws the next visit's page index in [0, pages): Zipf-ranked
// popularity, so a head of hot pages keeps edge caches contended while
// the tail stays cold.
func (s *Session) NextPage() int {
	return int(s.zipf.Uint64())
}

// Think draws the gap before the session's next visit.
func (s *Session) Think() time.Duration {
	return time.Duration(s.rng.ExpFloat64() * float64(s.thinkMean))
}
