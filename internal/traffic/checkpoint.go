package traffic

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"h3cdn/internal/cdn"
	"h3cdn/internal/har"
	"h3cdn/internal/sketch"
)

// CheckpointVersion guards the on-disk format; a mismatch fails the
// load rather than resuming from state with different semantics.
const CheckpointVersion = 1

// UserMemory is one user's durable cross-session state — just the
// learned Alt-Svc hosts. Users with nothing learned are omitted
// entirely, so the checkpoint stays sparse in the population size.
type UserMemory struct {
	User   int      `json:"user"`
	AltSvc []string `json:"altSvc"`
}

// EdgeCache is one provider edge's cache dump.
type EdgeCache struct {
	Provider string           `json:"provider"`
	Entries  []cdn.CacheEntry `json:"entries"`
}

// Checkpoint is one traffic shard's complete resumable state, written
// atomically after every epoch. Resuming from epoch k reproduces the
// uninterrupted run byte-for-byte: epochs run in fresh universes whose
// randomness is derived from (seed, epoch), so the only state that
// crosses the boundary is exactly what is recorded here — caches, user
// memory, the clock, and the accumulated results.
type Checkpoint struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	// Epoch is the next epoch to run (epochs [0, Epoch) are folded in).
	Epoch int `json:"epoch"`
	// Clock is the campaign-absolute virtual time the next epoch starts
	// at (≥ Epoch·EpochInterval when an epoch ran long).
	Clock time.Duration `json:"clock"`

	Users  []UserMemory `json:"users,omitempty"`
	Edges  []EdgeCache  `json:"edges,omitempty"`
	Report Report       `json:"report"`

	// Accumulated results so far: the shard's metric accumulator and
	// whatever PageLogs the retention policy kept.
	Metrics *sketch.MetricAccumulator `json:"metrics"`
	Logs    []har.PageLog             `json:"logs,omitempty"`

	// Stats carries the shard's engine counters (events, drops,
	// recovery) accumulated over completed epochs, opaque to this
	// package (internal/core owns the struct).
	Stats json.RawMessage `json:"stats,omitempty"`
}

// Save writes the checkpoint atomically (temp file + rename), so a kill
// mid-write leaves the previous epoch's checkpoint intact.
func Save(path string, cp *Checkpoint) error {
	cp.Version = CheckpointVersion
	blob, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("traffic: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("traffic: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("traffic: commit checkpoint: %w", err)
	}
	return nil
}

// Load reads a checkpoint; a missing file returns (nil, nil) — a cold
// start, not an error.
func Load(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("traffic: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return nil, fmt.Errorf("traffic: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("traffic: checkpoint %s version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}
