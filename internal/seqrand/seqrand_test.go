package seqrand

import (
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := New(42).Stream("tcp", "host1")
	b := New(42).Stream("tcp", "host1")
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	src := New(42)
	a := src.Stream("tcp", "host1")
	b := src.Stream("tcp", "host2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different labels collided %d/100 draws", same)
	}
}

func TestLabelSeparator(t *testing.T) {
	src := New(7)
	if src.StreamSeed("ab", "c") == src.StreamSeed("a", "bc") {
		t.Fatal(`StreamSeed("ab","c") must differ from StreamSeed("a","bc")`)
	}
}

func TestSubEquivalence(t *testing.T) {
	src := New(99)
	direct := src.StreamSeed("a", "b", "c")
	viaSub := src.Sub("a").StreamSeed("b", "c")
	if direct != viaSub {
		t.Fatalf("Sub path mismatch: %d != %d", direct, viaSub)
	}
	viaSub2 := src.Sub("a", "b").StreamSeed("c")
	if direct != viaSub2 {
		t.Fatalf("Sub(2) path mismatch: %d != %d", direct, viaSub2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	if New(1).StreamSeed("x") == New(2).StreamSeed("x") {
		t.Fatal("different root seeds produced the same stream seed")
	}
}

func TestSeedRoundTrip(t *testing.T) {
	f := func(seed uint64) bool { return New(seed).Seed() == seed }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSeedStableAcrossCalls(t *testing.T) {
	f := func(seed uint64, label string) bool {
		s := New(seed)
		return s.StreamSeed(label) == s.StreamSeed(label)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelHelper(t *testing.T) {
	if got, want := Label("probe", 3), "probe/3"; got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

func TestStreamUniformish(t *testing.T) {
	// Cheap sanity check that derived streams are not degenerate:
	// mean of 10k uniforms should be near 0.5.
	r := New(123).Stream("uniform")
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean = %f, want ~0.5", mean)
	}
}
