// Package seqrand provides deterministic, hierarchically split random
// number streams for reproducible simulations.
//
// A simulation run owns a single root Source created from a seed. Every
// subsystem derives its own independent stream with Stream, keyed by a
// human-readable label path (e.g. "loss/probe1/edge.google"). Two runs with
// the same seed and the same label structure observe identical randomness,
// regardless of event interleaving between unrelated subsystems.
package seqrand

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Source is the root of a deterministic stream hierarchy.
type Source struct {
	seed   uint64
	prefix []string
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed.
func (s *Source) Seed() uint64 { return s.seed }

// Stream derives an independent *rand.Rand keyed by the label path.
// The same labels always yield a stream with the same state sequence.
func (s *Source) Stream(labels ...string) *rand.Rand {
	return rand.New(rand.NewSource(int64(s.StreamSeed(labels...)))) //nolint:gosec // simulation, not crypto
}

// StreamSeed derives the 64-bit sub-seed for the label path without
// constructing the generator.
func (s *Source) StreamSeed(labels ...string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], s.seed)
	_, _ = h.Write(buf[:])
	for _, l := range s.prefix {
		_, _ = h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
		_, _ = h.Write([]byte(l))
	}
	for _, l := range labels {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(l))
	}
	return h.Sum64()
}

// Sub derives a child Source. Sub("a").Stream("b") == Stream("a", "b").
func (s *Source) Sub(labels ...string) *Source {
	prefix := make([]string, 0, len(s.prefix)+len(labels))
	prefix = append(prefix, s.prefix...)
	prefix = append(prefix, labels...)
	return &Source{seed: s.seed, prefix: prefix}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Label is a convenience for building numeric labels without fmt.
func Label(prefix string, n int) string {
	return prefix + "/" + strconv.Itoa(n)
}
