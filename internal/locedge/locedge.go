// Package locedge reimplements the role of LocEdge (Huang et al.,
// SIGCOMM'22 demo): identifying whether a web resource was served by a
// CDN, and by which provider, from its HTTP response headers. The paper
// uses LocEdge to split the 36,057 collected requests into CDN and
// non-CDN populations (Table II) and to attribute resources to providers
// (Figs. 2, 4, 5).
package locedge

import "strings"

// Classification is the outcome for one response.
type Classification struct {
	IsCDN    bool
	Provider string // empty when IsCDN is false
}

// signature maps a header fingerprint to a provider.
type signature struct {
	header   string // lower-case header name
	contains string // lower-case substring to match ("" = presence)
	provider string
}

// signatures are checked in order; first match wins. They mirror the
// real-world fingerprints LocEdge uses (Server banners, Via tags, and
// provider-specific headers).
var signatures = []signature{
	{"server", "gws", "Google"},
	{"via", "google", "Google"},
	{"server", "cloudflare", "Cloudflare"},
	{"cf-ray", "", "Cloudflare"},
	{"server", "amazons3", "Amazon"},
	{"via", "cloudfront", "Amazon"},
	{"x-amz-cf-pop", "", "Amazon"},
	{"server", "akamaighost", "Akamai"},
	{"x-akamai-transformed", "", "Akamai"},
	{"server", "fastly", "Fastly"},
	{"x-served-by", "cache-", "Fastly"},
	{"server", "ecacc", "Microsoft"},
	{"x-msedge-ref", "", "Microsoft"},
	{"server", "litespeed", "QUIC.Cloud"},
	{"x-qc-pop", "", "QUIC.Cloud"},
}

// Classify inspects response headers (case-insensitive keys) and returns
// the CDN classification.
func Classify(headers map[string]string) Classification {
	if len(headers) == 0 {
		return Classification{}
	}
	lower := make(map[string]string, len(headers))
	for k, v := range headers {
		lower[strings.ToLower(k)] = strings.ToLower(v)
	}
	for _, sig := range signatures {
		v, ok := lower[sig.header]
		if !ok {
			continue
		}
		if sig.contains == "" || strings.Contains(v, sig.contains) {
			return Classification{IsCDN: true, Provider: sig.provider}
		}
	}
	return Classification{}
}

// KnownProviders lists every provider the classifier can attribute.
func KnownProviders() []string {
	seen := make(map[string]bool, len(signatures))
	out := make([]string, 0, 8)
	for _, sig := range signatures {
		if !seen[sig.provider] {
			seen[sig.provider] = true
			out = append(out, sig.provider)
		}
	}
	return out
}
