package locedge

import (
	"testing"

	"h3cdn/internal/cdn"
)

func TestClassifyKnownSignatures(t *testing.T) {
	cases := []struct {
		headers  map[string]string
		provider string
	}{
		{map[string]string{"server": "gws"}, "Google"},
		{map[string]string{"via": "1.1 google"}, "Google"},
		{map[string]string{"server": "cloudflare"}, "Cloudflare"},
		{map[string]string{"cf-ray": "74f2b1"}, "Cloudflare"},
		{map[string]string{"server": "AmazonS3"}, "Amazon"},
		{map[string]string{"via": "1.1 cloudfront"}, "Amazon"},
		{map[string]string{"server": "AkamaiGHost"}, "Akamai"},
		{map[string]string{"server": "Fastly"}, "Fastly"},
		{map[string]string{"x-served-by": "cache-bwi5120"}, "Fastly"},
		{map[string]string{"x-msedge-ref": "Ref-A"}, "Microsoft"},
		{map[string]string{"server": "LiteSpeed"}, "QUIC.Cloud"},
	}
	for _, tc := range cases {
		got := Classify(tc.headers)
		if !got.IsCDN || got.Provider != tc.provider {
			t.Fatalf("Classify(%v) = %+v, want %s", tc.headers, got, tc.provider)
		}
	}
}

func TestClassifyNonCDN(t *testing.T) {
	for _, h := range []map[string]string{
		nil,
		{},
		{"server": "nginx/1.22"},
		{"server": "Apache/2.4", "x-powered-by": "PHP"},
	} {
		if got := Classify(h); got.IsCDN {
			t.Fatalf("Classify(%v) = %+v, want non-CDN", h, got)
		}
	}
}

func TestClassifyCaseInsensitive(t *testing.T) {
	got := Classify(map[string]string{"Server": "CLOUDFLARE"})
	if !got.IsCDN || got.Provider != "Cloudflare" {
		t.Fatalf("case-insensitive classify failed: %+v", got)
	}
}

// TestRegistryRoundTrip: every provider in the cdn registry must be
// classifiable from the headers its edges emit — otherwise the pipeline
// would silently drop that provider's traffic from CDN statistics.
func TestRegistryRoundTrip(t *testing.T) {
	for _, p := range cdn.Registry() {
		h := map[string]string{"server": p.ServerHeader, "x-cache": "HIT"}
		if p.ViaHeader != "" {
			h["via"] = p.ViaHeader
		}
		got := Classify(h)
		if !got.IsCDN || got.Provider != p.Name {
			t.Fatalf("registry provider %s: classified as %+v", p.Name, got)
		}
	}
}

func TestKnownProviders(t *testing.T) {
	known := KnownProviders()
	if len(known) < 6 {
		t.Fatalf("only %d known providers", len(known))
	}
	seen := make(map[string]bool)
	for _, p := range known {
		if seen[p] {
			t.Fatalf("duplicate %s", p)
		}
		seen[p] = true
	}
}
