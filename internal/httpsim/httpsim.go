// Package httpsim implements simulated HTTP/1.1, HTTP/2 and HTTP/3
// clients and servers over the transports in internal/tcpsim,
// internal/tlssim, and internal/quicsim.
//
// HTTP/1.1 serializes one request at a time per connection (browsers
// compensate with up to six parallel connections per host). HTTP/2
// multiplexes frames over a single TLS/TCP byte stream — so a lost TCP
// segment stalls every stream (emergent head-of-line blocking). HTTP/3
// maps each request to one QUIC stream, which the transport delivers
// independently.
//
// Headers travel uncompressed for all three protocols; HPACK/QPACK
// differences are not load-bearing for the reproduced experiments (see
// DESIGN.md).
package httpsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"slices"
	"strconv"
	"strings"
	"time"

	"h3cdn/internal/bufpool"
)

// Protocol identifies the HTTP version of a connection or request.
type Protocol uint8

const (
	// H1 is HTTP/1.1 over TLS/TCP.
	H1 Protocol = iota + 1
	// H2 is HTTP/2 over TLS/TCP.
	H2
	// H3 is HTTP/3 over QUIC.
	H3
)

func (p Protocol) String() string {
	switch p {
	case H1:
		return "http/1.1"
	case H2:
		return "h2"
	case H3:
		return "h3"
	default:
		return "http/?"
	}
}

// ALPN returns the TLS ALPN token for the protocol.
func (p Protocol) ALPN() string { return p.String() }

// Request is a simulated HTTP GET.
type Request struct {
	// Host is the authority (hostname) — it keys connection pools,
	// session caches, and CDN provider resolution.
	Host string
	// Path identifies the resource.
	Path string
	// Header carries extra request headers.
	Header map[string]string
}

// Response describes what a server sends back. Header contents matter:
// the locedge classifier reads Server/Via/X-Cache headers from it.
type Response struct {
	Status   int
	Header   map[string]string
	BodySize int
}

// ResponseMeta is the client-visible response envelope, parsed from the
// wire before the body completes.
type ResponseMeta struct {
	Status   int
	Header   map[string]string
	BodySize int
}

// RequestEvents receives the lifecycle callbacks for one request. Any
// field may be nil. Exactly one of OnComplete or OnError fires last.
type RequestEvents struct {
	// OnSent fires when the request bytes are written to the wire.
	OnSent func()
	// OnHeaders fires when the response envelope has been parsed
	// (first-byte time).
	OnHeaders func(ResponseMeta)
	// OnComplete fires when the full body has been received.
	OnComplete func()
	// OnError fires when the connection fails before completion.
	OnError func(error)
}

// Errors surfaced through OnError.
var (
	ErrConnClosed   = errors.New("httpsim: connection closed")
	ErrBadResponse  = errors.New("httpsim: malformed response")
	ErrTooManyReqs  = errors.New("httpsim: request queue overflow")
	ErrNotSupported = errors.New("httpsim: operation not supported")
)

// ClientConn is the protocol-independent client connection interface the
// browser pools.
type ClientConn interface {
	// Do issues a request. Requests made before connection
	// establishment are queued and sent when possible.
	Do(req *Request, ev RequestEvents)
	// Protocol returns the connection's HTTP version.
	Protocol() Protocol
	// Established reports whether the handshake has completed.
	Established() bool
	// HandshakeDuration is the dial-to-usable duration (0 for 0-RTT).
	HandshakeDuration() time.Duration
	// Resumed reports TLS/QUIC session resumption.
	Resumed() bool
	// InFlight reports requests issued but not yet completed.
	InFlight() int
	// TraceID is the connection's tracer-assigned identity (0 when
	// tracing is disabled or the transport has not been dialed).
	TraceID() uint32
	// SSLDuration is the TLS portion of the handshake for H1/H2 (HAR
	// "ssl", a subset of HandshakeDuration). For H3 the integrated
	// QUIC handshake is all crypto, so it equals HandshakeDuration.
	SSLDuration() time.Duration
	// Close terminates the connection gracefully.
	Close()
	// Abort terminates immediately (no peer notification beyond
	// transport reset).
	Abort()
}

// Handler processes a request on the server. respond may be invoked
// synchronously or after scheduling a delay (simulated processing time).
type Handler func(ctx *ServerContext, respond func(Response))

// ServerContext carries per-request server-side information.
type ServerContext struct {
	Req      *Request
	Protocol Protocol
	// ServerName is the SNI/authority the connection was opened for.
	ServerName string
}

// --- header and body serialization (shared by H1/H2/H3) ---

// appendHeaderLines serializes headers deterministically (sorted keys)
// into dst, reusing keys as sort scratch. Allocation-free once dst and
// keys have grown to steady-state capacity.
func appendHeaderLines(dst []byte, h map[string]string, keys []string) ([]byte, []string) {
	keys = keys[:0]
	for k := range h {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		dst = append(dst, k...)
		dst = append(dst, ": "...)
		dst = append(dst, h[k]...)
		dst = append(dst, "\r\n"...)
	}
	return dst, keys
}

// encodeHeaders serializes headers deterministically (sorted keys).
func encodeHeaders(h map[string]string) []byte {
	if len(h) == 0 {
		return nil
	}
	dst, _ := appendHeaderLines(nil, h, nil)
	return dst
}

func decodeHeaders(p []byte) map[string]string {
	h := make(map[string]string)
	for _, line := range strings.Split(string(p), "\r\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		h[k] = v
	}
	return h
}

// --- binary block framing (H2 frames and H3 stream blocks) ---

type blockType uint8

const (
	blockHeadersReq blockType = iota + 1
	blockHeadersResp
	blockData
)

const blockHeaderSize = 10 // type(1) + streamID(4) + flags(1) + length(4)

const flagEndStream = 1

// encodeBlock frames a payload: [type][streamID][flags][len][payload].
func encodeBlock(t blockType, streamID uint32, flags uint8, payload []byte) []byte {
	buf := make([]byte, blockHeaderSize+len(payload))
	putBlockHeader(buf, t, streamID, flags, len(payload))
	copy(buf[blockHeaderSize:], payload)
	return buf
}

func putBlockHeader(buf []byte, t blockType, streamID uint32, flags uint8, plen int) {
	buf[0] = byte(t)
	binary.BigEndian.PutUint32(buf[1:5], streamID)
	buf[5] = flags
	binary.BigEndian.PutUint32(buf[6:10], uint32(plen))
}

// blockWriter is any byte sink honoring the bytestream contract (Write
// copies before returning).
type blockWriter interface{ Write([]byte) }

// writeBlock frames payload into a pooled buffer, writes it, and recycles
// the buffer immediately. A nil arena falls back to the global bufpool.
func writeBlock(a *bufpool.Arena, w blockWriter, t blockType, streamID uint32, flags uint8, payload []byte) {
	buf := a.Get(blockHeaderSize + len(payload))
	putBlockHeader(buf, t, streamID, flags, len(payload))
	copy(buf[blockHeaderSize:], payload)
	w.Write(buf)
	a.Put(buf)
}

// writeBodyBlock writes a blockData frame carrying a synthetic n-byte
// body. Body bytes are only ever counted, never inspected, so the pooled
// buffer's arbitrary contents stand in for the payload.
func writeBodyBlock(a *bufpool.Arena, w blockWriter, streamID uint32, flags uint8, n int) {
	buf := a.Get(blockHeaderSize + n)
	putBlockHeader(buf, blockData, streamID, flags, n)
	w.Write(buf)
	a.Put(buf)
}

// blockParser incrementally decodes framed blocks from a byte stream.
type blockParser struct {
	acc    []byte
	off    int     // consumed prefix of acc; compacted before each append
	blocks []block // reused result slice handed out by feed
}

type block struct {
	typ      blockType
	streamID uint32
	flags    uint8
	payload  []byte
}

// feed appends data and returns all complete blocks. Returned payloads
// alias the parser's accumulator and the returned slice is reused by the
// next feed — both are only valid until then. (Safe here: data delivery
// is a scheduler event, so a callback iterating the result can never
// re-enter feed on the same parser.) The consumed prefix is compacted in
// place before each append so one backing array is reused across the
// connection's lifetime.
func (p *blockParser) feed(data []byte) []block {
	if p.off > 0 {
		n := copy(p.acc, p.acc[p.off:])
		p.acc = p.acc[:n]
		p.off = 0
	}
	p.acc = append(p.acc, data...)
	out := p.blocks[:0]
	for {
		acc := p.acc[p.off:]
		if len(acc) < blockHeaderSize {
			p.blocks = out
			return out
		}
		plen := int(binary.BigEndian.Uint32(acc[6:10]))
		if len(acc) < blockHeaderSize+plen {
			p.blocks = out
			return out
		}
		out = append(out, block{
			typ:      blockType(acc[0]),
			streamID: binary.BigEndian.Uint32(acc[1:5]),
			flags:    acc[5],
			payload:  acc[blockHeaderSize : blockHeaderSize+plen],
		})
		p.off += blockHeaderSize + plen
	}
}

// rewind clears the parser for reuse across visits, dropping buffers
// that grew past the pooled cap.
func (p *blockParser) rewind() {
	p.off = 0
	p.acc = p.acc[:0]
	if cap(p.acc) > maxPooledAcc {
		p.acc = nil
		p.blocks = nil
		return
	}
	// Drop stale payload aliases (they may pin an abandoned accumulator
	// array from a mid-visit growth) before truncating.
	p.blocks = p.blocks[:cap(p.blocks)]
	clear(p.blocks)
	p.blocks = p.blocks[:0]
}

// requestHeaderBlock serializes a request for H2/H3 (pseudo-headers plus
// regular headers). The pooled variant emits pseudo-headers first and
// the rest sorted; decoders are order-insensitive and the byte length is
// identical to the fully-sorted form, so wire timing is unchanged.
func requestHeaderBlock(req *Request) []byte {
	h := make(map[string]string, len(req.Header)+2)
	for k, v := range req.Header {
		h[k] = v
	}
	h[":authority"] = req.Host
	h[":path"] = req.Path
	return encodeHeaders(h)
}

// requestHeaderBlock assembles the block in the shared scratch buffer;
// the result is only valid until the next Pools encode call.
func (pl *Pools) requestHeaderBlock(req *Request) []byte {
	if pl == nil {
		return requestHeaderBlock(req)
	}
	dst := pl.hdrBuf[:0]
	dst = append(dst, ":authority: "...)
	dst = append(dst, req.Host...)
	dst = append(dst, "\r\n:path: "...)
	dst = append(dst, req.Path...)
	dst = append(dst, "\r\n"...)
	dst, pl.sortScratch = appendHeaderLines(dst, req.Header, pl.sortScratch)
	pl.hdrBuf = dst
	return dst
}

func parseRequestHeaderBlock(p []byte) *Request {
	h := decodeHeaders(p)
	req := &Request{Host: h[":authority"], Path: h[":path"], Header: make(map[string]string)}
	for k, v := range h {
		if !strings.HasPrefix(k, ":") {
			req.Header[k] = v
		}
	}
	return req
}

// parseRequestHeaderBlock returns the canonical Request for these wire
// bytes: the corpus re-sends identical blocks every visit, so the parse
// runs once per distinct block. Consumers must treat it as immutable.
func (pl *Pools) parseRequestHeaderBlock(p []byte) *Request {
	if pl == nil {
		return parseRequestHeaderBlock(p)
	}
	if req, ok := pl.reqCache[string(p)]; ok {
		return req
	}
	req := parseRequestHeaderBlock(p)
	if pl.reqCache == nil {
		pl.reqCache = make(map[string]*Request)
	}
	pl.reqCache[string(p)] = req
	return req
}

// responseHeaderBlock serializes a response envelope for H2/H3.
func responseHeaderBlock(resp Response) []byte {
	h := make(map[string]string, len(resp.Header)+2)
	for k, v := range resp.Header {
		h[k] = v
	}
	h[":status"] = strconv.Itoa(resp.Status)
	h["content-length"] = strconv.Itoa(resp.BodySize)
	return encodeHeaders(h)
}

// responseHeaderBlock assembles the block in the shared scratch buffer;
// the result is only valid until the next Pools encode call.
func (pl *Pools) responseHeaderBlock(resp Response) []byte {
	if pl == nil {
		return responseHeaderBlock(resp)
	}
	dst := pl.hdrBuf[:0]
	dst = append(dst, ":status: "...)
	dst = strconv.AppendInt(dst, int64(resp.Status), 10)
	dst = append(dst, "\r\ncontent-length: "...)
	dst = strconv.AppendInt(dst, int64(resp.BodySize), 10)
	dst = append(dst, "\r\n"...)
	dst, pl.sortScratch = appendHeaderLines(dst, resp.Header, pl.sortScratch)
	pl.hdrBuf = dst
	return dst
}

func parseResponseHeaderBlock(p []byte) (ResponseMeta, error) {
	h := decodeHeaders(p)
	status, err := strconv.Atoi(h[":status"])
	if err != nil {
		return ResponseMeta{}, ErrBadResponse
	}
	clen, err := strconv.Atoi(h["content-length"])
	if err != nil {
		return ResponseMeta{}, ErrBadResponse
	}
	delete(h, ":status")
	delete(h, "content-length")
	return ResponseMeta{Status: status, Header: h, BodySize: clen}, nil
}

var (
	crlf         = []byte("\r\n")
	crlf2        = []byte("\r\n\r\n")
	statusPrefix = []byte(":status: ")
	clenPrefix   = []byte("content-length: ")
)

// parseDecimal parses a non-negative base-10 integer, returning -1 on
// empty or malformed input.
func parseDecimal(b []byte) int {
	if len(b) == 0 {
		return -1
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// stripRespHeaders scans wire header lines, extracting the per-resource
// ":status" and "content-length" values (-1 when absent or malformed)
// and accumulating every other line into the shared key scratch — the
// cache key for the canonical header map, which excludes exactly the
// two fields that vary per resource.
func (pl *Pools) stripRespHeaders(p []byte) (key []byte, status, clen int) {
	status, clen = -1, -1
	key = pl.keyBuf[:0]
	for rest := p; len(rest) > 0; {
		var line []byte
		if nl := bytes.Index(rest, crlf); nl >= 0 {
			line, rest = rest[:nl], rest[nl+2:]
		} else {
			line, rest = rest, nil
		}
		switch {
		case len(line) == 0:
		case bytes.HasPrefix(line, statusPrefix):
			status = parseDecimal(line[len(statusPrefix):])
		case bytes.HasPrefix(line, clenPrefix):
			clen = parseDecimal(line[len(clenPrefix):])
		default:
			key = append(key, line...)
			key = append(key, '\r', '\n')
		}
	}
	pl.keyBuf = key
	return key, status, clen
}

// canonHeaderMap returns the shared canonical header map for the given
// stripped header bytes, parsing at most once per distinct set.
// Consumers (HAR entries, the locedge classifier) must not mutate it.
func (pl *Pools) canonHeaderMap(key []byte) map[string]string {
	if h, ok := pl.respCache[string(key)]; ok {
		return h
	}
	h := decodeHeaders(key)
	if pl.respCache == nil {
		pl.respCache = make(map[string]map[string]string)
	}
	pl.respCache[string(key)] = h
	return h
}

// parseResponseHeaderBlock is the cached variant: status and length are
// parsed per call (they vary per resource); the remaining headers
// resolve to a canonical shared map.
func (pl *Pools) parseResponseHeaderBlock(p []byte) (ResponseMeta, error) {
	if pl == nil {
		return parseResponseHeaderBlock(p)
	}
	key, status, clen := pl.stripRespHeaders(p)
	if status < 0 || clen < 0 {
		return ResponseMeta{}, ErrBadResponse
	}
	return ResponseMeta{Status: status, Header: pl.canonHeaderMap(key), BodySize: clen}, nil
}

// bodyChunkSize is the DATA frame payload granularity for H2/H3 servers.
const bodyChunkSize = 16 * 1024

// writeBody streams a synthetic n-byte body (no framing) in pooled
// bodyChunkSize chunks; contents are arbitrary, as with writeBodyBlock.
func writeBody(a *bufpool.Arena, w blockWriter, n int) {
	for n > 0 {
		c := n
		if c > bodyChunkSize {
			c = bodyChunkSize
		}
		buf := a.Get(c)
		w.Write(buf)
		a.Put(buf)
		n -= c
	}
}
