package httpsim

import (
	"fmt"
	"time"

	"h3cdn/internal/quicsim"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tcpsim"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/trace"
)

// Well-known ports. The simulator gives each host a single port space, so
// the QUIC listener uses 444 by convention (standing in for UDP 443).
const (
	TCPPort  = 443
	QUICPort = 444
)

// ServerConfig configures an HTTP origin or CDN edge server.
type ServerConfig struct {
	// Handler serves every request.
	Handler Handler
	// TLSSessions enables TLS 1.3 resumption (shared across conns).
	TLSSessions *tlssim.ServerSessionState
	// QUICSessions enables QUIC resumption (shared across conns).
	QUICSessions *quicsim.ServerSessions
	// EnableH3 additionally listens for HTTP/3 on QUICPort.
	EnableH3 bool
	// HandshakeCPU models server crypto compute time per handshake.
	HandshakeCPU time.Duration
	// TCP and QUIC tune the transports.
	TCP  tcpsim.Config
	QUIC quicsim.Config
	// Pools, when non-nil, supplies the universe's shared allocation
	// arenas (transport records, buffers, header caches, stream states).
	Pools *Pools
	// Trace, when non-nil, receives server-side transport events.
	// Nil-safe: every emit is a no-op when nil.
	Trace *trace.Tracer
}

// Server is a simulated HTTPS server speaking H1 and H2 (via ALPN) and
// optionally H3.
type Server struct {
	host *simnet.Host
	cfg  ServerConfig
	tcp  *tcpsim.Listener
	quic *quicsim.Endpoint
}

// StartServer binds the listeners on host.
func StartServer(host *simnet.Host, cfg ServerConfig) (*Server, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("httpsim: StartServer: %w: nil handler", ErrNotSupported)
	}
	s := &Server{host: host, cfg: cfg}

	tcpCfg := cfg.TCP
	tcpCfg.Trace = cfg.Trace
	if cfg.Pools != nil {
		tcpCfg.Pools = &cfg.Pools.TCP
		tcpCfg.Arena = &cfg.Pools.Arena
	}
	tcpL, err := tcpsim.Listen(host, TCPPort, tcpCfg, func(tc *tcpsim.Conn) {
		var tconn *tlssim.Conn
		tconn = tlssim.Server(tc, tlssim.ServerConfig{
			Sessions:     cfg.TLSSessions,
			Sched:        host.Scheduler(),
			HandshakeCPU: cfg.HandshakeCPU,
			Arena:        cfg.Pools.arena(),
			Trace:        cfg.Trace,
			TraceConn:    tc.TraceID(),
		}, func(err error) {
			if err != nil {
				return
			}
			switch tconn.ALPN() {
			case H2.ALPN():
				newH2ServerConn(tconn, cfg.Handler, cfg.Pools)
			default:
				newH1ServerConn(tconn, cfg.Handler, cfg.Pools)
			}
		})
	})
	if err != nil {
		return nil, err
	}
	s.tcp = tcpL

	if cfg.EnableH3 {
		quicCfg := cfg.QUIC
		quicCfg.Trace = cfg.Trace
		if quicCfg.Pools == nil && cfg.Pools != nil {
			quicCfg.Pools = &cfg.Pools.QUIC
		}
		quicE, err := quicsim.Listen(host, QUICPort, quicsim.ServerConfig{
			Config:       quicCfg,
			Sessions:     cfg.QUICSessions,
			HandshakeCPU: cfg.HandshakeCPU,
		}, func(qc *quicsim.Conn) {
			newH3Server(qc, cfg.Handler, cfg.Pools)
		})
		if err != nil {
			tcpL.Close()
			return nil, err
		}
		s.quic = quicE
	}
	return s, nil
}

// SupportsH3 reports whether the server listens for HTTP/3.
func (s *Server) SupportsH3() bool { return s.quic != nil }

// Close shuts down all listeners and live connections.
func (s *Server) Close() {
	if s.tcp != nil {
		s.tcp.Close()
	}
	if s.quic != nil {
		s.quic.Close()
	}
}
