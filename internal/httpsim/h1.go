package httpsim

import (
	"bytes"
	"strconv"
	"strings"
	"time"

	"h3cdn/internal/simnet"
	"h3cdn/internal/tcpsim"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/trace"
)

// DialConfig carries the client-side transport knobs shared by all
// protocols.
type DialConfig struct {
	// TLSVersion selects the TLS handshake for H1/H2 (default TLS 1.3;
	// TLS 1.2 reproduces the paper's 3-RTT "H2 + TLS/1.2 suite").
	TLSVersion tlssim.Version
	// TLSTickets enables TLS 1.3 resumption for H1/H2.
	TLSTickets *tlssim.TicketStore
	// EnableEarlyData sends TLS 0-RTT requests on resumed H1/H2
	// connections.
	EnableEarlyData bool
	// TCP tunes the TCP endpoints under H1/H2.
	TCP TCPOptions
	// HandshakeCPU models client crypto compute time.
	HandshakeCPU time.Duration
	// Pools, when non-nil, supplies the universe's shared allocation
	// arenas (TCP segments, buffers, header caches).
	Pools *Pools
	// Trace, when non-nil, receives transport- and HTTP-level events
	// for this connection. Nil-safe: every emit is a no-op when nil.
	Trace *trace.Tracer
}

// TCPOptions is re-exported here to avoid each caller importing tcpsim.
type TCPOptions struct {
	RTOInit    time.Duration
	MaxRetries int
	// Recovery receives the endpoint's loss-recovery counters (nil
	// disables; see simnet.RecoveryStats).
	Recovery *simnet.RecoveryStats
}

type h1Pending struct {
	req    *Request
	ev     RequestEvents
	stream int64
}

// h1Client is an HTTP/1.1 client connection: strictly one request in
// flight; further requests queue (the browser opens parallel connections).
type h1Client struct {
	sched       *simnet.Scheduler
	tls         *tlssim.Conn
	established bool
	hsDur       time.Duration
	sslDur      time.Duration
	resumed     bool
	closed      bool

	trace      *trace.Tracer
	traceID    uint32
	pools      *Pools
	nextStream int64

	queue  []h1Pending
	cur    h1Pending
	hasCur bool
	dog    reqWatchdog

	// Response parse state. acc accumulates with an explicit consumed
	// offset (compacted before each append) so one backing array serves
	// the connection's lifetime.
	acc       []byte
	accOff    int
	meta      ResponseMeta
	inBody    bool
	bodyLeft  int
	gotHeader bool
}

var _ ClientConn = (*h1Client)(nil)

// DialH1 opens an HTTP/1.1 connection to addr:port.
func DialH1(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, cfg DialConfig) ClientConn {
	c := &h1Client{sched: host.Scheduler(), trace: cfg.Trace, pools: cfg.Pools}
	dialStart := c.sched.Now()
	dialTLS(host, addr, port, serverName, H1, cfg, func(conn *tlssim.Conn, err error) {
		if err != nil {
			c.fail(err)
			return
		}
		if c.closed {
			// The client gave up (watchdog or abort) while the handshake
			// was still running; release the late connection.
			conn.Abort()
			return
		}
		c.tls = conn
		// Handshake duration covers TCP + TLS, from the dial call; the
		// SSL portion is the TLS layer's own span (HAR "ssl").
		c.hsDur = c.sched.Now() - dialStart
		c.sslDur = conn.HandshakeDuration()
		c.traceID = conn.TraceID()
		c.resumed = conn.Resumed()
		conn.SetDataFunc(c.onData)
		conn.SetCloseFunc(c.onClose)
		c.established = true
		c.next()
	}, func(conn *tlssim.Conn) { c.tls = conn })
	c.dog.init(c.sched, c.watchdogFire)
	return c
}

// dialTLS opens TCP then TLS with the given ALPN. early gives the caller
// the TLS conn as soon as it exists (before handshake completion) so
// Close/Abort work mid-handshake.
func dialTLS(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, proto Protocol,
	cfg DialConfig, done func(*tlssim.Conn, error), early func(*tlssim.Conn)) {
	tcpCfg := tcpsimConfig(cfg.TCP)
	tcpCfg.Trace = cfg.Trace
	if cfg.Pools != nil {
		tcpCfg.Pools = &cfg.Pools.TCP
		tcpCfg.Arena = &cfg.Pools.Arena
	}
	version := cfg.TLSVersion
	if version == 0 {
		version = tlssim.TLS13
	}
	tc := tcpsim.Dial(host, addr, port, tcpCfg, func(tc *tcpsim.Conn) {
		var tconn *tlssim.Conn
		tconn = tlssim.Client(tc, tlssim.ClientConfig{
			Version:         version,
			ServerName:      serverName,
			Tickets:         cfg.TLSTickets,
			EnableEarlyData: cfg.EnableEarlyData,
			Sched:           host.Scheduler(),
			HandshakeCPU:    cfg.HandshakeCPU,
			ALPN:            proto.ALPN(),
			Arena:           cfg.Pools.arena(),
			Trace:           cfg.Trace,
			TraceConn:       tc.TraceID(),
		}, func(err error) { done(tconn, err) })
		if early != nil {
			early(tconn)
		}
	})
	// Cover the SYN window: until the TLS layer takes over the close
	// callback (on establishment), a connection that dies dialing — SYN
	// retry exhaustion, RST — would otherwise vanish without ever
	// resolving the dial.
	tc.SetCloseFunc(func(err error) {
		if err == nil {
			err = ErrConnClosed
		}
		done(nil, err)
	})
}

func (c *h1Client) Protocol() Protocol { return H1 }

func (c *h1Client) Established() bool { return c.established }

func (c *h1Client) HandshakeDuration() time.Duration { return c.hsDur }

func (c *h1Client) SSLDuration() time.Duration { return c.sslDur }

func (c *h1Client) TraceID() uint32 { return c.traceID }

func (c *h1Client) Resumed() bool { return c.resumed }

func (c *h1Client) InFlight() int {
	n := len(c.queue)
	if c.hasCur {
		n++
	}
	return n
}

func (c *h1Client) Do(req *Request, ev RequestEvents) {
	if c.closed {
		if ev.OnError != nil {
			ev.OnError(ErrConnClosed)
		}
		return
	}
	c.queue = append(c.queue, h1Pending{req: req, ev: ev})
	if c.established {
		c.next()
	}
	if !c.closed {
		c.dog.touch(c.InFlight())
	}
}

func (c *h1Client) next() {
	if c.hasCur || len(c.queue) == 0 || c.closed {
		return
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	c.nextStream++
	p.stream = c.nextStream
	c.cur = p
	c.hasCur = true
	c.resetParse()
	c.trace.HTTPStreamOpen(c.sched.Now(), c.traceID, p.stream, p.req.Host, p.req.Path)
	c.tls.Write(c.pools.encodeH1Request(p.req))
	if p.ev.OnSent != nil {
		p.ev.OnSent()
	}
}

func (c *h1Client) resetParse() {
	c.acc = c.acc[:0]
	c.accOff = 0
	c.inBody = false
	c.bodyLeft = 0
	c.gotHeader = false
}

func (c *h1Client) onData(p []byte) {
	c.parse(p)
	if !c.closed {
		// Response bytes arrived: reset the silence budget, or disarm it
		// entirely if this delivery completed the last request.
		c.dog.touch(c.InFlight())
	}
}

func (c *h1Client) parse(p []byte) {
	if c.accOff > 0 {
		n := copy(c.acc, c.acc[c.accOff:])
		c.acc = c.acc[:n]
		c.accOff = 0
	}
	c.acc = append(c.acc, p...)
	for {
		if !c.hasCur {
			return
		}
		acc := c.acc[c.accOff:]
		if !c.gotHeader {
			idx := bytes.Index(acc, crlf2)
			if idx < 0 {
				return
			}
			meta, err := c.pools.parseH1Response(acc[:idx])
			if err != nil {
				c.fail(err)
				return
			}
			c.meta = meta
			c.gotHeader = true
			c.bodyLeft = meta.BodySize
			c.accOff += idx + 4
			acc = c.acc[c.accOff:]
			c.trace.HTTPHeaders(c.sched.Now(), c.traceID, c.cur.stream, meta.Status, meta.BodySize)
			if c.cur.ev.OnHeaders != nil {
				c.cur.ev.OnHeaders(meta)
			}
			if c.closed || !c.hasCur {
				return
			}
		}
		if len(acc) < c.bodyLeft {
			c.bodyLeft -= len(acc)
			c.acc = c.acc[:0]
			c.accOff = 0
			return
		}
		c.accOff += c.bodyLeft
		c.bodyLeft = 0
		done := c.cur
		c.hasCur = false
		c.gotHeader = false
		c.trace.HTTPStreamClose(c.sched.Now(), c.traceID, done.stream)
		if done.ev.OnComplete != nil {
			done.ev.OnComplete()
		}
		c.next()
	}
}

func (c *h1Client) onClose(err error) {
	if err == nil {
		err = ErrConnClosed
	}
	c.fail(err)
}

// watchdogFire aborts a connection that has been silent for
// requestTimeout with requests outstanding. fail runs first so the
// retry fan-out sees ErrRequestTimeout rather than the transport's own
// error from the close callback.
func (c *h1Client) watchdogFire() {
	if c.closed {
		return
	}
	tls := c.tls
	c.fail(ErrRequestTimeout)
	if tls != nil {
		tls.Abort()
	}
}

func (c *h1Client) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	if c.hasCur {
		c.hasCur = false
		c.trace.HTTPStreamFail(c.sched.Now(), c.traceID, c.cur.stream, err.Error())
		if c.cur.ev.OnError != nil {
			c.cur.ev.OnError(err)
		}
		c.cur = h1Pending{}
	}
	for _, p := range c.queue {
		if p.ev.OnError != nil {
			p.ev.OnError(err)
		}
	}
	c.queue = nil
}

func (c *h1Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	if c.tls != nil {
		c.tls.Close()
	}
}

func (c *h1Client) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	if c.tls != nil {
		c.tls.Abort()
	}
}

// --- H1 wire format ---

func encodeH1Request(req *Request) []byte {
	var b strings.Builder
	b.WriteString("GET ")
	b.WriteString(req.Path)
	b.WriteString(" HTTP/1.1\r\nhost: ")
	b.WriteString(req.Host)
	b.WriteString("\r\n")
	b.Write(encodeHeaders(req.Header))
	b.WriteString("\r\n")
	return []byte(b.String())
}

// encodeH1Request assembles the request in the shared scratch buffer;
// the result is only valid until the next Pools encode call. (The TLS
// layer copies on Write.)
func (pl *Pools) encodeH1Request(req *Request) []byte {
	if pl == nil {
		return encodeH1Request(req)
	}
	dst := pl.hdrBuf[:0]
	dst = append(dst, "GET "...)
	dst = append(dst, req.Path...)
	dst = append(dst, " HTTP/1.1\r\nhost: "...)
	dst = append(dst, req.Host...)
	dst = append(dst, "\r\n"...)
	dst, pl.sortScratch = appendHeaderLines(dst, req.Header, pl.sortScratch)
	dst = append(dst, "\r\n"...)
	pl.hdrBuf = dst
	return dst
}

func parseH1Request(p []byte) (*Request, bool) {
	s := string(p)
	line, rest, ok := strings.Cut(s, "\r\n")
	if !ok {
		return nil, false
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, false
	}
	h := decodeHeaders([]byte(rest))
	req := &Request{Path: parts[1], Host: h["host"], Header: h}
	delete(h, "host")
	return req, true
}

// parseH1Request returns the canonical Request for these wire bytes
// (parsed once per distinct request). Consumers must not mutate it.
func (pl *Pools) parseH1Request(p []byte) (*Request, bool) {
	if pl == nil {
		return parseH1Request(p)
	}
	if req, ok := pl.reqCache[string(p)]; ok {
		return req, req != nil
	}
	req, ok := parseH1Request(p)
	if !ok {
		return nil, false
	}
	if pl.reqCache == nil {
		pl.reqCache = make(map[string]*Request)
	}
	pl.reqCache[string(p)] = req
	return req, true
}

func encodeH1Response(resp Response) []byte {
	var b strings.Builder
	b.WriteString("HTTP/1.1 ")
	b.WriteString(strconv.Itoa(resp.Status))
	b.WriteString(" OK\r\ncontent-length: ")
	b.WriteString(strconv.Itoa(resp.BodySize))
	b.WriteString("\r\n")
	b.Write(encodeHeaders(resp.Header))
	b.WriteString("\r\n")
	return []byte(b.String())
}

// encodeH1Response assembles the response envelope in the shared
// scratch buffer; valid until the next Pools encode call.
func (pl *Pools) encodeH1Response(resp Response) []byte {
	if pl == nil {
		return encodeH1Response(resp)
	}
	dst := pl.hdrBuf[:0]
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(resp.Status), 10)
	dst = append(dst, " OK\r\ncontent-length: "...)
	dst = strconv.AppendInt(dst, int64(resp.BodySize), 10)
	dst = append(dst, "\r\n"...)
	dst, pl.sortScratch = appendHeaderLines(dst, resp.Header, pl.sortScratch)
	dst = append(dst, "\r\n"...)
	pl.hdrBuf = dst
	return dst
}

func parseH1Response(p []byte) (ResponseMeta, error) {
	s := string(p)
	line, rest, ok := strings.Cut(s, "\r\n")
	if !ok {
		rest = ""
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return ResponseMeta{}, ErrBadResponse
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return ResponseMeta{}, ErrBadResponse
	}
	h := decodeHeaders([]byte(rest))
	clen, err := strconv.Atoi(h["content-length"])
	if err != nil {
		return ResponseMeta{}, ErrBadResponse
	}
	delete(h, "content-length")
	return ResponseMeta{Status: status, Header: h, BodySize: clen}, nil
}

// parseH1Response is the cached variant: status and content-length are
// parsed per call; the remaining headers resolve to a canonical shared
// map (see Pools.canonHeaderMap).
func (pl *Pools) parseH1Response(p []byte) (ResponseMeta, error) {
	if pl == nil {
		return parseH1Response(p)
	}
	line := p
	var rest []byte
	if nl := bytes.Index(p, crlf); nl >= 0 {
		line, rest = p[:nl], p[nl+2:]
	}
	// Status is the second space-separated token of "HTTP/1.1 200 OK".
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return ResponseMeta{}, ErrBadResponse
	}
	tok := line[sp+1:]
	if sp2 := bytes.IndexByte(tok, ' '); sp2 >= 0 {
		tok = tok[:sp2]
	}
	status := parseDecimal(tok)
	if status < 0 {
		return ResponseMeta{}, ErrBadResponse
	}
	key, _, clen := pl.stripRespHeaders(rest)
	if clen < 0 {
		return ResponseMeta{}, ErrBadResponse
	}
	return ResponseMeta{Status: status, Header: pl.canonHeaderMap(key), BodySize: clen}, nil
}

// h1ServerConn serves HTTP/1.1 on one TLS connection.
type h1ServerConn struct {
	tls     *tlssim.Conn
	handler Handler
	pools   *Pools
	acc     []byte
	accOff  int
	// ctx and respondFn are reused across requests: dispatch is
	// synchronous from onData and handlers copy what they need before
	// scheduling a delayed respond.
	ctx       ServerContext
	respondFn func(Response)
}

func newH1ServerConn(tls *tlssim.Conn, handler Handler, pools *Pools) *h1ServerConn {
	c := &h1ServerConn{tls: tls, handler: handler, pools: pools}
	c.respondFn = c.respond
	tls.SetDataFunc(c.onData)
	// Passive close: answer the client's FIN with our own so both
	// endpoints fully release ports and timers.
	tls.SetCloseFunc(func(err error) {
		if err == nil {
			tls.Close()
		}
	})
	return c
}

func (c *h1ServerConn) respond(resp Response) {
	c.tls.Write(c.pools.encodeH1Response(resp))
	if resp.BodySize > 0 {
		writeBody(c.pools.arena(), c.tls, resp.BodySize)
	}
}

func (c *h1ServerConn) onData(p []byte) {
	if c.accOff > 0 {
		n := copy(c.acc, c.acc[c.accOff:])
		c.acc = c.acc[:n]
		c.accOff = 0
	}
	c.acc = append(c.acc, p...)
	for {
		acc := c.acc[c.accOff:]
		idx := bytes.Index(acc, crlf2)
		if idx < 0 {
			return
		}
		req, ok := c.pools.parseH1Request(acc[:idx])
		c.accOff += idx + 4
		if !ok {
			continue
		}
		c.ctx = ServerContext{Req: req, Protocol: H1, ServerName: c.tls.ServerName()}
		c.handler(&c.ctx, c.respondFn)
	}
}
