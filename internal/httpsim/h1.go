package httpsim

import (
	"strconv"
	"strings"
	"time"

	"h3cdn/internal/simnet"
	"h3cdn/internal/tcpsim"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/trace"
)

// DialConfig carries the client-side transport knobs shared by all
// protocols.
type DialConfig struct {
	// TLSVersion selects the TLS handshake for H1/H2 (default TLS 1.3;
	// TLS 1.2 reproduces the paper's 3-RTT "H2 + TLS/1.2 suite").
	TLSVersion tlssim.Version
	// TLSTickets enables TLS 1.3 resumption for H1/H2.
	TLSTickets *tlssim.TicketStore
	// EnableEarlyData sends TLS 0-RTT requests on resumed H1/H2
	// connections.
	EnableEarlyData bool
	// TCP tunes the TCP endpoints under H1/H2.
	TCP TCPOptions
	// HandshakeCPU models client crypto compute time.
	HandshakeCPU time.Duration
	// Trace, when non-nil, receives transport- and HTTP-level events
	// for this connection. Nil-safe: every emit is a no-op when nil.
	Trace *trace.Tracer
}

// TCPOptions is re-exported here to avoid each caller importing tcpsim.
type TCPOptions struct {
	RTOInit    time.Duration
	MaxRetries int
	// Recovery receives the endpoint's loss-recovery counters (nil
	// disables; see simnet.RecoveryStats).
	Recovery *simnet.RecoveryStats
}

type h1Pending struct {
	req    *Request
	ev     RequestEvents
	stream int64
}

// h1Client is an HTTP/1.1 client connection: strictly one request in
// flight; further requests queue (the browser opens parallel connections).
type h1Client struct {
	sched       *simnet.Scheduler
	tls         *tlssim.Conn
	established bool
	hsDur       time.Duration
	sslDur      time.Duration
	resumed     bool
	closed      bool

	trace      *trace.Tracer
	traceID    uint32
	nextStream int64

	queue []h1Pending
	cur   *h1Pending

	// Response parse state.
	acc       []byte
	meta      ResponseMeta
	inBody    bool
	bodyLeft  int
	gotHeader bool
}

var _ ClientConn = (*h1Client)(nil)

// DialH1 opens an HTTP/1.1 connection to addr:port.
func DialH1(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, cfg DialConfig) ClientConn {
	c := &h1Client{sched: host.Scheduler(), trace: cfg.Trace}
	dialStart := c.sched.Now()
	dialTLS(host, addr, port, serverName, H1, cfg, func(conn *tlssim.Conn, err error) {
		if err != nil {
			c.fail(err)
			return
		}
		c.tls = conn
		// Handshake duration covers TCP + TLS, from the dial call; the
		// SSL portion is the TLS layer's own span (HAR "ssl").
		c.hsDur = c.sched.Now() - dialStart
		c.sslDur = conn.HandshakeDuration()
		c.traceID = conn.TraceID()
		c.resumed = conn.Resumed()
		conn.SetDataFunc(c.onData)
		conn.SetCloseFunc(c.onClose)
		c.established = true
		c.next()
	}, func(conn *tlssim.Conn) { c.tls = conn })
	return c
}

// dialTLS opens TCP then TLS with the given ALPN. early gives the caller
// the TLS conn as soon as it exists (before handshake completion) so
// Close/Abort work mid-handshake.
func dialTLS(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, proto Protocol,
	cfg DialConfig, done func(*tlssim.Conn, error), early func(*tlssim.Conn)) {
	tcpCfg := tcpsimConfig(cfg.TCP)
	tcpCfg.Trace = cfg.Trace
	version := cfg.TLSVersion
	if version == 0 {
		version = tlssim.TLS13
	}
	tc := tcpsim.Dial(host, addr, port, tcpCfg, func(tc *tcpsim.Conn) {
		var tconn *tlssim.Conn
		tconn = tlssim.Client(tc, tlssim.ClientConfig{
			Version:         version,
			ServerName:      serverName,
			Tickets:         cfg.TLSTickets,
			EnableEarlyData: cfg.EnableEarlyData,
			Sched:           host.Scheduler(),
			HandshakeCPU:    cfg.HandshakeCPU,
			ALPN:            proto.ALPN(),
			Trace:           cfg.Trace,
			TraceConn:       tc.TraceID(),
		}, func(err error) { done(tconn, err) })
		if early != nil {
			early(tconn)
		}
	})
	// Cover the SYN window: until the TLS layer takes over the close
	// callback (on establishment), a connection that dies dialing — SYN
	// retry exhaustion, RST — would otherwise vanish without ever
	// resolving the dial.
	tc.SetCloseFunc(func(err error) {
		if err == nil {
			err = ErrConnClosed
		}
		done(nil, err)
	})
}

func (c *h1Client) Protocol() Protocol { return H1 }

func (c *h1Client) Established() bool { return c.established }

func (c *h1Client) HandshakeDuration() time.Duration { return c.hsDur }

func (c *h1Client) SSLDuration() time.Duration { return c.sslDur }

func (c *h1Client) TraceID() uint32 { return c.traceID }

func (c *h1Client) Resumed() bool { return c.resumed }

func (c *h1Client) InFlight() int {
	n := len(c.queue)
	if c.cur != nil {
		n++
	}
	return n
}

func (c *h1Client) Do(req *Request, ev RequestEvents) {
	if c.closed {
		if ev.OnError != nil {
			ev.OnError(ErrConnClosed)
		}
		return
	}
	c.queue = append(c.queue, h1Pending{req: req, ev: ev})
	if c.established {
		c.next()
	}
}

func (c *h1Client) next() {
	if c.cur != nil || len(c.queue) == 0 || c.closed {
		return
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	c.nextStream++
	p.stream = c.nextStream
	c.cur = &p
	c.resetParse()
	c.trace.HTTPStreamOpen(c.sched.Now(), c.traceID, p.stream, p.req.Host, p.req.Path)
	c.tls.Write(encodeH1Request(p.req))
	if p.ev.OnSent != nil {
		p.ev.OnSent()
	}
}

func (c *h1Client) resetParse() {
	c.acc = nil
	c.inBody = false
	c.bodyLeft = 0
	c.gotHeader = false
}

func (c *h1Client) onData(p []byte) {
	c.acc = append(c.acc, p...)
	for {
		if c.cur == nil {
			return
		}
		if !c.gotHeader {
			idx := strings.Index(string(c.acc), "\r\n\r\n")
			if idx < 0 {
				return
			}
			meta, err := parseH1Response(c.acc[:idx])
			if err != nil {
				c.fail(err)
				return
			}
			c.meta = meta
			c.gotHeader = true
			c.bodyLeft = meta.BodySize
			c.acc = c.acc[idx+4:]
			c.trace.HTTPHeaders(c.sched.Now(), c.traceID, c.cur.stream, meta.Status, meta.BodySize)
			if c.cur.ev.OnHeaders != nil {
				c.cur.ev.OnHeaders(meta)
			}
		}
		if len(c.acc) < c.bodyLeft {
			c.bodyLeft -= len(c.acc)
			c.acc = nil
			return
		}
		c.acc = c.acc[c.bodyLeft:]
		c.bodyLeft = 0
		done := c.cur
		c.cur = nil
		c.gotHeader = false
		c.trace.HTTPStreamClose(c.sched.Now(), c.traceID, done.stream)
		if done.ev.OnComplete != nil {
			done.ev.OnComplete()
		}
		c.next()
	}
}

func (c *h1Client) onClose(err error) {
	if err == nil {
		err = ErrConnClosed
	}
	c.fail(err)
}

func (c *h1Client) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	if c.cur != nil {
		c.trace.HTTPStreamFail(c.sched.Now(), c.traceID, c.cur.stream, err.Error())
		if c.cur.ev.OnError != nil {
			c.cur.ev.OnError(err)
		}
		c.cur = nil
	}
	for _, p := range c.queue {
		if p.ev.OnError != nil {
			p.ev.OnError(err)
		}
	}
	c.queue = nil
}

func (c *h1Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.tls != nil {
		c.tls.Close()
	}
}

func (c *h1Client) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	if c.tls != nil {
		c.tls.Abort()
	}
}

// --- H1 wire format ---

func encodeH1Request(req *Request) []byte {
	var b strings.Builder
	b.WriteString("GET ")
	b.WriteString(req.Path)
	b.WriteString(" HTTP/1.1\r\nhost: ")
	b.WriteString(req.Host)
	b.WriteString("\r\n")
	b.Write(encodeHeaders(req.Header))
	b.WriteString("\r\n")
	return []byte(b.String())
}

func parseH1Request(p []byte) (*Request, bool) {
	s := string(p)
	line, rest, ok := strings.Cut(s, "\r\n")
	if !ok {
		return nil, false
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, false
	}
	h := decodeHeaders([]byte(rest))
	req := &Request{Path: parts[1], Host: h["host"], Header: h}
	delete(h, "host")
	return req, true
}

func encodeH1Response(resp Response) []byte {
	var b strings.Builder
	b.WriteString("HTTP/1.1 ")
	b.WriteString(strconv.Itoa(resp.Status))
	b.WriteString(" OK\r\ncontent-length: ")
	b.WriteString(strconv.Itoa(resp.BodySize))
	b.WriteString("\r\n")
	b.Write(encodeHeaders(resp.Header))
	b.WriteString("\r\n")
	return []byte(b.String())
}

func parseH1Response(p []byte) (ResponseMeta, error) {
	s := string(p)
	line, rest, ok := strings.Cut(s, "\r\n")
	if !ok {
		rest = ""
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return ResponseMeta{}, ErrBadResponse
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return ResponseMeta{}, ErrBadResponse
	}
	h := decodeHeaders([]byte(rest))
	clen, err := strconv.Atoi(h["content-length"])
	if err != nil {
		return ResponseMeta{}, ErrBadResponse
	}
	delete(h, "content-length")
	return ResponseMeta{Status: status, Header: h, BodySize: clen}, nil
}

// h1ServerConn serves HTTP/1.1 on one TLS connection.
type h1ServerConn struct {
	tls     *tlssim.Conn
	handler Handler
	acc     []byte
}

func newH1ServerConn(tls *tlssim.Conn, handler Handler) *h1ServerConn {
	c := &h1ServerConn{tls: tls, handler: handler}
	tls.SetDataFunc(c.onData)
	// Passive close: answer the client's FIN with our own so both
	// endpoints fully release ports and timers.
	tls.SetCloseFunc(func(err error) {
		if err == nil {
			tls.Close()
		}
	})
	return c
}

func (c *h1ServerConn) onData(p []byte) {
	c.acc = append(c.acc, p...)
	for {
		idx := strings.Index(string(c.acc), "\r\n\r\n")
		if idx < 0 {
			return
		}
		req, ok := parseH1Request(c.acc[:idx])
		c.acc = c.acc[idx+4:]
		if !ok {
			continue
		}
		ctx := &ServerContext{Req: req, Protocol: H1, ServerName: c.tls.ServerName()}
		c.handler(ctx, func(resp Response) {
			c.tls.Write(encodeH1Response(resp))
			if resp.BodySize > 0 {
				writeBody(c.tls, resp.BodySize)
			}
		})
	}
}
