package httpsim

import (
	"sort"
	"time"

	"h3cdn/internal/simnet"
	"h3cdn/internal/tcpsim"
	"h3cdn/internal/tlssim"
	"h3cdn/internal/trace"
)

func tcpsimConfig(o TCPOptions) tcpsim.Config {
	return tcpsim.Config{RTOInit: o.RTOInit, MaxRetries: o.MaxRetries, Recovery: o.Recovery}
}

type h2Pending struct {
	req *Request
	ev  RequestEvents

	meta     ResponseMeta
	gotMeta  bool
	bodyLeft int
}

// h2Client multiplexes requests as streams over one TLS/TCP connection.
type h2Client struct {
	sched       *simnet.Scheduler
	tls         *tlssim.Conn
	established bool
	hsDur       time.Duration
	sslDur      time.Duration
	resumed     bool
	closed      bool

	trace   *trace.Tracer
	traceID uint32
	pools   *Pools

	parser  blockParser
	streams map[uint32]*h2Pending
	nextID  uint32
	queue   []h2Pending
	dog     reqWatchdog
}

var _ ClientConn = (*h2Client)(nil)

// DialH2 opens an HTTP/2 connection to addr:port.
func DialH2(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, cfg DialConfig) ClientConn {
	c := &h2Client{
		sched:   host.Scheduler(),
		streams: make(map[uint32]*h2Pending),
		nextID:  1,
		trace:   cfg.Trace,
		pools:   cfg.Pools,
	}
	dialStart := c.sched.Now()
	dialTLS(host, addr, port, serverName, H2, cfg, func(conn *tlssim.Conn, err error) {
		if err != nil {
			c.fail(err)
			return
		}
		if c.closed {
			// The client gave up (watchdog or abort) while the handshake
			// was still running; release the late connection.
			conn.Abort()
			return
		}
		c.tls = conn
		// Handshake duration covers TCP + TLS, from the dial call; the
		// SSL portion is the TLS layer's own span (HAR "ssl").
		c.hsDur = c.sched.Now() - dialStart
		c.sslDur = conn.HandshakeDuration()
		c.traceID = conn.TraceID()
		c.resumed = conn.Resumed()
		conn.SetDataFunc(c.onData)
		conn.SetCloseFunc(c.onClose)
		c.established = true
		c.flush()
	}, func(conn *tlssim.Conn) { c.tls = conn })
	c.dog.init(c.sched, c.watchdogFire)
	return c
}

func (c *h2Client) Protocol() Protocol { return H2 }

func (c *h2Client) Established() bool { return c.established }

func (c *h2Client) HandshakeDuration() time.Duration { return c.hsDur }

func (c *h2Client) SSLDuration() time.Duration { return c.sslDur }

func (c *h2Client) TraceID() uint32 { return c.traceID }

func (c *h2Client) Resumed() bool { return c.resumed }

func (c *h2Client) InFlight() int { return len(c.streams) + len(c.queue) }

func (c *h2Client) Do(req *Request, ev RequestEvents) {
	if c.closed {
		if ev.OnError != nil {
			ev.OnError(ErrConnClosed)
		}
		return
	}
	if !c.established {
		c.queue = append(c.queue, h2Pending{req: req, ev: ev})
		c.dog.touch(c.InFlight())
		return
	}
	c.send(h2Pending{req: req, ev: ev})
	c.dog.touch(c.InFlight())
}

func (c *h2Client) flush() {
	q := c.queue
	c.queue = nil
	for _, p := range q {
		if c.closed {
			return
		}
		c.send(p)
	}
}

func (c *h2Client) send(p h2Pending) {
	id := c.nextID
	c.nextID += 2
	sp := c.pools.getH2Pending(p)
	c.streams[id] = sp
	c.trace.HTTPStreamOpen(c.sched.Now(), c.traceID, int64(id), p.req.Host, p.req.Path)
	writeBlock(c.pools.arena(), c.tls, blockHeadersReq, id, flagEndStream, c.pools.requestHeaderBlock(p.req))
	if sp.ev.OnSent != nil {
		sp.ev.OnSent()
	}
}

func (c *h2Client) onData(data []byte) {
	c.parse(data)
	if !c.closed {
		// Response bytes arrived: reset the silence budget, or disarm it
		// entirely if this delivery completed the last request.
		c.dog.touch(c.InFlight())
	}
}

func (c *h2Client) parse(data []byte) {
	for _, b := range c.parser.feed(data) {
		p, ok := c.streams[b.streamID]
		if !ok {
			continue
		}
		switch b.typ {
		case blockHeadersResp:
			meta, err := c.pools.parseResponseHeaderBlock(b.payload)
			if err != nil {
				c.fail(err)
				return
			}
			p.meta = meta
			p.gotMeta = true
			p.bodyLeft = meta.BodySize
			c.trace.HTTPHeaders(c.sched.Now(), c.traceID, int64(b.streamID), meta.Status, meta.BodySize)
			if p.ev.OnHeaders != nil {
				p.ev.OnHeaders(meta)
			}
			if p.bodyLeft == 0 && b.flags&flagEndStream != 0 {
				c.finish(b.streamID, p)
			}
		case blockData:
			p.bodyLeft -= len(b.payload)
			if p.bodyLeft <= 0 && b.flags&flagEndStream != 0 {
				c.finish(b.streamID, p)
			}
		}
		if c.closed {
			return
		}
	}
}

func (c *h2Client) finish(id uint32, p *h2Pending) {
	delete(c.streams, id)
	c.trace.HTTPStreamClose(c.sched.Now(), c.traceID, int64(id))
	if p.ev.OnComplete != nil {
		p.ev.OnComplete()
	}
	c.pools.putH2Pending(p)
}

func (c *h2Client) onClose(err error) {
	if err == nil {
		err = ErrConnClosed
	}
	c.fail(err)
}

// watchdogFire aborts a connection that has been silent for
// requestTimeout with requests outstanding. fail runs first so the
// retry fan-out sees ErrRequestTimeout rather than the transport's own
// error from the close callback.
func (c *h2Client) watchdogFire() {
	if c.closed {
		return
	}
	tls := c.tls
	c.fail(ErrRequestTimeout)
	if tls != nil {
		tls.Abort()
	}
}

func (c *h2Client) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	// Fail pending streams in id (send) order: map iteration would
	// scramble the error fan-out, and with it retry scheduling.
	ids := make([]uint32, 0, len(c.streams))
	for id := range c.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := c.streams[id]
		c.trace.HTTPStreamFail(c.sched.Now(), c.traceID, int64(id), err.Error())
		if p.ev.OnError != nil {
			p.ev.OnError(err)
		}
		c.pools.putH2Pending(p)
	}
	c.streams = make(map[uint32]*h2Pending)
	for _, p := range c.queue {
		if p.ev.OnError != nil {
			p.ev.OnError(err)
		}
	}
	c.queue = nil
}

func (c *h2Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	if c.tls != nil {
		c.tls.Close()
	}
}

func (c *h2Client) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	if c.tls != nil {
		c.tls.Abort()
	}
}

// --- server side ---

type h2Response struct {
	id        uint32
	remaining int
}

// h2SendWatermark bounds the unsent transport backlog the server keeps
// committed: response bodies are pumped in bodyChunkSize frames only
// while the TCP send buffer holds less than this, so a later response's
// HEADERS frame never queues behind megabytes of an earlier body —
// emulating HTTP/2 flow-controlled frame scheduling.
const h2SendWatermark = 32 * 1024

// h2ServerConn serves HTTP/2 on one TLS connection. Active response
// bodies are interleaved round-robin in bodyChunkSize DATA frames under
// the transport backpressure watermark.
type h2ServerConn struct {
	tls     *tlssim.Conn
	handler Handler
	pools   *Pools
	parser  blockParser
	active  []*h2Response
	pumping bool
	// ctx is reused across this connection's requests: dispatch is
	// synchronous from onData and handlers copy what they need before
	// scheduling a delayed respond, so the context never outlives the
	// handler call.
	ctx ServerContext
}

func newH2ServerConn(tls *tlssim.Conn, handler Handler, pools *Pools) *h2ServerConn {
	c := &h2ServerConn{tls: tls, handler: handler, pools: pools}
	tls.SetDataFunc(c.onData)
	// Passive close: answer the client's FIN with our own so both
	// endpoints fully release ports and timers.
	tls.SetCloseFunc(func(err error) {
		if err == nil {
			tls.Close()
		}
	})
	tls.SetDrainFunc(h2SendWatermark, c.pump)
	return c
}

func (c *h2ServerConn) onData(data []byte) {
	for _, b := range c.parser.feed(data) {
		if b.typ != blockHeadersReq {
			continue
		}
		id := b.streamID
		req := c.pools.parseRequestHeaderBlock(b.payload)
		c.ctx = ServerContext{Req: req, Protocol: H2, ServerName: c.tls.ServerName()}
		c.handler(&c.ctx, func(resp Response) { c.respond(id, resp) })
	}
}

func (c *h2ServerConn) respond(id uint32, resp Response) {
	flags := uint8(0)
	if resp.BodySize == 0 {
		flags = flagEndStream
	}
	writeBlock(c.pools.arena(), c.tls, blockHeadersResp, id, flags, c.pools.responseHeaderBlock(resp))
	if resp.BodySize > 0 {
		c.active = append(c.active, c.pools.getH2Response(id, resp.BodySize))
		c.pump()
	}
}

// pump drains active response bodies round-robin into the TLS stream
// while the transport backlog stays under the watermark; transmission
// progress re-invokes it via the drain callback.
func (c *h2ServerConn) pump() {
	if c.pumping {
		return
	}
	c.pumping = true
	defer func() { c.pumping = false }()
	for len(c.active) > 0 && c.tls.UnsentBytes() < h2SendWatermark {
		next := c.active[:0]
		for _, r := range c.active {
			n := r.remaining
			if n > bodyChunkSize {
				n = bodyChunkSize
			}
			r.remaining -= n
			flags := uint8(0)
			if r.remaining == 0 {
				flags = flagEndStream
			}
			writeBodyBlock(c.pools.arena(), c.tls, r.id, flags, n)
			if r.remaining > 0 {
				next = append(next, r)
			} else {
				c.pools.putH2Response(r)
			}
		}
		c.active = next
	}
}
