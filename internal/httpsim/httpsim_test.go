package httpsim

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"h3cdn/internal/quicsim"
	"h3cdn/internal/seqrand"
	"h3cdn/internal/simnet"
	"h3cdn/internal/tlssim"
)

// sizeHandler serves bodies whose size is encoded in the path: "/b/<n>".
// It tags responses with a synthetic CDN header so header passage is
// testable.
func sizeHandler(sched *simnet.Scheduler, wait time.Duration) Handler {
	return func(ctx *ServerContext, respond func(Response)) {
		n := 0
		if i := strings.LastIndex(ctx.Req.Path, "/"); i >= 0 {
			n, _ = strconv.Atoi(ctx.Req.Path[i+1:])
		}
		resp := Response{
			Status:   200,
			Header:   map[string]string{"server": "simcdn", "x-proto": ctx.Protocol.String()},
			BodySize: n,
		}
		if wait == 0 {
			respond(resp)
			return
		}
		sched.After(wait, func() { respond(resp) })
	}
}

type hWorld struct {
	sched  *simnet.Scheduler
	net    *simnet.Network
	client *simnet.Host
	server *simnet.Host
	tlsS   *tlssim.ServerSessionState
	quicS  *quicsim.ServerSessions
	srv    *Server
}

func newHWorld(t *testing.T, delay time.Duration, bps, loss float64, wait time.Duration) *hWorld {
	t.Helper()
	sched := &simnet.Scheduler{MaxEvents: 10_000_000}
	pf := func(src, dst simnet.Addr) simnet.PathProps {
		return simnet.PathProps{Delay: delay, BandwidthBps: bps, LossRate: loss}
	}
	n := simnet.NewNetwork(sched, pf, seqrand.New(31))
	w := &hWorld{
		sched:  sched,
		net:    n,
		client: n.AddHost("client"),
		server: n.AddHost("edge.example"),
		tlsS:   tlssim.NewServerSessionState(),
		quicS:  quicsim.NewServerSessions(),
	}
	srv, err := StartServer(w.server, ServerConfig{
		Handler:      sizeHandler(sched, wait),
		TLSSessions:  w.tlsS,
		QUICSessions: w.quicS,
		EnableH3:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.srv = srv
	return w
}

func (w *hWorld) run(t *testing.T) {
	t.Helper()
	if _, err := w.sched.Run(); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

func (w *hWorld) dial(proto Protocol) ClientConn {
	switch proto {
	case H1:
		return DialH1(w.client, "edge.example", TCPPort, "edge.example", DialConfig{})
	case H2:
		return DialH2(w.client, "edge.example", TCPPort, "edge.example", DialConfig{})
	default:
		return DialH3(w.client, "edge.example", QUICPort, "edge.example", H3DialConfig{})
	}
}

type timing struct {
	sent, firstByte, done time.Duration
	meta                  ResponseMeta
	err                   error
}

func (w *hWorld) get(conn ClientConn, host, path string) *timing {
	tm := &timing{}
	conn.Do(&Request{Host: host, Path: path}, RequestEvents{
		OnSent:     func() { tm.sent = w.sched.Now() },
		OnHeaders:  func(m ResponseMeta) { tm.firstByte = w.sched.Now(); tm.meta = m },
		OnComplete: func() { tm.done = w.sched.Now() },
		OnError:    func(err error) { tm.err = err },
	})
	return tm
}

func TestRequestResponseAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{H1, H2, H3} {
		w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
		conn := w.dial(proto)
		tm := w.get(conn, "edge.example", "/b/5000")
		w.run(t)
		if tm.err != nil {
			t.Fatalf("%v: error %v", proto, tm.err)
		}
		if tm.done == 0 || tm.meta.Status != 200 || tm.meta.BodySize != 5000 {
			t.Fatalf("%v: timing=%+v meta=%+v", proto, tm, tm.meta)
		}
		if tm.meta.Header["server"] != "simcdn" {
			t.Fatalf("%v: headers not passed through: %v", proto, tm.meta.Header)
		}
		if tm.meta.Header["x-proto"] != proto.String() {
			t.Fatalf("%v: server saw protocol %q", proto, tm.meta.Header["x-proto"])
		}
	}
}

func TestFirstByteLatencyByProtocol(t *testing.T) {
	// 25ms one-way => RTT 50ms; no bandwidth or server wait.
	// H2 (TLS 1.3): TCP 1 RTT + TLS 1 RTT + req/resp 1 RTT = 150ms.
	// H3: QUIC 1 RTT + req/resp 1 RTT = 100ms.
	firstByte := func(proto Protocol) time.Duration {
		w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
		conn := w.dial(proto)
		tm := w.get(conn, "edge.example", "/b/100")
		w.run(t)
		if tm.err != nil {
			t.Fatalf("%v: %v", proto, tm.err)
		}
		return tm.firstByte
	}
	if got := firstByte(H2); got != 150*time.Millisecond {
		t.Fatalf("H2 first byte = %v, want 150ms", got)
	}
	if got := firstByte(H3); got != 100*time.Millisecond {
		t.Fatalf("H3 first byte = %v, want 100ms", got)
	}
	if got := firstByte(H1); got != 150*time.Millisecond {
		t.Fatalf("H1 first byte = %v, want 150ms", got)
	}
}

func TestH3ZeroRTTSecondConnection(t *testing.T) {
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
	tokens := quicsim.NewTokenStore()
	c1 := DialH3(w.client, "edge.example", QUICPort, "edge.example", H3DialConfig{Tokens: tokens})
	w.get(c1, "edge.example", "/b/100")
	w.run(t)
	c1.Close()
	w.run(t)

	base := w.sched.Now()
	c2 := DialH3(w.client, "edge.example", QUICPort, "edge.example", H3DialConfig{Tokens: tokens, EnableZeroRTT: true})
	tm := w.get(c2, "edge.example", "/b/100")
	w.run(t)
	if tm.err != nil {
		t.Fatal(tm.err)
	}
	if !c2.Resumed() {
		t.Fatal("second H3 connection not resumed")
	}
	if c2.HandshakeDuration() != 0 {
		t.Fatalf("0-RTT handshake duration = %v", c2.HandshakeDuration())
	}
	// First byte after exactly one RTT: request rode the first flight.
	if got := tm.firstByte - base; got != 50*time.Millisecond {
		t.Fatalf("0-RTT first byte after %v, want 50ms", got)
	}
}

func TestH2TLSResumptionEarlyData(t *testing.T) {
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
	tickets := tlssim.NewTicketStore()
	cfg := DialConfig{TLSTickets: tickets, EnableEarlyData: true}
	c1 := DialH2(w.client, "edge.example", TCPPort, "edge.example", cfg)
	w.get(c1, "edge.example", "/b/100")
	w.run(t)
	c1.Close()
	w.run(t)

	base := w.sched.Now()
	c2 := DialH2(w.client, "edge.example", TCPPort, "edge.example", cfg)
	tm := w.get(c2, "edge.example", "/b/100")
	w.run(t)
	if tm.err != nil {
		t.Fatal(tm.err)
	}
	if !c2.Resumed() {
		t.Fatal("second H2 connection not resumed")
	}
	// TCP 1 RTT + 0-RTT TLS + req/resp 1 RTT = 100ms: H2 resumption
	// still pays the TCP handshake (the paper's §VI-D point).
	if got := tm.firstByte - base; got != 100*time.Millisecond {
		t.Fatalf("resumed H2 first byte after %v, want 100ms", got)
	}
}

func TestServerWaitShowsUpInFirstByte(t *testing.T) {
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 30*time.Millisecond)
	conn := w.dial(H3)
	tm := w.get(conn, "edge.example", "/b/100")
	w.run(t)
	if tm.err != nil {
		t.Fatal(tm.err)
	}
	if got := tm.firstByte; got != 130*time.Millisecond {
		t.Fatalf("first byte = %v, want 130ms (100 network + 30 server wait)", got)
	}
}

func TestH1SerializesRequests(t *testing.T) {
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
	conn := w.dial(H1)
	a := w.get(conn, "edge.example", "/b/1000")
	b := w.get(conn, "edge.example", "/b/1000")
	w.run(t)
	if a.err != nil || b.err != nil {
		t.Fatalf("errors: %v %v", a.err, b.err)
	}
	if b.sent < a.done {
		t.Fatalf("H1 pipelined: b sent at %v before a done at %v", b.sent, a.done)
	}
}

func TestH2MultiplexesRequests(t *testing.T) {
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
	conn := w.dial(H2)
	a := w.get(conn, "edge.example", "/b/1000")
	b := w.get(conn, "edge.example", "/b/1000")
	w.run(t)
	if a.err != nil || b.err != nil {
		t.Fatalf("errors: %v %v", a.err, b.err)
	}
	if a.sent != b.sent {
		t.Fatalf("H2 did not multiplex: sent at %v and %v", a.sent, b.sent)
	}
	if a.done != b.done {
		t.Fatalf("equal-size responses finished apart: %v vs %v", a.done, b.done)
	}
}

func TestManyRequestsAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{H1, H2, H3} {
		w := newHWorld(t, 10*time.Millisecond, 50e6, 0.01, time.Millisecond)
		conn := w.dial(proto)
		const reqs = 30
		tms := make([]*timing, reqs)
		for i := 0; i < reqs; i++ {
			tms[i] = w.get(conn, "edge.example", "/b/"+strconv.Itoa(2000+i*100))
		}
		w.run(t)
		for i, tm := range tms {
			if tm.err != nil {
				t.Fatalf("%v req %d: %v", proto, i, tm.err)
			}
			if tm.done == 0 {
				t.Fatalf("%v req %d never completed", proto, i)
			}
			if tm.meta.BodySize != 2000+i*100 {
				t.Fatalf("%v req %d: body %d", proto, i, tm.meta.BodySize)
			}
		}
	}
}

// TestH2HoLBlockingVsH3 is the core protocol contrast of the paper: on
// H2, a lost TCP segment carrying response A delays the logically
// unrelated response B; on H3, B is unaffected.
func TestH2HoLBlockingVsH3(t *testing.T) {
	bDone := func(proto Protocol, drop bool) time.Duration {
		w := newHWorld(t, 20*time.Millisecond, 0, 0, 0)
		dropped := false
		if drop {
			cum := 0
			w.net.SetFilter(func(pkt simnet.Packet) bool {
				if pkt.Src != "edge.example" {
					return true
				}
				cum += pkt.Size
				// Drop the first large server packet past the
				// ~3KB handshake flight: response A's first
				// body-bearing segment/packet.
				if !dropped && pkt.Size > 1000 && cum > 4200 {
					dropped = true
					return false
				}
				return true
			})
		}
		conn := w.dial(proto)
		w.get(conn, "edge.example", "/b/60000")    // response A: large
		b := w.get(conn, "edge.example", "/b/200") // response B: small
		w.run(t)
		if b.err != nil {
			t.Fatalf("%v: %v", proto, b.err)
		}
		if !drop && !dropped {
			_ = dropped
		}
		return b.done
	}

	h2Clean := bDone(H2, false)
	h2Drop := bDone(H2, true)
	if h2Drop <= h2Clean {
		t.Fatalf("H2: dropping A's segment did not delay B (clean=%v drop=%v); expected HoL blocking", h2Clean, h2Drop)
	}

	h3Clean := bDone(H3, false)
	h3Drop := bDone(H3, true)
	if h3Drop != h3Clean {
		t.Fatalf("H3: B delayed by A's loss (clean=%v drop=%v); streams not independent", h3Clean, h3Drop)
	}
}

func TestConnAbortFailsInFlight(t *testing.T) {
	for _, proto := range []Protocol{H2, H3} {
		w := newHWorld(t, 25*time.Millisecond, 0, 0, 200*time.Millisecond)
		conn := w.dial(proto)
		tm := w.get(conn, "edge.example", "/b/100")
		w.sched.After(120*time.Millisecond, conn.Abort)
		w.run(t)
		if tm.done != 0 {
			t.Fatalf("%v: completed despite abort", proto)
		}
	}
}

func TestInFlightAccounting(t *testing.T) {
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
	conn := w.dial(H2)
	w.get(conn, "edge.example", "/b/100")
	w.get(conn, "edge.example", "/b/100")
	if conn.InFlight() != 2 {
		t.Fatalf("InFlight = %d before run, want 2", conn.InFlight())
	}
	w.run(t)
	if conn.InFlight() != 0 {
		t.Fatalf("InFlight = %d after run, want 0", conn.InFlight())
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := map[string]string{"server": "cloudflare", "via": "1.1 varnish", "x-cache": "HIT"}
	got := decodeHeaders(encodeHeaders(h))
	if len(got) != len(h) {
		t.Fatalf("round trip: %v", got)
	}
	for k, v := range h {
		if got[k] != v {
			t.Fatalf("key %q: %q != %q", k, got[k], v)
		}
	}
}

func TestBlockParserFragmentation(t *testing.T) {
	full := encodeBlock(blockData, 7, flagEndStream, []byte("hello world"))
	var p blockParser
	var got []block
	// Feed one byte at a time.
	for _, c := range full {
		got = append(got, p.feed([]byte{c})...)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d blocks", len(got))
	}
	b := got[0]
	if b.typ != blockData || b.streamID != 7 || b.flags != flagEndStream || string(b.payload) != "hello world" {
		t.Fatalf("block = %+v", b)
	}
}

func TestProtocolStrings(t *testing.T) {
	if H1.String() != "http/1.1" || H2.String() != "h2" || H3.String() != "h3" {
		t.Fatal("protocol strings wrong")
	}
	if Protocol(9).String() != "http/?" {
		t.Fatal("unknown protocol string wrong")
	}
}

func TestRequestHeaderBlockRoundTrip(t *testing.T) {
	req := &Request{Host: "cdn.example", Path: "/a/b.js", Header: map[string]string{"accept": "*/*"}}
	got := parseRequestHeaderBlock(requestHeaderBlock(req))
	if got.Host != req.Host || got.Path != req.Path || got.Header["accept"] != "*/*" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestH2OverTLS12IsThreeRTTs(t *testing.T) {
	// The paper's baseline suite: H2 + TLS 1.2 costs 3 RTTs before the
	// request (TCP 1 + TLS 2), so first byte lands at 4 RTTs = 200ms.
	w := newHWorld(t, 25*time.Millisecond, 0, 0, 0)
	conn := DialH2(w.client, "edge.example", TCPPort, "edge.example", DialConfig{TLSVersion: tlssim.TLS12})
	tm := w.get(conn, "edge.example", "/b/100")
	w.run(t)
	if tm.err != nil {
		t.Fatal(tm.err)
	}
	if tm.firstByte != 200*time.Millisecond {
		t.Fatalf("TLS1.2 H2 first byte = %v, want 200ms", tm.firstByte)
	}
}
