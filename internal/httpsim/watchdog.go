package httpsim

import (
	"errors"
	"time"

	"h3cdn/internal/simnet"
)

// ErrRequestTimeout reports a client connection that went silent with
// requests outstanding.
var ErrRequestTimeout = errors.New("httpsim: request timed out")

// requestTimeout is the client-side silence budget while requests are in
// flight: 2x the QUIC transport's ProbeTimeout floor (15s), so transport
// recovery always gets a full probe episode before the HTTP layer gives
// up. It exists for the gap transport timers cannot cover: a client with
// every sent byte acknowledged has nothing in flight, arms no PTO/RTO,
// and — if the server dies and its CONNECTION_CLOSE/RST is lost — would
// otherwise wait forever for response data that is never coming.
const requestTimeout = 30 * time.Second

// reqWatchdog tracks request-level liveness for one client connection.
// The owner calls touch with its in-flight count whenever that count
// changes or response data arrives: outstanding requests (re)arm the
// timer, idleness disarms it. An idle connection therefore never holds a
// live scheduler event (which would stretch virtual time past the end of
// a visit), and a stalled one fires exactly once after requestTimeout of
// silence.
type reqWatchdog struct {
	timer *simnet.Timer
}

func (w *reqWatchdog) init(sched *simnet.Scheduler, onFire func()) {
	w.timer = sched.NewTimer(onFire)
}

func (w *reqWatchdog) touch(inFlight int) {
	if w.timer == nil {
		return
	}
	if inFlight > 0 {
		w.timer.Reset(requestTimeout)
	} else {
		w.timer.Stop()
	}
}

func (w *reqWatchdog) release() {
	if w.timer != nil {
		w.timer.Release()
		w.timer = nil
	}
}
