package httpsim

import (
	"h3cdn/internal/bufpool"
	"h3cdn/internal/quicsim"
	"h3cdn/internal/tcpsim"
)

// maxPooledAcc caps the parser accumulator capacity a pooled stream
// state keeps across visits, so one heavy-tailed body does not pin its
// high-water buffer in the pool forever.
const maxPooledAcc = 4 << 20

// Pools aggregates every per-universe allocation arena the HTTP stack
// and its transports use. One simulation universe owns one Pools; all
// of its endpoints run on the universe's single scheduler goroutine, so
// reuse needs no locking, and — unlike process-global sync.Pools — the
// free lists survive garbage-collection cycles. A warm shard replays
// each visit out of the same allocation footprint.
//
// A nil *Pools is valid everywhere it is accepted: every accessor falls
// back to plain allocation (and the process-global bufpool), preserving
// standalone behavior in tests.
//
// Callers must invoke Rewind at visit boundaries only (scheduler
// drained, all connections closed); see DESIGN.md §4.17.
type Pools struct {
	// TCP, QUIC and Arena are the transport-layer arenas, handed to
	// endpoints by dialTLS/DialH3/StartServer.
	TCP   tcpsim.Pools
	QUIC  quicsim.Pools
	Arena bufpool.Arena

	// Canonical decode caches. Parsed requests and response header maps
	// are keyed by their wire bytes and shared by every consumer: the
	// corpus re-sends identical header blocks every visit, and consumers
	// (handlers, HAR entries) only ever read them. Never mutate a
	// Request or header map obtained from these caches.
	reqCache  map[string]*Request
	respCache map[string]map[string]string

	hdrBuf      []byte   // header-block assembly scratch
	keyBuf      []byte   // respCache key assembly scratch
	sortScratch []string // sorted header keys scratch

	h2Pendings []*h2Pending
	h2Resps    []*h2Response

	h3cliFree []*h3Stream
	h3cliLive []*h3Stream
	h3srvFree []*h3SrvStream
	h3srvLive []*h3SrvStream
}

// arena returns the buffer arena, nil-safe (a nil *bufpool.Arena falls
// back to the global pool inside bufpool).
func (pl *Pools) arena() *bufpool.Arena {
	if pl == nil {
		return nil
	}
	return &pl.Arena
}

// Rewind resets every per-visit pool at a visit boundary and returns
// the buffer arena's outstanding-buffer count (non-zero means a Get/Put
// leak). Only call once the scheduler has drained and the browser has
// closed every connection: pooled stream states may be touched by
// scheduled callbacks until then.
func (pl *Pools) Rewind() int64 {
	if pl == nil {
		return 0
	}
	pl.TCP.Rewind()
	pl.QUIC.Rewind()
	for _, st := range pl.h3cliLive {
		st.reset()
	}
	pl.h3cliFree = append(pl.h3cliFree, pl.h3cliLive...)
	clearH3Streams(pl.h3cliLive)
	pl.h3cliLive = pl.h3cliLive[:0]
	for _, ss := range pl.h3srvLive {
		ss.reset()
	}
	pl.h3srvFree = append(pl.h3srvFree, pl.h3srvLive...)
	clearH3SrvStreams(pl.h3srvLive)
	pl.h3srvLive = pl.h3srvLive[:0]
	return pl.Arena.Rewind()
}

func clearH3Streams(s []*h3Stream) {
	for i := range s {
		s[i] = nil
	}
}

func clearH3SrvStreams(s []*h3SrvStream) {
	for i := range s {
		s[i] = nil
	}
}

// --- per-request record pools ---

func (pl *Pools) getH2Pending(p h2Pending) *h2Pending {
	if pl != nil {
		if n := len(pl.h2Pendings); n > 0 {
			sp := pl.h2Pendings[n-1]
			pl.h2Pendings[n-1] = nil
			pl.h2Pendings = pl.h2Pendings[:n-1]
			*sp = p
			return sp
		}
	}
	sp := p
	return &sp
}

// putH2Pending recycles immediately: once OnComplete/OnError has fired
// the record is unreachable (h2Client holds the only reference, in the
// streams map, and has already deleted it).
func (pl *Pools) putH2Pending(p *h2Pending) {
	if pl == nil {
		return
	}
	*p = h2Pending{}
	pl.h2Pendings = append(pl.h2Pendings, p)
}

func (pl *Pools) getH2Response(id uint32, remaining int) *h2Response {
	if pl != nil {
		if n := len(pl.h2Resps); n > 0 {
			r := pl.h2Resps[n-1]
			pl.h2Resps[n-1] = nil
			pl.h2Resps = pl.h2Resps[:n-1]
			r.id, r.remaining = id, remaining
			return r
		}
	}
	return &h2Response{id: id, remaining: remaining}
}

func (pl *Pools) putH2Response(r *h2Response) {
	if pl == nil {
		return
	}
	pl.h2Resps = append(pl.h2Resps, r)
}

// getH3Stream hands out a client stream state. Pooled states live until
// the visit-boundary Rewind rather than being recycled on completion: a
// late transport event (duplicate retransmission after finish) may
// still invoke the stream's data callback, which must find the state it
// was bound to, not a reused one.
func (pl *Pools) getH3Stream(c *h3Client, req *Request, ev RequestEvents) *h3Stream {
	var st *h3Stream
	if pl != nil {
		if n := len(pl.h3cliFree); n > 0 {
			st = pl.h3cliFree[n-1]
			pl.h3cliFree[n-1] = nil
			pl.h3cliFree = pl.h3cliFree[:n-1]
		}
	}
	if st == nil {
		st = &h3Stream{}
		// Bound once per struct lifetime; reads st.c at call time so the
		// closure survives pooling.
		sp := st
		st.dataFn = func(data []byte) { sp.c.onStreamData(sp, data) }
	}
	st.c = c
	st.req = req
	st.ev = ev
	if pl != nil {
		pl.h3cliLive = append(pl.h3cliLive, st)
	}
	return st
}

// getH3SrvStream hands out a server stream state bound to one QUIC
// stream; same live-until-Rewind discipline as getH3Stream.
func (pl *Pools) getH3SrvStream(srv *h3Server, st *quicsim.Stream) *h3SrvStream {
	var ss *h3SrvStream
	if pl != nil {
		if n := len(pl.h3srvFree); n > 0 {
			ss = pl.h3srvFree[n-1]
			pl.h3srvFree[n-1] = nil
			pl.h3srvFree = pl.h3srvFree[:n-1]
		}
	}
	if ss == nil {
		ss = &h3SrvStream{}
		sp := ss
		ss.dataFn = func(data []byte) { sp.onData(data) }
		ss.respondFn = func(resp Response) { sp.respond(resp) }
	}
	ss.srv = srv
	ss.st = st
	if pl != nil {
		pl.h3srvLive = append(pl.h3srvLive, ss)
	}
	return ss
}
