package httpsim

import (
	"time"

	"h3cdn/internal/quicsim"
	"h3cdn/internal/simnet"
	"h3cdn/internal/trace"
)

// H3DialConfig carries QUIC-specific client knobs.
type H3DialConfig struct {
	// Tokens enables QUIC session resumption.
	Tokens *quicsim.TokenStore
	// EnableZeroRTT sends 0-RTT requests on resumed connections.
	EnableZeroRTT bool
	// QUIC tunes the transport.
	QUIC quicsim.Config
	// HandshakeCPU models client crypto compute time.
	HandshakeCPU time.Duration
	// Trace, when non-nil, receives transport- and HTTP-level events
	// for this connection. Nil-safe: every emit is a no-op when nil.
	Trace *trace.Tracer
}

type h3Stream struct {
	req *Request
	ev  RequestEvents

	parser   blockParser
	id       int64
	gotMeta  bool
	bodyLeft int
	done     bool
}

// h3Client maps each request to one QUIC stream.
type h3Client struct {
	sched       *simnet.Scheduler
	conn        *quicsim.Conn
	established bool
	closed      bool
	trace       *trace.Tracer
	queue       []h3Stream
	// actives keeps send order: failure fan-out must visit streams
	// deterministically (map iteration would scramble retry scheduling).
	actives []*h3Stream
}

var _ ClientConn = (*h3Client)(nil)

// DialH3 opens an HTTP/3 connection to addr:port (the QUIC port).
func DialH3(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, cfg H3DialConfig) ClientConn {
	c := &h3Client{sched: host.Scheduler(), trace: cfg.Trace}
	qcfg := cfg.QUIC
	qcfg.Trace = cfg.Trace
	c.conn = quicsim.Dial(host, addr, port, quicsim.ClientConfig{
		Config:        qcfg,
		ServerName:    serverName,
		Tokens:        cfg.Tokens,
		EnableZeroRTT: cfg.EnableZeroRTT,
		HandshakeCPU:  cfg.HandshakeCPU,
	}, func(*quicsim.Conn) {
		c.established = true
		c.flush()
	})
	c.conn.SetCloseFunc(c.onClose)
	return c
}

func (c *h3Client) Protocol() Protocol { return H3 }

func (c *h3Client) Established() bool { return c.established }

func (c *h3Client) HandshakeDuration() time.Duration { return c.conn.HandshakeDuration() }

// SSLDuration equals HandshakeDuration: QUIC's handshake is integrated
// transport+crypto, attributed entirely to SSL (Chrome's convention).
func (c *h3Client) SSLDuration() time.Duration { return c.conn.HandshakeDuration() }

func (c *h3Client) TraceID() uint32 { return c.conn.TraceID() }

func (c *h3Client) Resumed() bool { return c.conn.Resumed() }

func (c *h3Client) InFlight() int { return len(c.actives) + len(c.queue) }

func (c *h3Client) Do(req *Request, ev RequestEvents) {
	if c.closed {
		if ev.OnError != nil {
			ev.OnError(ErrConnClosed)
		}
		return
	}
	if !c.established {
		c.queue = append(c.queue, h3Stream{req: req, ev: ev})
		return
	}
	c.send(h3Stream{req: req, ev: ev})
}

func (c *h3Client) flush() {
	q := c.queue
	c.queue = nil
	for _, p := range q {
		if c.closed {
			return
		}
		c.send(p)
	}
}

func (c *h3Client) send(p h3Stream) {
	st := &p
	c.actives = append(c.actives, st)
	s := c.conn.OpenStream()
	st.id = int64(s.ID())
	s.SetDataFunc(func(data []byte) { c.onStreamData(st, data) })
	c.trace.HTTPStreamOpen(c.sched.Now(), c.conn.TraceID(), st.id, p.req.Host, p.req.Path)
	writeBlock(s, blockHeadersReq, 0, flagEndStream, requestHeaderBlock(p.req))
	s.CloseWrite()
	if st.ev.OnSent != nil {
		st.ev.OnSent()
	}
}

func (c *h3Client) onStreamData(st *h3Stream, data []byte) {
	if st.done || c.closed {
		return
	}
	for _, b := range st.parser.feed(data) {
		switch b.typ {
		case blockHeadersResp:
			meta, err := parseResponseHeaderBlock(b.payload)
			if err != nil {
				c.fail(err)
				return
			}
			st.gotMeta = true
			st.bodyLeft = meta.BodySize
			c.trace.HTTPHeaders(c.sched.Now(), c.conn.TraceID(), st.id, meta.Status, meta.BodySize)
			if st.ev.OnHeaders != nil {
				st.ev.OnHeaders(meta)
			}
			if st.bodyLeft == 0 {
				c.finish(st)
				return
			}
		case blockData:
			st.bodyLeft -= len(b.payload)
			if st.gotMeta && st.bodyLeft <= 0 {
				c.finish(st)
				return
			}
		}
	}
}

func (c *h3Client) finish(st *h3Stream) {
	if st.done {
		return
	}
	st.done = true
	for i, a := range c.actives {
		if a == st {
			c.actives = append(c.actives[:i], c.actives[i+1:]...)
			break
		}
	}
	c.trace.HTTPStreamClose(c.sched.Now(), c.conn.TraceID(), st.id)
	if st.ev.OnComplete != nil {
		st.ev.OnComplete()
	}
}

func (c *h3Client) onClose(err error) {
	if err == nil {
		err = ErrConnClosed
	}
	c.fail(err)
}

func (c *h3Client) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	for _, p := range c.queue {
		if p.ev.OnError != nil {
			p.ev.OnError(err)
		}
	}
	c.queue = nil
	for _, st := range c.actives {
		st.done = true
		c.trace.HTTPStreamFail(c.sched.Now(), c.conn.TraceID(), st.id, err.Error())
		if st.ev.OnError != nil {
			st.ev.OnError(err)
		}
	}
	c.actives = nil
}

func (c *h3Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.conn.Close()
}

func (c *h3Client) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.conn.Abort()
}

// --- server side ---

// h3Server handles one QUIC connection's request streams.
type h3Server struct {
	conn    *quicsim.Conn
	handler Handler
}

func newH3Server(conn *quicsim.Conn, handler Handler) *h3Server {
	s := &h3Server{conn: conn, handler: handler}
	conn.SetStreamFunc(s.onStream)
	conn.SetCloseFunc(func(error) {})
	return s
}

func (s *h3Server) onStream(st *quicsim.Stream) {
	var parser blockParser
	st.SetDataFunc(func(data []byte) {
		for _, b := range parser.feed(data) {
			if b.typ != blockHeadersReq {
				continue
			}
			req := parseRequestHeaderBlock(b.payload)
			ctx := &ServerContext{Req: req, Protocol: H3, ServerName: s.conn.ServerName()}
			s.handler(ctx, func(resp Response) { s.respond(st, resp) })
		}
	})
}

func (s *h3Server) respond(st *quicsim.Stream, resp Response) {
	writeBlock(st, blockHeadersResp, 0, 0, responseHeaderBlock(resp))
	for left := resp.BodySize; left > 0; {
		n := left
		if n > bodyChunkSize {
			n = bodyChunkSize
		}
		left -= n
		writeBodyBlock(st, 0, 0, n)
	}
	st.CloseWrite()
}
