package httpsim

import (
	"time"

	"h3cdn/internal/quicsim"
	"h3cdn/internal/simnet"
	"h3cdn/internal/trace"
)

// H3DialConfig carries QUIC-specific client knobs.
type H3DialConfig struct {
	// Tokens enables QUIC session resumption.
	Tokens *quicsim.TokenStore
	// EnableZeroRTT sends 0-RTT requests on resumed connections.
	EnableZeroRTT bool
	// QUIC tunes the transport.
	QUIC quicsim.Config
	// HandshakeCPU models client crypto compute time.
	HandshakeCPU time.Duration
	// Pools, when non-nil, supplies the universe's shared allocation
	// arenas (QUIC records, buffers, stream states, header caches).
	Pools *Pools
	// Trace, when non-nil, receives transport- and HTTP-level events
	// for this connection. Nil-safe: every emit is a no-op when nil.
	Trace *trace.Tracer
}

// h3Stream is the client-side per-request state. Instances are pooled
// per universe (see Pools.getH3Stream) and stay live until the
// visit-boundary Rewind; dataFn is bound once per struct lifetime.
type h3Stream struct {
	c   *h3Client
	req *Request
	ev  RequestEvents

	parser   blockParser
	dataFn   func([]byte)
	id       int64
	gotMeta  bool
	bodyLeft int
	done     bool
}

// reset clears per-request state for pooling, keeping the parser's
// capped buffers and the bound data callback.
func (st *h3Stream) reset() {
	st.parser.rewind()
	parser, dataFn := st.parser, st.dataFn
	*st = h3Stream{parser: parser, dataFn: dataFn}
}

// h3Client maps each request to one QUIC stream.
type h3Client struct {
	sched       *simnet.Scheduler
	conn        *quicsim.Conn
	pools       *Pools
	established bool
	closed      bool
	trace       *trace.Tracer
	queue       []*h3Stream
	// actives keeps send order: failure fan-out must visit streams
	// deterministically (map iteration would scramble retry scheduling).
	actives []*h3Stream
	dog     reqWatchdog
}

var _ ClientConn = (*h3Client)(nil)

// DialH3 opens an HTTP/3 connection to addr:port (the QUIC port).
func DialH3(host *simnet.Host, addr simnet.Addr, port uint16, serverName string, cfg H3DialConfig) ClientConn {
	c := &h3Client{sched: host.Scheduler(), trace: cfg.Trace, pools: cfg.Pools}
	qcfg := cfg.QUIC
	qcfg.Trace = cfg.Trace
	if qcfg.Pools == nil && cfg.Pools != nil {
		qcfg.Pools = &cfg.Pools.QUIC
	}
	c.conn = quicsim.Dial(host, addr, port, quicsim.ClientConfig{
		Config:        qcfg,
		ServerName:    serverName,
		Tokens:        cfg.Tokens,
		EnableZeroRTT: cfg.EnableZeroRTT,
		HandshakeCPU:  cfg.HandshakeCPU,
	}, func(*quicsim.Conn) {
		c.established = true
		c.flush()
	})
	c.conn.SetCloseFunc(c.onClose)
	c.dog.init(c.sched, c.watchdogFire)
	return c
}

func (c *h3Client) Protocol() Protocol { return H3 }

func (c *h3Client) Established() bool { return c.established }

func (c *h3Client) HandshakeDuration() time.Duration { return c.conn.HandshakeDuration() }

// SSLDuration equals HandshakeDuration: QUIC's handshake is integrated
// transport+crypto, attributed entirely to SSL (Chrome's convention).
func (c *h3Client) SSLDuration() time.Duration { return c.conn.HandshakeDuration() }

func (c *h3Client) TraceID() uint32 { return c.conn.TraceID() }

func (c *h3Client) Resumed() bool { return c.conn.Resumed() }

func (c *h3Client) InFlight() int { return len(c.actives) + len(c.queue) }

func (c *h3Client) Do(req *Request, ev RequestEvents) {
	if c.closed {
		if ev.OnError != nil {
			ev.OnError(ErrConnClosed)
		}
		return
	}
	st := c.pools.getH3Stream(c, req, ev)
	if !c.established {
		c.queue = append(c.queue, st)
		c.dog.touch(c.InFlight())
		return
	}
	c.send(st)
	c.dog.touch(c.InFlight())
}

func (c *h3Client) flush() {
	q := c.queue
	c.queue = nil
	for _, st := range q {
		if c.closed {
			return
		}
		c.send(st)
	}
}

func (c *h3Client) send(st *h3Stream) {
	c.actives = append(c.actives, st)
	s := c.conn.OpenStream()
	st.id = int64(s.ID())
	s.SetDataFunc(st.dataFn)
	c.trace.HTTPStreamOpen(c.sched.Now(), c.conn.TraceID(), st.id, st.req.Host, st.req.Path)
	writeBlock(c.pools.arena(), s, blockHeadersReq, 0, flagEndStream, c.pools.requestHeaderBlock(st.req))
	s.CloseWrite()
	if st.ev.OnSent != nil {
		st.ev.OnSent()
	}
}

func (c *h3Client) onStreamData(st *h3Stream, data []byte) {
	c.parseStreamData(st, data)
	if !c.closed {
		// Response bytes arrived: reset the silence budget, or disarm it
		// entirely if this delivery completed the last request.
		c.dog.touch(c.InFlight())
	}
}

func (c *h3Client) parseStreamData(st *h3Stream, data []byte) {
	if st.done || c.closed {
		return
	}
	for _, b := range st.parser.feed(data) {
		switch b.typ {
		case blockHeadersResp:
			meta, err := c.pools.parseResponseHeaderBlock(b.payload)
			if err != nil {
				c.fail(err)
				return
			}
			st.gotMeta = true
			st.bodyLeft = meta.BodySize
			c.trace.HTTPHeaders(c.sched.Now(), c.conn.TraceID(), st.id, meta.Status, meta.BodySize)
			if st.ev.OnHeaders != nil {
				st.ev.OnHeaders(meta)
			}
			if st.bodyLeft == 0 {
				c.finish(st)
				return
			}
		case blockData:
			st.bodyLeft -= len(b.payload)
			if st.gotMeta && st.bodyLeft <= 0 {
				c.finish(st)
				return
			}
		}
	}
}

func (c *h3Client) finish(st *h3Stream) {
	if st.done {
		return
	}
	st.done = true
	for i, a := range c.actives {
		if a == st {
			c.actives = append(c.actives[:i], c.actives[i+1:]...)
			break
		}
	}
	c.trace.HTTPStreamClose(c.sched.Now(), c.conn.TraceID(), st.id)
	if st.ev.OnComplete != nil {
		st.ev.OnComplete()
	}
}

func (c *h3Client) onClose(err error) {
	if err == nil {
		err = ErrConnClosed
	}
	c.fail(err)
}

// watchdogFire aborts a connection that has been silent for
// requestTimeout with requests outstanding. fail runs first so the
// retry fan-out sees ErrRequestTimeout rather than the transport's own
// ErrAborted from the close callback.
func (c *h3Client) watchdogFire() {
	if c.closed {
		return
	}
	c.fail(ErrRequestTimeout)
	c.conn.Abort()
}

func (c *h3Client) fail(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	for _, st := range c.queue {
		st.done = true
		if st.ev.OnError != nil {
			st.ev.OnError(err)
		}
	}
	c.queue = nil
	for _, st := range c.actives {
		st.done = true
		c.trace.HTTPStreamFail(c.sched.Now(), c.conn.TraceID(), st.id, err.Error())
		if st.ev.OnError != nil {
			st.ev.OnError(err)
		}
	}
	c.actives = nil
}

func (c *h3Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	c.conn.Close()
}

func (c *h3Client) Abort() {
	if c.closed {
		return
	}
	c.closed = true
	c.dog.release()
	c.conn.Abort()
}

// --- server side ---

// h3Server handles one QUIC connection's request streams.
type h3Server struct {
	conn    *quicsim.Conn
	handler Handler
	pools   *Pools
}

func newH3Server(conn *quicsim.Conn, handler Handler, pools *Pools) *h3Server {
	s := &h3Server{conn: conn, handler: handler, pools: pools}
	conn.SetStreamFunc(s.onStream)
	conn.SetCloseFunc(func(error) {})
	return s
}

// h3SrvStream is the server-side per-stream state. Pooled per universe
// with callbacks bound once per struct lifetime; each instance serves
// exactly one request stream per visit (H3 maps one request to one
// stream), so the embedded ServerContext is never shared between
// concurrent requests.
type h3SrvStream struct {
	srv       *h3Server
	st        *quicsim.Stream
	parser    blockParser
	ctx       ServerContext
	dataFn    func([]byte)
	respondFn func(Response)
}

func (ss *h3SrvStream) reset() {
	ss.parser.rewind()
	parser, dataFn, respondFn := ss.parser, ss.dataFn, ss.respondFn
	*ss = h3SrvStream{parser: parser, dataFn: dataFn, respondFn: respondFn}
}

func (s *h3Server) onStream(st *quicsim.Stream) {
	ss := s.pools.getH3SrvStream(s, st)
	st.SetDataFunc(ss.dataFn)
}

func (ss *h3SrvStream) onData(data []byte) {
	for _, b := range ss.parser.feed(data) {
		if b.typ != blockHeadersReq {
			continue
		}
		srv := ss.srv
		req := srv.pools.parseRequestHeaderBlock(b.payload)
		ss.ctx = ServerContext{Req: req, Protocol: H3, ServerName: srv.conn.ServerName()}
		srv.handler(&ss.ctx, ss.respondFn)
	}
}

func (ss *h3SrvStream) respond(resp Response) {
	a := ss.srv.pools.arena()
	writeBlock(a, ss.st, blockHeadersResp, 0, 0, ss.srv.pools.responseHeaderBlock(resp))
	for left := resp.BodySize; left > 0; {
		n := left
		if n > bodyChunkSize {
			n = bodyChunkSize
		}
		left -= n
		writeBodyBlock(a, ss.st, 0, 0, n)
	}
	ss.st.CloseWrite()
}
