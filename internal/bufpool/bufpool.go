// Package bufpool provides size-classed pooled byte buffers for the
// simulation hot path: wire records, framed blocks, response bodies, and
// transport reassembly chunks. Buffers come back with the requested
// length but arbitrary contents — callers that care about content must
// overwrite it (the simulators only ever inspect lengths and headers).
package bufpool

import "sync"

// Size classes are powers of two from 256B to 8MB. Requests above the
// largest class fall through to plain allocation. The top classes exist
// for transport send/accumulation buffers that scale with response
// bodies (the corpus clamps bodies at 2MB); small wire records only ever
// touch the bottom classes.
const (
	minClassBits = 8  // 256
	maxClassBits = 23 // 8MB
	numClasses   = maxClassBits - minClassBits + 1
)

var pools [numClasses]sync.Pool

// boxes recycles the *[]byte header boxes the class pools store, so a
// steady-state Get/Put cycle moves buffers without allocating a fresh
// box (and its escaping slice header) on every Put.
var boxes sync.Pool

// classFor returns the pool index whose capacity fits n, or -1 when n is
// out of the pooled range.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for s := 1 << minClassBits; s < n; s <<= 1 {
		c++
	}
	return c
}

// Get returns a buffer with len(buf) == n. Contents are arbitrary.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := pools[c].Get(); v != nil {
		box := v.(*[]byte)
		buf := *box
		*box = nil
		boxes.Put(box)
		return buf[:n]
	}
	buf := make([]byte, 1<<(minClassBits+c))
	return buf[:n]
}

// Put recycles a buffer obtained from Get (or any buffer whose capacity
// is an exact size class). Callers must not use buf afterwards.
func Put(buf []byte) {
	c := capClass(cap(buf))
	if c < 0 {
		return
	}
	box, _ := boxes.Get().(*[]byte)
	if box == nil {
		box = new([]byte)
	}
	*box = buf[:cap(buf)]
	pools[c].Put(box)
}

// capClass maps an exact power-of-two capacity to its class, or -1.
func capClass(c int) int {
	if c < 1<<minClassBits || c > 1<<maxClassBits || c&(c-1) != 0 {
		return -1
	}
	idx := 0
	for s := 1 << minClassBits; s < c; s <<= 1 {
		idx++
	}
	return idx
}
