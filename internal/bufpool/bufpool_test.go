package bufpool

import "testing"

func TestGetLength(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 16*1024 + 10, 64 * 1024, 64*1024 + 1, 1 << 20} {
		buf := Get(n)
		if len(buf) != n {
			t.Fatalf("Get(%d): len %d", n, len(buf))
		}
		Put(buf)
	}
}

func TestRoundTripReuses(t *testing.T) {
	buf := Get(1000) // 1024-byte class
	buf[0] = 0xAB
	Put(buf)
	again := Get(1024)
	if &again[0] != &buf[:1][0] {
		// sync.Pool may drop entries under GC pressure; retry once.
		Put(again)
		Put(Get(1024))
		again = Get(1024)
	}
	if cap(again) != 1024 {
		t.Fatalf("cap %d, want exact class 1024", cap(again))
	}
}

func TestPutIgnoresOddCaps(t *testing.T) {
	// Buffers whose capacity is not an exact class size must not enter
	// the pool (Get assumes class-sized backing arrays).
	Put(make([]byte, 300))   // cap 300: not a power of two
	Put(make([]byte, 0))     // cap 0
	Put(make([]byte, 128))   // below the smallest class
	Put(make([]byte, 1<<24)) // above the largest class
	buf := Get(300)          // 512 class
	if len(buf) != 300 || cap(buf) < 300 {
		t.Fatalf("len=%d cap=%d after odd Puts", len(buf), cap(buf))
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {512, 1},
		{16 * 1024, 6}, {16*1024 + 1, 7}, {64 * 1024, 8}, {64*1024 + 1, 9},
		{1 << 23, 15}, {1<<23 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Fatalf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}
