package bufpool

// Arena is a thread-confined buffer recycler with the same size classes
// as the package-level pools, for callers that own a single-goroutine
// region (one simulation universe). Unlike sync.Pool, an Arena is never
// drained by the garbage collector: a warm shard reaches a steady state
// where every visit is served from the same allocation footprint.
//
// The zero value is ready to use. A nil *Arena is valid and falls back
// to the global pools, so transports can be plumbed unconditionally.
//
// Ownership rule: every buffer obtained from Get must come back through
// Put exactly once, before the owning universe's visit-boundary Rewind.
// Stats tracks the balance; RunVisit leak checks assert Gets == Puts.
type Arena struct {
	free  [numClasses][][]byte
	stats ArenaStats
}

// ArenaStats counts arena traffic. Gets/Puts/News are cumulative;
// InUse is the current outstanding balance (Gets - Puts) and HighWater
// its maximum, i.e. the steady-state working set in buffers.
type ArenaStats struct {
	Gets      uint64
	Puts      uint64
	News      uint64
	InUse     int64
	HighWater int64
}

// Get returns a buffer with len(buf) == n. Contents are arbitrary.
func (a *Arena) Get(n int) []byte {
	if a == nil {
		return Get(n)
	}
	a.stats.Gets++
	a.stats.InUse++
	if a.stats.InUse > a.stats.HighWater {
		a.stats.HighWater = a.stats.InUse
	}
	c := classFor(n)
	if c < 0 {
		a.stats.News++
		return make([]byte, n)
	}
	if l := len(a.free[c]); l > 0 {
		buf := a.free[c][l-1]
		a.free[c][l-1] = nil
		a.free[c] = a.free[c][:l-1]
		return buf[:n]
	}
	a.stats.News++
	buf := make([]byte, 1<<(minClassBits+c))
	return buf[:n]
}

// Put returns a buffer obtained from Get. Buffers whose capacity is not
// an exact size class (over-max Gets) are dropped for the collector but
// still counted, so the Gets/Puts balance stays meaningful.
func (a *Arena) Put(buf []byte) {
	if a == nil {
		Put(buf)
		return
	}
	a.stats.Puts++
	a.stats.InUse--
	c := capClass(cap(buf))
	if c < 0 {
		return
	}
	a.free[c] = append(a.free[c], buf[:cap(buf)])
}

// Stats returns a snapshot of the arena counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return a.stats
}

// Rewind marks a visit boundary: all wire copies are dead (the scheduler
// has drained) and every buffer should have been Put back. It returns
// the outstanding balance — non-zero means a leak (or a buffer retained
// across visits, which the ownership rule forbids). The free lists are
// kept, not released: that is the point of the arena.
func (a *Arena) Rewind() int64 {
	if a == nil {
		return 0
	}
	return a.stats.InUse
}
