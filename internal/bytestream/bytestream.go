// Package bytestream defines the asynchronous ordered byte-stream
// abstraction shared by the simulated transport stack: tcpsim.Conn
// produces one, tlssim.Conn wraps one and is one, and the HTTP/1.1 and
// HTTP/2 layers consume one. All methods are callback-oriented because
// the simulation is single-threaded under virtual time.
package bytestream

// Stream is an ordered, reliable byte stream with asynchronous delivery.
//
// Implementations invoke the data callback with in-order payload chunks
// and the close callback exactly once when the stream ends (err == nil for
// a clean peer close, non-nil for an abort or transport failure).
type Stream interface {
	// Write queues p for transmission. The implementation copies p
	// before returning; the caller keeps ownership of the backing array
	// and may reuse or recycle it immediately (this is what lets the
	// HTTP layers frame into pooled buffers).
	Write(p []byte)
	// SetDataFunc registers the in-order delivery callback. The chunk
	// passed to the callback is only valid for the duration of the
	// call: implementations may recycle the backing array afterwards,
	// so callbacks that need the bytes later must copy them.
	SetDataFunc(fn func(p []byte))
	// SetCloseFunc registers the end-of-stream callback.
	SetCloseFunc(fn func(err error))
	// Close sends any queued data and then ends the stream cleanly.
	Close()
	// Abort tears the stream down immediately without notifying the
	// peer, releasing all timers. No callbacks fire after Abort.
	Abort()
}

// Throttled is optionally implemented by streams exposing send-buffer
// backpressure, letting producers (e.g. an HTTP/2 server pumping response
// bodies) avoid committing unbounded data ahead of later, smaller
// messages.
type Throttled interface {
	// UnsentBytes reports bytes accepted by Write but not yet
	// transmitted on the wire.
	UnsentBytes() int
	// SetDrainFunc registers fn, invoked whenever UnsentBytes falls to
	// or below threshold after transmission progress.
	SetDrainFunc(threshold int, fn func())
}
