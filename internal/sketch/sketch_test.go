package sketch

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile returns the order statistic at 0-based rank
// round(p·(n−1)) — the statistic Quantile.Query estimates.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Round(p * float64(len(sorted)-1)))
	return sorted[rank]
}

// checkErrorBound asserts every queried quantile of q is within
// relative error α of the exact order statistic of xs.
func checkErrorBound(t *testing.T, q *Quantile, xs []float64) {
	t.Helper()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		got := q.Query(p)
		want := exactQuantile(sorted, p)
		if want <= 0 {
			// Zero-bucket values estimate as min(min, 0).
			if got > 0 {
				t.Fatalf("p=%v: got %v for non-positive exact %v", p, got, want)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > q.Alpha()+1e-12 {
			t.Fatalf("p=%v: got %v, exact %v, relative error %v > α=%v", p, got, want, rel, q.Alpha())
		}
	}
}

func TestQuantileErrorBoundAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 1 + 999*rng.Float64()
			}
			return xs
		},
		// Heavy tail: Pareto-like, spanning ~6 orders of magnitude.
		"heavy-tail": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Pow(1-rng.Float64(), -2.5)
			}
			return xs
		},
		// Point mass: every observation identical.
		"point-mass": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 123.456
			}
			return xs
		},
		// Point mass plus a single extreme outlier.
		"point-mass-outlier": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 5
			}
			xs[n-1] = 5e8
			return xs
		},
		// Bimodal with a zero-heavy head (zeros exercise the zero bucket).
		"zero-head": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				if i%4 == 0 {
					xs[i] = 0
				} else {
					xs[i] = 50 + 10*rng.Float64()
				}
			}
			return xs
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 2, 7, 1000} {
				xs := gen(n)
				q := NewQuantile(DefaultAlpha)
				for _, x := range xs {
					q.Add(x)
				}
				if q.Count() != uint64(n) {
					t.Fatalf("count %d, want %d", q.Count(), n)
				}
				checkErrorBound(t, q, xs)
			}
		})
	}
}

func TestQuantileEmpty(t *testing.T) {
	q := NewQuantile(DefaultAlpha)
	if q.Count() != 0 || q.Query(0.5) != 0 || q.Min() != 0 || q.Max() != 0 {
		t.Fatalf("empty sketch: count=%d median=%v min=%v max=%v", q.Count(), q.Query(0.5), q.Min(), q.Max())
	}
	// Merging an empty sketch is a no-op; merging into one adopts state.
	o := NewQuantile(DefaultAlpha)
	o.Add(10)
	q.Merge(o)
	if q.Count() != 1 || q.Query(1) == 0 {
		t.Fatalf("merge into empty: count=%d", q.Count())
	}
	q.Merge(NewQuantile(DefaultAlpha))
	if q.Count() != 1 {
		t.Fatal("merging an empty sketch changed the count")
	}
}

// TestQuantileMergeOrderIndependent verifies the tentpole determinism
// property: merging shard sketches in any order — including nested
// groupings — yields bit-identical sketch state, and the merged sketch
// matches one built from the concatenated stream.
func TestQuantileMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const shards = 13
	parts := make([]*Quantile, shards)
	var all []float64
	for s := range parts {
		parts[s] = NewQuantile(DefaultAlpha)
		for i := 0; i < 200+s*17; i++ {
			v := math.Exp(rng.NormFloat64()*2) * 100
			parts[s].Add(v)
			all = append(all, v)
		}
	}
	direct := NewQuantile(DefaultAlpha)
	for _, v := range all {
		direct.Add(v)
	}

	mergeOrder := func(order []int) *Quantile {
		m := NewQuantile(DefaultAlpha)
		for _, s := range order {
			m.Merge(parts[s])
		}
		return m
	}
	ref := mergeOrder([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	if !reflect.DeepEqual(ref.counts, direct.counts) || ref.count != direct.count || ref.zeros != direct.zeros {
		t.Fatal("merged sketch state differs from the directly-built sketch")
	}
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(shards)
		got := mergeOrder(order)
		if !reflect.DeepEqual(got.counts, ref.counts) || got.count != ref.count ||
			got.min != ref.min || got.max != ref.max || got.zeros != ref.zeros {
			t.Fatalf("merge order %v produced different state", order)
		}
	}
	// Associativity: merging pre-merged halves equals the flat merge.
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(shards)
		cut := 1 + rng.Intn(shards-2)
		left, right := mergeOrder(order[:cut]), mergeOrder(order[cut:])
		left.Merge(right)
		if !reflect.DeepEqual(left.counts, ref.counts) || left.count != ref.count {
			t.Fatalf("nested merge of %v at cut %d produced different state", order, cut)
		}
	}
}

func TestQuantileCollapseBoundsBuckets(t *testing.T) {
	q := NewQuantile(DefaultAlpha)
	q.maxBuckets = 16
	for i := 0; i < 4000; i++ {
		q.Add(math.Pow(1.5, float64(i%400)))
	}
	if q.Buckets() > 16 {
		t.Fatalf("buckets %d exceed the budget", q.Buckets())
	}
	if q.Count() != 4000 {
		t.Fatalf("collapse lost observations: %d", q.Count())
	}
	// High quantiles keep their bound (collapse only folds low buckets).
	xs := make([]float64, 0, 4000)
	for i := 0; i < 4000; i++ {
		xs = append(xs, math.Pow(1.5, float64(i%400)))
	}
	sort.Float64s(xs)
	got, want := q.Query(0.99), exactQuantile(xs, 0.99)
	if rel := math.Abs(got-want) / want; rel > q.Alpha()+1e-12 {
		t.Fatalf("p99 after collapse: got %v want %v rel %v", got, want, rel)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 100, 500, 5000, 0} {
		h.Add(v)
	}
	want := []uint64{3, 2, 1, 1} // (≤10)=5,10,0; (10,100]=11,100; (100,1000]=500; >1000=5000
	if !reflect.DeepEqual(h.Counts(), want) {
		t.Fatalf("counts %v, want %v", h.Counts(), want)
	}
	o := NewHistogram([]float64{10, 100, 1000})
	o.Add(50)
	h.Merge(o)
	if h.Count() != 8 || h.Counts()[1] != 3 {
		t.Fatalf("after merge: count=%d counts=%v", h.Count(), h.Counts())
	}
	c := h.Clone()
	c.Add(1)
	if h.Count() != 8 {
		t.Fatal("clone shares state with the original")
	}
}

func TestReservoirDeterministicAndOrdered(t *testing.T) {
	build := func() []int {
		r := NewReservoir[int](8, 99)
		for i := 0; i < 1000; i++ {
			r.Offer(i)
		}
		return r.Items()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different samples: %v vs %v", a, b)
	}
	if len(a) != 8 {
		t.Fatalf("sample size %d, want 8", len(a))
	}
	if !sort.IntsAreSorted(a) {
		t.Fatalf("items not in offer order: %v", a)
	}
	// A different seed picks a different sample (with overwhelming odds).
	r2 := NewReservoir[int](8, 100)
	for i := 0; i < 1000; i++ {
		r2.Offer(i)
	}
	if reflect.DeepEqual(a, r2.Items()) {
		t.Fatal("different seeds produced identical samples")
	}
	// Under-full reservoirs keep everything.
	small := NewReservoir[int](8, 1)
	for i := 0; i < 3; i++ {
		small.Offer(i)
	}
	if got := small.Items(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("underfull sample %v", got)
	}
	if small.Seen() != 3 {
		t.Fatalf("seen %d", small.Seen())
	}
	// Zero capacity retains nothing and never panics.
	zero := NewReservoir[int](0, 5)
	for i := 0; i < 10; i++ {
		zero.Offer(i)
	}
	if zero.Len() != 0 {
		t.Fatalf("zero-capacity reservoir holds %d items", zero.Len())
	}
}

func TestAccumulatorFoldMergeModeGroup(t *testing.T) {
	mk := func(vant string, plts []int64) *MetricAccumulator {
		a := NewAccumulator(DefaultAlpha)
		g := a.Group(Key{Mode: "h3", Vantage: vant})
		for _, p := range plts {
			g.Fold(VisitSample{
				PLTNs: p * int64(1e6), Bytes: 1000, Entries: 10, Failed: 1, Retries: 2,
				Reused: 3, Resumed: 1,
				Phase: &PhaseSample{Ns: [NumPhases]int64{0, p * 1e5, p * 1e5, 0, p * 8e5, 0}},
			})
		}
		return a
	}
	a := mk("utah", []int64{100, 200, 300})
	b := mk("wisc", []int64{400, 500})

	merged := NewAccumulator(DefaultAlpha)
	merged.Merge(a)
	merged.Merge(b)
	if got := merged.Pages(); got != 5 {
		t.Fatalf("pages %d, want 5", got)
	}
	keys := merged.Keys()
	if len(keys) != 2 || keys[0].Vantage != "utah" || keys[1].Vantage != "wisc" {
		t.Fatalf("keys %v", keys)
	}

	g := merged.ModeGroup("h3")
	if g == nil || g.Pages != 5 || g.PhasePages != 5 {
		t.Fatalf("mode group %+v", g)
	}
	if g.Bytes.Value() != 5000 || g.Entries.Value() != 50 || g.Failed.Value() != 5 {
		t.Fatalf("counters: bytes=%d entries=%d failed=%d", g.Bytes.Value(), g.Entries.Value(), g.Failed.Value())
	}
	// Exact integer mean: (100+200+300+400+500)/5 = 300 ms.
	if got := g.MeanPLTMs(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("mean PLT %v, want 300", got)
	}
	// Sketch median within α of the exact median (300 ms).
	if got := g.MedianPLTMs(); math.Abs(got-300)/300 > DefaultAlpha {
		t.Fatalf("median PLT %v, want 300 ± α", got)
	}
	// Phase sums are exact.
	if g.PhaseSumNs[1] != (100+200+300+400+500)*int64(1e5) {
		t.Fatalf("phase connect sum %d", g.PhaseSumNs[1])
	}
	if merged.ModeGroup("h2") != nil {
		t.Fatal("unknown mode should have no group")
	}
	if merged.Lookup(Key{Mode: "h3", Vantage: "nowhere"}) != nil {
		t.Fatal("lookup of unfolded key should be nil")
	}
	// ModeGroup returns a copy: folding into it must not perturb the
	// accumulator.
	g.Fold(VisitSample{PLTNs: 1})
	if merged.Pages() != 5 {
		t.Fatal("ModeGroup leaked shared state")
	}
}

func TestWarmthSplitFoldMerge(t *testing.T) {
	a := NewAccumulator(DefaultAlpha)
	g := a.Group(Key{Mode: "h3", Vantage: "pop"})
	// Legacy sample (no cache classification): warmth stays untouched.
	g.Fold(VisitSample{PLTNs: 500e6, Entries: 5})
	// Cold visit (document miss) and two warm visits.
	g.Fold(VisitSample{PLTNs: 900e6, Entries: 5, CacheHits: 1, CacheMisses: 4, Warm: false})
	g.Fold(VisitSample{PLTNs: 300e6, Entries: 5, CacheHits: 5, Warm: true})
	g.Fold(VisitSample{PLTNs: 320e6, Entries: 5, CacheHits: 4, CacheMisses: 1, Warm: true})
	if g.ColdPages != 1 || g.WarmPages != 2 {
		t.Fatalf("cold=%d warm=%d, want 1/2", g.ColdPages, g.WarmPages)
	}
	if g.CacheHits.Value() != 10 || g.CacheMisses.Value() != 5 {
		t.Fatalf("cache hits=%d misses=%d, want 10/5", g.CacheHits.Value(), g.CacheMisses.Value())
	}
	if g.PLTCold.Count() != 1 || g.PLTWarm.Count() != 2 {
		t.Fatalf("split sketch counts %d/%d, want 1/2", g.PLTCold.Count(), g.PLTWarm.Count())
	}
	if cold, warm := g.PLTCold.Query(0.5), g.PLTWarm.Query(0.5); cold <= warm {
		t.Fatalf("cold median %v not above warm median %v", cold, warm)
	}
	// Merge carries the split.
	b := NewAccumulator(DefaultAlpha)
	b.Merge(a)
	bg := b.Lookup(Key{Mode: "h3", Vantage: "pop"})
	if bg.ColdPages != 1 || bg.WarmPages != 2 || bg.CacheHits.Value() != 10 {
		t.Fatalf("merged warmth lost: %+v", bg)
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	mk := func() *MetricAccumulator {
		a := NewAccumulator(DefaultAlpha)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			mode := []string{"h2", "h3"}[i%2]
			a.Group(Key{Mode: mode, Vantage: "pop"}).Fold(VisitSample{
				PLTNs: int64(rng.Intn(2e9)), Bytes: int64(rng.Intn(1e6)), Entries: 12,
				Retries: int64(i % 3), Reused: 4, Resumed: int64(i % 2),
				CacheHits: int64(i % 5), CacheMisses: int64((i + 1) % 4), Warm: i%3 == 0,
				Phase: &PhaseSample{Ns: [NumPhases]int64{1e6, 2e6, 3e6, 4e6, 5e6, 6e6}},
			})
		}
		return a
	}
	a := mk()
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricAccumulator
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	// Determinism: re-encoding the decoded accumulator reproduces the
	// exact bytes (sorted buckets, sorted groups).
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("JSON round-trip not byte-stable")
	}
	for _, k := range a.Keys() {
		ag, bg := a.Lookup(k), back.Lookup(k)
		if bg == nil {
			t.Fatalf("group %v lost in round-trip", k)
		}
		if ag.Pages != bg.Pages || ag.PLTSumNs != bg.PLTSumNs || ag.Bytes != bg.Bytes ||
			ag.ColdPages != bg.ColdPages || ag.WarmPages != bg.WarmPages ||
			ag.CacheHits != bg.CacheHits || ag.PhaseTruncated != bg.PhaseTruncated {
			t.Fatalf("group %v sums differ after round-trip", k)
		}
		for p := 0.0; p <= 1.0; p += 0.01 {
			if ag.PLT.Query(p) != bg.PLT.Query(p) || ag.PLTWarm.Query(p) != bg.PLTWarm.Query(p) {
				t.Fatalf("group %v quantile %v differs after round-trip", k, p)
			}
		}
		if !reflect.DeepEqual(ag.PLTHist.Counts(), bg.PLTHist.Counts()) {
			t.Fatalf("group %v histogram differs after round-trip", k)
		}
		// The decoded group must keep folding/merging like the original.
		bg.Fold(VisitSample{PLTNs: 1e6, Entries: 1})
		bg.Merge(ag)
		if bg.Pages != 2*ag.Pages+1 {
			t.Fatalf("decoded group fold/merge broken: %d pages", bg.Pages)
		}
	}
	// Empty sketch round-trip (±Inf min/max sentinels).
	q := NewQuantile(DefaultAlpha)
	eb, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var qb Quantile
	if err := json.Unmarshal(eb, &qb); err != nil {
		t.Fatal(err)
	}
	qb.Add(5)
	if qb.Min() != 5 || qb.Max() != 5 || qb.Count() != 1 {
		t.Fatalf("decoded empty sketch broken: min=%v max=%v count=%d", qb.Min(), qb.Max(), qb.Count())
	}
}

func TestAccumulatorMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([]*MetricAccumulator, 9)
	for s := range parts {
		parts[s] = NewAccumulator(DefaultAlpha)
		for i := 0; i < 50; i++ {
			mode := []string{"h2", "h3"}[rng.Intn(2)]
			vant := []string{"utah", "wisc", "clem"}[rng.Intn(3)]
			parts[s].Group(Key{Mode: mode, Vantage: vant}).Fold(VisitSample{
				PLTNs: int64(rng.Intn(1e9)), Bytes: int64(rng.Intn(1e6)), Entries: 20,
			})
		}
	}
	merge := func(order []int) *MetricAccumulator {
		m := NewAccumulator(DefaultAlpha)
		for _, s := range order {
			m.Merge(parts[s])
		}
		return m
	}
	ref := merge([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	for trial := 0; trial < 10; trial++ {
		got := merge(rng.Perm(len(parts)))
		for _, k := range ref.Keys() {
			rg, gg := ref.Lookup(k), got.Lookup(k)
			if gg == nil {
				t.Fatalf("trial %d: group %v missing", trial, k)
			}
			if rg.Pages != gg.Pages || rg.PLTSumNs != gg.PLTSumNs || rg.Bytes != gg.Bytes {
				t.Fatalf("trial %d: group %v sums differ", trial, k)
			}
			if !reflect.DeepEqual(rg.PLT.counts, gg.PLT.counts) {
				t.Fatalf("trial %d: group %v sketch buckets differ", trial, k)
			}
			for p := 0.0; p <= 1.0; p += 0.05 {
				if rg.PLT.Query(p) != gg.PLT.Query(p) {
					t.Fatalf("trial %d: group %v quantile %v differs", trial, k, p)
				}
			}
		}
	}
}
