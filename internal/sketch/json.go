package sketch

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSON round-trips for every sketch type, so a traffic shard can
// checkpoint its streaming aggregates mid-campaign and resume them
// byte-exactly. Marshaling is deterministic: map-backed state is
// emitted as sorted parallel arrays, and the empty-sketch ±Inf min/max
// sentinels (unrepresentable in JSON) are omitted and reconstructed on
// decode. Unmarshal rebuilds every derived field (γ, ln γ, bucket
// budget) from α, so a decoded sketch folds and merges exactly like
// the original.

type quantileJSON struct {
	Alpha  float64  `json:"alpha"`
	Keys   []int32  `json:"keys,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Zeros  uint64   `json:"zeros,omitempty"`
	Count  uint64   `json:"count"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
}

// MarshalJSON encodes the sketch with its buckets in ascending key
// order (deterministic bytes for identical state).
func (q *Quantile) MarshalJSON() ([]byte, error) {
	j := quantileJSON{Alpha: q.alpha, Zeros: q.zeros, Count: q.count}
	if len(q.counts) > 0 {
		j.Keys = q.sortedKeys()
		j.Counts = make([]uint64, len(j.Keys))
		for i, k := range j.Keys {
			j.Counts[i] = q.counts[k]
		}
	}
	if q.count > 0 {
		j.Min = q.min
		j.Max = q.max
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes into q, replacing its state entirely.
func (q *Quantile) UnmarshalJSON(data []byte) error {
	var j quantileJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Keys) != len(j.Counts) {
		return fmt.Errorf("sketch: quantile keys/counts length mismatch (%d vs %d)", len(j.Keys), len(j.Counts))
	}
	*q = *NewQuantile(j.Alpha)
	q.zeros = j.Zeros
	q.count = j.Count
	if j.Count > 0 {
		q.min = j.Min
		q.max = j.Max
	}
	for i, k := range j.Keys {
		q.counts[k] = j.Counts[i]
	}
	return nil
}

type histogramJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
}

// MarshalJSON encodes the histogram's bounds and counts.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Bounds: h.bounds, Counts: h.counts, Count: h.count})
}

// UnmarshalJSON decodes into h, replacing its state entirely.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Counts) != len(j.Bounds)+1 {
		return fmt.Errorf("sketch: histogram counts length %d, want %d", len(j.Counts), len(j.Bounds)+1)
	}
	*h = *NewHistogram(j.Bounds)
	copy(h.counts, j.Counts)
	h.count = j.Count
	return nil
}

// groupMetricsJSON mirrors GroupMetrics with the unexported α exposed.
type groupMetricsJSON struct {
	Alpha float64 `json:"alpha"`

	Pages    uint64     `json:"pages"`
	PLT      *Quantile  `json:"plt"`
	PLTHist  *Histogram `json:"pltHist"`
	PLTSumNs int64      `json:"pltSumNs"`

	Bytes   Counter `json:"bytes"`
	Entries Counter `json:"entries"`
	Failed  Counter `json:"failed,omitempty"`
	Retries Counter `json:"retries,omitempty"`
	Reused  Counter `json:"reused,omitempty"`
	Resumed Counter `json:"resumed,omitempty"`

	CacheHits   Counter   `json:"cacheHits,omitempty"`
	CacheMisses Counter   `json:"cacheMisses,omitempty"`
	ColdPages   uint64    `json:"coldPages,omitempty"`
	WarmPages   uint64    `json:"warmPages,omitempty"`
	PLTCold     *Quantile `json:"pltCold,omitempty"`
	PLTWarm     *Quantile `json:"pltWarm,omitempty"`

	PhasePages     uint64               `json:"phasePages,omitempty"`
	PhaseSumNs     [NumPhases]int64     `json:"phaseSumNs"`
	Phase          [NumPhases]*Quantile `json:"phase"`
	PhaseTruncated uint64               `json:"phaseTruncated,omitempty"`
}

// MarshalJSON encodes one group's aggregates.
func (g *GroupMetrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(groupMetricsJSON{
		Alpha:          g.alpha,
		Pages:          g.Pages,
		PLT:            g.PLT,
		PLTHist:        g.PLTHist,
		PLTSumNs:       g.PLTSumNs,
		Bytes:          g.Bytes,
		Entries:        g.Entries,
		Failed:         g.Failed,
		Retries:        g.Retries,
		Reused:         g.Reused,
		Resumed:        g.Resumed,
		CacheHits:      g.CacheHits,
		CacheMisses:    g.CacheMisses,
		ColdPages:      g.ColdPages,
		WarmPages:      g.WarmPages,
		PLTCold:        g.PLTCold,
		PLTWarm:        g.PLTWarm,
		PhasePages:     g.PhasePages,
		PhaseSumNs:     g.PhaseSumNs,
		Phase:          g.Phase,
		PhaseTruncated: g.PhaseTruncated,
	})
}

// UnmarshalJSON decodes into g, replacing its state entirely. Sketches
// absent from the encoding (omitempty nils) come back empty, not nil,
// so the decoded group merges and folds like any other.
func (g *GroupMetrics) UnmarshalJSON(data []byte) error {
	var j groupMetricsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Alpha <= 0 || j.Alpha >= 1 || math.IsNaN(j.Alpha) {
		return fmt.Errorf("sketch: group alpha %v out of range", j.Alpha)
	}
	*g = GroupMetrics{
		alpha:          j.Alpha,
		Pages:          j.Pages,
		PLT:            j.PLT,
		PLTHist:        j.PLTHist,
		PLTSumNs:       j.PLTSumNs,
		Bytes:          j.Bytes,
		Entries:        j.Entries,
		Failed:         j.Failed,
		Retries:        j.Retries,
		Reused:         j.Reused,
		Resumed:        j.Resumed,
		CacheHits:      j.CacheHits,
		CacheMisses:    j.CacheMisses,
		ColdPages:      j.ColdPages,
		WarmPages:      j.WarmPages,
		PLTCold:        j.PLTCold,
		PLTWarm:        j.PLTWarm,
		PhasePages:     j.PhasePages,
		PhaseSumNs:     j.PhaseSumNs,
		Phase:          j.Phase,
		PhaseTruncated: j.PhaseTruncated,
	}
	if g.PLT == nil {
		g.PLT = NewQuantile(j.Alpha)
	}
	if g.PLTHist == nil {
		g.PLTHist = NewHistogram(DefaultPLTBoundsMs)
	}
	if g.PLTCold == nil {
		g.PLTCold = NewQuantile(j.Alpha)
	}
	if g.PLTWarm == nil {
		g.PLTWarm = NewQuantile(j.Alpha)
	}
	for i := range g.Phase {
		if g.Phase[i] == nil {
			g.Phase[i] = NewQuantile(j.Alpha)
		}
	}
	return nil
}

// accumulatorJSON lists groups in canonical key order.
type accumulatorJSON struct {
	Alpha  float64         `json:"alpha"`
	Groups []groupKeyedRow `json:"groups"`
}

type groupKeyedRow struct {
	Mode    string        `json:"mode"`
	Vantage string        `json:"vantage"`
	Metrics *GroupMetrics `json:"metrics"`
}

// MarshalJSON encodes the accumulator with groups sorted by
// (mode, vantage) — identical state yields identical bytes.
func (a *MetricAccumulator) MarshalJSON() ([]byte, error) {
	j := accumulatorJSON{Alpha: a.alpha, Groups: make([]groupKeyedRow, 0, len(a.groups))}
	for _, k := range a.Keys() {
		j.Groups = append(j.Groups, groupKeyedRow{Mode: k.Mode, Vantage: k.Vantage, Metrics: a.groups[k]})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes into a, replacing its state entirely.
func (a *MetricAccumulator) UnmarshalJSON(data []byte) error {
	var j accumulatorJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*a = *NewAccumulator(j.Alpha)
	for _, row := range j.Groups {
		if row.Metrics == nil {
			continue
		}
		a.groups[Key{Mode: row.Mode, Vantage: row.Vantage}] = row.Metrics
	}
	return nil
}
