package sketch

// Reservoir is a deterministic fixed-capacity uniform sample (Vitter's
// Algorithm R) driven by a private splitmix64 stream: the same seed and
// offer sequence always select the same sample, regardless of what any
// other component draws — the property that keeps sampled HAR retention
// byte-identical across campaign worker counts.
type Reservoir[T any] struct {
	capacity int
	seen     int64
	items    []reservoirItem[T]
	rng      uint64
}

type reservoirItem[T any] struct {
	seq int64
	v   T
}

// NewReservoir returns an empty reservoir keeping at most capacity
// items, with all randomness derived from seed.
func NewReservoir[T any](capacity int, seed uint64) *Reservoir[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Reservoir[T]{capacity: capacity, rng: seed}
}

// next advances the splitmix64 stream.
func (r *Reservoir[T]) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Offer presents one item to the reservoir. The i-th offer survives
// with probability capacity/i (uniform without replacement). The modulo
// draw carries negligible bias at simulation scales and, unlike
// rejection sampling, consumes exactly one stream step per offer — a
// fixed draw schedule is what makes the sample order-independent of
// everything else in the shard.
func (r *Reservoir[T]) Offer(v T) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, reservoirItem[T]{seq: r.seen, v: v})
		return
	}
	if r.capacity == 0 {
		return
	}
	if j := int64(r.next() % uint64(r.seen)); j < int64(r.capacity) {
		r.items[j] = reservoirItem[T]{seq: r.seen, v: v}
	}
}

// Seen returns how many items were offered.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Len returns how many items are currently retained.
func (r *Reservoir[T]) Len() int { return len(r.items) }

// Items returns the retained sample in offer order.
func (r *Reservoir[T]) Items() []T {
	out := make([]T, len(r.items))
	idx := make([]int, len(r.items))
	for i := range idx {
		idx[i] = i
	}
	// Slots are replaced in place, so slot order is not offer order;
	// sort by the recorded offer sequence instead.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && r.items[idx[j-1]].seq > r.items[idx[j]].seq; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	for i, k := range idx {
		out[i] = r.items[k].v
	}
	return out
}
