package sketch

import "sort"

// NumPhases is the number of phase buckets a visit attribution carries
// (resolve, connect, handshake, stall, transfer, other — the campaign's
// trace.AttributeVisit taxonomy).
const NumPhases = 6

// PhaseNames labels the phase slots of PhaseSample.Ns and
// GroupMetrics.PhaseSumNs, in slot order.
var PhaseNames = [NumPhases]string{"resolve", "connect", "handshake", "stall", "transfer", "other"}

// DefaultPLTBoundsMs are the fixed histogram bounds (milliseconds) for
// per-group page-load-time histograms.
var DefaultPLTBoundsMs = []float64{50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000}

// Key identifies one accumulation group: a browsing mode at a vantage
// point. Plain strings keep the package free of simulator dependencies.
type Key struct {
	Mode    string
	Vantage string
}

// PhaseSample is one visit's phase attribution in nanoseconds per slot
// (see PhaseNames). The slots partition the visit's PLT.
type PhaseSample struct {
	Ns        [NumPhases]int64
	Truncated bool
}

// VisitSample is the fold unit: everything a finished visit contributes
// to the streamed aggregates. Durations are nanoseconds, so sums stay
// integer-exact and merge-order-independent.
type VisitSample struct {
	PLTNs   int64
	Bytes   int64 // successful-entry body bytes
	Entries int64 // total entries
	Failed  int64 // entries that exhausted their retry budget
	Retries int64 // transparent re-fetches across all entries
	Reused  int64 // entries on a reused connection
	Resumed int64 // entries on a session-resumed connection
	// CacheHits/CacheMisses count entries served from / missed at a CDN
	// edge cache (x-cache response headers); entries without the header
	// (origin-served) count in neither. Zero both when the campaign does
	// not classify warmth.
	CacheHits   int64
	CacheMisses int64
	// Warm classifies the whole visit for the cold-vs-warm PLT split: the
	// document was served from edge cache. Only consulted when the visit
	// observed at least one cache-classifiable entry.
	Warm bool
	// Phase carries the visit's phase attribution when tracing was on.
	Phase *PhaseSample
}

// GroupMetrics holds one group's mergeable aggregates: a PLT quantile
// sketch and fixed-bucket histogram, integer sums and counters, and
// per-phase quantile sketches over the traced phase buckets. All
// duration sums are nanoseconds; sketches and histograms hold
// milliseconds (the repo's analysis unit).
type GroupMetrics struct {
	alpha float64

	Pages    uint64
	PLT      *Quantile  // ms
	PLTHist  *Histogram // ms, DefaultPLTBoundsMs
	PLTSumNs int64

	Bytes   Counter
	Entries Counter
	Failed  Counter
	Retries Counter
	Reused  Counter
	Resumed Counter

	// Cache-warmth aggregates cover only visits whose samples carried
	// cache classification (population-traffic campaigns): entry-level
	// edge hit/miss totals plus the visit-level cold/warm PLT split.
	CacheHits   Counter
	CacheMisses Counter
	ColdPages   uint64
	WarmPages   uint64
	PLTCold     *Quantile // ms
	PLTWarm     *Quantile // ms

	// Phase aggregates cover only visits that carried a PhaseSample.
	PhasePages     uint64
	PhaseSumNs     [NumPhases]int64
	Phase          [NumPhases]*Quantile // ms
	PhaseTruncated uint64
}

func newGroupMetrics(alpha float64) *GroupMetrics {
	g := &GroupMetrics{
		alpha:   alpha,
		PLT:     NewQuantile(alpha),
		PLTHist: NewHistogram(DefaultPLTBoundsMs),
		PLTCold: NewQuantile(alpha),
		PLTWarm: NewQuantile(alpha),
	}
	for i := range g.Phase {
		g.Phase[i] = NewQuantile(alpha)
	}
	return g
}

const nsPerMs = 1e6

// Fold accumulates one visit.
func (g *GroupMetrics) Fold(v VisitSample) {
	g.Pages++
	plt := float64(v.PLTNs) / nsPerMs
	g.PLT.Add(plt)
	g.PLTHist.Add(plt)
	g.PLTSumNs += v.PLTNs
	g.Bytes.Add(v.Bytes)
	g.Entries.Add(v.Entries)
	g.Failed.Add(v.Failed)
	g.Retries.Add(v.Retries)
	g.Reused.Add(v.Reused)
	g.Resumed.Add(v.Resumed)
	if v.CacheHits+v.CacheMisses > 0 {
		g.CacheHits.Add(v.CacheHits)
		g.CacheMisses.Add(v.CacheMisses)
		if v.Warm {
			g.WarmPages++
			g.PLTWarm.Add(plt)
		} else {
			g.ColdPages++
			g.PLTCold.Add(plt)
		}
	}
	if v.Phase == nil {
		return
	}
	g.PhasePages++
	for i, ns := range v.Phase.Ns {
		g.PhaseSumNs[i] += ns
		g.Phase[i].Add(float64(ns) / nsPerMs)
	}
	if v.Phase.Truncated {
		g.PhaseTruncated++
	}
}

// Merge folds o into g (associative and commutative; same α required).
func (g *GroupMetrics) Merge(o *GroupMetrics) {
	if o == nil {
		return
	}
	g.Pages += o.Pages
	g.PLT.Merge(o.PLT)
	g.PLTHist.Merge(o.PLTHist)
	g.PLTSumNs += o.PLTSumNs
	g.Bytes.Merge(o.Bytes)
	g.Entries.Merge(o.Entries)
	g.Failed.Merge(o.Failed)
	g.Retries.Merge(o.Retries)
	g.Reused.Merge(o.Reused)
	g.Resumed.Merge(o.Resumed)
	g.CacheHits.Merge(o.CacheHits)
	g.CacheMisses.Merge(o.CacheMisses)
	g.ColdPages += o.ColdPages
	g.WarmPages += o.WarmPages
	g.PLTCold.Merge(o.PLTCold)
	g.PLTWarm.Merge(o.PLTWarm)
	g.PhasePages += o.PhasePages
	for i := range g.PhaseSumNs {
		g.PhaseSumNs[i] += o.PhaseSumNs[i]
		g.Phase[i].Merge(o.Phase[i])
	}
	g.PhaseTruncated += o.PhaseTruncated
}

// Clone returns an independent deep copy.
func (g *GroupMetrics) Clone() *GroupMetrics {
	c := newGroupMetrics(g.alpha)
	c.Merge(g)
	return c
}

// MeanPLTMs returns the exact mean PLT in milliseconds (integer-sum
// derived, no sketch error).
func (g *GroupMetrics) MeanPLTMs() float64 {
	if g.Pages == 0 {
		return 0
	}
	return float64(g.PLTSumNs) / nsPerMs / float64(g.Pages)
}

// MedianPLTMs returns the sketch median PLT in milliseconds (relative
// error ≤ α).
func (g *GroupMetrics) MedianPLTMs() float64 { return g.PLT.Query(0.5) }

// MetricAccumulator is the per-shard streaming aggregate: GroupMetrics
// keyed by (mode, vantage). A shard folds each visit as it finishes;
// the campaign stitcher merges shard accumulators in shard-index order
// into one campaign-level accumulator.
type MetricAccumulator struct {
	alpha  float64
	groups map[Key]*GroupMetrics
}

// NewAccumulator returns an empty accumulator whose sketches carry
// relative-error bound alpha (outside (0,1) selects DefaultAlpha).
func NewAccumulator(alpha float64) *MetricAccumulator {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	return &MetricAccumulator{alpha: alpha, groups: make(map[Key]*GroupMetrics)}
}

// Alpha returns the accumulator's relative-error bound.
func (a *MetricAccumulator) Alpha() float64 { return a.alpha }

// Group returns k's metrics, creating them on first use.
func (a *MetricAccumulator) Group(k Key) *GroupMetrics {
	g := a.groups[k]
	if g == nil {
		g = newGroupMetrics(a.alpha)
		a.groups[k] = g
	}
	return g
}

// Lookup returns k's metrics, or nil when the group has never folded.
func (a *MetricAccumulator) Lookup(k Key) *GroupMetrics { return a.groups[k] }

// Keys returns the populated group keys sorted by (mode, vantage) — the
// canonical iteration order.
func (a *MetricAccumulator) Keys() []Key {
	keys := make([]Key, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Mode != keys[j].Mode {
			return keys[i].Mode < keys[j].Mode
		}
		return keys[i].Vantage < keys[j].Vantage
	})
	return keys
}

// Merge folds o into a, group by group. Merging is associative and
// commutative, so any shard completion order yields the same state.
func (a *MetricAccumulator) Merge(o *MetricAccumulator) {
	if o == nil {
		return
	}
	for _, k := range o.Keys() {
		a.Group(k).Merge(o.groups[k])
	}
}

// ModeGroup returns the merge of every vantage's group under the given
// mode (vantages merged in sorted order), or nil when the mode never
// folded. The result is an independent copy.
func (a *MetricAccumulator) ModeGroup(mode string) *GroupMetrics {
	var out *GroupMetrics
	for _, k := range a.Keys() {
		if k.Mode != mode {
			continue
		}
		if out == nil {
			out = newGroupMetrics(a.alpha)
		}
		out.Merge(a.groups[k])
	}
	return out
}

// Pages returns the total folded page count across all groups.
func (a *MetricAccumulator) Pages() uint64 {
	var n uint64
	for _, g := range a.groups {
		n += g.Pages
	}
	return n
}
