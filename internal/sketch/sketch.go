// Package sketch provides deterministic, mergeable, bounded-size metric
// accumulators for streaming campaign aggregation: a DDSketch-style
// log-bucketed quantile sketch with a guaranteed relative-error bound, a
// fixed-bucket histogram, plain counters, and a deterministic reservoir
// sampler. Together they let a campaign fold every finished visit into a
// few kilobytes of per-shard state instead of retaining raw page logs,
// so a 100k-page run holds O(shards × sketch size) memory.
//
// Every type is mergeable, and every merge is associative and
// commutative on the stored state: bucket counts, zero counts, integer
// sums, min/max. No floating-point accumulation order leaks into the
// result, so shards can be folded in any completion order and the merged
// sketch is byte-for-byte identical — the property the campaign's
// worker-count determinism guarantee rides on. (The one caveat is bucket
// collapse: a sketch whose value span exceeds maxBuckets log-buckets
// collapses its lowest buckets, and the collapse point can depend on
// insertion order. The default 2048-bucket budget covers a value span of
// ~10^17 at α = 1%, far beyond any simulated duration range, so collapse
// never fires in practice.)
package sketch

import (
	"math"
	"sort"
)

// DefaultAlpha is the relative-error bound campaigns use: quantile
// estimates are within ±1% of the exact order statistic.
const DefaultAlpha = 0.01

// defaultMaxBuckets bounds a quantile sketch's bucket map. At α = 1%
// (γ ≈ 1.0202) this spans a value ratio of γ^2048 ≈ 10^17.
const defaultMaxBuckets = 2048

// Quantile is a DDSketch-style quantile sketch over non-negative values:
// values are assigned to logarithmic buckets (γ = (1+α)/(1−α)), so any
// quantile query returns an estimate within relative error α of the
// exact order statistic at that rank. Non-positive values collapse into
// a dedicated zero bucket. Memory is O(log(max/min)/log γ), independent
// of the number of observations.
type Quantile struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	counts     map[int32]uint64
	zeros      uint64 // observations ≤ 0
	count      uint64
	min, max   float64
	maxBuckets int
}

// NewQuantile returns an empty sketch with relative-error bound alpha
// (values outside (0, 1) select DefaultAlpha).
func NewQuantile(alpha float64) *Quantile {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Quantile{
		alpha:      alpha,
		gamma:      gamma,
		lnGamma:    math.Log(gamma),
		counts:     make(map[int32]uint64),
		min:        math.Inf(1),
		max:        math.Inf(-1),
		maxBuckets: defaultMaxBuckets,
	}
}

// Alpha returns the sketch's relative-error bound.
func (q *Quantile) Alpha() float64 { return q.alpha }

// Count returns the number of observations.
func (q *Quantile) Count() uint64 { return q.count }

// Min returns the smallest observation (0 when empty).
func (q *Quantile) Min() float64 {
	if q.count == 0 {
		return 0
	}
	return q.min
}

// Max returns the largest observation (0 when empty).
func (q *Quantile) Max() float64 {
	if q.count == 0 {
		return 0
	}
	return q.max
}

// Buckets returns the number of live log-buckets (the sketch's size).
func (q *Quantile) Buckets() int { return len(q.counts) }

// Add folds one observation. NaN is ignored; values ≤ 0 land in the
// zero bucket (the sketch's error bound applies to positive values).
func (q *Quantile) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	q.count++
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	if v <= 0 {
		q.zeros++
		return
	}
	q.counts[q.index(v)]++
	if len(q.counts) > q.maxBuckets {
		q.collapse()
	}
}

// index maps a positive value to its log-bucket: bucket i covers
// (γ^(i−1), γ^i].
func (q *Quantile) index(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / q.lnGamma))
}

// estimate returns bucket i's representative value 2γ^i/(γ+1), whose
// relative error vs any value in the bucket is at most α.
func (q *Quantile) estimate(i int32) float64 {
	return 2 * math.Exp(float64(i)*q.lnGamma) / (q.gamma + 1)
}

// collapse folds the lowest buckets together until the budget holds,
// preserving total count; only the cheapest (lowest-value) estimates
// lose accuracy, as in DDSketch's collapsing store.
func (q *Quantile) collapse() {
	keys := q.sortedKeys()
	floor := keys[len(keys)-q.maxBuckets]
	var folded uint64
	for _, k := range keys {
		if k >= floor {
			break
		}
		folded += q.counts[k]
		delete(q.counts, k)
	}
	q.counts[floor] += folded
}

func (q *Quantile) sortedKeys() []int32 {
	keys := make([]int32, 0, len(q.counts))
	for k := range q.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Query returns an estimate of the p-th quantile (p in [0, 1]): the
// value at 0-based rank round(p·(count−1)), within relative error α.
// Empty sketches return 0.
func (q *Quantile) Query(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Round(p * float64(q.count-1)))
	if rank < q.zeros {
		// Non-positive observations carry no log-bucket; the best
		// estimate is the recorded minimum (≤ 0 by construction).
		return math.Min(q.min, 0)
	}
	cum := q.zeros
	for _, k := range q.sortedKeys() {
		cum += q.counts[k]
		if rank < cum {
			// Clamping to the observed range only tightens the bound.
			return math.Min(math.Max(q.estimate(k), q.min), q.max)
		}
	}
	return q.max
}

// Merge folds o into q. Merging is associative and commutative; both
// sketches must share the same α (merging incompatible resolutions
// would silently void the error bound, so it panics). A nil or empty o
// is a no-op.
func (q *Quantile) Merge(o *Quantile) {
	if o == nil || o.count == 0 {
		return
	}
	if o.alpha != q.alpha {
		panic("sketch: merging quantile sketches with different alpha")
	}
	for k, n := range o.counts {
		q.counts[k] += n
	}
	q.zeros += o.zeros
	q.count += o.count
	if o.min < q.min {
		q.min = o.min
	}
	if o.max > q.max {
		q.max = o.max
	}
	if len(q.counts) > q.maxBuckets {
		q.collapse()
	}
}

// Clone returns an independent deep copy.
func (q *Quantile) Clone() *Quantile {
	c := *q
	c.counts = make(map[int32]uint64, len(q.counts))
	for k, n := range q.counts {
		c.counts[k] = n
	}
	return &c
}

// Histogram is a fixed-bucket histogram: bucket i counts observations in
// (bounds[i−1], bounds[i]], with an extra overflow bucket above the last
// bound. Bounds are fixed at construction, so merging is exact.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
}

// NewHistogram returns an empty histogram over the given ascending
// bucket bounds (copied; must be strictly increasing).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("sketch: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Add folds one observation (NaN is ignored).
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bound whose value is ≥ v: bucket i covers (bounds[i-1], bounds[i]].
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Bounds returns the bucket bounds (callers must not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns the per-bucket counts, len(Bounds())+1 long with the
// overflow bucket last (callers must not modify).
func (h *Histogram) Counts() []uint64 { return h.counts }

// Merge folds o into h. Both histograms must share identical bounds.
// A nil or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if len(o.bounds) != len(h.bounds) {
		panic("sketch: merging histograms with different bounds")
	}
	for i, b := range o.bounds {
		if b != h.bounds[i] {
			panic("sketch: merging histograms with different bounds")
		}
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	h.count += o.count
}

// Clone returns an independent deep copy.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds: h.bounds, // immutable after construction
		counts: append([]uint64(nil), h.counts...),
		count:  h.count,
	}
}

// Counter is a mergeable int64 accumulator.
type Counter int64

// Add increments the counter by n.
func (c *Counter) Add(n int64) { *c += Counter(n) }

// Merge folds o into c.
func (c *Counter) Merge(o Counter) { *c += o }

// Value returns the accumulated total.
func (c Counter) Value() int64 { return int64(c) }
