// Package h3cdn reproduces "Dissecting the Applicability of HTTP/3 in
// Content Delivery Networks" (Zhou et al., ICDCS 2024) as a self-contained
// simulation study: a deterministic discrete-event network, miniature TCP,
// TLS and QUIC stacks, HTTP/1.1 / HTTP/2 / HTTP/3 layers, a CDN provider
// and edge-cache model, a synthetic Alexa-like webpage corpus, a
// Chrome-like page loader, and the paper's full measurement pipeline —
// every table and figure regenerable offline.
//
// The package is a facade over the internal packages. Typical use:
//
//	ds, err := h3cdn.Run(h3cdn.CampaignConfig{Seed: 1, CorpusConfig: h3cdn.CorpusConfig{NumPages: 64}})
//	fmt.Print(h3cdn.RenderTable2(h3cdn.ComputeTable2(ds)))
//
// or, for a single simulated page load, see examples/quickstart.
package h3cdn

import (
	"h3cdn/internal/adaptive"
	"h3cdn/internal/browser"
	"h3cdn/internal/core"
	"h3cdn/internal/har"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

// Re-exported configuration and result types.
type (
	// CampaignConfig configures a full measurement campaign (§III-B).
	CampaignConfig = core.CampaignConfig
	// CorpusConfig tunes synthetic webpage generation.
	CorpusConfig = webgen.Config
	// Corpus is the generated website population.
	Corpus = webgen.Corpus
	// Page is one website's landing page.
	Page = webgen.Page
	// Dataset is a campaign's output: per-mode HAR logs.
	Dataset = core.Dataset
	// UniverseConfig assembles one probe's simulated Internet.
	UniverseConfig = core.UniverseConfig
	// Universe is one probe's simulated Internet.
	Universe = core.Universe
	// Topology is the build-once, share-everywhere slice of universe
	// construction (content catalog, provider and resolver tables).
	Topology = core.Topology
	// BrowserConfig tunes the page loader.
	BrowserConfig = browser.Config
	// Browser is the simulated page loader.
	Browser = browser.Browser
	// PageLog is one visit's HAR record.
	PageLog = har.PageLog
	// Entry is one resource load's HAR record.
	Entry = har.Entry
	// HARLog is a collection of page visits.
	HARLog = har.Log
	// Retention selects which per-page HAR logs a campaign keeps in
	// memory; streamed metric sketches cover every page regardless.
	Retention = har.Retention
	// SiteMetrics aggregates one site's measurements across probes.
	SiteMetrics = core.SiteMetrics
	// VantagePoint is one probe site.
	VantagePoint = vantage.Point
	// Mode selects the browsing protocol policy.
	Mode = browser.Mode

	// Experiment result types, one per paper artifact.
	Table1Row   = core.Table1Row
	Table2      = core.Table2
	Fig2Row     = core.Fig2Row
	Fig3        = core.Fig3
	Fig4        = core.Fig4
	Fig5Series  = core.Fig5Series
	Fig6aGroup  = core.Fig6aGroup
	Fig6b       = core.Fig6b
	Fig7Group   = core.Fig7Group
	Fig7cBucket = core.Fig7cBucket
	Fig8Point   = core.Fig8Point
	Table3      = core.Table3
	Fig9Series  = core.Fig9Series
	ModeStats   = core.ModeStats
)

// Browsing modes.
const (
	ModeH2       = browser.ModeH2
	ModeH3       = browser.ModeH3
	ModeH1       = browser.ModeH1
	ModeAdaptive = browser.ModeAdaptive
)

// HAR retention policies (CampaignConfig.Retention.Kind); the zero
// value RetainAll keeps every page log, matching historical behavior.
const (
	RetainAll    = har.RetainAll
	RetainSample = har.RetainSample
	RetainNone   = har.RetainNone
)

// ParseRetention parses a retention policy flag value: "all", "none",
// or "sample:N".
func ParseRetention(s string) (Retention, error) { return har.ParseRetention(s) }

// Adaptive protocol selection (§VII extension).
type (
	// Selector learns per-host protocol preferences (ModeAdaptive).
	Selector = adaptive.Selector
	// SelectorConfig tunes the selector.
	SelectorConfig = adaptive.Config
)

// NewSelector creates an adaptive protocol selector.
func NewSelector(cfg SelectorConfig) *Selector { return adaptive.NewSelector(cfg) }

// Run executes a measurement campaign (all probes × modes × pages).
func Run(cfg CampaignConfig) (*Dataset, error) { return core.RunCampaign(cfg) }

// NewUniverse builds one probe's simulated Internet.
func NewUniverse(cfg UniverseConfig) (*Universe, error) { return core.NewUniverse(cfg) }

// NewTopology builds the shared campaign topology for a corpus; pass it
// via UniverseConfig.Topology to amortize setup across many universes.
func NewTopology(corpus *Corpus) *Topology { return core.NewTopology(corpus) }

// GenerateCorpus builds the synthetic website population.
func GenerateCorpus(cfg CorpusConfig) *Corpus { return webgen.Generate(cfg) }

// Vantages returns the paper's three CloudLab probe sites.
func Vantages() []VantagePoint { return vantage.Points() }

// ComputeSiteMetrics aggregates a dataset per site.
func ComputeSiteMetrics(ds *Dataset) []SiteMetrics { return core.ComputeSiteMetrics(ds) }

// Experiment drivers and renderers, one per paper artifact.
var (
	Table1           = core.Table1
	ComputeTable2    = core.ComputeTable2
	ComputeFigure2   = core.ComputeFigure2
	ComputeFigure3   = core.ComputeFigure3
	ComputeFigure4   = core.ComputeFigure4
	ComputeFigure5   = core.ComputeFigure5
	ComputeFigure6a  = core.ComputeFigure6a
	ComputeFigure6b  = core.ComputeFigure6b
	ComputeFigure7ab = core.ComputeFigure7ab
	ComputeFigure7c  = core.ComputeFigure7c
	ComputeFigure8   = core.ComputeFigure8
	ComputeTable3    = core.ComputeTable3
	RunFigure9       = core.RunFigure9

	RenderTable1   = core.RenderTable1
	RenderTable2   = core.RenderTable2
	RenderFigure2  = core.RenderFigure2
	RenderFigure3  = core.RenderFigure3
	RenderFigure4  = core.RenderFigure4
	RenderFigure5  = core.RenderFigure5
	RenderFigure6a = core.RenderFigure6a
	RenderFigure6b = core.RenderFigure6b
	RenderFigure7  = core.RenderFigure7
	RenderFigure8  = core.RenderFigure8
	RenderTable3   = core.RenderTable3
	RenderFigure9  = core.RenderFigure9
)

// DefaultBaselineLoss is the ambient path loss used when
// CampaignConfig.LossRate is zero.
const DefaultBaselineLoss = core.DefaultBaselineLoss
