// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices DESIGN.md calls out. The measurement
// campaigns (the expensive part) run once per `go test -bench` session
// and are shared; each benchmark then times the per-artifact analysis and
// logs the rendered output for EXPERIMENTS.md.
//
// Scale: 64 sites × 3 probes (one per CloudLab vantage). The full
// paper-scale run (325 sites) is available via cmd/h3cdn-measure and
// cmd/h3cdn-report; EXPERIMENTS.md records its results.
package h3cdn_test

import (
	"sync"
	"testing"
	"time"

	"h3cdn"
	"h3cdn/internal/browser"
	"h3cdn/internal/simnet"
	"h3cdn/internal/vantage"
	"h3cdn/internal/webgen"
)

const (
	benchPages  = 64
	benchProbes = 1 // per vantage; three vantages => three probes
)

var (
	benchOnce sync.Once
	benchStd  *h3cdn.Dataset
	benchCons *h3cdn.Dataset
	benchFig9 []h3cdn.Fig9Series
	benchErr  error
)

func benchConfig() h3cdn.CampaignConfig {
	return h3cdn.CampaignConfig{
		Seed:             2022,
		CorpusConfig:     h3cdn.CorpusConfig{NumPages: benchPages},
		Vantages:         vantage.Points(),
		ProbesPerVantage: benchProbes,
	}
}

func datasets(b *testing.B) (*h3cdn.Dataset, *h3cdn.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := benchConfig()
		benchStd, benchErr = h3cdn.Run(cfg)
		if benchErr != nil {
			return
		}
		cfg.Consecutive = true
		benchCons, benchErr = h3cdn.Run(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStd, benchCons
}

// BenchmarkTable1ProviderRegistry regenerates Table I.
func BenchmarkTable1ProviderRegistry(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderTable1(h3cdn.Table1())
	}
	b.Log("\n" + out)
}

// BenchmarkTable2AdoptionByVersion regenerates Table II.
func BenchmarkTable2AdoptionByVersion(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderTable2(h3cdn.ComputeTable2(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure2ProviderAdoption regenerates Fig. 2.
func BenchmarkFigure2ProviderAdoption(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure2(h3cdn.ComputeFigure2(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure3CDNShareCCDF regenerates Fig. 3.
func BenchmarkFigure3CDNShareCCDF(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure3(h3cdn.ComputeFigure3(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure4aProviderPresence regenerates Fig. 4(a) (and 4(b), the
// same computation).
func BenchmarkFigure4aProviderPresence(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure4(h3cdn.ComputeFigure4(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure4bProviderCount regenerates Fig. 4(b)'s histogram.
func BenchmarkFigure4bProviderCount(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		f := h3cdn.ComputeFigure4(std)
		total = 0
		for _, n := range f.PagesWithK {
			total += n
		}
	}
	b.Logf("pages histogrammed: %d", total)
}

// BenchmarkFigure5ResourcesPerProvider regenerates Fig. 5.
func BenchmarkFigure5ResourcesPerProvider(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure5(h3cdn.ComputeFigure5(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure6aPLTReductionByGroup regenerates Fig. 6(a).
func BenchmarkFigure6aPLTReductionByGroup(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure6a(h3cdn.ComputeFigure6a(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure6bPhaseReductionCDF regenerates Fig. 6(b).
func BenchmarkFigure6bPhaseReductionCDF(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure6b(h3cdn.ComputeFigure6b(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure7aReusedConnections regenerates Fig. 7(a).
func BenchmarkFigure7aReusedConnections(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure7(h3cdn.ComputeFigure7ab(std), h3cdn.ComputeFigure7c(std))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure7bReuseDifference regenerates Fig. 7(b)'s series.
func BenchmarkFigure7bReuseDifference(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		groups := h3cdn.ComputeFigure7ab(std)
		maxDiff = groups[3].Difference
	}
	b.Logf("High-group reuse difference: %.1f", maxDiff)
}

// BenchmarkFigure7cReuseVsPLT regenerates Fig. 7(c).
func BenchmarkFigure7cReuseVsPLT(b *testing.B) {
	std, _ := datasets(b)
	b.ResetTimer()
	var buckets [4]h3cdn.Fig7cBucket
	for i := 0; i < b.N; i++ {
		buckets = h3cdn.ComputeFigure7c(std)
	}
	b.Logf("Q1 %.1fms .. Q4 %.1fms", buckets[0].PLTReductionMs, buckets[3].PLTReductionMs)
}

// BenchmarkFigure8aProvidersVsPLT regenerates Fig. 8(a,b).
func BenchmarkFigure8aProvidersVsPLT(b *testing.B) {
	_, cons := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure8(h3cdn.ComputeFigure8(cons))
	}
	b.Log("\n" + out)
}

// BenchmarkFigure8bResumedConnections regenerates Fig. 8(b)'s series.
func BenchmarkFigure8bResumedConnections(b *testing.B) {
	_, cons := datasets(b)
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		points := h3cdn.ComputeFigure8(cons)
		last = points[len(points)-1].ResumedConns
	}
	b.Logf("resumed conns at max provider bucket: %.1f", last)
}

// BenchmarkTable3SharingCaseStudy regenerates Table III.
func BenchmarkTable3SharingCaseStudy(b *testing.B) {
	_, cons := datasets(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t3, err := h3cdn.ComputeTable3(cons)
		if err != nil {
			b.Fatal(err)
		}
		out = h3cdn.RenderTable3(t3)
	}
	b.Log("\n" + out)
}

// BenchmarkFigure9LossMultiplexing regenerates Fig. 9 (three loss-sweep
// campaigns; by far the most expensive benchmark).
func BenchmarkFigure9LossMultiplexing(b *testing.B) {
	benchFig9Once(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = h3cdn.RenderFigure9(benchFig9)
	}
	b.Log("\n" + out)
}

var fig9Once sync.Once

func benchFig9Once(b *testing.B) {
	b.Helper()
	fig9Once.Do(func() {
		benchFig9, benchErr = h3cdn.RunFigure9(benchConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

// --- Ablations (DESIGN.md §4.5) ---

// ablationCampaign runs a small campaign with a mutated configuration and
// returns the median per-site PLT reduction in milliseconds.
func ablationCampaign(b *testing.B, mutate func(*h3cdn.CampaignConfig)) float64 {
	b.Helper()
	cfg := h3cdn.CampaignConfig{
		Seed:             2022,
		CorpusConfig:     h3cdn.CorpusConfig{NumPages: 32, MeanResources: 70},
		Vantages:         vantage.Points()[:1],
		ProbesPerVantage: 3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := h3cdn.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sms := h3cdn.ComputeSiteMetrics(ds)
	reds := make([]float64, 0, len(sms))
	for i := range sms {
		reds = append(reds, float64(sms[i].PLTReduction().Microseconds())/1000)
	}
	return median(reds)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// BenchmarkAblationH1Baseline compares HTTP/1.1-only browsing against H2:
// the pre-multiplexing baseline the paper's background assumes.
func BenchmarkAblationH1Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := h3cdn.CampaignConfig{
			Seed:             2022,
			CorpusConfig:     h3cdn.CorpusConfig{NumPages: 16, MeanResources: 70},
			Vantages:         vantage.Points()[:1],
			ProbesPerVantage: 1,
			Modes:            []h3cdn.Mode{h3cdn.ModeH1, h3cdn.ModeH2},
		}
		ds, err := h3cdn.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var h1, h2 float64
		for _, p := range ds.Logs[browser.ModeH1].Pages {
			h1 += float64(p.PLT.Milliseconds())
		}
		for _, p := range ds.Logs[browser.ModeH2].Pages {
			h2 += float64(p.PLT.Milliseconds())
		}
		b.Logf("mean PLT: h1=%.0fms h2=%.0fms (H2 multiplexing gain %.0fms)",
			h1/16, h2/16, (h1-h2)/16)
	}
}

// BenchmarkAblationZeroRTT contrasts consecutive-visit reductions with
// and without QUIC 0-RTT — isolating §VI-D's resumption mechanism.
func BenchmarkAblationZeroRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationCampaign(b, func(c *h3cdn.CampaignConfig) { c.Consecutive = true })
		b.Logf("consecutive median PLT reduction with 0-RTT: %.1fms", with)
		standard := ablationCampaign(b, nil)
		b.Logf("standard-protocol median PLT reduction (no resumption): %.1fms", standard)
	}
}

// BenchmarkAblationLosslessNetwork removes the ambient loss: H3's edge
// shrinks to the handshake savings alone.
func BenchmarkAblationLosslessNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lossless := ablationCampaign(b, func(c *h3cdn.CampaignConfig) { c.LossRate = -1 })
		baseline := ablationCampaign(b, nil)
		b.Logf("median PLT reduction: lossless=%.1fms baseline-loss=%.1fms", lossless, baseline)
	}
}

// BenchmarkSchedulerEventDispatch measures the per-event overhead of the
// simnet scheduler hot loop: schedule one event and dispatch it. Every
// simulated packet pays this cost at least twice (serialization end and
// arrival), so allocs/op here multiply across the whole campaign.
func BenchmarkSchedulerEventDispatch(b *testing.B) {
	var s simnet.Scheduler
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

// BenchmarkSchedulerTimerReset measures the RTO/PTO pattern protocol
// state machines hammer: re-arm a timer, then fire or supersede it.
func BenchmarkSchedulerTimerReset(b *testing.B) {
	var s simnet.Scheduler
	t := s.NewTimer(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(time.Microsecond)
		if i%2 == 0 {
			s.Step()
		}
	}
	t.Stop()
	for s.Step() {
	}
}

// BenchmarkRunVisitAllocs measures allocations per full simulated page
// load (H3 mode), the campaign hot path end to end.
// warmArena runs enough visits before the timed section for the
// per-visit arena to reach steady state (the first pass through each
// page builds the pools). Without it, allocs/op depends on b.N — a
// 100ms smoke run would be dominated by pool construction while the 2s
// baseline run amortizes it away.
func warmArena(b *testing.B, u *h3cdn.Universe, br *h3cdn.Browser, pages []webgen.Page) {
	b.Helper()
	for i := 0; i < 8*len(pages); i++ {
		if _, err := u.RunVisit(br, &pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
		br.ClearSessions()
	}
}

func BenchmarkRunVisitAllocs(b *testing.B) {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 7, NumPages: 4, MeanResources: 111})
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 1, Corpus: corpus})
	if err != nil {
		b.Fatal(err)
	}
	br := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})
	warmArena(b, u, br, corpus.Pages)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.RunVisit(br, &corpus.Pages[i%4]); err != nil {
			b.Fatal(err)
		}
		br.ClearSessions()
	}
}

// BenchmarkRunVisitImpairedAllocs is BenchmarkRunVisitAllocs with the
// full fault layer armed: bursty loss, jitter, and reordering. It
// budgets the recovery machinery (GE draws, retransmissions, reorder
// holds, fetch retries) — while BenchmarkRunVisitAllocs above pins the
// nil-Impairment path to its unchanged zero-fault-layer budget.
func BenchmarkRunVisitImpairedAllocs(b *testing.B) {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 7, NumPages: 4, MeanResources: 111})
	im := simnet.GilbertElliott(0.01, 4)
	im.JitterMax = 2 * time.Millisecond
	im.ReorderRate = 0.01
	im.ReorderDelay = 2 * time.Millisecond
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 1, Corpus: corpus, Impair: &im})
	if err != nil {
		b.Fatal(err)
	}
	br := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})
	warmArena(b, u, br, corpus.Pages)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.RunVisit(br, &corpus.Pages[i%4]); err != nil {
			b.Fatal(err)
		}
		br.ClearSessions()
	}
}

// BenchmarkRunVisitTraceDisabled is BenchmarkRunVisitAllocs with the
// trace hooks explicitly disabled (Trace: nil, the production default).
// Every layer of the stack carries emit call sites, and each one takes
// the nil-receiver early return; the gate pins this benchmark to the
// same allocs/op budget as BenchmarkRunVisitAllocs — the disabled
// tracing path costs zero allocations per visit.
func BenchmarkRunVisitTraceDisabled(b *testing.B) {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 7, NumPages: 4, MeanResources: 111})
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 1, Corpus: corpus, Trace: nil})
	if err != nil {
		b.Fatal(err)
	}
	br := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})
	warmArena(b, u, br, corpus.Pages)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.RunVisit(br, &corpus.Pages[i%4]); err != nil {
			b.Fatal(err)
		}
		br.ClearSessions()
	}
}

// BenchmarkCorpusGeneration times the synthetic corpus generator.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		webgen.Generate(webgen.Config{Seed: uint64(i), NumPages: 325})
	}
}

// BenchmarkSingleVisit times one full simulated page load (H3 mode).
func BenchmarkSingleVisit(b *testing.B) {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 7, NumPages: 4, MeanResources: 111})
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 1, Corpus: corpus})
	if err != nil {
		b.Fatal(err)
	}
	br := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.RunVisit(br, &corpus.Pages[i%4]); err != nil {
			b.Fatal(err)
		}
		br.ClearSessions()
	}
}

// BenchmarkAblationTLS12 quantifies the background claim of §II-A: the
// H2 + TLS 1.2 suite pays three round trips before the first request,
// versus two with TLS 1.3 — visible directly in page PLT.
func BenchmarkAblationTLS12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 5, NumPages: 8, MeanResources: 60})
		meanPLT := func(tls12 bool) time.Duration {
			u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 5, Corpus: corpus, LossRate: -1})
			if err != nil {
				b.Fatal(err)
			}
			br := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH2, TLS12: tls12})
			var sum time.Duration
			for p := range corpus.Pages {
				log, err := u.RunVisit(br, &corpus.Pages[p])
				if err != nil {
					b.Fatal(err)
				}
				sum += log.PLT
				br.ClearSessions()
			}
			return sum / time.Duration(len(corpus.Pages))
		}
		legacy, modern := meanPLT(true), meanPLT(false)
		b.Logf("mean PLT: H2+TLS1.2=%v H2+TLS1.3=%v (saving %v)",
			legacy.Round(time.Millisecond), modern.Round(time.Millisecond),
			(legacy - modern).Round(time.Millisecond))
	}
}
