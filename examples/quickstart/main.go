// Quickstart: build a small simulated Internet, load one page over
// HTTP/2 and over HTTP/3, and print the HAR-style timing breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"h3cdn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A 12-site corpus; we will visit the first page only.
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 7, NumPages: 12, MeanResources: 60})
	page := &corpus.Pages[0]
	fmt.Printf("visiting %s: %d resources, %d CDN, providers %v\n\n",
		page.Site, len(page.Resources), page.CDNResourceCount(), page.Providers())

	for _, mode := range []h3cdn.Mode{h3cdn.ModeH2, h3cdn.ModeH3} {
		log, err := visit(corpus, page, mode)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s browsing ===\n", mode)
		fmt.Printf("PLT: %v  reused conns: %d  resumed conns: %d\n",
			log.PLT.Round(time.Millisecond), log.ReusedConns, log.ResumedConns)

		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "host\tproto\tconnect\twait\treceive\treused")
		for i, e := range log.Entries {
			if i >= 8 {
				fmt.Fprintf(w, "... and %d more entries\n", len(log.Entries)-8)
				break
			}
			fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%v\t%v\n",
				e.Host, e.Protocol,
				e.Connect.Round(time.Millisecond), e.Wait.Round(time.Millisecond),
				e.Receive.Round(time.Millisecond), e.ReusedConn)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// visit builds a fresh universe, warms it (edge caches + Alt-Svc), then
// measures one visit — the paper's §III-B protocol for a single page.
func visit(corpus *h3cdn.Corpus, page *h3cdn.Page, mode h3cdn.Mode) (*h3cdn.PageLog, error) {
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 1, Corpus: corpus})
	if err != nil {
		return nil, err
	}
	b := u.NewBrowser(h3cdn.BrowserConfig{Mode: mode, EnableZeroRTT: true})

	if _, err := u.RunVisit(b, page); err != nil { // warm-up visit
		return nil, err
	}
	b.ClearSessions()
	return u.RunVisit(b, page) // measured visit
}
