// Adaptive protocol selection (§VII, researchers): the paper suggests an
// "adaptive protocol selection tool that adjusts flexibly based on
// different conditions". This example runs the same page sequence under
// three policies — H2-only, H3-preferred, and the adaptive selector —
// across two network conditions, showing the selector tracking whichever
// protocol wins under each condition.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"h3cdn"
	"h3cdn/internal/adaptive"
	"h3cdn/internal/browser"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "adaptive: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 41, NumPages: 10, MeanResources: 70})

	conditions := []struct {
		name string
		loss float64
		h3ms time.Duration // extra per-request H3 server compute
	}{
		{"lossy path (1% loss)", 0.01, 0},
		{"overloaded H3 servers (+25ms wait)", -1, 25 * time.Millisecond},
	}

	for _, cond := range conditions {
		fmt.Printf("=== %s ===\n", cond.name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "policy\tmean PLT\tH3 requests")
		for _, mode := range []h3cdn.Mode{h3cdn.ModeH2, h3cdn.ModeH3, browser.ModeAdaptive} {
			plt, h3Share, err := browse(corpus, mode, cond.loss, cond.h3ms)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%v\t%.0f%%\n", mode, plt.Round(time.Millisecond), 100*h3Share)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Println("The adaptive policy shifts toward H3 under loss and away from it")
	fmt.Println("when H3 backends slow down — without any manual configuration.")
	return nil
}

func browse(corpus *h3cdn.Corpus, mode h3cdn.Mode, loss float64, h3Wait time.Duration) (time.Duration, float64, error) {
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{
		Seed:           9,
		Corpus:         corpus,
		LossRate:       loss,
		H3WaitOverhead: h3Wait,
	})
	if err != nil {
		return 0, 0, err
	}
	cfg := h3cdn.BrowserConfig{Mode: mode, EnableZeroRTT: true}
	if mode == browser.ModeAdaptive {
		cfg.Selector = adaptive.NewSelector(adaptive.Config{Rng: rand.New(rand.NewSource(1))}) //nolint:gosec
	}
	b := u.NewBrowser(cfg)

	// Warm pass: caches, Alt-Svc, and (for adaptive) arm exploration.
	for i := range corpus.Pages {
		if _, err := u.RunVisit(b, &corpus.Pages[i]); err != nil {
			return 0, 0, err
		}
		b.ClearSessions()
	}

	var pltSum time.Duration
	h3, total := 0, 0
	for i := range corpus.Pages {
		log, err := u.RunVisit(b, &corpus.Pages[i])
		if err != nil {
			return 0, 0, err
		}
		pltSum += log.PLT
		for _, e := range log.Entries {
			total++
			if e.Protocol == "h3" {
				h3++
			}
		}
		b.ClearSessions()
	}
	return pltSum / time.Duration(len(corpus.Pages)), float64(h3) / float64(total), nil
}
