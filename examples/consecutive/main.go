// Consecutive browsing (§VI-D): visit a sequence of pages that share
// giant CDN providers, keeping session caches between pages, and show how
// connection resumption (QUIC 0-RTT) accumulates — the shared-provider
// synergy of Takeaway 3.
//
//	go run ./examples/consecutive
package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"h3cdn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "consecutive: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 11, NumPages: 8, MeanResources: 60})

	fmt.Println("consecutive H3 browsing across pages sharing CDN providers")
	fmt.Println("(sessions kept between pages; connections still closed)")

	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 2, Corpus: corpus})
	if err != nil {
		return err
	}
	b := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})

	// Warm pass: edge caches and Alt-Svc.
	for i := range corpus.Pages {
		if _, err := u.RunVisit(b, &corpus.Pages[i]); err != nil {
			return err
		}
		b.ClearSessions()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "page\tproviders\tPLT\tresumed conns\t0-RTT effect")
	for i := range corpus.Pages {
		page := &corpus.Pages[i]
		log, err := u.RunVisit(b, page) // sessions NOT cleared: consecutive
		if err != nil {
			return err
		}
		note := ""
		if i == 0 {
			note = "(first page: cold caches)"
		} else if log.ResumedConns > 0 {
			note = "resumed to shared providers"
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%s\n",
			page.Site, page.Providers(), log.PLT.Round(time.Millisecond), log.ResumedConns, note)
	}
	return w.Flush()
}
