// Provider strategy (§VII, web developers): a what-if comparing sites
// that serve CDN content from private, site-specific hostnames against
// sites that lean on the providers' popular shared endpoints (fonts and
// library CDNs), under consecutive H3 browsing. Shared endpoints recur
// across sites, so follow-up pages resume QUIC sessions at 0-RTT —
// Takeaway 3's advice to web developers.
//
//	go run ./examples/provider-strategy
package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"h3cdn"
	"h3cdn/internal/cdn"
	"h3cdn/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "provider-strategy: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tproviders/page\tmean PLT\tresumed conns/page")

	for _, tc := range []struct {
		name       string
		sharedFrac float64
	}{
		{"private hostnames (sitename.cdn-edge)", 0.02},
		{"shared endpoints (fonts/lib CDNs)", 0.85},
	} {
		plt, resumed, nprov, err := browse(tc.sharedFrac)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.1f\t%v\t%.1f\n", tc.name, nprov, plt.Round(time.Millisecond), resumed)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nTakeaway 3: content on the providers' shared endpoints recurs across")
	fmt.Println("sites, so consecutive visits resume those QUIC sessions at 0-RTT;")
	fmt.Println("private per-site hostnames start cold on every site.")
	return nil
}

// browse runs a consecutive H3 pass over a corpus whose CDN resources use
// shared provider hostnames with the given probability.
func browse(sharedFrac float64) (meanPLT time.Duration, meanResumed, meanProviders float64, err error) {
	corpus := webgen.Generate(webgen.Config{
		Seed: 31, NumPages: 10, MeanResources: 60,
		SharedHostFraction: sharedFrac,
		Providers:          cdn.Registry(),
	})
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: 3, Corpus: corpus})
	if err != nil {
		return 0, 0, 0, err
	}
	b := u.NewBrowser(h3cdn.BrowserConfig{Mode: h3cdn.ModeH3, EnableZeroRTT: true})

	for i := range corpus.Pages { // warm pass
		if _, err := u.RunVisit(b, &corpus.Pages[i]); err != nil {
			return 0, 0, 0, err
		}
		b.ClearSessions()
	}

	var pltSum time.Duration
	var resumedSum, provSum int
	for i := range corpus.Pages { // consecutive measured pass
		log, err := u.RunVisit(b, &corpus.Pages[i])
		if err != nil {
			return 0, 0, 0, err
		}
		pltSum += log.PLT
		resumedSum += log.ResumedConns
		provSum += len(corpus.Pages[i].Providers())
	}
	n := len(corpus.Pages)
	return pltSum / time.Duration(n), float64(resumedSum) / float64(n), float64(provSum) / float64(n), nil
}
