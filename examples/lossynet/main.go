// Lossy network (§VI-E): load the same resource-heavy page over H2 and
// H3 while sweeping the packet loss rate, showing how QUIC's stream
// multiplexing sidesteps TCP head-of-line blocking — the paper's Fig. 9
// mechanism on a single page.
//
//	go run ./examples/lossynet
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"h3cdn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lossynet: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	corpus := h3cdn.GenerateCorpus(h3cdn.CorpusConfig{Seed: 23, NumPages: 8, MeanResources: 150})
	// Pick the page with the most CDN resources among pages made of
	// small objects (no multi-MB tail), so head-of-line dynamics — not
	// a single bulk transfer — dominate the comparison.
	var page *h3cdn.Page
	for i := range corpus.Pages {
		p := &corpus.Pages[i]
		maxSize := 0
		for j := range p.Resources {
			if p.Resources[j].Size > maxSize {
				maxSize = p.Resources[j].Size
			}
		}
		if maxSize > 120_000 {
			continue
		}
		if page == nil || p.CDNResourceCount() > page.CDNResourceCount() {
			page = p
		}
	}
	if page == nil {
		page = &corpus.Pages[0]
	}
	fmt.Printf("page %s: %d resources (%d CDN), all under 120KB\n", page.Site, len(page.Resources), page.CDNResourceCount())
	fmt.Println("PLT = median over 5 probe seeds")
	fmt.Println()

	seeds := []uint64{1, 2, 3, 4, 5}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "loss\tPLT h2\tPLT h3\treduction")
	for _, loss := range []float64{0, 0.005, 0.01} {
		var med [2]time.Duration
		for mi, mode := range []h3cdn.Mode{h3cdn.ModeH2, h3cdn.ModeH3} {
			plts := make([]time.Duration, 0, len(seeds))
			for _, seed := range seeds {
				plt, err := measure(corpus, page, mode, seed, loss)
				if err != nil {
					return err
				}
				plts = append(plts, plt)
			}
			sort.Slice(plts, func(a, b int) bool { return plts[a] < plts[b] })
			med[mi] = plts[len(plts)/2]
		}
		fmt.Fprintf(w, "%.1f%%\t%v\t%v\t%v\n", 100*loss,
			med[0].Round(time.Millisecond), med[1].Round(time.Millisecond),
			(med[0] - med[1]).Round(time.Millisecond))
	}
	return w.Flush()
}

func measure(corpus *h3cdn.Corpus, page *h3cdn.Page, mode h3cdn.Mode, seed uint64, loss float64) (time.Duration, error) {
	u, err := h3cdn.NewUniverse(h3cdn.UniverseConfig{Seed: seed, Corpus: corpus, LossRate: loss})
	if err != nil {
		return 0, err
	}
	b := u.NewBrowser(h3cdn.BrowserConfig{Mode: mode, EnableZeroRTT: true})
	if _, err := u.RunVisit(b, page); err != nil { // warm-up
		return 0, err
	}
	b.ClearSessions()
	log, err := u.RunVisit(b, page)
	if err != nil {
		return 0, err
	}
	return log.PLT, nil
}
