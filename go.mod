module h3cdn

go 1.22
